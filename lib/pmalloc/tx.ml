(** Failure-atomic transactions backed by a persistent undo log.

    Protocol (libpmemobj-style):
    - [begin_] marks the lane ACTIVE.
    - [add] snapshots a range {e before} the caller overwrites it: the entry
      is fully persisted before the entry count is bumped, so recovery only
      ever sees complete entries.
    - [commit] flushes every snapshotted range, marks the lane COMMITTED
      (the atomic commit point), then releases the log and marks it NONE.
    - recovery rolls an ACTIVE lane back (crash before commit point) and
      finishes a COMMITTED one (crash after).

    Large transactions overflow the fixed log area into extension blocks
    allocated from the heap and chained behind the lane header. The seeded
    [pmdk112_tx_overflow_commit] bug (see {!Bugs}) mis-orders the release of
    this chain during commit. *)

type state_tag = None_ | Active | Committed

let state_to_i64 = function None_ -> 0L | Active -> 1L | Committed -> 2L

let state_of_i64 = function
  | 0L -> Some None_
  | 1L -> Some Active
  | 2L -> Some Committed
  | _ -> None

let ext_entries = 64
let ext_header_size = 64
let ext_next_off = 0
let ext_size = ext_header_size + (ext_entries * Layout.ulog_entry_size)

type t = {
  pool : Pool.t;
  heap : Alloc.t option;
  mutable count : int;
  mutable exts : int list; (* extension block addresses, in chain order *)
  mutable tracked : (int * int) list; (* ranges to flush at commit *)
  mutable open_ : bool;
}

exception Log_full
exception Not_active

let lane_off pool field = (Pool.layout pool).Layout.ulog_off + field

let read_state pool =
  state_of_i64 (Pool.read_i64 pool ~off:(lane_off pool Layout.ulog_state_off))

let write_state pool s =
  Pool.persist_i64 pool ~off:(lane_off pool Layout.ulog_state_off) (state_to_i64 s)

let read_count pool =
  Int64.to_int (Pool.read_i64 pool ~off:(lane_off pool Layout.ulog_count_off))

let read_overflow pool =
  Int64.to_int (Pool.read_i64 pool ~off:(lane_off pool Layout.ulog_overflow_off))

(* Persistent address of entry slot [i]: the fixed area first, then the
   extension chain. [exts] must already contain enough blocks. *)
let entry_addr pool exts i =
  if i < Layout.ulog_cap then Layout.ulog_entry_off (Pool.layout pool) i
  else
    let j = i - Layout.ulog_cap in
    let block = List.nth exts (j / ext_entries) in
    block + ext_header_size + (j mod ext_entries * Layout.ulog_entry_size)

let heap_bounds pool =
  let layout = Pool.layout pool in
  (layout.Layout.heap_off, layout.Layout.heap_off + (layout.Layout.chunk_count * Layout.chunk_size))

let valid_heap_addr pool addr =
  let lo, hi = heap_bounds pool in
  addr >= lo && addr + ext_size <= hi && Pmem.Addr.is_aligned (addr - lo) Layout.chunk_size

(* Walk the persisted extension chain, validating every link. *)
let read_ext_chain pool ~needed =
  let rec walk addr acc n =
    if n = 0 then List.rev acc
    else if addr = 0 then raise (Pool.Corrupted "undo log: extension chain too short")
    else if not (valid_heap_addr pool addr) then
      raise (Pool.Corrupted "undo log: extension pointer outside heap")
    else
      let next = Int64.to_int (Pool.read_i64 pool ~off:(addr + ext_next_off)) in
      walk next (addr :: acc) (n - 1)
  in
  walk (read_overflow pool) [] needed

let blocks_needed count =
  if count <= Layout.ulog_cap then 0
  else (count - Layout.ulog_cap + ext_entries - 1) / ext_entries

let begin_ ?heap pool =
  (match read_state pool with
  | Some None_ -> ()
  | Some (Active | Committed) ->
      invalid_arg "Pmalloc.Tx.begin_: a transaction is already open on this lane"
  | None -> raise (Pool.Corrupted "undo log: invalid lane state"));
  (* A clean lane must not reference an extension: a stale pointer means a
     previous commit was torn (this is how the seeded PMDK 1.12 bug
     manifests as an application crash on the next large transaction). *)
  if read_overflow pool <> 0 then
    raise (Pool.Corrupted "undo log: clean lane holds a stale extension pointer");
  write_state pool Active;
  !Annotations.tx_begin_hook ();
  { pool; heap; count = 0; exts = []; tracked = []; open_ = true }

let grow t =
  let heap =
    match t.heap with
    | Some h -> h
    | None -> raise Log_full
  in
  let block = Alloc.alloc heap ~bytes:ext_size in
  Pool.persist_i64 t.pool ~off:(block + ext_next_off) 0L;
  (match List.rev t.exts with
  | [] ->
      Pool.persist_i64 t.pool
        ~off:(lane_off t.pool Layout.ulog_overflow_off)
        (Int64.of_int block)
  | last :: _ -> Pool.persist_i64 t.pool ~off:(last + ext_next_off) (Int64.of_int block));
  t.exts <- t.exts @ [ block ]

let write_entry t i ~addr ~size ~data =
  let slot = entry_addr t.pool t.exts i in
  Pool.write_i64 t.pool ~off:slot (Int64.of_int addr);
  Pool.write_i64 t.pool ~off:(slot + 8) (Int64.of_int size);
  Pool.write_bytes t.pool ~off:(slot + 16) data;
  Pool.persist t.pool ~off:slot ~size:Layout.ulog_entry_size;
  Pool.persist_i64 t.pool ~off:(lane_off t.pool Layout.ulog_count_off) (Int64.of_int (i + 1))

(** Snapshot [size] bytes at [off] so they can be rolled back if the
    transaction aborts. Must be called before the range is modified. *)
let add t ~off ~size =
  if not t.open_ then raise Not_active;
  let rec pieces pos remaining =
    if remaining > 0 then begin
      let len = min remaining Layout.ulog_entry_data_max in
      let capacity = Layout.ulog_cap + (List.length t.exts * ext_entries) in
      if t.count >= capacity then grow t;
      let data = Pool.read_bytes t.pool ~off:pos ~len in
      write_entry t t.count ~addr:pos ~size:len ~data;
      t.count <- t.count + 1;
      pieces (pos + len) (remaining - len)
    end
  in
  pieces off size;
  t.tracked <- (off, size) :: t.tracked

(** [add_and_store_i64 t ~off v] is the common snapshot-then-store pattern. *)
let add_and_store_i64 t ~off v =
  add t ~off ~size:8;
  Pool.write_i64 t.pool ~off v

let release_chain t =
  match t.heap with
  | None -> ()
  | Some heap -> List.iter (fun block -> Alloc.free heap block) t.exts

let clear_lane pool =
  Pool.write_i64 pool ~off:(lane_off pool Layout.ulog_count_off) 0L;
  Pool.write_i64 pool ~off:(lane_off pool Layout.ulog_overflow_off) 0L;
  Pool.persist pool ~off:(lane_off pool 0) ~size:Layout.ulog_header_size

let buggy_overflow_commit t =
  Pool.version t.pool = Version.V1_12
  && Bugs.tx_overflow_commit_enabled ()
  && t.exts <> []

let commit t =
  if not t.open_ then raise Not_active;
  (* Make every snapshotted (hence potentially modified) range durable
     before declaring the transaction committed. *)
  List.iter (fun (off, size) -> Pool.flush t.pool ~off ~size) t.tracked;
  Pool.drain t.pool;
  write_state t.pool Committed;
  if buggy_overflow_commit t then begin
    (* BUG (pmdk112_tx_overflow_commit): the extension chain is released and
       the lane marked clean, but the overflow pointer is only cleared
       afterwards. A crash at the state=NONE persist strands the stale
       pointer on an otherwise clean lane. *)
    release_chain t;
    Pool.persist_i64 t.pool ~off:(lane_off t.pool Layout.ulog_count_off) 0L;
    write_state t.pool None_;
    Pool.persist_i64 t.pool ~off:(lane_off t.pool Layout.ulog_overflow_off) 0L
  end
  else begin
    release_chain t;
    clear_lane t.pool;
    write_state t.pool None_
  end;
  t.open_ <- false;
  t.exts <- [];
  t.tracked <- [];
  !Annotations.tx_end_hook ()

let entry_fields pool exts i =
  let slot = entry_addr pool exts i in
  let addr = Int64.to_int (Pool.read_i64 pool ~off:slot) in
  let size = Int64.to_int (Pool.read_i64 pool ~off:(slot + 8)) in
  (slot, addr, size)

let validate_entry pool ~addr ~size =
  if size <= 0 || size > Layout.ulog_entry_data_max then
    raise (Pool.Corrupted (Printf.sprintf "undo entry: invalid size %d" size));
  if addr < Layout.header_size || addr + size > Pool.size pool then
    raise (Pool.Corrupted (Printf.sprintf "undo entry: address %d outside pool" addr))

let rollback_entries pool exts ~count =
  for i = count - 1 downto 0 do
    let slot, addr, size = entry_fields pool exts i in
    validate_entry pool ~addr ~size;
    let data = Pool.read_bytes pool ~off:(slot + 16) ~len:size in
    Pool.write_bytes pool ~off:addr data;
    Pool.flush pool ~off:addr ~size
  done;
  Pool.drain pool

let abort t =
  if not t.open_ then raise Not_active;
  rollback_entries t.pool t.exts ~count:t.count;
  release_chain t;
  clear_lane t.pool;
  write_state t.pool None_;
  t.open_ <- false;
  t.exts <- [];
  t.tracked <- [];
  !Annotations.tx_end_hook ()

(* Ambient open transactions, keyed by physical pool identity: nested
   [run]s flatten into the enclosing transaction, like libpmemobj's nested
   TX_BEGIN. Domain-local so that parallel injection workers, each
   re-executing the workload on its own pool, cannot observe (or corrupt)
   each other's open transactions. *)
let ambient : (Obj.t * t) list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let find_ambient pool =
  List.find_map
    (fun (key, t) -> if key == Obj.repr pool then Some t else None)
    (Domain.DLS.get ambient)

(** [run ?heap pool f] runs [f] inside a transaction, committing on normal
    return and aborting (rolling back) if [f] raises. A [run] nested inside
    another [run] on the same pool joins the outer transaction. *)
let run ?heap pool f =
  match find_ambient pool with
  | Some t -> f t
  | None -> (
      let t = begin_ ?heap pool in
      let key = Obj.repr pool in
      Domain.DLS.set ambient ((key, t) :: Domain.DLS.get ambient);
      let remove () =
        Domain.DLS.set ambient
          (List.filter (fun (k, _) -> k != key) (Domain.DLS.get ambient))
      in
      match f t with
      | v ->
          remove ();
          commit t;
          v
      | exception e ->
          remove ();
          (* If the failure is a simulated crash, the device refuses further
             work; leave the lane as the crash left it. *)
          (try abort t with _ -> ());
          raise e)

(** Recovery step for the transaction lane (called with the pool open on a
    crash image, before the application touches any data). *)
let recover ?heap pool =
  match read_state pool with
  | None -> raise (Pool.Corrupted "undo log: invalid lane state")
  | Some None_ -> `Clean
  | Some Committed ->
      (* Crash after the commit point: user data is durable; finish the
         release that the crash interrupted. The crash may have hit halfway
         through releasing the extension chain, so skip already-freed
         blocks. *)
      let exts = read_ext_chain pool ~needed:(blocks_needed (read_count pool)) in
      (match heap with
      | Some h ->
          List.iter (fun b -> if Alloc.is_allocation_start h b then Alloc.free h b) exts
      | None -> ());
      clear_lane pool;
      write_state pool None_;
      `Completed
  | Some Active ->
      let count = read_count pool in
      if count < 0 then raise (Pool.Corrupted "undo log: negative entry count");
      let exts = read_ext_chain pool ~needed:(blocks_needed count) in
      rollback_entries pool exts ~count;
      (match heap with
      | Some h -> List.iter (fun b -> Alloc.free h b) exts
      | None -> ());
      clear_lane pool;
      write_state pool None_;
      `Rolled_back count
