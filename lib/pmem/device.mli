(** Simulated persistent-memory device implementing the x86 relaxed, buffered
    persistency model described in paper section 2.

    The device separates three domains:
    - the {e persistent image}: bytes that survive any crash (medium + WPQ,
      i.e. the ADR domain);
    - the {e volatile cache overlay}: per-line contents holding stores that
      have not yet been persisted;
    - the {e pending queues}: snapshots captured by [clflushopt]/[clwb] (or
      written by non-temporal stores) that only reach the persistent image
      once a fence executes.

    Every PM-relevant instruction can be observed through a hook, which is how
    the instrumentation layer (the Intel Pin analogue) and the fault injector
    attach to an application run. The hook runs {e before} the instruction
    takes effect, so raising from the hook models a crash at that
    instruction. *)

type t

type crash_policy =
  | Program_prefix
      (** Mumak's graceful crash: every store issued so far is persisted, so
          the post-failure state is the deterministic program-order prefix. *)
  | Adr  (** Only fenced (already persistent) data survives. *)
  | Adr_with_pending
      (** Fenced data plus flushes that were issued but not yet fenced (they
          may or may not have drained; this policy assumes they did). *)

exception Out_of_bounds of { addr : int; size : int; device_size : int }

val create : ?eadr:bool -> size:int -> unit -> t
(** [create ~size ()] is a device with a zeroed persistent image of [size]
    bytes and an empty cache. [eadr] extends the persistence domain to the
    CPU caches (Enhanced Asynchronous DRAM Refresh, paper section 2): every
    globally visible store then survives a crash, flushes become
    performance-only, but fences still order non-temporal stores. *)

val of_image : ?eadr:bool -> Image.t -> t
(** [of_image img] is a device whose persistent image is a snapshot of [img]
    and whose cache is empty — the state of the machine right after a
    restart. *)

val adopt : ?eadr:bool -> Image.t -> t
(** [adopt img] is {!of_image} without the snapshot: the device takes [img]
    as its persistent image directly and mutates it in place. The batched
    oracle runs recovery on an adopted {!Image.cow} view, so each failure
    point pays for the pages recovery touches instead of a pool copy. The
    caller must not reuse [img] afterwards. *)

val size : t -> int

val eadr : t -> bool
val stats : t -> Stats.t

val set_hook : t -> (Op.t -> unit) option -> unit
(** Install (or remove) the instrumentation hook. *)

val hook_installed : t -> bool

val trace_loads : t -> bool -> unit
(** Enable or disable emission of {!Op.Load} events (off by default; only
    the XFDetector baseline needs them). *)

(** {1 Data path} *)

val store : t -> addr:int -> bytes -> unit
val store_i64 : t -> addr:int -> int64 -> unit
val store_nt : t -> addr:int -> bytes -> unit
(** Non-temporal store: bypasses the cache but is buffered until a fence. *)

val poison : t -> addr:int -> size:int -> unit
(** Fill a range with a 0xDD garbage pattern {e without} emitting
    instrumentation events: models pre-existing (uninitialised) memory
    contents handed out by an allocator, which are not program stores. The
    garbage is visible to loads and present in crash images. *)

val store_nt_i64 : t -> addr:int -> int64 -> unit
val load : t -> addr:int -> size:int -> bytes
val load_i64 : t -> addr:int -> int64

val peek : t -> addr:int -> size:int -> bytes
(** The program's current view of [size] bytes at [addr] {e without}
    emitting a load event or bumping any counter. This is how the trace
    recorder snoops store payloads for replay without perturbing the trace
    or the statistics it must later reproduce. *)

val poison_log : t -> (int * int * int) list
(** Every {!poison} call so far as [(op_count, addr, size)], oldest first,
    where [op_count] is the number of instrumentation events emitted before
    the poison landed. Lets a replayer re-apply allocator poison at the
    right positions between recorded events. *)

(** {1 Persistency instructions} *)

val clflush : t -> addr:int -> unit
(** Persist the line containing [addr] immediately (strongly ordered). *)

val clflushopt : t -> addr:int -> unit
(** Queue the line containing [addr] for persistence at the next fence and
    invalidate it. *)

val clwb : t -> addr:int -> unit
(** Queue the line containing [addr] for persistence at the next fence,
    keeping it cached. *)

val flush_range : t -> kind:Op.flush_kind -> addr:int -> size:int -> unit
(** Flush every line spanned by [size] bytes at [addr]. *)

val flush_line : t -> kind:Op.flush_kind -> line:int -> volatile:bool -> unit
(** Re-apply a recorded flush exactly as the original executed it: the
    recorded {!Op.Flush} already names the [line] and whether the flushed
    address was [volatile], so replay must not re-derive either from an
    address. *)

val sfence : t -> unit
val mfence : t -> unit

val rmw_fence : t -> unit
(** The fence half of a recorded RMW ({!cas}/{!fetch_add}): drains pending
    flushes and non-temporal stores and counts as an RMW in the statistics,
    without performing the load/store half (replay re-applies that from the
    recorded store event). *)

val cas : t -> addr:int -> expected:int64 -> desired:int64 -> bool
(** Compare-and-swap on an 8-byte slot; carries fence semantics (drains
    pending flushes and non-temporal stores), per paper section 2. *)

val fetch_add : t -> addr:int -> int64 -> int64
(** Fetch-and-add on an 8-byte slot; carries fence semantics. *)

(** {1 Crash generation} *)

val crash : t -> policy:crash_policy -> Image.t
(** [crash t ~policy] is the persistent image a restart would observe under
    [policy]. The device itself is left untouched. *)

val persisted_image : t -> Image.t
(** Snapshot of the current persistent image (equivalent to
    [crash ~policy:Adr]). *)

val volatile_view : t -> Image.t
(** The program's own view of memory: persistent image overlaid with all
    cached stores. This is what loads observe. *)

val line_versions : t -> (int * bytes list) list
(** For every line holding unpersisted data, the candidate contents that a
    crash could leave behind, oldest first (pending flush snapshot, then
    current dirty contents if newer). Used by the exhaustive (Yat-style)
    crash-state enumerator. *)

val unpersisted_line_count : t -> int
val pending_flush_count : t -> int
val pending_nt_count : t -> int
