(** A persistent-memory image: the bytes that actually survive a crash.

    The image models the contents of the physical medium (including the
    write-pending queue, which sits inside the ADR persistence domain).
    Everything written here is durable; everything not yet written here is
    lost on a crash. *)

type t

val create : size:int -> t
(** [create ~size] is a zero-filled image of [size] bytes. *)

val size : t -> int

val snapshot : t -> t
(** [snapshot t] is an independent deep copy of [t]. *)

val cow : t -> t
(** [cow t] is a copy-on-write view of [t]'s current contents: reads fall
    through to [t], writes materialize private 4 KiB pages, and [t] itself
    is never mutated through the view. Creating the view copies nothing —
    the caller must not mutate [t] while the view is live (the batched
    materializer guarantees this by finishing each oracle run before
    rolling the shared prefix image forward). *)

val read : t -> addr:int -> size:int -> bytes
(** [read t ~addr ~size] copies [size] bytes starting at [addr]. *)

val write : t -> addr:int -> bytes -> unit
(** [write t ~addr b] writes all of [b] at [addr]. *)

val read_i64 : t -> addr:int -> int64
(** Little-endian 8-byte load. *)

val write_i64 : t -> addr:int -> int64 -> unit
(** Little-endian 8-byte store. *)

val blit_from : t -> src_addr:int -> dst:bytes -> dst_off:int -> len:int -> unit
val blit_to : t -> dst_addr:int -> src:bytes -> src_off:int -> len:int -> unit

val equal : t -> t -> bool
(** Byte-wise equality of two images. *)

val unsafe_bytes : t -> bytes
(** The underlying buffer, for bulk operations. Mutating it bypasses the
    persistence model; reserved for the device implementation. On a {!cow}
    view this flattens the overlay into a private flat buffer first (one
    full copy), after which the view no longer reads through. *)
