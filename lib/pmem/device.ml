type crash_policy = Program_prefix | Adr | Adr_with_pending

exception Out_of_bounds of { addr : int; size : int; device_size : int }

(* Per-line volatile cache state. [data] is the full 64-byte line as the
   program sees it. [dirty] is true when the line holds stores that have not
   been captured by any flush yet. *)
type line_state = { data : bytes; mutable dirty : bool }

type t = {
  image : Image.t;
  eadr : bool;
  lines : (int, line_state) Hashtbl.t;
  pending : (int, bytes) Hashtbl.t;
      (* line -> content captured by an unfenced clflushopt/clwb *)
  mutable pending_order : int list; (* lines in flush-issue order, newest first *)
  invalidate_on_fence : (int, unit) Hashtbl.t;
  mutable pending_nt : (int * bytes) list; (* (addr, data), newest first *)
  mutable hook : (Op.t -> unit) option;
  mutable trace_loads : bool;
  mutable op_count : int; (* instrumentation events emitted so far *)
  mutable poison_rev : (int * int * int) list;
      (* (op_count at poison time, addr, size), newest first: the replay
         side-channel that lets a trace interpreter re-apply allocator
         poison at the right interleaving positions *)
  stats : Stats.t;
}

let adopt ?(eadr = false) image =
  {
    image;
    eadr;
    lines = Hashtbl.create 1024;
    pending = Hashtbl.create 64;
    pending_order = [];
    invalidate_on_fence = Hashtbl.create 64;
    pending_nt = [];
    hook = None;
    trace_loads = false;
    op_count = 0;
    poison_rev = [];
    stats = Stats.create ();
  }

let create ?(eadr = false) ~size () = adopt ~eadr (Image.create ~size)
let of_image ?(eadr = false) img = adopt ~eadr (Image.snapshot img)

let size t = Image.size t.image
let eadr t = t.eadr
let stats t = t.stats
let set_hook t hook = t.hook <- hook
let hook_installed t = t.hook <> None
let trace_loads t flag = t.trace_loads <- flag

(* [op_count] advances on every emission point whether or not a hook is
   installed, so poison-log positions line up with the events a collecting
   tracer records for the same execution. *)
let emit t op =
  t.op_count <- t.op_count + 1;
  match t.hook with None -> () | Some f -> f op

let check_bounds t addr size =
  if addr < 0 || size <= 0 || addr + size > Image.size t.image then
    raise (Out_of_bounds { addr; size; device_size = Image.size t.image })

(* Fetch the cache-line state for [line], faulting it in from the persistent
   image on first touch. *)
let line_state t line =
  match Hashtbl.find_opt t.lines line with
  | Some ls -> ls
  | None ->
      let data = Bytes.make Addr.line_size '\000' in
      let base = Addr.line_base line in
      let avail = min Addr.line_size (Image.size t.image - base) in
      if avail > 0 then Image.blit_from t.image ~src_addr:base ~dst:data ~dst_off:0 ~len:avail;
      let ls = { data; dirty = false } in
      Hashtbl.replace t.lines line ls;
      ls

let write_cached t ~addr b =
  let len = Bytes.length b in
  List.iter
    (fun line ->
      let ls = line_state t line in
      let base = Addr.line_base line in
      let lo = max addr base and hi = min (addr + len) (base + Addr.line_size) in
      Bytes.blit b (lo - addr) ls.data (lo - base) (hi - lo))
    (Addr.lines_spanned ~addr ~size:len)

let mark_dirty t ~addr ~size =
  List.iter
    (fun line -> (line_state t line).dirty <- true)
    (Addr.lines_spanned ~addr ~size)

let record_store t ~addr ~size ~nt =
  let st = t.stats in
  if nt then st.nt_stores <- st.nt_stores + 1 else st.stores <- st.stores + 1;
  st.bytes_written <- st.bytes_written + size;
  if addr + size > st.high_water_mark then st.high_water_mark <- addr + size

let store t ~addr b =
  let len = Bytes.length b in
  check_bounds t addr len;
  emit t (Op.Store { addr; size = len; nt = false });
  write_cached t ~addr b;
  mark_dirty t ~addr ~size:len;
  record_store t ~addr ~size:len ~nt:false

let store_i64 t ~addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  store t ~addr b

let store_nt t ~addr b =
  let len = Bytes.length b in
  check_bounds t addr len;
  emit t (Op.Store { addr; size = len; nt = true });
  (* NT stores bypass the cache: the program still observes them (we update
     the overlay without dirtying it) and they persist at the next fence. *)
  write_cached t ~addr b;
  t.pending_nt <- (addr, Bytes.copy b) :: t.pending_nt;
  record_store t ~addr ~size:len ~nt:true

let store_nt_i64 t ~addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  store_nt t ~addr b

let poison t ~addr ~size =
  check_bounds t addr size;
  (* no event, no stats: this models memory contents that predate the
     program's stores; it lands in the overlay so loads and crash images
     observe it *)
  t.poison_rev <- (t.op_count, addr, size) :: t.poison_rev;
  write_cached t ~addr (Bytes.make size '\xdd')

let poison_log t = List.rev t.poison_rev

let load t ~addr ~size =
  check_bounds t addr size;
  if t.trace_loads then emit t (Op.Load { addr; size });
  t.stats.loads <- t.stats.loads + 1;
  let out = Bytes.create size in
  List.iter
    (fun line ->
      let base = Addr.line_base line in
      let lo = max addr base and hi = min (addr + size) (base + Addr.line_size) in
      match Hashtbl.find_opt t.lines line with
      | Some ls -> Bytes.blit ls.data (lo - base) out (lo - addr) (hi - lo)
      | None -> Image.blit_from t.image ~src_addr:lo ~dst:out ~dst_off:(lo - addr) ~len:(hi - lo))
    (Addr.lines_spanned ~addr ~size);
  out

let load_i64 t ~addr = Bytes.get_int64_le (load t ~addr ~size:8) 0

(* Instrumentation-free read of the program's view of memory: no event, no
   counter. This is how the trace recorder snoops store payloads without
   perturbing the trace or the statistics it must later reproduce. *)
let peek t ~addr ~size =
  check_bounds t addr size;
  let out = Bytes.create size in
  List.iter
    (fun line ->
      let base = Addr.line_base line in
      let lo = max addr base and hi = min (addr + size) (base + Addr.line_size) in
      match Hashtbl.find_opt t.lines line with
      | Some ls -> Bytes.blit ls.data (lo - base) out (lo - addr) (hi - lo)
      | None -> Image.blit_from t.image ~src_addr:lo ~dst:out ~dst_off:(lo - addr) ~len:(hi - lo))
    (Addr.lines_spanned ~addr ~size);
  out

let volatile_addr t addr = addr < 0 || addr >= Image.size t.image

(* Persist the captured [content] of [line] into the image, clipping to the
   image size (the last line of the pool may be partial). *)
let persist_line_content t line content =
  let base = Addr.line_base line in
  let avail = min Addr.line_size (Image.size t.image - base) in
  if avail > 0 then Image.blit_to t.image ~dst_addr:base ~src:content ~src_off:0 ~len:avail

let flush_line_vol t kind ~line ~vol =
  let dirty =
    (not vol)
    && match Hashtbl.find_opt t.lines line with Some ls -> ls.dirty | None -> false
  in
  emit t (Op.Flush { kind; line; dirty; volatile = vol });
  let st = t.stats in
  (match kind with
  | Op.Clflush -> st.clflush <- st.clflush + 1
  | Op.Clflushopt -> st.clflushopt <- st.clflushopt + 1
  | Op.Clwb -> st.clwb <- st.clwb + 1);
  if not vol then
    match Hashtbl.find_opt t.lines line with
    | None -> () (* line never cached: nothing unpersisted to write back *)
    | Some ls -> (
        match kind with
        | Op.Clflush ->
            (* clflush is strongly ordered: it persists immediately and
               invalidates the line. *)
            persist_line_content t line ls.data;
            Hashtbl.remove t.lines line;
            Hashtbl.remove t.pending line;
            t.pending_order <- List.filter (fun l -> l <> line) t.pending_order
        | Op.Clflushopt | Op.Clwb ->
            if not (Hashtbl.mem t.pending line) then
              t.pending_order <- line :: t.pending_order;
            Hashtbl.replace t.pending line (Bytes.copy ls.data);
            ls.dirty <- false;
            if kind = Op.Clflushopt then Hashtbl.replace t.invalidate_on_fence line ())

let flush_one t kind ~addr =
  flush_line_vol t kind ~line:(Addr.line_of addr) ~vol:(volatile_addr t addr)

(* Replay entry point: the recorded [Op.Flush] already names the line and
   whether the original address was volatile, so re-applying it must not
   re-derive either from an address (the line base of a volatile address can
   alias a real pool line). *)
let flush_line t ~kind ~line ~volatile = flush_line_vol t kind ~line ~vol:volatile

let clflush t ~addr = flush_one t Op.Clflush ~addr
let clflushopt t ~addr = flush_one t Op.Clflushopt ~addr
let clwb t ~addr = flush_one t Op.Clwb ~addr

let flush_range t ~kind ~addr ~size =
  List.iter
    (fun line -> flush_one t kind ~addr:(Addr.line_base line))
    (Addr.lines_spanned ~addr ~size)

let drain t kind =
  emit t
    (Op.Fence
       {
         kind;
         pending_flushes = Hashtbl.length t.pending;
         pending_nt = List.length t.pending_nt;
       });
  let st = t.stats in
  (match kind with
  | Op.Sfence -> st.sfence <- st.sfence + 1
  | Op.Mfence -> st.mfence <- st.mfence + 1
  | Op.Rmw -> st.rmw <- st.rmw + 1);
  (* Apply captured flushes oldest-first, then non-temporal stores
     oldest-first: NT data was written after the lines it may overlap were
     last captured only if the NT store came later, and since NT stores
     carry their own payload the final image is order-insensitive here. *)
  List.iter
    (fun line ->
      match Hashtbl.find_opt t.pending line with
      | Some content -> persist_line_content t line content
      | None -> ())
    (List.rev t.pending_order);
  Hashtbl.reset t.pending;
  t.pending_order <- [];
  List.iter (fun (addr, b) -> Image.blit_to t.image ~dst_addr:addr ~src:b ~src_off:0 ~len:(Bytes.length b))
    (List.rev t.pending_nt);
  t.pending_nt <- [];
  Hashtbl.iter
    (fun line () ->
      match Hashtbl.find_opt t.lines line with
      | Some ls when not ls.dirty -> Hashtbl.remove t.lines line
      | Some _ | None -> ())
    t.invalidate_on_fence;
  Hashtbl.reset t.invalidate_on_fence

let sfence t = drain t Op.Sfence
let mfence t = drain t Op.Mfence

(* The fence half of a recorded RMW, without the load/store half: replay
   re-applies the store from the recorded event stream and then drains with
   the matching fence kind so statistics and pending-queue behavior agree
   with the original [cas]/[fetch_add]. *)
let rmw_fence t = drain t Op.Rmw

let cas t ~addr ~expected ~desired =
  check_bounds t addr 8;
  let current = load_i64 t ~addr in
  let success = Int64.equal current expected in
  if success then (
    emit t (Op.Store { addr; size = 8; nt = false });
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 desired;
    write_cached t ~addr b;
    mark_dirty t ~addr ~size:8;
    record_store t ~addr ~size:8 ~nt:false);
  drain t Op.Rmw;
  success

let fetch_add t ~addr delta =
  check_bounds t addr 8;
  let current = load_i64 t ~addr in
  emit t (Op.Store { addr; size = 8; nt = false });
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.add current delta);
  write_cached t ~addr b;
  mark_dirty t ~addr ~size:8;
  record_store t ~addr ~size:8 ~nt:false;
  drain t Op.Rmw;
  current

let persisted_image t = Image.snapshot t.image
let volatile_view_into t img =
  Hashtbl.iter
    (fun line ls ->
      let base = Addr.line_base line in
      let avail = min Addr.line_size (Image.size img - base) in
      if avail > 0 then Image.blit_to img ~dst_addr:base ~src:ls.data ~src_off:0 ~len:avail)
    t.lines

let volatile_view t =
  let img = Image.snapshot t.image in
  volatile_view_into t img;
  img

let crash t ~policy =
  (* Under eADR the persistence domain covers the CPU caches: every store
     that became globally visible survives, whatever the policy asked. *)
  let policy = if t.eadr then Program_prefix else policy in
  match policy with
  | Adr -> Image.snapshot t.image
  | Adr_with_pending ->
      let img = Image.snapshot t.image in
      List.iter
        (fun line ->
          match Hashtbl.find_opt t.pending line with
          | Some content ->
              let base = Addr.line_base line in
              let avail = min Addr.line_size (Image.size img - base) in
              if avail > 0 then
                Image.blit_to img ~dst_addr:base ~src:content ~src_off:0 ~len:avail
          | None -> ())
        (List.rev t.pending_order);
      img
  | Program_prefix ->
      (* Graceful crash: everything the program issued persists. The overlay
         holds the newest content of every touched line, and NT stores were
         merged into it, so overlaying the image with the cache suffices. *)
      let img = Image.snapshot t.image in
      List.iter
        (fun (addr, b) ->
          Image.blit_to img ~dst_addr:addr ~src:b ~src_off:0 ~len:(Bytes.length b))
        (List.rev t.pending_nt);
      volatile_view_into t img;
      img

let line_versions t =
  let tbl = Hashtbl.create 32 in
  Hashtbl.iter
    (fun line content -> Hashtbl.replace tbl line [ Bytes.copy content ])
    t.pending;
  Hashtbl.iter
    (fun line ls ->
      if ls.dirty then
        let prior = Option.value ~default:[] (Hashtbl.find_opt tbl line) in
        Hashtbl.replace tbl line (prior @ [ Bytes.copy ls.data ]))
    t.lines;
  Hashtbl.fold (fun line versions acc -> (line, versions) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let unpersisted_line_count t = List.length (line_versions t)
let pending_flush_count t = Hashtbl.length t.pending
let pending_nt_count t = List.length t.pending_nt
