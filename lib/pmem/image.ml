(* Two representations: [Flat] is a plain byte buffer (every device's
   backing store); [Cow] is a copy-on-write view over another image's
   bytes, materializing 4 KiB pages into a private overlay only when
   written. The batched crash-image materializer hands the recovery
   oracle a [Cow] view per failure point, so the oracle pays for the
   pages recovery touches instead of two full-pool copies per point. *)

let page_bits = 12
let page_size = 1 lsl page_bits

type repr =
  | Flat of bytes
  | Cow of { base : bytes; pages : (int, bytes) Hashtbl.t }

type t = { size : int; mutable repr : repr }

let create ~size =
  assert (size > 0);
  { size; repr = Flat (Bytes.make size '\000') }

let size t = t.size

(* Flatten a COW view into a fresh buffer: base bytes plus overlay pages. *)
let flatten_bytes t =
  match t.repr with
  | Flat buf -> Bytes.copy buf
  | Cow { base; pages } ->
      let buf = Bytes.copy base in
      Hashtbl.iter
        (fun page content ->
          let off = page lsl page_bits in
          Bytes.blit content 0 buf off (min page_size (t.size - off)))
        pages;
      buf

let snapshot t = { size = t.size; repr = Flat (flatten_bytes t) }

let unsafe_bytes t =
  match t.repr with
  | Flat buf -> buf
  | Cow _ ->
      let buf = flatten_bytes t in
      t.repr <- Flat buf;
      buf

let cow t = { size = t.size; repr = Cow { base = unsafe_bytes t; pages = Hashtbl.create 64 } }

let check t addr size =
  if addr < 0 || size < 0 || addr + size > t.size then
    invalid_arg
      (Printf.sprintf "Pmem.Image: access [%d, %d) out of bounds (size %d)" addr (addr + size)
         t.size)

(* Walk [addr, addr+len) in page-aligned chunks: [k page ~off ~boff ~n]
   covers [n] bytes of overlay page [page] starting at page offset [off],
   which is caller offset [boff]. *)
let iter_pages addr len k =
  let pos = ref addr in
  while !pos < addr + len do
    let page = !pos lsr page_bits in
    let off = !pos land (page_size - 1) in
    let n = min (page_size - off) (addr + len - !pos) in
    k page ~off ~boff:(!pos - addr) ~n;
    pos := !pos + n
  done

(* The overlay page for [page], copied up from [base] on first write. The
   last page of the pool may be partial: the tail of its buffer stays
   zero and is never read (bounds checks clip every access to [size]). *)
let cow_page ~base ~size pages page =
  match Hashtbl.find_opt pages page with
  | Some content -> content
  | None ->
      let content = Bytes.make page_size '\000' in
      let off = page lsl page_bits in
      Bytes.blit base off content 0 (min page_size (size - off));
      Hashtbl.replace pages page content;
      content

let blit_from t ~src_addr ~dst ~dst_off ~len =
  check t src_addr len;
  match t.repr with
  | Flat buf -> Bytes.blit buf src_addr dst dst_off len
  | Cow { base; pages } ->
      iter_pages src_addr len (fun page ~off ~boff ~n ->
          match Hashtbl.find_opt pages page with
          | Some content -> Bytes.blit content off dst (dst_off + boff) n
          | None -> Bytes.blit base ((page lsl page_bits) + off) dst (dst_off + boff) n)

let blit_to t ~dst_addr ~src ~src_off ~len =
  check t dst_addr len;
  match t.repr with
  | Flat buf -> Bytes.blit src src_off buf dst_addr len
  | Cow { base; pages } ->
      iter_pages dst_addr len (fun page ~off ~boff ~n ->
          Bytes.blit src (src_off + boff) (cow_page ~base ~size:t.size pages page) off n)

let read t ~addr ~size =
  let out = Bytes.create size in
  blit_from t ~src_addr:addr ~dst:out ~dst_off:0 ~len:size;
  out

let write t ~addr b = blit_to t ~dst_addr:addr ~src:b ~src_off:0 ~len:(Bytes.length b)

let read_i64 t ~addr =
  match t.repr with
  | Flat buf ->
      check t addr 8;
      Bytes.get_int64_le buf addr
  | Cow _ -> Bytes.get_int64_le (read t ~addr ~size:8) 0

let write_i64 t ~addr v =
  match t.repr with
  | Flat buf ->
      check t addr 8;
      Bytes.set_int64_le buf addr v
  | Cow _ ->
      let b = Bytes.create 8 in
      Bytes.set_int64_le b 0 v;
      write t ~addr b

let equal a b =
  match (a.repr, b.repr) with
  | Flat x, Flat y -> Bytes.equal x y
  | _ -> a.size = b.size && Bytes.equal (unsafe_bytes a) (unsafe_bytes b)
