(** Running counters of device activity, used for the resource-usage table
    (Table 2) and the micro-benchmarks. *)

type t = {
  mutable stores : int;
  mutable nt_stores : int;
  mutable loads : int;
  mutable clflush : int;
  mutable clflushopt : int;
  mutable clwb : int;
  mutable sfence : int;
  mutable mfence : int;
  mutable rmw : int;
  mutable bytes_written : int;
  mutable high_water_mark : int;  (** highest PM address ever stored to + 1 *)
}

let create () =
  {
    stores = 0;
    nt_stores = 0;
    loads = 0;
    clflush = 0;
    clflushopt = 0;
    clwb = 0;
    sfence = 0;
    mfence = 0;
    rmw = 0;
    bytes_written = 0;
    high_water_mark = 0;
  }

let copy t = { t with stores = t.stores }

(** [merge a b] is a fresh counter set with the component-wise sum of [a]
    and [b] (high-water mark: the max). Used to aggregate the per-device
    counters of parallel injection workers into one device-activity total;
    neither argument is modified. *)
let merge a b =
  {
    stores = a.stores + b.stores;
    nt_stores = a.nt_stores + b.nt_stores;
    loads = a.loads + b.loads;
    clflush = a.clflush + b.clflush;
    clflushopt = a.clflushopt + b.clflushopt;
    clwb = a.clwb + b.clwb;
    sfence = a.sfence + b.sfence;
    mfence = a.mfence + b.mfence;
    rmw = a.rmw + b.rmw;
    bytes_written = a.bytes_written + b.bytes_written;
    high_water_mark = max a.high_water_mark b.high_water_mark;
  }

let merge_all = function [] -> create () | s :: rest -> List.fold_left merge s rest

let flushes t = t.clflush + t.clflushopt + t.clwb
let fences t = t.sfence + t.mfence + t.rmw

(** Machine encoding of the device counters; {!pp} renders these same
    fields, so human and machine output cannot drift. *)
let to_json t =
  Telemetry.Json.Assoc
    [
      ("stores", Telemetry.Json.Int t.stores);
      ("nt_stores", Telemetry.Json.Int t.nt_stores);
      ("loads", Telemetry.Json.Int t.loads);
      ("clflush", Telemetry.Json.Int t.clflush);
      ("clflushopt", Telemetry.Json.Int t.clflushopt);
      ("clwb", Telemetry.Json.Int t.clwb);
      ("sfence", Telemetry.Json.Int t.sfence);
      ("mfence", Telemetry.Json.Int t.mfence);
      ("rmw", Telemetry.Json.Int t.rmw);
      ("flushes", Telemetry.Json.Int (flushes t));
      ("fences", Telemetry.Json.Int (fences t));
      ("bytes_written", Telemetry.Json.Int t.bytes_written);
      ("high_water_mark", Telemetry.Json.Int t.high_water_mark);
    ]

let pp ppf t =
  match to_json t with
  | Telemetry.Json.Assoc fields -> Telemetry.Json.pp_kv ppf fields
  | _ -> assert false
