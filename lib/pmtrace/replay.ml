(** Deterministic trace replay: re-apply a recorded execution (optionally
    rewritten) against a fresh device, reproducing the device statistics,
    crash images and failure points of the original run without re-running
    the target program.

    A recorded {!Event.t} stream is not self-contained: events carry
    addresses and sizes but no store payloads, and allocator poison
    ({!Pmem.Device.poison}) is deliberately invisible to instrumentation.
    {!record} therefore captures two side-channels alongside the trace:

    - {e payloads}: the recorder snoops every store's bytes with
      {!Pmem.Device.peek} at the next instrumentation hook — the hook runs
      before its own instruction takes effect, so by then the previous
      store (and nothing later) has been applied;
    - {e poison}: the device logs each poison call with the number of
      events emitted before it, letting the recorder weave poison back
      between the right events.

    One known approximation: a poison overlapping a store that is still
    pending payload resolution snoops the poisoned bytes. For cached
    stores the replayed poison re-applies the same bytes immediately
    after, so images agree anyway; only a non-temporal store whose buffered
    payload is poisoned before the next event could diverge — a pattern
    the allocator (which only poisons freshly carved, not-yet-stored-to
    chunks) never produces. *)

type item = Ev of Event.t | Poison of { addr : int; size : int }

type t = {
  items : item list;  (** execution order; poison woven between events *)
  payloads : (int, bytes) Hashtbl.t;  (** store event seq -> bytes written *)
  pool_size : int;
  eadr : bool;
  loads : bool;  (** the recording traced PM loads *)
  stats : Pmem.Stats.t;  (** device counters at the end of the recorded run *)
}

let events t =
  List.filter_map (function Ev e -> Some e | Poison _ -> None) t.items

(* Weave poison entries (op_count = events emitted before the poison,
   oldest first) back between the recorded events. *)
let weave evs poisons =
  let rec go evs poisons =
    match (evs, poisons) with
    | evs, [] -> List.map (fun e -> Ev e) evs
    | [], ps -> List.map (fun (_, addr, size) -> Poison { addr; size }) ps
    | e :: es, (c, addr, size) :: ps ->
        if c < e.Event.seq then Poison { addr; size } :: go evs ps
        else Ev e :: go es poisons
  in
  go evs poisons

let record ?(loads = false) ?(eadr = false) ~pool_size run =
  Telemetry.Collector.span ~cat:"replay" "record" @@ fun () ->
  let device = Pmem.Device.create ~eadr ~size:pool_size () in
  Pmem.Device.trace_loads device loads;
  let tracer = Tracer.create ~collect:true ~with_stacks:true device in
  let payloads = Hashtbl.create 1024 in
  let unresolved = ref None in
  let resolve () =
    match !unresolved with
    | None -> ()
    | Some (seq, addr, size) ->
        Hashtbl.replace payloads seq (Pmem.Device.peek device ~addr ~size);
        unresolved := None
  in
  Tracer.add_listener tracer (fun e _stack ->
      (* the hook runs before [e] takes effect: the previous store has been
         applied, the current one has not *)
      resolve ();
      match e.Event.op with
      | Pmem.Op.Store { addr; size; _ } -> unresolved := Some (e.Event.seq, addr, size)
      | _ -> ());
  run ~device ~framer:(Framer.of_callstack (Tracer.stack tracer));
  resolve ();
  Tracer.detach tracer;
  {
    items = weave (Trace.to_list (Tracer.trace tracer)) (Pmem.Device.poison_log device);
    payloads;
    pool_size;
    eadr;
    loads;
    stats = Pmem.Stats.copy (Pmem.Device.stats device);
  }

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

exception Stop

let apply t device (e : Event.t) =
  match e.Event.op with
  | Pmem.Op.Store { addr; size; nt } ->
      let b =
        match Hashtbl.find_opt t.payloads e.Event.seq with
        | Some b -> b
        | None -> Bytes.make size '\000' (* no payload recorded: zero fill *)
      in
      if nt then Pmem.Device.store_nt device ~addr b
      else Pmem.Device.store device ~addr b
  | Pmem.Op.Flush { kind; line; volatile; _ } ->
      (* dirty is recomputed by the device; line/volatile are properties of
         the flushed address, which no rewrite changes *)
      Pmem.Device.flush_line device ~kind ~line ~volatile
  | Pmem.Op.Fence { kind; _ } -> (
      match kind with
      | Pmem.Op.Sfence -> Pmem.Device.sfence device
      | Pmem.Op.Mfence -> Pmem.Device.mfence device
      | Pmem.Op.Rmw -> Pmem.Device.rmw_fence device)
  | Pmem.Op.Load { addr; size } -> ignore (Pmem.Device.load device ~addr ~size)

(* The single interpreter loop behind [replay] and [normalize]. [on_event]
   fires {e before} the event is applied — the hook discipline of the live
   device, so a crash image captured there is the state a fault at that
   instruction leaves behind. [pseq] is the persistency index (1-based
   count of non-load events, the coordinate system of the offline
   analyses). *)
let run ?hook ?on_event ?after_event t =
  let device = Pmem.Device.create ~eadr:t.eadr ~size:t.pool_size () in
  Pmem.Device.trace_loads device t.loads;
  (match hook with Some h -> Pmem.Device.set_hook device (Some h) | None -> ());
  let pseq = ref 0 in
  (try
     List.iter
       (fun item ->
         match item with
         | Poison { addr; size } -> Pmem.Device.poison device ~addr ~size
         | Ev e ->
             (match e.Event.op with Pmem.Op.Load _ -> () | _ -> incr pseq);
             (match on_event with Some f -> f device ~pseq:!pseq e | None -> ());
             apply t device e;
             (match after_event with Some f -> f e | None -> ()))
       t.items
   with Stop -> ());
  device

let replay ?on_event t =
  Telemetry.Collector.span ~cat:"replay" ~hist:"replay_ns" "replay" @@ fun () ->
  run ?on_event t

(* Field-wise statistics comparison. [loads] only when the recording traced
   loads: an untraced recording still counts the program's loads (including
   the internal reads of [cas]/[fetch_add]) in the original run, but leaves
   no events for replay to re-apply. *)
let stats_match t (s : Pmem.Stats.t) =
  let r = t.stats in
  r.Pmem.Stats.stores = s.Pmem.Stats.stores
  && r.Pmem.Stats.nt_stores = s.Pmem.Stats.nt_stores
  && ((not t.loads) || r.Pmem.Stats.loads = s.Pmem.Stats.loads)
  && r.Pmem.Stats.clflush = s.Pmem.Stats.clflush
  && r.Pmem.Stats.clflushopt = s.Pmem.Stats.clflushopt
  && r.Pmem.Stats.clwb = s.Pmem.Stats.clwb
  && r.Pmem.Stats.sfence = s.Pmem.Stats.sfence
  && r.Pmem.Stats.mfence = s.Pmem.Stats.mfence
  && r.Pmem.Stats.rmw = s.Pmem.Stats.rmw
  && r.Pmem.Stats.bytes_written = s.Pmem.Stats.bytes_written
  && r.Pmem.Stats.high_water_mark = s.Pmem.Stats.high_water_mark

(* ------------------------------------------------------------------ *)
(* Rewriting                                                           *)
(* ------------------------------------------------------------------ *)

type edit =
  | Insert_flush_after of { pseq : int; line : int }
  | Insert_fence_after of { pseq : int }
  | Delete_flush_at of { pseq : int }
  | Delete_fence_at of { pseq : int }

let edit_to_string = function
  | Insert_flush_after { pseq; line } ->
      Printf.sprintf "insert flush of line %d after #%d" line pseq
  | Insert_fence_after { pseq } -> Printf.sprintf "insert fence after #%d" pseq
  | Delete_flush_at { pseq } -> Printf.sprintf "delete flush at #%d" pseq
  | Delete_fence_at { pseq } -> Printf.sprintf "delete fence at #%d" pseq

let edit_anchor = function
  | Insert_flush_after { pseq; _ }
  | Insert_fence_after { pseq }
  | Delete_flush_at { pseq }
  | Delete_fence_at { pseq } -> pseq

(* Synthesized events get placeholder negative seqs (renumbered away by
   [renumber]) and no stack: the offline failure-point detector skips
   stackless events, so an inserted instruction never mints new failure
   points — it only changes which states the surrounding ones can
   observe. *)
let rewrite_items items edits =
  let synth = ref 0 in
  let fresh_seq () = decr synth; !synth in
  let applied = Hashtbl.create (List.length edits) in
  let at p =
    List.filter (fun ed -> edit_anchor ed = p) edits
    (* flush-before-fence: an Insert_flush fix expands to flush + fence and
       the flush must precede the fence that drains it *)
    |> List.stable_sort (fun a b ->
           let rank = function
             | Delete_flush_at _ | Delete_fence_at _ -> 0
             | Insert_flush_after _ -> 1
             | Insert_fence_after _ -> 2
           in
           compare (rank a) (rank b))
  in
  let synth_of = function
    | Insert_flush_after { line; _ } ->
        Some
          (Ev
             {
               Event.seq = fresh_seq ();
               op = Pmem.Op.Flush { kind = Pmem.Op.Clwb; line; dirty = true; volatile = false };
               stack = None;
             })
    | Insert_fence_after _ ->
        Some
          (Ev
             {
               Event.seq = fresh_seq ();
               op = Pmem.Op.Fence { kind = Pmem.Op.Sfence; pending_flushes = 0; pending_nt = 0 };
               stack = None;
             })
    | Delete_flush_at _ | Delete_fence_at _ -> None
  in
  let pseq = ref 0 in
  let out = ref [] in
  let push x = out := x :: !out in
  List.iter
    (fun item ->
      match item with
      | Poison _ -> push item
      | Ev (({ Event.op = Pmem.Op.Load _; _ } as _e)) -> push item
      | Ev e ->
          incr pseq;
          (* edits anchor on the persistency index, which loads don't
             advance: consulting [at] on a load would re-apply the previous
             anchor's insertions once per trailing load *)
          let here = at !pseq in
          let deleted =
            List.exists
              (fun ed ->
                match (ed, e.Event.op) with
                | Delete_flush_at _, Pmem.Op.Flush _ | Delete_fence_at _, Pmem.Op.Fence _ ->
                    Hashtbl.replace applied (edit_to_string ed) ();
                    true
                | _ -> false)
              here
          in
          if not deleted then push item;
          List.iter
            (fun ed ->
              match synth_of ed with
              | Some s ->
                  Hashtbl.replace applied (edit_to_string ed) ();
                  push s
              | None -> ())
            here)
    items;
  List.iter
    (fun ed ->
      if not (Hashtbl.mem applied (edit_to_string ed)) then
        Fmt.failwith "Replay.rewrite: edit did not apply: %s" (edit_to_string ed))
    edits;
  List.rev !out

(* Reassign consecutive 1-based seqs after a rewrite, so the rewritten
   trace satisfies the same invariant a recorded one does (seq = emission
   index; for load-free traces, seq = persistency index). The offline
   analyses index stacks by seq, so leaving original seqs in place would
   mis-anchor every event past an insertion. Store payload keys are
   remapped along (stores are never synthesized or deleted). *)
let renumber items payloads =
  let map = Hashtbl.create 64 in
  let n = ref 0 in
  let items =
    List.map
      (function
        | Poison _ as x -> x
        | Ev e ->
            incr n;
            (match e.Event.op with
            | Pmem.Op.Store _ -> Hashtbl.replace map e.Event.seq !n
            | _ -> ());
            Ev { e with Event.seq = !n })
      items
  in
  let payloads' = Hashtbl.create (max 16 (Hashtbl.length payloads)) in
  Hashtbl.iter
    (fun old b ->
      match Hashtbl.find_opt map old with
      | Some fresh -> Hashtbl.replace payloads' fresh b
      | None -> ())
    payloads;
  (items, payloads')

let rewrite t edits =
  (* [stats] is kept from the original recording: a rewritten trace has
     different true counters, recomputed by whoever replays it *)
  let items, payloads = renumber (rewrite_items t.items edits) t.payloads in
  { t with items; payloads }

let rewrite_events evs edits =
  let items, _ =
    renumber (rewrite_items (List.map (fun e -> Ev e) evs) edits) (Hashtbl.create 1)
  in
  List.filter_map (function Ev e -> Some e | Poison _ -> None) items

(* ------------------------------------------------------------------ *)
(* Normalization                                                       *)
(* ------------------------------------------------------------------ *)

(* After a rewrite the recorded per-event metadata is stale: a fence's
   [pending_flushes] still counts a deleted flush, a flush's [dirty] bit
   predates an inserted one. Replaying the stream and capturing what the
   device re-emits yields the same events with metadata recomputed —
   every driven event emits exactly one op, so the streams zip. On an
   unmodified recording this is the identity (the replay-lossless
   property the tests assert). *)
let normalize t =
  let out = ref [] in
  let current = ref None in
  let hook op = current := Some op in
  let after_event (e : Event.t) =
    match !current with
    | Some op ->
        current := None;
        out := { e with Event.op } :: !out
    | None -> Fmt.failwith "Replay.normalize: event #%d re-emitted nothing" e.Event.seq
  in
  ignore (run ~hook ~after_event t);
  List.rev !out

let normalize_events ?(loads = false) ?(eadr = false) ~pool_size evs =
  normalize
    {
      items = List.map (fun e -> Ev e) evs;
      payloads = Hashtbl.create 16;
      pool_size;
      eadr;
      loads;
      stats = Pmem.Stats.create ();
    }
