(** Deterministic trace replay: re-apply a recorded execution (optionally
    rewritten) against a fresh device, reproducing the device statistics,
    crash images and failure points of the original run without re-running
    the target program.

    A recorded {!Event.t} stream is not self-contained: events carry
    addresses and sizes but no store payloads, and allocator poison
    ({!Pmem.Device.poison}) is deliberately invisible to instrumentation.
    {!record} therefore captures two side-channels alongside the trace:

    - {e payloads}: the recorder snoops every store's bytes with
      {!Pmem.Device.peek} at the next instrumentation hook — the hook runs
      before its own instruction takes effect, so by then the previous
      store (and nothing later) has been applied;
    - {e poison}: the device logs each poison call with the number of
      events emitted before it, letting the recorder weave poison back
      between the right events.

    Storage is compact: the events stay in the tracer's packed {!Arena}
    (the recording takes ownership of it, zero-copy) and payloads live in
    an {!Arena.Slab} — one growing byte buffer — instead of one heap
    [bytes] per store. A recording is immutable once built, so concurrent
    replays from several domains may share it.

    One known approximation: a poison overlapping a store that is still
    pending payload resolution snoops the poisoned bytes. For cached
    stores the replayed poison re-applies the same bytes immediately
    after, so images agree anyway; only a non-temporal store whose buffered
    payload is poisoned before the next event could diverge — a pattern
    the allocator (which only poisons freshly carved, not-yet-stored-to
    chunks) never produces. *)

type t = {
  trace : Arena.t;  (** recorded events, packed, execution order *)
  poison : (int * int * int) list;
      (** (events emitted before the poison, addr, size), oldest first *)
  payloads : Arena.Slab.slab;  (** store event seq -> bytes written *)
  pool_size : int;
  eadr : bool;
  loads : bool;  (** the recording traced PM loads *)
  stats : Pmem.Stats.t;  (** device counters at the end of the recorded run *)
}

type item = Ev of Event.t | Poison of { addr : int; size : int }

let events t = Arena.to_list t.trace
let stats t = t.stats
let pool_size t = t.pool_size

(* Stream the recording in execution order with the poison entries woven
   back between events: a poison logged after [c] events precedes the
   event with seq [c + 1]. *)
let iter_items t f =
  let poisons = ref t.poison in
  let rec before seq =
    match !poisons with
    | (c, addr, size) :: rest when c < seq ->
        poisons := rest;
        f (Poison { addr; size });
        before seq
    | _ -> ()
  in
  Arena.iter t.trace (fun e ->
      before e.Event.seq;
      f (Ev e));
  List.iter (fun (_, addr, size) -> f (Poison { addr; size })) !poisons

let items t =
  let out = ref [] in
  iter_items t (fun it -> out := it :: !out);
  List.rev !out

let of_events ?(loads = false) ?(eadr = false) ~pool_size evs =
  let trace = Arena.create ~capacity:(List.length evs) () in
  List.iter (Arena.add trace) evs;
  {
    trace;
    poison = [];
    payloads = Arena.Slab.create ~capacity:64 ();
    pool_size;
    eadr;
    loads;
    stats = Pmem.Stats.create ();
  }

let record ?(loads = false) ?(eadr = false) ~pool_size run =
  Telemetry.Collector.span ~cat:"replay" "record" @@ fun () ->
  let device = Pmem.Device.create ~eadr ~size:pool_size () in
  Pmem.Device.trace_loads device loads;
  let tracer = Tracer.create ~collect:true ~with_stacks:true device in
  let payloads = Arena.Slab.create () in
  let unresolved = ref None in
  let resolve () =
    match !unresolved with
    | None -> ()
    | Some (seq, addr, size) ->
        Arena.Slab.set payloads ~key:seq (Pmem.Device.peek device ~addr ~size);
        unresolved := None
  in
  Tracer.add_listener tracer (fun e _stack ->
      (* the hook runs before [e] takes effect: the previous store has been
         applied, the current one has not *)
      resolve ();
      match e.Event.op with
      | Pmem.Op.Store { addr; size; _ } -> unresolved := Some (e.Event.seq, addr, size)
      | _ -> ());
  run ~device ~framer:(Framer.of_callstack (Tracer.stack tracer));
  resolve ();
  Tracer.detach tracer;
  {
    trace = Trace.arena (Tracer.trace tracer);
    poison = Pmem.Device.poison_log device;
    payloads;
    pool_size;
    eadr;
    loads;
    stats = Pmem.Stats.copy (Pmem.Device.stats device);
  }

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

exception Stop

let apply t device (e : Event.t) =
  match e.Event.op with
  | Pmem.Op.Store { addr; size; nt } ->
      let b =
        match Arena.Slab.find t.payloads e.Event.seq with
        | Some b -> b
        | None -> Bytes.make size '\000' (* no payload recorded: zero fill *)
      in
      if nt then Pmem.Device.store_nt device ~addr b
      else Pmem.Device.store device ~addr b
  | Pmem.Op.Flush { kind; line; volatile; _ } ->
      (* dirty is recomputed by the device; line/volatile are properties of
         the flushed address, which no rewrite changes *)
      Pmem.Device.flush_line device ~kind ~line ~volatile
  | Pmem.Op.Fence { kind; _ } -> (
      match kind with
      | Pmem.Op.Sfence -> Pmem.Device.sfence device
      | Pmem.Op.Mfence -> Pmem.Device.mfence device
      | Pmem.Op.Rmw -> Pmem.Device.rmw_fence device)
  | Pmem.Op.Load { addr; size } -> ignore (Pmem.Device.load device ~addr ~size)

(* The single interpreter loop behind [replay], [materialize] and
   [normalize]. [on_event] fires {e before} the event is applied — the hook
   discipline of the live device, so a crash image captured there is the
   state a fault at that instruction leaves behind. [pseq] is the
   persistency index (1-based count of non-load events, the coordinate
   system of the offline analyses). *)
let run ?hook ?on_event ?after_event t =
  let device = Pmem.Device.create ~eadr:t.eadr ~size:t.pool_size () in
  Pmem.Device.trace_loads device t.loads;
  (match hook with Some h -> Pmem.Device.set_hook device (Some h) | None -> ());
  let pseq = ref 0 in
  (try
     iter_items t (fun item ->
         match item with
         | Poison { addr; size } -> Pmem.Device.poison device ~addr ~size
         | Ev e ->
             (match e.Event.op with Pmem.Op.Load _ -> () | _ -> incr pseq);
             (match on_event with Some f -> f device ~pseq:!pseq e | None -> ());
             apply t device e;
             (match after_event with Some f -> f e | None -> ()))
   with Stop -> ());
  device

let replay ?on_event t =
  Telemetry.Collector.span ~cat:"replay" ~hist:"replay_ns" "replay" @@ fun () ->
  run ?on_event t

(* Batched, prefix-incremental crash-image materializer: one forward pass
   rolls a single prefix image through the recording, so the image prefix
   two consecutive failure points share is applied once instead of being
   rebuilt from scratch per point; each wanted image is handed to [f] the
   moment its pseq is reached and never retained here.

   The pass interprets stores only. Mumak's crash images are
   [Program_prefix] — every store issued before the failure point
   persists — so the image at any point is exactly the recorded store
   payloads (and allocator poison) applied in order, and flushes, fences
   and loads cannot move bytes the view doesn't already show. That
   reduces per-event work to a payload blit, and per-point work to a
   zero-copy {!Pmem.Image.cow} view of the rolling prefix: the oracle's
   recovery run pays for the pages it touches instead of two full-pool
   copies. Each view reads through the shared prefix, so it is valid only
   until [f] returns. *)
let materialize t ~points ~f =
  Telemetry.Collector.span ~cat:"replay" ~hist:"replay_ns" "materialize" @@ fun () ->
  let remaining = Hashtbl.create (max 16 (List.length points)) in
  List.iter (fun (key, pseq) -> Hashtbl.replace remaining pseq key) points;
  if Hashtbl.length remaining > 0 then begin
    let prefix = Pmem.Image.create ~size:t.pool_size in
    let pseq = ref 0 in
    try
      iter_items t (fun item ->
          match item with
          | Poison { addr; size } -> Pmem.Image.write prefix ~addr (Bytes.make size '\xdd')
          | Ev e ->
              (match e.Event.op with Pmem.Op.Load _ -> () | _ -> incr pseq);
              (match Hashtbl.find_opt remaining !pseq with
              | Some key ->
                  Hashtbl.remove remaining !pseq;
                  let image =
                    Telemetry.Collector.span ~cat:"replay" ~hist:"crash_image_ns"
                      ~args:[ ("key", Telemetry.Json.Int key) ]
                      "crash_image" (fun () -> Pmem.Image.cow prefix)
                  in
                  f ~key image;
                  if Hashtbl.length remaining = 0 then raise Stop
              | None -> ());
              (match e.Event.op with
              | Pmem.Op.Store { addr; size; _ } ->
                  let b =
                    match Arena.Slab.find t.payloads e.Event.seq with
                    | Some b -> b
                    | None -> Bytes.make size '\000' (* no payload recorded: zero fill *)
                  in
                  Pmem.Image.write prefix ~addr b
              | Pmem.Op.Flush _ | Pmem.Op.Fence _ | Pmem.Op.Load _ -> ()))
    with Stop -> ()
  end;
  Hashtbl.fold (fun _pseq key acc -> key :: acc) remaining []

(* Field-wise statistics comparison. [loads] only when the recording traced
   loads: an untraced recording still counts the program's loads (including
   the internal reads of [cas]/[fetch_add]) in the original run, but leaves
   no events for replay to re-apply. *)
let stats_match t (s : Pmem.Stats.t) =
  let r = t.stats in
  r.Pmem.Stats.stores = s.Pmem.Stats.stores
  && r.Pmem.Stats.nt_stores = s.Pmem.Stats.nt_stores
  && ((not t.loads) || r.Pmem.Stats.loads = s.Pmem.Stats.loads)
  && r.Pmem.Stats.clflush = s.Pmem.Stats.clflush
  && r.Pmem.Stats.clflushopt = s.Pmem.Stats.clflushopt
  && r.Pmem.Stats.clwb = s.Pmem.Stats.clwb
  && r.Pmem.Stats.sfence = s.Pmem.Stats.sfence
  && r.Pmem.Stats.mfence = s.Pmem.Stats.mfence
  && r.Pmem.Stats.rmw = s.Pmem.Stats.rmw
  && r.Pmem.Stats.bytes_written = s.Pmem.Stats.bytes_written
  && r.Pmem.Stats.high_water_mark = s.Pmem.Stats.high_water_mark

(* ------------------------------------------------------------------ *)
(* Rewriting                                                           *)
(* ------------------------------------------------------------------ *)

type edit =
  | Insert_flush_after of { pseq : int; line : int }
  | Insert_fence_after of { pseq : int }
  | Delete_flush_at of { pseq : int }
  | Delete_fence_at of { pseq : int }
  | Move_flush_to of { pseq : int; to_pseq : int }
  | Set_store_nt of { pseq : int }
  | Set_flush_kind of { pseq : int; kind : Pmem.Op.flush_kind }

let edit_to_string = function
  | Insert_flush_after { pseq; line } ->
      Printf.sprintf "insert flush of line %d after #%d" line pseq
  | Insert_fence_after { pseq } -> Printf.sprintf "insert fence after #%d" pseq
  | Delete_flush_at { pseq } -> Printf.sprintf "delete flush at #%d" pseq
  | Delete_fence_at { pseq } -> Printf.sprintf "delete fence at #%d" pseq
  | Move_flush_to { pseq; to_pseq } ->
      Printf.sprintf "move flush at #%d to after #%d" pseq to_pseq
  | Set_store_nt { pseq } -> Printf.sprintf "make store at #%d non-temporal" pseq
  | Set_flush_kind { pseq; kind } ->
      Printf.sprintf "convert flush at #%d to %s" pseq (Pmem.Op.flush_kind_to_string kind)

let edit_anchor = function
  | Insert_flush_after { pseq; _ }
  | Insert_fence_after { pseq }
  | Delete_flush_at { pseq }
  | Delete_fence_at { pseq }
  | Move_flush_to { pseq; _ }
  | Set_store_nt { pseq }
  | Set_flush_kind { pseq; _ } -> pseq

(* Synthesized events get placeholder negative seqs (renumbered away by
   the rewrite) and no stack: the offline failure-point detector skips
   stackless events, so an inserted instruction never mints new failure
   points — it only changes which states the surrounding ones can
   observe. A {e moved} event, by contrast, is the recorded instruction
   itself repositioned: it keeps its stack (and so its failure-point
   identity) and is re-judged at its new position by whoever replays the
   rewritten trace. *)
let rewrite_items items edits =
  let synth = ref 0 in
  let fresh_seq () = decr synth; !synth in
  let applied = Hashtbl.create (List.length edits) in
  let mark ed = Hashtbl.replace applied (edit_to_string ed) () in
  List.iter
    (function
      | Move_flush_to { pseq; to_pseq } when to_pseq < pseq ->
          Fmt.failwith "Replay.rewrite: cannot move #%d backwards to #%d" pseq to_pseq
      | _ -> ())
    edits;
  let at p =
    List.filter (fun ed -> edit_anchor ed = p) edits
    (* flush-before-fence: an Insert_flush fix expands to flush + fence and
       the flush must precede the fence that drains it *)
    |> List.stable_sort (fun a b ->
           let rank = function
             | Set_store_nt _ | Set_flush_kind _ -> 0
             | Delete_flush_at _ | Delete_fence_at _ | Move_flush_to _ -> 1
             | Insert_flush_after _ -> 2
             | Insert_fence_after _ -> 3
           in
           compare (rank a) (rank b))
  in
  let synth_of = function
    | Insert_flush_after { line; _ } ->
        Some
          (Ev
             {
               Event.seq = fresh_seq ();
               op = Pmem.Op.Flush { kind = Pmem.Op.Clwb; line; dirty = true; volatile = false };
               stack = None;
             })
    | Insert_fence_after _ ->
        Some
          (Ev
             {
               Event.seq = fresh_seq ();
               op = Pmem.Op.Fence { kind = Pmem.Op.Sfence; pending_flushes = 0; pending_nt = 0 };
               stack = None;
             })
    | Delete_flush_at _ | Delete_fence_at _ | Move_flush_to _ | Set_store_nt _
    | Set_flush_kind _ -> None
  in
  (* in-flight moves: destination anchor -> captured events, kept in source
     order so simultaneous landings are deterministic *)
  let landings : (int, (int * edit * item) list) Hashtbl.t = Hashtbl.create 8 in
  let pseq = ref 0 in
  let out = ref [] in
  let push x = out := x :: !out in
  List.iter
    (fun item ->
      match item with
      | Poison _ -> push item
      | Ev (({ Event.op = Pmem.Op.Load _; _ } as _e)) -> push item
      | Ev e ->
          incr pseq;
          (* edits anchor on the persistency index, which loads don't
             advance: consulting [at] on a load would re-apply the previous
             anchor's insertions once per trailing load *)
          let here = at !pseq in
          (* in-place conversions first, so a converted event is what a
             delete or move at the same anchor would consume *)
          let e =
            List.fold_left
              (fun (e : Event.t) ed ->
                match (ed, e.Event.op) with
                | Set_store_nt _, Pmem.Op.Store { addr; size; nt = false } ->
                    mark ed;
                    { e with Event.op = Pmem.Op.Store { addr; size; nt = true } }
                | Set_store_nt _, Pmem.Op.Store { nt = true; _ } ->
                    mark ed;
                    e (* already non-temporal: idempotent *)
                | Set_flush_kind { kind; _ }, Pmem.Op.Flush { line; dirty; volatile; _ } ->
                    mark ed;
                    { e with Event.op = Pmem.Op.Flush { kind; line; dirty; volatile } }
                | _ -> e)
              e here
          in
          let deleted =
            List.exists
              (fun ed ->
                match (ed, e.Event.op) with
                | Delete_flush_at _, Pmem.Op.Flush _ | Delete_fence_at _, Pmem.Op.Fence _ ->
                    mark ed;
                    true
                | _ -> false)
              here
          in
          let moved =
            (not deleted)
            && List.exists
                 (fun ed ->
                   match (ed, e.Event.op) with
                   | Move_flush_to { to_pseq; _ }, Pmem.Op.Flush _ ->
                       let prior =
                         Option.value ~default:[] (Hashtbl.find_opt landings to_pseq)
                       in
                       Hashtbl.replace landings to_pseq (prior @ [ (!pseq, ed, Ev e) ]);
                       true
                   | _ -> false)
                 here
          in
          if (not deleted) && not moved then push (Ev e);
          (* moved-in events land before synthesized insertions, so a flush
             moved here is drained by a fence inserted at the same anchor *)
          (match Hashtbl.find_opt landings !pseq with
          | Some l ->
              Hashtbl.remove landings !pseq;
              List.iter
                (fun (_, ed, it) ->
                  mark ed;
                  push it)
                (List.sort (fun (a, _, _) (b, _, _) -> compare a b) l)
          | None -> ());
          List.iter
            (fun ed ->
              match synth_of ed with
              | Some s ->
                  mark ed;
                  push s
              | None -> ())
            here)
    items;
  List.iter
    (fun ed ->
      if not (Hashtbl.mem applied (edit_to_string ed)) then
        Fmt.failwith "Replay.rewrite: edit did not apply: %s" (edit_to_string ed))
    edits;
  List.rev !out

(* Reassign consecutive 1-based seqs after a rewrite, packing the edited
   stream into a fresh arena/slab/poison log, so the rewritten trace
   satisfies the same invariant a recorded one does (seq = emission index;
   for load-free traces, seq = persistency index). The offline analyses
   index stacks by seq, so leaving original seqs in place would mis-anchor
   every event past an insertion. Store payload keys are remapped along
   (stores are never synthesized or deleted), and poison op-counts are
   recomputed from the item positions. *)
let repack t edited =
  let trace = Arena.create ~capacity:(Arena.length t.trace) () in
  let payloads = Arena.Slab.create ~capacity:(Arena.Slab.bytes_used t.payloads) () in
  let poison = ref [] in
  let n = ref 0 in
  List.iter
    (fun item ->
      match item with
      | Poison { addr; size } -> poison := (!n, addr, size) :: !poison
      | Ev e ->
          incr n;
          (match e.Event.op with
          | Pmem.Op.Store _ -> (
              match Arena.Slab.find t.payloads e.Event.seq with
              | Some b -> Arena.Slab.set payloads ~key:!n b
              | None -> ())
          | _ -> ());
          Arena.add trace { e with Event.seq = !n })
    edited;
  { t with trace; payloads; poison = List.rev !poison }

let rewrite t edits =
  (* [stats] is kept from the original recording: a rewritten trace has
     different true counters, recomputed by whoever replays it *)
  repack t (rewrite_items (items t) edits)

let rewrite_events evs edits =
  let n = ref 0 in
  rewrite_items (List.map (fun e -> Ev e) evs) edits
  |> List.filter_map (function
       | Poison _ -> None
       | Ev e ->
           incr n;
           Some { e with Event.seq = !n })

(* ------------------------------------------------------------------ *)
(* Normalization                                                       *)
(* ------------------------------------------------------------------ *)

(* After a rewrite the recorded per-event metadata is stale: a fence's
   [pending_flushes] still counts a deleted flush, a flush's [dirty] bit
   predates an inserted one. Replaying the stream and capturing what the
   device re-emits yields the same events with metadata recomputed —
   every driven event emits exactly one op, so the streams zip. On an
   unmodified recording this is the identity (the replay-lossless
   property the tests assert). *)
let normalize t =
  let out = ref [] in
  let current = ref None in
  let hook op = current := Some op in
  let after_event (e : Event.t) =
    match !current with
    | Some op ->
        current := None;
        out := { e with Event.op } :: !out
    | None -> Fmt.failwith "Replay.normalize: event #%d re-emitted nothing" e.Event.seq
  in
  ignore (run ~hook ~after_event t);
  List.rev !out

let normalize_events ?(loads = false) ?(eadr = false) ~pool_size evs =
  normalize (of_events ~loads ~eadr ~pool_size evs)
