(** Deterministic trace replay: re-apply a recorded execution (optionally
    rewritten) against a fresh device, reproducing device statistics, crash
    images and failure points without re-running the target program.

    Events alone are not self-contained — they carry no store payloads, and
    allocator poison is invisible to instrumentation — so a {!t} couples the
    event stream with two recorder-captured side-channels: per-store
    payloads (snooped with {!Pmem.Device.peek} at the next hook, when the
    store has just applied) and the poison log woven back between events.

    Storage is compact ({!Arena}): the recording takes ownership of the
    tracer's packed event arena and keeps payloads in a byte slab. A
    recording is immutable once built, so several domains may replay or
    materialize from the same recording concurrently. *)

type t

val record :
  ?loads:bool ->
  ?eadr:bool ->
  pool_size:int ->
  (device:Pmem.Device.t -> framer:Framer.t -> unit) ->
  t
(** One fully-instrumented execution of [run] (stacks on every event),
    capturing the trace plus the payload and poison side-channels. *)

val of_events : ?loads:bool -> ?eadr:bool -> pool_size:int -> Event.t list -> t
(** A recording built from bare events: no payloads (stores replay as zero
    fill) and no poison. Enough for metadata normalization, rewriting and
    failure-point enumeration; crash images of payload-carrying programs
    need {!record}. *)

val events : t -> Event.t list
(** The recorded events in execution order, poison entries dropped. *)

val stats : t -> Pmem.Stats.t
(** Device counters at the end of the recorded run. *)

val pool_size : t -> int

exception Stop
(** Raise from [on_event] to end a replay early (after a crash image has
    been captured, say). *)

val replay : ?on_event:(Pmem.Device.t -> pseq:int -> Event.t -> unit) -> t -> Pmem.Device.t
(** [replay t] re-applies the recording to a fresh device and returns it.
    [on_event] fires {e before} each event is applied — the hook discipline
    of the live device, so [Pmem.Device.crash] called there yields the
    image a fault at that instruction leaves behind. [pseq] is the
    persistency index (1-based count of non-load events), the coordinate
    system of the offline analyses. *)

val materialize :
  t -> points:(int * int) list -> f:(key:int -> Pmem.Image.t -> unit) -> int list
(** [materialize t ~points ~f] — the batched, prefix-incremental crash-image
    materializer. [points] is a [(key, pseq)] list (keys and pseqs unique,
    any order); one forward replay pass rolls a single device through the
    recording, so the prefix two consecutive failure points share is
    applied once instead of rebuilt from scratch per point. Each wanted
    image is passed to [f] the moment its pseq is reached — before the
    event at that index applies, exactly where live injection crashes — and
    is not retained here, so callers can stream oracle checks in constant
    image memory. Stops as soon as the last wanted image is out. Returns
    the keys of points never reached (empty for any in-range pseq set);
    the engine re-executes those live. *)

val stats_match : t -> Pmem.Stats.t -> bool
(** Do the replayed device counters equal the recorded run's?  [loads] is
    only compared when the recording traced loads: an untraced recording
    counts the original program's loads (including the internal reads of
    [cas]/[fetch_add]) but leaves no load events to re-apply. *)

(** {1 Rewriting} *)

(** A trace edit, anchored at a persistency index of the {e original}
    trace (anchors never shift as edits accumulate; deleted events still
    consume their index). *)
type edit =
  | Insert_flush_after of { pseq : int; line : int }
      (** insert [clwb line] right after the anchor event *)
  | Insert_fence_after of { pseq : int }
      (** insert [sfence] right after the anchor event *)
  | Delete_flush_at of { pseq : int }  (** drop the flush at the anchor *)
  | Delete_fence_at of { pseq : int }  (** drop the fence at the anchor *)
  | Move_flush_to of { pseq : int; to_pseq : int }
      (** reposition the flush at the anchor to right after the (later)
          event at [to_pseq] — both indices in {e original} coordinates.
          The moved event keeps its stack, so its failure-point identity
          survives the move and is re-judged at the new position. Several
          flushes moved to one destination land in source order, before
          any synthesized insertion at that anchor (an inserted fence
          there drains them). Backward moves raise. *)
  | Set_store_nt of { pseq : int }
      (** make the store at the anchor non-temporal (idempotent on an NT
          store); its payload is preserved *)
  | Set_flush_kind of { pseq : int; kind : Pmem.Op.flush_kind }
      (** change the flush instruction at the anchor (e.g. clflush ->
          clwb); conversions apply before any delete or move at the same
          anchor *)

val edit_to_string : edit -> string

val rewrite : t -> edit list -> t
(** Apply every edit, then renumber seqs consecutively from 1 (remapping
    payload keys and poison positions along), so the rewritten trace
    satisfies the same [seq = emission index] invariant a recorded one
    does. Synthesized events carry no stack — the offline failure-point
    detector skips stackless events, so an insertion never mints new
    failure points. Raises if an edit's anchor does not name an event of
    the required kind. The result's statistics still describe the original
    recording. *)

val rewrite_events : Event.t list -> edit list -> Event.t list
(** {!rewrite} over a bare event list (e.g. a load-traced recording whose
    side-channels are not needed). *)

(** {1 Normalization} *)

val normalize : t -> Event.t list
(** Replay the recording and return its events with the device-recomputed
    metadata (flush [dirty]/[volatile] bits, fence pending counts): after a
    rewrite the recorded metadata is stale — a fence's [pending_flushes]
    still counts a deleted flush. On an unmodified recording this is the
    identity (the replay-lossless property the tests assert). *)

val normalize_events :
  ?loads:bool -> ?eadr:bool -> pool_size:int -> Event.t list -> Event.t list
(** {!normalize} over a bare event list (payloads replay as zero fill,
    which metadata recomputation never reads). *)
