(** Deterministic trace replay: re-apply a recorded execution (optionally
    rewritten) against a fresh device, reproducing device statistics, crash
    images and failure points without re-running the target program.

    Events alone are not self-contained — they carry no store payloads, and
    allocator poison is invisible to instrumentation — so a {!t} couples the
    event stream with two recorder-captured side-channels: per-store
    payloads (snooped with {!Pmem.Device.peek} at the next hook, when the
    store has just applied) and the poison log woven back between events. *)

type item = Ev of Event.t | Poison of { addr : int; size : int }

type t = {
  items : item list;  (** execution order; poison woven between events *)
  payloads : (int, bytes) Hashtbl.t;  (** store event seq -> bytes written *)
  pool_size : int;
  eadr : bool;
  loads : bool;  (** the recording traced PM loads *)
  stats : Pmem.Stats.t;  (** device counters at the end of the recorded run *)
}

val record :
  ?loads:bool ->
  ?eadr:bool ->
  pool_size:int ->
  (device:Pmem.Device.t -> framer:Framer.t -> unit) ->
  t
(** One fully-instrumented execution of [run] (stacks on every event),
    capturing the trace plus the payload and poison side-channels. *)

val events : t -> Event.t list
(** The recorded events in execution order, poison entries dropped. *)

exception Stop
(** Raise from [on_event] to end a replay early (after a crash image has
    been captured, say). *)

val replay : ?on_event:(Pmem.Device.t -> pseq:int -> Event.t -> unit) -> t -> Pmem.Device.t
(** [replay t] re-applies the recording to a fresh device and returns it.
    [on_event] fires {e before} each event is applied — the hook discipline
    of the live device, so [Pmem.Device.crash] called there yields the
    image a fault at that instruction leaves behind. [pseq] is the
    persistency index (1-based count of non-load events), the coordinate
    system of the offline analyses. *)

val stats_match : t -> Pmem.Stats.t -> bool
(** Do the replayed device counters equal the recorded run's?  [loads] is
    only compared when the recording traced loads: an untraced recording
    counts the original program's loads (including the internal reads of
    [cas]/[fetch_add]) but leaves no load events to re-apply. *)

(** {1 Rewriting} *)

(** A trace edit, anchored at a persistency index of the {e original}
    trace (anchors never shift as edits accumulate; deleted events still
    consume their index). *)
type edit =
  | Insert_flush_after of { pseq : int; line : int }
      (** insert [clwb line] right after the anchor event *)
  | Insert_fence_after of { pseq : int }
      (** insert [sfence] right after the anchor event *)
  | Delete_flush_at of { pseq : int }  (** drop the flush at the anchor *)
  | Delete_fence_at of { pseq : int }  (** drop the fence at the anchor *)

val edit_to_string : edit -> string

val rewrite : t -> edit list -> t
(** Apply every edit, then renumber seqs consecutively from 1 (remapping
    payload keys along), so the rewritten trace satisfies the same
    [seq = emission index] invariant a recorded one does. Synthesized
    events carry no stack — the offline failure-point detector skips
    stackless events, so an insertion never mints new failure points.
    Raises if an edit's anchor does not name an event of the required kind.
    The result's [stats] field still describes the original recording. *)

val rewrite_events : Event.t list -> edit list -> Event.t list
(** {!rewrite} over a bare event list (e.g. a load-traced recording whose
    side-channels are not needed). *)

(** {1 Normalization} *)

val normalize : t -> Event.t list
(** Replay the recording and return its events with the device-recomputed
    metadata (flush [dirty]/[volatile] bits, fence pending counts): after a
    rewrite the recorded metadata is stale — a fence's [pending_flushes]
    still counts a deleted flush. On an unmodified recording this is the
    identity (the replay-lossless property the tests assert). *)

val normalize_events :
  ?loads:bool -> ?eadr:bool -> pool_size:int -> Event.t list -> Event.t list
(** {!normalize} over a bare event list (payloads replay as zero fill,
    which metadata recomputation never reads). *)
