(** An in-memory trace of PM accesses, collected during one execution of the
    workload and consumed in a single pass by the analyses. Storage is an
    {!Arena}: packed integer records with interned call paths, decoded back
    into {!Event.t} values on access. *)

type t

val create : unit -> t

val add : t -> Event.t -> unit
(** Append one event (O(1); the trace keeps insertion order). *)

val length : t -> int
val clear : t -> unit

val iter : t -> (Event.t -> unit) -> unit
(** [iter t f] applies [f] to every event in execution order. *)

val fold : t -> 'a -> ('a -> Event.t -> 'a) -> 'a
(** [fold t init f] folds over events in execution order. *)

val to_list : t -> Event.t list
(** Events in execution order. *)

val arena : t -> Arena.t
(** The packed backing store (a zero-copy view, shared with the trace). *)

val approx_size_words : t -> int
(** Approximate resident size of the trace in words, for the Table 2
    resource accounting. *)

val serialize : t -> string
(** [serialize t] renders the trace, one event per line, in execution
    order — the analogue of the trace file the original Mumak writes
    between the tracing and analysis processes. Stacks (when collected)
    round-trip. *)

val deserialize : string -> t
(** [deserialize s] rebuilds a trace serialized by {!serialize}. Raises
    [Failure] on malformed input. *)

val event_to_line : Event.t -> string
(** The per-event line codec behind {!serialize}/{!deserialize}, exposed so
    the property tests can check the arena-backed round-trip against a
    plain list-backed one. *)

val event_of_line : string -> Event.t
