(** A traced PM access: the device operation plus the execution context the
    instrumentation captured (monotonic instruction counter and, optionally,
    the call stack).

    Mirroring the optimisation in paper section 5, full backtraces are
    expensive, so traces normally carry only the instruction counter; the
    stack is re-attached on demand by a second, minimally instrumented
    execution (see {!Tracer.resolve_stacks}). *)

type t = {
  seq : int;
      (** monotonically increasing instruction counter, assigned by the
          tracer to {e every} hooked event — including loads when load
          tracing is on, which is why analyses that mix load-traced and
          load-free recordings must align them on a persistency index
          rather than on [seq] *)
  op : Pmem.Op.t;  (** the device operation (store, flush, fence, load) *)
  stack : Callstack.capture option;
      (** the call path and per-frame ordinal at the instruction, when the
          tracer ran with stack capture enabled *)
}

val pp : Format.formatter -> t -> unit
(** ["#seq op [stack]"] — the trace dump format. *)
