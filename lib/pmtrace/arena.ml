(** Compact trace storage: packed event records in a flat [Bigarray] plus
    int-indexed call-path interning and a payload slab. See the interface
    for the layout rationale. *)

(* One event = [slots] consecutive integers:
   [seq; op tag; a; b; c; stack (0 = none, else path id + 1); op_index]
   with the op fields packed as
     Store  {addr; size; nt}                    -> tag 0, a=addr, b=size, c=nt
     Flush  {kind; line; dirty; volatile}       -> tag 1, a=kind, b=line,
                                                   c = dirty lor (volatile lsl 1)
     Fence  {kind; pending_flushes; pending_nt} -> tag 2, a=kind, b=pf, c=pnt
     Load   {addr; size}                        -> tag 3, a=addr, b=size *)
let slots = 7

type packed = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  mutable data : packed;
  mutable len : int; (* events stored *)
  ids : (string list, int) Hashtbl.t; (* call path -> interning index *)
  mutable paths : string list array; (* interning index -> call path *)
  mutable npaths : int;
  mutable path_words : int; (* resident size of the interned paths *)
}

let alloc cap = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (cap * slots)

let create ?(capacity = 256) () =
  {
    data = alloc (max 16 capacity);
    len = 0;
    ids = Hashtbl.create 64;
    paths = Array.make 16 [];
    npaths = 0;
    path_words = 0;
  }

let length t = t.len

let flush_kind_code = function
  | Pmem.Op.Clflush -> 0
  | Pmem.Op.Clflushopt -> 1
  | Pmem.Op.Clwb -> 2

let flush_kind_of_code = function
  | 0 -> Pmem.Op.Clflush
  | 1 -> Pmem.Op.Clflushopt
  | _ -> Pmem.Op.Clwb

let fence_kind_code = function Pmem.Op.Sfence -> 0 | Pmem.Op.Mfence -> 1 | Pmem.Op.Rmw -> 2
let fence_kind_of_code = function 0 -> Pmem.Op.Sfence | 1 -> Pmem.Op.Mfence | _ -> Pmem.Op.Rmw

let intern t path =
  match Hashtbl.find_opt t.ids path with
  | Some id -> id
  | None ->
      let id = t.npaths in
      if id = Array.length t.paths then begin
        let bigger = Array.make (2 * id) [] in
        Array.blit t.paths 0 bigger 0 id;
        t.paths <- bigger
      end;
      t.paths.(id) <- path;
      t.npaths <- id + 1;
      Hashtbl.replace t.ids path id;
      (* 3 words per list cell + header/content words per string *)
      t.path_words <-
        t.path_words
        + List.fold_left (fun acc s -> acc + 3 + 2 + ((String.length s + 7) / 8)) 0 path;
      id

let ensure_capacity t =
  let cap = Bigarray.Array1.dim t.data / slots in
  if t.len = cap then begin
    let bigger = alloc (2 * cap) in
    Bigarray.Array1.blit t.data (Bigarray.Array1.sub bigger 0 (cap * slots));
    t.data <- bigger
  end

let add t (e : Event.t) =
  ensure_capacity t;
  let base = t.len * slots in
  let tag, a, b, c =
    match e.Event.op with
    | Pmem.Op.Store { addr; size; nt } -> (0, addr, size, if nt then 1 else 0)
    | Pmem.Op.Flush { kind; line; dirty; volatile } ->
        ( 1,
          flush_kind_code kind,
          line,
          (if dirty then 1 else 0) lor if volatile then 2 else 0 )
    | Pmem.Op.Fence { kind; pending_flushes; pending_nt } ->
        (2, fence_kind_code kind, pending_flushes, pending_nt)
    | Pmem.Op.Load { addr; size } -> (3, addr, size, 0)
  in
  let stack, op_index =
    match e.Event.stack with
    | None -> (0, 0)
    | Some cap -> (intern t cap.Callstack.path + 1, cap.Callstack.op_index)
  in
  let d = t.data in
  d.{base} <- e.Event.seq;
  d.{base + 1} <- tag;
  d.{base + 2} <- a;
  d.{base + 3} <- b;
  d.{base + 4} <- c;
  d.{base + 5} <- stack;
  d.{base + 6} <- op_index;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Arena.get";
  let d = t.data in
  let base = i * slots in
  let op =
    match d.{base + 1} with
    | 0 -> Pmem.Op.Store { addr = d.{base + 2}; size = d.{base + 3}; nt = d.{base + 4} = 1 }
    | 1 ->
        Pmem.Op.Flush
          {
            kind = flush_kind_of_code d.{base + 2};
            line = d.{base + 3};
            dirty = d.{base + 4} land 1 = 1;
            volatile = d.{base + 4} land 2 = 2;
          }
    | 2 ->
        Pmem.Op.Fence
          {
            kind = fence_kind_of_code d.{base + 2};
            pending_flushes = d.{base + 3};
            pending_nt = d.{base + 4};
          }
    | _ -> Pmem.Op.Load { addr = d.{base + 2}; size = d.{base + 3} }
  in
  let stack =
    match d.{base + 5} with
    | 0 -> None
    | id -> Some { Callstack.path = t.paths.(id - 1); op_index = d.{base + 6} }
  in
  { Event.seq = d.{base}; op; stack }

let iter t f =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let fold t init f =
  let acc = ref init in
  iter t (fun e -> acc := f !acc e);
  !acc

let to_list t = List.rev (fold t [] (fun acc e -> e :: acc))
let clear t = t.len <- 0
let path_count t = t.npaths
let path_id t path = Hashtbl.find_opt t.ids path
let words t = (t.len * slots) + t.path_words

module Slab = struct
  type slab = {
    mutable buf : Bytes.t;
    mutable used : int;
    index : (int, int * int) Hashtbl.t; (* key -> (offset, length) *)
  }

  let create ?(capacity = 4096) () =
    { buf = Bytes.create (max 64 capacity); used = 0; index = Hashtbl.create 64 }

  let set t ~key b =
    let n = Bytes.length b in
    if t.used + n > Bytes.length t.buf then begin
      let bigger = Bytes.create (max (2 * Bytes.length t.buf) (t.used + n)) in
      Bytes.blit t.buf 0 bigger 0 t.used;
      t.buf <- bigger
    end;
    Bytes.blit b 0 t.buf t.used n;
    Hashtbl.replace t.index key (t.used, n);
    t.used <- t.used + n

  let find t key =
    Option.map (fun (off, len) -> Bytes.sub t.buf off len) (Hashtbl.find_opt t.index key)

  let iter t f = Hashtbl.iter (fun key (off, len) -> f key (Bytes.sub t.buf off len)) t.index
  let length t = Hashtbl.length t.index
  let bytes_used t = t.used
end
