(** Compact trace storage: packed event records in a flat [Bigarray] plus
    int-indexed call-path interning and a payload slab.

    A boxed {!Event.t} costs ~13 words per event before counting its stack
    capture, whose [string list] path is freshly allocated per event and
    retained for the lifetime of the trace. The arena packs each event into
    seven integers and interns call paths, so equal paths are stored once
    and every event references them by index; events are decoded back into
    ordinary {!Event.t} values on access (short-lived, minor-heap cheap).
    Replay recordings keep store payloads in a {!Slab}: one growing byte
    buffer plus a seq-indexed offset table, instead of one heap [bytes] per
    store. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh arena; [capacity] is the initial event capacity (grows by
    doubling). *)

val length : t -> int
(** Events stored. *)

val add : t -> Event.t -> unit
(** Append one event (amortized O(1)). The event's stack path, if any, is
    interned: structurally equal paths share one stored copy. *)

val get : t -> int -> Event.t
(** [get t i] decodes the [i]-th event (0-based, insertion order). Decoded
    events of equal paths share the {e same} path list physically —
    the interning-stability property the tests assert.
    @raise Invalid_argument when [i] is out of bounds. *)

val iter : t -> (Event.t -> unit) -> unit
(** Apply to every event in insertion order. *)

val fold : t -> 'a -> ('a -> Event.t -> 'a) -> 'a

val to_list : t -> Event.t list
(** Decode the whole arena, insertion order. *)

val clear : t -> unit
(** Drop all events (interned paths are kept: ids remain stable across
    [clear], and a stale entry costs only its one stored copy). *)

val path_count : t -> int
(** Distinct call paths interned so far. *)

val path_id : t -> string list -> int option
(** The interning index of a path, if it has been seen. Stable: once
    assigned, a path's id never changes. *)

val words : t -> int
(** Approximate resident size in words: packed storage plus interned path
    storage — the arena analogue of the old 13-words-per-event estimate. *)

(** Payload slab: store payload bytes appended to one growing buffer,
    indexed by event seq. *)
module Slab : sig
  type slab

  val create : ?capacity:int -> unit -> slab
  val set : slab -> key:int -> bytes -> unit
  (** Bind [key] to a copy of the payload. Rebinding a key abandons the old
      bytes in the buffer (the recorder binds each store seq once). *)

  val find : slab -> int -> bytes option
  (** A fresh copy of the payload bound to [key], if any. *)

  val iter : slab -> (int -> bytes -> unit) -> unit
  (** Visit every binding (unspecified order); payloads are fresh copies. *)

  val length : slab -> int
  (** Number of bindings. *)

  val bytes_used : slab -> int
  (** Bytes appended to the buffer (including abandoned rebinding slack). *)
end
