(** An in-memory trace of PM accesses, collected during one execution of the
    workload and consumed in a single pass by the analyses. Storage is an
    {!Arena}: packed integer records with interned call paths, decoded back
    into {!Event.t} values on access. *)

type t = Arena.t

let create () = Arena.create ()
let add t e = Arena.add t e
let length t = Arena.length t
let clear t = Arena.clear t

(** [iter t f] applies [f] to every event in execution order. *)
let iter t f = Arena.iter t f

(** [fold t init f] folds over events in execution order. *)
let fold t init f = Arena.fold t init f

let to_list t = Arena.to_list t
let arena t = t

(** Approximate resident size of the trace in words, for the Table 2
    resource accounting: the packed arena storage plus interned paths
    (formerly ~13 boxed words per event). *)
let approx_size_words t = Arena.words t

(* ------------------------------------------------------------------ *)
(* Serialization: the analogue of the trace file the original Mumak    *)
(* writes between the tracing and analysis processes. One line per     *)
(* event; the static analyzer replays serialized traces offline.       *)
(* ------------------------------------------------------------------ *)

let flush_kind_to_char = function
  | Pmem.Op.Clflush -> 'c'
  | Pmem.Op.Clflushopt -> 'o'
  | Pmem.Op.Clwb -> 'w'

let flush_kind_of_char = function
  | 'c' -> Pmem.Op.Clflush
  | 'o' -> Pmem.Op.Clflushopt
  | 'w' -> Pmem.Op.Clwb
  | c -> Fmt.failwith "Trace.deserialize: unknown flush kind %c" c

let fence_kind_to_char = function
  | Pmem.Op.Sfence -> 's'
  | Pmem.Op.Mfence -> 'm'
  | Pmem.Op.Rmw -> 'r'

let fence_kind_of_char = function
  | 's' -> Pmem.Op.Sfence
  | 'm' -> Pmem.Op.Mfence
  | 'r' -> Pmem.Op.Rmw
  | c -> Fmt.failwith "Trace.deserialize: unknown fence kind %c" c

let event_to_line (e : Event.t) =
  let op =
    match e.Event.op with
    | Pmem.Op.Store { addr; size; nt } ->
        Printf.sprintf "S %d %d %d" addr size (if nt then 1 else 0)
    | Pmem.Op.Flush { kind; line; dirty; volatile } ->
        Printf.sprintf "F %c %d %d %d" (flush_kind_to_char kind) line
          (if dirty then 1 else 0)
          (if volatile then 1 else 0)
    | Pmem.Op.Fence { kind; pending_flushes; pending_nt } ->
        Printf.sprintf "N %c %d %d" (fence_kind_to_char kind) pending_flushes pending_nt
    | Pmem.Op.Load { addr; size } -> Printf.sprintf "L %d %d" addr size
  in
  let stack =
    match e.Event.stack with
    | None -> ""
    | Some c ->
        Printf.sprintf "%s@%d"
          (String.concat ">" c.Callstack.path)
          c.Callstack.op_index
  in
  Printf.sprintf "%d|%s|%s" e.Event.seq op stack

let event_of_line line =
  match String.split_on_char '|' line with
  | [ seq; op; stack ] ->
      let seq = int_of_string seq in
      let bool_of s = not (String.equal s "0") in
      let op =
        match String.split_on_char ' ' op with
        | [ "S"; addr; size; nt ] ->
            Pmem.Op.Store
              { addr = int_of_string addr; size = int_of_string size; nt = bool_of nt }
        | [ "F"; kind; l; dirty; volatile ] ->
            Pmem.Op.Flush
              {
                kind = flush_kind_of_char kind.[0];
                line = int_of_string l;
                dirty = bool_of dirty;
                volatile = bool_of volatile;
              }
        | [ "N"; kind; pf; pnt ] ->
            Pmem.Op.Fence
              {
                kind = fence_kind_of_char kind.[0];
                pending_flushes = int_of_string pf;
                pending_nt = int_of_string pnt;
              }
        | [ "L"; addr; size ] ->
            Pmem.Op.Load { addr = int_of_string addr; size = int_of_string size }
        | _ -> Fmt.failwith "Trace.deserialize: bad op %S" op
      in
      let stack =
        if String.equal stack "" then None
        else
          match String.rindex_opt stack '@' with
          | None -> Fmt.failwith "Trace.deserialize: bad stack %S" stack
          | Some i ->
              let path = String.split_on_char '>' (String.sub stack 0 i) in
              let op_index =
                int_of_string (String.sub stack (i + 1) (String.length stack - i - 1))
              in
              Some { Callstack.path; op_index }
      in
      { Event.seq; op; stack }
  | _ -> Fmt.failwith "Trace.deserialize: bad line %S" line

(** [serialize t] renders the trace, one event per line, in execution
    order. Stacks (when collected) round-trip. *)
let serialize t =
  let buf = Buffer.create (64 * (1 + length t)) in
  let first = ref true in
  iter t (fun e ->
      if !first then first := false else Buffer.add_char buf '\n';
      Buffer.add_string buf (event_to_line e));
  Buffer.contents buf

(** [deserialize s] rebuilds a trace serialized by {!serialize}. *)
let deserialize s =
  let t = create () in
  String.split_on_char '\n' s
  |> List.iter (fun line -> if not (String.equal line "") then add t (event_of_line line));
  t
