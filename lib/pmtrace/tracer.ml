(** Glue between a {!Pmem.Device} and trace collection: the Pin-tool
    analogue. A tracer owns the call stack the application pushes frames
    onto, assigns instruction counters, and appends events to a trace
    (arena-backed — see {!Trace} and {!Arena} — so a retained recording
    costs packed integer records, not one heap object per event).

    Extra listeners can be attached (the fault injector attaches one to
    watch for failure points without paying for trace storage). *)

type t = {
  device : Pmem.Device.t;
  stack : Callstack.t;
  trace : Trace.t;
  mutable seq : int;
  mutable collect : bool;  (** append events to the trace buffer *)
  mutable with_stacks : bool;  (** capture a backtrace on every event *)
  mutable listeners : (Event.t -> Callstack.t -> unit) list;
}

let create ?(collect = true) ?(with_stacks = false) device =
  let t =
    {
      device;
      stack = Callstack.create ();
      trace = Trace.create ();
      seq = 0;
      collect;
      with_stacks;
      listeners = [];
    }
  in
  Pmem.Device.set_hook device
    (Some
       (fun op ->
         t.seq <- t.seq + 1;
         Callstack.tick t.stack;
         let stack = if t.with_stacks then Some (Callstack.capture t.stack) else None in
         let event = { Event.seq = t.seq; op; stack } in
         List.iter (fun l -> l event t.stack) t.listeners;
         if t.collect then Trace.add t.trace event));
  t

let device t = t.device
let trace t = t.trace
let stack t = t.stack
let seq t = t.seq

let detach t =
  (* raw instrumented events this tracer saw, summed over all executions of
     a run (the engine's "ta.events" counts trace-analysis input only) *)
  Telemetry.Collector.count "trace.events" t.seq;
  Pmem.Device.set_hook t.device None

let add_listener t l = t.listeners <- t.listeners @ [ l ]

let set_collect t flag = t.collect <- flag
let set_with_stacks t flag = t.with_stacks <- flag

(** [with_frame t label f] runs [f] with [label] pushed on the traced call
    stack; applications under test use this at function entry. *)
let with_frame t label f = Callstack.with_frame t.stack label f

(** Re-attach call stacks to a stack-less trace by re-running the same
    deterministic execution with minimal instrumentation: [run] must repeat
    the exact original execution against [t.device]. Events whose [seq]
    appears in [wanted] get their stacks captured; the resolved captures are
    returned indexed by [seq]. This mirrors the instruction-counter
    optimisation of paper section 5. *)
let resolve_stacks t ~wanted ~run =
  let want = Hashtbl.create (List.length wanted) in
  List.iter (fun s -> Hashtbl.replace want s ()) wanted;
  let resolved = Hashtbl.create (List.length wanted) in
  let saved_collect = t.collect and saved_stacks = t.with_stacks and saved_seq = t.seq in
  t.collect <- false;
  t.with_stacks <- false;
  t.seq <- 0;
  let listener event stack =
    if Hashtbl.mem want event.Event.seq then
      Hashtbl.replace resolved event.Event.seq (Callstack.capture stack)
  in
  t.listeners <- t.listeners @ [ listener ];
  Fun.protect
    ~finally:(fun () ->
      t.listeners <- List.filter (fun l -> l != listener) t.listeners;
      t.collect <- saved_collect;
      t.with_stacks <- saved_stacks;
      t.seq <- saved_seq)
    run;
  resolved
