(** The frame-announcement interface applications compile against.

    An application under test wraps each function body in [framer.frame
    "name"]; with no tool attached the framer is a no-op, and under
    instrumentation it maintains the call stack the failure-point tree is
    built from. This is the only concession applications make to the
    black-box tooling — the moral equivalent of being a binary Pin can
    walk. *)

type t = { frame : 'a. string -> (unit -> 'a) -> 'a }

val null : t
(** The no-op framer: runs the body without announcing anything. *)

val of_callstack : Callstack.t -> t
(** A framer backed by an explicit call stack. *)

val ambient : t Domain.DLS.key
(** The ambient framer: library internals (allocator, logs) announce their
    loop bodies through it so that one code location stays one instruction
    identity regardless of iteration count — the way real instruction
    addresses behave. The workload driver installs the instrumented framer
    here for the duration of a run.

    Domain-local: the parallel injection scheduler re-executes targets on
    worker domains, each of which must see only its own instrumented
    framer. A fresh domain starts with the no-op framer. *)

val in_ambient : string -> (unit -> 'a) -> 'a
(** Announce a frame through the ambient framer of the current domain. *)

val with_ambient : t -> (unit -> 'a) -> 'a
(** Install [t] as ambient for the duration of [f] (on this domain only);
    the previous framer is restored on return or exception. *)
