(** The frame-announcement interface applications compile against.

    An application under test wraps each function body in [framer.frame
    "name"]; with no tool attached the framer is a no-op, and under
    instrumentation it maintains the call stack the failure-point tree is
    built from. This is the only concession applications make to the
    black-box tooling — the moral equivalent of being a binary Pin can
    walk. *)

type t = { frame : 'a. string -> (unit -> 'a) -> 'a }

let null = { frame = (fun _label f -> f ()) }

(** A framer backed by an explicit call stack. *)
let of_callstack cs = { frame = (fun label f -> Callstack.with_frame cs label f) }

(** The ambient framer: library internals (allocator, logs) announce their
    loop bodies through it so that one code location stays one instruction
    identity regardless of iteration count — the way real instruction
    addresses behave. The workload driver installs the instrumented framer
    here for the duration of a run.

    Domain-local: the parallel injection scheduler re-executes targets on
    worker domains, each of which must see only its own instrumented
    framer. A fresh domain starts with the no-op framer. *)
let ambient : t Domain.DLS.key = Domain.DLS.new_key (fun () -> null)

let in_ambient label f = (Domain.DLS.get ambient).frame label f

(** Install [t] as ambient for the duration of [f] (on this domain only). *)
let with_ambient t f =
  let saved = Domain.DLS.get ambient in
  Domain.DLS.set ambient t;
  match f () with
  | v ->
      Domain.DLS.set ambient saved;
      v
  | exception e ->
      Domain.DLS.set ambient saved;
      raise e
