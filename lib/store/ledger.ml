(** On-disk layout of the results store: one JSON file per run under
    [<dir>/runs/<run_id>.json] plus an append-only [<dir>/bench.jsonl] of
    benchmark envelopes. Runs are content-addressed, so re-running the same
    analysis overwrites its own record (identical findings and provenance;
    only the timing metrics move) — the ledger never grows from
    repetition. *)

module Json = Telemetry.Json

(** Where the ledger lives unless the caller says otherwise: the
    [MUMAK_STORE] environment variable, falling back to [_mumak/store]
    under the working directory. *)
let default_dir () =
  match Sys.getenv_opt "MUMAK_STORE" with
  | Some d when d <> "" -> d
  | _ -> Filename.concat "_mumak" "store"

type t = { dir : string }

let rec mkdir_p dir =
  if Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

let runs_dir t = Filename.concat t.dir "runs"
let bench_path t = Filename.concat t.dir "bench.jsonl"

let open_ ?dir () =
  let dir = match dir with Some d -> d | None -> default_dir () in
  let t = { dir } in
  mkdir_p (runs_dir t);
  t

let run_path t id = Filename.concat (runs_dir t) (id ^ ".json")

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Persist a run record; returns its id. The file name is the content
    address, so a repeated identical run rewrites its own record in
    place. *)
let append_run t record =
  write_file (run_path t record.Record.run_id)
    (Json.to_string (Record.to_json record) ^ "\n");
  record.Record.run_id

let run_ids t =
  if not (Sys.file_exists (runs_dir t)) then []
  else
    Sys.readdir (runs_dir t) |> Array.to_list
    |> List.filter_map (Filename.chop_suffix_opt ~suffix:".json")
    |> List.sort compare

let load_file path =
  match Json.of_string (String.trim (read_file path)) with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok j -> (
      match Record.of_json j with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok r -> Ok r)

(** Load a run by id or by unique id prefix. *)
let load_run t id =
  let ids = run_ids t in
  if List.mem id ids then load_file (run_path t id)
  else
    match List.filter (fun candidate -> String.starts_with ~prefix:id candidate) ids with
    | [ unique ] -> load_file (run_path t unique)
    | [] -> Error (Printf.sprintf "no run matches %S in %s" id t.dir)
    | several ->
        Error
          (Printf.sprintf "ambiguous run prefix %S (%d matches)" id
             (List.length several))

let load_all t =
  List.filter_map (fun id -> Result.to_option (load_file (run_path t id))) (run_ids t)

(* ------------------------------------------------------------------ *)
(* Bench envelopes                                                     *)
(* ------------------------------------------------------------------ *)

(** Append one benchmark envelope to the trend history. *)
let append_bench t envelope =
  mkdir_p t.dir;
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 (bench_path t) in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string envelope ^ "\n"))

(** The recorded envelopes, oldest first; unparseable lines are skipped. *)
let bench_history t =
  if not (Sys.file_exists (bench_path t)) then []
  else
    read_file (bench_path t) |> String.split_on_char '\n'
    |> List.filter_map (fun line ->
           let line = String.trim line in
           if line = "" then None else Result.to_option (Json.of_string line))
