(** One run of the engine as the ledger remembers it: content-addressed by
    what was analysed (target, workload, trace signature, configuration),
    carrying the report's findings with a provenance record each, the
    phase summaries and the resource metrics.

    The run id deliberately normalizes [Config.jobs] to 1 before digesting:
    worker count provably does not change the findings (the differential
    tests assert report-signature equality across [jobs]), so runs that
    differ only in parallelism share a content address. *)

module Json = Telemetry.Json

let schema_name = "mumak.store"
let schema_version = 1

type finding = {
  f_id : string;  (** digest of the signature entry — the explain handle *)
  f_signature : string;  (** {!Mumak.Report.finding_signature} entry *)
  f_kind : string;
  f_phase : string;
  f_path : string list;  (** frame path when the finding carries a stack *)
  f_op_index : int option;
  f_seq : int option;
  f_detail : string;
  f_fix : string option;
  f_verdict : string option;
}

type t = {
  run_id : string;  (** content address of the run *)
  target : string;
  workload : string;  (** workload descriptor chosen by the caller *)
  config : Json.t;  (** full [Config.to_json], jobs as actually run *)
  config_digest : string;  (** digest of the full configuration *)
  trace_signature : string;  (** digest of the recorded event stream *)
  failure_points : int;
  injections : int;
  executions : int;
  trace_events : int;
  first_bug_injection : int option;
  metrics : Json.t;  (** per-phase resource usage *)
  phases : (string * Json.t) list;  (** optional phase summaries, by name *)
  findings : finding list;  (** {!Mumak.Report.ordered} order *)
  provenance : Mumak.Provenance.t list;  (** parallel to [findings] *)
}

(* ------------------------------------------------------------------ *)
(* Construction from an engine result                                  *)
(* ------------------------------------------------------------------ *)

let digest_json j = Digest.to_hex (Digest.string (Json.to_string j))

(** The content address: target, workload descriptor, trace signature and
    the jobs-normalized configuration, digested as one JSON document. *)
let run_id_of ~target ~workload ~trace_signature ~(config : Mumak.Config.t) =
  let normalized = Mumak.Config.to_json { config with Mumak.Config.jobs = 1 } in
  digest_json
    (Json.Assoc
       [
         ("target", Json.String target);
         ("workload", Json.String workload);
         ("trace_signature", Json.String trace_signature);
         ("config", normalized);
       ])

let finding_of_provenance (p : Mumak.Provenance.t) =
  let path, op_index =
    match p.Mumak.Provenance.p_stack with
    | Some (path, op_index) -> (path, Some op_index)
    | None -> ([], None)
  in
  {
    f_id = p.Mumak.Provenance.p_finding;
    f_signature = p.Mumak.Provenance.p_signature;
    f_kind = p.Mumak.Provenance.p_kind;
    f_phase = p.Mumak.Provenance.p_phase;
    f_path = path;
    f_op_index = op_index;
    f_seq = p.Mumak.Provenance.p_seq;
    f_detail = p.Mumak.Provenance.p_detail;
    f_fix = p.Mumak.Provenance.p_fix;
    f_verdict = p.Mumak.Provenance.p_verdict;
  }

let of_result ~target ~workload ~(config : Mumak.Config.t)
    (result : Mumak.Engine.result) =
  let trace_signature = result.Mumak.Engine.trace_signature in
  let metrics =
    Json.Assoc
      [
        ("total", Mumak.Metrics.to_json result.Mumak.Engine.metrics);
        ("fault_injection", Mumak.Metrics.to_json result.Mumak.Engine.fi_metrics);
        ("trace_analysis", Mumak.Metrics.to_json result.Mumak.Engine.ta_metrics);
        ("static_analysis", Mumak.Metrics.to_json result.Mumak.Engine.sa_metrics);
        ("abs_interp", Mumak.Metrics.to_json result.Mumak.Engine.ai_metrics);
        ("optimize", Mumak.Metrics.to_json result.Mumak.Engine.opt_metrics);
      ]
  in
  let phases =
    List.concat
      [
        (match result.Mumak.Engine.absint with
        | Some a ->
            ("absint", Analysis.Absint.to_json a.Mumak.Engine.analysis)
            ::
            (match a.Mumak.Engine.prune with
            | Some p -> [ ("prune", Analysis.Prune.plan_to_json p) ]
            | None -> [])
        | None -> []);
        (match result.Mumak.Engine.lint with
        | Some l -> [ ("lint", Analysis.Lint.to_json l) ]
        | None -> []);
        (match result.Mumak.Engine.fix_verdicts with
        | Some v -> [ ("verify_fix", Analysis.Verify_fix.to_json v) ]
        | None -> []);
        (match result.Mumak.Engine.opt with
        | Some o -> [ ("optimize", Analysis.Opt.to_json o) ]
        | None -> []);
      ]
  in
  {
    run_id = run_id_of ~target ~workload ~trace_signature ~config;
    target;
    workload;
    config = Mumak.Config.to_json config;
    config_digest = digest_json (Mumak.Config.to_json config);
    trace_signature;
    failure_points = result.Mumak.Engine.failure_points;
    injections = result.Mumak.Engine.injections;
    executions = result.Mumak.Engine.executions;
    trace_events = result.Mumak.Engine.trace_events;
    first_bug_injection = result.Mumak.Engine.first_bug_injection;
    metrics;
    phases;
    findings = List.map finding_of_provenance result.Mumak.Engine.provenance;
    provenance = result.Mumak.Engine.provenance;
  }

(* ------------------------------------------------------------------ *)
(* JSON codecs                                                         *)
(* ------------------------------------------------------------------ *)

let opt_string = function None -> Json.Null | Some s -> Json.String s
let opt_int = function None -> Json.Null | Some n -> Json.Int n

let finding_to_json f =
  Json.Assoc
    [
      ("id", Json.String f.f_id);
      ("signature", Json.String f.f_signature);
      ("kind", Json.String f.f_kind);
      ("phase", Json.String f.f_phase);
      ("path", Json.List (List.map (fun s -> Json.String s) f.f_path));
      ("op_index", opt_int f.f_op_index);
      ("seq", opt_int f.f_seq);
      ("detail", Json.String f.f_detail);
      ("fix", opt_string f.f_fix);
      ("verdict", opt_string f.f_verdict);
    ]

let to_json t =
  Json.Assoc
    [
      ("schema", Json.String schema_name);
      ("version", Json.Int schema_version);
      ("type", Json.String "run");
      ("run_id", Json.String t.run_id);
      ("target", Json.String t.target);
      ("workload", Json.String t.workload);
      ("config", t.config);
      ("config_digest", Json.String t.config_digest);
      ("trace_signature", Json.String t.trace_signature);
      ( "counters",
        Json.Assoc
          [
            ("failure_points", Json.Int t.failure_points);
            ("injections", Json.Int t.injections);
            ("executions", Json.Int t.executions);
            ("trace_events", Json.Int t.trace_events);
          ] );
      ("first_bug_injection", opt_int t.first_bug_injection);
      ("metrics", t.metrics);
      ("phases", Json.Assoc t.phases);
      ("findings", Json.List (List.map finding_to_json t.findings));
      ( "provenance",
        Json.List (List.map Mumak.Provenance.to_json t.provenance) );
    ]

let ( let* ) = Result.bind

let str_field j k =
  match Option.bind (Json.member k j) Json.to_string_opt with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing string field %S" k)

let int_field j k =
  match Option.bind (Json.member k j) Json.to_int_opt with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "missing integer field %S" k)

let opt_str_field j k =
  match Json.member k j with
  | None | Some Json.Null -> Ok None
  | Some (Json.String s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string or null" k)

let opt_int_field j k =
  match Json.member k j with
  | None | Some Json.Null -> Ok None
  | Some (Json.Int n) -> Ok (Some n)
  | Some _ -> Error (Printf.sprintf "field %S must be an integer or null" k)

let string_list_field j k =
  match Option.bind (Json.member k j) Json.to_list_opt with
  | None -> Error (Printf.sprintf "missing list field %S" k)
  | Some items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Json.String s :: rest -> go (s :: acc) rest
        | _ -> Error (Printf.sprintf "field %S must hold strings" k)
      in
      go [] items

let finding_of_json j =
  let* id = str_field j "id" in
  let* signature = str_field j "signature" in
  let* kind = str_field j "kind" in
  let* phase = str_field j "phase" in
  let* path = string_list_field j "path" in
  let* op_index = opt_int_field j "op_index" in
  let* seq = opt_int_field j "seq" in
  let* detail = str_field j "detail" in
  let* fix = opt_str_field j "fix" in
  let* verdict = opt_str_field j "verdict" in
  Ok
    {
      f_id = id;
      f_signature = signature;
      f_kind = kind;
      f_phase = phase;
      f_path = path;
      f_op_index = op_index;
      f_seq = seq;
      f_detail = detail;
      f_fix = fix;
      f_verdict = verdict;
    }

let list_field j k of_item =
  match Option.bind (Json.member k j) Json.to_list_opt with
  | None -> Error (Printf.sprintf "missing list field %S" k)
  | Some items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest ->
            let* v = of_item item in
            go (v :: acc) rest
      in
      go [] items

let of_json j =
  let* schema = str_field j "schema" in
  let* () =
    if String.equal schema schema_name then Ok ()
    else Error (Printf.sprintf "unknown schema %S" schema)
  in
  let* version = int_field j "version" in
  let* () =
    if version = schema_version then Ok ()
    else Error (Printf.sprintf "unknown %s version %d" schema_name version)
  in
  let* ty = str_field j "type" in
  let* () =
    if String.equal ty "run" then Ok ()
    else Error (Printf.sprintf "expected a run record, got type %S" ty)
  in
  let* run_id = str_field j "run_id" in
  let* target = str_field j "target" in
  let* workload = str_field j "workload" in
  let config = Option.value (Json.member "config" j) ~default:Json.Null in
  let* config_digest = str_field j "config_digest" in
  let* trace_signature = str_field j "trace_signature" in
  let* counters =
    match Json.member "counters" j with
    | Some (Json.Assoc _ as c) -> Ok c
    | _ -> Error "missing counters object"
  in
  let* failure_points = int_field counters "failure_points" in
  let* injections = int_field counters "injections" in
  let* executions = int_field counters "executions" in
  let* trace_events = int_field counters "trace_events" in
  let* first_bug_injection = opt_int_field j "first_bug_injection" in
  let metrics = Option.value (Json.member "metrics" j) ~default:Json.Null in
  let* phases =
    match Json.member "phases" j with
    | None | Some Json.Null -> Ok []
    | Some (Json.Assoc fields) -> Ok fields
    | Some _ -> Error "phases must be an object"
  in
  let* findings = list_field j "findings" finding_of_json in
  let* provenance = list_field j "provenance" Mumak.Provenance.of_json in
  let* () =
    if List.length findings = List.length provenance then Ok ()
    else Error "findings and provenance lists must be parallel"
  in
  Ok
    {
      run_id;
      target;
      workload;
      config;
      config_digest;
      trace_signature;
      failure_points;
      injections;
      executions;
      trace_events;
      first_bug_injection;
      metrics;
      phases;
      findings;
      provenance;
    }

let equal a b = Json.to_string (to_json a) = Json.to_string (to_json b)

let pp ppf t =
  Fmt.pf ppf "run %s  target=%s  workload=%s  findings=%d  executions=%d"
    t.run_id t.target t.workload (List.length t.findings) t.executions
