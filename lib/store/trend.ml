(** Benchmark trend gate: compares each experiment's newest envelope
    against the best previously recorded run and fails when wall time or
    allocation regress beyond a multiplicative threshold plus an absolute
    slack. The baseline is the minimum over history — a lucky fast run
    tightens the gate, a slow run never loosens it. *)

module Json = Telemetry.Json

let default_factor = 1.5
let wall_slack_seconds = 0.25
let alloc_slack_bytes = 64e6

(** Regression threshold multiplier, overridable via [MUMAK_TREND_FACTOR]. *)
let factor () =
  match Option.bind (Sys.getenv_opt "MUMAK_TREND_FACTOR") float_of_string_opt with
  | Some f when f > 1.0 -> f
  | _ -> default_factor

type verdict = {
  experiment : string;
  samples : int;  (** envelopes recorded for this experiment *)
  wall : float;  (** newest run *)
  wall_baseline : float option;  (** min over prior runs *)
  alloc : float;
  alloc_baseline : float option;
  regressed : bool;
  note : string;
}

let meta_float envelope key =
  Option.bind (Json.member "meta" envelope) (fun meta ->
      Option.bind (Json.member key meta) Json.to_float_opt)

(* Smoke-scaled runs are not comparable to full runs of the same
   experiment; they trend as a separate series. *)
let experiment_of envelope =
  Option.map
    (fun exp ->
      match Json.member "smoke" envelope with
      | Some (Json.Bool true) -> exp ^ " (smoke)"
      | _ -> exp)
    (Option.bind (Json.member "experiment" envelope) Json.to_string_opt)

(** Group envelopes by experiment, preserving recording order. *)
let by_experiment history =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun envelope ->
      match experiment_of envelope with
      | None -> ()
      | Some exp ->
          if not (Hashtbl.mem tbl exp) then order := exp :: !order;
          Hashtbl.replace tbl exp (envelope :: Option.value (Hashtbl.find_opt tbl exp) ~default:[]))
    history;
  List.rev_map (fun exp -> (exp, List.rev (Hashtbl.find tbl exp))) !order

let judge ~factor exp envelopes =
  let samples = List.length envelopes in
  let newest = List.nth envelopes (samples - 1) in
  let wall = Option.value (meta_float newest "wall_seconds") ~default:0.0 in
  let alloc = Option.value (meta_float newest "allocated_bytes") ~default:0.0 in
  let prior = List.filteri (fun i _ -> i < samples - 1) envelopes in
  let baseline key =
    match List.filter_map (fun e -> meta_float e key) prior with
    | [] -> None
    | xs -> Some (List.fold_left min (List.hd xs) xs)
  in
  let wall_baseline = baseline "wall_seconds" in
  let alloc_baseline = baseline "allocated_bytes" in
  let over current base slack = current > (base *. factor) +. slack in
  let wall_regressed =
    match wall_baseline with
    | Some base -> over wall base wall_slack_seconds
    | None -> false
  in
  let alloc_regressed =
    match alloc_baseline with
    | Some base -> over alloc base alloc_slack_bytes
    | None -> false
  in
  let note =
    if samples < 2 then "no baseline yet (first recorded run)"
    else if wall_regressed && alloc_regressed then "wall time and allocation regressed"
    else if wall_regressed then "wall time regressed"
    else if alloc_regressed then "allocation regressed"
    else "within envelope"
  in
  {
    experiment = exp;
    samples;
    wall;
    wall_baseline;
    alloc;
    alloc_baseline;
    regressed = wall_regressed || alloc_regressed;
    note;
  }

(** Judge every experiment present in [history] (bench envelopes, oldest
    first, as [Ledger.bench_history] returns them). *)
let check history =
  let factor = factor () in
  List.map (fun (exp, envelopes) -> judge ~factor exp envelopes) (by_experiment history)

let any_regressed verdicts = List.exists (fun v -> v.regressed) verdicts

let pp_verdict ppf v =
  let pp_pair current = function
    | Some base -> Printf.sprintf "%.3f (baseline %.3f)" current base
    | None -> Printf.sprintf "%.3f (no baseline)" current
  in
  Fmt.pf ppf "%-12s %s  wall %s  alloc %s  — %s"
    v.experiment
    (if v.regressed then "FAIL" else "ok  ")
    (pp_pair v.wall v.wall_baseline)
    (pp_pair v.alloc v.alloc_baseline)
    v.note
