(** Cross-run comparison: which findings are new in run B, which were
    fixed since run A, which persist in both. Findings are keyed by their
    {!Mumak.Report.finding_signature} entry — the same stable identity the
    report's differential tests compare — and every bucket is sorted by
    that key, so the diff is byte-stable regardless of worker count or
    combination order. *)

module Json = Telemetry.Json

type t = {
  run_a : string;
  run_b : string;
  new_findings : Record.finding list;  (** in B but not A *)
  fixed_findings : Record.finding list;  (** in A but not B *)
  persisting : Record.finding list;  (** in both (B's rendering kept) *)
}

let by_signature findings =
  let tbl = Hashtbl.create 32 in
  List.iter (fun f -> Hashtbl.replace tbl f.Record.f_signature f) findings;
  tbl

let sorted fs =
  List.sort (fun a b -> compare a.Record.f_signature b.Record.f_signature) fs

let compute (a : Record.t) (b : Record.t) =
  let in_a = by_signature a.Record.findings
  and in_b = by_signature b.Record.findings in
  {
    run_a = a.Record.run_id;
    run_b = b.Record.run_id;
    new_findings =
      sorted
        (List.filter
           (fun f -> not (Hashtbl.mem in_a f.Record.f_signature))
           b.Record.findings);
    fixed_findings =
      sorted
        (List.filter
           (fun f -> not (Hashtbl.mem in_b f.Record.f_signature))
           a.Record.findings);
    persisting =
      sorted
        (List.filter (fun f -> Hashtbl.mem in_a f.Record.f_signature) b.Record.findings);
  }

let is_empty d = d.new_findings = [] && d.fixed_findings = []

let to_json d =
  let bucket fs = Json.List (List.map Record.finding_to_json fs) in
  Json.Assoc
    [
      ("schema", Json.String Record.schema_name);
      ("version", Json.Int Record.schema_version);
      ("type", Json.String "diff");
      ("run_a", Json.String d.run_a);
      ("run_b", Json.String d.run_b);
      ("new", bucket d.new_findings);
      ("fixed", bucket d.fixed_findings);
      ("persisting", bucket d.persisting);
    ]

let pp ppf d =
  Fmt.pf ppf "diff %s -> %s@." d.run_a d.run_b;
  Fmt.pf ppf "%d new, %d fixed, %d persisting@."
    (List.length d.new_findings)
    (List.length d.fixed_findings)
    (List.length d.persisting);
  let pp_bucket label fs =
    List.iter
      (fun f ->
        Fmt.pf ppf "  %s [%s] %s: %s@." label f.Record.f_phase f.Record.f_kind
          f.Record.f_detail)
      fs
  in
  pp_bucket "+" d.new_findings;
  pp_bucket "-" d.fixed_findings;
  pp_bucket "=" d.persisting
