(** The causal chain behind one finding, reconstructed from its provenance
    record: what was injected (or which analysis nominated it), the trace
    window around the offending instruction, the witness, the
    crash-vs-recovered image diff and the verdict. Rendered both as text
    for humans and as JSONL records for tooling. *)

module Json = Telemetry.Json

(** Resolve a finding inside a run record by finding-id prefix, exact
    signature, or 1-based index. *)
let find (record : Record.t) selector =
  let pairs = List.combine record.Record.findings record.Record.provenance in
  let by_index =
    match int_of_string_opt selector with
    | Some n when n >= 1 && n <= List.length pairs -> Some (List.nth pairs (n - 1))
    | _ -> None
  in
  match by_index with
  | Some pair -> Ok pair
  | None -> (
      match
        List.filter
          (fun (f, _) ->
            String.equal f.Record.f_signature selector
            || String.starts_with ~prefix:selector f.Record.f_id)
          pairs
      with
      | [ pair ] -> Ok pair
      | [] ->
          Error
            (Printf.sprintf "no finding matches %S in run %s" selector
               record.Record.run_id)
      | several ->
          Error
            (Printf.sprintf "ambiguous finding selector %S (%d matches)" selector
               (List.length several)))

(* ------------------------------------------------------------------ *)
(* JSONL causal chain                                                  *)
(* ------------------------------------------------------------------ *)

let chain (record : Record.t) ((f : Record.finding), (p : Mumak.Provenance.t)) =
  let tag name fields = Json.Assoc (("record", Json.String name) :: fields) in
  List.concat
    [
      [
        tag "finding"
          [
            ("run", Json.String record.Record.run_id);
            ("id", Json.String f.Record.f_id);
            ("kind", Json.String f.Record.f_kind);
            ("phase", Json.String f.Record.f_phase);
            ("detail", Json.String f.Record.f_detail);
          ];
      ];
      (match p.Mumak.Provenance.p_failure_point with
      | None -> []
      | Some fp ->
          [
            tag "failure_point"
              [
                ( "path",
                  Json.List
                    (List.map (fun s -> Json.String s) fp.Mumak.Provenance.fp_path) );
                ("op_index", Json.Int fp.Mumak.Provenance.fp_op_index);
                ("ordinal", Json.Int fp.Mumak.Provenance.fp_ordinal);
                ( "pseq",
                  match fp.Mumak.Provenance.fp_pseq with
                  | None -> Json.Null
                  | Some n -> Json.Int n );
              ];
          ]);
      (match p.Mumak.Provenance.p_window with
      | [] -> []
      | window ->
          [
            tag "trace_window"
              [ ("events", Json.List (List.map (fun l -> Json.String l) window)) ];
          ]);
      [ tag "witness" [ ("text", Json.String p.Mumak.Provenance.p_witness) ] ];
      (match p.Mumak.Provenance.p_image_diff with
      | None -> []
      | Some d ->
          [
            tag "image_diff"
              [
                ("differing_lines", Json.Int d.Mumak.Provenance.id_differing);
                ("capped", Json.Bool d.Mumak.Provenance.id_capped);
                ( "lines",
                  Json.List
                    (List.map
                       (fun l ->
                         Json.Assoc
                           [
                             ("line", Json.Int l.Mumak.Provenance.dl_line);
                             ("crash", Json.String l.Mumak.Provenance.dl_crash);
                             ("recovered", Json.String l.Mumak.Provenance.dl_recovered);
                           ])
                       d.Mumak.Provenance.id_lines) );
              ];
          ]);
      (match p.Mumak.Provenance.p_verdict with
      | None -> []
      | Some v -> [ tag "verdict" [ ("text", Json.String v) ] ]);
      (match p.Mumak.Provenance.p_fix with
      | None -> []
      | Some fix -> [ tag "fix" [ ("text", Json.String fix) ] ]);
    ]

let chain_to_string record pair =
  String.concat "" (List.map (fun j -> Json.to_string j ^ "\n") (chain record pair))

(* ------------------------------------------------------------------ *)
(* Text rendering                                                      *)
(* ------------------------------------------------------------------ *)

let pp ppf (record, ((f : Record.finding), (p : Mumak.Provenance.t))) =
  Fmt.pf ppf "finding %s (run %s)@." f.Record.f_id record.Record.run_id;
  Fmt.pf ppf "  [%s] %s: %s@." f.Record.f_phase f.Record.f_kind f.Record.f_detail;
  (match f.Record.f_path with
  | [] -> ()
  | path ->
      Fmt.pf ppf "  at %s%s@." (String.concat " > " path)
        (match f.Record.f_op_index with
        | Some i -> Printf.sprintf " (op %d)" i
        | None -> ""));
  (match p.Mumak.Provenance.p_failure_point with
  | None -> ()
  | Some fp ->
      Fmt.pf ppf "  injected at ordinal %d%s@." fp.Mumak.Provenance.fp_ordinal
        (match fp.Mumak.Provenance.fp_pseq with
        | Some n -> Printf.sprintf ", persistency index %d" n
        | None -> ""));
  (match p.Mumak.Provenance.p_window with
  | [] -> ()
  | window ->
      Fmt.pf ppf "  trace window:@.";
      List.iter (fun line -> Fmt.pf ppf "    %s@." line) window);
  Fmt.pf ppf "  witness: %s@." p.Mumak.Provenance.p_witness;
  (match p.Mumak.Provenance.p_image_diff with
  | None -> ()
  | Some d ->
      Fmt.pf ppf "  image diff: %d cache line(s) differ%s@."
        d.Mumak.Provenance.id_differing
        (if d.Mumak.Provenance.id_capped then
           Printf.sprintf " (first %d shown)" (List.length d.Mumak.Provenance.id_lines)
         else "");
      List.iter
        (fun l ->
          Fmt.pf ppf "    line %d (offset %#x):@.      crash:     %s@.      recovered: %s@."
            l.Mumak.Provenance.dl_line
            (l.Mumak.Provenance.dl_line * Mumak.Provenance.cache_line)
            l.Mumak.Provenance.dl_crash l.Mumak.Provenance.dl_recovered)
        d.Mumak.Provenance.id_lines);
  (match p.Mumak.Provenance.p_verdict with
  | None -> ()
  | Some v -> Fmt.pf ppf "  verdict: %s@." v);
  match p.Mumak.Provenance.p_fix with
  | None -> ()
  | Some fix -> Fmt.pf ppf "  suggested fix: %s@." fix
