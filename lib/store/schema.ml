(** Structural validator for the store's serialized records, in the same
    spirit as [Telemetry.Jsonl.validate_string]: a document either names
    the ["mumak.store"] schema at a known version and parses back into the
    corresponding structure, or it is rejected with a reason. Wired into
    [mumak validate] so CI can gate ledger artifacts. *)

module Json = Telemetry.Json

let ( let* ) = Result.bind

let list_len j k =
  match Option.bind (Json.member k j) Json.to_list_opt with
  | Some l -> Ok (List.length l)
  | None -> Error (Printf.sprintf "missing list field %S" k)

let validate_diff j =
  let* run_a =
    match Option.bind (Json.member "run_a" j) Json.to_string_opt with
    | Some s -> Ok s
    | None -> Error "diff record without a run_a string"
  in
  let* run_b =
    match Option.bind (Json.member "run_b" j) Json.to_string_opt with
    | Some s -> Ok s
    | None -> Error "diff record without a run_b string"
  in
  let bucket k =
    match Option.bind (Json.member k j) Json.to_list_opt with
    | None -> Error (Printf.sprintf "diff record without a %S list" k)
    | Some items ->
        let rec go n = function
          | [] -> Ok n
          | item :: rest ->
              let* _ = Record.finding_of_json item in
              go (n + 1) rest
        in
        go 0 items
  in
  let* new_count = bucket "new" in
  let* fixed = bucket "fixed" in
  let* persisting = bucket "persisting" in
  Ok
    (Printf.sprintf "store diff %s -> %s (%d new, %d fixed, %d persisting)"
       (String.sub run_a 0 (min 12 (String.length run_a)))
       (String.sub run_b 0 (min 12 (String.length run_b)))
       new_count fixed persisting)

(** [validate j] checks a parsed ["mumak.store"] document — a run record or
    a diff record — and returns a one-line description of what it holds. *)
let validate j =
  let* schema =
    match Option.bind (Json.member "schema" j) Json.to_string_opt with
    | Some s -> Ok s
    | None -> Error "document does not name a schema"
  in
  let* () =
    if String.equal schema Record.schema_name then Ok ()
    else Error (Printf.sprintf "unknown schema %S" schema)
  in
  let* version =
    match Option.bind (Json.member "version" j) Json.to_int_opt with
    | Some v -> Ok v
    | None -> Error "schema version missing or not an integer"
  in
  let* () =
    if version = Record.schema_version then Ok ()
    else Error (Printf.sprintf "unknown %s version %d" Record.schema_name version)
  in
  let* ty =
    match Option.bind (Json.member "type" j) Json.to_string_opt with
    | Some t -> Ok t
    | None -> Error "store record without a type field"
  in
  match ty with
  | "run" ->
      let* record = Record.of_json j in
      let* provenance = list_len j "provenance" in
      Ok
        (Printf.sprintf "store run %s: %s, %d finding(s), %d provenance record(s)"
           (String.sub record.Record.run_id 0
              (min 12 (String.length record.Record.run_id)))
           record.Record.target
           (List.length record.Record.findings)
           provenance)
  | "diff" -> validate_diff j
  | other -> Error (Printf.sprintf "unknown store record type %S" other)

let validate_string s =
  match Json.of_string s with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok j -> validate j
