(** Registry of seeded bugs.

    Every application and library in this reproduction contains named bug
    sites that are compiled in but disabled by default (the default build
    is clean). Enabling a bug id makes the corresponding code path
    misbehave the way the published bug did; the coverage experiment
    (paper section 6.2) enables sets of bugs and measures which tools
    report them.

    The registry is global mutable state on purpose: it plays the role of
    "which version of the buggy source tree are we testing", which in the
    original evaluation is fixed per run. *)

type taxonomy =
  | Durability
  | Atomicity
  | Ordering
  | Redundant_flush
  | Redundant_fence
  | Transient_data

val taxonomy_to_string : taxonomy -> string

val is_correctness : taxonomy -> bool
(** Durability/atomicity/ordering bugs corrupt state; the rest are
    performance or hygiene defects. *)

type t = {
  id : string;
  component : string;  (** library or application containing the bug *)
  taxonomy : taxonomy;
  description : string;
  detectors : string list;
      (** ground truth: the tools whose published approach finds this class
          of bug at this site (used to score coverage) *)
}

val register :
  id:string ->
  component:string ->
  taxonomy:taxonomy ->
  description:string ->
  detectors:string list ->
  t
(** Raises [Invalid_argument] on a duplicate id. *)

val find : string -> t option

val all : unit -> t list
(** Every registered bug, sorted by id. *)

val enable : string -> unit
(** Raises [Invalid_argument] on an unknown id. *)

val disable : string -> unit
val disable_all : unit -> unit
val enabled : string -> bool

val enabled_ids : unit -> string list
(** Currently enabled ids, sorted. *)

val with_enabled : string list -> (unit -> 'a) -> 'a
(** [with_enabled ids f] runs [f] with exactly [ids] enabled, restoring the
    previous enable-set afterwards (on exceptions too). *)

val pp : t Fmt.t
