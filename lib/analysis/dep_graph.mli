(** The per-cacheline persistency dependency graph, built offline from one
    recorded execution trace.

    Nodes are {e persists} (one cache line reaching durability at one fence
    epoch: the store → flush → fence lineage of the line's pending window);
    edges are {e read-after-persist} dependencies witnessing that one
    line's new content was derived from another line's persisted content.
    Pointer chases (consecutive loads in the same frame activation) record
    the reader-side ordering requirements that write-side edges cannot see.

    All [*_p] fields are {e persistency-index} coordinates: the event
    position counting only non-load events, which equals the instruction
    counter of a load-free execution of the same deterministic workload —
    directly comparable with trace-analysis seqs and failure-point first
    occurrences. *)

type node = {
  id : int;  (** creation order: nondecreasing in (epoch, fence) *)
  line : int;
  epoch : int;  (** index of the fence that persisted this window *)
  first_store : int;  (** raw trace seq *)
  last_store : int;
  store_count : int;
  flush : int option;  (** raw seq of the capturing flush; [None] = NT store *)
  fence : int;  (** raw seq of the persisting fence *)
  first_store_p : int;
  last_store_p : int;
  flush_p : int option;
  fence_p : int;
  locs : string list;  (** store locations (captures), when recorded *)
}

type edge = {
  src : int;  (** node id of the persisted line that was read *)
  dst : int;  (** node id of the window a later store contributed to *)
  witness : int;  (** raw seq of the witnessing load *)
}

(** What the second load of a pointer chase found for the pointee line. *)
type pointee = Persisted of int  (** node id *) | Dirty_window | Unknown

type chase = {
  c_src : int;  (** node id of the pointer line's persist *)
  c_dst : pointee;
  c_dst_line : int;
  c_seq : int;  (** raw seq of the pointee load *)
  c_seq_p : int;  (** persistency index right before the pointee load *)
  c_paths : string * string;  (** frame paths of the two loads, for grouping *)
}

(** A store window that never reached durability. *)
type dangling = {
  d_line : int;
  d_first_store_p : int;
  d_last_store_p : int;
  d_flush_p : int option;  (** [Some _]: flushed but never fenced *)
  d_locs : string list;
  d_line_flushed : bool;  (** the line is flushed elsewhere in the trace *)
  d_line_persisted : bool;  (** the line has earlier persist nodes *)
}

type redundancy_kind = Volatile_flush | Clean_flush | Empty_fence

type redundancy = {
  r_kind : redundancy_kind;
  r_line : int;  (** 0 for fences *)
  r_seq_p : int;
}

type t = {
  nodes : node array;
  edges : edge list;
  chases : chase list;
  dangling : dangling list;
  redundant : redundancy list;
  epochs : int;  (** number of fences in the trace *)
  events : int;
}

val build : ?loc_of_pseq:(int -> string option) -> Pmtrace.Event.t list -> t
(** [build events] folds a recorded trace (execution order) into a graph.
    Traces recorded with load tracing enabled yield dependency edges and
    chases; load-free traces yield the persist lineage only. [loc_of_pseq]
    resolves a store's persistency index to a stable location string (a
    capture from a load-free recording of the same workload); without it,
    store locations fall back to the events' own stacks. *)

val node : t -> int -> node

val epoch_groups : t -> (int * node list) list
(** Persist nodes grouped by fence epoch, ascending. *)

val check : t -> string list
(** Structural-property violations (empty on every graph [build] can
    produce): per-node seq monotonicity (stores <= flush < fence, in both
    coordinate systems), creation-ordered ids, strictly epoch-forward edges
    with their witness load inside (src fence, dst fence), and explicit
    DFS acyclicity. The qcheck suite drives this over generated workloads. *)

val pp : t Fmt.t
