(** The offline static analyzer: whole-trace analysis over recorded
    executions, run after tracing and before (or instead of) fault
    injection.

    Each run of the workload is recorded twice: once load-free with stacks
    (exact frame + ordinal anchors, in the same seq coordinates as the
    rest of the pipeline) and once with load tracing (dependency edges and
    pointer chases, whose seqs are normalized back to persistency-index
    coordinates). The dependency graphs of all runs feed the likely-
    invariant miner; the subject graph (run 0) is then scanned for
    instances that break an accepted invariant, for store windows that
    never reached durability, and for persistency instructions that do no
    work — each finding carrying a concrete {!Fix.t} when one exists. *)

type kind =
  | Durability  (** correctness: a store window never reached durability *)
  | Transient  (** its line is never flushed at all — PM as transient data? *)
  | Ordering  (** a persist-order hazard witnessed by a dependence *)
  | Atomicity  (** an accepted atomicity invariant was split by a fence *)
  | Redundant_flush
  | Redundant_fence

let kind_to_string = function
  | Durability -> "durability"
  | Transient -> "transient"
  | Ordering -> "ordering"
  | Atomicity -> "atomicity"
  | Redundant_flush -> "redundant flush"
  | Redundant_fence -> "redundant fence"

type finding = {
  kind : kind;
  seq : int;  (** persistency-index anchor *)
  stack : Pmtrace.Callstack.capture option;  (** frame + ordinal of the anchor *)
  detail : string;
  fix : Fix.t option;
  ident : string option;
      (** for invariant-backed findings (ordering / atomicity), the mined
          invariant the instance violates — identity that survives trace
          rewrites even when the anchor shifts or the violation is
          re-described (a dangling pointee becoming an unordered one is
          the same chase) *)
}

type t = {
  findings : finding list;
  invariants : Invariants.t;
  graph : Dep_graph.t;  (** the subject run's graph *)
  hot_windows : (int * int * int) list;
      (** (lo, hi, weight) persistency-index windows implicated by a
          violation or a dangling store — the input to {!Prioritize} *)
  hot_frames : string list;
      (** innermost call-stack frame labels of the violation anchors that
          emitted windows; windows are per-activation, so a violation that
          repeats across activations (tree splits at different depths) is
          only witnessed in one window — the frame label generalizes the
          evidence to every failure point of the same operation *)
  runs : int;
  events : int;  (** total events folded into graphs across recordings *)
}

(* Index a load-free recorded trace: seq -> stack capture. *)
let index_stacks events =
  let tbl = Hashtbl.create 4096 in
  List.iter
    (fun (e : Pmtrace.Event.t) ->
      match e.Pmtrace.Event.stack with
      | Some c -> Hashtbl.replace tbl e.Pmtrace.Event.seq c
      | None -> ())
    events;
  tbl

let capture_str tbl p =
  Option.map Pmtrace.Callstack.capture_to_string (Hashtbl.find_opt tbl p)

let kind_rank = function
  | Durability -> 0
  | Transient -> 1
  | Ordering -> 2
  | Atomicity -> 3
  | Redundant_flush -> 4
  | Redundant_fence -> 5

(** [analyze ~support ~confidence ~eadr runs] — each run is
    [(load_free_events, load_traced_events)] of one recorded execution of
    the same deterministic workload. [invariants] skips the mining and
    scans against the given invariant set instead — how the fix verifier
    re-checks a rewritten trace under the {e baseline} invariants. *)
let analyze ?invariants ~support ~confidence ~eadr
    (runs : (Pmtrace.Event.t list * Pmtrace.Event.t list) list) =
  Telemetry.Collector.span ~cat:"static" "analyze" @@ fun () ->
  assert (runs <> []);
  let stacks = List.map (fun (noload, _) -> index_stacks noload) runs in
  let graphs =
    List.map2
      (fun (_, loaded) tbl -> Dep_graph.build ~loc_of_pseq:(capture_str tbl) loaded)
      runs stacks
  in
  let invariants =
    match invariants with
    | Some i -> i
    | None ->
        let with_locs =
          List.map (fun g -> (g, fun (n : Dep_graph.node) -> n.Dep_graph.locs)) graphs
        in
        Invariants.mine ~support ~confidence with_locs
  in
  let g = List.hd graphs in
  let stack_tbl = List.hd stacks in
  let stack_of p = Hashtbl.find_opt stack_tbl p in
  (* Widen a hot window by one persist epoch on each side: the suspicious
     publish point is typically a fence {e adjacent} to the witnessed
     window — the one that closed the preceding epoch, or the next
     persisting fence after the window's own (e.g. the pointer swap whose
     pointee was copied inside the window) — and [Prioritize]'s coverage
     test is [lo < s <= hi]. *)
  let fence_ps =
    Array.of_list
      (List.sort_uniq compare
         (Array.to_list
            (Array.map (fun (n : Dep_graph.node) -> n.Dep_graph.fence_p) g.Dep_graph.nodes)))
  in
  let widen lo hi =
    let n = Array.length fence_ps in
    let rec prev l h acc =
      if l > h then acc
      else
        let mid = (l + h) / 2 in
        if fence_ps.(mid) < lo then prev (mid + 1) h (Some fence_ps.(mid))
        else prev l (mid - 1) acc
    in
    let rec next l h acc =
      if l > h then acc
      else
        let mid = (l + h) / 2 in
        if fence_ps.(mid) > hi then next l (mid - 1) (Some fence_ps.(mid))
        else next (mid + 1) h acc
    in
    let lo' = match prev 0 (n - 1) None with None -> lo | Some f -> min lo (f - 1) in
    let hi' = match next 0 (n - 1) None with None -> hi | Some f -> max hi f in
    (lo', hi')
  in
  let findings = ref [] and hot = ref [] and frames = ref [] in
  let add ?fix ?window ?ident kind seq detail =
    (match window with
    | Some (lo, hi, w) -> (
        let lo, hi = widen lo hi in
        hot := (lo, hi, w) :: !hot;
        match stack_of seq with
        | Some c -> (
            match List.rev c.Pmtrace.Callstack.path with
            | innermost :: _ -> frames := innermost :: !frames
            | [] -> ())
        | None -> ())
    | None -> ());
    findings := { kind; seq; stack = stack_of seq; detail; fix; ident } :: !findings
  in
  let fix action seq rationale = { Fix.action; seq; stack = stack_of seq; rationale } in
  (* ---- durability: store windows that never reached a fence ---- *)
  if not eadr then
    List.iter
      (fun (d : Dep_graph.dangling) ->
        match d.Dep_graph.d_flush_p with
        | Some fp ->
            add ~fix:(fix Fix.Insert_fence fp "the flush is issued but never drained")
              ~window:(d.Dep_graph.d_first_store_p, fp, 10)
              Durability fp
              (Printf.sprintf "line %d flushed at #%d but never fenced" d.Dep_graph.d_line fp)
        | None ->
            if d.Dep_graph.d_line_flushed then
              add
                ~fix:
                  (fix
                     (Fix.Insert_flush { line = d.Dep_graph.d_line })
                     d.Dep_graph.d_last_store_p
                     "the stores are left in the cache; flush the line and fence")
                ~window:(d.Dep_graph.d_first_store_p, d.Dep_graph.d_last_store_p, 10)
                Durability d.Dep_graph.d_last_store_p
                (Printf.sprintf "stores to line %d never persisted (line is flushed elsewhere)"
                   d.Dep_graph.d_line)
            else
              add
                ~fix:
                  (fix
                     (Fix.Insert_flush { line = d.Dep_graph.d_line })
                     d.Dep_graph.d_last_store_p "flush and fence the line if the data must survive")
                Transient d.Dep_graph.d_last_store_p
                (Printf.sprintf "line %d written but never flushed: PM used for transient data?"
                   d.Dep_graph.d_line))
      g.Dep_graph.dangling;
  (* ---- ordering: pointer chases that break an accepted invariant ---- *)
  let supported paths =
    List.find_opt
      (fun (s : Invariants.ordering_stat) ->
        String.equal s.Invariants.o_src_path (fst paths)
        && String.equal s.Invariants.o_dst_path (snd paths))
      invariants.Invariants.orderings
  in
  let seen_chase = Hashtbl.create 16 in
  let chase_ident (src, dst) = Printf.sprintf "chase:%s->%s" src dst in
  List.iter
    (fun (c : Dep_graph.chase) ->
      match supported c.Dep_graph.c_paths with
      | None -> ()
      | Some stat -> (
          let conf = Invariants.o_confidence stat in
          let describe what anchor =
            Printf.sprintf
              "%s (reader path: %s -> %s; %d/%d instances enforce pointee-first, confidence \
               %.2f); anchor #%d"
              what (fst c.Dep_graph.c_paths) (snd c.Dep_graph.c_paths) stat.Invariants.o_enforced
              stat.Invariants.o_instances conf anchor
          in
          let once cls f =
            let key = (c.Dep_graph.c_paths, cls) in
            if not (Hashtbl.mem seen_chase key) then begin
              Hashtbl.replace seen_chase key ();
              f ()
            end
          in
          let src = Dep_graph.node g c.Dep_graph.c_src in
          match c.Dep_graph.c_dst with
          | Dep_graph.Persisted id ->
              let dst = Dep_graph.node g id in
              if dst.Dep_graph.epoch = src.Dep_graph.epoch then
                once `Unordered (fun () ->
                    (* both flushed, one fence: persist order unconstrained *)
                    let anchor =
                      match (dst.Dep_graph.flush_p, src.Dep_graph.flush_p) with
                      | Some a, Some b -> max a b
                      | Some a, None | None, Some a -> a
                      | None, None -> src.Dep_graph.fence_p
                    in
                    let lo =
                      min dst.Dep_graph.first_store_p src.Dep_graph.first_store_p
                    in
                    add
                      ~fix:
                        (fix Fix.Insert_fence anchor
                           "drain the pointee's flush before flushing the pointer")
                      ~window:(lo, src.Dep_graph.fence_p, 100)
                      ~ident:(chase_ident c.Dep_graph.c_paths) Ordering anchor
                      (describe
                         (Printf.sprintf
                            "pointee line %d and pointer line %d persist at the same fence; \
                             their order is left to the hardware"
                            dst.Dep_graph.line src.Dep_graph.line)
                         anchor))
              else if dst.Dep_graph.epoch > src.Dep_graph.epoch then
                once `Inverted (fun () ->
                    let anchor =
                      Option.value ~default:src.Dep_graph.fence_p src.Dep_graph.flush_p
                    in
                    add
                      ~fix:
                        (fix
                           (Fix.Insert_flush { line = dst.Dep_graph.line })
                           anchor "persist the pointee before publishing the pointer")
                      ~window:(src.Dep_graph.first_store_p, dst.Dep_graph.fence_p, 100)
                      ~ident:(chase_ident c.Dep_graph.c_paths) Ordering anchor
                      (describe
                         (Printf.sprintf
                            "pointer line %d persisted at epoch %d before pointee line %d \
                             (epoch %d)"
                            src.Dep_graph.line src.Dep_graph.epoch dst.Dep_graph.line
                            dst.Dep_graph.epoch)
                         anchor))
          | Dep_graph.Dirty_window -> (
              (* only a hazard if the pointee never reaches durability *)
              match
                List.find_opt
                  (fun (d : Dep_graph.dangling) ->
                    d.Dep_graph.d_line = c.Dep_graph.c_dst_line
                    && d.Dep_graph.d_first_store_p <= c.Dep_graph.c_seq_p)
                  g.Dep_graph.dangling
              with
              | None -> ()
              | Some d ->
                  once `Dangling (fun () ->
                      let anchor = d.Dep_graph.d_last_store_p in
                      add
                        ~fix:
                          (fix
                             (Fix.Insert_flush { line = d.Dep_graph.d_line })
                             anchor "the pointer is persisted but its target never is")
                        ~window:(d.Dep_graph.d_first_store_p, d.Dep_graph.d_last_store_p, 100)
                        ~ident:(chase_ident c.Dep_graph.c_paths) Ordering anchor
                        (describe
                           (Printf.sprintf
                              "pointer line %d is persisted but pointee line %d never reaches \
                               durability"
                              src.Dep_graph.line d.Dep_graph.d_line)
                           anchor)))
          | Dep_graph.Unknown -> ()))
    g.Dep_graph.chases;
  (* ---- ordering: read-after-persist dependences whose locations
          co-persist in a single epoch ---- *)
  let occupancy = Dep_graph.epoch_groups g in
  List.iter
    (fun (dep : Invariants.dep_stat) ->
      if dep.Invariants.dep_co > 0 then
        let witness =
          List.find_map
            (fun (_, nodes) ->
              let holds loc (n : Dep_graph.node) = List.mem loc n.Dep_graph.locs in
              match
                ( List.find_opt (holds dep.Invariants.dep_src) nodes,
                  List.find_opt (holds dep.Invariants.dep_dst) nodes )
              with
              | Some a, Some b when a.Dep_graph.id <> b.Dep_graph.id -> Some (a, b)
              | _ -> None)
            occupancy
        in
        match witness with
        | None -> ()
        | Some (a, b) ->
            let anchor =
              match (a.Dep_graph.flush_p, b.Dep_graph.flush_p) with
              | Some x, Some y -> max x y
              | Some x, None | None, Some x -> x
              | None, None -> a.Dep_graph.fence_p
            in
            add
              ~fix:
                (fix Fix.Insert_fence anchor
                   "order the dependence: fence between the two flushes")
              ~window:
                (min a.Dep_graph.first_store_p b.Dep_graph.first_store_p, a.Dep_graph.fence_p, 100)
              ~ident:
                (Printf.sprintf "dep:%s->%s" dep.Invariants.dep_src dep.Invariants.dep_dst)
              Ordering anchor
              (Printf.sprintf
                 "%s is read to derive %s (%d dependence witnesses) but both persist at the \
                  same fence in %d epoch(s)"
                 dep.Invariants.dep_src dep.Invariants.dep_dst dep.Invariants.dep_count
                 dep.Invariants.dep_co))
    invariants.Invariants.deps;
  (* ---- atomicity: accepted co-persist invariants split by a fence ---- *)
  List.iter
    (fun (ap : Invariants.atomic_stat) ->
      if ap.Invariants.a_split > 0 then
        match
          List.find_opt (fun (gi, _, _) -> gi = 0) ap.Invariants.a_split_instances
        with
        | None -> ()
        | Some (_, ida, idb) ->
            let a = Dep_graph.node g ida and b = Dep_graph.node g idb in
            let lo = min a.Dep_graph.first_store_p b.Dep_graph.first_store_p
            and hi = max a.Dep_graph.fence_p b.Dep_graph.fence_p in
            add ~window:(lo, hi, 50)
              ~ident:(Printf.sprintf "atomic:%s&%s" ap.Invariants.a_loc1 ap.Invariants.a_loc2)
              Atomicity
              (min a.Dep_graph.fence_p b.Dep_graph.fence_p)
              (Printf.sprintf
                 "%s and %s persist atomically in %d epoch(s) (confidence %.2f) but are \
                  split %d time(s); a crash between the fences tears the pair"
                 ap.Invariants.a_loc1 ap.Invariants.a_loc2 ap.Invariants.a_co
                 (Invariants.a_confidence ap) ap.Invariants.a_split))
    invariants.Invariants.atomic_pairs;
  (* ---- persistency instructions that do no work ---- *)
  List.iter
    (fun (r : Dep_graph.redundancy) ->
      match r.Dep_graph.r_kind with
      | Dep_graph.Volatile_flush ->
          add
            ~fix:
              (fix (Fix.Delete_flush { line = r.Dep_graph.r_line }) r.Dep_graph.r_seq_p
                 "the flushed address is not in the PM pool")
            Redundant_flush r.Dep_graph.r_seq_p
            (Printf.sprintf "flush of volatile address (line %d)" r.Dep_graph.r_line)
      | Dep_graph.Clean_flush ->
          add
            ~fix:
              (fix (Fix.Delete_flush { line = r.Dep_graph.r_line }) r.Dep_graph.r_seq_p
                 "the line holds no unpersisted stores")
            Redundant_flush r.Dep_graph.r_seq_p
            (Printf.sprintf "line %d flushed with nothing written since its last flush"
               r.Dep_graph.r_line)
      | Dep_graph.Empty_fence ->
          add
            ~fix:(fix Fix.Delete_fence r.Dep_graph.r_seq_p "no flush or NT store to drain")
            Redundant_fence r.Dep_graph.r_seq_p "fence with no pending flushes or NT stores")
    g.Dep_graph.redundant;
  (* Deterministic findings order: invariant tables iterate in hash order,
     so emission order can drift across runs — sort by (anchor, kind,
     detail) instead. *)
  let findings =
    List.sort
      (fun a b ->
        Stdlib.compare (a.seq, kind_rank a.kind, a.detail) (b.seq, kind_rank b.kind, b.detail))
      !findings
  in
  {
    findings;
    invariants;
    graph = g;
    hot_windows = List.rev !hot;
    hot_frames = List.sort_uniq compare !frames;
    runs = List.length runs;
    events = List.fold_left (fun acc gr -> acc + gr.Dep_graph.events) 0 graphs;
  }

let pp_finding ppf f =
  Fmt.pf ppf "[SA] %s: %s%s" (kind_to_string f.kind) f.detail
    (match f.fix with None -> "" | Some fx -> "\n    fix: " ^ Fix.to_string fx)

let pp ppf t =
  Fmt.pf ppf "static analysis over %d run(s): %a; %a; %d finding(s)" t.runs Dep_graph.pp
    t.graph Invariants.pp t.invariants (List.length t.findings);
  List.iter (fun f -> Fmt.pf ppf "@.%a" pp_finding f) t.findings
