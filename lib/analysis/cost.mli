(** The optimizer's cost model: per-instruction cycle weights that price
    persistency traffic, used by {!Opt} to rank transformation plans by
    projected savings.

    Weights come from two sources. {!static_weights} (the default) are
    fixed, deterministic numbers whose flush/fence anchors match the lint
    phase's estimates, so lint cycle counts and optimizer projections read
    on one scale. {!fit} rescales weights from measured latency
    histograms — recorded live by {!measure} or re-imported from a
    telemetry JSONL export — anchored on the clwb mean. Fitting only
    reorders plan rankings; verdicts stay the verifier's business. *)

type weights = {
  w_store : int;
  w_nt_store : int;
  w_clflush : int;
  w_clflushopt : int;
  w_clwb : int;
  w_sfence : int;
  w_mfence : int;
  w_rmw : int;
  w_source : string;  (** "static" or "fitted" *)
}

val static_weights : weights

val op_cycles : weights -> Pmem.Op.t -> int
(** Modelled cycles of one instruction; loads are free. *)

val trace_cycles : weights -> Pmtrace.Event.t list -> int

val class_names : string list
(** The "cost.<class>_ns" histogram names {!measure} records and {!fit}
    consumes. *)

val class_of_op : Pmem.Op.t -> string option

val measure : pool_size:int -> Pmtrace.Event.t list -> (string * Telemetry.Histogram.t) list
(** One timed pass over a recorded event stream against a fresh simulated
    device: a latency histogram per op class, suitable for {!fit} and for
    the telemetry JSONL export. *)

val fit : (string * Telemetry.Histogram.t) list -> weights
(** Weights from measured latency means, rescaled so the sampled clwb mean
    maps onto [static_weights.w_clwb] (first sampled class as fallback
    anchor). Unsampled classes keep their static weight; an empty list is
    exactly {!static_weights}. *)

val histograms_of_jsonl : string -> (string * Telemetry.Histogram.t) list
(** Recover "cost.*" histograms from a telemetry JSONL document; lines
    that are not cost histograms are skipped. *)

val to_json : weights -> Telemetry.Json.t
val pp : weights Fmt.t
