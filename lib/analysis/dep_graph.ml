(** The per-cacheline persistency dependency graph, built offline from one
    recorded execution trace.

    A {e node} is one persist: a cache line whose pending stores reached
    durability at one fence — the store → flush → fence lineage of that
    line within one fence epoch. Store/flush/fence positions are kept in two
    coordinate systems: the raw trace [seq] (which counts loads when the
    recording traced them) and the {e persistency index} ([*_p] fields,
    loads excluded), which equals the instruction counter of a load-free
    execution of the same workload and is therefore directly comparable
    with trace-analysis finding seqs and failure-point first occurrences.

    Two kinds of directed evidence connect nodes:
    - {e read-after-persist edges}: a load of an already-persisted line A
      followed by a store that joins line B's pending window witnesses that
      B's new content may depend on A's persisted content — A must persist
      before B (Witcher-style dependence, PAPERS.md);
    - {e pointer chases}: two consecutive loads inside the same frame
      activation, first of persisted line X and then of line Y, witness
      that readers reach Y's data {e through} X — so Y (the pointee) must
      be persisted no later than X (the pointer). A chase whose pointee
      persisted in the same or a later epoch than the pointer, or never
      persisted at all, is an ordering hazard.

    Edges always point from an earlier fence epoch into a strictly later
    one (a persisted line can only be read after its fence), so the graph
    is acyclic per construction — a property the qcheck suite verifies
    independently via {!check}. *)

type node = {
  id : int;  (** creation order: nondecreasing in (epoch, fence) *)
  line : int;
  epoch : int;  (** index of the fence that persisted this window *)
  first_store : int;  (** raw trace seq *)
  last_store : int;
  store_count : int;
  flush : int option;  (** raw seq of the capturing flush; [None] = NT store *)
  fence : int;  (** raw seq of the persisting fence *)
  first_store_p : int;  (** persistency-index coordinates (loads excluded) *)
  last_store_p : int;
  flush_p : int option;
  fence_p : int;
  locs : string list;  (** store locations (captures), when recorded *)
}

type edge = {
  src : int;  (** node id of the persisted line that was read *)
  dst : int;  (** node id of the window a later store contributed to *)
  witness : int;  (** raw seq of the witnessing load *)
}

(** What the second load of a pointer chase found for the pointee line. *)
type pointee = Persisted of int  (** node id *) | Dirty_window | Unknown

type chase = {
  c_src : int;  (** node id of the pointer line's persist *)
  c_dst : pointee;
  c_dst_line : int;
  c_seq : int;  (** raw seq of the pointee load *)
  c_seq_p : int;  (** persistency index right before the pointee load *)
  c_paths : string * string;  (** frame paths of the two loads, for grouping *)
}

(** A store window that never reached durability. *)
type dangling = {
  d_line : int;
  d_first_store_p : int;
  d_last_store_p : int;
  d_flush_p : int option;  (** [Some _]: flushed but never fenced *)
  d_locs : string list;
  d_line_flushed : bool;  (** the line is flushed elsewhere in the trace *)
  d_line_persisted : bool;  (** the line has earlier persist nodes *)
}

type redundancy_kind = Volatile_flush | Clean_flush | Empty_fence

type redundancy = {
  r_kind : redundancy_kind;
  r_line : int;  (** 0 for fences *)
  r_seq_p : int;
}

type t = {
  nodes : node array;
  edges : edge list;
  chases : chase list;
  dangling : dangling list;
  redundant : redundancy list;
  epochs : int;  (** number of fences in the trace *)
  events : int;
}

(* ---------------------------------------------------------------- *)
(* Builder                                                          *)
(* ---------------------------------------------------------------- *)

type window = {
  w_line : int;
  w_first_store : int;
  w_first_store_p : int;
  mutable w_last_store : int;
  mutable w_last_store_p : int;
  mutable w_count : int;
  mutable w_locs : string list;
  mutable w_deps : (int * int) list;  (* src node id, witness raw seq *)
  mutable w_flush : (int * int) option;  (* raw seq, persistency index *)
}

let ring_max = 16

type builder = {
  loc_fn : int -> string option;
      (* stable store-location resolver, keyed by persistency index *)
  mutable pseq : int;
  mutable epoch : int;
  mutable next_id : int;
  pending : (int, window) Hashtbl.t;  (* line -> open window *)
  mutable ready : window list;  (* captured, awaiting the next fence; newest first *)
  last_persist : (int, int) Hashtbl.t;  (* line -> newest node id *)
  flush_counts : (int, int) Hashtbl.t;
  mutable nodes_rev : node list;
  mutable edges_rev : edge list;
  mutable chases_rev : chase list;
  mutable redundant_rev : redundancy list;
  mutable ring : (int * int * int) list;  (* node id, line, raw load seq *)
  mutable prev_load : (int * string * int * int) option;
      (* line, frame path, op_index, raw seq of the previous load *)
  mutable events : int;
}

let create_builder loc_fn =
  {
    loc_fn;
    pseq = 0;
    epoch = 0;
    next_id = 0;
    pending = Hashtbl.create 256;
    ready = [];
    last_persist = Hashtbl.create 256;
    flush_counts = Hashtbl.create 256;
    nodes_rev = [];
    edges_rev = [];
    chases_rev = [];
    redundant_rev = [];
    ring = [];
    prev_load = None;
    events = 0;
  }

let loc_of (event : Pmtrace.Event.t) =
  match event.Pmtrace.Event.stack with
  | Some c -> Some (Pmtrace.Callstack.capture_to_string c)
  | None -> None

let path_of (event : Pmtrace.Event.t) =
  match event.Pmtrace.Event.stack with
  | Some c -> String.concat ">" c.Pmtrace.Callstack.path
  | None -> ""

let op_index_of (event : Pmtrace.Event.t) =
  match event.Pmtrace.Event.stack with
  | Some c -> c.Pmtrace.Callstack.op_index
  | None -> 0

let add_store b (event : Pmtrace.Event.t) line =
  let seq = event.Pmtrace.Event.seq in
  let w =
    match Hashtbl.find_opt b.pending line with
    | Some w -> w
    | None ->
        let w =
          {
            w_line = line;
            w_first_store = seq;
            w_first_store_p = b.pseq;
            w_last_store = seq;
            w_last_store_p = b.pseq;
            w_count = 0;
            w_locs = [];
            w_deps = [];
            w_flush = None;
          }
        in
        Hashtbl.replace b.pending line w;
        w
  in
  w.w_last_store <- seq;
  w.w_last_store_p <- b.pseq;
  w.w_count <- w.w_count + 1;
  (match b.loc_fn b.pseq with
  | Some l when not (List.mem l w.w_locs) -> w.w_locs <- l :: w.w_locs
  | None -> (
      match loc_of event with
      | Some l when not (List.mem l w.w_locs) -> w.w_locs <- l :: w.w_locs
      | _ -> ())
  | Some _ -> ());
  (* read-after-persist dependencies: recently loaded persisted lines feed
     this window's new content *)
  List.iter
    (fun (src, src_line, witness) ->
      if src_line <> line && not (List.exists (fun (s, _) -> s = src) w.w_deps) then
        w.w_deps <- (src, witness) :: w.w_deps)
    b.ring;
  w

let capture_window b line =
  match Hashtbl.find_opt b.pending line with
  | None -> ()
  | Some w ->
      Hashtbl.remove b.pending line;
      b.ready <- w :: b.ready

let feed b (event : Pmtrace.Event.t) =
  b.events <- b.events + 1;
  (match event.Pmtrace.Event.op with Pmem.Op.Load _ -> () | _ -> b.pseq <- b.pseq + 1);
  match event.Pmtrace.Event.op with
  | Pmem.Op.Store { addr; size; nt } ->
      let lines = Pmem.Addr.lines_spanned ~addr ~size in
      List.iter
        (fun line ->
          let _w = add_store b event line in
          if nt then begin
            (* non-temporal: buffered until the next fence, no flush needed *)
            capture_window b line
          end)
        lines
  | Pmem.Op.Flush { line; volatile; dirty; _ } ->
      if volatile then
        b.redundant_rev <-
          { r_kind = Volatile_flush; r_line = line; r_seq_p = b.pseq } :: b.redundant_rev
      else begin
        Hashtbl.replace b.flush_counts line
          (1 + Option.value ~default:0 (Hashtbl.find_opt b.flush_counts line));
        if not dirty then
          b.redundant_rev <-
            { r_kind = Clean_flush; r_line = line; r_seq_p = b.pseq } :: b.redundant_rev;
        match Hashtbl.find_opt b.pending line with
        | Some w ->
            w.w_flush <- Some (event.Pmtrace.Event.seq, b.pseq);
            capture_window b line
        | None -> ()
      end
  | Pmem.Op.Fence { pending_flushes; pending_nt; _ } ->
      if pending_flushes = 0 && pending_nt = 0 then
        b.redundant_rev <-
          { r_kind = Empty_fence; r_line = 0; r_seq_p = b.pseq } :: b.redundant_rev;
      let fence_seq = event.Pmtrace.Event.seq in
      List.iter
        (fun w ->
          let id = b.next_id in
          b.next_id <- id + 1;
          let node =
            {
              id;
              line = w.w_line;
              epoch = b.epoch;
              first_store = w.w_first_store;
              last_store = w.w_last_store;
              store_count = w.w_count;
              flush = Option.map fst w.w_flush;
              fence = fence_seq;
              first_store_p = w.w_first_store_p;
              last_store_p = w.w_last_store_p;
              flush_p = Option.map snd w.w_flush;
              fence_p = b.pseq;
              locs = List.rev w.w_locs;
            }
          in
          b.nodes_rev <- node :: b.nodes_rev;
          List.iter
            (fun (src, witness) ->
              b.edges_rev <- { src; dst = id; witness } :: b.edges_rev)
            (List.rev w.w_deps);
          Hashtbl.replace b.last_persist w.w_line id)
        (List.rev b.ready);
      b.ready <- [];
      b.epoch <- b.epoch + 1
  | Pmem.Op.Load { addr; size } -> (
      match Pmem.Addr.lines_spanned ~addr ~size with
      | [] -> ()
      | line :: _ ->
          let seq = event.Pmtrace.Event.seq in
          let path = path_of event and idx = op_index_of event in
          (* pointer chase: the previous load (same frame activation) read a
             persisted line, and this load dereferences into another line *)
          (match b.prev_load with
          | Some (pline, ppath, pidx, _)
            when pline <> line && String.equal ppath path && idx > pidx -> (
              match Hashtbl.find_opt b.last_persist pline with
              | Some src ->
                  let c_dst =
                    match Hashtbl.find_opt b.last_persist line with
                    | Some id -> Persisted id
                    | None ->
                        if Hashtbl.mem b.pending line then Dirty_window else Unknown
                  in
                  if c_dst <> Unknown then
                    b.chases_rev <-
                      {
                        c_src = src;
                        c_dst;
                        c_dst_line = line;
                        c_seq = seq;
                        c_seq_p = b.pseq;
                        c_paths = (ppath, path);
                      }
                      :: b.chases_rev
              | None -> ())
          | _ -> ());
          (match Hashtbl.find_opt b.last_persist line with
          | Some id ->
              let ring = (id, line, seq) :: List.filter (fun (i, _, _) -> i <> id) b.ring in
              b.ring <-
                (if List.length ring > ring_max then List.filteri (fun i _ -> i < ring_max) ring
                 else ring)
          | None -> ());
          b.prev_load <- Some (line, path, idx, seq))

let finish b =
  let nodes = Array.of_list (List.rev b.nodes_rev) in
  let dangling_of w flushed =
    {
      d_line = w.w_line;
      d_first_store_p = w.w_first_store_p;
      d_last_store_p = w.w_last_store_p;
      d_flush_p = (if flushed then Option.map snd w.w_flush else None);
      d_locs = List.rev w.w_locs;
      d_line_flushed = Hashtbl.mem b.flush_counts w.w_line;
      d_line_persisted = Hashtbl.mem b.last_persist w.w_line;
    }
  in
  let dangling =
    List.map (fun w -> dangling_of w true) (List.rev b.ready)
    @ (Hashtbl.fold (fun _ w acc -> dangling_of w false :: acc) b.pending []
      |> List.sort (fun a b -> compare a.d_first_store_p b.d_first_store_p))
  in
  {
    nodes;
    edges = List.rev b.edges_rev;
    chases = List.rev b.chases_rev;
    dangling;
    redundant = List.rev b.redundant_rev;
    epochs = b.epoch;
    events = b.events;
  }

(** [build ?loc_of_pseq events] folds a recorded trace (execution order)
    into a graph. [loc_of_pseq] resolves a store's persistency index to a
    stable location string (a capture from a load-free recording of the
    same workload); without it, store locations fall back to the events'
    own stacks, whose [op_index] values shift with data-dependent load
    counts when the recording traced loads. *)
let build ?(loc_of_pseq = fun _ -> None) events =
  let b = create_builder loc_of_pseq in
  List.iter (feed b) events;
  finish b

let node t id = t.nodes.(id)

(** Persist nodes grouped by fence epoch, ascending. *)
let epoch_groups t =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun (n : node) ->
      Hashtbl.replace tbl n.epoch (n :: Option.value ~default:[] (Hashtbl.find_opt tbl n.epoch)))
    t.nodes;
  Hashtbl.fold (fun e ns acc -> (e, List.rev ns) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ---------------------------------------------------------------- *)
(* Structural properties (verified by the qcheck suite)             *)
(* ---------------------------------------------------------------- *)

(** [check t] is the list of structural-property violations (empty on every
    graph the builder can produce):
    - node windows are seq-monotone: first store <= last store <= flush <
      fence, in both coordinate systems;
    - node ids are creation-ordered: epoch and fence seq nondecreasing;
    - every edge leaves a strictly earlier fence epoch than it enters (no
      intra-epoch edges, hence no cycles), and its witness load sits
      strictly between the source's fence and the destination's fence;
    - the edge relation is acyclic (checked by DFS, independently of the
      id ordering argument). *)
let check t =
  let problems = ref [] in
  let err fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  Array.iteri
    (fun i (n : node) ->
      if i <> n.id then err "node %d stored at index %d" n.id i;
      if n.first_store > n.last_store then err "node %d: first store after last" n.id;
      (match n.flush with
      | Some f ->
          if f < n.last_store then err "node %d: flush before last store" n.id;
          if f >= n.fence then err "node %d: flush not before fence" n.id
      | None -> ());
      if n.last_store >= n.fence then err "node %d: store not before fence" n.id;
      if n.first_store_p > n.last_store_p || n.last_store_p > n.fence_p then
        err "node %d: persistency-index window not monotone" n.id;
      if i > 0 then begin
        let p = t.nodes.(i - 1) in
        if n.epoch < p.epoch then err "node %d: epoch decreases" n.id;
        if n.fence < p.fence then err "node %d: fence seq decreases" n.id
      end)
    t.nodes;
  List.iter
    (fun e ->
      let s = t.nodes.(e.src) and d = t.nodes.(e.dst) in
      if s.epoch >= d.epoch then
        err "edge %d->%d: src epoch %d not before dst epoch %d" e.src e.dst s.epoch d.epoch;
      if not (s.fence < e.witness && e.witness < d.fence) then
        err "edge %d->%d: witness %d outside (%d, %d)" e.src e.dst e.witness s.fence d.fence)
    t.edges;
  (* explicit acyclicity: DFS over the successor relation *)
  let succs = Hashtbl.create 64 in
  List.iter
    (fun e ->
      Hashtbl.replace succs e.src (e.dst :: Option.value ~default:[] (Hashtbl.find_opt succs e.src)))
    t.edges;
  let state = Hashtbl.create 64 in
  let rec visit id =
    match Hashtbl.find_opt state id with
    | Some `Done -> ()
    | Some `Active -> err "cycle through node %d" id
    | None ->
        Hashtbl.replace state id `Active;
        List.iter visit (Option.value ~default:[] (Hashtbl.find_opt succs id));
        Hashtbl.replace state id `Done
  in
  Array.iter (fun (n : node) -> visit n.id) t.nodes;
  List.rev !problems

let pp ppf t =
  Fmt.pf ppf "dep graph: %d persists over %d epochs, %d edges, %d chases, %d dangling, %d redundant"
    (Array.length t.nodes) t.epochs (List.length t.edges) (List.length t.chases)
    (List.length t.dangling) (List.length t.redundant)
