(** Merged multi-trace control-flow automaton.

    Merges the event sequences of several recorded executions keyed on the
    (frame path, per-frame ordinal) instruction identity
    ({!Pmtrace.Callstack.capture}) into one automaton: shared sites become
    single nodes, divergent successors become branches and joins. Paths
    through the merged automaton include combinations no single recording
    exercised — the abstract interpreter ({!Absint}) walks those.

    Construction is canonical (sorted, deduplicated node/instruction/edge
    sets), so merging is idempotent and insensitive to recording order. *)

(** A persistency-relevant instruction instance observed at a site. *)
type instr =
  | Store of { lines : int list; nt : bool }
      (** cache lines spanned by the store *)
  | Flush of { kind : Pmem.Op.flush_kind; line : int }
  | Fence of { kind : Pmem.Op.fence_kind }

val instr_compare : instr -> instr -> int
val instr_to_string : instr -> string

val instr_of_op : Pmem.Op.t -> instr option
(** The persistency instruction of an event; [None] for loads. *)

type node = {
  capture : Pmtrace.Callstack.capture;
  key : string;  (** [capture_to_string capture]; the node identity *)
  mutable instrs : instr list;  (** sorted, deduplicated observations *)
  mutable succs : string list;  (** sorted, deduplicated successor keys *)
  mutable first_pseq : int;
      (** smallest persistency index at which any run reached the site *)
  mutable runs : int;  (** number of recordings that visited the site *)
}

type t = {
  nodes : (string, node) Hashtbl.t;
  mutable entry_succs : string list;  (** sites some run started at *)
  mutable exit_preds : string list;  (** sites some run ended at *)
  mutable runs : int;
  mutable events : int;  (** persistency events folded in, across runs *)
}

val create : unit -> t

val add_run : t -> Pmtrace.Event.t list -> unit
(** Merge one recorded execution. Events must carry stacks (recorded with a
    [with_stacks] tracer); loads are ignored. *)

val build : Pmtrace.Event.t list list -> t
(** [build runs] merges every recording into one automaton. *)

val find_opt : t -> string -> node option
val node_count : t -> int
val edge_count : t -> int

val sorted_nodes : t -> node list
(** Deterministic order: by first persistency index, then key. *)

val signature : t -> string
(** Canonical rendering of the merged structure (excludes observation
    counters); two automata are structurally equal iff signatures match. *)

val equal : t -> t -> bool

val witness : t -> string -> string list
(** [witness t key] — deterministic concrete path (node keys, entry first)
    from the automaton entry to [key]; [[]] if unreachable. *)

val witness_tail : ?limit:int -> t -> string -> string
(** Compact rendering of the witness path tail for finding details. *)
