(** Invariant-guided failure-point prioritization: failure points whose
    first occurrence falls inside a statically-suspicious window — or that
    fire in a call-stack frame the static evidence implicates — are
    injected first, in discovery order; everything else follows, also in
    discovery order. Presence-based ranking makes the schedule provably no
    later than the unprioritized one for any failure point that is itself
    prioritized, and identical to it when the evidence is silent. *)

type scored = { ordinal : int; first_seq : int; score : int }

val score :
  ?hot_frames:string list ->
  (int * int * int) list ->
  (int * int * Pmtrace.Callstack.capture) list ->
  scored list
(** [score ?hot_frames windows points] — [points] are
    [(ordinal, first_seq, capture)] triples in persistency-index
    coordinates; [windows] are [(lo, hi, weight)] hot windows from
    {!Static}; [hot_frames] are innermost frame labels of violation
    anchors. [score] is [1] (prioritized: inside a window with [lo < s <=
    hi], or innermost frame implicated) or [0]. *)

val order :
  ?hot_frames:string list ->
  (int * int * int) list ->
  (int * int * Pmtrace.Callstack.capture) list ->
  int list
(** [order ?hot_frames windows points] is the injection priority:
    prioritized ordinals first, both blocks in ascending-ordinal order. *)

val pp_scored : scored Fmt.t
