(** The optimizer's cost model: per-instruction cycle weights used to rank
    transformation plans by projected savings.

    Two sources of weights. {!static_weights} are fixed numbers in line
    with published CLWB/CLFLUSH/SFENCE microbenchmark figures (and with
    the lint phase's flush/fence estimates) — fully deterministic, so plan
    rankings never drift between runs; they are the default. {!fit}
    derives weights from measured latency histograms — either recorded
    live by {!measure} (one timed replay of the recording, one histogram
    per op class) or re-imported from a telemetry JSONL export
    ({!Telemetry.Histogram.of_json}) — rescaled so the clwb weight anchors
    the static scale. Fitting is opt-in: it only reorders plan rankings,
    never verdicts, which stay the verifier's business. *)

type weights = {
  w_store : int;
  w_nt_store : int;  (** non-temporal stores bypass the cache but cost more to issue *)
  w_clflush : int;  (** invalidating flush: the most expensive *)
  w_clflushopt : int;
  w_clwb : int;  (** cache-preserving write-back (the kvstores' flush) *)
  w_sfence : int;
  w_mfence : int;
  w_rmw : int;  (** lock-prefixed RMW, fence semantics included *)
  w_source : string;  (** "static" or "fitted" — stamped into bench rows *)
}

(* The flush/fence anchors (250/30) deliberately match the lint phase's
   savings estimates, so lint cycle counts and optimizer projections read
   on one scale. *)
let static_weights =
  {
    w_store = 12;
    w_nt_store = 90;
    w_clflush = 400;
    w_clflushopt = 260;
    w_clwb = 250;
    w_sfence = 30;
    w_mfence = 60;
    w_rmw = 45;
    w_source = "static";
  }

let op_cycles w : Pmem.Op.t -> int = function
  | Pmem.Op.Store { nt = false; _ } -> w.w_store
  | Pmem.Op.Store { nt = true; _ } -> w.w_nt_store
  | Pmem.Op.Flush { kind = Pmem.Op.Clflush; _ } -> w.w_clflush
  | Pmem.Op.Flush { kind = Pmem.Op.Clflushopt; _ } -> w.w_clflushopt
  | Pmem.Op.Flush { kind = Pmem.Op.Clwb; _ } -> w.w_clwb
  | Pmem.Op.Fence { kind = Pmem.Op.Sfence; _ } -> w.w_sfence
  | Pmem.Op.Fence { kind = Pmem.Op.Mfence; _ } -> w.w_mfence
  | Pmem.Op.Fence { kind = Pmem.Op.Rmw; _ } -> w.w_rmw
  | Pmem.Op.Load _ -> 0

(** Modelled cycles of a whole trace (loads are free: the model prices
    persistency traffic, which is what the transformations change). *)
let trace_cycles w events =
  List.fold_left (fun acc (e : Pmtrace.Event.t) -> acc + op_cycles w e.Pmtrace.Event.op) 0 events

(* The histogram names {!measure} records and {!fit} looks for. *)
let class_names =
  [
    "cost.store_ns";
    "cost.nt_store_ns";
    "cost.clflush_ns";
    "cost.clflushopt_ns";
    "cost.clwb_ns";
    "cost.sfence_ns";
    "cost.mfence_ns";
    "cost.rmw_ns";
  ]

let class_of_op : Pmem.Op.t -> string option = function
  | Pmem.Op.Store { nt = false; _ } -> Some "cost.store_ns"
  | Pmem.Op.Store { nt = true; _ } -> Some "cost.nt_store_ns"
  | Pmem.Op.Flush { kind = Pmem.Op.Clflush; _ } -> Some "cost.clflush_ns"
  | Pmem.Op.Flush { kind = Pmem.Op.Clflushopt; _ } -> Some "cost.clflushopt_ns"
  | Pmem.Op.Flush { kind = Pmem.Op.Clwb; _ } -> Some "cost.clwb_ns"
  | Pmem.Op.Fence { kind = Pmem.Op.Sfence; _ } -> Some "cost.sfence_ns"
  | Pmem.Op.Fence { kind = Pmem.Op.Mfence; _ } -> Some "cost.mfence_ns"
  | Pmem.Op.Fence { kind = Pmem.Op.Rmw; _ } -> Some "cost.rmw_ns"
  | Pmem.Op.Load _ -> None

(** One timed pass over a recorded event stream: each op is re-applied to
    a fresh simulated device with {!Telemetry.Clock} stamps around it, one
    latency histogram per op class (store payloads are not needed — the
    model times the instruction, not the bytes). The result feeds {!fit};
    it can also be exported through the telemetry JSONL and re-imported
    elsewhere. *)
let measure ~pool_size (events : Pmtrace.Event.t list) =
  let device = Pmem.Device.create ~size:pool_size () in
  let tbl = Hashtbl.create 8 in
  let hist name =
    match Hashtbl.find_opt tbl name with
    | Some h -> h
    | None ->
        let h = Telemetry.Histogram.create () in
        Hashtbl.replace tbl name h;
        h
  in
  List.iter
    (fun (e : Pmtrace.Event.t) ->
      match class_of_op e.Pmtrace.Event.op with
      | None -> ()
      | Some cls ->
          let t0 = Telemetry.Clock.now_ns () in
          (match e.Pmtrace.Event.op with
          | Pmem.Op.Store { addr; size; nt } ->
              let b = Bytes.make size '\000' in
              if nt then Pmem.Device.store_nt device ~addr b
              else Pmem.Device.store device ~addr b
          | Pmem.Op.Flush { kind; line; volatile; _ } ->
              Pmem.Device.flush_line device ~kind ~line ~volatile
          | Pmem.Op.Fence { kind; _ } -> (
              match kind with
              | Pmem.Op.Sfence -> Pmem.Device.sfence device
              | Pmem.Op.Mfence -> Pmem.Device.mfence device
              | Pmem.Op.Rmw -> Pmem.Device.rmw_fence device)
          | Pmem.Op.Load _ -> ());
          Telemetry.Histogram.observe (hist cls) (Telemetry.Clock.now_ns () - t0))
    events;
  List.filter_map
    (fun name -> Option.map (fun h -> (name, h)) (Hashtbl.find_opt tbl name))
    class_names

(** Fit weights from latency histograms: each op class's mean latency is
    rescaled so the sampled clwb mean maps onto the static clwb weight
    (falling back to the first sampled class when no clwb was observed),
    keeping fitted and static numbers on one scale. Classes without
    samples keep their static weight; an empty histogram list is exactly
    {!static_weights}. *)
let fit histograms =
  let mean name =
    match List.assoc_opt name histograms with
    | Some h when h.Telemetry.Histogram.count > 0 -> Some (Telemetry.Histogram.mean h)
    | _ -> None
  in
  let anchor =
    match mean "cost.clwb_ns" with
    | Some m -> Some (float_of_int static_weights.w_clwb /. m)
    | None ->
        List.find_map
          (fun (name, st) ->
            Option.map (fun m -> (float_of_int st /. m)) (mean name))
          [
            ("cost.clflushopt_ns", static_weights.w_clflushopt);
            ("cost.clflush_ns", static_weights.w_clflush);
            ("cost.sfence_ns", static_weights.w_sfence);
            ("cost.store_ns", static_weights.w_store);
          ]
  in
  match anchor with
  | None -> static_weights
  | Some scale ->
      let weight name st =
        match mean name with
        | Some m -> max 1 (int_of_float (Float.round (m *. scale)))
        | None -> st
      in
      {
        w_store = weight "cost.store_ns" static_weights.w_store;
        w_nt_store = weight "cost.nt_store_ns" static_weights.w_nt_store;
        w_clflush = weight "cost.clflush_ns" static_weights.w_clflush;
        w_clflushopt = weight "cost.clflushopt_ns" static_weights.w_clflushopt;
        w_clwb = weight "cost.clwb_ns" static_weights.w_clwb;
        w_sfence = weight "cost.sfence_ns" static_weights.w_sfence;
        w_mfence = weight "cost.mfence_ns" static_weights.w_mfence;
        w_rmw = weight "cost.rmw_ns" static_weights.w_rmw;
        w_source = "fitted";
      }

(** Re-import "cost.*" histograms from a telemetry JSONL document (the
    export format of {!Telemetry.Jsonl}), for fitting from a previously
    recorded run. Unparseable lines are skipped — the caller decides
    whether an empty result is an error. *)
let histograms_of_jsonl doc =
  String.split_on_char '\n' doc
  |> List.filter_map (fun lineS ->
         match Telemetry.Json.of_string (String.trim lineS) with
         | Error _ -> None
         | Ok record -> (
             match
               ( Option.bind (Telemetry.Json.member "type" record)
                   Telemetry.Json.to_string_opt,
                 Option.bind (Telemetry.Json.member "name" record)
                   Telemetry.Json.to_string_opt )
             with
             | Some "histogram", Some name when List.mem name class_names ->
                 Option.map (fun h -> (name, h)) (Telemetry.Histogram.of_json record)
             | _ -> None))

let to_json w =
  let open Telemetry.Json in
  Assoc
    [
      ("store", Int w.w_store);
      ("nt_store", Int w.w_nt_store);
      ("clflush", Int w.w_clflush);
      ("clflushopt", Int w.w_clflushopt);
      ("clwb", Int w.w_clwb);
      ("sfence", Int w.w_sfence);
      ("mfence", Int w.w_mfence);
      ("rmw", Int w.w_rmw);
      ("source", String w.w_source);
    ]

let pp ppf w =
  Fmt.pf ppf
    "cost weights (%s): store=%d nt=%d clflush=%d clflushopt=%d clwb=%d sfence=%d mfence=%d \
     rmw=%d"
    w.w_source w.w_store w.w_nt_store w.w_clflush w.w_clflushopt w.w_clwb w.w_sfence w.w_mfence
    w.w_rmw
