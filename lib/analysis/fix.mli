(** Fix suggestions attached to static-analysis findings: the concrete edit
    that would repair (or slim down) the persist behaviour, anchored at a
    frame + instruction ordinal. The optimizer ({!Opt}) extends the same
    vocabulary into a small transformation language whose actions carry a
    secondary anchor (destination / survivor / companion instruction). *)

type action =
  | Insert_flush of { line : int }
      (** flush the cache line after the anchored store *)
  | Insert_fence
      (** order the anchored flush against what follows it *)
  | Delete_flush of { line : int }  (** the anchored flush persists nothing *)
  | Delete_fence  (** the anchored fence drains nothing *)
  | Move_flush of { line : int; to_pseq : int }
      (** hoist the anchored flush later, to just after the event at
          [to_pseq] (one capture replaces many); earlier dynamic instances
          of the site are elided *)
  | Coalesce_flushes of { line : int; survivor_pseq : int }
      (** delete the anchored flush: the flush at [survivor_pseq]
          re-captures the same line within the same persist epoch *)
  | Batch_fences of { with_pseq : int }
      (** delete the anchored fence, deferring its drains to the fence at
          [with_pseq] *)
  | Convert_to_nt of { line : int; flush_pseq : int }
      (** make the anchored store non-temporal and delete the flushes it no
          longer needs (first one at [flush_pseq]) *)
  | Convert_to_clwb of { line : int }
      (** downgrade the anchored clflush to a cache-preserving clwb *)

type t = {
  action : action;
  seq : int;
      (** persistency-instruction index of the anchor, in the same
          coordinates as trace-analysis findings *)
  stack : Pmtrace.Callstack.capture option;
      (** frame + ordinal of the anchor, when available *)
  rationale : string;
}

val action_to_string : action -> string

val secondary_anchor : action -> int
(** The multi-anchor actions' second persistency index (destination,
    survivor or companion); [0] — no event's index — for the single-anchor
    repairs. *)

val anchor_to_string : t -> string
(** The frame + ordinal rendering ("a > b @n"), falling back to the
    instruction index when no stack was recorded. *)

val to_string : t -> string
val pp : t Fmt.t

val key : t -> string
(** Identity of the edit itself (action + both anchors + index, rationale
    excluded): two findings proposing the same edit are one suggestion,
    and a [Move_flush] from A to B collides with neither an insertion at B
    nor a move from A to C. *)

val compare : t -> t -> int
(** Deterministic (frame, ordinal, kind, secondary anchor) order —
    suggestion lists must not drift with hashtable iteration across runs
    or worker counts. Rationale is not compared. *)

val equal : t -> t -> bool

val dedup : t list -> t list
(** Sorted ({!compare}) with duplicate edits removed. *)
