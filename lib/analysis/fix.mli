(** Fix suggestions attached to static-analysis findings: the concrete edit
    that would repair (or slim down) the persist behaviour, anchored at a
    frame + instruction ordinal. *)

type action =
  | Insert_flush of { line : int }
      (** flush the cache line after the anchored store *)
  | Insert_fence
      (** order the anchored flush against what follows it *)
  | Delete_flush of { line : int }  (** the anchored flush persists nothing *)
  | Delete_fence  (** the anchored fence drains nothing *)

type t = {
  action : action;
  seq : int;
      (** persistency-instruction index of the anchor, in the same
          coordinates as trace-analysis findings *)
  stack : Pmtrace.Callstack.capture option;
      (** frame + ordinal of the anchor, when available *)
  rationale : string;
}

val action_to_string : action -> string

val anchor_to_string : t -> string
(** The frame + ordinal rendering ("a > b @n"), falling back to the
    instruction index when no stack was recorded. *)

val to_string : t -> string
val pp : t Fmt.t

val key : t -> string
(** Identity of the edit itself (action + anchor + index, rationale
    excluded): two findings proposing the same edit are one suggestion. *)

val compare : t -> t -> int
(** Deterministic (frame, ordinal, kind) order — suggestion lists must not
    drift with hashtable iteration across runs or worker counts. Rationale
    is not compared. *)

val equal : t -> t -> bool

val dedup : t list -> t list
(** Sorted ({!compare}) with duplicate edits removed. *)
