(** The offline static analyzer: builds persistency dependency graphs from
    recorded executions, mines likely invariants, and emits findings with
    concrete fix suggestions. *)

type kind =
  | Durability  (** correctness: a store window never reached durability *)
  | Transient  (** its line is never flushed at all — PM as transient data? *)
  | Ordering  (** a persist-order hazard witnessed by a dependence *)
  | Atomicity  (** an accepted atomicity invariant was split by a fence *)
  | Redundant_flush
  | Redundant_fence

val kind_to_string : kind -> string

type finding = {
  kind : kind;
  seq : int;  (** persistency-index anchor *)
  stack : Pmtrace.Callstack.capture option;  (** frame + ordinal of the anchor *)
  detail : string;
  fix : Fix.t option;
  ident : string option;
      (** for invariant-backed findings (ordering / atomicity), the mined
          invariant the instance violates — an identity stable across trace
          rewrites even when the anchor shifts or the violation class
          changes (the fix verifier compares findings by it) *)
}

type t = {
  findings : finding list;
  invariants : Invariants.t;
  graph : Dep_graph.t;  (** the subject run's graph *)
  hot_windows : (int * int * int) list;
      (** (lo, hi, weight) persistency-index windows implicated by a
          violation or a dangling store — the input to {!Prioritize} *)
  hot_frames : string list;
      (** innermost call-stack frame labels of the violation anchors that
          emitted windows — generalizes per-activation window evidence to
          every failure point of the same operation *)
  runs : int;
  events : int;  (** total events folded into graphs across recordings *)
}

val kind_rank : kind -> int
(** Severity-family order used to sort findings deterministically. *)

val analyze :
  ?invariants:Invariants.t ->
  support:int ->
  confidence:float ->
  eadr:bool ->
  (Pmtrace.Event.t list * Pmtrace.Event.t list) list ->
  t
(** [analyze ~support ~confidence ~eadr runs] — each run is
    [(load_free_events, load_traced_events)] of one recorded execution of
    the same deterministic workload: the load-free recording (with stacks)
    provides exact frame + ordinal anchors in pipeline seq coordinates;
    the load-traced recording provides dependency edges and pointer
    chases. Under [eadr] the durability family is suppressed (globally
    visible stores are durable, paper section 4.3). Findings are sorted by
    (anchor, kind, detail). [invariants] skips the mining and scans
    against the given set — how the fix verifier re-checks a rewritten
    trace under the baseline invariants. *)

val pp_finding : finding Fmt.t
val pp : t Fmt.t
