(** Sound failure-point pruning driven by the abstract fixpoint.

    Two tiers: {!Absint} {e nominates} a failure point when every merged
    path into it has all pre-epoch dirty lines persisted; the engine then
    {e confirms} each nominee by materializing its crash image from the
    deterministic trace replay and running the recovery oracle. Only
    confirmed-consistent points are skipped — their injection records are
    known to contribute no finding, so the pruned report signature equals
    the unpruned one by construction. Anything unproven or unconfirmed
    falls back to live injection. *)

type nomination = {
  n_ordinal : int;  (** failure-point discovery ordinal *)
  n_pseq : int;  (** persistency index of the point's first occurrence *)
  n_capture : Pmtrace.Callstack.capture;
  n_proven : bool;  (** abstract criterion held at the site *)
}

type plan = {
  nominations : nomination list;  (** every failure point, in ordinal order *)
  total : int;  (** failure points considered *)
  proven : int;  (** nominated by the abstract criterion *)
  confirmed : int;  (** nominees whose replayed image the oracle accepted *)
  rejected : int;  (** nominees the oracle refused — fall back to injection *)
  skip : int list;  (** ordinals to skip, sorted *)
}

val nominate :
  proven_safe:(Pmtrace.Callstack.capture -> bool) ->
  (int * int * Pmtrace.Callstack.capture) list ->
  nomination list
(** Tag each offline failure point (ordinal, pseq, capture) with the
    abstract verdict for its site. *)

val decide : confirmed:(int -> bool) -> nomination list -> plan
(** Fold oracle confirmations (by ordinal; consulted only for proven
    nominees) into the final plan. *)

val skip_fraction : plan -> float
val pp : Format.formatter -> plan -> unit

val plan_to_json : plan -> Telemetry.Json.t
(** Ledger encoding: tallies plus the skipped ordinals. *)
