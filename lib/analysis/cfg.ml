(** Merged multi-trace control-flow automaton.

    Every recorded execution is a single path through the program; merging
    the event sequences of several recordings keyed on the (frame path,
    per-frame ordinal) instruction identity reconstructs a per-frame
    control-flow automaton: a site two runs share becomes one node, and the
    places where the runs take different successors become branches and
    joins. Under the frame/ordinal addressing scheme this is the same
    automaton a Pin-level tool would recover from instruction addresses
    (DESIGN.md decision 11) — which is what lets the abstract interpreter
    ({!Absint}) reason about merged paths no single recording exercised.

    Construction is canonical: nodes, observed instructions and successor
    sets are kept sorted and deduplicated, so building from a permuted or
    duplicated set of recordings yields a structurally equal automaton (the
    idempotence / order-insensitivity properties the tests assert). *)

(** A persistency-relevant instruction as observed at a site. One site can
    observe several instances across runs (e.g. the same store writing a
    different cache line per key); the abstract transfer joins over them. *)
type instr =
  | Store of { lines : int list; nt : bool }
      (** cache lines spanned by the store *)
  | Flush of { kind : Pmem.Op.flush_kind; line : int }
  | Fence of { kind : Pmem.Op.fence_kind }

let instr_compare : instr -> instr -> int = compare

let instr_to_string = function
  | Store { lines; nt } ->
      Printf.sprintf "%s[%s]"
        (if nt then "store.nt" else "store")
        (String.concat "," (List.map string_of_int lines))
  | Flush { kind; line } ->
      Printf.sprintf "%s[%d]" (Pmem.Op.flush_kind_to_string kind) line
  | Fence { kind } -> Pmem.Op.fence_kind_to_string kind

type node = {
  capture : Pmtrace.Callstack.capture;  (** the site's instruction address *)
  key : string;  (** [capture_to_string capture]; the node identity *)
  mutable instrs : instr list;  (** sorted, deduplicated observations *)
  mutable succs : string list;  (** sorted, deduplicated successor keys *)
  mutable first_pseq : int;
      (** smallest persistency index at which any run reached the site —
          the deterministic iteration order of the fixpoint and findings *)
  mutable runs : int;  (** recordings that visited the site *)
}

type t = {
  nodes : (string, node) Hashtbl.t;
  mutable entry_succs : string list;  (** sites a run started at *)
  mutable exit_preds : string list;  (** sites a run ended at *)
  mutable runs : int;
  mutable events : int;  (** persistency events folded in, across runs *)
}

let create () =
  { nodes = Hashtbl.create 256; entry_succs = []; exit_preds = []; runs = 0; events = 0 }

let add_sorted cmp x xs =
  if List.exists (fun y -> cmp x y = 0) xs then xs else List.sort cmp (x :: xs)

let instr_of_op : Pmem.Op.t -> instr option = function
  | Pmem.Op.Store { addr; size; nt } ->
      Some (Store { lines = Pmem.Addr.lines_spanned ~addr ~size; nt })
  | Pmem.Op.Flush { kind; line; _ } -> Some (Flush { kind; line })
  | Pmem.Op.Fence { kind; _ } -> Some (Fence { kind })
  | Pmem.Op.Load _ -> None

(** [add_run t events] merges one recorded execution (events must carry
    stacks, i.e. come from a [with_stacks] tracer; loads are ignored). *)
let add_run t events =
  t.runs <- t.runs + 1;
  let seen = Hashtbl.create 64 in
  let prev = ref None in
  let pseq = ref 0 in
  List.iter
    (fun (e : Pmtrace.Event.t) ->
      match instr_of_op e.Pmtrace.Event.op with
      | None -> ()
      | Some instr -> (
          incr pseq;
          match e.Pmtrace.Event.stack with
          | None -> ()
          | Some capture ->
              t.events <- t.events + 1;
              let key = Pmtrace.Callstack.capture_to_string capture in
              let node =
                match Hashtbl.find_opt t.nodes key with
                | Some n -> n
                | None ->
                    let n =
                      { capture; key; instrs = []; succs = []; first_pseq = !pseq; runs = 0 }
                    in
                    Hashtbl.replace t.nodes key n;
                    n
              in
              node.instrs <- add_sorted instr_compare instr node.instrs;
              node.first_pseq <- min node.first_pseq !pseq;
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.replace seen key ();
                node.runs <- node.runs + 1
              end;
              (match !prev with
              | None -> t.entry_succs <- add_sorted String.compare key t.entry_succs
              | Some p ->
                  let pn = Hashtbl.find t.nodes p in
                  pn.succs <- add_sorted String.compare key pn.succs);
              prev := Some key))
    events;
  match !prev with
  | Some p -> t.exit_preds <- add_sorted String.compare p t.exit_preds
  | None -> ()

(** [build runs] merges every recording into one automaton. *)
let build runs =
  let t = create () in
  List.iter (add_run t) runs;
  t

let find_opt t key = Hashtbl.find_opt t.nodes key
let node_count t = Hashtbl.length t.nodes

let edge_count t =
  Hashtbl.fold (fun _ n acc -> acc + List.length n.succs) t.nodes (List.length t.entry_succs)

(** Nodes in deterministic order: by first persistency index, then key. *)
let sorted_nodes t =
  Hashtbl.fold (fun _ n acc -> n :: acc) t.nodes []
  |> List.sort (fun a b ->
         match compare a.first_pseq b.first_pseq with
         | 0 -> String.compare a.key b.key
         | c -> c)

(** Canonical rendering; two automata are equal iff their signatures are.
    [runs] and [first_pseq] are deliberately excluded: they count
    observations, which idempotence (merging the same recording twice) must
    not change structurally. *)
let signature t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("entry:" ^ String.concat "," t.entry_succs ^ "\n");
  Buffer.add_string buf ("exit:" ^ String.concat "," t.exit_preds ^ "\n");
  let nodes =
    Hashtbl.fold (fun _ n acc -> n :: acc) t.nodes []
    |> List.sort (fun a b -> String.compare a.key b.key)
  in
  List.iter
    (fun n ->
      Buffer.add_string buf n.key;
      Buffer.add_char buf '|';
      Buffer.add_string buf (String.concat ";" (List.map instr_to_string n.instrs));
      Buffer.add_char buf '|';
      Buffer.add_string buf (String.concat "," n.succs);
      Buffer.add_char buf '\n')
    nodes;
  Buffer.contents buf

let equal a b = String.equal (signature a) (signature b)

(** [witness t key] — a concrete path from the automaton entry to [key]
    (BFS over merged edges, successors visited in sorted order, so the
    witness is deterministic). The path is realizable in the merged
    automaton even when no single recording walked it. Returns the node
    keys entry-first, or [[]] when [key] is unreachable. *)
let witness t key =
  if not (Hashtbl.mem t.nodes key) then []
  else begin
    let parent : (string, string option) Hashtbl.t = Hashtbl.create 64 in
    let q = Queue.create () in
    List.iter
      (fun k ->
        if not (Hashtbl.mem parent k) then begin
          Hashtbl.replace parent k None;
          Queue.add k q
        end)
      t.entry_succs;
    let found = ref (Hashtbl.mem parent key) in
    while (not !found) && not (Queue.is_empty q) do
      let k = Queue.pop q in
      if String.equal k key then found := true
      else
        match Hashtbl.find_opt t.nodes k with
        | None -> ()
        | Some n ->
            List.iter
              (fun s ->
                if not (Hashtbl.mem parent s) then begin
                  Hashtbl.replace parent s (Some k);
                  Queue.add s q
                end)
              n.succs
    done;
    if not (Hashtbl.mem parent key) then []
    else begin
      let rec walk k acc =
        match Hashtbl.find_opt parent k with
        | Some (Some p) -> walk p (k :: acc)
        | Some None | None -> k :: acc
      in
      walk key []
    end
  end

(** Render the tail of a witness path compactly (innermost frame @ ordinal
    per hop), for finding details. *)
let witness_tail ?(limit = 4) t key =
  let path = witness t key in
  let n = List.length path in
  let tail = if n <= limit then path else List.filteri (fun i _ -> i >= n - limit) path in
  let hop k =
    match Hashtbl.find_opt t.nodes k with
    | None -> k
    | Some node ->
        let frame =
          match List.rev node.capture.Pmtrace.Callstack.path with
          | innermost :: _ -> innermost
          | [] -> Pmtrace.Callstack.root_label
        in
        Printf.sprintf "%s@%d" frame node.capture.Pmtrace.Callstack.op_index
  in
  (if n > limit then "... -> " else "") ^ String.concat " -> " (List.map hop tail)
