(** Fix suggestions attached to static-analysis findings: the concrete edit
    that would repair (or slim down) the persist behaviour, anchored at a
    frame + instruction ordinal so it can be located in the source.

    The suggestion model follows "Automated Insertion of Flushes and Fences
    for Persistency" (see PAPERS.md): the dependency graph tells us both
    where a persist is missing (insert a flush/fence after the offending
    store) and where one is useless (delete it). *)

type action =
  | Insert_flush of { line : int }
      (** flush the cache line after the anchored store *)
  | Insert_fence
      (** order the anchored flush against what follows it *)
  | Delete_flush of { line : int }  (** the anchored flush persists nothing *)
  | Delete_fence  (** the anchored fence drains nothing *)

type t = {
  action : action;
  seq : int;
      (** persistency-instruction index of the anchor (the trace position the
          edit applies to), in the same coordinates as trace-analysis
          findings *)
  stack : Pmtrace.Callstack.capture option;
      (** frame + ordinal of the anchor, when a recorded execution with
          stacks is available *)
  rationale : string;
}

let action_to_string = function
  | Insert_flush { line } -> Printf.sprintf "insert flush of line %d" line
  | Insert_fence -> "insert fence"
  | Delete_flush { line } -> Printf.sprintf "delete flush of line %d" line
  | Delete_fence -> "delete fence"

let anchor_to_string t =
  match t.stack with
  | Some c -> Pmtrace.Callstack.capture_to_string c
  | None -> Printf.sprintf "instruction #%d" t.seq

let to_string t =
  Printf.sprintf "%s at %s (%s)" (action_to_string t.action) (anchor_to_string t)
    t.rationale

let pp ppf t = Fmt.string ppf (to_string t)

let action_rank = function
  | Insert_flush _ -> 0
  | Insert_fence -> 1
  | Delete_flush _ -> 2
  | Delete_fence -> 3

(* Identity of the edit itself — two findings proposing the same edit at
   the same place are one suggestion, whatever their rationales say. *)
let key t = Printf.sprintf "%s@%s#%d" (action_to_string t.action) (anchor_to_string t) t.seq

(** Deterministic order: (frame, ordinal, kind) — suggestion lists must not
    drift with hashtable iteration across runs or worker counts. *)
let compare a b =
  let frame t = match t.stack with Some c -> Pmtrace.Callstack.capture_to_string c | None -> "" in
  Stdlib.compare
    (frame a, a.seq, action_rank a.action, a.action)
    (frame b, b.seq, action_rank b.action, b.action)

let equal a b = compare a b = 0

let dedup fixes = List.sort_uniq compare fixes
