(** Fix suggestions attached to static-analysis findings: the concrete edit
    that would repair (or slim down) the persist behaviour, anchored at a
    frame + instruction ordinal so it can be located in the source.

    The suggestion model follows "Automated Insertion of Flushes and Fences
    for Persistency" (see PAPERS.md): the dependency graph tells us both
    where a persist is missing (insert a flush/fence after the offending
    store) and where one is useless (delete it).

    The optimizer ({!Opt}) extends the same vocabulary from repairs into a
    small transformation language: moving a flush later, coalescing
    duplicate flushes onto a surviving one, batching fences, and
    converting a store or flush to a cheaper instruction. These actions
    carry a {e secondary} anchor (the destination, survivor or companion
    instruction, always a persistency index of the original trace) in
    addition to the primary one in [seq] — {!key} and {!compare} fold both
    anchors in, so a [Move_flush] from A to B never collides with an
    insertion at B. *)

type action =
  | Insert_flush of { line : int }
      (** flush the cache line after the anchored store *)
  | Insert_fence
      (** order the anchored flush against what follows it *)
  | Delete_flush of { line : int }  (** the anchored flush persists nothing *)
  | Delete_fence  (** the anchored fence drains nothing *)
  | Move_flush of { line : int; to_pseq : int }
      (** hoist the anchored flush later — to just after the event at
          [to_pseq] (e.g. out of a store loop, so one capture replaces
          many); earlier dynamic instances of the site are elided *)
  | Coalesce_flushes of { line : int; survivor_pseq : int }
      (** delete the anchored flush: the flush at [survivor_pseq]
          re-captures the same line within the same persist epoch *)
  | Batch_fences of { with_pseq : int }
      (** delete the anchored fence, deferring its drains to the fence at
          [with_pseq] — merging two persist epochs of one activation *)
  | Convert_to_nt of { line : int; flush_pseq : int }
      (** make the anchored store non-temporal and delete the flushes it
          no longer needs (first one at [flush_pseq]): NT stores bypass
          the cache and drain at the next fence *)
  | Convert_to_clwb of { line : int }
      (** downgrade the anchored clflush to a cache-preserving clwb *)

type t = {
  action : action;
  seq : int;
      (** persistency-instruction index of the anchor (the trace position the
          edit applies to), in the same coordinates as trace-analysis
          findings *)
  stack : Pmtrace.Callstack.capture option;
      (** frame + ordinal of the anchor, when a recorded execution with
          stacks is available *)
  rationale : string;
}

let action_to_string = function
  | Insert_flush { line } -> Printf.sprintf "insert flush of line %d" line
  | Insert_fence -> "insert fence"
  | Delete_flush { line } -> Printf.sprintf "delete flush of line %d" line
  | Delete_fence -> "delete fence"
  | Move_flush { line; to_pseq } ->
      Printf.sprintf "move flush of line %d to after #%d" line to_pseq
  | Coalesce_flushes { line; survivor_pseq } ->
      Printf.sprintf "coalesce flush of line %d into the flush at #%d" line survivor_pseq
  | Batch_fences { with_pseq } -> Printf.sprintf "batch fence with the fence at #%d" with_pseq
  | Convert_to_nt { line; flush_pseq } ->
      Printf.sprintf "convert store to non-temporal and drop the flush of line %d at #%d" line
        flush_pseq
  | Convert_to_clwb { line } -> Printf.sprintf "convert clflush of line %d to clwb" line

let anchor_to_string t =
  match t.stack with
  | Some c -> Pmtrace.Callstack.capture_to_string c
  | None -> Printf.sprintf "instruction #%d" t.seq

let to_string t =
  Printf.sprintf "%s at %s (%s)" (action_to_string t.action) (anchor_to_string t)
    t.rationale

let pp ppf t = Fmt.string ppf (to_string t)

let action_rank = function
  | Insert_flush _ -> 0
  | Insert_fence -> 1
  | Delete_flush _ -> 2
  | Delete_fence -> 3
  | Move_flush _ -> 4
  | Coalesce_flushes _ -> 5
  | Batch_fences _ -> 6
  | Convert_to_nt _ -> 7
  | Convert_to_clwb _ -> 8

(* The secondary anchor of a multi-anchor action: the destination,
   survivor or companion persistency index. 0 for the single-anchor
   repairs (no event has index 0, so the sentinel cannot collide). *)
let secondary_anchor = function
  | Insert_flush _ | Insert_fence | Delete_flush _ | Delete_fence | Convert_to_clwb _ -> 0
  | Move_flush { to_pseq; _ } -> to_pseq
  | Coalesce_flushes { survivor_pseq; _ } -> survivor_pseq
  | Batch_fences { with_pseq } -> with_pseq
  | Convert_to_nt { flush_pseq; _ } -> flush_pseq

(* Identity of the edit itself — two findings proposing the same edit at
   the same place are one suggestion, whatever their rationales say. Both
   anchors participate: a [Move_flush] from A to B is neither an insert at
   B nor a move from A to C. *)
let key t =
  Printf.sprintf "%s@%s#%d>%d" (action_to_string t.action) (anchor_to_string t) t.seq
    (secondary_anchor t.action)

(** Deterministic order: (frame, ordinal, kind, secondary anchor) —
    suggestion lists must not drift with hashtable iteration across runs
    or worker counts. *)
let compare a b =
  let frame t = match t.stack with Some c -> Pmtrace.Callstack.capture_to_string c | None -> "" in
  Stdlib.compare
    (frame a, a.seq, action_rank a.action, secondary_anchor a.action, a.action)
    (frame b, b.seq, action_rank b.action, secondary_anchor b.action, b.action)

let equal a b = compare a b = 0

let dedup fixes = List.sort_uniq compare fixes
