(** Engine-backed fix verification: every {!Fix.t} the analyses suggest is
    applied to the recorded trace as a concrete edit, the rewritten trace is
    replayed, and both the crash-consistency oracle and the static detectors
    are re-run over the result — upgrading an advisory suggestion to a
    machine-checked verdict.

    A fix is {e proven} when the finding it targets disappears from the
    rewritten trace and no new harm shows up; {e ineffective} when the
    finding survives; {e harmful} when the rewrite introduces a new
    correctness-grade finding (oracle bug, structural durability /
    ordering / atomicity violation, stranded store window) or — for
    deletions, which promise behaviour preservation — changes the final
    persisted image.

    Everything here is offline: verification costs replays (trace
    interpretation), never target re-executions. The oracle and
    failure-point enumerators are passed in as closures so this module
    stays below the engine in the dependency order. *)

type verdict = Proven | Ineffective | Harmful

let verdict_to_string = function
  | Proven -> "proven"
  | Ineffective -> "ineffective"
  | Harmful -> "harmful"

type source = Static_finding | Lint_finding

let source_to_string = function Static_finding -> "static" | Lint_finding -> "lint"

type candidate = {
  c_source : source;
  c_kind : string;  (** source-specific kind string of the targeted finding *)
  c_stack : Pmtrace.Callstack.capture option;  (** the finding's code path *)
  c_pseq : int;  (** the finding's persistency-index anchor *)
  c_fix : Fix.t;
}

type outcome = { o_candidate : candidate; o_verdict : verdict; o_detail : string }

type t = {
  outcomes : outcome list;  (** in {!Fix.compare} order of the fixes *)
  proven : int;
  ineffective : int;
  harmful : int;
  replays : int;  (** trace interpretations performed (injection + normalization) *)
}

(* Finding identity across a rewrite: kind + code path. Stacks survive
   rewriting (recorded events keep theirs; synthesized events have none),
   whereas anchors and detail strings embed persistency indices that shift
   past an insertion. *)
let finding_key kind stack pseq =
  kind ^ "@"
  ^
  match stack with
  | Some c -> Pmtrace.Callstack.capture_to_string c
  | None -> Printf.sprintf "#%d" pseq

let candidate_key c = finding_key c.c_kind c.c_stack c.c_pseq

(** The concrete trace edits a {!Fix.t} stands for at one anchor. An
    inserted flush gets a fence right behind it: under the buffered
    persistency model a flush only reaches durability at a fence, so the
    flush alone would leave the window exactly as dangling as before. *)
let edits_at (fix : Fix.t) ?at_op ?(with_fence = true) pseq =
  match fix.Fix.action with
  | Fix.Insert_flush { line } ->
      (* a flush-the-store fix follows the store it repairs: when the
         instance is a store, flush the line *that* instance dirtied — the
         same source line touches a different cache line each execution *)
      let line =
        match at_op with
        | Some (Pmem.Op.Store { addr; _ }) -> Pmem.Addr.line_of addr
        | Some _ | None -> line
      in
      Pmtrace.Replay.Insert_flush_after { pseq; line }
      :: (if with_fence then [ Pmtrace.Replay.Insert_fence_after { pseq } ] else [])
  | Fix.Insert_fence -> [ Pmtrace.Replay.Insert_fence_after { pseq } ]
  | Fix.Delete_flush _ -> [ Pmtrace.Replay.Delete_flush_at { pseq } ]
  | Fix.Delete_fence -> [ Pmtrace.Replay.Delete_fence_at { pseq } ]
  (* transformation actions at a single anchor instance; the optimizer
     builds richer per-instance edit lists itself, this mapping is what a
     bare (stackless) anchor stands for *)
  | Fix.Move_flush { to_pseq; _ } -> [ Pmtrace.Replay.Move_flush_to { pseq; to_pseq } ]
  | Fix.Coalesce_flushes _ -> [ Pmtrace.Replay.Delete_flush_at { pseq } ]
  | Fix.Batch_fences _ -> [ Pmtrace.Replay.Delete_fence_at { pseq } ]
  | Fix.Convert_to_nt { flush_pseq; _ } ->
      [
        Pmtrace.Replay.Set_store_nt { pseq };
        Pmtrace.Replay.Delete_flush_at { pseq = flush_pseq };
      ]
  | Fix.Convert_to_clwb _ ->
      [ Pmtrace.Replay.Set_flush_kind { pseq; kind = Pmem.Op.Clwb } ]

let edits_of_fix (fix : Fix.t) = edits_at fix fix.Fix.seq

(* A fix names a code site, not a dynamic instruction: every event whose
   capture (innermost path + ordinal) equals the fix's anchor is the same
   static instruction executing again. Captures of frame instances that
   took different branches can collide on the ordinal, so an instance also
   has to carry the op shape the fix's action expects (deletes anchor at
   the deleted flush/fence, inserts at the store to be persisted). *)
let site_pseqs (fix : Fix.t) events =
  let shape : Pmem.Op.t -> _ = function
    | Pmem.Op.Store _ -> `Store
    | Pmem.Op.Flush _ -> `Flush
    | Pmem.Op.Fence _ -> `Fence
    | Pmem.Op.Load _ -> `Load
  in
  match fix.Fix.stack with
  | None -> [ (fix.Fix.seq, None) ]
  | Some c ->
      let want = Pmtrace.Callstack.capture_to_string c in
      let pseq = ref 0 and matches = ref [] in
      List.iter
        (fun (e : Pmtrace.Event.t) ->
          match e.Pmtrace.Event.op with
          | Pmem.Op.Load _ -> ()
          | op -> (
              incr pseq;
              match e.Pmtrace.Event.stack with
              | Some c' when Pmtrace.Callstack.capture_to_string c' = want ->
                  matches := (!pseq, op) :: !matches
              | _ -> ()))
        events;
      let matches = List.rev !matches in
      (* only instances shaped like the anchor event count: captures of
         frame instances that branched differently can collide on the
         ordinal, and a delete edit additionally requires its shape *)
      let anchor_shape =
        Option.map shape (List.assoc_opt fix.Fix.seq matches)
      in
      let allowed s =
        (match anchor_shape with Some a -> s = a | None -> true)
        &&
        match fix.Fix.action with
        | Fix.Delete_flush _ -> s = `Flush
        | Fix.Delete_fence -> s = `Fence
        | Fix.Insert_flush _ | Fix.Insert_fence -> true
        | Fix.Move_flush _ | Fix.Coalesce_flushes _ | Fix.Convert_to_clwb _ -> s = `Flush
        | Fix.Batch_fences _ -> s = `Fence
        | Fix.Convert_to_nt _ -> s = `Store
      in
      (match
         List.filter_map
           (fun (p, op) -> if allowed (shape op) then Some (p, Some op) else None)
           matches
       with
      | [] -> [ (fix.Fix.seq, None) ]
      | l -> l)

(** A source-level repair applies everywhere the repaired instruction
    executes: the fix's edits, expanded to every dynamic instance of its
    anchor site in [events] (inserted flushes chase each instance's own
    cache line). An inserted flush is paired with a fence only when no
    recorded fence follows it — a later fence drains the flush anyway,
    while a synthesized one splits the surrounding persist epoch and can
    break the program's own atomicity batching. *)
let expand_fix (fix : Fix.t) events =
  let last_fence_p =
    let pseq = ref 0 and last = ref 0 in
    List.iter
      (fun (e : Pmtrace.Event.t) ->
        match e.Pmtrace.Event.op with
        | Pmem.Op.Load _ -> ()
        | Pmem.Op.Fence _ ->
            incr pseq;
            last := !pseq
        | _ -> incr pseq)
      events;
    !last
  in
  List.concat_map
    (fun (p, at_op) -> edits_at fix ?at_op ~with_fence:(p >= last_fence_p) p)
    (site_pseqs fix events)

let is_delete (fix : Fix.t) =
  match fix.Fix.action with
  | Fix.Delete_flush _ | Fix.Delete_fence -> true
  | Fix.Insert_flush _ | Fix.Insert_fence -> false
  (* every transformation action promises behaviour preservation, so it is
     held to the deletion standard: the final persisted image must not
     change *)
  | Fix.Move_flush _ | Fix.Coalesce_flushes _ | Fix.Batch_fences _ | Fix.Convert_to_nt _
  | Fix.Convert_to_clwb _ -> true

(* ------------------------------------------------------------------ *)
(* Key sets from the three checkers                                    *)
(* ------------------------------------------------------------------ *)

module Keys = Set.Make (String)

let static_keys ~correctness_only (s : Static.t) =
  List.fold_left
    (fun acc (f : Static.finding) ->
      let corr =
        match f.Static.kind with
        | Static.Durability | Static.Ordering | Static.Atomicity -> true
        | Static.Transient | Static.Redundant_flush | Static.Redundant_fence -> false
      in
      if correctness_only && not corr then acc
      else
        let key =
          (* invariant-backed findings carry the violated invariant's
             identity: a rewrite that shifts the anchor or re-describes the
             violation (dangling pointee -> unordered pointee) is still the
             same defect, not a new one *)
          match f.Static.ident with
          | Some id -> Static.kind_to_string f.Static.kind ^ "@" ^ id
          | None -> finding_key (Static.kind_to_string f.Static.kind) f.Static.stack f.Static.seq
        in
        Keys.add key acc)
    Keys.empty s.Static.findings

let lint_keys ?only (l : Lint.t) =
  List.fold_left
    (fun acc (f : Lint.finding) ->
      if match only with Some k -> f.Lint.l_kind <> k | None -> false then acc
      else Keys.add (finding_key (Lint.kind_to_string f.Lint.l_kind) f.Lint.l_stack f.Lint.l_pseq) acc)
    Keys.empty l.Lint.findings

(* Replay-based fault injection: enumerate the trace's failure points with
   the [points] closure, replay once, and capture + classify the crash
   image of each point as it is passed — the offline analogue of the
   snapshot injection strategy. [policy] selects the crash view:
   [Program_prefix] (the default, Mumak's graceful model) or the
   conservative [Adr] view the optimizer's differential uses, under which
   only fenced data survives — the view that makes deleted or deferred
   persist instructions observable. Returns the oracle-bug key set and the
   final (fully drained, ADR) image of the replayed run. *)
let inject ?(policy = Pmem.Device.Program_prefix) ~points ~oracle recording =
  let evs = Pmtrace.Replay.events recording in
  let want = Hashtbl.create 64 in
  List.iter (fun (_, pseq, capture) -> Hashtbl.replace want pseq capture) (points evs);
  let keys = ref Keys.empty in
  let device =
    Pmtrace.Replay.replay recording ~on_event:(fun device ~pseq _e ->
        match Hashtbl.find_opt want pseq with
        | None -> ()
        | Some capture -> (
            let img = Pmem.Device.crash device ~policy in
            match oracle img with
            | None -> ()
            | Some (kind, _detail) ->
                keys :=
                  Keys.add
                    (kind ^ "@" ^ Pmtrace.Callstack.capture_to_string capture)
                    !keys))
  in
  (!keys, Pmem.Device.persisted_image device)

(* A post-rewrite finding anchored at a synthesized event (stackless key,
   "kind@#pseq") has no source location: it is the detector re-describing
   the inserted instruction itself, not a new defect at a program site.
   Hazards between recorded instructions keep their stacks and still
   register. *)
let attributable key =
  match String.index_opt key '@' with
  | Some i -> not (i + 1 < String.length key && key.[i + 1] = '#')
  | None -> true

(* ------------------------------------------------------------------ *)
(* Verification                                                        *)
(* ------------------------------------------------------------------ *)

let verify ?invariants ~support ~confidence ~eadr
    ~(oracle : Pmem.Image.t -> (string * string) option)
    ~(points : Pmtrace.Event.t list -> (int * int * Pmtrace.Callstack.capture) list)
    ~(noload : Pmtrace.Replay.t) ~(loaded : Pmtrace.Replay.t) (candidates : candidate list) =
  Telemetry.Collector.span ~cat:"verify" "verify_fixes" @@ fun () ->
  let replays = ref 0 in
  let noload_events = Pmtrace.Replay.events noload in
  let loaded_events = Pmtrace.Replay.events loaded in
  (* baseline: what the unmodified trace shows, under invariants mined once
     and reused for every recheck *)
  let base_static =
    Static.analyze ?invariants ~support ~confidence ~eadr [ (noload_events, loaded_events) ]
  in
  let invariants = base_static.Static.invariants in
  let base_lint = Lint.analyze ~eadr noload_events in
  let base_oracle, base_image = inject ~points ~oracle noload in
  incr replays;
  let base_structural = static_keys ~correctness_only:true base_static in
  let base_missing = lint_keys ~only:Lint.Missing_flush base_lint in
  (* deterministic order, one verdict per distinct edit *)
  let candidates =
    List.stable_sort (fun a b -> Fix.compare a.c_fix b.c_fix) candidates
    |> List.fold_left
         (fun (seen, acc) c ->
           let k = Fix.key c.c_fix in
           if List.mem k seen then (seen, acc) else (k :: seen, c :: acc))
         ([], [])
    |> snd |> List.rev
  in
  let judge c =
    (* one edit list, computed in noload coordinates and applied to both
       recordings: the persistency index is shared (it skips loads), while
       capture ordinals are not — a load-traced frame counts its loads, so
       matching sites by capture against the loaded trace would hit
       different instructions *)
    let edits = expand_fix c.c_fix noload_events in
    match Pmtrace.Replay.rewrite noload edits with
    | exception Failure msg -> { o_candidate = c; o_verdict = Ineffective; o_detail = msg }
    | rewritten ->
        let norm_noload = Pmtrace.Replay.normalize rewritten in
        let norm_loaded =
          Pmtrace.Replay.normalize (Pmtrace.Replay.rewrite loaded edits)
        in
        let re_static =
          Static.analyze ~invariants ~support ~confidence ~eadr [ (norm_noload, norm_loaded) ]
        in
        let re_lint = Lint.analyze ~eadr norm_noload in
        let re_oracle, re_image = inject ~points ~oracle rewritten in
        replays := !replays + 3;
        let fresh got base =
          Keys.elements (Keys.diff got base) |> List.filter attributable
        in
        let new_oracle = fresh re_oracle base_oracle in
        let new_structural =
          fresh (static_keys ~correctness_only:true re_static) base_structural
        in
        let new_missing = fresh (lint_keys ~only:Lint.Missing_flush re_lint) base_missing in
        let image_changed = is_delete c.c_fix && not (Pmem.Image.equal base_image re_image) in
        let target_gone =
          let keys =
            match c.c_source with
            | Static_finding -> static_keys ~correctness_only:false re_static
            | Lint_finding -> lint_keys re_lint
          in
          not (Keys.mem (candidate_key c) keys)
        in
        let verdict, detail =
          match (new_oracle, new_structural, new_missing, image_changed) with
          | bug :: _, _, _, _ -> (Harmful, "introduces an oracle bug: " ^ bug)
          | [], v :: _, _, _ -> (Harmful, "introduces a structural violation: " ^ v)
          | [], [], v :: _, _ -> (Harmful, "strands a store window: " ^ v)
          | [], [], [], true ->
              (Harmful, "deletion changes the final persisted image")
          | [], [], [], false ->
              if target_gone then
                (Proven, "targeted finding gone from the rewritten trace; no new findings")
              else (Ineffective, "targeted finding still present in the rewritten trace")
        in
        { o_candidate = c; o_verdict = verdict; o_detail = detail }
  in
  let outcomes = List.map judge candidates in
  let tally v = List.length (List.filter (fun o -> o.o_verdict = v) outcomes) in
  let proven = tally Proven and ineffective = tally Ineffective and harmful = tally Harmful in
  Telemetry.Collector.count "fix.proven" proven;
  Telemetry.Collector.count "fix.ineffective" ineffective;
  Telemetry.Collector.count "fix.harmful" harmful;
  { outcomes; proven; ineffective; harmful; replays = !replays }

let pp_outcome ppf o =
  Fmt.pf ppf "[%s] %s -> %s (%s)"
    (source_to_string o.o_candidate.c_source)
    (Fix.to_string o.o_candidate.c_fix)
    (verdict_to_string o.o_verdict) o.o_detail

let pp ppf t =
  Fmt.pf ppf "fix verdicts: proven=%d ineffective=%d harmful=%d (%d replay(s))" t.proven
    t.ineffective t.harmful t.replays;
  List.iter (fun o -> Fmt.pf ppf "@.  %a" pp_outcome o) t.outcomes

(** Ledger encoding of one replay-backed verdict. *)
let outcome_to_json (o : outcome) =
  let open Telemetry.Json in
  let c = o.o_candidate in
  Assoc
    [
      ("source", String (source_to_string c.c_source));
      ("kind", String c.c_kind);
      ( "stack",
        match c.c_stack with
        | None -> Null
        | Some s -> String (Pmtrace.Callstack.capture_to_string s) );
      ("pseq", Int c.c_pseq);
      ("fix", String (Fix.to_string c.c_fix));
      ("verdict", String (verdict_to_string o.o_verdict));
      ("detail", String o.o_detail);
    ]

(** Ledger encoding of the phase: the verdict tally plus every outcome. *)
let to_json t =
  let open Telemetry.Json in
  Assoc
    [
      ("proven", Int t.proven);
      ("ineffective", Int t.ineffective);
      ("harmful", Int t.harmful);
      ("replays", Int t.replays);
      ("outcomes", List (List.map outcome_to_json t.outcomes));
    ]
