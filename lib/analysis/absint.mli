(** Path-sensitive persistency abstract interpreter over the merged
    multi-trace automaton ({!Cfg}).

    Abstracts each cache line through the persistency chain
    [bot < clean < dirty < flushed-pending < persisted], refined into a
    powerset with an epoch split (dirty/pending facts from before the
    current store epoch are distinguished from the current epoch's), with
    transfer functions mirroring {!Pmem.Device} semantics. Produces
    missing-flush / missing-fence / ordering findings on merged paths no
    single recording exercised, each with a concrete path witness, and
    per-site safety proofs that {!Prune} uses to nominate failure points
    for skipping. *)

module Lattice : sig
  (** The per-cache-line chain. *)
  type elem = Bot | Clean | Dirty | Flushed_pending | Persisted

  val join : elem -> elem -> elem
  val leq : elem -> elem -> bool
  val rank : elem -> int
  val elem_to_string : elem -> string
  val all_elems : elem list

  (** Powerset refinement used by the fixpoint: a bitmask of chain facts
      holding on some merged path, with dirty/pending split by store
      epoch. Join is bitwise-or. *)
  type mask = int

  val bot : mask
  val clean : mask
  val dirty_epoch : mask
  val dirty_stale : mask
  val pending_epoch : mask
  val pending_stale : mask
  val persisted : mask
  val dirty_bits : mask
  val pending_bits : mask
  val mask_join : mask -> mask -> mask
  val mask_leq : mask -> mask -> bool
  val all_masks : mask list

  val elem_of_mask : mask -> elem
  (** Summarize a mask back onto the chain (worst outstanding fact). *)
end

(** Abstract value of one cache line: fact mask plus deterministic witness
    sites for the outstanding dirty/pending facts. *)
type value = {
  mask : Lattice.mask;
  wit_dirty : string option;
  wit_pending : string option;
}

module Lines : Map.S with type key = int

type state = value Lines.t

val state_join : state -> state -> state
val state_equal : state -> state -> bool
val transfer : Cfg.node -> state -> state

type kind = Missing_flush | Missing_fence | Ordering

val kind_to_string : kind -> string
val kind_rank : kind -> int

type finding = {
  f_kind : kind;
  f_line : int;
  f_site : Pmtrace.Callstack.capture option;
  f_pseq : int;
  f_detail : string;
}

type t = {
  cfg : Cfg.t;
  ins : (string, state) Hashtbl.t;
  exit_state : state;
  findings : finding list;
  proven : (string, unit) Hashtbl.t;
  eadr : bool;
}

val analyze : eadr:bool -> Pmtrace.Event.t list list -> t
(** Merge the recordings, run the fixpoint, derive findings and proofs.
    Under eADR durability findings are suppressed; proofs are unaffected
    (crash images are program-prefix cuts either way). *)

val proven_count : t -> int

val proven_safe_at : t -> Pmtrace.Callstack.capture -> bool
(** Whether the site is proven safe: on every merged path into it, no line
    carries a stale (pre-epoch) dirty or pending fact. *)

val pp : Format.formatter -> t -> unit

val finding_to_json : finding -> Telemetry.Json.t
val to_json : t -> Telemetry.Json.t
(** Ledger encoding: CFG size, safety-proof count, findings with their
    path witnesses. *)
