(** Engine-backed fix verification: apply each suggested {!Fix.t} to the
    recorded trace, replay the rewritten trace, and re-run the
    crash-consistency oracle and the static detectors over the result —
    upgrading advisory suggestions to machine-checked verdicts.

    Verification costs replays (trace interpretation), never target
    re-executions. The oracle and failure-point enumerator are passed in as
    closures so this module stays below the engine in the dependency
    order. *)

type verdict =
  | Proven
      (** the targeted finding is gone from the rewritten trace and nothing
          new broke *)
  | Ineffective  (** the targeted finding is still present *)
  | Harmful
      (** the rewrite introduces a new correctness-grade finding (oracle
          bug, structural durability/ordering/atomicity violation, stranded
          store window) or — for deletions, which promise behaviour
          preservation — changes the final persisted image *)

val verdict_to_string : verdict -> string

type source = Static_finding | Lint_finding

val source_to_string : source -> string

(** A fix together with the finding it claims to repair: the finding's
    identity (kind + code path) is what the recheck must no longer
    report. *)
type candidate = {
  c_source : source;
  c_kind : string;  (** source-specific kind string of the targeted finding *)
  c_stack : Pmtrace.Callstack.capture option;  (** the finding's code path *)
  c_pseq : int;  (** the finding's persistency-index anchor *)
  c_fix : Fix.t;
}

type outcome = { o_candidate : candidate; o_verdict : verdict; o_detail : string }

type t = {
  outcomes : outcome list;  (** in {!Fix.compare} order of the fixes *)
  proven : int;
  ineffective : int;
  harmful : int;
  replays : int;  (** trace interpretations performed (injection + normalization) *)
}

val edits_of_fix : Fix.t -> Pmtrace.Replay.edit list
(** The concrete trace edits a fix stands for at its anchor instance. An
    inserted flush gets a fence right behind it: under the buffered
    persistency model a flush only reaches durability at a fence, so the
    flush alone would leave the window exactly as dangling as before. *)

val expand_fix : Fix.t -> Pmtrace.Event.t list -> Pmtrace.Replay.edit list
(** A fix names a code site, not a dynamic instruction: [expand_fix fix
    events] is the fix's edits applied at every dynamic instance of its
    anchor site (every event sharing the anchor's capture) — what the
    verifier rewrites, mirroring a source-level repair. Two refinements
    over {!edits_of_fix} at each instance: an inserted flush targets the
    cache line *that instance's* store dirtied (the same source line
    touches different lines per activation), and its paired fence is
    elided when a recorded fence already follows the instance — the later
    fence drains the inserted flush, while a synthesized one would split
    the persist epoch and break the program's own atomicity batching. *)

(** {2 Shared recheck machinery}

    The helpers below are the building blocks {!verify} is made of,
    exported so the optimizer ({!Opt}) judges its transformation plans
    with the very same differential checks. *)

module Keys : Set.S with type elt = string

val finding_key : string -> Pmtrace.Callstack.capture option -> int -> string
(** Finding identity across a rewrite: kind + code path (stacks survive
    rewriting; anchors and detail strings embed indices that shift). *)

val attributable : string -> bool
(** Whether a finding key names a program site: a stackless key
    ("kind@#pseq") anchors at a synthesized event — the detector
    re-describing the inserted instruction, not a new defect. *)

val static_keys : correctness_only:bool -> Static.t -> Keys.t
val lint_keys : ?only:Lint.kind -> Lint.t -> Keys.t

val inject :
  ?policy:Pmem.Device.crash_policy ->
  points:(Pmtrace.Event.t list -> (int * int * Pmtrace.Callstack.capture) list) ->
  oracle:(Pmem.Image.t -> (string * string) option) ->
  Pmtrace.Replay.t ->
  Keys.t * Pmem.Image.t
(** Replay-based fault injection over every failure point of the given
    recording: classify the crash image of each point under [policy]
    ([Program_prefix] by default; the optimizer also runs the conservative
    [Adr] view, under which only fenced data survives a crash — the view
    that makes deleted or deferred persist instructions observable).
    Returns the oracle-bug key set and the final fully-drained image. *)

val is_delete : Fix.t -> bool
(** Whether the fix promises behaviour preservation (deletions and every
    transformation action), holding it to the final-image-equality
    standard. *)

val verify :
  ?invariants:Invariants.t ->
  support:int ->
  confidence:float ->
  eadr:bool ->
  oracle:(Pmem.Image.t -> (string * string) option) ->
  points:(Pmtrace.Event.t list -> (int * int * Pmtrace.Callstack.capture) list) ->
  noload:Pmtrace.Replay.t ->
  loaded:Pmtrace.Replay.t ->
  candidate list ->
  t
(** [verify ~oracle ~points ~noload ~loaded candidates] — [oracle]
    classifies a crash image (Some (kind, detail) = bug); [points]
    enumerates a trace's failure points as [(ordinal, pseq, capture)]
    triples; [noload]/[loaded] are replay recordings of the same
    deterministic workload without/with load tracing. Candidates are
    deduplicated by edit identity ({!Fix.key}) and judged in
    {!Fix.compare} order; [invariants] (normally the baseline static
    analysis's) are reused for every recheck rather than re-mined, and
    mined once from the given pair when absent. *)

val pp_outcome : outcome Fmt.t
val pp : t Fmt.t

val outcome_to_json : outcome -> Telemetry.Json.t
val to_json : t -> Telemetry.Json.t
(** Ledger encodings: the verdict tally plus every outcome. *)
