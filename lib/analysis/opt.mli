(** From lint to optimizer: cost-model-driven synthesis of persist
    transformations over a recorded trace, each candidate plan verified by
    replay at {e all} failure points of the rewritten trace — under both
    the graceful ([Program_prefix]) and the conservative [Adr] crash views
    — before it may ship in a patch bundle.

    Verification costs replays (trace interpretation), never target
    re-executions; the whole phase runs off the engine's one shared
    recording. *)

type plan = {
  p_rule : string;
      (** the synthesis rule: batch_fences, coalesce_flushes, move_flush,
          convert_to_nt or convert_to_clwb *)
  p_fix : Fix.t;  (** site-anchored transformation, for reports and dedup *)
  p_instances : int;  (** dynamic instances rewritten *)
  p_edits : Pmtrace.Replay.edit list;
      (** concrete edits in baseline persistency coordinates; synthesis
          chooses the exact participating instances, verification applies
          these as-is *)
  p_projected_cycles : int;
  p_projected_events : int;
  p_absint_safe : bool;  (** anchor site carries an absint safety proof *)
}

type bundle = {
  b_plan : plan;
  b_verdict : Verify_fix.verdict;
  b_detail : string;
  b_measured_cycles : int;  (** baseline minus rewritten modelled cost, replay-measured *)
  b_measured_events : int;
}

type t = {
  weights : Cost.weights;
  baseline_events : int;
  baseline_cycles : int;
  synthesized : int;
  verified : int;  (** the top [max_plans] by projection *)
  bundles : bundle list;  (** proven first, best measured savings first *)
  proven : int;
  ineffective : int;
  harmful : int;  (** reported for provenance, never suggested *)
  replays : int;
}

val shipped : t -> bundle list
(** The patch bundle proper: the proven plans, in rank order. *)

val synthesize : ?absint:Absint.t -> weights:Cost.weights -> Pmtrace.Event.t list -> plan list
(** Walk the persistency-indexed trace and propose ranked transformation
    plans (best projected savings first, deduplicated by {!Fix.key}).
    Sites flagged by [absint] are never optimized; its safety proofs break
    projection ties. *)

val optimize :
  ?invariants:Invariants.t ->
  ?absint:Absint.t ->
  ?max_plans:int ->
  weights:Cost.weights ->
  support:int ->
  confidence:float ->
  eadr:bool ->
  oracle:(Pmem.Image.t -> (string * string) option) ->
  points:(Pmtrace.Event.t list -> (int * int * Pmtrace.Callstack.capture) list) ->
  Pmtrace.Replay.t ->
  t
(** [optimize ~weights ~oracle ~points noload] — synthesize, then verify
    the top [max_plans] (default 12) candidates against the load-free
    recording: rewrite, normalize, re-run the static and lint detectors,
    and fault-inject every failure point of the rewritten trace under both
    crash views; any fresh attributable finding, or a changed final image,
    is Harmful. [invariants] (normally the baseline static phase's) are
    reused rather than re-mined. *)

val pp_bundle : bundle Fmt.t
val pp : t Fmt.t

val plan_to_json : plan -> Telemetry.Json.t
val bundle_to_json : bundle -> Telemetry.Json.t
val to_json : t -> Telemetry.Json.t
(** Ledger encodings. *)
