(** From lint to optimizer: synthesize persist-transformation plans over the
    recorded trace, price them with the {!Cost} model, and verify every
    candidate by replay before anything is suggested to the user.

    Synthesis walks the persistency-indexed trace (epochs delimited by
    fences, exactly as the lint detectors see it) and proposes instances of
    the transformation vocabulary {!Fix.action} grew in this phase:
    batching adjacent fences, coalescing a line's redundant captures onto
    one survivor, hoisting a looped flush past the line's last store,
    converting a flush-the-whole-buffer store to non-temporal, and
    downgrading clflush to clwb. The abstract interpreter's verdicts gate
    synthesis both ways: sites it flagged are never optimized (repair
    before tuning), and its safety proofs are carried on each plan as a
    ranking signal.

    Every plan is then judged like a fix deletion ({!Verify_fix}), but
    stricter: the rewritten trace is re-checked at {e all} of its failure
    points under the graceful ([Program_prefix]) crash view {e and} under
    the conservative [Adr] view — the view in which a deleted or deferred
    persist instruction is actually observable, since only fenced data
    survives — plus the structural detectors, the stranded-window lint and
    final-image equality. Only plans that survive all of it and actually
    shrink the trace's modelled cost are Proven; those form the ranked
    patch bundle. Verification costs replays, never target
    re-executions. *)

type plan = {
  p_rule : string;
      (** which synthesis rule proposed it: batch_fences, coalesce_flushes,
          move_flush, convert_to_nt, convert_to_clwb *)
  p_fix : Fix.t;  (** the site-anchored transformation, for reports and dedup *)
  p_instances : int;  (** dynamic instances the plan rewrites *)
  p_edits : Pmtrace.Replay.edit list;
      (** the concrete trace edits, in baseline persistency coordinates —
          synthesis decides exactly which instances participate, so
          verification applies these as-is instead of re-expanding the
          fix's anchor site *)
  p_projected_cycles : int;  (** cost-model projection of cycles saved *)
  p_projected_events : int;  (** trace events the rewrite removes *)
  p_absint_safe : bool;
      (** the anchor site carries an abstract-interpretation safety proof *)
}

type bundle = {
  b_plan : plan;
  b_verdict : Verify_fix.verdict;
  b_detail : string;
  b_measured_cycles : int;  (** replay-measured: baseline minus rewritten modelled cost *)
  b_measured_events : int;  (** replay-measured persistency events removed *)
}

type t = {
  weights : Cost.weights;
  baseline_events : int;  (** persistency events in the recording *)
  baseline_cycles : int;  (** modelled cost of the unmodified trace *)
  synthesized : int;  (** plans proposed by the synthesis rules *)
  verified : int;  (** plans replay-verified (the top [max_plans] by projection) *)
  bundles : bundle list;
      (** every verified plan, proven first, best measured savings first *)
  proven : int;
  ineffective : int;
  harmful : int;  (** judged harmful — reported for provenance, never suggested *)
  replays : int;
}

let shipped t =
  List.filter (fun b -> b.b_verdict = Verify_fix.Proven) t.bundles

(* ------------------------------------------------------------------ *)
(* Trace indexing                                                      *)
(* ------------------------------------------------------------------ *)

(* A persistency instruction with its index and epoch: the coordinate
   system of the synthesis rules. A fence carries the epoch it
   terminates. *)
type inst = {
  i_pseq : int;
  i_op : Pmem.Op.t;
  i_stack : Pmtrace.Callstack.capture option;
  i_epoch : int;
}

let index events =
  let pseq = ref 0 and epoch = ref 0 in
  List.rev
    (List.fold_left
       (fun acc (e : Pmtrace.Event.t) ->
         match e.Pmtrace.Event.op with
         | Pmem.Op.Load _ -> acc
         | op ->
             incr pseq;
             let i =
               { i_pseq = !pseq; i_op = op; i_stack = e.Pmtrace.Event.stack; i_epoch = !epoch }
             in
             (match op with Pmem.Op.Fence _ -> incr epoch | _ -> ());
             i :: acc)
       [] events)

let site i = Option.map Pmtrace.Callstack.capture_to_string i.i_stack

(* Ordered grouping: one bucket per key, keys in first-appearance order,
   items in input order — synthesis must not depend on hashtable
   iteration. *)
let group_by key items =
  let tbl = Hashtbl.create 16 and order = ref [] in
  List.iter
    (fun it ->
      let k = key it in
      match Hashtbl.find_opt tbl k with
      | None ->
          Hashtbl.replace tbl k [ it ];
          order := k :: !order
      | Some l -> Hashtbl.replace tbl k (it :: l))
    items;
  List.rev_map (fun k -> (k, List.rev (Hashtbl.find tbl k))) !order |> List.rev

let deferred = function Pmem.Op.Clwb | Pmem.Op.Clflushopt -> true | Pmem.Op.Clflush -> false

(* ------------------------------------------------------------------ *)
(* Synthesis rules                                                     *)
(* ------------------------------------------------------------------ *)

(* Rule: batch adjacent fences. Two consecutive fences whose sites share a
   frame path are one batching opportunity: delete the first, its drains
   defer to the second. Precise per instance — only a fence instance whose
   immediate successor fence shares its path is deleted, so the site's
   other activations (including a trace-final fence) are untouched. *)
let rule_batch_fences ~flagged ~safe ~weights insts =
  let fences =
    List.filter (fun i -> match i.i_op with Pmem.Op.Fence _ -> true | _ -> false) insts
  in
  let rec pairs = function a :: (b :: _ as rest) -> (a, b) :: pairs rest | _ -> [] in
  let qualifying =
    List.filter
      (fun (f1, f2) ->
        match (f1.i_stack, f2.i_stack) with
        | Some c1, Some c2 ->
            c1.Pmtrace.Callstack.path = c2.Pmtrace.Callstack.path
            && (not (Pmtrace.Callstack.capture_equal c1 c2))
            && not (flagged c1)
        | _ -> false)
      (pairs fences)
  in
  group_by (fun (f1, _) -> Option.get (site f1)) qualifying
  |> List.map (fun (_, group) ->
         let f1, f2 = List.hd group in
         let deleted = List.map fst group in
         let n = List.length deleted in
         {
           p_rule = "batch_fences";
           p_fix =
             {
               Fix.action = Fix.Batch_fences { with_pseq = f2.i_pseq };
               seq = f1.i_pseq;
               stack = f1.i_stack;
               rationale =
                 Printf.sprintf
                   "%d fence(s) at this site are each immediately followed by another fence in \
                    the same frame; defer their drains to the following fence"
                   n;
             };
           p_instances = n;
           p_edits =
             List.map (fun f -> Pmtrace.Replay.Delete_fence_at { pseq = f.i_pseq }) deleted;
           p_projected_cycles =
             List.fold_left (fun a f -> a + Cost.op_cycles weights f.i_op) 0 deleted;
           p_projected_events = n;
           p_absint_safe = (match f1.i_stack with Some c -> safe c | None -> false);
         })

(* Dirty, deferred, in-pool flushes with a recorded site, grouped by
   (epoch, line): the raw material of the coalesce and move rules. A
   deferred flush only reaches the medium at the epoch's fence, so within
   an epoch the line's last capture is the one that drains — deleting the
   earlier captures is invisible even under the ADR crash view. *)
let coalescable_groups insts =
  List.filter_map
    (fun i ->
      match i.i_op with
      | Pmem.Op.Flush { kind; line; dirty = true; volatile = false }
        when deferred kind && i.i_stack <> None ->
          Some (i, line)
      | _ -> None)
    insts
  |> group_by (fun (i, line) -> Printf.sprintf "%d.%d" i.i_epoch line)

(* Rule: coalesce a line's captures across sites. When several sites flush
   the same (re-dirtied) line within one epoch, only the last capture
   survives the drain: delete the cross-site earlier ones, naming the
   survivor. Same-site repetitions are the move rule's business. *)
let rule_coalesce ~flagged ~safe ~weights groups =
  let redundant =
    List.concat_map
      (fun (_, g) ->
        if List.length g < 2 then []
        else
          let surv = fst (List.nth g (List.length g - 1)) in
          let ssite = site surv in
          List.filter_map
            (fun ((i, _line) as it) ->
              if i.i_pseq = surv.i_pseq || site i = ssite then None
              else
                match i.i_stack with
                | Some c when not (flagged c) -> Some (it, surv)
                | _ -> None)
            g)
      groups
  in
  group_by (fun ((i, _), _) -> Option.get (site i)) redundant
  |> List.map (fun (_, group) ->
         let (i0, line0), surv0 = List.hd group in
         let n = List.length group in
         {
           p_rule = "coalesce_flushes";
           p_fix =
             {
               Fix.action = Fix.Coalesce_flushes { line = line0; survivor_pseq = surv0.i_pseq };
               seq = i0.i_pseq;
               stack = i0.i_stack;
               rationale =
                 Printf.sprintf
                   "%d capture(s) at this site are overwritten before the epoch fence by a later \
                    flush of the same line; keep only the surviving capture"
                   n;
             };
           p_instances = n;
           p_edits =
             List.map
               (fun ((i, _), _) -> Pmtrace.Replay.Delete_flush_at { pseq = i.i_pseq })
               group;
           p_projected_cycles =
             List.fold_left (fun a ((i, _), _) -> a + Cost.op_cycles weights i.i_op) 0 group;
           p_projected_events = n;
           p_absint_safe = (match i0.i_stack with Some c -> safe c | None -> false);
         })

(* Rule: hoist a looped flush. One site flushing the same line repeatedly
   within an epoch (flush-per-iteration) needs exactly one capture — the
   final one. Delete the earlier instances; when stores to the line follow
   the surviving instance, move it past the last of them so the single
   capture is the complete one. *)
let rule_move ~flagged ~safe ~weights groups insts =
  let stores =
    List.filter (fun i -> match i.i_op with Pmem.Op.Store _ -> true | _ -> false) insts
  in
  let per_site =
    List.concat_map
      (fun (_, g) ->
        group_by (fun (i, _) -> Option.get (site i)) g
        |> List.filter_map (fun (_, sub) ->
               if List.length sub < 2 then None
               else
                 let i0, line = List.hd sub in
                 match i0.i_stack with
                 | Some c when not (flagged c) ->
                     let last = fst (List.nth sub (List.length sub - 1)) in
                     let earlier =
                       List.filter (fun (i, _) -> i.i_pseq <> last.i_pseq) sub |> List.map fst
                     in
                     let last_store_after =
                       List.fold_left
                         (fun acc s ->
                           match s.i_op with
                           | Pmem.Op.Store { addr; size; _ }
                             when s.i_epoch = last.i_epoch && s.i_pseq > last.i_pseq
                                  && List.mem line (Pmem.Addr.lines_spanned ~addr ~size) ->
                               max acc s.i_pseq
                           | _ -> acc)
                         0 stores
                     in
                     Some (i0, line, last, earlier, last_store_after)
                 | _ -> None))
      groups
  in
  group_by (fun (i0, _, _, _, _) -> Option.get (site i0)) per_site
  |> List.map (fun (_, group) ->
         let i0, line0, last0, _, dest0 = List.hd group in
         let deleted = List.concat_map (fun (_, _, _, earlier, _) -> earlier) group in
         let n = List.length deleted in
         let edits =
           List.concat_map
             (fun (_, _, last, earlier, dest) ->
               List.map (fun i -> Pmtrace.Replay.Delete_flush_at { pseq = i.i_pseq }) earlier
               @
               if dest > last.i_pseq then
                 [ Pmtrace.Replay.Move_flush_to { pseq = last.i_pseq; to_pseq = dest } ]
               else [])
             group
         in
         {
           p_rule = "move_flush";
           p_fix =
             {
               Fix.action =
                 Fix.Move_flush
                   { line = line0; to_pseq = (if dest0 > last0.i_pseq then dest0 else last0.i_pseq) };
               seq = i0.i_pseq;
               stack = i0.i_stack;
               rationale =
                 Printf.sprintf
                   "this site re-flushes the same line %d time(s) per epoch; one capture after \
                    the line's last store suffices"
                   (n + List.length group);
             };
           p_instances = n;
           p_edits = edits;
           p_projected_cycles =
             List.fold_left (fun a i -> a + Cost.op_cycles weights i.i_op) 0 deleted;
           p_projected_events = n;
           p_absint_safe = (match i0.i_stack with Some c -> safe c | None -> false);
         })

(* Rule: convert a flush-everything store to non-temporal. A store that is
   the sole writer of every line it spans within its epoch, with each of
   those lines captured afterwards by deferred flushes and the epoch closed
   by a fence, is the flush-the-whole-buffer idiom: a non-temporal store
   reaches the same persistence point at the same fence with no flush
   traffic at all. All dynamic instances of the site must qualify — the
   conversion models a source-level change. *)
let rule_convert_nt ~flagged ~safe ~weights insts =
  let epochs_with_fence = Hashtbl.create 16 in
  List.iter
    (fun i ->
      match i.i_op with
      | Pmem.Op.Fence _ -> Hashtbl.replace epochs_with_fence i.i_epoch ()
      | _ -> ())
    insts;
  let stores =
    List.filter (fun i -> match i.i_op with Pmem.Op.Store _ -> true | _ -> false) insts
  in
  let flushes =
    List.filter (fun i -> match i.i_op with Pmem.Op.Flush _ -> true | _ -> false) insts
  in
  let stores_by_epoch = group_by (fun i -> i.i_epoch) stores in
  let flushes_by_epoch = group_by (fun i -> i.i_epoch) flushes in
  let in_epoch tbl e = match List.assoc_opt e tbl with Some l -> l | None -> [] in
  (* Some (instance, deletable flushes) when the instance qualifies. *)
  let qualify s =
    match s.i_op with
    | Pmem.Op.Store { addr; size; nt = false }
      when s.i_stack <> None
           && (match s.i_stack with Some c -> not (flagged c) | None -> false)
           && Hashtbl.mem epochs_with_fence s.i_epoch ->
        let ls = Pmem.Addr.lines_spanned ~addr ~size in
        let ls_set = Hashtbl.create (List.length ls) in
        List.iter (fun l -> Hashtbl.replace ls_set l ()) ls;
        let sole =
          List.for_all
            (fun s' ->
              s'.i_pseq = s.i_pseq
              ||
              match s'.i_op with
              | Pmem.Op.Store { addr = a'; size = z'; _ } ->
                  not
                    (List.exists (Hashtbl.mem ls_set) (Pmem.Addr.lines_spanned ~addr:a' ~size:z'))
              | _ -> true)
            (in_epoch stores_by_epoch s.i_epoch)
        in
        if not sole then None
        else
          let after =
            List.filter
              (fun f ->
                f.i_pseq > s.i_pseq
                &&
                match f.i_op with
                | Pmem.Op.Flush { line; volatile = false; _ } -> Hashtbl.mem ls_set line
                | _ -> false)
              (in_epoch flushes_by_epoch s.i_epoch)
          in
          let all_deferred =
            List.for_all
              (fun f ->
                match f.i_op with Pmem.Op.Flush { kind; _ } -> deferred kind | _ -> true)
              after
          in
          let covered = Hashtbl.create (List.length ls) in
          List.iter
            (fun f ->
              match f.i_op with
              | Pmem.Op.Flush { line; _ } -> Hashtbl.replace covered line ()
              | _ -> ())
            after;
          if all_deferred && List.for_all (Hashtbl.mem covered) ls then Some (s, after)
          else None
    | _ -> None
  in
  let with_site =
    List.filter (fun s ->
        match s.i_op with Pmem.Op.Store { nt = false; _ } -> s.i_stack <> None | _ -> false)
      stores
  in
  group_by (fun s -> Option.get (site s)) with_site
  |> List.filter_map (fun (_, instances) ->
         let qualified = List.map qualify instances in
         if List.exists Option.is_none qualified then None
         else
           let qualified = List.filter_map Fun.id qualified in
           let s0, fl0 = List.hd qualified in
           match fl0 with
           | [] -> None
           | first_flush :: _ ->
               let n = List.length qualified in
               let deleted = List.concat_map snd qualified in
               let cycles =
                 List.fold_left (fun a f -> a + Cost.op_cycles weights f.i_op) 0 deleted
                 - (n * (weights.Cost.w_nt_store - weights.Cost.w_store))
               in
               if cycles <= 0 then None
               else
                 let line0 =
                   match s0.i_op with
                   | Pmem.Op.Store { addr; _ } -> Pmem.Addr.line_of addr
                   | _ -> 0
                 in
                 Some
                   {
                     p_rule = "convert_to_nt";
                     p_fix =
                       {
                         Fix.action =
                           Fix.Convert_to_nt { line = line0; flush_pseq = first_flush.i_pseq };
                         seq = s0.i_pseq;
                         stack = s0.i_stack;
                         rationale =
                           Printf.sprintf
                             "sole writer of every line it spans, all %d line capture(s) flushed \
                              afterwards and drained by the epoch fence: a non-temporal store \
                              persists at the same fence with no flush traffic"
                             (List.length deleted);
                       };
                     p_instances = n;
                     p_edits =
                       List.concat_map
                         (fun (s, fl) ->
                           Pmtrace.Replay.Set_store_nt { pseq = s.i_pseq }
                           :: List.map
                                (fun f -> Pmtrace.Replay.Delete_flush_at { pseq = f.i_pseq })
                                fl)
                         qualified;
                     p_projected_cycles = cycles;
                     p_projected_events = List.length deleted;
                     p_absint_safe = (match s0.i_stack with Some c -> safe c | None -> false);
                   })

(* Rule: downgrade clflush to clwb. An invalidating flush whose epoch is
   closed by a fence reaches the same persistence point as the cheaper,
   cache-preserving clwb; the instruction swap removes no event, only
   cycles. Every instance of the site must sit in a fenced epoch. *)
let rule_convert_clwb ~flagged ~safe ~weights insts =
  let epochs_with_fence = Hashtbl.create 16 in
  List.iter
    (fun i ->
      match i.i_op with
      | Pmem.Op.Fence _ -> Hashtbl.replace epochs_with_fence i.i_epoch ()
      | _ -> ())
    insts;
  let clflushes =
    List.filter
      (fun i ->
        match i.i_op with
        | Pmem.Op.Flush { kind = Pmem.Op.Clflush; volatile = false; _ } -> i.i_stack <> None
        | _ -> false)
      insts
  in
  group_by (fun i -> Option.get (site i)) clflushes
  |> List.filter_map (fun (_, instances) ->
         let i0 = List.hd instances in
         let ok =
           (match i0.i_stack with Some c -> not (flagged c) | None -> false)
           && List.for_all (fun i -> Hashtbl.mem epochs_with_fence i.i_epoch) instances
         in
         if not ok then None
         else
           let n = List.length instances in
           let line0 =
             match i0.i_op with Pmem.Op.Flush { line; _ } -> line | _ -> 0
           in
           let cycles = n * (weights.Cost.w_clflush - weights.Cost.w_clwb) in
           if cycles <= 0 then None
           else
             Some
               {
                 p_rule = "convert_to_clwb";
                 p_fix =
                   {
                     Fix.action = Fix.Convert_to_clwb { line = line0 };
                     seq = i0.i_pseq;
                     stack = i0.i_stack;
                     rationale =
                       Printf.sprintf
                         "%d invalidating flush(es) in fenced epochs: clwb reaches the same \
                          persistence point at the fence while keeping the line cached"
                         n;
                   };
                 p_instances = n;
                 p_edits =
                   List.map
                     (fun i ->
                       Pmtrace.Replay.Set_flush_kind { pseq = i.i_pseq; kind = Pmem.Op.Clwb })
                     instances;
                 p_projected_cycles = cycles;
                 p_projected_events = 0;
                 p_absint_safe = (match i0.i_stack with Some c -> safe c | None -> false);
               })

let synthesize ?absint ~weights events =
  let insts = index events in
  let flagged =
    match absint with
    | None -> fun _ -> false
    | Some a ->
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun (f : Absint.finding) ->
            match f.Absint.f_site with
            | Some c -> Hashtbl.replace tbl (Pmtrace.Callstack.capture_to_string c) ()
            | None -> ())
          a.Absint.findings;
        fun c -> Hashtbl.mem tbl (Pmtrace.Callstack.capture_to_string c)
  in
  let safe =
    match absint with None -> fun _ -> false | Some a -> Absint.proven_safe_at a
  in
  let groups = coalescable_groups insts in
  let plans =
    rule_batch_fences ~flagged ~safe ~weights insts
    @ rule_coalesce ~flagged ~safe ~weights groups
    @ rule_move ~flagged ~safe ~weights groups insts
    @ rule_convert_nt ~flagged ~safe ~weights insts
    @ rule_convert_clwb ~flagged ~safe ~weights insts
  in
  let plans =
    List.filter (fun p -> p.p_projected_cycles > 0 || p.p_projected_events > 0) plans
  in
  (* one plan per distinct edit ({!Fix.key}), best projection first; the
     absint proof breaks projection ties so machine-checked sites verify
     (and therefore ship) ahead of unproven ones *)
  let plans =
    List.fold_left
      (fun (seen, acc) p ->
        let k = Fix.key p.p_fix in
        if List.mem k seen then (seen, acc) else (k :: seen, p :: acc))
      ([], [])
      (List.stable_sort
         (fun a b ->
           match compare b.p_projected_cycles a.p_projected_cycles with
           | 0 -> (
               match compare b.p_absint_safe a.p_absint_safe with
               | 0 -> Fix.compare a.p_fix b.p_fix
               | c -> c)
           | c -> c)
         plans)
    |> snd |> List.rev
  in
  plans

(* ------------------------------------------------------------------ *)
(* Verification                                                        *)
(* ------------------------------------------------------------------ *)

let persist_count events =
  List.fold_left
    (fun a (e : Pmtrace.Event.t) ->
      match e.Pmtrace.Event.op with Pmem.Op.Load _ -> a | _ -> a + 1)
    0 events

let optimize ?invariants ?absint ?(max_plans = 12) ~weights ~support ~confidence ~eadr
    ~(oracle : Pmem.Image.t -> (string * string) option)
    ~(points : Pmtrace.Event.t list -> (int * int * Pmtrace.Callstack.capture) list)
    (noload : Pmtrace.Replay.t) =
  Telemetry.Collector.span ~cat:"optimize" "optimize" @@ fun () ->
  let module VF = Verify_fix in
  let replays = ref 0 in
  let base_events = Pmtrace.Replay.events noload in
  let baseline_cycles = Cost.trace_cycles weights base_events in
  let baseline_events = persist_count base_events in
  let all_plans = synthesize ?absint ~weights base_events in
  let synthesized = List.length all_plans in
  let plans = List.filteri (fun i _ -> i < max_plans) all_plans in
  (* Baseline views, computed once. The static recheck runs over the
     load-free pair (the optimize phase never has a load-traced recording —
     it must not cost an execution), so the baseline uses the same pairing
     for the diff to be meaningful. *)
  let base_static =
    Static.analyze ?invariants ~support ~confidence ~eadr [ (base_events, base_events) ]
  in
  let invariants = base_static.Static.invariants in
  let base_lint = Lint.analyze ~eadr base_events in
  let base_prefix, base_image = VF.inject ~points ~oracle noload in
  let base_adr, _ = VF.inject ~policy:Pmem.Device.Adr ~points ~oracle noload in
  replays := 2;
  let base_structural = VF.static_keys ~correctness_only:true base_static in
  let base_missing = VF.lint_keys ~only:Lint.Missing_flush base_lint in
  let fresh got base =
    VF.Keys.elements (VF.Keys.diff got base) |> List.filter VF.attributable
  in
  let judge plan =
    match Pmtrace.Replay.rewrite noload plan.p_edits with
    | exception Failure msg ->
        {
          b_plan = plan;
          b_verdict = VF.Ineffective;
          b_detail = msg;
          b_measured_cycles = 0;
          b_measured_events = 0;
        }
    | rewritten ->
        let norm = Pmtrace.Replay.normalize rewritten in
        let re_static =
          Static.analyze ~invariants ~support ~confidence ~eadr [ (norm, norm) ]
        in
        let re_lint = Lint.analyze ~eadr norm in
        let re_prefix, re_image = VF.inject ~points ~oracle rewritten in
        let re_adr, _ = VF.inject ~policy:Pmem.Device.Adr ~points ~oracle rewritten in
        replays := !replays + 3;
        let measured_cycles = baseline_cycles - Cost.trace_cycles weights norm in
        let measured_events = baseline_events - persist_count norm in
        let verdict, detail =
          match
            ( fresh re_prefix base_prefix,
              fresh re_adr base_adr,
              fresh (VF.static_keys ~correctness_only:true re_static) base_structural,
              fresh (VF.lint_keys ~only:Lint.Missing_flush re_lint) base_missing )
          with
          | bug :: _, _, _, _ -> (VF.Harmful, "introduces an oracle bug: " ^ bug)
          | [], bug :: _, _, _ ->
              (VF.Harmful, "introduces an oracle bug under the ADR crash view: " ^ bug)
          | [], [], v :: _, _ -> (VF.Harmful, "introduces a structural violation: " ^ v)
          | [], [], [], v :: _ -> (VF.Harmful, "strands a store window: " ^ v)
          | [], [], [], [] ->
              if not (Pmem.Image.equal base_image re_image) then
                (VF.Harmful, "changes the final persisted image")
              else if measured_cycles > 0 || measured_events > 0 then
                ( VF.Proven,
                  Printf.sprintf
                    "replay-verified at every failure point under both crash views; saves %d \
                     event(s), %d modelled cycle(s)"
                    measured_events measured_cycles )
              else (VF.Ineffective, "rewrite saves nothing under the cost model")
        in
        {
          b_plan = plan;
          b_verdict = verdict;
          b_detail = detail;
          b_measured_cycles = measured_cycles;
          b_measured_events = measured_events;
        }
  in
  let bundles = List.map judge plans in
  let rank b =
    match b.b_verdict with VF.Proven -> 0 | VF.Ineffective -> 1 | VF.Harmful -> 2
  in
  let bundles =
    List.stable_sort
      (fun a b ->
        match compare (rank a) (rank b) with
        | 0 -> (
            match compare b.b_measured_cycles a.b_measured_cycles with
            | 0 -> Fix.compare a.b_plan.p_fix b.b_plan.p_fix
            | c -> c)
        | c -> c)
      bundles
  in
  let tally v = List.length (List.filter (fun b -> b.b_verdict = v) bundles) in
  let proven = tally VF.Proven
  and ineffective = tally VF.Ineffective
  and harmful = tally VF.Harmful in
  Telemetry.Collector.count "opt.plans" synthesized;
  Telemetry.Collector.count "opt.proven" proven;
  Telemetry.Collector.count "opt.harmful" harmful;
  {
    weights;
    baseline_events;
    baseline_cycles;
    synthesized;
    verified = List.length plans;
    bundles;
    proven;
    ineffective;
    harmful;
    replays = !replays;
  }

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

let pp_bundle ppf b =
  Fmt.pf ppf "[%s] %s %s: -%d event(s), -%d cycle(s) (projected -%d) — %s"
    (Verify_fix.verdict_to_string b.b_verdict)
    b.b_plan.p_rule
    (Fix.anchor_to_string b.b_plan.p_fix)
    b.b_measured_events b.b_measured_cycles b.b_plan.p_projected_cycles b.b_detail

let pp ppf t =
  Fmt.pf ppf
    "optimizer: %d plan(s) synthesized, %d verified: proven=%d ineffective=%d harmful=%d (%d \
     replay(s); baseline %d event(s) / %d cycle(s), %s weights)"
    t.synthesized t.verified t.proven t.ineffective t.harmful t.replays t.baseline_events
    t.baseline_cycles t.weights.Cost.w_source;
  List.iter (fun b -> Fmt.pf ppf "@.  %a" pp_bundle b) t.bundles

let plan_to_json p =
  let open Telemetry.Json in
  Assoc
    [
      ("rule", String p.p_rule);
      ("fix", String (Fix.to_string p.p_fix));
      ("key", String (Fix.key p.p_fix));
      ( "stack",
        match p.p_fix.Fix.stack with
        | None -> Null
        | Some c -> String (Pmtrace.Callstack.capture_to_string c) );
      ("seq", Int p.p_fix.Fix.seq);
      ("instances", Int p.p_instances);
      ("edits", List (List.map (fun e -> String (Pmtrace.Replay.edit_to_string e)) p.p_edits));
      ("projected_cycles", Int p.p_projected_cycles);
      ("projected_events", Int p.p_projected_events);
      ("absint_safe", Bool p.p_absint_safe);
    ]

let bundle_to_json b =
  let open Telemetry.Json in
  Assoc
    [
      ("plan", plan_to_json b.b_plan);
      ("verdict", String (Verify_fix.verdict_to_string b.b_verdict));
      ("detail", String b.b_detail);
      ("measured_cycles", Int b.b_measured_cycles);
      ("measured_events", Int b.b_measured_events);
    ]

(** Ledger encoding: cost model, baseline, tallies and every verified
    bundle in rank order. *)
let to_json t =
  let open Telemetry.Json in
  Assoc
    [
      ("weights", Cost.to_json t.weights);
      ("baseline_events", Int t.baseline_events);
      ("baseline_cycles", Int t.baseline_cycles);
      ("synthesized", Int t.synthesized);
      ("verified", Int t.verified);
      ("proven", Int t.proven);
      ("ineffective", Int t.ineffective);
      ("harmful", Int t.harmful);
      ("replays", Int t.replays);
      ("bundles", List (List.map bundle_to_json t.bundles));
    ]
