(** Epoch-based persistency anti-pattern detectors: one pass over a
    load-free recorded trace flags persistency instructions that do no
    useful work — and fences that arrive with work left undone — each with
    a frame + ordinal location, a concrete {!Fix.t}, and an estimated
    cycles/events saving.

    The trace must carry device-accurate metadata (flush [dirty] bits,
    fence pending counts): recorded traces do by construction; rewritten
    traces must be re-normalized ({!Pmtrace.Replay.normalize}) first. *)

type kind =
  | Duplicate_flush
      (** the line is flushed again, dirty, in the same persist epoch: the
          first capture is overwritten before any fence drains it *)
  | Unnecessary_flush  (** the line holds nothing unpersisted *)
  | Nt_flush_misuse
      (** clean flush of a line whose stores this epoch were non-temporal *)
  | Redundant_fence  (** nothing pending to drain, nothing stored to order *)
  | Missing_flush
      (** a fence is reached with a line dirtied this epoch that is never
          flushed afterwards, though the program flushes that line
          elsewhere: the persist was probably intended here *)

val kind_to_string : kind -> string

(** One finding per code site: the same static instruction misbehaving in
    every epoch aggregates into a single finding whose savings sum over its
    dynamic instances — the granularity of the source-level fix it
    suggests. Anchors ([l_pseq], [l_line]) are those of the first dynamic
    instance. Missing-flush findings anchor at the store that dirtied the
    line (not the fence that exposed it): that identity survives trace
    rewrites. *)
type finding = {
  l_kind : kind;
  l_pseq : int;  (** persistency-index anchor of the first dynamic instance *)
  l_stack : Pmtrace.Callstack.capture option;
  l_line : int;  (** cache line of the first instance; 0 for fence findings *)
  l_detail : string;
  l_fix : Fix.t option;
  l_cycles : int;  (** estimated cycles saved, summed over dynamic instances *)
  l_events : int;  (** trace events removed by the fix, summed over instances *)
}

type t = {
  findings : finding list;
      (** one per code site, sorted by (pseq, kind, line) of the first
          dynamic instance *)
  events : int;
  epochs : int;
  flushes : int;
  fences : int;
  redundant_flushes : int;  (** dynamic instances, not sites *)
  redundant_fences : int;
  missing_flush_spots : int;
  cycles_saved : int;
  events_saved : int;
}

val analyze : ?eadr:bool -> Pmtrace.Event.t list -> t
(** Under [eadr] the missing-flush detector is suppressed (globally visible
    stores are durable without flushes); the redundancy detectors still
    apply — flushes are pure overhead there. *)

val pp_finding : finding Fmt.t
val pp : t Fmt.t

val finding_to_json : finding -> Telemetry.Json.t
val to_json : t -> Telemetry.Json.t
(** Ledger encodings: tallies plus every finding site. *)
