(** Path-sensitive persistency abstract interpreter over the merged
    multi-trace automaton ({!Cfg}).

    Each cache line is tracked through the persistency lattice of the
    paper's flush/fence dataflow analyses —

    {v bot < clean < dirty < flushed-pending < persisted v}

    — refined internally into a powerset of line facts so that joins at
    merge points keep every possibility instead of collapsing to top. The
    refinement additionally splits [dirty] and [flushed-pending] by
    {e epoch}: a line dirtied since the most recent flush/fence boundary
    ([Dirty_epoch]) is distinguishable from one left dirty across a
    boundary ([Dirty_stale]). That split is what the failure-point proof
    needs: at a failure point the current epoch's in-flight stores are
    always part of the crash image (crash images are program-prefix cuts),
    so only {e stale} dirty or pending lines can make the cut at this point
    differ from a graceful shutdown.

    Transfer functions mirror {!Pmem.Device}: stores dirty the spanned
    lines (non-temporal stores enqueue them for the next fence instead),
    [clflush] persists its line immediately, [clflushopt]/[clwb] move dirty
    lines to flushed-pending, any fence — including the implicit fence of
    an RMW — promotes pending lines to persisted, and every flush/fence
    closes the current store epoch.

    The fixpoint is used two ways:
    - {e findings}: lines still dirty/pending at automaton exit, and stores
      that overtake an un-fenced flush, each reported with a concrete
      merged-path witness;
    - {e proofs}: a site is proven safe when on {e every} merged path into
      it all lines dirtied before the current epoch are persisted —
      {!Prune} uses this as the necessary condition for skipping the
      failure point. *)

module Lattice = struct
  (** The chain the analysis abstracts per cache line. *)
  type elem = Bot | Clean | Dirty | Flushed_pending | Persisted

  let rank = function
    | Bot -> 0
    | Clean -> 1
    | Dirty -> 2
    | Flushed_pending -> 3
    | Persisted -> 4

  let join a b = if rank a >= rank b then a else b
  let leq a b = rank a <= rank b

  let elem_to_string = function
    | Bot -> "bot"
    | Clean -> "clean"
    | Dirty -> "dirty"
    | Flushed_pending -> "flushed-pending"
    | Persisted -> "persisted"

  let all_elems = [ Bot; Clean; Dirty; Flushed_pending; Persisted ]

  (** Powerset refinement: a mask collects the chain facts that hold on
      {e some} merged path, with dirty/pending split by store epoch. Join
      is bitwise-or — trivially associative, commutative, idempotent and
      monotone, which is what keeps the fixpoint canonical. *)
  type mask = int

  let bot = 0
  let clean = 1
  (* dirty_epoch: dirtied since the last flush/fence boundary;
     dirty_stale: left dirty across a boundary; pending_epoch: NT store
     buffered this epoch; pending_stale: flushed, fence outstanding. *)
  let dirty_epoch = 2
  let dirty_stale = 4
  let pending_epoch = 8
  let pending_stale = 16
  let persisted = 32
  let dirty_bits = dirty_epoch lor dirty_stale
  let pending_bits = pending_epoch lor pending_stale
  let mask_join : mask -> mask -> mask = ( lor )
  let mask_leq a b = a lor b = b
  let all_masks = List.init 64 Fun.id

  (** Summarize a mask back onto the chain (worst outstanding fact). *)
  let elem_of_mask m =
    if m = 0 then Bot
    else if m land dirty_bits <> 0 then Dirty
    else if m land pending_bits <> 0 then Flushed_pending
    else if m land persisted <> 0 then Persisted
    else Clean
end

open Lattice

(** Abstract value of one cache line: the fact mask plus deterministic
    witness sites (minimal node key) for the outstanding dirty/pending
    facts, used to anchor findings. *)
type value = { mask : mask; wit_dirty : string option; wit_pending : string option }

let omin a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (if String.compare a b <= 0 then a else b)

let value_join a b =
  {
    mask = mask_join a.mask b.mask;
    wit_dirty = omin a.wit_dirty b.wit_dirty;
    wit_pending = omin a.wit_pending b.wit_pending;
  }

let value_equal a b =
  a.mask = b.mask && a.wit_dirty = b.wit_dirty && a.wit_pending = b.wit_pending

module Lines = Map.Make (Int)

(** Abstract state: cache line -> value; absent lines are bottom. *)
type state = value Lines.t

let state_join = Lines.union (fun _ a b -> Some (value_join a b))
let state_equal = Lines.equal value_equal

(** Close the current store epoch: epoch-local facts become stale. Applied
    by every flush/fence, mirroring how a persistency instruction starts a
    new store epoch in the failure-point discipline. *)
let epoch_close st =
  Lines.map
    (fun v ->
      let m = v.mask in
      let m' =
        m
        land lnot (dirty_epoch lor pending_epoch)
        lor (if m land dirty_epoch <> 0 then dirty_stale else 0)
        lor if m land pending_epoch <> 0 then pending_stale else 0
      in
      { v with mask = m' })
    st

let find_line st line =
  match Lines.find_opt line st with
  | Some v -> v
  | None -> { mask = bot; wit_dirty = None; wit_pending = None }

(** Transfer of a single observed instruction instance at node [key]. *)
let apply ~key st (instr : Cfg.instr) =
  match instr with
  | Cfg.Store { lines; nt = false } ->
      (* Strong update: the store rewrites the line's content this epoch;
         any stale unpersisted bytes on the line are absorbed — flushing
         the line now persists them together with the new data. *)
      List.fold_left
        (fun st line ->
          Lines.add line { mask = dirty_epoch; wit_dirty = Some key; wit_pending = None } st)
        st lines
  | Cfg.Store { lines; nt = true } ->
      (* Non-temporal: bypasses the cache and queues for the next fence —
         flushed-pending in chain terms. Stale dirty facts survive (the NT
         store does not flush pre-existing cached data). *)
      List.fold_left
        (fun st line ->
          let v = find_line st line in
          let stale_dirty = v.mask land dirty_bits in
          let old_pending = if v.mask land pending_bits <> 0 then v.wit_pending else None in
          Lines.add line
            {
              mask = stale_dirty lor pending_epoch;
              wit_dirty = (if stale_dirty <> 0 then v.wit_dirty else None);
              wit_pending = omin old_pending (Some key);
            }
            st)
        st lines
  | Cfg.Flush { kind = Pmem.Op.Clflush; line } ->
      (* clflush is synchronous in the device model: line persisted now. *)
      Lines.add line { mask = persisted; wit_dirty = None; wit_pending = None } st
      |> epoch_close
  | Cfg.Flush { kind = Pmem.Op.Clflushopt | Pmem.Op.Clwb; line } ->
      let v = find_line st line in
      let outstanding = v.mask land (dirty_bits lor pending_bits) <> 0 in
      let kept = v.mask land (clean lor persisted) in
      let mask =
        if outstanding then kept lor pending_epoch
        else if kept <> 0 then kept
        else clean (* flush of an untouched line: content already durable *)
      in
      let old_pending = if v.mask land pending_bits <> 0 then v.wit_pending else None in
      let wit_pending = if outstanding then omin old_pending (Some key) else None in
      Lines.add line { mask; wit_dirty = None; wit_pending } st |> epoch_close
  | Cfg.Fence _ ->
      (* Any fence kind (sfence/mfence/RMW drain) retires pending flushes
         and NT stores; dirty-but-unflushed lines stay dirty. *)
      Lines.map
        (fun v ->
          let retired = if v.mask land pending_bits <> 0 then persisted else 0 in
          let mask = v.mask land lnot pending_bits lor retired in
          { v with mask; wit_pending = None })
        st
      |> epoch_close

(** Transfer of a node: join over every instruction instance the site
    observed across runs (a site observing several instances acts as a
    weak update — each possibility is kept). *)
let transfer (node : Cfg.node) st =
  match node.Cfg.instrs with
  | [] -> st
  | [ i ] -> apply ~key:node.Cfg.key st i
  | is ->
      List.fold_left
        (fun acc i -> state_join acc (apply ~key:node.Cfg.key st i))
        Lines.empty is

type kind = Missing_flush | Missing_fence | Ordering

let kind_to_string = function
  | Missing_flush -> "missing-flush"
  | Missing_fence -> "missing-fence"
  | Ordering -> "ordering"

let kind_rank = function Missing_flush -> 0 | Missing_fence -> 1 | Ordering -> 2

type finding = {
  f_kind : kind;
  f_line : int;  (** the cache line the fact is about *)
  f_site : Pmtrace.Callstack.capture option;  (** anchor: witness site *)
  f_pseq : int;  (** first persistency index of the anchor (ordering) *)
  f_detail : string;  (** includes the concrete merged-path witness *)
}

type t = {
  cfg : Cfg.t;
  ins : (string, state) Hashtbl.t;  (** fixpoint: abstract state on entry *)
  exit_state : state;  (** join over all run-exit predecessors' out *)
  findings : finding list;
  proven : (string, unit) Hashtbl.t;  (** sites safe on every merged path *)
  eadr : bool;
}

(** Abstract state on entry to each site's {e first} dynamic occurrence:
    the join, across the merged runs, of a linear abstract walk of each
    recording. Fault injection crashes a failure point at its first
    dynamic occurrence, so this — not the site-merged fixpoint, which
    joins {e every} occurrence of a repeated site and smears one
    mid-transaction occurrence over all of them — is the abstract state
    that corresponds to the crash image the oracle would judge. *)
let first_occurrence_states runs =
  let first : (string, state) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun events ->
      let seen = Hashtbl.create 256 in
      let st = ref Lines.empty in
      List.iter
        (fun (e : Pmtrace.Event.t) ->
          match Cfg.instr_of_op e.Pmtrace.Event.op with
          | None -> ()
          | Some instr ->
              let key =
                match e.Pmtrace.Event.stack with
                | Some c -> Pmtrace.Callstack.capture_to_string c
                | None -> "?"
              in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.replace seen key ();
                let joined =
                  match Hashtbl.find_opt first key with
                  | None -> !st
                  | Some prev -> state_join prev !st
                in
                Hashtbl.replace first key joined
              end;
              st := apply ~key !st instr)
        events)
    runs;
  first

(** Worklist fixpoint. States only grow (join is monotone on a finite
    lattice per line), so this terminates; nodes are processed in
    deterministic (first_pseq, key) order for reproducible witnesses. *)
let fixpoint (cfg : Cfg.t) =
  let ins : (string, state) Hashtbl.t = Hashtbl.create 256 in
  let in_of key = Option.value (Hashtbl.find_opt ins key) ~default:Lines.empty in
  let queued = Hashtbl.create 256 in
  let queue = Queue.create () in
  let enqueue key =
    if not (Hashtbl.mem queued key) then begin
      Hashtbl.replace queued key ();
      Queue.add key queue
    end
  in
  List.iter
    (fun key ->
      if not (Hashtbl.mem ins key) then Hashtbl.replace ins key Lines.empty;
      enqueue key)
    cfg.Cfg.entry_succs;
  while not (Queue.is_empty queue) do
    let key = Queue.pop queue in
    Hashtbl.remove queued key;
    match Cfg.find_opt cfg key with
    | None -> ()
    | Some node ->
        let out = transfer node (in_of key) in
        List.iter
          (fun succ ->
            let cur = Hashtbl.find_opt ins succ in
            let joined =
              match cur with None -> out | Some st -> state_join st out
            in
            let changed =
              match cur with None -> true | Some st -> not (state_equal st joined)
            in
            if changed then begin
              Hashtbl.replace ins succ joined;
              enqueue succ
            end)
          node.Cfg.succs
  done;
  ins

let capture_of_key cfg key =
  Option.map (fun n -> n.Cfg.capture) (Cfg.find_opt cfg key)

let witness_clause cfg key =
  let tail = Cfg.witness_tail cfg key in
  if tail = "" then "" else Printf.sprintf " [path %s]" tail

(** [analyze ~eadr runs] merges the recordings, runs the fixpoint and
    derives findings and safety proofs. Under eADR the durability findings
    are suppressed (flushes and fences are not required for durability),
    but proofs are still computed — crash images are program-prefix cuts
    either way. *)
let analyze ~eadr runs =
  let cfg = Cfg.build runs in
  let ins = fixpoint cfg in
  let in_of key = Option.value (Hashtbl.find_opt ins key) ~default:Lines.empty in
  (* Exit state: join of every run-terminating node's transfer output. *)
  let exit_state =
    List.fold_left
      (fun acc key ->
        match Cfg.find_opt cfg key with
        | None -> acc
        | Some node -> state_join acc (transfer node (in_of key)))
      Lines.empty cfg.Cfg.exit_preds
  in
  (* Safety proofs: a site is safe when, at its first dynamic occurrence
     in every merged run, no line carries a stale (pre-epoch) dirty or
     pending fact — the crash image there then only differs from a
     graceful shutdown by the current epoch's stores, which are part of
     any program-prefix cut. First-occurrence states (not the site-merged
     fixpoint) are what injection corresponds to: the loop crashes a
     failure point at its first occurrence. *)
  let first = first_occurrence_states runs in
  let proven = Hashtbl.create 128 in
  List.iter
    (fun (node : Cfg.node) ->
      match Hashtbl.find_opt first node.Cfg.key with
      | None -> ()
      | Some st ->
          let safe =
            Lines.for_all
              (fun _ v -> v.mask land (dirty_stale lor pending_stale) = 0)
              st
          in
          if safe then Hashtbl.replace proven node.Cfg.key ())
    (Cfg.sorted_nodes cfg);
  (* Findings. Deduplicated by (kind, anchor site): the report collapses
     same-site findings anyway, so keep the first (lowest line). *)
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let emit f_kind ~line ~site_key ~pseq detail =
    let dedup = kind_to_string f_kind ^ "@" ^ Option.value site_key ~default:"?" in
    if not (Hashtbl.mem seen dedup) then begin
      Hashtbl.replace seen dedup ();
      let f_site = Option.bind site_key (capture_of_key cfg) in
      acc := { f_kind; f_line = line; f_site; f_pseq = pseq; f_detail = detail } :: !acc
    end
  in
  let pseq_of_key key =
    match Option.bind key (Cfg.find_opt cfg) with
    | Some n -> n.Cfg.first_pseq
    | None -> max_int
  in
  (* Ordering: a store overtaking an un-fenced flush of the same line on
     some merged path. Detected from the fixpoint IN state of store
     nodes. *)
  List.iter
    (fun (node : Cfg.node) ->
      let st = in_of node.Cfg.key in
      List.iter
        (function
          | Cfg.Store { lines; _ } ->
              List.iter
                (fun line ->
                  let v = find_line st line in
                  if v.mask land pending_bits <> 0 then
                    emit Ordering ~line ~site_key:(Some node.Cfg.key)
                      ~pseq:node.Cfg.first_pseq
                      (Printf.sprintf
                         "store to cache line %d overtakes an un-fenced flush \
                          of the same line on a merged path%s"
                         line
                         (witness_clause cfg node.Cfg.key)))
                lines
          | Cfg.Flush _ | Cfg.Fence _ -> ())
        node.Cfg.instrs)
    (Cfg.sorted_nodes cfg);
  (* Durability at exit: lines that can reach the end of execution dirty
     (never flushed) or flushed-pending (never fenced) on a merged path. *)
  if not eadr then
    Lines.iter
      (fun line v ->
        (* Missing-flush requires persist intent: the line is flushed or
           persisted on some merged path yet can exit dirty on another.
           Lines never flushed anywhere are transient/scratch data — the
           trace analysis and static analyzer already classify those. *)
        if v.mask land dirty_bits <> 0 && v.mask land (pending_bits lor persisted) <> 0
        then
          emit Missing_flush ~line ~site_key:v.wit_dirty ~pseq:(pseq_of_key v.wit_dirty)
            (Printf.sprintf
               "cache line %d can reach the end of execution unflushed on a \
                merged path%s"
               line
               (match v.wit_dirty with
               | Some k -> witness_clause cfg k
               | None -> ""));
        if v.mask land pending_bits <> 0 then
          emit Missing_fence ~line ~site_key:v.wit_pending
            ~pseq:(pseq_of_key v.wit_pending)
            (Printf.sprintf
               "cache line %d is flushed but can reach the end of execution \
                without a fence on a merged path%s"
               line
               (match v.wit_pending with
               | Some k -> witness_clause cfg k
               | None -> "")))
      exit_state;
  let findings =
    List.sort
      (fun a b ->
        match compare a.f_pseq b.f_pseq with
        | 0 -> (
            match compare (kind_rank a.f_kind) (kind_rank b.f_kind) with
            | 0 -> compare a.f_line b.f_line
            | c -> c)
        | c -> c)
      !acc
  in
  { cfg; ins; exit_state; findings; proven; eadr }

let proven_count t = Hashtbl.length t.proven

let proven_safe_at t capture =
  Hashtbl.mem t.proven (Pmtrace.Callstack.capture_to_string capture)

let pp ppf t =
  Fmt.pf ppf "absint: %d nodes, %d edges, %d runs merged, %d findings, %d sites proven safe"
    (Cfg.node_count t.cfg) (Cfg.edge_count t.cfg) t.cfg.Cfg.runs
    (List.length t.findings) (proven_count t)

(** Ledger encoding of one merged-path finding (the path witness rides in
    [f_detail]). *)
let finding_to_json (f : finding) =
  let open Telemetry.Json in
  Assoc
    [
      ("kind", String (kind_to_string f.f_kind));
      ("line", Int f.f_line);
      ( "site",
        match f.f_site with
        | None -> Null
        | Some c -> String (Pmtrace.Callstack.capture_to_string c) );
      ("pseq", Int f.f_pseq);
      ("detail", String f.f_detail);
    ]

(** Ledger encoding of the phase: CFG size, per-site safety proof count and
    the findings with their path witnesses. *)
let to_json t =
  let open Telemetry.Json in
  Assoc
    [
      ("nodes", Int (Cfg.node_count t.cfg));
      ("proven_sites", Int (proven_count t));
      ("eadr", Bool t.eadr);
      ("findings", List (List.map finding_to_json t.findings));
    ]
