(** Epoch-based persistency anti-pattern detectors (the Bentō catalogue, see
    PAPERS.md): a single pass over one load-free recorded trace flags
    persistency instructions that do no useful work — and fences that arrive
    with work left undone — each with a frame + ordinal location, a concrete
    {!Fix.t}, and the estimated cost of leaving it in place.

    Lint needs no invariant mining and no load-traced recording, so it runs
    off a single execution; where its detectors overlap the dependency-graph
    redundancies ({!Dep_graph.redundancy}) the report-level deduplication
    (same kind, same code path) merges the two.

    The trace should carry device-accurate metadata (flush [dirty] bits,
    fence pending counts): recorded traces do by construction, rewritten
    traces must be re-normalized ({!Replay.normalize}) first. *)

type kind =
  | Duplicate_flush
      (** the line is flushed again, dirty, in the same persist epoch: the
          first capture is overwritten before any fence drains it *)
  | Unnecessary_flush  (** the line holds nothing unpersisted *)
  | Nt_flush_misuse
      (** clean flush of a line whose stores this epoch were non-temporal:
          NT stores bypass the cache, the flush writes back nothing *)
  | Redundant_fence  (** nothing pending to drain, nothing stored to order *)
  | Missing_flush
      (** a fence is reached with a line dirtied this epoch that is never
          flushed afterwards, though the program flushes that line elsewhere:
          the persist was probably intended here *)

let kind_to_string = function
  | Duplicate_flush -> "duplicate flush"
  | Unnecessary_flush -> "unnecessary flush"
  | Nt_flush_misuse -> "nt-store flush misuse"
  | Redundant_fence -> "redundant fence"
  | Missing_flush -> "missing flush"

(* Rough per-instruction costs (cycles) for the savings estimate, in line
   with published CLWB/SFENCE microbenchmark numbers. *)
let flush_cycles = 250
let fence_cycles = 30

type finding = {
  l_kind : kind;
  l_pseq : int;  (** persistency-index anchor of the first dynamic instance *)
  l_stack : Pmtrace.Callstack.capture option;
  l_line : int;  (** cache line of the first instance; 0 for fence findings *)
  l_detail : string;
  l_fix : Fix.t option;
  l_cycles : int;  (** estimated cycles saved, summed over dynamic instances *)
  l_events : int;  (** trace events removed by the fix, summed over instances *)
}

type t = {
  findings : finding list;
      (** one per code site (kind + code path), sorted by
          (pseq, kind, line) of the first dynamic instance *)
  events : int;
  epochs : int;  (** fences in the trace *)
  flushes : int;
  fences : int;
  redundant_flushes : int;  (** dynamic instances, not sites *)
  redundant_fences : int;
  missing_flush_spots : int;
  cycles_saved : int;  (** summed over deletable dynamic instances *)
  events_saved : int;
}

let kind_rank = function
  | Duplicate_flush -> 0
  | Unnecessary_flush -> 1
  | Nt_flush_misuse -> 2
  | Redundant_fence -> 3
  | Missing_flush -> 4

let analyze ?(eadr = false) (events : Pmtrace.Event.t list) =
  Telemetry.Collector.span ~cat:"lint" "analyze" @@ fun () ->
  (* pass 1: where is each line flushed? (pseq list, ascending) *)
  let flush_sites = Hashtbl.create 256 in
  let n_events = ref 0 in
  let () =
    let pseq = ref 0 in
    List.iter
      (fun (e : Pmtrace.Event.t) ->
        incr n_events;
        (match e.Pmtrace.Event.op with Pmem.Op.Load _ -> () | _ -> incr pseq);
        match e.Pmtrace.Event.op with
        | Pmem.Op.Flush { line; volatile = false; _ } ->
            let prior = Option.value ~default:[] (Hashtbl.find_opt flush_sites line) in
            Hashtbl.replace flush_sites line (!pseq :: prior)
        | _ -> ())
      events
  in
  Hashtbl.iter (fun line ps -> Hashtbl.replace flush_sites line (List.rev ps)) flush_sites;
  let flushed_after line p =
    match Hashtbl.find_opt flush_sites line with
    | None -> false
    | Some ps -> List.exists (fun q -> q > p) ps
  in
  let ever_flushed line = Hashtbl.mem flush_sites line in
  (* pass 2: the epoch walk. Findings aggregate per code site — the same
     static instruction misbehaving in every epoch is one finding whose
     savings sum over its dynamic instances, matching the granularity of
     the source-level fix it suggests. *)
  let sites : (string, finding) Hashtbl.t = Hashtbl.create 64 in
  (* Deleting an instruction deletes every execution of it, so a delete fix
     is only sound when every dynamic instance of the site was flagged:
     count executions per (shape, code path) and flagged instances per
     delete target, and strip the fix when they disagree. *)
  let site_key shape stack pseq =
    shape ^ "|"
    ^
    match stack with
    | Some c -> Pmtrace.Callstack.capture_to_string c
    | None -> Printf.sprintf "#%d" pseq
  in
  let instance_totals = Hashtbl.create 256 and marked = Hashtbl.create 64 in
  let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)) in
  let redundant_flushes = ref 0
  and redundant_fences = ref 0
  and missing = ref 0
  and flushes = ref 0
  and fences = ref 0
  and epochs = ref 0 in
  let add ?fix ~line ~cycles ~events:ev_saved kind pseq stack detail =
    (match fix with
    | Some { Fix.action = Fix.Delete_flush _; seq; stack = fstack; _ } ->
        bump marked (site_key "F" fstack seq)
    | Some { Fix.action = Fix.Delete_fence; seq; stack = fstack; _ } ->
        bump marked (site_key "N" fstack seq)
    | Some _ | None -> ());
    (match kind with
    | Duplicate_flush | Unnecessary_flush | Nt_flush_misuse -> incr redundant_flushes
    | Redundant_fence -> incr redundant_fences
    | Missing_flush -> incr missing);
    let key =
      Printf.sprintf "%d|%s" (kind_rank kind)
        (match stack with
        | Some c -> Pmtrace.Callstack.capture_to_string c
        | None -> Printf.sprintf "#%d" pseq)
    in
    match Hashtbl.find_opt sites key with
    | Some f ->
        Hashtbl.replace sites key
          { f with l_cycles = f.l_cycles + cycles; l_events = f.l_events + ev_saved }
    | None ->
        Hashtbl.replace sites key
          {
            l_kind = kind;
            l_pseq = pseq;
            l_stack = stack;
            l_line = line;
            l_detail = detail;
            l_fix = fix;
            l_cycles = cycles;
            l_events = ev_saved;
          }
  in
  (* per-line volatile-cache mirror: Some (pseq, stack) = dirty since that
     store; cleared when a flush captures the line *)
  let dirty = Hashtbl.create 256 in
  (* capture-flushes of this epoch that a fence has not drained yet:
     line -> (pseq, stack) of the capturing clflushopt/clwb *)
  let captured = Hashtbl.create 64 in
  (* lines written non-temporally this epoch *)
  let nt_lines = Hashtbl.create 16 in
  (* dirty stores issued since the last fence: line -> (pseq, stack) *)
  let epoch_stores = Hashtbl.create 64 in
  let pseq = ref 0 in
  List.iter
    (fun (e : Pmtrace.Event.t) ->
      (match e.Pmtrace.Event.op with Pmem.Op.Load _ -> () | _ -> incr pseq);
      let p = !pseq in
      let stack = e.Pmtrace.Event.stack in
      match e.Pmtrace.Event.op with
      | Pmem.Op.Load _ -> ()
      | Pmem.Op.Store { addr; size; nt } ->
          List.iter
            (fun line ->
              if nt then Hashtbl.replace nt_lines line ()
              else begin
                Hashtbl.replace dirty line (p, stack);
                Hashtbl.replace epoch_stores line (p, stack)
              end)
            (Pmem.Addr.lines_spanned ~addr ~size)
      | Pmem.Op.Flush { kind; line; dirty = was_dirty; volatile } ->
          incr flushes;
          bump instance_totals (site_key "F" stack p);
          if volatile then
            add
              ~fix:
                {
                  Fix.action = Fix.Delete_flush { line };
                  seq = p;
                  stack;
                  rationale = "the flushed address is not in the PM pool";
                }
              ~line ~cycles:flush_cycles ~events:1 Unnecessary_flush p stack
              (Printf.sprintf "flush of volatile address (line %d)" line)
          else if not was_dirty then
            if Hashtbl.mem nt_lines line then
              add
                ~fix:
                  {
                    Fix.action = Fix.Delete_flush { line };
                    seq = p;
                    stack;
                    rationale = "non-temporal stores bypass the cache; the fence alone persists them";
                  }
                ~line ~cycles:flush_cycles ~events:1 Nt_flush_misuse p stack
                (Printf.sprintf "flush of line %d written only non-temporally this epoch" line)
            else
              add
                ~fix:
                  {
                    Fix.action = Fix.Delete_flush { line };
                    seq = p;
                    stack;
                    rationale = "the line holds no unpersisted stores";
                  }
                ~line ~cycles:flush_cycles ~events:1 Unnecessary_flush p stack
                (Printf.sprintf "line %d flushed with nothing written since its last flush" line)
          else begin
            (* dirty flush: did it overwrite a capture from this same epoch? *)
            (match Hashtbl.find_opt captured line with
            | Some (first_p, first_stack) ->
                (* no fix when both flushes are dynamic instances of the same
                   instruction (a flush in a loop): deleting that source line
                   would delete the live second capture too — the repair is a
                   restructuring this tool cannot express as a trace edit *)
                let same_site =
                  match (first_stack, stack) with
                  | Some a, Some b ->
                      Pmtrace.Callstack.capture_to_string a
                      = Pmtrace.Callstack.capture_to_string b
                  | _ -> false
                in
                let fix =
                  if same_site then None
                  else
                    Some
                      {
                        Fix.action = Fix.Delete_flush { line };
                        seq = first_p;
                        stack = first_stack;
                        rationale =
                          "a later flush of the same line re-captures it before any fence \
                           drains this one";
                      }
                in
                add ?fix ~line ~cycles:flush_cycles ~events:1 Duplicate_flush first_p
                  first_stack
                  (Printf.sprintf
                     "line %d flushed at #%d and again at #%d with no fence between: the first \
                      capture is dead"
                     line first_p p)
            | None -> ());
            Hashtbl.remove dirty line;
            match kind with
            | Pmem.Op.Clflush ->
                (* persists immediately: not a capture a later flush can kill *)
                Hashtbl.remove captured line
            | Pmem.Op.Clflushopt | Pmem.Op.Clwb -> Hashtbl.replace captured line (p, stack)
          end
      | Pmem.Op.Fence { kind; pending_flushes; pending_nt } ->
          incr fences;
          incr epochs;
          bump instance_totals (site_key "N" stack p);
          (* missing-flush hot spots: lines stored to this epoch, still dirty
             here, never flushed later — though the program knows how to
             flush them (it does elsewhere). Suppressed under eADR, where
             visible stores are durable without flushes. *)
          let spots = ref [] in
          if not eadr then
            Hashtbl.iter
              (fun line (sp, sstack) ->
                if Hashtbl.mem dirty line && (not (flushed_after line p)) && ever_flushed line
                then spots := (line, sp, sstack) :: !spots)
              epoch_stores;
          let spots = List.sort compare !spots in
          (* the spot is anchored at the store that dirtied the line, not at
             the fence: the store is where the flush belongs, its identity
             survives trace rewrites, and a fence synthesized by a fix
             re-observing the same stranded store maps onto the same
             finding instead of minting a new one *)
          List.iter
            (fun (line, sp, sstack) ->
              add
                ~fix:
                  {
                    Fix.action = Fix.Insert_flush { line };
                    seq = sp;
                    stack = sstack;
                    rationale = "flush the line so the next fence persists the stores";
                  }
                ~line ~cycles:0 ~events:0 Missing_flush sp sstack
                (Printf.sprintf
                   "store to line %d at #%d is still dirty at the fence at #%d and the line is \
                    never flushed afterwards, though the program flushes it elsewhere"
                   line sp p))
            spots;
          if
            kind <> Pmem.Op.Rmw && pending_flushes = 0 && pending_nt = 0
            && spots = []
          then
            add
              ~fix:
                {
                  Fix.action = Fix.Delete_fence;
                  seq = p;
                  stack;
                  rationale = "no flush or NT store to drain";
                }
              ~line:0 ~cycles:fence_cycles ~events:1 Redundant_fence p stack
              "fence with no pending flushes or NT stores";
          Hashtbl.reset captured;
          Hashtbl.reset nt_lines;
          Hashtbl.reset epoch_stores)
    events;
  let deletable (fx : Fix.t) =
    let key shape = site_key shape fx.Fix.stack fx.Fix.seq in
    let sound shape =
      Hashtbl.find_opt marked (key shape) = Hashtbl.find_opt instance_totals (key shape)
    in
    match fx.Fix.action with
    | Fix.Delete_flush _ -> sound "F"
    | Fix.Delete_fence -> sound "N"
    | Fix.Insert_flush _ | Fix.Insert_fence -> true
    (* the transformation actions are synthesized by the optimizer, which
       applies its own per-site soundness rules; lint never emits them *)
    | Fix.Move_flush _ | Fix.Coalesce_flushes _ | Fix.Batch_fences _ | Fix.Convert_to_nt _
    | Fix.Convert_to_clwb _ -> true
  in
  let findings =
    Hashtbl.fold (fun _ f acc -> f :: acc) sites []
    |> List.map (fun f ->
           match f.l_fix with
           | Some fx when not (deletable fx) ->
               (* the instruction does real work in other executions:
                  advisory only *)
               { f with l_fix = None }
           | Some _ | None -> f)
    |> List.sort (fun a b ->
           compare
             (a.l_pseq, kind_rank a.l_kind, a.l_line)
             (b.l_pseq, kind_rank b.l_kind, b.l_line))
  in
  let cycles_saved = List.fold_left (fun acc f -> acc + f.l_cycles) 0 findings in
  let events_saved = List.fold_left (fun acc f -> acc + f.l_events) 0 findings in
  {
    findings;
    events = !n_events;
    epochs = !epochs;
    flushes = !flushes;
    fences = !fences;
    redundant_flushes = !redundant_flushes;
    redundant_fences = !redundant_fences;
    missing_flush_spots = !missing;
    cycles_saved;
    events_saved;
  }

let pp_finding ppf f =
  Fmt.pf ppf "[lint] %s: %s%s%s" (kind_to_string f.l_kind) f.l_detail
    (match f.l_stack with
    | Some c -> "\n    at " ^ Pmtrace.Callstack.capture_to_string c
    | None -> Printf.sprintf "\n    at instruction #%d" f.l_pseq)
    (match f.l_fix with None -> "" | Some fx -> "\n    fix: " ^ Fix.to_string fx)

let pp ppf t =
  Fmt.pf ppf
    "lint over %d event(s), %d epoch(s): %d redundant flush(es), %d redundant fence(s), %d \
     missing-flush spot(s); est. %d cycle(s)/%d event(s) saved"
    t.events t.epochs t.redundant_flushes t.redundant_fences t.missing_flush_spots
    t.cycles_saved t.events_saved;
  List.iter (fun f -> Fmt.pf ppf "@.%a" pp_finding f) t.findings

(** Ledger encoding of one anti-pattern site. *)
let finding_to_json (f : finding) =
  let open Telemetry.Json in
  Assoc
    [
      ("kind", String (kind_to_string f.l_kind));
      ("pseq", Int f.l_pseq);
      ( "stack",
        match f.l_stack with
        | None -> Null
        | Some c -> String (Pmtrace.Callstack.capture_to_string c) );
      ("line", Int f.l_line);
      ("detail", String f.l_detail);
      ("fix", match f.l_fix with None -> Null | Some fx -> String (Fix.to_string fx));
      ("cycles_saved", Int f.l_cycles);
      ("events_saved", Int f.l_events);
    ]

(** Ledger encoding of the phase: epoch/flush/fence tallies plus every
    finding site. *)
let to_json t =
  let open Telemetry.Json in
  Assoc
    [
      ("events", Int t.events);
      ("epochs", Int t.epochs);
      ("flushes", Int t.flushes);
      ("fences", Int t.fences);
      ("redundant_flushes", Int t.redundant_flushes);
      ("redundant_fences", Int t.redundant_fences);
      ("missing_flush_spots", Int t.missing_flush_spots);
      ("cycles_saved", Int t.cycles_saved);
      ("events_saved", Int t.events_saved);
      ("findings", List (List.map finding_to_json t.findings));
    ]
