(** Invariant-guided failure-point prioritization.

    The static analyzer marks {e hot windows} (persistency-index intervals
    implicated by an invariant violation or a never-persisted store) and
    {e hot frames} (the innermost call-stack frame of each violation
    anchor). A failure point is {e prioritized} when its first dynamic
    occurrence falls inside a hot window, or when the frame it fires in is
    one the static evidence implicates — the latter matters because
    windows are per-activation: a bug that repeats across many activations
    (tree splits at different depths) is witnessed in one window but must
    be injected at a {e different} activation's unique call path.

    Scoring is deliberately {e presence-based}, not magnitude-based:
    prioritized points come first in discovery-ordinal order, the rest
    follow in discovery-ordinal order. This gives a monotonicity
    guarantee: if the buggy failure point is itself prioritized, its
    position in the prioritized schedule is never later than in the
    unprioritized one, because only lower-ordinal prioritized points can
    precede it — a subset of the points that preceded it anyway. And with
    no static evidence at all, the schedule degrades to exactly the
    unprioritized one. *)

type scored = { ordinal : int; first_seq : int; score : int }

let innermost (c : Pmtrace.Callstack.capture) =
  match List.rev c.Pmtrace.Callstack.path with [] -> None | f :: _ -> Some f

(** [score ?hot_frames windows points] — [points] are
    [(ordinal, first_seq, capture)] triples from the offline failure-point
    replay; [windows] are [(lo, hi, weight)] hot windows from {!Static}
    (any positive weight marks presence). [score] is [1] when the point is
    prioritized, [0] otherwise. *)
let score ?(hot_frames = []) windows points =
  List.map
    (fun (ordinal, first_seq, capture) ->
      let in_window =
        List.exists (fun (lo, hi, w) -> w > 0 && lo < first_seq && first_seq <= hi) windows
      in
      let in_frame =
        match innermost capture with
        | Some f -> List.exists (String.equal f) hot_frames
        | None -> false
      in
      { ordinal; first_seq; score = (if in_window || in_frame then 1 else 0) })
    points

(** [order ?hot_frames windows points] is the injection priority:
    prioritized points first, each block in discovery-ordinal order. *)
let order ?hot_frames windows points =
  Telemetry.Collector.span ~cat:"static" "prioritize" @@ fun () ->
  score ?hot_frames windows points
  |> List.sort (fun a b ->
         if a.score <> b.score then compare b.score a.score else compare a.ordinal b.ordinal)
  |> List.map (fun s -> s.ordinal)

let pp_scored ppf s =
  Fmt.pf ppf "fp %d @#%d%s" s.ordinal s.first_seq
    (if s.score > 0 then " (prioritized)" else "")
