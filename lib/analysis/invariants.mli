(** Likely-invariant inference over persistency dependency graphs
    (Witcher-style): ordering and atomicity conditions mined from how the
    program usually behaves, gated by support/confidence thresholds. *)

type ordering_stat = {
  o_src_path : string;  (** frame path of the pointer load *)
  o_dst_path : string;  (** frame path of the pointee load *)
  o_instances : int;
  o_enforced : int;  (** pointee epoch strictly before pointer epoch *)
  o_unordered : int;  (** both persisted by the same fence *)
  o_inverted : int;  (** pointee persisted after the pointer *)
  o_dangling : int;  (** pointee never persisted (dirty window at chase) *)
}

val o_confidence : ordering_stat -> float
(** Fraction of enforced instances; 1.0 when the group saw only
    [Unknown]-pointee chases. *)

type dep_stat = {
  dep_src : string;  (** store location whose line must persist first *)
  dep_dst : string;
  dep_count : int;  (** edge instances witnessing the dependence *)
  dep_co : int;  (** epochs where both locations persisted together *)
}

type atomic_stat = {
  a_loc1 : string;
  a_loc2 : string;
  a_co : int;  (** epochs where both locations persisted together *)
  a_split : int;  (** near misses: persisted in distinct epochs <= 2 apart *)
  a_split_instances : (int * int * int) list;
      (** (graph index, node id of loc1, node id of loc2), capped *)
}

val a_confidence : atomic_stat -> float

type t = {
  orderings : ordering_stat list;  (** supported chase groups, instances desc *)
  deps : dep_stat list;  (** supported edge-dependence pairs *)
  atomic_pairs : atomic_stat list;  (** accepted atomicity invariants *)
}

val mine :
  support:int ->
  confidence:float ->
  (Dep_graph.t * (Dep_graph.node -> string list)) list ->
  t
(** [mine ~support ~confidence graphs] pools instances across the given
    runs. Each graph comes with a resolver mapping a persist node to its
    stable store locations (captures from a load-free recording — the
    load-traced run's own [op_index] values shift with data-dependent load
    counts and would not be comparable across dynamic instances).
    [support] is the minimum pooled instance count for any candidate;
    [confidence] additionally gates the atomicity family (ordering
    candidates keep their measured confidence, since a deterministic bug
    violates its invariant in every instance). *)

val pp : t Fmt.t
