(** Sound failure-point pruning driven by the abstract fixpoint.

    Two tiers keep the prune conservative (DESIGN.md decision 11):

    {e Nomination} — the abstract criterion. A failure point is nominated
    when {!Absint} proves that on every merged path into the site, every
    line dirtied before the current store epoch is persisted. Crash images
    are program-prefix cuts, so at such a point the image differs from a
    graceful shutdown only by the current epoch's stores. This is
    necessary but not sufficient: a prefix cut can still expose a torn
    multi-epoch operation whose earlier epochs persisted cleanly (e.g.
    publishing a pointer to not-yet-initialized memory), which no
    flush/fence state distinguishes from a clean epilogue.

    {e Confirmation} — the decisive check. Each nominee's crash image is
    materialized offline from the deterministic trace replay
    ({!Pmtrace.Replay}) and judged by the recovery oracle; only a nominee
    whose image the oracle finds consistent is skipped. Because the
    replayed image is byte-identical to the one live injection would
    produce (the PR 4 replay differential), a skipped point is one whose
    injection record is known to be [Consistent] — which contributes no
    finding — so the pruned report signature equals the unpruned one by
    construction. Everything unproven or unconfirmed falls back to live
    injection.

    The payoff is that confirmation is batched: all nominees are judged in
    a single forward pass of {!Pmtrace.Replay.materialize} over the shared
    recording — one rolling prefix image, one copy-on-write view per
    nominee — while each injection it replaces costs a full target
    re-execution. Under the replay-first default the confirmation pass
    folds into the injection pass itself, so pruning is never slower than
    the unpruned run (asserted by [test_absint.ml] and the absint bench's
    REGRESSION check). *)

type nomination = {
  n_ordinal : int;  (** failure-point discovery ordinal *)
  n_pseq : int;  (** persistency index of the point's first occurrence *)
  n_capture : Pmtrace.Callstack.capture;
  n_proven : bool;  (** abstract criterion held at the site *)
}

type plan = {
  nominations : nomination list;  (** every failure point, in ordinal order *)
  total : int;  (** failure points considered *)
  proven : int;  (** nominated by the abstract criterion *)
  confirmed : int;  (** nominees whose replayed image the oracle accepted *)
  rejected : int;  (** nominees the oracle refused — fall back to injection *)
  skip : int list;  (** ordinals to skip, sorted *)
}

(** [nominate ~proven_safe points] — tag each offline failure point
    (ordinal, pseq, capture) with the abstract verdict for its site. *)
let nominate ~proven_safe points =
  List.map
    (fun (ordinal, pseq, capture) ->
      { n_ordinal = ordinal; n_pseq = pseq; n_capture = capture; n_proven = proven_safe capture })
    points

(** [decide ~confirmed nominations] — fold the oracle confirmations
    (keyed by ordinal; only consulted for proven nominees) into the final
    plan. *)
let decide ~confirmed nominations =
  let total = List.length nominations in
  let proven = List.length (List.filter (fun n -> n.n_proven) nominations) in
  let skip =
    List.filter_map
      (fun n -> if n.n_proven && confirmed n.n_ordinal then Some n.n_ordinal else None)
      nominations
    |> List.sort_uniq compare
  in
  let confirmed_count = List.length skip in
  {
    nominations;
    total;
    proven;
    confirmed = confirmed_count;
    rejected = proven - confirmed_count;
    skip;
  }

let skip_fraction plan =
  if plan.total = 0 then 0.0
  else float_of_int (List.length plan.skip) /. float_of_int plan.total

let pp ppf plan =
  Fmt.pf ppf
    "prune: proven-safe %d/%d failure points (confirmed %d, rejected %d), skipping %d \
     injection(s)"
    plan.proven plan.total plan.confirmed plan.rejected (List.length plan.skip)

(** Machine encoding for the run ledger: the plan's tallies plus the
    skipped ordinals (the nominations themselves are reconstructible from
    the absint output and the failure-point enumeration). *)
let plan_to_json p =
  let open Telemetry.Json in
  Assoc
    [
      ("total", Int p.total);
      ("proven", Int p.proven);
      ("confirmed", Int p.confirmed);
      ("rejected", Int p.rejected);
      ("skipped", Int (List.length p.skip));
      ("skip", List (List.map (fun o -> Int o) p.skip));
    ]
