(** Likely-invariant inference over persistency dependency graphs
    (Witcher-style, see PAPERS.md): correctness conditions are not declared
    by the programmer but {e mined} from how the program usually behaves
    across (repeated) executions, then the minority of instances that break
    an accepted invariant become findings.

    Three families are mined:
    - {e ordering invariants from pointer chases} ("the pointee must
      persist before the pointer"): chase instances grouped by the frame
      paths of the two loads; an instance is enforced when the pointee's
      persist epoch strictly precedes the pointer's;
    - {e ordering invariants from read-after-persist edges} ("A must
      persist before B"): location pairs connected by dependency edges;
      a co-persist of the two locations in a single fence epoch leaves
      their order to the hardware and violates the dependence;
    - {e atomicity invariants} ("these stores persist atomically"):
      location pairs that co-persist in the same fence epoch in most
      instances; the split instances are atomicity hazards.

    [support] is the minimum number of pooled instances before a candidate
    is considered at all; [confidence] is the minimum fraction of
    conforming instances for the *atomicity* family (ordering families keep
    every supported candidate and carry their measured confidence, because
    a deterministic bug violates its invariant in every instance). *)

type ordering_stat = {
  o_src_path : string;  (** frame path of the pointer load *)
  o_dst_path : string;  (** frame path of the pointee load *)
  o_instances : int;
  o_enforced : int;  (** pointee epoch strictly before pointer epoch *)
  o_unordered : int;  (** both persisted by the same fence *)
  o_inverted : int;  (** pointee persisted after the pointer *)
  o_dangling : int;  (** pointee never persisted (dirty window at chase) *)
}

let o_confidence s =
  let bad = s.o_unordered + s.o_inverted + s.o_dangling in
  if s.o_enforced + bad = 0 then 1.0
  else float_of_int s.o_enforced /. float_of_int (s.o_enforced + bad)

type dep_stat = {
  dep_src : string;  (** store location whose line must persist first *)
  dep_dst : string;
  dep_count : int;  (** edge instances witnessing the dependence *)
  dep_co : int;  (** epochs where both locations persisted together *)
}

type atomic_stat = {
  a_loc1 : string;
  a_loc2 : string;
  a_co : int;  (** epochs where both locations persisted together *)
  a_split : int;  (** near misses: persisted in distinct epochs <= 2 apart *)
  a_split_instances : (int * int * int) list;
      (** (graph index, node id of loc1, node id of loc2), capped *)
}

let a_confidence s =
  if s.a_co + s.a_split = 0 then 0.0
  else float_of_int s.a_co /. float_of_int (s.a_co + s.a_split)

type t = {
  orderings : ordering_stat list;  (** supported chase groups, instances desc *)
  deps : dep_stat list;  (** supported edge-dependence pairs *)
  atomic_pairs : atomic_stat list;  (** accepted atomicity invariants *)
}

(* Epochs with more distinct locations than this are skipped by the
   quadratic pair mining: huge epochs are transaction commits, whose
   atomicity is the transaction's business, and their pair sets would
   dominate the tables (the Witcher RAM blowup of Table 2). *)
let max_epoch_locs = 48

let split_instance_cap = 16

let mine ~support ~confidence graphs =
  Telemetry.Collector.span ~cat:"static" "mine_invariants" @@ fun () ->
  (* ---- pointer-chase ordering invariants ---- *)
  let chase_tbl : (string * string, ordering_stat ref) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun _gi ((g : Dep_graph.t), _locs_of) ->
      List.iter
        (fun (c : Dep_graph.chase) ->
          let key = c.Dep_graph.c_paths in
          let s =
            match Hashtbl.find_opt chase_tbl key with
            | Some s -> s
            | None ->
                let s =
                  ref
                    {
                      o_src_path = fst key;
                      o_dst_path = snd key;
                      o_instances = 0;
                      o_enforced = 0;
                      o_unordered = 0;
                      o_inverted = 0;
                      o_dangling = 0;
                    }
                in
                Hashtbl.replace chase_tbl key s;
                s
          in
          let src = Dep_graph.node g c.Dep_graph.c_src in
          let v = !s in
          let v = { v with o_instances = v.o_instances + 1 } in
          s :=
            (match c.Dep_graph.c_dst with
            | Dep_graph.Persisted id ->
                let dst = Dep_graph.node g id in
                if dst.Dep_graph.epoch < src.Dep_graph.epoch then
                  { v with o_enforced = v.o_enforced + 1 }
                else if dst.Dep_graph.epoch = src.Dep_graph.epoch then
                  { v with o_unordered = v.o_unordered + 1 }
                else { v with o_inverted = v.o_inverted + 1 }
            | Dep_graph.Dirty_window -> { v with o_dangling = v.o_dangling + 1 }
            | Dep_graph.Unknown -> v))
        g.Dep_graph.chases)
    graphs;
  let orderings =
    Hashtbl.fold (fun _ s acc -> !s :: acc) chase_tbl []
    |> List.filter (fun s -> s.o_instances >= support)
    |> List.sort (fun a b ->
           compare (b.o_instances, a.o_src_path, a.o_dst_path)
             (a.o_instances, b.o_src_path, b.o_dst_path))
  in
  (* ---- per-graph location/epoch occupancy ---- *)
  let epoch_locs =
    List.map
      (fun ((g : Dep_graph.t), locs_of) ->
        let by_epoch = Hashtbl.create 64 in
        Array.iter
          (fun (n : Dep_graph.node) ->
            List.iter
              (fun loc ->
                let cur = Option.value ~default:[] (Hashtbl.find_opt by_epoch n.Dep_graph.epoch) in
                if not (List.exists (fun (l, _) -> String.equal l loc) cur) then
                  Hashtbl.replace by_epoch n.Dep_graph.epoch ((loc, n.Dep_graph.id) :: cur))
              (locs_of n))
          g.Dep_graph.nodes;
        (g, locs_of, by_epoch))
      graphs
  in
  (* location -> epochs (per graph), for split detection *)
  let loc_epochs = Hashtbl.create 256 in
  List.iteri
    (fun gi (_, _, by_epoch) ->
      Hashtbl.iter
        (fun epoch locs ->
          List.iter
            (fun (loc, id) ->
              Hashtbl.replace loc_epochs (gi, loc)
                ((epoch, id) :: Option.value ~default:[] (Hashtbl.find_opt loc_epochs (gi, loc))))
            locs)
        by_epoch)
    epoch_locs;
  (* ---- co-persist pair counting (atomicity candidates) ---- *)
  let pair_tbl : (string * string, int ref) Hashtbl.t = Hashtbl.create 256 in
  let pair_key a b = if String.compare a b <= 0 then (a, b) else (b, a) in
  List.iter
    (fun (_, _, by_epoch) ->
      Hashtbl.iter
        (fun _epoch locs ->
          if List.length locs <= max_epoch_locs then
            let rec pairs = function
              | [] -> ()
              | (a, _) :: rest ->
                  List.iter
                    (fun (b, _) ->
                      if not (String.equal a b) then begin
                        let key = pair_key a b in
                        match Hashtbl.find_opt pair_tbl key with
                        | Some r -> incr r
                        | None -> Hashtbl.replace pair_tbl key (ref 1)
                      end)
                    rest;
                  pairs rest
            in
            pairs locs)
        by_epoch)
    epoch_locs;
  (* ---- edge-dependence invariants ---- *)
  let dep_tbl : (string * string, int ref) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun ((g : Dep_graph.t), locs_of) ->
      List.iter
        (fun (e : Dep_graph.edge) ->
          let src = Dep_graph.node g e.Dep_graph.src
          and dst = Dep_graph.node g e.Dep_graph.dst in
          List.iter
            (fun a ->
              List.iter
                (fun b ->
                  if not (String.equal a b) then
                    match Hashtbl.find_opt dep_tbl (a, b) with
                    | Some r -> incr r
                    | None -> Hashtbl.replace dep_tbl (a, b) (ref 1))
                (locs_of dst))
            (locs_of src))
        g.Dep_graph.edges)
    graphs;
  let deps =
    Hashtbl.fold
      (fun (a, b) r acc ->
        if !r >= support then
          let co =
            match Hashtbl.find_opt pair_tbl (pair_key a b) with Some c -> !c | None -> 0
          in
          { dep_src = a; dep_dst = b; dep_count = !r; dep_co = co } :: acc
        else acc)
      dep_tbl []
    |> List.sort (fun x y ->
           compare (y.dep_count, x.dep_src, x.dep_dst) (x.dep_count, y.dep_src, y.dep_dst))
  in
  (* ---- atomicity invariants: supported co-persist pairs, with splits ---- *)
  let atomic_pairs =
    Hashtbl.fold
      (fun (a, b) co acc ->
        if !co >= support then begin
          (* split: an epoch holding one location with the other nearby but
             not in it *)
          let split = ref 0 and instances = ref [] in
          List.iteri
            (fun gi _ ->
              let ea = Option.value ~default:[] (Hashtbl.find_opt loc_epochs (gi, a))
              and eb = Option.value ~default:[] (Hashtbl.find_opt loc_epochs (gi, b)) in
              List.iter
                (fun (epa, ida) ->
                  if not (List.exists (fun (e, _) -> e = epa) eb) then
                    match
                      List.find_opt (fun (e, _) -> abs (e - epa) <= 2 && e <> epa) eb
                    with
                    | Some (_, idb) ->
                        incr split;
                        if List.length !instances < split_instance_cap then
                          instances := (gi, ida, idb) :: !instances
                    | None -> ())
                ea)
            graphs;
          let s =
            {
              a_loc1 = a;
              a_loc2 = b;
              a_co = !co;
              a_split = !split;
              a_split_instances = List.rev !instances;
            }
          in
          if a_confidence s >= confidence then s :: acc else acc
        end
        else acc)
      pair_tbl []
    |> List.sort (fun x y ->
           compare (y.a_co, x.a_loc1, x.a_loc2) (x.a_co, y.a_loc1, y.a_loc2))
  in
  { orderings; deps; atomic_pairs }

let pp ppf t =
  Fmt.pf ppf "invariants: %d chase orderings, %d edge dependences, %d atomic pairs"
    (List.length t.orderings) (List.length t.deps) (List.length t.atomic_pairs)
