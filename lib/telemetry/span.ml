(** A completed span: one named, timed section of work on one track
    (track = the integer id of the domain that executed it), threaded to
    its parent span when it ran nested inside one. *)

type t = {
  id : int;  (** unique across the dump: [(track lsl 30) lor local] *)
  parent : int option;  (** enclosing span on the same track *)
  track : int;  (** domain id; one Chrome-trace thread lane per track *)
  name : string;
  cat : string;
  start_ns : int;
  dur_ns : int;
  args : (string * Json.t) list;
}

(** Structural well-formedness of a span dump — the property the qcheck
    tests drive: ids are unique, every recorded end had a matching begin
    (a parent id that exists in the dump), parents run on the same track
    as their children, and every child's interval is contained in its
    parent's. *)
let well_formed (spans : t list) : (unit, string) result =
  let by_id = Hashtbl.create (List.length spans) in
  let dup =
    List.find_opt
      (fun s ->
        if Hashtbl.mem by_id s.id then true
        else begin
          Hashtbl.replace by_id s.id s;
          false
        end)
      spans
  in
  match dup with
  | Some s -> Error (Printf.sprintf "duplicate span id %d (%s)" s.id s.name)
  | None ->
      let bad =
        List.find_map
          (fun s ->
            if s.dur_ns < 0 then
              Some (Printf.sprintf "span %s has negative duration" s.name)
            else
              match s.parent with
              | None -> None
              | Some pid -> (
                  match Hashtbl.find_opt by_id pid with
                  | None ->
                      Some
                        (Printf.sprintf "span %s ends without a recorded begin for parent %d"
                           s.name pid)
                  | Some p ->
                      if p.track <> s.track then
                        Some
                          (Printf.sprintf "span %s crosses tracks (%d inside %d)" s.name
                             s.track p.track)
                      else if
                        s.start_ns < p.start_ns
                        || s.start_ns + s.dur_ns > p.start_ns + p.dur_ns
                      then
                        Some
                          (Printf.sprintf "span %s escapes its parent %s" s.name p.name)
                      else None))
          spans
      in
      (match bad with Some msg -> Error msg | None -> Ok ())

let to_json (s : t) =
  Json.Assoc
    [
      ("type", Json.String "span");
      ("id", Json.Int s.id);
      ("parent", match s.parent with Some p -> Json.Int p | None -> Json.Null);
      ("track", Json.Int s.track);
      ("name", Json.String s.name);
      ("cat", Json.String s.cat);
      ("ts_ns", Json.Int s.start_ns);
      ("dur_ns", Json.Int s.dur_ns);
      ("args", Json.Assoc s.args);
    ]
