(** The global telemetry collector: nestable spans, counters and
    histograms, recorded into per-domain buffers and merged
    deterministically at {!drain} time.

    Off by default and provably inert: every recording entry point reads
    one atomic flag and returns immediately when disabled — [span name f]
    is exactly [f ()] — so an instrumented build with no sink configured
    behaves byte-identically to an uninstrumented one (the differential
    test in [test/test_telemetry.ml] asserts this on the seeded-bug
    matrix).

    Concurrency model: mirrors the parallel fault-injection engine. Each
    domain owns a private buffer (reached through [Domain.DLS], registered
    once under a mutex), so recording is contention-free; [drain] merges
    all buffers sorted by [(track, start, id)] — a deterministic order for
    any schedule, the same rule [Fault_injection] uses for its records. *)

type buffer = {
  track : int;  (** the owning domain's id *)
  mutable next_local : int;  (** local span-id allocator *)
  mutable open_spans : open_span list;  (** innermost first *)
  mutable spans : Span.t list;  (** completed, newest first *)
  counters : (string, int ref) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
}

and open_span = {
  o_id : int;
  o_parent : int option;
  o_name : string;
  o_cat : string;
  o_args : (string * Json.t) list;
  o_start : int;
}

let enabled_flag = Atomic.make false
let main_track = Atomic.make 0
let registry_mu = Mutex.create ()
let registry : buffer list ref = ref []

let fresh_buffer () =
  let b =
    {
      track = (Domain.self () :> int);
      next_local = 0;
      open_spans = [];
      spans = [];
      counters = Hashtbl.create 16;
      histograms = Hashtbl.create 16;
    }
  in
  Mutex.lock registry_mu;
  registry := b :: !registry;
  Mutex.unlock registry_mu;
  b

let dls_key = Domain.DLS.new_key fresh_buffer

let enabled () = Atomic.get enabled_flag

(** Turn collection on. The calling domain becomes the main track (the
    lane Chrome-trace labels "main"). *)
let enable () =
  Atomic.set main_track (Domain.self () :> int);
  Atomic.set enabled_flag true

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

type handle = No_span | Open of buffer * int

let span_id track local = (track lsl 30) lor (local land ((1 lsl 30) - 1))

let begin_span ?(cat = "") ?(args = []) name =
  if not (Atomic.get enabled_flag) then No_span
  else begin
    let buf = Domain.DLS.get dls_key in
    let id = span_id buf.track buf.next_local in
    buf.next_local <- buf.next_local + 1;
    let parent = match buf.open_spans with [] -> None | o :: _ -> Some o.o_id in
    buf.open_spans <-
      { o_id = id; o_parent = parent; o_name = name; o_cat = cat; o_args = args;
        o_start = Clock.now_ns () }
      :: buf.open_spans;
    Open (buf, id)
  end

let observe_into buf name v =
  let h =
    match Hashtbl.find_opt buf.histograms name with
    | Some h -> h
    | None ->
        let h = Histogram.create () in
        Hashtbl.replace buf.histograms name h;
        h
  in
  Histogram.observe h v

let close_open buf ~end_ns ~extra_args (o : open_span) =
  {
    Span.id = o.o_id;
    parent = o.o_parent;
    track = buf.track;
    name = o.o_name;
    cat = o.o_cat;
    start_ns = o.o_start;
    dur_ns = max 0 (end_ns - o.o_start);
    args = o.o_args @ extra_args;
  }

(** [end_span ?args ?hist h] completes the span opened by [h], appending
    [args] to the ones given at [begin_span] time; with [hist] the span's
    duration is also recorded into that histogram. A handle from a
    disabled period, or one already swept up by {!drain}, is a no-op. *)
let end_span ?(args = []) ?hist = function
  | No_span -> ()
  | Open (buf, id) -> (
      match List.partition (fun o -> o.o_id = id) buf.open_spans with
      | [ o ], rest ->
          buf.open_spans <- rest;
          let s = close_open buf ~end_ns:(Clock.now_ns ()) ~extra_args:args o in
          buf.spans <- s :: buf.spans;
          (match hist with
          | Some name -> observe_into buf name s.Span.dur_ns
          | None -> ())
      | _ -> () (* already drained *))

(** [span ?cat ?args ?hist name f] runs [f] inside a span; the span closes
    even when [f] raises (fault injection unwinds with [Crash_now]
    constantly). When collection is off this is exactly [f ()]. *)
let span ?cat ?args ?hist name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let h = begin_span ?cat ?args name in
    Fun.protect ~finally:(fun () -> end_span ?hist h) f
  end

(** [count name n] adds [n] to counter [name] on this domain's buffer;
    buffers merge by summation at drain time. *)
let count name n =
  if Atomic.get enabled_flag then begin
    let buf = Domain.DLS.get dls_key in
    match Hashtbl.find_opt buf.counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.replace buf.counters name (ref n)
  end

(** [observe name ns] records one nanosecond sample into histogram
    [name]. *)
let observe name ns =
  if Atomic.get enabled_flag then observe_into (Domain.DLS.get dls_key) name ns

(* ------------------------------------------------------------------ *)
(* Draining                                                            *)
(* ------------------------------------------------------------------ *)

type dump = {
  spans : Span.t list;  (** sorted by (track, start, id) *)
  counters : (string * int) list;  (** summed across domains, sorted by name *)
  histograms : (string * Histogram.t) list;  (** merged across domains, sorted *)
  base_ns : int;  (** earliest span start; exporters rebase timestamps on it *)
  dump_main_track : int;  (** the track to label "main" *)
}

let empty_dump =
  { spans = []; counters = []; histograms = []; base_ns = 0; dump_main_track = 0 }

(** Collect and clear every domain's buffer. Spans still open (a drain in
    the middle of a phase) are closed at the drain timestamp so every
    recorded end has a begin and vice versa. Counters merge by sum,
    histograms by component-wise sum, spans sort by [(track, start, id)] —
    all order-insensitive, so the dump is deterministic regardless of how
    work was scheduled over domains. *)
let drain () =
  Mutex.lock registry_mu;
  let bufs = !registry in
  Mutex.unlock registry_mu;
  let now = Clock.now_ns () in
  let spans = ref [] in
  let counters : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let histograms : (string, Histogram.t) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun buf ->
      let closed =
        List.map (close_open buf ~end_ns:now ~extra_args:[]) buf.open_spans
      in
      spans := closed @ buf.spans @ !spans;
      buf.open_spans <- [];
      buf.spans <- [];
      Hashtbl.iter
        (fun name r ->
          Hashtbl.replace counters name
            (!r + Option.value ~default:0 (Hashtbl.find_opt counters name)))
        buf.counters;
      Hashtbl.reset buf.counters;
      Hashtbl.iter
        (fun name h ->
          match Hashtbl.find_opt histograms name with
          | Some acc -> Hashtbl.replace histograms name (Histogram.merge acc h)
          | None -> Hashtbl.replace histograms name (Histogram.copy h))
        buf.histograms;
      Hashtbl.reset buf.histograms)
    bufs;
  let spans =
    List.sort
      (fun (a : Span.t) (b : Span.t) ->
        compare
          (a.Span.track, a.Span.start_ns, a.Span.id)
          (b.Span.track, b.Span.start_ns, b.Span.id))
      !spans
  in
  let base_ns =
    List.fold_left (fun acc (s : Span.t) -> min acc s.Span.start_ns) max_int spans
  in
  {
    spans;
    counters =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    histograms =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) histograms []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    base_ns = (if base_ns = max_int then 0 else base_ns);
    dump_main_track = Atomic.get main_track;
  }

(** Turn collection off and discard anything buffered. *)
let disable () =
  Atomic.set enabled_flag false;
  ignore (drain ())
