(** Log-bucketed latency histograms (nanosecond samples).

    Bucket [i] holds samples [v] with [2^(i-1) <= v < 2^i] (bucket 0 holds
    0 and 1): ~2x resolution over the full 63-bit range in 63 fixed
    buckets, so merging is a component-wise sum — associative and
    commutative, which is what lets per-domain histograms from parallel
    injection workers merge deterministically in any order. *)

let buckets = 63

type t = {
  counts : int array;  (** [buckets] cells *)
  mutable count : int;
  mutable sum : int;
  mutable min : int;  (** [max_int] when empty *)
  mutable max : int;  (** [min_int] when empty *)
}

let create () =
  { counts = Array.make buckets 0; count = 0; sum = 0; min = max_int; max = min_int }

(* Index of the highest set bit + 1, i.e. bits needed to represent [v];
   0 and 1 both land in bucket 0. *)
let bucket_of v =
  let v = max 0 v in
  let rec bits acc v = if v <= 1 then acc else bits (acc + 1) (v lsr 1) in
  bits 0 v

(** Lower bound of bucket [i] (inclusive). *)
let bucket_floor i = if i = 0 then 0 else 1 lsl (i - 1)

(** Upper bound of bucket [i] (exclusive). *)
let bucket_ceil i = if i = 0 then 2 else 1 lsl i

let observe t v =
  let v = max 0 v in
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min then t.min <- v;
  if v > t.max then t.max <- v

(** Component-wise sum; neither argument is modified. *)
let merge a b =
  {
    counts = Array.init buckets (fun i -> a.counts.(i) + b.counts.(i));
    count = a.count + b.count;
    sum = a.sum + b.sum;
    min = min a.min b.min;
    max = max a.max b.max;
  }

let copy t = { t with counts = Array.copy t.counts }

let equal a b =
  a.count = b.count && a.sum = b.sum && a.min = b.min && a.max = b.max
  && Array.for_all2 ( = ) a.counts b.counts

let mean t = if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count

(** Approximate quantile: walk the cumulative bucket counts and report the
    geometric midpoint of the bucket containing rank [q * count]. *)
let quantile t q =
  if t.count = 0 then 0
  else begin
    let rank = int_of_float (Float.of_int t.count *. q) |> max 0 |> min (t.count - 1) in
    let acc = ref 0 and result = ref t.max in
    (try
       for i = 0 to buckets - 1 do
         acc := !acc + t.counts.(i);
         if !acc > rank then begin
           result := min t.max (max t.min ((bucket_floor i + bucket_ceil i) / 2));
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

(** Summary encoding used by the JSONL export and the bench result files:
    count, sum, extrema, mean, approximate p50/p90/p99, and the non-empty
    buckets as [[index, count]] pairs. *)
let to_json t =
  let non_empty =
    Array.to_list t.counts
    |> List.mapi (fun i c -> (i, c))
    |> List.filter (fun (_, c) -> c > 0)
    |> List.map (fun (i, c) -> Json.List [ Json.Int i; Json.Int c ])
  in
  Json.Assoc
    [
      ("count", Json.Int t.count);
      ("sum_ns", Json.Int t.sum);
      ("min_ns", if t.count = 0 then Json.Null else Json.Int t.min);
      ("max_ns", if t.count = 0 then Json.Null else Json.Int t.max);
      ("mean_ns", Json.Float (mean t));
      ("p50_ns", Json.Int (quantile t 0.5));
      ("p90_ns", Json.Int (quantile t 0.9));
      ("p99_ns", Json.Int (quantile t 0.99));
      ("buckets", Json.List non_empty);
    ]

(** Inverse of {!to_json}, for consumers that fit models from exported
    histograms (the optimizer's cost fitting reads "cost.*" histograms
    back out of a telemetry JSONL). Extrema and the bucket array
    round-trip exactly; a malformed document yields [None]. *)
let of_json j =
  match (Json.member "count" j, Json.member "sum_ns" j, Json.member "buckets" j) with
  | Some (Json.Int count), Some (Json.Int sum), Some (Json.List cells) ->
      let t = create () in
      t.count <- count;
      t.sum <- sum;
      (match Json.member "min_ns" j with Some (Json.Int v) -> t.min <- v | _ -> ());
      (match Json.member "max_ns" j with Some (Json.Int v) -> t.max <- v | _ -> ());
      let ok =
        List.for_all
          (function
            | Json.List [ Json.Int i; Json.Int c ] when i >= 0 && i < buckets && c >= 0 ->
                t.counts.(i) <- c;
                true
            | _ -> false)
          cells
      in
      if ok && count >= 0 && Array.fold_left ( + ) 0 t.counts = count then Some t
      else None
  | _ -> None
