(** Append-only JSONL event log with a versioned schema.

    Line 1 is a header record carrying the schema name and version; every
    following line is one self-describing record ([type] field): spans,
    final counter values, histogram summaries. The format is the
    machine-readable twin of the Chrome trace — grep/jq-friendly, and
    validated structurally by {!validate_string} (the same check CI runs
    on emitted files). *)

let schema_name = "mumak.telemetry"
let schema_version = 1

let header () =
  Json.Assoc
    [
      ("type", Json.String "header");
      ("schema", Json.String schema_name);
      ("version", Json.Int schema_version);
      ("clock", Json.String Clock.source);
    ]

let records (d : Collector.dump) =
  header ()
  :: List.map Span.to_json d.Collector.spans
  @ List.map
      (fun (name, v) ->
        Json.Assoc
          [ ("type", Json.String "counter"); ("name", Json.String name);
            ("value", Json.Int v) ])
      d.Collector.counters
  @ List.map
      (fun (name, h) ->
        match Histogram.to_json h with
        | Json.Assoc fields ->
            Json.Assoc
              (("type", Json.String "histogram") :: ("name", Json.String name) :: fields)
        | other -> other)
      d.Collector.histograms

let to_string d =
  String.concat "" (List.map (fun r -> Json.to_string r ^ "\n") (records d))

(* ------------------------------------------------------------------ *)
(* Schema validation                                                   *)
(* ------------------------------------------------------------------ *)

let required_int record field =
  match Option.bind (Json.member field record) Json.to_int_opt with
  | Some _ -> Ok ()
  | None -> Error (Printf.sprintf "missing integer field %S" field)

let required_string record field =
  match Option.bind (Json.member field record) Json.to_string_opt with
  | Some _ -> Ok ()
  | None -> Error (Printf.sprintf "missing string field %S" field)

let ( let* ) = Result.bind

let validate_record record =
  match Option.bind (Json.member "type" record) Json.to_string_opt with
  | None -> Error "record without a type field"
  | Some "span" ->
      let* () = required_int record "id" in
      let* () = required_int record "track" in
      let* () = required_string record "name" in
      let* () = required_string record "cat" in
      let* () = required_int record "ts_ns" in
      let* () = required_int record "dur_ns" in
      (match Json.member "parent" record with
      | Some (Json.Int _) | Some Json.Null -> Ok ()
      | _ -> Error "span parent must be an integer or null")
  | Some "counter" ->
      let* () = required_string record "name" in
      required_int record "value"
  | Some "histogram" ->
      let* () = required_string record "name" in
      let* () = required_int record "count" in
      let* () = required_int record "sum_ns" in
      (match Option.bind (Json.member "buckets" record) Json.to_list_opt with
      | None -> Error "histogram without a buckets array"
      | Some _ -> Ok ())
  | Some other -> Error (Printf.sprintf "unknown record type %S" other)

(** Validate a whole JSONL document: a header line with the right schema
    name and version, then well-formed records. Returns the number of
    data records. *)
let validate_string (doc : string) : (int, string) result =
  let lines =
    String.split_on_char '\n' doc |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty telemetry log"
  | first :: rest -> (
      match Json.of_string first with
      | Error msg -> Error (Printf.sprintf "header: %s" msg)
      | Ok h -> (
          match
            ( Option.bind (Json.member "type" h) Json.to_string_opt,
              Option.bind (Json.member "schema" h) Json.to_string_opt,
              Option.bind (Json.member "version" h) Json.to_int_opt )
          with
          | Some "header", Some s, Some v when s = schema_name && v = schema_version ->
              let rec check i = function
                | [] -> Ok (i - 2) (* i is a 1-based line number; data starts on line 2 *)
                | line :: rest -> (
                    match Json.of_string line with
                    | Error msg -> Error (Printf.sprintf "line %d: %s" i msg)
                    | Ok record -> (
                        match validate_record record with
                        | Error msg -> Error (Printf.sprintf "line %d: %s" i msg)
                        | Ok () -> check (i + 1) rest))
              in
              check 2 rest
          | Some "header", Some s, Some v ->
              Error (Printf.sprintf "unsupported schema %s/%d (want %s/%d)" s v schema_name
                       schema_version)
          | _ -> Error "first line is not a telemetry header"))
