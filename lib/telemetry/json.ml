(** Minimal JSON: a value type, a serializer, and a recursive-descent
    parser. The repository has no JSON dependency and the telemetry layer
    must stay zero-dependency, so this is the one JSON implementation the
    exporters, the schema validators, and the bench emitter all share. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  match Float.classify_float f with
  | Float.FP_nan | Float.FP_infinite -> "null" (* JSON has no nan/inf *)
  | _ when Float.is_integer f && Float.abs f < 1e15 -> Printf.sprintf "%.0f" f
  | _ -> Printf.sprintf "%.12g" f

let rec add_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> escape_string buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          add_json buf v)
        l;
      Buffer.add_char buf ']'
  | Assoc fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          add_json buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add_json buf v;
  Buffer.contents buf

(** Scalar rendering for human-facing output ([Metrics.pp], [Stats.pp]):
    same value as {!to_string} but with floats shortened to 4 significant
    digits. Structured values fall back to full JSON. *)
let to_compact_string = function
  | Float f when not (Float.is_integer f) -> Printf.sprintf "%.4g" f
  | v -> to_string v

(** Render an assoc's fields as [k=v] pairs separated by spaces — the
    shared human-readable form of any [to_json]-producing type, so the
    pretty-printer and the machine encoding cannot drift. *)
let pp_kv ppf fields =
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Fmt.char ppf ' ';
      Fmt.pf ppf "%s=%s" k (to_compact_string v))
    fields

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member name = function Assoc fields -> List.assoc_opt name fields | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
let to_assoc_opt = function Assoc a -> Some a | _ -> None

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let of_string (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "invalid \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | 'r' -> Buffer.add_char buf '\r'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' ->
                  if !pos + 4 > n then fail "truncated \\u escape";
                  let code =
                    (hex_digit s.[!pos] lsl 12)
                    lor (hex_digit s.[!pos + 1] lsl 8)
                    lor (hex_digit s.[!pos + 2] lsl 4)
                    lor hex_digit s.[!pos + 3]
                  in
                  pos := !pos + 4;
                  (* encode the code point as UTF-8 (surrogates land as-is) *)
                  if code < 0x80 then Buffer.add_char buf (Char.chr code)
                  else if code < 0x800 then begin
                    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                  end
                  else begin
                    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                  end
              | _ -> fail "invalid escape");
              loop ())
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let consume () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
          advance ();
          true
      | Some ('.' | 'e' | 'E') ->
          is_float := true;
          advance ();
          true
      | _ -> false
    in
    while consume () do
      ()
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "malformed number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "malformed number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Assoc []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Assoc (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
