(** Live progress reporter for the injection loop: a single stderr line
    redrawn in place with injections/sec, ETA, and a first-bug marker.

    TTY-aware: with [--progress] on a terminal the line is redrawn with
    [\r]; when stderr is redirected the reporter stays completely silent
    (no partial lines polluting logs). Inert unless {!activate}d — the
    tick path is one atomic read when off.

    Ticks arrive from whichever domain performed the injection (the
    parallel engine's workers call {!tick} directly); all internal state
    is atomic and rendering is rate-limited. *)

val activate : unit -> unit

val phase : string -> unit
(** Announce the pipeline phase currently running (shown as a prefix of
    the progress line). *)

val set_total : int -> unit
(** Total injections expected (the failure-point count), for percentage
    and ETA; unknown (snapshot strategy) shows a plain counter. *)

val tick : ?bug:bool -> unit -> unit
(** One injection completed; [bug] marks oracle-flagged faults so the
    first one's position is pinned on the line. *)

val finish : unit -> unit
(** Close out the live line (forces a final render and a newline when
    anything was drawn) and deactivate. *)
