(** The global telemetry collector: nestable spans, counters and
    histograms, recorded into per-domain buffers and merged
    deterministically at {!drain} time.

    Off by default and provably inert: every recording entry point reads
    one atomic flag and returns immediately when disabled — [span name f]
    is exactly [f ()] — so an instrumented build with no sink configured
    behaves byte-identically to an uninstrumented one (the differential
    test in [test/test_telemetry.ml] asserts this on the seeded-bug
    matrix).

    Concurrency model: mirrors the parallel fault-injection engine. Each
    domain owns a private buffer (reached through [Domain.DLS], registered
    once under a mutex), so recording is contention-free; {!drain} merges
    all buffers sorted by [(track, start, id)] — a deterministic order for
    any schedule, the same rule [Fault_injection] uses for its records. *)

val enabled : unit -> bool

val enable : unit -> unit
(** Turn collection on. The calling domain becomes the main track (the
    lane Chrome-trace labels "main"). *)

val disable : unit -> unit
(** Turn collection off and discard anything buffered. *)

(** An open span, returned by {!begin_span} and closed by {!end_span}.
    Opaque: the buffer it points into is the owning domain's private
    state. *)
type handle

val begin_span : ?cat:string -> ?args:(string * Json.t) list -> string -> handle

val end_span : ?args:(string * Json.t) list -> ?hist:string -> handle -> unit
(** [end_span ?args ?hist h] completes the span opened by [h], appending
    [args] to the ones given at {!begin_span} time; with [hist] the span's
    duration is also recorded into that histogram. A handle from a
    disabled period, or one already swept up by {!drain}, is a no-op. *)

val span :
  ?cat:string ->
  ?args:(string * Json.t) list ->
  ?hist:string ->
  string ->
  (unit -> 'a) ->
  'a
(** [span ?cat ?args ?hist name f] runs [f] inside a span; the span closes
    even when [f] raises (fault injection unwinds with [Crash_now]
    constantly). When collection is off this is exactly [f ()]. *)

val count : string -> int -> unit
(** [count name n] adds [n] to counter [name] on this domain's buffer;
    buffers merge by summation at drain time. *)

val observe : string -> int -> unit
(** [observe name ns] records one nanosecond sample into histogram
    [name]. *)

type dump = {
  spans : Span.t list;  (** sorted by (track, start, id) *)
  counters : (string * int) list;  (** summed across domains, sorted by name *)
  histograms : (string * Histogram.t) list;  (** merged across domains, sorted *)
  base_ns : int;  (** earliest span start; exporters rebase timestamps on it *)
  dump_main_track : int;  (** the track to label "main" *)
}

val empty_dump : dump

val drain : unit -> dump
(** Collect and clear every domain's buffer. Spans still open (a drain in
    the middle of a phase) are closed at the drain timestamp so every
    recorded end has a begin and vice versa. Counters merge by sum,
    histograms by component-wise sum, spans sort by [(track, start, id)] —
    all order-insensitive, so the dump is deterministic regardless of how
    work was scheduled over domains. *)
