(** Log-bucketed latency histograms (nanosecond samples).

    Bucket [i] holds samples [v] with [2^(i-1) <= v < 2^i] (bucket 0 holds
    0 and 1): ~2x resolution over the full 63-bit range in {!buckets}
    fixed cells, so merging is a component-wise sum — associative and
    commutative, which is what lets per-domain histograms from parallel
    injection workers merge deterministically in any order. *)

val buckets : int

(** The record is deliberately concrete: the summary fields ([count],
    [sum], extrema) are the histogram's public statistics and are read
    directly by tests and exporters. Mutate only through {!observe}. *)
type t = {
  counts : int array;  (** [buckets] cells *)
  mutable count : int;
  mutable sum : int;
  mutable min : int;  (** [max_int] when empty *)
  mutable max : int;  (** [min_int] when empty *)
}

val create : unit -> t
val bucket_of : int -> int

val bucket_floor : int -> int
(** Lower bound of bucket [i] (inclusive). *)

val bucket_ceil : int -> int
(** Upper bound of bucket [i] (exclusive). *)

val observe : t -> int -> unit

val merge : t -> t -> t
(** Component-wise sum; neither argument is modified. *)

val copy : t -> t
val equal : t -> t -> bool
val mean : t -> float

val quantile : t -> float -> int
(** Approximate quantile: walks the cumulative bucket counts and reports
    the geometric midpoint of the bucket containing rank [q * count]. *)

val to_json : t -> Json.t
(** Summary encoding used by the JSONL export and the bench result files:
    count, sum, extrema, mean, approximate p50/p90/p99, and the non-empty
    buckets as [[index, count]] pairs. *)

val of_json : Json.t -> t option
(** Inverse of {!to_json} (counts, sum, extrema and buckets round-trip
    exactly); [None] on a malformed or inconsistent document. *)
