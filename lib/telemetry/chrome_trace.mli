(** Chrome trace-event exporter: renders a {!Collector.dump} as the JSON
    object format loadable in Perfetto / [about://tracing].

    Every span becomes one complete ("ph":"X") event with microsecond
    timestamps rebased on the dump's earliest span; every track (= domain)
    becomes one thread lane, named through "M" metadata events — "main"
    for the enabling domain, "worker N" for the injection workers, so a
    [-j 4] run shows four worker lanes under the main pipeline lane. *)

val to_json : Collector.dump -> Json.t
val to_string : Collector.dump -> string

val validate : Json.t -> (int, string) result
(** Structural validity of an (already parsed) trace file: a top-level
    object with a [traceEvents] array whose members all carry the [ph] /
    [ts] / [pid] / [tid] fields the trace-event format requires. Returns
    the event count. Used by the tests and the CI telemetry-validation
    step. *)
