(** Append-only JSONL event log with a versioned schema.

    Line 1 is a header record carrying the schema name and version; every
    following line is one self-describing record ([type] field): spans,
    final counter values, histogram summaries. The format is the
    machine-readable twin of the Chrome trace — grep/jq-friendly, and
    validated structurally by {!validate_string} (the same check CI runs
    on emitted files). *)

val schema_name : string
val schema_version : int

val header : unit -> Json.t
val records : Collector.dump -> Json.t list
val to_string : Collector.dump -> string

val validate_string : string -> (int, string) result
(** Validate a whole JSONL document: a header line with the right schema
    name and version, then well-formed records. Returns the number of
    data records. *)
