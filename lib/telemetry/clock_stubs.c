/* Monotonic time source for the telemetry layer.
 *
 * OCaml's Unix module exposes only gettimeofday (wall clock), which NTP
 * steps can move backwards; span durations and Metrics.measure need a
 * clock that never does. CLOCK_MONOTONIC is POSIX; if the platform lacks
 * it we fall back to the wall clock and report the fact through
 * mumak_clock_is_monotonic so callers can document the degradation. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <stdint.h>
#include <time.h>
#include <sys/time.h>

static int64_t mumak_now_ns(void)
{
#ifdef CLOCK_MONOTONIC
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return (int64_t)tv.tv_sec * 1000000000 + (int64_t)tv.tv_usec * 1000;
  }
}

CAMLprim value mumak_clock_now_ns(value unit)
{
  (void)unit;
  return caml_copy_int64(mumak_now_ns());
}

CAMLprim value mumak_clock_is_monotonic(value unit)
{
  (void)unit;
#ifdef CLOCK_MONOTONIC
  return Val_true;
#else
  return Val_false;
#endif
}
