(** Monotonic clock (nanoseconds since an arbitrary epoch).

    Backed by [clock_gettime(CLOCK_MONOTONIC)] through a tiny C stub; on
    platforms without [CLOCK_MONOTONIC] the stub silently degrades to the
    wall clock ([gettimeofday]) and {!is_monotonic} reports [false] so the
    degradation is visible in exported telemetry headers. *)

external now_ns_i64 : unit -> int64 = "mumak_clock_now_ns"

external is_monotonic_stub : unit -> bool = "mumak_clock_is_monotonic"

let is_monotonic = is_monotonic_stub ()

(** Nanoseconds as a native [int]. 63-bit nanoseconds overflow after
    ~292 years of uptime, so the conversion is safe. *)
let now_ns () = Int64.to_int (now_ns_i64 ())

(** [elapsed_s t0 t1] is the span [t1 - t0] in seconds, clamped at 0 (the
    clamp only matters under the wall-clock fallback, where an NTP step
    could otherwise produce a negative duration). *)
let elapsed_s t0 t1 = Float.max 0. (float_of_int (t1 - t0) /. 1e9)

let source = if is_monotonic then "monotonic" else "wall"
