(** Chrome trace-event exporter: renders a {!Collector.dump} as the JSON
    object format loadable in Perfetto / [about://tracing].

    Every span becomes one complete ("ph":"X") event with microsecond
    timestamps rebased on the dump's earliest span; every track (= domain)
    becomes one thread lane, named through "M" metadata events — "main"
    for the enabling domain, "worker N" for the injection workers, so a
    [-j 4] run shows four worker lanes under the main pipeline lane. *)

let us_of_ns ns = float_of_int ns /. 1e3

let track_names (d : Collector.dump) =
  let tracks =
    List.sort_uniq compare (List.map (fun (s : Span.t) -> s.Span.track) d.Collector.spans)
  in
  let worker = ref 0 in
  List.map
    (fun t ->
      if t = d.Collector.dump_main_track then (t, "main")
      else begin
        incr worker;
        (t, Printf.sprintf "worker %d" !worker)
      end)
    tracks

let to_json (d : Collector.dump) =
  let meta =
    Json.Assoc
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("ts", Json.Int 0);
        ("pid", Json.Int 1);
        ("tid", Json.Int 0);
        ("args", Json.Assoc [ ("name", Json.String "mumak") ]);
      ]
    :: List.map
         (fun (track, label) ->
           Json.Assoc
             [
               ("name", Json.String "thread_name");
               ("ph", Json.String "M");
               ("ts", Json.Int 0);
               ("pid", Json.Int 1);
               ("tid", Json.Int track);
               ("args", Json.Assoc [ ("name", Json.String label) ]);
             ])
         (track_names d)
  in
  let events =
    List.map
      (fun (s : Span.t) ->
        Json.Assoc
          [
            ("name", Json.String s.Span.name);
            ("cat", Json.String (if s.Span.cat = "" then "mumak" else s.Span.cat));
            ("ph", Json.String "X");
            ("ts", Json.Float (us_of_ns (s.Span.start_ns - d.Collector.base_ns)));
            ("dur", Json.Float (us_of_ns s.Span.dur_ns));
            ("pid", Json.Int 1);
            ("tid", Json.Int s.Span.track);
            ("args", Json.Assoc s.Span.args);
          ])
      d.Collector.spans
  in
  Json.Assoc
    [
      ("traceEvents", Json.List (meta @ events));
      ("displayTimeUnit", Json.String "ms");
      ("otherData", Json.Assoc [ ("clock", Json.String Clock.source) ]);
    ]

let to_string d = Json.to_string (to_json d)

(** Structural validity of an (already parsed) trace file: a top-level
    object with a [traceEvents] array whose members all carry the [ph] /
    [ts] / [pid] / [tid] fields the trace-event format requires. Used by
    the tests and the CI telemetry-validation step. *)
let validate (json : Json.t) : (int, string) result =
  match Json.member "traceEvents" json with
  | None -> Error "missing traceEvents"
  | Some events -> (
      match Json.to_list_opt events with
      | None -> Error "traceEvents is not an array"
      | Some events ->
          let bad =
            List.find_map
              (fun ev ->
                let has_string f = Option.bind (Json.member f ev) Json.to_string_opt in
                let has_num f = Option.bind (Json.member f ev) Json.to_float_opt in
                if has_string "ph" = None then Some "event without ph"
                else if has_num "ts" = None then Some "event without numeric ts"
                else if has_num "pid" = None then Some "event without pid"
                else if has_num "tid" = None then Some "event without tid"
                else if has_string "name" = None then Some "event without name"
                else None)
              events
          in
          (match bad with
          | Some msg -> Error msg
          | None -> Ok (List.length events)))
