(** Live progress reporter for the injection loop: a single stderr line
    redrawn in place with injections/sec, ETA, and a first-bug marker.

    TTY-aware: with [--progress] on a terminal the line is redrawn with
    [\r]; when stderr is redirected the reporter stays completely silent
    (no partial lines polluting logs). Inert unless {!activate}d — the
    tick path is one atomic read when off.

    Ticks arrive from whichever domain performed the injection (the
    parallel engine's workers call {!tick} directly), so all state is
    atomic and rendering is rate-limited and mutex-protected. *)

let active = Atomic.make false
let total = Atomic.make 0
let done_count = Atomic.make 0
let bug_count = Atomic.make 0
let first_bug = Atomic.make 0 (* tick ordinal of the first bug; 0 = none yet *)
let start_ns = Atomic.make 0
let last_render_ns = Atomic.make 0
let rendered = Atomic.make false
let render_mu = Mutex.create ()
let phase_name = ref "" (* written under render_mu *)

let min_render_interval_ns = 50_000_000 (* 20 Hz cap *)

let is_tty = lazy (Unix.isatty Unix.stderr)

let activate () =
  Atomic.set total 0;
  Atomic.set done_count 0;
  Atomic.set bug_count 0;
  Atomic.set first_bug 0;
  Atomic.set start_ns (Clock.now_ns ());
  Atomic.set last_render_ns 0;
  Atomic.set rendered false;
  Atomic.set active true

let render_line () =
  let d = Atomic.get done_count and t = Atomic.get total in
  let elapsed = Clock.elapsed_s (Atomic.get start_ns) (Clock.now_ns ()) in
  let rate = if elapsed > 0. then float_of_int d /. elapsed else 0. in
  let eta =
    if t > 0 && rate > 0. && d < t then
      Printf.sprintf " eta %.1fs" (float_of_int (t - d) /. rate)
    else ""
  in
  let frac = if t > 0 then Printf.sprintf "/%d (%.0f%%)" t (100. *. float_of_int d /. float_of_int t) else "" in
  let bug =
    match Atomic.get first_bug with
    | 0 -> ""
    | n -> Printf.sprintf " first-bug@#%d (%d bug%s)" n (Atomic.get bug_count)
             (if Atomic.get bug_count = 1 then "" else "s")
  in
  Mutex.lock render_mu;
  let phase = if !phase_name = "" then "" else Printf.sprintf "[%s] " !phase_name in
  Printf.eprintf "\r\027[2K[mumak] %sinjections %d%s %.1f/s%s%s" phase d frac rate eta bug;
  flush stderr;
  Atomic.set rendered true;
  Mutex.unlock render_mu

let maybe_render () =
  if Lazy.force is_tty then begin
    let now = Clock.now_ns () in
    let last = Atomic.get last_render_ns in
    if now - last >= min_render_interval_ns
       && Atomic.compare_and_set last_render_ns last now
    then render_line ()
  end

(** Announce the pipeline phase currently running (shown as a prefix of
    the progress line). *)
let phase name =
  if Atomic.get active then begin
    Mutex.lock render_mu;
    phase_name := name;
    Mutex.unlock render_mu;
    maybe_render ()
  end

(** Total injections expected (the failure-point count), for percentage
    and ETA; unknown (snapshot strategy) shows a plain counter. *)
let set_total n = if Atomic.get active then Atomic.set total n

(** One injection completed; [bug] marks oracle-flagged faults so the
    first one's position is pinned on the line. *)
let tick ?(bug = false) () =
  if Atomic.get active then begin
    let n = 1 + Atomic.fetch_and_add done_count 1 in
    if bug then begin
      ignore (Atomic.fetch_and_add bug_count 1);
      ignore (Atomic.compare_and_set first_bug 0 n)
    end;
    maybe_render ()
  end

(** Close out the live line (forces a final render and a newline when
    anything was drawn) and deactivate. *)
let finish () =
  if Atomic.get active then begin
    if Lazy.force is_tty then render_line ();
    if Atomic.get rendered then begin
      Printf.eprintf "\n";
      flush stderr
    end;
    Atomic.set active false
  end
