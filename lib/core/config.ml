(** Analysis configuration. The defaults match the paper's design choices;
    the alternatives exist for the ablation benchmarks. *)

type granularity =
  | Persistency_instruction
      (** failure points at flushes/fences only (the paper's choice) *)
  | Store_level  (** failure points at every PM store (the ablation) *)

type strategy =
  | Replay
      (** record the workload once, materialize every failure point's crash
          image offline from that single recording in one batched
          prefix-incremental replay pass, and stream the oracle over the
          images; live re-execution remains only as a per-point fallback
          for points the recording cannot reach (the default) *)
  | Snapshot
      (** capture the crash image at first visit during a single execution
          (simulator-only optimisation) *)
  | Reexecute
      (** re-run the workload once per failure point, as the original Mumak
          does (cost-faithful; used by the benchmarks) *)

type t = {
  granularity : granularity;
  strategy : strategy;
  report_warnings : bool;  (** include the warning classes in the report *)
  resolve_stacks : bool;
      (** run the extra minimally-instrumented execution that attaches call
          stacks to trace-analysis findings (paper section 5) *)
  detect_dirty_overwrites : bool;
      (** also flag stores overwriting unpersisted data (off by default: in
          undo-logged code this pattern is routine inside transactions) *)
  eadr : bool;
      (** analyse for an eADR platform (persistence domain extends to the
          CPU caches, paper sections 2 and 4.3): fault injection is
          unchanged — atomicity/ordering bugs survive eADR — but the trace
          analysis stops reporting unflushed stores as durability bugs *)
  max_failure_points : int option;  (** cap for very large targets *)
  static : bool;
      (** run the offline persistency dependency-graph analyzer over
          recorded traces before the dynamic phases: builds per-cacheline
          store→flush→fence lineages, mines likely ordering/atomicity
          invariants across [invariant_runs] executions, and attaches fix
          suggestions to its findings *)
  prioritize : bool;
      (** reorder the [Reexecute] injection loop so failure points whose
          first occurrence falls inside a statically-suspicious window are
          injected first (invariant-guided prioritization). Requires
          [static]; ignored under [Snapshot]. *)
  invariant_runs : int;
      (** executions (with distinct workload seeds) the invariant miner
          observes; more runs raise support counts and kill noise *)
  invariant_support : int;
      (** minimum dynamic instances before a candidate invariant is kept *)
  invariant_confidence : float;
      (** minimum fraction of instances that must satisfy a candidate
          atomicity invariant for it to be reported when violated *)
  jobs : int;
      (** worker domains for the [Replay] and [Reexecute] injection loops.
          Each fault injection is independent — a materialization pass over
          the shared immutable recording, or a re-execution against its own
          device — so the loop is embarrassingly parallel; [jobs > 1]
          partitions the failure-point leaves round-robin over that many
          domains and merges the records deterministically (sorted by
          discovery ordinal). [1] (the default) is the sequential loop;
          the [Snapshot] strategy ignores this field (single execution). *)
  lint : bool;
      (** run the epoch-based anti-pattern detectors (redundant/duplicate
          flushes, redundant fences, missing-flush hot spots) over a
          recorded trace and add their findings to the report *)
  verify_fixes : bool;
      (** verify every fix suggestion (static and lint) by rewriting the
          recorded trace, replaying it, and re-running the oracle and the
          detectors: verdicts proven / ineffective / harmful. Costs two
          extra instrumented executions (replay recordings) and replays —
          never target re-executions. *)
  absint : bool;
      (** abstract-interpret a control-flow automaton merged from
          [invariant_runs] recordings with a per-cache-line persistency
          lattice: reports missing-flush/missing-fence/ordering findings on
          merged paths no single recording exercised (each with a concrete
          path witness) and proves failure-point sites safe for [prune] *)
  prune : bool;
      (** skip a fault injection when the abstract fixpoint proves the
          failure point safe on every merged path AND the point's replayed
          crash image passes the recovery oracle offline — sound by
          construction: only injections whose records are known to be
          consistent (contributing no finding) are elided. Under [Replay]
          the confirmation folds into the injection pass itself (each
          point's oracle outcome is computed anyway); under [Reexecute] all
          nominees are confirmed in one batched materialization pass over
          the shared recording. Requires [absint]; ignored under
          [Snapshot]. *)
  optimize : bool;
      (** synthesize persist-transformation plans (fence batching, flush
          coalescing/hoisting, non-temporal and clwb conversions) over the
          recorded trace, price them with the cost model, and verify each
          candidate by replay at all failure points of the rewritten trace
          under both crash views; only proven plans ship as the ranked
          patch bundle. Costs replays over the shared recording, never
          extra target executions. *)
  fit_cost : bool;
      (** fit the optimizer's cost weights from a timed replay of the
          recording instead of the deterministic static table; only plan
          rankings change, never verdicts *)
}

let default =
  {
    granularity = Persistency_instruction;
    strategy = Replay;
    report_warnings = true;
    resolve_stacks = true;
    detect_dirty_overwrites = false;
    eadr = false;
    max_failure_points = None;
    static = false;
    prioritize = false;
    invariant_runs = 2;
    invariant_support = 3;
    invariant_confidence = 0.9;
    jobs = 1;
    lint = false;
    verify_fixes = false;
    absint = false;
    prune = false;
    optimize = false;
    fit_cost = false;
  }

let granularity_name = function
  | Persistency_instruction -> "persistency_instruction"
  | Store_level -> "store_level"

let strategy_name = function
  | Replay -> "replay"
  | Snapshot -> "snapshot"
  | Reexecute -> "reexecute"

(** Machine encoding of a configuration, embedded in bench results and
    telemetry exports so a recorded run is reproducible from its output
    alone. *)
let to_json t =
  let open Telemetry.Json in
  Assoc
    [
      ("granularity", String (granularity_name t.granularity));
      ("strategy", String (strategy_name t.strategy));
      ("report_warnings", Bool t.report_warnings);
      ("resolve_stacks", Bool t.resolve_stacks);
      ("detect_dirty_overwrites", Bool t.detect_dirty_overwrites);
      ("eadr", Bool t.eadr);
      ( "max_failure_points",
        match t.max_failure_points with None -> Null | Some n -> Int n );
      ("static", Bool t.static);
      ("prioritize", Bool t.prioritize);
      ("invariant_runs", Int t.invariant_runs);
      ("invariant_support", Int t.invariant_support);
      ("invariant_confidence", Float t.invariant_confidence);
      ("jobs", Int t.jobs);
      ("lint", Bool t.lint);
      ("verify_fixes", Bool t.verify_fixes);
      ("absint", Bool t.absint);
      ("prune", Bool t.prune);
      ("optimize", Bool t.optimize);
      ("fit_cost", Bool t.fit_cost);
    ]

(** [default] plus the full static pipeline: dependency-graph analysis,
    invariant mining, fix suggestions and invariant-guided prioritization
    of the re-execution injection loop. *)
let static_analysis = { default with strategy = Reexecute; static = true; prioritize = true }

(** The lint pipeline: anti-pattern detectors plus verified fix
    suggestions, alongside the default dynamic phases. *)
let linting = { default with lint = true; verify_fixes = true }

(** The merged-trace abstract interpreter plus confirmed failure-point
    pruning over the re-execution injection loop. *)
let path_sensitive = { default with strategy = Reexecute; absint = true; prune = true }

(** The optimizer pipeline: the lint detectors and the merged-trace
    abstract interpreter feed plan synthesis, and every plan is
    replay-verified — all off the single shared recording, so the run
    still costs one target execution. *)
let optimizing = { default with lint = true; absint = true; optimize = true }

(** The configuration the benchmarks use to mirror the original system's
    cost model. *)
let faithful = { default with strategy = Reexecute }

(** [faithful] with the injection loop spread over [jobs] worker domains —
    the paper's parallel deployment of the re-execution strategy. *)
let parallel jobs = { faithful with jobs = max 1 jobs }
