(** Bug reports: unique findings with the code path that leads to them
    (Table 3's ergonomics criteria: complete bug path, unique bugs only). *)

type kind =
  | Unrecoverable_state  (** fault injection: recovery rejected the state *)
  | Recovery_crash  (** fault injection: recovery itself crashed *)
  | Durability_bug  (** trace analysis: store never persisted *)
  | Redundant_flush
  | Redundant_fence
  | Dirty_overwrite
  | Transient_data_warning
  | Multi_store_flush_warning
  | Unordered_flushes_warning
  | Ordering_violation
      (** static analysis: a likely persist-ordering invariant is violated *)
  | Atomicity_violation
      (** static analysis: locations that usually persist atomically were split *)
  | Missing_flush_warning
      (** lint: a fence leaves a line dirty that is never flushed afterwards *)
  | Missing_fence_warning
      (** abstract interpretation: a flush can reach the end of execution
          with no fence draining it on some merged path *)

val kind_is_warning : kind -> bool
val kind_is_correctness : kind -> bool
val kind_to_string : kind -> string

type phase = Fault_injection | Trace_analysis | Static_analysis | Abs_interp | Lint

val phase_to_string : phase -> string

type finding = {
  kind : kind;
  phase : phase;
  stack : Pmtrace.Callstack.capture option;  (** code path to the bug *)
  seq : int option;  (** instruction counter of the offending instruction *)
  detail : string;
  fix : Analysis.Fix.t option;
      (** suggested repair (static analysis findings only) *)
}

type t

val create : target:string -> t

val add : t -> finding -> bool
(** Record a finding unless an equivalent one (same kind, same code path)
    is already present; returns whether it was new. *)

val findings : t -> finding list
(** Insertion order (the combination order the engine chose). *)

val ordered : t -> finding list
(** Deterministic rendering order across phases: sorted by (phase, frame
    anchor, ordinal, kind), detail as the final tiebreak. {!pp} renders in
    this order so the printed report never depends on insertion order. *)

val bugs : t -> finding list
val warnings : t -> finding list
val correctness_bugs : t -> finding list
val performance_bugs : t -> finding list

val merge : into:t -> t -> unit

val finding_signature : finding -> string
(** One finding's entry in {!signature}: the dedup key plus the full detail
    text. The stable per-finding identity the results store keys provenance
    records and cross-run diffs on. *)

val signature : t -> string list
(** Canonical content signature: the sorted dedup key + detail of every
    finding. Reports with equal signatures contain byte-for-byte the same
    unique findings — the equality the differential tests assert across
    injection strategies and worker counts. *)

val equal : t -> t -> bool
(** [equal a b] iff the two reports have identical signatures. *)

val annotate : t -> finding -> string -> unit
(** Attach a note (a fix verdict, say) rendered under the finding by {!pp}.
    Annotations live in a side-table: they arrive after deduplication and
    do not perturb {!signature}. *)

val annotation : t -> finding -> string option

val pp_finding : Format.formatter -> finding -> unit
val pp : Format.formatter -> t -> unit
