(** The PM bug taxonomy of paper section 2, and the tool-capability matrix
    of Table 1. *)

type bug_class =
  | Durability  (** a store that never becomes durable before it is needed *)
  | Atomicity  (** a multi-store update a crash can leave half-applied *)
  | Ordering  (** stores that may persist in an order recovery cannot handle *)
  | Redundant_flush  (** performance: flushing a clean or volatile line *)
  | Redundant_fence  (** performance: a fence with nothing pending *)
  | Transient_data  (** PM used as scratch space, never persisted at all *)

val all_classes : bug_class list
(** Every class, in the column order of Table 1. *)

val class_to_string : bug_class -> string

val is_correctness : bug_class -> bool
(** Durability, atomicity and ordering bugs corrupt recoverable state; the
    rest waste cycles or memory but cannot lose data. *)

type support = No | Yes | With_annotations | Conflated
    (** How a tool supports a capability: natively, only with manual
        annotations, or conflated with another class (pmemcheck and
        PMDebugger report transient data as durability bugs). *)

type tool_profile = {
  tool : string;
  coverage : (bug_class * support) list;
      (** classes absent from the list are [No] *)
  application_agnostic : bool;
      (** no per-application annotations or drivers required *)
  library_agnostic : bool;  (** not tied to one PM library's API *)
}

val table1 : tool_profile list
(** Table 1, row by row: pmemcheck, PMTest, XFDetector, PMDebugger, Yat,
    Jaaru, Agamotto, Witcher, Mumak. *)

val support_to_string : support -> string
(** ["Y"], ["Y*"] (annotations) or ["Y+"] (conflated); empty for [No]. *)

val pp_table1 : Format.formatter -> unit -> unit
(** Render the capability matrix as the paper formats it. *)
