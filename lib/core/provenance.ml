(** Per-finding causal evidence, captured at the moment a finding is
    produced and serialized into the run ledger ([Store]): the failure
    point that was injected, the trace window around the offending
    instruction, the witness (oracle verdict, absint path witness, mined
    invariant or lint rationale) that nominated the finding, and — for
    fault-injection bugs — the crash-image vs recovered-image byte diff at
    cache-line granularity.

    Everything here is plain data plus [Telemetry.Json] codecs; the capture
    itself happens in [Engine.analyze], which owns the recording, the
    injection records and the oracle. *)

module Json = Telemetry.Json

let cache_line = 64

(** How many differing cache lines the image diff retains verbatim; the
    count of differing lines is always exact. *)
let diff_line_cap = 8

(** Events rendered on each side of the anchor in a trace window. *)
let window_radius = 3

type diff_line = {
  dl_line : int;  (** cache-line index (byte offset = index * 64) *)
  dl_crash : string;  (** hex of the 64 crash-image bytes *)
  dl_recovered : string;  (** hex of the same line after recovery *)
}

type image_diff = {
  id_lines : diff_line list;  (** first {!diff_line_cap} differing lines *)
  id_differing : int;  (** total differing cache lines (exact) *)
  id_capped : bool;  (** true when [id_differing > List.length id_lines] *)
}

type failure_point = {
  fp_path : string list;  (** frame path of the injected point *)
  fp_op_index : int;  (** per-frame instruction index *)
  fp_ordinal : int;  (** discovery ordinal in the failure-point tree *)
  fp_pseq : int option;  (** persistency index, when a recording located it *)
}

type t = {
  p_finding : string;  (** digest of the finding's signature entry (the id) *)
  p_signature : string;  (** the {!Report.finding_signature} entry itself *)
  p_kind : string;
  p_phase : string;
  p_detail : string;
  p_stack : (string list * int) option;  (** capture path and op index *)
  p_seq : int option;
  p_failure_point : failure_point option;  (** fault-injection findings *)
  p_window : string list;  (** rendered trace events around the anchor *)
  p_witness : string;
      (** what nominated the finding: the oracle's verdict text, the absint
          path witness, the violated invariant, or the lint rationale *)
  p_verdict : string option;  (** oracle outcome or replay-backed fix verdict *)
  p_fix : string option;  (** suggested repair, rendered *)
  p_image_diff : image_diff option;  (** crash vs recovered bytes (FI bugs) *)
}

let id_of_signature s = Digest.to_hex (Digest.string s)

(* ------------------------------------------------------------------ *)
(* Image diff                                                          *)
(* ------------------------------------------------------------------ *)

let hex_of_bytes b =
  let buf = Buffer.create (2 * Bytes.length b) in
  Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
  Buffer.contents buf

(** Cache-line-granular diff of two equally-sized images: every differing
    line is counted, the first {!diff_line_cap} are kept with both sides'
    bytes rendered as hex. *)
let image_diff ~crash ~recovered =
  let size = min (Pmem.Image.size crash) (Pmem.Image.size recovered) in
  let lines = size / cache_line in
  let differing = ref 0 in
  let kept = ref [] in
  for line = 0 to lines - 1 do
    let addr = line * cache_line in
    let a = Pmem.Image.read crash ~addr ~size:cache_line in
    let b = Pmem.Image.read recovered ~addr ~size:cache_line in
    if not (Bytes.equal a b) then begin
      incr differing;
      if !differing <= diff_line_cap then
        kept :=
          { dl_line = line; dl_crash = hex_of_bytes a; dl_recovered = hex_of_bytes b }
          :: !kept
    end
  done;
  {
    id_lines = List.rev !kept;
    id_differing = !differing;
    id_capped = !differing > diff_line_cap;
  }

(* ------------------------------------------------------------------ *)
(* JSON codecs                                                         *)
(* ------------------------------------------------------------------ *)

let opt_string = function None -> Json.Null | Some s -> Json.String s
let opt_int = function None -> Json.Null | Some n -> Json.Int n

let diff_to_json d =
  Json.Assoc
    [
      ( "lines",
        Json.List
          (List.map
             (fun l ->
               Json.Assoc
                 [
                   ("line", Json.Int l.dl_line);
                   ("crash", Json.String l.dl_crash);
                   ("recovered", Json.String l.dl_recovered);
                 ])
             d.id_lines) );
      ("differing", Json.Int d.id_differing);
      ("capped", Json.Bool d.id_capped);
    ]

let fp_to_json fp =
  Json.Assoc
    [
      ("path", Json.List (List.map (fun f -> Json.String f) fp.fp_path));
      ("op_index", Json.Int fp.fp_op_index);
      ("ordinal", Json.Int fp.fp_ordinal);
      ("pseq", opt_int fp.fp_pseq);
    ]

let to_json p =
  Json.Assoc
    [
      ("finding_id", Json.String p.p_finding);
      ("signature", Json.String p.p_signature);
      ("kind", Json.String p.p_kind);
      ("phase", Json.String p.p_phase);
      ("detail", Json.String p.p_detail);
      ( "stack",
        match p.p_stack with
        | None -> Json.Null
        | Some (path, op_index) ->
            Json.Assoc
              [
                ("path", Json.List (List.map (fun f -> Json.String f) path));
                ("op_index", Json.Int op_index);
              ] );
      ("seq", opt_int p.p_seq);
      ( "failure_point",
        match p.p_failure_point with None -> Json.Null | Some fp -> fp_to_json fp );
      ("window", Json.List (List.map (fun l -> Json.String l) p.p_window));
      ("witness", Json.String p.p_witness);
      ("verdict", opt_string p.p_verdict);
      ("fix", opt_string p.p_fix);
      ( "image_diff",
        match p.p_image_diff with None -> Json.Null | Some d -> diff_to_json d );
    ]

let ( let* ) = Result.bind

let str_field j k =
  match Option.bind (Json.member k j) Json.to_string_opt with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing string field %S" k)

let int_field j k =
  match Option.bind (Json.member k j) Json.to_int_opt with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "missing integer field %S" k)

let opt_str_field j k =
  match Json.member k j with
  | None | Some Json.Null -> Ok None
  | Some (Json.String s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string or null" k)

let opt_int_field j k =
  match Json.member k j with
  | None | Some Json.Null -> Ok None
  | Some (Json.Int n) -> Ok (Some n)
  | Some _ -> Error (Printf.sprintf "field %S must be an integer or null" k)

let string_list_field j k =
  match Option.bind (Json.member k j) Json.to_list_opt with
  | None -> Error (Printf.sprintf "missing list field %S" k)
  | Some items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Json.String s :: rest -> go (s :: acc) rest
        | _ -> Error (Printf.sprintf "field %S must hold strings" k)
      in
      go [] items

let diff_of_json j =
  let* lines =
    match Option.bind (Json.member "lines" j) Json.to_list_opt with
    | None -> Error "image_diff without a lines array"
    | Some items ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | item :: rest ->
              let* line = int_field item "line" in
              let* crash = str_field item "crash" in
              let* recovered = str_field item "recovered" in
              go ({ dl_line = line; dl_crash = crash; dl_recovered = recovered } :: acc)
                rest
        in
        go [] items
  in
  let* differing = int_field j "differing" in
  let* capped =
    match Json.member "capped" j with
    | Some (Json.Bool b) -> Ok b
    | _ -> Error "image_diff without a boolean capped field"
  in
  Ok { id_lines = lines; id_differing = differing; id_capped = capped }

let fp_of_json j =
  let* path = string_list_field j "path" in
  let* op_index = int_field j "op_index" in
  let* ordinal = int_field j "ordinal" in
  let* pseq = opt_int_field j "pseq" in
  Ok { fp_path = path; fp_op_index = op_index; fp_ordinal = ordinal; fp_pseq = pseq }

let of_json j =
  let* finding = str_field j "finding_id" in
  let* signature = str_field j "signature" in
  let* kind = str_field j "kind" in
  let* phase = str_field j "phase" in
  let* detail = str_field j "detail" in
  let* stack =
    match Json.member "stack" j with
    | None | Some Json.Null -> Ok None
    | Some s ->
        let* path = string_list_field s "path" in
        let* op_index = int_field s "op_index" in
        Ok (Some (path, op_index))
  in
  let* seq = opt_int_field j "seq" in
  let* failure_point =
    match Json.member "failure_point" j with
    | None | Some Json.Null -> Ok None
    | Some fp -> Result.map Option.some (fp_of_json fp)
  in
  let* window = string_list_field j "window" in
  let* witness = str_field j "witness" in
  let* verdict = opt_str_field j "verdict" in
  let* fix = opt_str_field j "fix" in
  let* image_diff =
    match Json.member "image_diff" j with
    | None | Some Json.Null -> Ok None
    | Some d -> Result.map Option.some (diff_of_json d)
  in
  Ok
    {
      p_finding = finding;
      p_signature = signature;
      p_kind = kind;
      p_phase = phase;
      p_detail = detail;
      p_stack = stack;
      p_seq = seq;
      p_failure_point = failure_point;
      p_window = window;
      p_witness = witness;
      p_verdict = verdict;
      p_fix = fix;
      p_image_diff = image_diff;
    }

let equal a b = to_json a = to_json b
