(** The Mumak pipeline (Figure 1): instrument, execute, inject faults with
    the recovery oracle, analyse the trace, and emit one combined report of
    unique bugs and warnings. *)

(** Output of the abstract-interpretation phase: the fixpoint analysis
    itself plus, when [Config.prune] was on, the failure-point prune plan
    the injection loop honoured. *)
type absint = {
  analysis : Analysis.Absint.t;
  prune : Analysis.Prune.plan option;
}

type result = {
  report : Report.t;
  failure_points : int;
  injections : int;
  executions : int;  (** instrumented workload executions performed *)
  trace_events : int;
  pm_stats : Pmem.Stats.t;
  metrics : Metrics.t;
  fi_metrics : Metrics.t;
  ta_metrics : Metrics.t;
  sa_metrics : Metrics.t;
      (** static-analysis phase (recordings + graph/invariant mining);
          [Metrics.zero] when [Config.static] is off *)
  static : Analysis.Static.t option;
      (** the static analyzer's output (graphs, invariants, raw findings)
          when [Config.static] was on *)
  absint : absint option;
      (** merged-CFG abstract interpreter output (and prune plan) when
          [Config.absint] or [Config.prune] was on *)
  ai_metrics : Metrics.t;
      (** abstract-interpretation phase (recordings + fixpoint + prune
          confirmation); [Metrics.zero] when the phase is off *)
  lint : Analysis.Lint.t option;
      (** anti-pattern detector output when [Config.lint] or
          [Config.verify_fixes] was on (verification replays lint too) *)
  fix_verdicts : Analysis.Verify_fix.t option;
      (** replay-backed verdict for every fix suggestion when
          [Config.verify_fixes] was on *)
  opt : Analysis.Opt.t option;
      (** the optimizer's verified transformation bundles when
          [Config.optimize] was on *)
  opt_metrics : Metrics.t;
      (** optimize phase (synthesis + replay verification);
          [Metrics.zero] when the phase is off *)
  first_bug_injection : int option;
      (** 1-based position in the injection schedule of the first fault
          whose oracle flagged a bug; [None] when fault injection found
          nothing — the time-to-first-bug metric of [bench prioritized] *)
  worker_metrics : Metrics.t list;
      (** per-domain breakdown of the parallel injection phase; empty when
          the injection ran sequentially *)
  trace_signature : string;
      (** digest of the recorded event stream (or of the trace-level
          counters when no recording was made) — the workload-identity
          component of the run ledger's content address *)
  provenance : Provenance.t list;
      (** causal evidence per finding, in {!Report.ordered} order: failure
          point, trace window, witness, oracle verdict and crash-vs-
          recovered image diff where applicable *)
}

(* Re-run the target once with minimal instrumentation to attach call
   stacks to the trace-analysis findings (the instruction-counter
   optimisation of paper section 5). *)
let resolve_stacks (target : Target.t) ~wanted =
  let want = Hashtbl.create (List.length wanted) in
  List.iter (fun s -> Hashtbl.replace want s ()) wanted;
  let resolved = Hashtbl.create (List.length wanted) in
  if Hashtbl.length want > 0 then begin
    let device = Pmem.Device.create ~size:target.Target.pool_size () in
    let tracer = Pmtrace.Tracer.create ~collect:false device in
    Pmtrace.Tracer.add_listener tracer (fun event stack ->
        if Hashtbl.mem want event.Pmtrace.Event.seq then
          Hashtbl.replace resolved event.Pmtrace.Event.seq (Pmtrace.Callstack.capture stack));
    target.Target.run ~device
      ~framer:(Pmtrace.Framer.of_callstack (Pmtrace.Tracer.stack tracer));
    Pmtrace.Tracer.detach tracer
  end;
  resolved

let oracle_finding (r : Fault_injection.record) =
  let kind, detail =
    match r.Fault_injection.oracle with
    | Oracle.Consistent -> assert false
    | Oracle.Unrecoverable msg -> (Report.Unrecoverable_state, msg)
    | Oracle.Crashed msg -> (Report.Recovery_crash, msg)
  in
  {
    Report.kind;
    phase = Report.Fault_injection;
    stack = Some r.Fault_injection.point.Fp_tree.capture;
    seq = None;
    detail;
    fix = None;
  }

(* One fully-instrumented recording for the static analyzer: stacks on
   every event; [loads] additionally traces PM loads (shifting seq, which
   is why the analyzer keeps persistency-index coordinates). *)
let record_trace ?(loads = false) ~eadr (target : Target.t) =
  let device = Pmem.Device.create ~eadr ~size:target.Target.pool_size () in
  if loads then Pmem.Device.trace_loads device true;
  let tracer = Pmtrace.Tracer.create ~collect:true ~with_stacks:true device in
  target.Target.run ~device ~framer:(Pmtrace.Framer.of_callstack (Pmtrace.Tracer.stack tracer));
  Pmtrace.Tracer.detach tracer;
  Pmtrace.Trace.to_list (Pmtrace.Tracer.trace tracer)

let static_kind_to_report : Analysis.Static.kind -> Report.kind = function
  | Analysis.Static.Durability -> Report.Durability_bug
  | Analysis.Static.Transient -> Report.Transient_data_warning
  | Analysis.Static.Ordering -> Report.Ordering_violation
  | Analysis.Static.Atomicity -> Report.Atomicity_violation
  | Analysis.Static.Redundant_flush -> Report.Redundant_flush
  | Analysis.Static.Redundant_fence -> Report.Redundant_fence

(* Abstract findings live on merged paths no single recording need have
   exercised, so — like the static analyzer's — they are warnings: the
   over-approximation must not flip a clean target's exit code. *)
let absint_kind_to_report : Analysis.Absint.kind -> Report.kind = function
  | Analysis.Absint.Missing_flush -> Report.Missing_flush_warning
  | Analysis.Absint.Missing_fence -> Report.Missing_fence_warning
  | Analysis.Absint.Ordering -> Report.Ordering_violation

let lint_kind_to_report : Analysis.Lint.kind -> Report.kind = function
  | Analysis.Lint.Duplicate_flush | Analysis.Lint.Unnecessary_flush
  | Analysis.Lint.Nt_flush_misuse -> Report.Redundant_flush
  | Analysis.Lint.Redundant_fence -> Report.Redundant_fence
  | Analysis.Lint.Missing_flush -> Report.Missing_flush_warning

(* The verifier and the optimizer are parameterized over the oracle and
   failure-point enumerator so [Analysis] stays below the engine in the
   dependency order; these closures plug the engine's own back in. *)
let image_oracle config (target : Target.t) img =
  let device = Pmem.Device.of_image ~eadr:config.Config.eadr img in
  match Oracle.classify target.Target.recover device with
  | Oracle.Consistent -> None
  | Oracle.Unrecoverable msg -> Some (Report.kind_to_string Report.Unrecoverable_state, msg)
  | Oracle.Crashed msg -> Some (Report.kind_to_string Report.Recovery_crash, msg)

let verify_candidates config (target : Target.t) ~invariants ~noload ~loaded candidates =
  let points events = Fault_injection.offline_points config events in
  Analysis.Verify_fix.verify ?invariants ~support:config.Config.invariant_support
    ~confidence:config.Config.invariant_confidence ~eadr:config.Config.eadr
    ~oracle:(image_oracle config target) ~points ~noload ~loaded candidates

let analyze ?(config = Config.default) (target : Target.t) =
  let report = Report.create ~target:target.Target.name in
  let ta = Trace_analysis.create config in
  let ta_feed event _stack = Trace_analysis.feed ta event in
  (* The shared replay recording: under [Config.Replay] — and for every
     offline phase regardless of strategy — the target is recorded once and
     each consumer reads the recording instead of re-executing. Created
     lazily inside the first phase that needs it (so its cost lands in that
     phase's metrics) and counted as one instrumented execution. *)
  let recording_ref = ref None in
  let rec_executions = ref 0 in
  let recording () =
    match !recording_ref with
    | Some r -> r
    | None ->
        let r =
          Pmtrace.Replay.record ~loads:false ~eadr:config.Config.eadr
            ~pool_size:target.Target.pool_size (fun ~device ~framer ->
              target.Target.run ~device ~framer)
        in
        incr rec_executions;
        recording_ref := Some r;
        r
  in
  (* Phase 0 (optional): offline static analysis over recorded traces —
     dependency graphs, invariant mining, fix suggestions, and the
     invariant-guided priority over failure points. *)
  let static_result, static_noload, priority, sa_metrics, static_executions =
    if not config.Config.static then (None, None, None, Metrics.zero, 0)
    else begin
      Telemetry.Progress.phase "static";
      let runs = max 1 config.Config.invariant_runs in
      let (recordings, static_r), sa_metrics =
        Metrics.measure (fun () ->
            Telemetry.Collector.span ~cat:"phase" "static_analysis" @@ fun () ->
            let recordings =
              List.init runs (fun _ ->
                  let noload = record_trace ~loads:false ~eadr:config.Config.eadr target in
                  let loaded = record_trace ~loads:true ~eadr:config.Config.eadr target in
                  (noload, loaded))
            in
            let s =
              Analysis.Static.analyze ~support:config.Config.invariant_support
                ~confidence:config.Config.invariant_confidence ~eadr:config.Config.eadr
                recordings
            in
            (recordings, s))
      in
      let priority =
        if config.Config.prioritize && config.Config.strategy = Config.Reexecute then
          let points =
            Fault_injection.offline_points config (fst (List.hd recordings))
          in
          Some
            (Analysis.Prioritize.order
               ~hot_frames:static_r.Analysis.Static.hot_frames
               static_r.Analysis.Static.hot_windows points)
        else None
      in
      (Some static_r, Some (List.map fst recordings), priority, sa_metrics, 2 * runs)
    end
  in
  (* Phase 0b (optional): merge [invariant_runs] recordings into one
     control-flow automaton and abstract-interpret it with the per-line
     persistency lattice — merged-path findings plus per-site safety
     proofs. Reuses the static phase's load-free recordings when both
     phases are on. *)
  let absint_analysis, ai_executions, ai_phase_metrics =
    if not (config.Config.absint || config.Config.prune) then (None, 0, Metrics.zero)
    else begin
      Telemetry.Progress.phase "absint";
      let runs = max 1 config.Config.invariant_runs in
      let a, ai_phase_metrics =
        Metrics.measure (fun () ->
            Telemetry.Collector.span ~cat:"phase" "absint" @@ fun () ->
            let recordings =
              match static_noload with
              | Some rs -> rs
              | None ->
                  (* A deterministic target records identically every run, so
                     duplicating the shared recording's events reproduces what
                     [runs] fresh recordings would feed the CFG merge (which is
                     idempotent under duplication — a qcheck law) without a
                     single extra execution. *)
                  let evs = Pmtrace.Replay.events (recording ()) in
                  List.init runs (fun _ -> evs)
            in
            Analysis.Absint.analyze ~eadr:config.Config.eadr recordings)
      in
      Telemetry.Collector.count "absint.nodes"
        (Analysis.Cfg.node_count a.Analysis.Absint.cfg);
      Telemetry.Collector.count "absint.findings" (List.length a.Analysis.Absint.findings);
      Telemetry.Collector.count "absint.proven_sites" (Analysis.Absint.proven_count a);
      (Some a, 0, ai_phase_metrics)
    end
  in
  (* Phase 0b': conservative failure-point pruning. The abstract fixpoint
     nominates points whose site is safe on every merged path; each
     nominee's crash image is then materialized offline from a deterministic
     trace replay and judged by the recovery oracle, and only
     confirmed-consistent points are skipped. A skipped injection's record
     is known to be [Consistent] — contributing no finding — so the pruned
     report signature equals the unpruned one by construction; everything
     unproven or unconfirmed falls back to live injection. *)
  let prune_plan_pre, prune_nominations, prune_metrics =
    match absint_analysis with
    | Some a when config.Config.prune && config.Config.strategy <> Config.Snapshot ->
        Telemetry.Progress.phase "prune";
        let outcome, prune_metrics =
          Metrics.measure (fun () ->
              Telemetry.Collector.span ~cat:"phase" "prune" @@ fun () ->
              let recording = recording () in
              let points =
                Fault_injection.offline_points config (Pmtrace.Replay.events recording)
              in
              let nominations =
                Analysis.Prune.nominate
                  ~proven_safe:(Analysis.Absint.proven_safe_at a)
                  points
              in
              match config.Config.strategy with
              | Config.Replay ->
                  (* confirmation folds into the replay injection pass, where
                     every point's oracle outcome is computed anyway *)
                  `Deferred nominations
              | Config.Reexecute | Config.Snapshot ->
                  (* Batched confirmation: every nominee's crash image comes
                     out of one prefix-incremental materialization pass over
                     the shared recording, and the oracle streams over the
                     images — no extra execution, no image retained. Live
                     injection crashes at the point's first dynamic
                     occurrence, i.e. just before the event at its
                     persistency index applies, which is exactly where the
                     materializer captures. *)
                  let wanted =
                    List.filter_map
                      (fun (n : Analysis.Prune.nomination) ->
                        if n.Analysis.Prune.n_proven then
                          Some (n.Analysis.Prune.n_ordinal, n.Analysis.Prune.n_pseq)
                        else None)
                      nominations
                  in
                  let confirmed = Hashtbl.create (max 16 (List.length wanted)) in
                  ignore
                    (Pmtrace.Replay.materialize recording ~points:wanted
                       ~f:(fun ~key image ->
                         match
                           Oracle.classify target.Target.recover
                             (Pmem.Device.adopt ~eadr:config.Config.eadr image)
                         with
                         | Oracle.Consistent -> Hashtbl.replace confirmed key ()
                         | Oracle.Unrecoverable _ | Oracle.Crashed _ -> ()));
                  `Plan (Analysis.Prune.decide ~confirmed:(Hashtbl.mem confirmed) nominations))
        in
        (match outcome with
        | `Plan plan -> (Some plan, None, prune_metrics)
        | `Deferred nominations -> (None, Some nominations, prune_metrics))
    | Some _ | None -> (None, None, Metrics.zero)
  in
  let ai_metrics = Metrics.add ai_phase_metrics prune_metrics in
  (* Phase 0c (optional): anti-pattern lint over the shared recording, plus
     replay-backed verification of every fix suggestion (static and lint).
     Lint reuses the shared recording; verification costs one extra
     (load-traced) recording — then only trace interpretations, never
     target re-executions. *)
  let lint_result, fix_verdicts, lv_metrics, lv_executions =
    if not (config.Config.lint || config.Config.verify_fixes) then
      (None, None, Metrics.zero, 0)
    else begin
      Telemetry.Progress.phase "lint";
      let (lint_r, verdicts, executions), lv_metrics =
        Metrics.measure (fun () ->
            Telemetry.Collector.span ~cat:"phase" "lint" @@ fun () ->
            let run ~device ~framer = target.Target.run ~device ~framer in
            let noload = recording () in
            let lint_r =
              Analysis.Lint.analyze ~eadr:config.Config.eadr (Pmtrace.Replay.events noload)
            in
            Telemetry.Collector.count "lint.findings"
              (List.length lint_r.Analysis.Lint.findings);
            Telemetry.Collector.count "lint.events_saved" lint_r.Analysis.Lint.events_saved;
            if not config.Config.verify_fixes then (lint_r, None, 0)
            else begin
              let loaded =
                Pmtrace.Replay.record ~loads:true ~eadr:config.Config.eadr
                  ~pool_size:target.Target.pool_size run
              in
              let static_candidates =
                match static_result with
                | None -> []
                | Some s ->
                    List.filter_map
                      (fun (f : Analysis.Static.finding) ->
                        Option.map
                          (fun fx ->
                            {
                              Analysis.Verify_fix.c_source = Analysis.Verify_fix.Static_finding;
                              c_kind = Analysis.Static.kind_to_string f.Analysis.Static.kind;
                              c_stack = f.Analysis.Static.stack;
                              c_pseq = f.Analysis.Static.seq;
                              c_fix = fx;
                            })
                          f.Analysis.Static.fix)
                      s.Analysis.Static.findings
              in
              let lint_candidates =
                List.filter_map
                  (fun (f : Analysis.Lint.finding) ->
                    Option.map
                      (fun fx ->
                        {
                          Analysis.Verify_fix.c_source = Analysis.Verify_fix.Lint_finding;
                          c_kind = Analysis.Lint.kind_to_string f.Analysis.Lint.l_kind;
                          c_stack = f.Analysis.Lint.l_stack;
                          c_pseq = f.Analysis.Lint.l_pseq;
                          c_fix = fx;
                        })
                      f.Analysis.Lint.l_fix)
                  lint_r.Analysis.Lint.findings
              in
              let invariants =
                Option.map (fun s -> s.Analysis.Static.invariants) static_result
              in
              let v =
                verify_candidates config target ~invariants ~noload ~loaded
                  (static_candidates @ lint_candidates)
              in
              (lint_r, Some v, 1)
            end)
      in
      (Some lint_r, verdicts, lv_metrics, executions)
    end
  in
  (* Phase 0d (optional): the optimizer — synthesize persist-transformation
     plans over the shared recording, price them with the cost model, and
     verify each candidate by replay at all failure points of its rewritten
     trace under both crash views. Pure trace interpretation: the phase
     adds zero target executions (its static recheck runs over the
     load-free pair, so no load-traced recording is made either). *)
  let opt_result, opt_metrics =
    if not config.Config.optimize then (None, Metrics.zero)
    else begin
      Telemetry.Progress.phase "optimize";
      Metrics.measure (fun () ->
          Telemetry.Collector.span ~cat:"phase" "optimize" @@ fun () ->
          let noload = recording () in
          let weights =
            if config.Config.fit_cost then
              Analysis.Cost.fit
                (Analysis.Cost.measure ~pool_size:target.Target.pool_size
                   (Pmtrace.Replay.events noload))
            else Analysis.Cost.static_weights
          in
          let invariants =
            Option.map (fun s -> s.Analysis.Static.invariants) static_result
          in
          Some
            (Analysis.Opt.optimize ?invariants ?absint:absint_analysis ~weights
               ~support:config.Config.invariant_support
               ~confidence:config.Config.invariant_confidence ~eadr:config.Config.eadr
               ~oracle:(image_oracle config target)
               ~points:(Fault_injection.offline_points config)
               noload))
    end
  in
  (* Phase 1+2: instrumented execution(s), failure-point tree, injection. *)
  let ((fi_result, pm_stats), replay_confirmed), fi_phase =
    Metrics.measure (fun () ->
        match config.Config.strategy with
        | Config.Snapshot ->
            (* the snapshot strategy's single execution also produced the
               trace; its device counters are the real store/flush/fence
               totals of the instrumented run *)
            Telemetry.Progress.phase "inject";
            ( Telemetry.Collector.span ~cat:"phase" "fault_injection" (fun () ->
                  Fault_injection.inject_snapshot ~extra_listener:ta_feed config target),
              [] )
        | Config.Reexecute ->
            Telemetry.Progress.phase "build-tree";
            let tree, stats =
              Telemetry.Collector.span ~cat:"phase" "build_tree" (fun () ->
                  Fault_injection.build_tree ~extra_listener:ta_feed config target)
            in
            Telemetry.Progress.set_total (Fp_tree.size tree);
            Telemetry.Progress.phase "inject";
            let skip =
              Option.map (fun p -> p.Analysis.Prune.skip) prune_plan_pre
            in
            ( ( Telemetry.Collector.span ~cat:"phase" "injection" (fun () ->
                    Fault_injection.inject_reexecute ?priority ?skip config target tree),
                stats ),
              [] )
        | Config.Replay ->
            (* Replay-first: the shared recording stands in for every live
               execution — the trace analysis reads the recorded events (the
               same stream the live strategies feed it), the failure-point
               tree is rebuilt offline, and crash images stream out of one
               batched materialization pass per worker. *)
            let r = recording () in
            List.iter (fun e -> Trace_analysis.feed ta e) (Pmtrace.Replay.events r);
            Telemetry.Progress.phase "inject";
            let nominees =
              match prune_nominations with
              | None -> []
              | Some ns ->
                  List.filter_map
                    (fun (n : Analysis.Prune.nomination) ->
                      if n.Analysis.Prune.n_proven then Some n.Analysis.Prune.n_ordinal
                      else None)
                    ns
            in
            let fi, confirmed =
              Telemetry.Collector.span ~cat:"phase" "injection" (fun () ->
                  Fault_injection.inject_replay ~nominees config target ~recording:r)
            in
            ((fi, Pmtrace.Replay.stats r), confirmed))
  in
  (* Under [Replay] the prune plan is decided by the injection pass itself:
     a proven nominee is confirmed iff its streamed oracle outcome was
     consistent (and its record was elided there). *)
  let prune_plan =
    match (prune_plan_pre, prune_nominations) with
    | (Some _ as p), _ -> p
    | None, Some nominations ->
        Some
          (Analysis.Prune.decide
             ~confirmed:(fun ordinal -> List.mem ordinal replay_confirmed)
             nominations)
    | None, None -> None
  in
  (match prune_plan with
  | Some plan ->
      Telemetry.Collector.count "absint.proven_safe" plan.Analysis.Prune.proven;
      Telemetry.Collector.count "absint.skipped" (List.length plan.Analysis.Prune.skip);
      Telemetry.Collector.count "absint.confirm_rejected" plan.Analysis.Prune.rejected
  | None -> ());
  let absint_result =
    Option.map (fun a -> { analysis = a; prune = prune_plan }) absint_analysis
  in
  (* GC counters are domain-local: fold what the injection workers
     allocated into the phase total measured on this domain. *)
  let fi_metrics =
    Metrics.absorb_workers fi_phase fi_result.Fault_injection.worker_metrics
  in
  (* Phase 3: close the streaming trace analysis. *)
  Telemetry.Progress.phase "trace-analysis";
  let raw_findings, ta_metrics =
    Metrics.measure (fun () ->
        Telemetry.Collector.span ~cat:"phase" "trace_analysis" (fun () ->
            Trace_analysis.finish ta))
  in
  (* Attach stacks to trace findings. Under [Replay] the recording already
     carries a stack on every event, so the resolution table is read off it
     for free; the live strategies pay one extra minimal execution. *)
  let resolved =
    if config.Config.resolve_stacks then begin
      Telemetry.Progress.phase "resolve-stacks";
      Telemetry.Collector.span ~cat:"phase" "resolve_stacks" (fun () ->
          let wanted = List.map (fun r -> r.Trace_analysis.seq) raw_findings in
          match (config.Config.strategy, !recording_ref) with
          | Config.Replay, Some r ->
              let want = Hashtbl.create (List.length wanted) in
              List.iter (fun s -> Hashtbl.replace want s ()) wanted;
              let resolved = Hashtbl.create (List.length wanted) in
              if Hashtbl.length want > 0 then
                List.iter
                  (fun (e : Pmtrace.Event.t) ->
                    if Hashtbl.mem want e.Pmtrace.Event.seq then
                      match e.Pmtrace.Event.stack with
                      | Some c -> Hashtbl.replace resolved e.Pmtrace.Event.seq c
                      | None -> ())
                  (Pmtrace.Replay.events r);
              resolved
          | _ -> resolve_stacks target ~wanted)
    end
    else Hashtbl.create 0
  in
  (* Combine: fault-injection bugs first, then static and lint findings (so
     the fix-carrying version of a finding wins deduplication against its
     trace-analysis twin), then trace-analysis findings. Findings carrying a
     fix are indexed by the fix's edit identity so verification verdicts can
     be attached to them afterwards. *)
  let fix_findings : (string, Report.finding) Hashtbl.t = Hashtbl.create 16 in
  let add_with_fix (finding : Report.finding) =
    ignore (Report.add report finding);
    match finding.Report.fix with
    | Some fx -> Hashtbl.replace fix_findings (Analysis.Fix.key fx) finding
    | None -> ()
  in
  List.iter
    (fun r -> ignore (Report.add report (oracle_finding r)))
    (Fault_injection.bug_records fi_result);
  (match static_result with
  | None -> ()
  | Some s ->
      List.iter
        (fun (f : Analysis.Static.finding) ->
          let kind = static_kind_to_report f.Analysis.Static.kind in
          let is_warning = Report.kind_is_warning kind in
          if (not is_warning) || config.Config.report_warnings then
            add_with_fix
              {
                Report.kind;
                phase = Report.Static_analysis;
                stack = f.Analysis.Static.stack;
                seq = Some f.Analysis.Static.seq;
                detail = f.Analysis.Static.detail;
                fix = f.Analysis.Static.fix;
              })
        s.Analysis.Static.findings);
  (* Abstract-interpretation findings ride after the static ones so a
     fix-carrying static finding at the same site wins deduplication (the
     report key is kind + code path, phase-blind by design). *)
  (match absint_result with
  | None -> ()
  | Some a ->
      List.iter
        (fun (f : Analysis.Absint.finding) ->
          let kind = absint_kind_to_report f.Analysis.Absint.f_kind in
          let is_warning = Report.kind_is_warning kind in
          if (not is_warning) || config.Config.report_warnings then
            ignore
              (Report.add report
                 {
                   Report.kind;
                   phase = Report.Abs_interp;
                   stack = f.Analysis.Absint.f_site;
                   seq = Some f.Analysis.Absint.f_pseq;
                   detail = f.Analysis.Absint.f_detail;
                   fix = None;
                 }))
        a.analysis.Analysis.Absint.findings);
  (match lint_result with
  | Some l when config.Config.lint ->
      List.iter
        (fun (f : Analysis.Lint.finding) ->
          let kind = lint_kind_to_report f.Analysis.Lint.l_kind in
          let is_warning = Report.kind_is_warning kind in
          if (not is_warning) || config.Config.report_warnings then
            add_with_fix
              {
                Report.kind;
                phase = Report.Lint;
                stack = f.Analysis.Lint.l_stack;
                seq = Some f.Analysis.Lint.l_pseq;
                detail = f.Analysis.Lint.l_detail;
                fix = f.Analysis.Lint.l_fix;
              })
        l.Analysis.Lint.findings
  | Some _ | None -> ());
  List.iter
    (fun (r : Trace_analysis.raw) ->
      let is_warning = Report.kind_is_warning r.Trace_analysis.kind in
      if (not is_warning) || config.Config.report_warnings then
        ignore
          (Report.add report
             {
               Report.kind = r.Trace_analysis.kind;
               phase = Report.Trace_analysis;
               stack = Hashtbl.find_opt resolved r.Trace_analysis.seq;
               seq = Some r.Trace_analysis.seq;
               detail = r.Trace_analysis.detail;
               fix = None;
             }))
    raw_findings;
  (* Attach the replay-backed verdicts to the findings whose fixes they
     judged (an annotation side-table: arrives post-dedup, leaves the
     report signature untouched). *)
  (match fix_verdicts with
  | None -> ()
  | Some v ->
      List.iter
        (fun (o : Analysis.Verify_fix.outcome) ->
          let fix = o.Analysis.Verify_fix.o_candidate.Analysis.Verify_fix.c_fix in
          match Hashtbl.find_opt fix_findings (Analysis.Fix.key fix) with
          | Some finding ->
              Report.annotate report finding
                (Analysis.Verify_fix.verdict_to_string o.Analysis.Verify_fix.o_verdict
                ^ " — " ^ o.Analysis.Verify_fix.o_detail)
          | None -> ())
        v.Analysis.Verify_fix.outcomes);
  (* Provenance: causal evidence per finding, captured before the result is
     sealed. When the shared recording exists (any offline phase, or the
     replay strategy — i.e. the default) the trace windows and the
     crash-vs-recovered image diffs are read off it by offline
     rematerialization, which costs recoveries but never a target
     execution; without a recording the evidence degrades to witness and
     verdict. *)
  let recorded_events = Option.map Pmtrace.Replay.events !recording_ref in
  let trace_signature =
    match recorded_events with
    | Some events ->
        let buf = Buffer.create 4096 in
        List.iter
          (fun (e : Pmtrace.Event.t) ->
            Buffer.add_string buf (Pmem.Op.to_string e.Pmtrace.Event.op);
            Buffer.add_char buf '\n')
          events;
        Digest.to_hex (Digest.string (Buffer.contents buf))
    | None ->
        Digest.to_hex
          (Digest.string
             (Printf.sprintf "%s#%d#%d#%d#%d" target.Target.name
                (Trace_analysis.event_count ta) pm_stats.Pmem.Stats.stores
                (Pmem.Stats.flushes pm_stats) (Pmem.Stats.fences pm_stats)))
  in
  let provenance =
    let events = Option.map Array.of_list recorded_events in
    let index_of_seq =
      lazy
        (let tbl = Hashtbl.create 256 in
         (match events with
         | Some evs ->
             Array.iteri
               (fun i (e : Pmtrace.Event.t) -> Hashtbl.replace tbl e.Pmtrace.Event.seq i)
               evs
         | None -> ());
         tbl)
    in
    let window_at anchor_index =
      match events with
      | None -> []
      | Some evs when anchor_index < 0 || anchor_index >= Array.length evs -> []
      | Some evs ->
          let lo = max 0 (anchor_index - Provenance.window_radius) in
          let hi = min (Array.length evs - 1) (anchor_index + Provenance.window_radius) in
          List.init
            (hi - lo + 1)
            (fun k ->
              let i = lo + k in
              let e = evs.(i) in
              Printf.sprintf "%c #%d %s"
                (if i = anchor_index then '>' else ' ')
                e.Pmtrace.Event.seq
                (Pmem.Op.to_string e.Pmtrace.Event.op))
    in
    (* persistency index of each failure-point ordinal, read off the
       recording — the same enumeration the offline phases use *)
    let pseq_of_ordinal = Hashtbl.create 64 in
    (match recorded_events with
    | Some evs ->
        List.iter
          (fun (ordinal, pseq, _) -> Hashtbl.replace pseq_of_ordinal ordinal pseq)
          (Fault_injection.offline_points config evs)
    | None -> ());
    let fi_bugs = Fault_injection.bug_records fi_result in
    (* Crash-vs-recovered image diff per oracle-flagged point: the crash
       image is rematerialized from the recording in one batched pass,
       snapshotted, recovered in place, and diffed against the persisted
       result at cache-line granularity. *)
    let diffs : (int, Provenance.image_diff) Hashtbl.t = Hashtbl.create 8 in
    (match !recording_ref with
    | Some r when fi_bugs <> [] ->
        let wanted =
          List.filter_map
            (fun (rc : Fault_injection.record) ->
              let ordinal = rc.Fault_injection.point.Fp_tree.ordinal in
              Option.map
                (fun pseq -> (ordinal, pseq))
                (Hashtbl.find_opt pseq_of_ordinal ordinal))
            fi_bugs
        in
        ignore
          (Pmtrace.Replay.materialize r ~points:wanted ~f:(fun ~key image ->
               let crash = Pmem.Image.snapshot image in
               let device = Pmem.Device.adopt ~eadr:config.Config.eadr image in
               ignore (Oracle.classify target.Target.recover device);
               let recovered = Pmem.Device.persisted_image device in
               Hashtbl.replace diffs key (Provenance.image_diff ~crash ~recovered)))
    | _ -> ());
    let fi_evidence = Hashtbl.create 16 in
    List.iter
      (fun (rc : Fault_injection.record) ->
        let p = rc.Fault_injection.point in
        Hashtbl.replace fi_evidence
          (Pmtrace.Callstack.capture_to_string p.Fp_tree.capture)
          rc)
      fi_bugs;
    List.map
      (fun (f : Report.finding) ->
        let signature = Report.finding_signature f in
        let stack =
          Option.map
            (fun (c : Pmtrace.Callstack.capture) ->
              (c.Pmtrace.Callstack.path, c.Pmtrace.Callstack.op_index))
            f.Report.stack
        in
        let fi_record =
          match (f.Report.phase, f.Report.stack) with
          | Report.Fault_injection, Some c ->
              Hashtbl.find_opt fi_evidence (Pmtrace.Callstack.capture_to_string c)
          | _ -> None
        in
        let failure_point =
          Option.map
            (fun (rc : Fault_injection.record) ->
              let p = rc.Fault_injection.point in
              {
                Provenance.fp_path = p.Fp_tree.capture.Pmtrace.Callstack.path;
                fp_op_index = p.Fp_tree.capture.Pmtrace.Callstack.op_index;
                fp_ordinal = p.Fp_tree.ordinal;
                fp_pseq = Hashtbl.find_opt pseq_of_ordinal p.Fp_tree.ordinal;
              })
            fi_record
        in
        let anchor_index =
          match (failure_point, f.Report.seq) with
          | Some { Provenance.fp_pseq = Some pseq; _ }, _ ->
              (* load-free recording: pseq = 1-based event position *)
              Some (pseq - 1)
          | _, Some seq -> (
              match Hashtbl.find_opt (Lazy.force index_of_seq) seq with
              | Some i -> Some i
              | None -> Some (seq - 1))
          | _ -> None
        in
        let window = match anchor_index with Some i -> window_at i | None -> [] in
        let witness, verdict =
          match fi_record with
          | Some rc ->
              let o = Oracle.to_string rc.Fault_injection.oracle in
              (o, Some o)
          | None -> (f.Report.detail, Report.annotation report f)
        in
        {
          Provenance.p_finding = Provenance.id_of_signature signature;
          p_signature = signature;
          p_kind = Report.kind_to_string f.Report.kind;
          p_phase = Report.phase_to_string f.Report.phase;
          p_detail = f.Report.detail;
          p_stack = stack;
          p_seq = f.Report.seq;
          p_failure_point = failure_point;
          p_window = window;
          p_witness = witness;
          p_verdict = verdict;
          p_fix = Option.map Analysis.Fix.to_string f.Report.fix;
          p_image_diff =
            Option.bind fi_record (fun (rc : Fault_injection.record) ->
                Hashtbl.find_opt diffs rc.Fault_injection.point.Fp_tree.ordinal);
        })
      (Report.ordered report)
  in
  let result =
    {
      report;
      failure_points = Fp_tree.size fi_result.Fault_injection.tree;
      injections = List.length fi_result.Fault_injection.records;
      executions =
        fi_result.Fault_injection.executions
        + (if config.Config.resolve_stacks && config.Config.strategy <> Config.Replay then 1
           else 0)
        + static_executions + lv_executions + ai_executions + !rec_executions;
      trace_events = Trace_analysis.event_count ta;
      pm_stats;
      metrics =
        Metrics.add
          (Metrics.add
             (Metrics.add (Metrics.add (Metrics.add fi_metrics ta_metrics) sa_metrics)
                lv_metrics)
             ai_metrics)
          opt_metrics;
      fi_metrics;
      ta_metrics;
      sa_metrics;
      static = static_result;
      absint = absint_result;
      ai_metrics;
      lint = lint_result;
      fix_verdicts;
      opt = opt_result;
      opt_metrics;
      first_bug_injection = Fault_injection.injections_to_first_bug fi_result;
      worker_metrics = fi_result.Fault_injection.worker_metrics;
      trace_signature;
      provenance;
    }
  in
  (* Pipeline-level counters, so the exported telemetry is a self-contained
     record of the run ("trace.events" — raw events across all executions —
     comes from the tracer itself). *)
  Telemetry.Collector.count "fp.discovered" result.failure_points;
  Telemetry.Collector.count "injections" result.injections;
  Telemetry.Collector.count "executions" result.executions;
  Telemetry.Collector.count "ta.events" result.trace_events;
  Telemetry.Collector.count "pm.stores" pm_stats.Pmem.Stats.stores;
  Telemetry.Collector.count "pm.flushes" (Pmem.Stats.flushes pm_stats);
  Telemetry.Collector.count "pm.fences" (Pmem.Stats.fences pm_stats);
  Telemetry.Progress.finish ();
  result

let pp_result ppf r =
  Fmt.pf ppf "%a@.failure points: %d, injections: %d, executions: %d, trace events: %d@.%a@."
    Report.pp r.report r.failure_points r.injections r.executions r.trace_events Metrics.pp
    r.metrics;
  (match r.absint with
  | Some a -> (
      Fmt.pf ppf "%a@." Analysis.Absint.pp a.analysis;
      match a.prune with
      | Some plan -> Fmt.pf ppf "%a@." Analysis.Prune.pp plan
      | None -> ())
  | None -> ());
  (match r.lint with
  | Some l ->
      Fmt.pf ppf
        "lint: %d finding(s) over %d epoch(s) — %d redundant flush(es), %d redundant \
         fence(s), %d missing-flush spot(s); est. %d cycles / %d events saved@."
        (List.length l.Analysis.Lint.findings)
        l.Analysis.Lint.epochs l.Analysis.Lint.redundant_flushes
        l.Analysis.Lint.redundant_fences l.Analysis.Lint.missing_flush_spots
        l.Analysis.Lint.cycles_saved l.Analysis.Lint.events_saved
  | None -> ());
  (match r.fix_verdicts with
  | Some v ->
      Fmt.pf ppf "fix verdicts: proven=%d ineffective=%d harmful=%d (%d replays)@."
        v.Analysis.Verify_fix.proven v.Analysis.Verify_fix.ineffective
        v.Analysis.Verify_fix.harmful v.Analysis.Verify_fix.replays
  | None -> ());
  (match r.opt with
  | Some o ->
      Fmt.pf ppf
        "optimizer: %d plan(s) synthesized, %d verified: proven=%d ineffective=%d harmful=%d \
         (%d replays; baseline %d events / %d cycles, %s weights)@."
        o.Analysis.Opt.synthesized o.Analysis.Opt.verified o.Analysis.Opt.proven
        o.Analysis.Opt.ineffective o.Analysis.Opt.harmful o.Analysis.Opt.replays
        o.Analysis.Opt.baseline_events o.Analysis.Opt.baseline_cycles
        o.Analysis.Opt.weights.Analysis.Cost.w_source;
      List.iter
        (fun b -> Fmt.pf ppf "  %a@." Analysis.Opt.pp_bundle b)
        o.Analysis.Opt.bundles
  | None -> ());
  match r.worker_metrics with
  | [] -> ()
  | workers ->
      List.iteri (fun i m -> Fmt.pf ppf "  worker %d: %a@." i Metrics.pp m) workers
