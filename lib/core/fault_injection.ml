(** Fault injection (paper section 4.1): crash the workload once per unique
    failure point, run the application's own recovery on the resulting
    program-order-prefix image, and report the states recovery cannot
    handle.

    A failure point is a persistency instruction (flush or fence) reached
    through a unique call stack, and only counts if at least one PM store
    happened since the previous failure point (equivalent post-failure
    states are skipped). The [Store_level] granularity — every store is a
    failure point — exists for the ablation study and mirrors what
    XFDetector-style tools pay. *)

type record = {
  point : Fp_tree.point;
  oracle : Oracle.outcome;
}

type result = {
  tree : Fp_tree.t;
  records : record list; (* sorted by failure-point ordinal *)
  executions : int; (* workload executions performed *)
  injection_order : int list;
      (* failure-point ordinals in the order faults were actually injected;
         equals ordinal order for the unprioritized loop *)
  worker_metrics : Metrics.t list;
      (* per-worker-domain resource usage of the parallel injection phase;
         empty for the sequential loop and the snapshot strategy *)
}

exception Crash_now

(* Shared failure-point detector: calls [on_fp] with the captured stack at
   every failure point, honouring granularity and the store-since guard. *)
let fp_listener ~granularity ~on_fp =
  let stores_since = ref 0 in
  fun (event : Pmtrace.Event.t) (stack : Pmtrace.Callstack.t) ->
    match event.Pmtrace.Event.op with
    | Pmem.Op.Load _ -> ()
    | Pmem.Op.Store _ -> (
        incr stores_since;
        match granularity with
        | Config.Store_level -> on_fp (Pmtrace.Callstack.capture stack)
        | Config.Persistency_instruction -> ())
    | Pmem.Op.Flush _ | Pmem.Op.Fence _ -> (
        match granularity with
        | Config.Persistency_instruction ->
            if !stores_since > 0 then begin
              stores_since := 0;
              on_fp (Pmtrace.Callstack.capture stack)
            end
        | Config.Store_level -> ())

let under_cap config tree =
  match config.Config.max_failure_points with
  | None -> true
  | Some cap -> Fp_tree.size tree < cap

(** Offline replay of the failure-point detector over a recorded trace
    (events must carry stacks, i.e. come from a [with_stacks] tracer).
    Returns [(ordinal, pseq, capture)] triples: the discovery ordinal of
    each unique failure point, the persistency index (count of non-[Load]
    events) of its first dynamic occurrence, and the call-stack capture it
    fires under. Because this mirrors [fp_listener] and
    [Fp_tree.insert] exactly, the ordinals coincide with the ones
    {!build_tree} assigns on a live execution of the same workload — which
    is what lets {!Prioritize} scores computed offline address the live
    tree. *)
let offline_points config (events : Pmtrace.Event.t list) =
  let tree = Fp_tree.create () in
  let points = ref [] in
  let stores_since = ref 0 in
  let pseq = ref 0 in
  List.iter
    (fun (e : Pmtrace.Event.t) ->
      (match e.Pmtrace.Event.op with Pmem.Op.Load _ -> () | _ -> incr pseq);
      let fp () =
        match e.Pmtrace.Event.stack with
        | None -> ()
        | Some capture ->
            if under_cap config tree then (
              match Fp_tree.insert tree capture with
              | `Added p -> points := (p.Fp_tree.ordinal, !pseq, capture) :: !points
              | `Existing _ -> ())
      in
      match e.Pmtrace.Event.op with
      | Pmem.Op.Load _ -> ()
      | Pmem.Op.Store _ -> (
          incr stores_since;
          match config.Config.granularity with
          | Config.Store_level -> fp ()
          | Config.Persistency_instruction -> ())
      | Pmem.Op.Flush _ | Pmem.Op.Fence _ -> (
          match config.Config.granularity with
          | Config.Persistency_instruction ->
              if !stores_since > 0 then begin
                stores_since := 0;
                fp ()
              end
          | Config.Store_level -> ()))
    events;
  List.rev !points

(** Build the failure-point tree with one instrumented execution (steps 4-5
    of Figure 1). [extra_listener] lets the engine run the trace-analysis
    feed on the same execution. *)
let build_tree ?(extra_listener = fun _ _ -> ()) config (target : Target.t) =
  let tree = Fp_tree.create () in
  let device = Pmem.Device.create ~eadr:config.Config.eadr ~size:target.Target.pool_size () in
  let tracer = Pmtrace.Tracer.create ~collect:false device in
  let detect =
    fp_listener ~granularity:config.Config.granularity ~on_fp:(fun capture ->
        if under_cap config tree then ignore (Fp_tree.insert tree capture)
        else
          (* dynamic failure-point occurrences suppressed by
             [max_failure_points] — nonzero means coverage was capped *)
          Telemetry.Collector.count "fp.pruned_by_cap" 1)
  in
  Pmtrace.Tracer.add_listener tracer (fun event stack ->
      extra_listener event stack;
      detect event stack);
  target.Target.run ~device ~framer:(Pmtrace.Framer.of_callstack (Pmtrace.Tracer.stack tracer));
  Pmtrace.Tracer.detach tracer;
  (tree, Pmem.Device.stats device)

(* One injection execution: crash at the first unvisited failure point.
   Returns the injected point and its crash image, or None if every
   failure point reached was already visited. *)
let reexecute_once config (target : Target.t) tree =
  Telemetry.Collector.span ~cat:"inject" ~hist:"injection_exec_ns" "exec" @@ fun () ->
  let device = Pmem.Device.create ~eadr:config.Config.eadr ~size:target.Target.pool_size () in
  let tracer = Pmtrace.Tracer.create ~collect:false device in
  let injected = ref None in
  Pmtrace.Tracer.add_listener tracer
    (fp_listener ~granularity:config.Config.granularity ~on_fp:(fun capture ->
         if !injected = None then
           match Fp_tree.find tree capture with
           | Some point when not point.Fp_tree.visited ->
               point.Fp_tree.visited <- true;
               (* the image is captured here, before the crash unwinds, so
                  cleanup code cannot pollute the post-failure state *)
               injected :=
                 Some
                   ( point,
                     Telemetry.Collector.span ~cat:"inject" ~hist:"crash_image_ns"
                       ~args:[ ("ordinal", Telemetry.Json.Int point.Fp_tree.ordinal) ]
                       "crash_image" (fun () ->
                         Pmem.Device.crash device ~policy:Pmem.Device.Program_prefix) );
               raise Crash_now
           | Some _ | None -> ()));
  (try
     target.Target.run ~device
       ~framer:(Pmtrace.Framer.of_callstack (Pmtrace.Tracer.stack tracer))
   with
  | Crash_now -> ()
  | Fun.Finally_raised Crash_now -> ()
  | _ when !injected <> None ->
      (* unwinding code (e.g. a transaction abort) may fail after the
         simulated crash; the run is over either way *)
      ());
  Pmtrace.Tracer.detach tracer;
  !injected

(* Drive the injection loop over [tree] until every leaf is visited or an
   execution makes no progress. Returns records in execution order. *)
let reexecute_loop config (target : Target.t) tree =
  let records = ref [] and executions = ref 0 in
  let continue_ = ref true in
  while !continue_ && Fp_tree.unvisited_count tree > 0 do
    incr executions;
    match reexecute_once config target tree with
    | None -> continue_ := false (* nondeterminism guard: no progress *)
    | Some (point, image) ->
        let oracle =
          Telemetry.Collector.span ~cat:"inject" ~hist:"oracle_ns" "oracle"
            ~args:[ ("ordinal", Telemetry.Json.Int point.Fp_tree.ordinal) ]
            (fun () ->
              Oracle.classify target.Target.recover
                (Pmem.Device.of_image ~eadr:config.Config.eadr image))
        in
        Telemetry.Progress.tick ~bug:(Oracle.is_bug oracle) ();
        records := { point; oracle } :: !records
  done;
  (List.rev !records, !executions)

(* Targeted injection: crash at the first dynamic occurrence of the failure
   point with [ordinal]. Because ordinals are assigned in discovery order,
   this is the same occurrence — hence the same program-prefix image — the
   unprioritized loop crashes at when that point's turn comes, which is why
   prioritization can only reorder findings, never change them. *)
let reexecute_at config (target : Target.t) tree ~ordinal =
  Telemetry.Collector.span ~cat:"inject" ~hist:"injection_exec_ns"
    ~args:[ ("ordinal", Telemetry.Json.Int ordinal) ]
    "exec"
  @@ fun () ->
  let device = Pmem.Device.create ~eadr:config.Config.eadr ~size:target.Target.pool_size () in
  let tracer = Pmtrace.Tracer.create ~collect:false device in
  let injected = ref None in
  Pmtrace.Tracer.add_listener tracer
    (fp_listener ~granularity:config.Config.granularity ~on_fp:(fun capture ->
         if !injected = None then
           match Fp_tree.find tree capture with
           | Some point when point.Fp_tree.ordinal = ordinal && not point.Fp_tree.visited ->
               point.Fp_tree.visited <- true;
               injected :=
                 Some
                   ( point,
                     Telemetry.Collector.span ~cat:"inject" ~hist:"crash_image_ns"
                       ~args:[ ("ordinal", Telemetry.Json.Int ordinal) ]
                       "crash_image" (fun () ->
                         Pmem.Device.crash device ~policy:Pmem.Device.Program_prefix) );
               raise Crash_now
           | Some _ | None -> ()));
  (try
     target.Target.run ~device
       ~framer:(Pmtrace.Framer.of_callstack (Pmtrace.Tracer.stack tracer))
   with
  | Crash_now -> ()
  | Fun.Finally_raised Crash_now -> ()
  | _ when !injected <> None -> ());
  Pmtrace.Tracer.detach tracer;
  !injected

(* Inject in the order given by [order] (failure-point ordinals), then sweep
   any leaves the priority list missed (or that were not reached by their
   targeted execution) with the standard loop. Returns records in injection
   order. *)
let reexecute_priority config (target : Target.t) tree order =
  let points = Fp_tree.points tree in
  let records = ref [] and executions = ref 0 in
  List.iter
    (fun ordinal ->
      match
        List.find_opt
          (fun (p : Fp_tree.point) -> p.Fp_tree.ordinal = ordinal && not p.Fp_tree.visited)
          points
      with
      | None -> ()
      | Some _ -> (
          incr executions;
          match reexecute_at config target tree ~ordinal with
          | None ->
              (* nondeterminism: the point was not reached this run *)
              Telemetry.Collector.count "fp.unreached" 1
          | Some (point, image) ->
              let oracle =
                Telemetry.Collector.span ~cat:"inject" ~hist:"oracle_ns" "oracle"
                  ~args:[ ("ordinal", Telemetry.Json.Int point.Fp_tree.ordinal) ]
                  (fun () ->
                    Oracle.classify target.Target.recover
                      (Pmem.Device.of_image ~eadr:config.Config.eadr image))
              in
              Telemetry.Progress.tick ~bug:(Oracle.is_bug oracle) ();
              records := { point; oracle } :: !records))
    order;
  let stragglers, extra = reexecute_loop config target tree in
  (List.rev !records @ stragglers, !executions + extra)

let ordinals_of records = List.map (fun r -> r.point.Fp_tree.ordinal) records

(* The deterministic-merge rule: reports are ordered by failure-point
   discovery ordinal, so the result is identical regardless of how the
   leaves were scheduled over workers. *)
let sort_records =
  List.sort (fun a b -> compare a.point.Fp_tree.ordinal b.point.Fp_tree.ordinal)

(* Each worker owns a private copy of the tree (rebuilt from the serialized
   form, which preserves ordinals) with every leaf outside its round-robin
   share pre-marked visited, so the standard loop only injects its own
   assignment. Workers share no mutable state: each execution creates its
   own device and tracer, and the ambient framer/transaction state is
   domain-local. *)
let inject_parallel ?priority ?(skip = []) config (target : Target.t) tree ~jobs =
  let serialized = Fp_tree.serialize tree in
  (* Without a priority, leaves are partitioned round-robin by ordinal.
     With one, they are partitioned round-robin by *rank* in the priority
     order, so every worker starts on high-priority points. *)
  let shares =
    match priority with
    | None -> None
    | Some order ->
        Some
          (List.init jobs (fun w ->
               List.filteri (fun rank _ -> rank mod jobs = w) order))
  in
  let worker w () =
    Metrics.measure (fun () ->
        let local = Fp_tree.deserialize serialized in
        (* Serialization does not carry visit state: pruned leaves must be
           re-marked on each worker's private tree. *)
        Fp_tree.iter local (fun p ->
            if List.mem p.Fp_tree.ordinal skip then p.Fp_tree.visited <- true);
        match shares with
        | None ->
            Fp_tree.iter local (fun p ->
                if p.Fp_tree.ordinal mod jobs <> w then p.Fp_tree.visited <- true);
            reexecute_loop config target local
        | Some shares ->
            let mine = List.nth shares w in
            Fp_tree.iter local (fun p ->
                if not (List.mem p.Fp_tree.ordinal mine) then p.Fp_tree.visited <- true);
            reexecute_priority config target local mine)
  in
  let domains = List.init jobs (fun w -> Domain.spawn (worker w)) in
  let results = List.map Domain.join domains in
  let worker_metrics = List.map snd results in
  (* Re-anchor worker records on the master tree's points (the worker trees
     are projections of it) and mark the master leaves visited. *)
  let records =
    List.concat_map
      (fun ((recs, _), _) ->
        List.map
          (fun r ->
            match Fp_tree.find tree r.point.Fp_tree.capture with
            | Some master ->
                master.Fp_tree.visited <- true;
                { r with point = master }
            | None -> assert false)
          recs)
      results
  in
  let executions = List.fold_left (fun acc ((_, e), _) -> acc + e) 0 results in
  (* The logical injection order of the merged schedule: priority rank when
     prioritized (each worker drains its share in rank order), discovery
     ordinal otherwise. *)
  let injected = List.map (fun r -> r.point.Fp_tree.ordinal) records in
  let injection_order =
    match priority with
    | Some order -> List.filter (fun o -> List.mem o injected) order
    | None -> List.sort compare injected
  in
  { tree; records = sort_records records; executions; injection_order; worker_metrics }

(** The paper's injection loop: re-execute the workload until every leaf of
    the tree is visited, injecting one fault per execution (steps 6-9 of
    Figure 1, [Config.Reexecute]). With [Config.jobs > 1] the loop runs on
    that many worker domains — each fault injection is an independent
    re-execution, so the leaves are partitioned round-robin by ordinal and
    the per-worker records merged back in ordinal order, making the result
    byte-for-byte identical to the sequential schedule. [skip] lists the
    ordinals of failure points proven safe offline ({!Analysis.Prune}):
    they are marked visited up front and never injected. *)
let inject_reexecute ?priority ?(skip = []) config (target : Target.t) tree =
  Fp_tree.iter tree (fun p ->
      if List.mem p.Fp_tree.ordinal skip then p.Fp_tree.visited <- true);
  (* never spawn more domains than there are leaves to inject *)
  let jobs = max 1 (min config.Config.jobs (max 1 (Fp_tree.size tree))) in
  if jobs = 1 then begin
    let records, executions =
      match priority with
      | None -> reexecute_loop config target tree
      | Some order -> reexecute_priority config target tree order
    in
    {
      tree;
      records = sort_records records;
      executions;
      injection_order = ordinals_of records;
      worker_metrics = [];
    }
  end
  else inject_parallel ?priority ~skip config target tree ~jobs

(** Replay-first injection ([Config.Replay], the default): rebuild the
    failure-point tree offline from the shared recording, materialize every
    point's crash image in one batched prefix-incremental replay pass per
    worker ({!Pmtrace.Replay.materialize}), and stream the recovery oracle
    over the images — no image is ever retained and the target is never
    re-executed on the replayed path. [nominees] lists the ordinals the
    abstract fixpoint proved safe ({!Analysis.Prune}): a nominee whose
    oracle outcome is [Consistent] is {e confirmed} — its record, known to
    contribute no finding, is elided. This is the prune confirmation under
    this strategy: every point's oracle outcome is computed anyway, so
    pruning costs nothing extra. Points the replay pass cannot reach
    (nondeterminism with respect to the recording) fall back to one live
    targeted re-execution each. Returns the injection result plus the
    confirmed ordinals (sorted). *)
let inject_replay ?(nominees = []) config (target : Target.t) ~recording =
  let points = offline_points config (Pmtrace.Replay.events recording) in
  (* Re-inserting the captures in discovery order reproduces the ordinals
     [offline_points] reported — the same ordinals a live [build_tree]
     assigns on this deterministic workload. *)
  let tree = Fp_tree.create () in
  let pts =
    List.map
      (fun (ordinal, pseq, capture) ->
        match Fp_tree.insert tree capture with
        | `Added p ->
            assert (p.Fp_tree.ordinal = ordinal);
            (ordinal, pseq, p)
        | `Existing _ -> assert false)
      points
  in
  (* [adopt], not [of_image]: the materialized image is a copy-on-write
     view of the shared prefix (and the fallback image a fresh snapshot we
     own), so recovery can run on it directly — no pool copy per point. *)
  let oracle_at ordinal image =
    Telemetry.Collector.span ~cat:"inject" ~hist:"oracle_ns" "oracle"
      ~args:[ ("ordinal", Telemetry.Json.Int ordinal) ]
      (fun () ->
        Oracle.classify target.Target.recover
          (Pmem.Device.adopt ~eadr:config.Config.eadr image))
  in
  let by_ordinal = Hashtbl.create (max 16 (List.length pts)) in
  List.iter (fun (o, _, p) -> Hashtbl.replace by_ordinal o p) pts;
  (* One materialization pass over a share of the points: crash images
     stream straight into the oracle, so at most one image is live at a
     time. The recording is immutable and safely shared across domains. *)
  let materialize_share mine =
    let out = ref [] in
    let unreached =
      Pmtrace.Replay.materialize recording
        ~points:(List.map (fun (o, pseq, _) -> (o, pseq)) mine)
        ~f:(fun ~key image ->
          let oracle = oracle_at key image in
          Telemetry.Progress.tick ~bug:(Oracle.is_bug oracle) ();
          out := { point = Hashtbl.find by_ordinal key; oracle } :: !out)
    in
    (List.rev !out, unreached)
  in
  let jobs = max 1 (min config.Config.jobs (max 1 (List.length pts))) in
  let replayed, unreached, worker_metrics =
    if jobs = 1 then
      let records, unreached = materialize_share pts in
      (records, unreached, [])
    else begin
      let worker w () =
        Metrics.measure (fun () ->
            materialize_share (List.filter (fun (o, _, _) -> o mod jobs = w) pts))
      in
      let domains = List.init jobs (fun w -> Domain.spawn (worker w)) in
      let results = List.map Domain.join domains in
      ( List.concat_map (fun ((recs, _), _) -> recs) results,
        List.concat_map (fun ((_, unr), _) -> unr) results,
        List.map snd results )
    end
  in
  (* Visit state is committed on the spawning domain after the join. *)
  List.iter (fun r -> r.point.Fp_tree.visited <- true) replayed;
  (* Fallback: a point the recording never reached is injected live, one
     targeted re-execution each (expected never to fire on deterministic
     targets — the counter makes any divergence visible). *)
  let fallback_records = ref [] and fallback_execs = ref 0 in
  List.iter
    (fun ordinal ->
      Telemetry.Collector.count "fp.replay_fallback" 1;
      incr fallback_execs;
      match reexecute_at config target tree ~ordinal with
      | None -> Telemetry.Collector.count "fp.unreached" 1
      | Some (point, image) ->
          let oracle = oracle_at point.Fp_tree.ordinal image in
          Telemetry.Progress.tick ~bug:(Oracle.is_bug oracle) ();
          fallback_records := { point; oracle } :: !fallback_records)
    (List.sort compare unreached);
  let all = replayed @ List.rev !fallback_records in
  let confirmed =
    List.filter_map
      (fun r ->
        match r.oracle with
        | Oracle.Consistent when List.mem r.point.Fp_tree.ordinal nominees ->
            Some r.point.Fp_tree.ordinal
        | _ -> None)
      all
    |> List.sort compare
  in
  let records =
    sort_records
      (List.filter (fun r -> not (List.mem r.point.Fp_tree.ordinal confirmed)) all)
  in
  ( {
      tree;
      records;
      executions = !fallback_execs;
      injection_order = ordinals_of records;
      worker_metrics;
    },
    confirmed )

(** Simulator-only optimisation ([Config.Snapshot]): a single execution in
    which each new failure point immediately snapshots its crash image and
    runs recovery on a copy. Detects exactly the same bugs. Also returns
    the device counters of that execution — the real store/flush/fence
    totals of the instrumented run. *)
let inject_snapshot ?(extra_listener = fun _ _ -> ()) config (target : Target.t) =
  let tree = Fp_tree.create () in
  let records = ref [] in
  let device = Pmem.Device.create ~eadr:config.Config.eadr ~size:target.Target.pool_size () in
  let tracer = Pmtrace.Tracer.create ~collect:false device in
  let detect =
    fp_listener ~granularity:config.Config.granularity ~on_fp:(fun capture ->
        if not (under_cap config tree) then
          Telemetry.Collector.count "fp.pruned_by_cap" 1
        else
          match Fp_tree.insert tree capture with
          | `Existing _ -> ()
          | `Added point ->
              point.Fp_tree.visited <- true;
              let image =
                Telemetry.Collector.span ~cat:"inject" ~hist:"crash_image_ns"
                  ~args:[ ("ordinal", Telemetry.Json.Int point.Fp_tree.ordinal) ]
                  "crash_image" (fun () ->
                    Pmem.Device.crash device ~policy:Pmem.Device.Program_prefix)
              in
              let oracle =
                Telemetry.Collector.span ~cat:"inject" ~hist:"oracle_ns" "oracle"
                  ~args:[ ("ordinal", Telemetry.Json.Int point.Fp_tree.ordinal) ]
                  (fun () ->
                    Oracle.classify target.Target.recover
                      (Pmem.Device.of_image ~eadr:config.Config.eadr image))
              in
              Telemetry.Progress.tick ~bug:(Oracle.is_bug oracle) ();
              records := { point; oracle } :: !records)
  in
  Pmtrace.Tracer.add_listener tracer (fun event stack ->
      extra_listener event stack;
      detect event stack);
  target.Target.run ~device ~framer:(Pmtrace.Framer.of_callstack (Pmtrace.Tracer.stack tracer));
  Pmtrace.Tracer.detach tracer;
  ( {
      tree;
      records = sort_records (List.rev !records);
      executions = 1;
      injection_order = ordinals_of (List.rev !records);
      worker_metrics = [];
    },
    Pmem.Device.stats device )

let bug_records result = List.filter (fun r -> Oracle.is_bug r.oracle) result.records

(** 1-based position in {!result.injection_order} of the first injection
    whose oracle flagged a bug, or [None] when no injection found one — the
    time-to-first-bug metric of the [bench prioritized] experiment. *)
let injections_to_first_bug result =
  let bug_ordinals =
    List.filter_map
      (fun r -> if Oracle.is_bug r.oracle then Some r.point.Fp_tree.ordinal else None)
      result.records
  in
  let rec scan i = function
    | [] -> None
    | o :: rest -> if List.mem o bug_ordinals then Some i else scan (i + 1) rest
  in
  scan 1 result.injection_order
