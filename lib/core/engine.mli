(** The Mumak pipeline (paper Figure 1): instrument, execute, inject faults
    with the recovery oracle, analyse the trace, and emit one combined
    report of unique bugs and warnings. *)

(** Output of the abstract-interpretation phase: the merged-CFG fixpoint
    analysis plus, when [Config.prune] was on under [Reexecute], the
    failure-point prune plan the injection loop honoured. *)
type absint = {
  analysis : Analysis.Absint.t;
  prune : Analysis.Prune.plan option;
}

type result = {
  report : Report.t;
  failure_points : int;  (** unique leaves of the failure-point tree *)
  injections : int;  (** faults injected (= recoveries run) *)
  executions : int;  (** instrumented workload executions performed *)
  trace_events : int;  (** PM instructions observed *)
  pm_stats : Pmem.Stats.t;
      (** device counters of the first instrumented execution (real
          store/flush/fence totals, under either strategy) *)
  metrics : Metrics.t;  (** total resource usage *)
  fi_metrics : Metrics.t;
      (** fault-injection phase, including worker-domain allocations *)
  ta_metrics : Metrics.t;  (** trace-analysis phase *)
  sa_metrics : Metrics.t;
      (** static-analysis phase (recordings + graph/invariant mining);
          [Metrics.zero] when [Config.static] is off *)
  static : Analysis.Static.t option;
      (** the static analyzer's output (graphs, invariants, raw findings)
          when [Config.static] was on *)
  absint : absint option;
      (** merged-CFG abstract interpreter output (and prune plan) when
          [Config.absint] or [Config.prune] was on *)
  ai_metrics : Metrics.t;
      (** abstract-interpretation phase (recordings + fixpoint + prune
          confirmation); [Metrics.zero] when the phase is off *)
  lint : Analysis.Lint.t option;
      (** anti-pattern detector output when [Config.lint] or
          [Config.verify_fixes] was on (verification replays lint too) *)
  fix_verdicts : Analysis.Verify_fix.t option;
      (** replay-backed verdict for every fix suggestion when
          [Config.verify_fixes] was on *)
  opt : Analysis.Opt.t option;
      (** the optimizer's replay-verified transformation bundles when
          [Config.optimize] was on — proven plans first, best measured
          savings first *)
  opt_metrics : Metrics.t;
      (** optimize phase (synthesis + replay verification);
          [Metrics.zero] when the phase is off *)
  first_bug_injection : int option;
      (** 1-based position in the injection schedule of the first fault
          whose oracle flagged a bug; [None] when fault injection found
          nothing — the time-to-first-bug metric of [bench prioritized] *)
  worker_metrics : Metrics.t list;
      (** per-domain breakdown of the parallel injection phase
          ([Config.jobs] entries); empty when injection ran sequentially *)
  trace_signature : string;
      (** digest of the recorded event stream (or of the trace-level
          counters when no recording was made) — the workload-identity
          component of the run ledger's content address *)
  provenance : Provenance.t list;
      (** causal evidence per finding, in {!Report.ordered} order: failure
          point, trace window, witness, oracle verdict and crash-vs-
          recovered image diff where applicable *)
}

val resolve_stacks :
  Target.t -> wanted:int list -> (int, Pmtrace.Callstack.capture) Hashtbl.t
(** Re-run the target once with minimal instrumentation to attach call
    stacks to findings identified by instruction counter (the optimisation
    of paper section 5). *)

val analyze : ?config:Config.t -> Target.t -> result
(** Run the full pipeline on a black-box target. *)

val pp_result : Format.formatter -> result -> unit
