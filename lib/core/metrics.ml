(** Resource accounting for the evaluation (Table 2): wall-clock time, CPU
    load, and memory high-water marks.

    RAM is approximated by the OCaml heap growth and total allocation during
    the measured section — the analogue of peak RSS overhead; PM usage comes
    from the device counters. *)

type t = {
  wall_seconds : float;
  cpu_seconds : float;
  allocated_bytes : float; (* total bytes allocated during the section *)
  heap_growth_words : int; (* major-heap growth during the section *)
}

let cpu_load t = if t.wall_seconds > 0. then t.cpu_seconds /. t.wall_seconds else 0.

let measure f =
  let wall0 = Unix.gettimeofday () and cpu0 = Sys.time () in
  let alloc0 = Gc.allocated_bytes () in
  let heap0 = (Gc.quick_stat ()).Gc.heap_words in
  let result = f () in
  let wall = Unix.gettimeofday () -. wall0 in
  let cpu = Sys.time () -. cpu0 in
  let alloc = Gc.allocated_bytes () -. alloc0 in
  let heap = (Gc.quick_stat ()).Gc.heap_words - heap0 in
  ( result,
    {
      wall_seconds = wall;
      cpu_seconds = cpu;
      allocated_bytes = alloc;
      heap_growth_words = max 0 heap;
    } )

let zero =
  { wall_seconds = 0.; cpu_seconds = 0.; allocated_bytes = 0.; heap_growth_words = 0 }

let add a b =
  {
    wall_seconds = a.wall_seconds +. b.wall_seconds;
    cpu_seconds = a.cpu_seconds +. b.cpu_seconds;
    allocated_bytes = a.allocated_bytes +. b.allocated_bytes;
    heap_growth_words = a.heap_growth_words + b.heap_growth_words;
  }

let sum = List.fold_left add zero

(** [absorb_workers phase workers] folds the allocation counters measured
    inside worker domains into a phase measurement taken on the spawning
    domain. GC counters are domain-local in OCaml 5, so the enclosing
    {!measure} cannot see worker allocations; wall-clock and CPU time are
    process-wide and already accounted for by the enclosing measurement. *)
let absorb_workers phase workers =
  let w = sum workers in
  {
    phase with
    allocated_bytes = phase.allocated_bytes +. w.allocated_bytes;
    heap_growth_words = phase.heap_growth_words + w.heap_growth_words;
  }

let pp ppf t =
  Fmt.pf ppf "wall=%.3fs cpu=%.3fs load=%.2f alloc=%.1fMB heap+=%.1fMB" t.wall_seconds
    t.cpu_seconds (cpu_load t)
    (t.allocated_bytes /. 1048576.)
    (float_of_int (t.heap_growth_words * 8) /. 1048576.)
