(** Resource accounting for the evaluation (Table 2): wall-clock time, CPU
    load, and memory high-water marks.

    RAM is approximated by the OCaml heap growth and total allocation during
    the measured section — the analogue of peak RSS overhead; PM usage comes
    from the device counters. *)

type t = {
  wall_seconds : float;
  cpu_seconds : float;
  allocated_bytes : float; (* total bytes allocated during the section *)
  heap_growth_words : int; (* major-heap growth during the section *)
}

let cpu_load t = if t.wall_seconds > 0. then t.cpu_seconds /. t.wall_seconds else 0.

(* Wall time comes from the monotonic clock ([Telemetry.Clock], backed by
   clock_gettime(CLOCK_MONOTONIC)), so an NTP step during a measured
   section cannot produce negative or absurd phase times. On platforms
   without CLOCK_MONOTONIC the clock falls back to wall time
   (Clock.is_monotonic = false) and elapsed_s clamps at 0, which is the
   documented degradation. Allocation counters are clamped at 0 like
   heap_growth_words: Gc.allocated_bytes is monotonic per domain, but the
   clamp keeps the invariant explicit and future-proof. *)
let measure f =
  let wall0 = Telemetry.Clock.now_ns () and cpu0 = Sys.time () in
  let alloc0 = Gc.allocated_bytes () in
  let heap0 = (Gc.quick_stat ()).Gc.heap_words in
  let result = f () in
  let wall = Telemetry.Clock.elapsed_s wall0 (Telemetry.Clock.now_ns ()) in
  let cpu = Sys.time () -. cpu0 in
  let alloc = Gc.allocated_bytes () -. alloc0 in
  let heap = (Gc.quick_stat ()).Gc.heap_words - heap0 in
  ( result,
    {
      wall_seconds = wall;
      cpu_seconds = Float.max 0. cpu;
      allocated_bytes = Float.max 0. alloc;
      heap_growth_words = max 0 heap;
    } )

let zero =
  { wall_seconds = 0.; cpu_seconds = 0.; allocated_bytes = 0.; heap_growth_words = 0 }

let add a b =
  {
    wall_seconds = a.wall_seconds +. b.wall_seconds;
    cpu_seconds = a.cpu_seconds +. b.cpu_seconds;
    allocated_bytes = a.allocated_bytes +. b.allocated_bytes;
    heap_growth_words = a.heap_growth_words + b.heap_growth_words;
  }

let sum = List.fold_left add zero

(** [absorb_workers phase workers] folds the allocation counters measured
    inside worker domains into a phase measurement taken on the spawning
    domain. GC counters are domain-local in OCaml 5, so the enclosing
    {!measure} cannot see worker allocations; wall-clock and CPU time are
    process-wide and already accounted for by the enclosing measurement. *)
let absorb_workers phase workers =
  let w = sum workers in
  {
    phase with
    allocated_bytes = phase.allocated_bytes +. w.allocated_bytes;
    heap_growth_words = phase.heap_growth_words + w.heap_growth_words;
  }

(** Machine encoding of a measurement; {!pp} renders these same fields, so
    the human-readable result line and the bench/JSONL emitters cannot
    drift. *)
let to_json t =
  Telemetry.Json.Assoc
    [
      ("wall_seconds", Telemetry.Json.Float t.wall_seconds);
      ("cpu_seconds", Telemetry.Json.Float t.cpu_seconds);
      ("cpu_load", Telemetry.Json.Float (cpu_load t));
      ("allocated_bytes", Telemetry.Json.Float t.allocated_bytes);
      ("heap_growth_words", Telemetry.Json.Int t.heap_growth_words);
    ]

let pp ppf t =
  match to_json t with
  | Telemetry.Json.Assoc fields -> Telemetry.Json.pp_kv ppf fields
  | _ -> assert false
