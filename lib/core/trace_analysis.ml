(** Trace analysis (paper section 4.2): a single pass over the PM access
    stream that detects the bug classes fault injection cannot see.

    The five patterns:
    + a store that is never explicitly persisted — a durability bug if its
      address is ever flushed during the execution, otherwise a
      PM-as-transient-data warning;
    + a flush of a volatile address, or of a line with nothing written
      since its last flush — a redundant-flush performance bug;
    + a flush capturing more than one store — a possible performance bug,
      reported as a warning (whether one flush suffices depends on memory
      arrangement);
    + a fence with no pending flushes or non-temporal stores — a
      redundant-fence performance bug;
    + a fence draining more than one flush/non-temporal store — the persist
      order among them is unconstrained; reported as a warning because
      exploring those orderings is deliberately out of scope.

    The analysis is streaming: [feed] consumes events as the instrumented
    run produces them, so the trace need not be stored. Findings carry the
    instruction counter; the engine attaches call stacks afterwards with
    one extra minimally-instrumented execution (paper section 5). *)

type slot_state = Dirty | Captured
(* persisted slots are simply removed from the table *)

type line_state = {
  mutable stores_since_flush : int;
  mutable flush_count : int;
}

type raw = { kind : Report.kind; seq : int; detail : string }

type t = {
  config : Config.t;
  lines : (int, line_state) Hashtbl.t;
  slots : (int, slot_state * int) Hashtbl.t; (* slot -> state, store seq *)
  mutable captured_slots : int list; (* awaiting the next fence *)
  mutable findings : raw list; (* newest first *)
  mutable events : int;
}

let create config =
  {
    config;
    lines = Hashtbl.create 1024;
    slots = Hashtbl.create 4096;
    captured_slots = [];
    findings = [];
    events = 0;
  }

let report t kind seq detail = t.findings <- { kind; seq; detail } :: t.findings

let line_state t line =
  match Hashtbl.find_opt t.lines line with
  | Some ls -> ls
  | None ->
      let ls = { stores_since_flush = 0; flush_count = 0 } in
      Hashtbl.replace t.lines line ls;
      ls

let feed t (event : Pmtrace.Event.t) =
  t.events <- t.events + 1;
  let seq = event.Pmtrace.Event.seq in
  match event.Pmtrace.Event.op with
  | Pmem.Op.Load _ -> ()
  | Pmem.Op.Store { addr; size; nt } ->
      List.iter
        (fun slot ->
          (match Hashtbl.find_opt t.slots slot with
          | Some (Dirty, _) when t.config.Config.detect_dirty_overwrites ->
              report t Report.Dirty_overwrite seq
                (Printf.sprintf "store to slot %d overwrites unpersisted data" slot)
          | _ -> ());
          if nt then begin
            (* non-temporal: persists at the next fence without a flush *)
            Hashtbl.replace t.slots slot (Captured, seq);
            t.captured_slots <- slot :: t.captured_slots
          end
          else Hashtbl.replace t.slots slot (Dirty, seq))
        (Pmem.Addr.slots_spanned ~addr ~size);
      if not nt then
        List.iter
          (fun line ->
            let ls = line_state t line in
            ls.stores_since_flush <- ls.stores_since_flush + 1)
          (Pmem.Addr.lines_spanned ~addr ~size)
  | Pmem.Op.Flush { line; volatile; _ } ->
      if volatile then
        report t Report.Redundant_flush seq
          (Printf.sprintf "flush of volatile address (line %d)" line)
      else begin
        let ls = line_state t line in
        ls.flush_count <- ls.flush_count + 1;
        if ls.stores_since_flush = 0 then
          report t Report.Redundant_flush seq
            (Printf.sprintf "line %d flushed with nothing written since its last flush" line)
        else begin
          if ls.stores_since_flush > 1 then
            report t Report.Multi_store_flush_warning seq
              (Printf.sprintf "one flush of line %d covers %d stores" line
                 ls.stores_since_flush);
          (* capture this line's dirty slots: they persist at the next fence *)
          let lo = Pmem.Addr.line_base line / Pmem.Addr.atomic_size in
          for slot = lo to lo + (Pmem.Addr.line_size / Pmem.Addr.atomic_size) - 1 do
            match Hashtbl.find_opt t.slots slot with
            | Some (Dirty, sseq) ->
                Hashtbl.replace t.slots slot (Captured, sseq);
                t.captured_slots <- slot :: t.captured_slots
            | Some (Captured, _) | None -> ()
          done;
          ls.stores_since_flush <- 0
        end
      end
  | Pmem.Op.Fence { pending_flushes; pending_nt; _ } ->
      if pending_flushes = 0 && pending_nt = 0 then
        report t Report.Redundant_fence seq "fence with no pending flushes or NT stores"
      else if pending_flushes + pending_nt > 1 then
        report t Report.Unordered_flushes_warning seq
          (Printf.sprintf
             "fence orders %d flushes and %d NT stores; their persist order is \
              unconstrained"
             pending_flushes pending_nt);
      List.iter
        (fun slot ->
          match Hashtbl.find_opt t.slots slot with
          | Some (Captured, _) -> Hashtbl.remove t.slots slot (* persisted *)
          | Some (Dirty, _) | None -> ())
        t.captured_slots;
      t.captured_slots <- []

(** End-of-trace pass: classify the stores that never became durable.
    Under eADR (section 4.3) globally visible stores are durable without
    flushes, so neither arm of pattern 1 applies. *)
let finish t =
  if not t.config.Config.eadr then
  Hashtbl.iter
    (fun slot (state, seq) ->
      let line = slot * Pmem.Addr.atomic_size / Pmem.Addr.line_size in
      match state with
      | Captured ->
          report t Report.Durability_bug seq
            (Printf.sprintf "flush of slot %d was never fenced" slot)
      | Dirty ->
          let ever_flushed =
            match Hashtbl.find_opt t.lines line with
            | Some ls -> ls.flush_count > 0
            | None -> false
          in
          if ever_flushed then
            report t Report.Durability_bug seq
              (Printf.sprintf "store to slot %d never persisted (line %d is flushed \
                               elsewhere)" slot line)
          else
            report t Report.Transient_data_warning seq
              (Printf.sprintf "slot %d written but its line is never flushed: PM used \
                               for transient data?" slot))
    t.slots;
  (* Deduplicate by (kind, seq): distinct slots of one cache line flushed by
     the same instruction otherwise surface as several copies of the same
     finding. Keep the first chronological occurrence so downstream stack
     resolution anchors stay stable. *)
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (r : raw) ->
      let key = (r.kind, r.seq) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    (List.rev t.findings)

let event_count t = t.events
