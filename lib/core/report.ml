(** Bug reports: unique findings with the code path that leads to them
    (Table 3's ergonomics criteria: complete bug path, unique bugs only). *)

type kind =
  | Unrecoverable_state  (** fault injection: recovery rejected the state *)
  | Recovery_crash  (** fault injection: recovery itself crashed *)
  | Durability_bug  (** trace analysis: store never persisted *)
  | Redundant_flush
  | Redundant_fence
  | Dirty_overwrite
  | Transient_data_warning
  | Multi_store_flush_warning
  | Unordered_flushes_warning
  | Ordering_violation
      (** static analysis: a likely persist-ordering invariant is violated *)
  | Atomicity_violation
      (** static analysis: locations that usually persist atomically were split *)
  | Missing_flush_warning
      (** lint: a fence leaves a line dirty that is never flushed afterwards *)
  | Missing_fence_warning
      (** abstract interpretation: a flush can reach the end of execution
          with no fence draining it on some merged path *)

let kind_is_warning = function
  | Transient_data_warning | Multi_store_flush_warning | Unordered_flushes_warning
  | Ordering_violation | Atomicity_violation | Missing_flush_warning
  | Missing_fence_warning -> true
  | Unrecoverable_state | Recovery_crash | Durability_bug | Redundant_flush
  | Redundant_fence | Dirty_overwrite -> false

let kind_is_correctness = function
  | Unrecoverable_state | Recovery_crash | Durability_bug | Dirty_overwrite -> true
  | Redundant_flush | Redundant_fence | Transient_data_warning | Multi_store_flush_warning
  | Unordered_flushes_warning | Ordering_violation | Atomicity_violation
  | Missing_flush_warning | Missing_fence_warning -> false

let kind_to_string = function
  | Unrecoverable_state -> "unrecoverable state"
  | Recovery_crash -> "recovery crash"
  | Durability_bug -> "durability bug"
  | Redundant_flush -> "redundant flush"
  | Redundant_fence -> "redundant fence"
  | Dirty_overwrite -> "dirty overwrite"
  | Transient_data_warning -> "transient data (warning)"
  | Multi_store_flush_warning -> "multi-store flush (warning)"
  | Unordered_flushes_warning -> "unordered flushes (warning)"
  | Ordering_violation -> "ordering violation (warning)"
  | Atomicity_violation -> "atomicity violation (warning)"
  | Missing_flush_warning -> "missing flush (warning)"
  | Missing_fence_warning -> "missing fence (warning)"

type phase = Fault_injection | Trace_analysis | Static_analysis | Abs_interp | Lint

let phase_to_string = function
  | Fault_injection -> "fault_injection"
  | Trace_analysis -> "trace_analysis"
  | Static_analysis -> "static_analysis"
  | Abs_interp -> "abs_interp"
  | Lint -> "lint"

type finding = {
  kind : kind;
  phase : phase;
  stack : Pmtrace.Callstack.capture option;  (** code path to the bug *)
  seq : int option;  (** instruction counter of the offending instruction *)
  detail : string;
  fix : Analysis.Fix.t option;
      (** suggested repair (static analysis findings only) *)
}

type t = {
  target : string;
  mutable findings : finding list; (* newest first *)
  dedup : (string, unit) Hashtbl.t;
  annotations : (string, string) Hashtbl.t;
      (* finding key -> note rendered under the finding (fix verdicts).
         A side-table rather than a finding field: annotations arrive after
         deduplication and must not perturb the content signature the
         differential tests compare. *)
}

let create ~target =
  { target; findings = []; dedup = Hashtbl.create 64; annotations = Hashtbl.create 8 }

(* Uniqueness: same kind reached through the same code path is the same
   bug, regardless of how many dynamic instances the workload produced. *)
let finding_key f =
  let stack =
    match f.stack with
    | Some c -> Pmtrace.Callstack.capture_to_string c
    | None -> Printf.sprintf "seq:%s" (match f.seq with Some s -> string_of_int s | None -> f.detail)
  in
  kind_to_string f.kind ^ "@" ^ stack

(** [add t f] records [f] unless an equivalent finding is already present.
    Returns true when the finding was new. *)
let add t f =
  let key = finding_key f in
  if Hashtbl.mem t.dedup key then false
  else begin
    Hashtbl.replace t.dedup key ();
    t.findings <- f :: t.findings;
    true
  end

let findings t = List.rev t.findings

let phase_rank = function
  | Fault_injection -> 0
  | Trace_analysis -> 1
  | Static_analysis -> 2
  | Abs_interp -> 3
  | Lint -> 4

let kind_rank = function
  | Unrecoverable_state -> 0
  | Recovery_crash -> 1
  | Durability_bug -> 2
  | Redundant_flush -> 3
  | Redundant_fence -> 4
  | Dirty_overwrite -> 5
  | Transient_data_warning -> 6
  | Multi_store_flush_warning -> 7
  | Unordered_flushes_warning -> 8
  | Ordering_violation -> 9
  | Atomicity_violation -> 10
  | Missing_flush_warning -> 11
  | Missing_fence_warning -> 12

(* Deterministic rendering order across phases: (phase, frame anchor,
   ordinal, kind), with the detail text as the final tiebreak. [findings]
   keeps insertion order (the combination order the engine chose); what the
   user reads must not depend on it. *)
let finding_order a b =
  let anchor f =
    match f.stack with Some c -> String.concat ">" c.Pmtrace.Callstack.path | None -> ""
  in
  let ordinal f =
    match f.stack with
    | Some c -> c.Pmtrace.Callstack.op_index
    | None -> Option.value f.seq ~default:max_int
  in
  match compare (phase_rank a.phase) (phase_rank b.phase) with
  | 0 -> (
      match String.compare (anchor a) (anchor b) with
      | 0 -> (
          match compare (ordinal a) (ordinal b) with
          | 0 -> (
              match compare (kind_rank a.kind) (kind_rank b.kind) with
              | 0 -> String.compare a.detail b.detail
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

let ordered t = List.sort finding_order (findings t)
let bugs t = List.filter (fun f -> not (kind_is_warning f.kind)) (findings t)
let warnings t = List.filter (fun f -> kind_is_warning f.kind) (findings t)
let correctness_bugs t = List.filter (fun f -> kind_is_correctness f.kind) (bugs t)
let performance_bugs t = List.filter (fun f -> not (kind_is_correctness f.kind)) (bugs t)

let merge ~into src = List.iter (fun f -> ignore (add into f)) (findings src)

(** One finding's entry in {!signature}: the dedup key with the full detail
    text — the stable per-finding identity the results store keys
    provenance records and cross-run diffs on. *)
let finding_signature f = finding_key f ^ "|" ^ f.detail

(* Canonical content signature: the sorted dedup key of every finding,
   each rendered with its full detail text. Two reports with equal
   signatures contain byte-for-byte the same unique findings — the
   equality the differential tests assert across injection strategies and
   worker counts. *)
let signature t = List.map finding_signature (findings t) |> List.sort compare

let equal a b = List.equal String.equal (signature a) (signature b)

let annotate t f note = Hashtbl.replace t.annotations (finding_key f) note
let annotation t f = Hashtbl.find_opt t.annotations (finding_key f)

let pp_finding ppf f =
  Fmt.pf ppf "[%s] %s: %s%s%s"
    (match f.phase with
    | Fault_injection -> "FI"
    | Trace_analysis -> "TA"
    | Static_analysis -> "SA"
    | Abs_interp -> "AI"
    | Lint -> "LINT")
    (kind_to_string f.kind) f.detail
    (match f.stack with
    | Some c -> "\n    at " ^ Pmtrace.Callstack.capture_to_string c
    | None -> (
        match f.seq with Some s -> Printf.sprintf "\n    at instruction #%d" s | None -> ""))
    (match f.fix with
    | Some fix -> "\n    fix: " ^ Analysis.Fix.to_string fix
    | None -> "")

let pp ppf t =
  let all = ordered t in
  let bugs = List.filter (fun f -> not (kind_is_warning f.kind)) all
  and warnings = List.filter (fun f -> kind_is_warning f.kind) all in
  Fmt.pf ppf "=== Mumak report for %s ===@." t.target;
  Fmt.pf ppf "%d unique bug(s), %d warning(s)@." (List.length bugs) (List.length warnings);
  let pp_one f =
    Fmt.pf ppf "%a" pp_finding f;
    (match annotation t f with Some note -> Fmt.pf ppf "\n    verdict: %s" note | None -> ());
    Fmt.pf ppf "@."
  in
  List.iter pp_one bugs;
  List.iter pp_one warnings
