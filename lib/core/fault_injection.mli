(** Fault injection (paper section 4.1): crash the workload once per unique
    failure point, run the application's own recovery on the resulting
    program-order-prefix image, and report the states recovery cannot
    handle.

    A failure point is a persistency instruction (flush or fence) reached
    through a unique call stack, counted only when at least one PM store
    happened since the previous failure point. [Config.Store_level]
    granularity — every store a failure point — exists for the ablation
    study. *)

type record = { point : Fp_tree.point; oracle : Oracle.outcome }

type result = {
  tree : Fp_tree.t;
  records : record list;
      (** always sorted by failure-point discovery ordinal — the
          deterministic-merge rule that makes reports identical no matter
          how injections were scheduled over worker domains *)
  executions : int;  (** workload executions performed *)
  injection_order : int list;
      (** failure-point ordinals in the order faults were actually
          injected; discovery-ordinal order for the unprioritized loop,
          priority-rank order when a [priority] was supplied *)
  worker_metrics : Metrics.t list;
      (** per-worker-domain resource usage of the parallel injection phase
          ([Config.jobs] entries); empty for the sequential loop and the
          snapshot strategy *)
}

exception Crash_now
(** Raised from the instrumentation hook to simulate the crash; the image
    is captured before raising, so unwinding code cannot pollute it. *)

val fp_listener :
  granularity:Config.granularity ->
  on_fp:(Pmtrace.Callstack.capture -> unit) ->
  Pmtrace.Event.t ->
  Pmtrace.Callstack.t ->
  unit
(** The shared failure-point detector (stateful: create one per
    execution). *)

val build_tree :
  ?extra_listener:(Pmtrace.Event.t -> Pmtrace.Callstack.t -> unit) ->
  Config.t ->
  Target.t ->
  Fp_tree.t * Pmem.Stats.t
(** One instrumented execution building the failure-point tree (steps 4–5
    of Figure 1). [extra_listener] lets the engine stream the trace
    analysis off the same execution. *)

val offline_points :
  Config.t -> Pmtrace.Event.t list -> (int * int * Pmtrace.Callstack.capture) list
(** Offline replay of the failure-point detector over a recorded trace
    (events must carry stacks). Returns [(ordinal, pseq, capture)] triples:
    each unique failure point's discovery ordinal, the persistency index of
    its first dynamic occurrence, and the call stack it fires under. The
    ordinals coincide with the ones
    {!build_tree} assigns on a live execution of the same deterministic
    workload, so scores computed offline address the live tree. *)

val inject_reexecute :
  ?priority:int list -> ?skip:int list -> Config.t -> Target.t -> Fp_tree.t -> result
(** The paper's injection loop: re-execute the workload until every leaf is
    visited, one fault per execution (steps 6–9 of Figure 1). With
    [Config.jobs > 1] the leaves are partitioned round-robin by ordinal
    over that many worker domains, each re-executing against its own
    private device/tracer/tree, and the records merged back in ordinal
    order — byte-for-byte the sequential result (asserted by the
    differential tests).

    [priority] (failure-point ordinals, most suspicious first) reorders the
    loop: each listed point is injected by a targeted execution that
    crashes at its {e first} dynamic occurrence — the same occurrence, and
    therefore the same program-prefix image, the unprioritized loop crashes
    at — so the set of records is unchanged and only
    [result.injection_order] differs. Leaves the priority misses are swept
    by the standard loop afterwards.

    [skip] (failure-point ordinals) marks points proven safe offline
    ({!Analysis.Prune}) as visited before the loop starts, sequentially and
    on every worker's private tree alike, so they are never injected. *)

val inject_replay :
  ?nominees:int list ->
  Config.t ->
  Target.t ->
  recording:Pmtrace.Replay.t ->
  result * int list
(** Replay-first injection ([Config.Replay], the default): rebuild the
    failure-point tree offline from the shared recording (same ordinals a
    live {!build_tree} assigns on the deterministic workload), materialize
    every point's crash image in one batched prefix-incremental replay pass
    per worker ({!Pmtrace.Replay.materialize}), and stream the recovery
    oracle over the images — constant image memory, and the target is never
    re-executed on the replayed path. With [Config.jobs > 1] the points are
    partitioned round-robin by ordinal over that many domains, each running
    its own materialization pass over the shared immutable recording, and
    the records merged back in ordinal order.

    [nominees] lists the ordinals the abstract fixpoint proved safe
    ({!Analysis.Prune}); a nominee whose oracle outcome is [Consistent] is
    {e confirmed} and its record — known to contribute no finding — is
    elided, which is the prune confirmation under this strategy (free:
    every point's outcome is computed anyway). Points the replay pass
    cannot reach (nondeterminism with respect to the recording,
    recovery-side faults) fall back to one live targeted re-execution each,
    counted in [result.executions] and the ["fp.replay_fallback"] telemetry
    counter. Returns the result plus the confirmed ordinals, sorted. *)

val inject_snapshot :
  ?extra_listener:(Pmtrace.Event.t -> Pmtrace.Callstack.t -> unit) ->
  Config.t ->
  Target.t ->
  result * Pmem.Stats.t
(** Simulator-only optimisation: a single execution in which each new
    failure point immediately snapshots its crash image and recovers on a
    copy. Detects exactly the same bugs (asserted by tests). The second
    component is the device counters of the instrumented execution. *)

val bug_records : result -> record list

val injections_to_first_bug : result -> int option
(** 1-based position in [result.injection_order] of the first injection
    whose oracle flagged a bug ([None] if no injection found one) — the
    time-to-first-bug metric of the [bench prioritized] experiment. *)
