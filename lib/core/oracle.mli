(** Recovery-as-oracle (paper section 4.1): the application's own recovery
    procedure, run against a simulated crash image, decides whether the
    post-failure state is a bug — no specification or annotations needed,
    which is what makes the fault injector black-box. *)

type outcome =
  | Consistent  (** recovery succeeded: the state is valid (or was repaired) *)
  | Unrecoverable of string
      (** recovery completed but deemed the state beyond repair *)
  | Crashed of string
      (** recovery itself died (the segfault-in-recovery analogue); carries
          the exception text *)

val classify :
  (Pmem.Device.t -> (unit, string) result) -> Pmem.Device.t -> outcome
(** [classify recover dev] runs [recover] on [dev] (a device rebuilt from a
    crash image) and maps its result — including any exception it raises —
    to an {!outcome}. *)

val is_bug : outcome -> bool
(** [true] for {!Unrecoverable} and {!Crashed}; a [Consistent] state is by
    definition one the application can continue from. *)

val to_string : outcome -> string
