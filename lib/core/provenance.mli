(** Per-finding causal evidence for the run ledger: the injected failure
    point, the trace window around the offending instruction, the witness
    that nominated the finding, and — for fault-injection bugs — the
    crash-image vs recovered-image byte diff at cache-line granularity.

    Plain data plus [Telemetry.Json] codecs; the capture itself happens in
    [Engine.analyze] at the moment each finding is produced. *)

val cache_line : int
val diff_line_cap : int
(** Differing cache lines retained verbatim in an image diff (the count of
    differing lines stays exact past the cap). *)

val window_radius : int
(** Events rendered on each side of a trace window's anchor. *)

type diff_line = {
  dl_line : int;  (** cache-line index (byte offset = index * 64) *)
  dl_crash : string;  (** hex of the 64 crash-image bytes *)
  dl_recovered : string;  (** hex of the same line after recovery *)
}

type image_diff = {
  id_lines : diff_line list;  (** first {!diff_line_cap} differing lines *)
  id_differing : int;  (** total differing cache lines (exact) *)
  id_capped : bool;
}

type failure_point = {
  fp_path : string list;
  fp_op_index : int;
  fp_ordinal : int;  (** discovery ordinal in the failure-point tree *)
  fp_pseq : int option;  (** persistency index, when a recording located it *)
}

type t = {
  p_finding : string;  (** digest of the finding's signature entry (the id) *)
  p_signature : string;  (** the {!Report.finding_signature} entry itself *)
  p_kind : string;
  p_phase : string;
  p_detail : string;
  p_stack : (string list * int) option;
  p_seq : int option;
  p_failure_point : failure_point option;
  p_window : string list;
  p_witness : string;
  p_verdict : string option;
  p_fix : string option;
  p_image_diff : image_diff option;
}

val id_of_signature : string -> string
(** Content address of a finding: digest (hex) of its signature entry. *)

val image_diff : crash:Pmem.Image.t -> recovered:Pmem.Image.t -> image_diff
(** Cache-line-granular diff: every differing line counted, the first
    {!diff_line_cap} kept with both sides rendered as hex. *)

val to_json : t -> Telemetry.Json.t
val of_json : Telemetry.Json.t -> (t, string) result
val equal : t -> t -> bool
