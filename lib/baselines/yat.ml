(** Yat-style exhaustive replay (USENIX ATC'14).

    Yat records all PM operations and replays the stores in {e every}
    permissible persist ordering, checking each resulting state with a
    consistency checker (here: the application's recovery). The search
    space is exponential in the unpersisted data per fence interval — the
    original estimates {e years} for full coverage of a few thousand
    operations — so the interesting output is the fraction of states it
    covers before the budget expires.

    Implementation: a single recorded execution; at every fence the
    enumerator produces all post-failure images of the current device state
    (capped), and the checker runs on each. *)

let name = "Yat"

let images_per_interval = 4096 (* cap per fence interval, like Yat's batching *)

let analyze ?budget_s (target : Mumak.Target.t) =
  let clock = Tool_intf.clock ?budget_s () in
  let report = Mumak.Report.create ~target:target.Mumak.Target.name in
  let checked = ref 0 in
  let total_states = ref 0 in
  let timed_out = ref false in
  let tracking = ref 0 in
  let (), metrics =
    Mumak.Metrics.measure (fun () ->
        let device = Pmem.Device.create ~size:target.Mumak.Target.pool_size () in
        let tracer = Pmtrace.Tracer.create ~collect:false device in
        Pmtrace.Tracer.add_listener tracer (fun event stack ->
            match event.Pmtrace.Event.op with
            | Pmem.Op.Fence _ when not !timed_out ->
                if Tool_intf.expired clock then timed_out := true
                else begin
                  let images, total =
                    Pmem.Enumerate.images device ~limit:images_per_interval
                  in
                  total_states :=
                    (if !total_states > max_int - total then max_int
                     else !total_states + total);
                  tracking := max !tracking (Pmem.Device.unpersisted_line_count device * 16);
                  let capture = Pmtrace.Callstack.capture stack in
                  Seq.iter
                    (fun image ->
                      if not (Tool_intf.expired clock) then begin
                        incr checked;
                        match
                          Mumak.Oracle.classify target.Mumak.Target.recover
                            (Pmem.Device.of_image image)
                        with
                        | Mumak.Oracle.Consistent -> ()
                        | Mumak.Oracle.Unrecoverable msg ->
                            ignore
                              (Mumak.Report.add report
                                 {
                                   Mumak.Report.kind = Mumak.Report.Unrecoverable_state;
                                   phase = Mumak.Report.Fault_injection;
                                   stack = Some capture;
                                   seq = None;
                                   detail = msg;
                                   fix = None;
                                 })
                        | Mumak.Oracle.Crashed msg ->
                            ignore
                              (Mumak.Report.add report
                                 {
                                   Mumak.Report.kind = Mumak.Report.Recovery_crash;
                                   phase = Mumak.Report.Fault_injection;
                                   stack = Some capture;
                                   seq = None;
                                   detail = msg;
                                   fix = None;
                                 })
                      end
                      else timed_out := true)
                    images
                end
            | _ -> ());
        target.Mumak.Target.run ~device
          ~framer:(Pmtrace.Framer.of_callstack (Pmtrace.Tracer.stack tracer));
        Pmtrace.Tracer.detach tracer)
  in
  {
    Tool_intf.tool = name;
    report;
    metrics;
    timed_out = !timed_out;
    work_done = !checked;
    work_total = max !total_states 1;
    tracking_words = !tracking;
    pm_overhead = 1.0;
  }
