(** Jaaru-style model checking (ASPLOS'21).

    Jaaru simulates cache/memory instructions with full persistency
    semantics and — unlike Yat's eager enumeration of every post-failure
    state — explores {e lazily}: it only considers the values of cache
    lines that post-failure executions actually {e read}, constraining each
    read to the versions the line could hold. This collapses the
    commit-store pattern to a handful of executions, though other patterns
    still blow up exponentially.

    Simulation: at every fence interval, run the recovery once on the
    nothing-extra-persisted image with load tracing to discover which
    unpersisted lines the post-failure execution reads; then explore only
    the version combinations of {e those} lines (cap applies). Compare with
    {!Yat}, which enumerates all combinations of all unpersisted lines. *)

let name = "Jaaru"

let lazy_line_cap = 10 (* explore at most 2^cap combinations per interval *)

let read_lines_during_recovery (target : Mumak.Target.t) image candidates =
  let dev = Pmem.Device.of_image image in
  Pmem.Device.trace_loads dev true;
  let read = Hashtbl.create 16 in
  Pmem.Device.set_hook dev
    (Some
       (function
       | Pmem.Op.Load { addr; size } ->
           List.iter
             (fun line -> if List.mem_assoc line candidates then Hashtbl.replace read line ())
             (Pmem.Addr.lines_spanned ~addr ~size)
       | Pmem.Op.Store _ | Pmem.Op.Flush _ | Pmem.Op.Fence _ -> ()));
  let outcome = Mumak.Oracle.classify target.Mumak.Target.recover dev in
  (outcome, Hashtbl.fold (fun l () acc -> l :: acc) read [])

let analyze ?budget_s (target : Mumak.Target.t) =
  let clock = Tool_intf.clock ?budget_s () in
  let report = Mumak.Report.create ~target:target.Mumak.Target.name in
  let timed_out = ref false in
  let explored = ref 0 and lazy_skipped = ref 0 in
  let tracking = ref 0 in
  let record capture outcome =
    match outcome with
    | Mumak.Oracle.Consistent -> ()
    | Mumak.Oracle.Unrecoverable msg ->
        ignore
          (Mumak.Report.add report
             { Mumak.Report.kind = Mumak.Report.Unrecoverable_state;
               phase = Mumak.Report.Fault_injection; stack = Some capture; seq = None;
               detail = msg; fix = None })
    | Mumak.Oracle.Crashed msg ->
        ignore
          (Mumak.Report.add report
             { Mumak.Report.kind = Mumak.Report.Recovery_crash;
               phase = Mumak.Report.Fault_injection; stack = Some capture; seq = None;
               detail = msg; fix = None })
  in
  let (), metrics =
    Mumak.Metrics.measure (fun () ->
        let device = Pmem.Device.create ~size:target.Mumak.Target.pool_size () in
        let tracer = Pmtrace.Tracer.create ~collect:false device in
        Pmtrace.Tracer.add_listener tracer (fun event stack ->
            match event.Pmtrace.Event.op with
            | Pmem.Op.Fence _ when not !timed_out ->
                if Tool_intf.expired clock then timed_out := true
                else begin
                  let capture = Pmtrace.Callstack.capture stack in
                  let versions = Pmem.Device.line_versions device in
                  let base = Pmem.Device.persisted_image device in
                  (* constraint pass: which unpersisted lines does the
                     post-failure execution actually read? *)
                  let outcome, read_lines =
                    read_lines_during_recovery target base versions
                  in
                  incr explored;
                  record capture outcome;
                  let relevant =
                    List.filter (fun (l, _) -> List.mem l read_lines) versions
                  in
                  let relevant =
                    if List.length relevant > lazy_line_cap then begin
                      lazy_skipped := !lazy_skipped + 1;
                      List.filteri (fun i _ -> i < lazy_line_cap) relevant
                    end
                    else relevant
                  in
                  lazy_skipped := !lazy_skipped + (List.length versions - List.length relevant);
                  tracking := max !tracking (List.length versions * 12);
                  (* explore only the read-relevant combinations *)
                  let rec explore chosen = function
                    | [] ->
                        if chosen <> [] && not (Tool_intf.expired clock) then begin
                          let img = Pmem.Image.snapshot base in
                          List.iter
                            (fun (line, content) ->
                              let addr = Pmem.Addr.line_base line in
                              let avail =
                                min Pmem.Addr.line_size (Pmem.Image.size img - addr)
                              in
                              if avail > 0 then
                                Pmem.Image.blit_to img ~dst_addr:addr ~src:content
                                  ~src_off:0 ~len:avail)
                            chosen;
                          incr explored;
                          record capture
                            (Mumak.Oracle.classify target.Mumak.Target.recover
                               (Pmem.Device.of_image img))
                        end
                    | (line, vs) :: rest ->
                        explore chosen rest;
                        List.iter (fun v -> explore ((line, v) :: chosen) rest) vs
                  in
                  explore [] relevant
                end
            | _ -> ());
        target.Mumak.Target.run ~device
          ~framer:(Pmtrace.Framer.of_callstack (Pmtrace.Tracer.stack tracer));
        Pmtrace.Tracer.detach tracer)
  in
  {
    Tool_intf.tool = name;
    report;
    metrics;
    timed_out = !timed_out;
    work_done = !explored;
    work_total = !explored + !lazy_skipped;
    tracking_words = !tracking;
    pm_overhead = 0.;
  }
