(** Agamotto-style symbolic exploration (OSDI'20).

    Agamotto symbolically executes the program, prioritising paths dense in
    PM accesses, and applies "universal persistency bug oracles" (our trace
    analysis) plus a PMDK-transaction oracle along every explored path. It
    does not execute the concrete application against real PM (Table 2
    shows no PM use) but pays for state exploration in time and memory
    (KLEE state objects: 3.8-5.8x RAM in the original).

    Simulation: one state per workload prefix, explored shortest-first
    (the PM-access prioritisation means useful findings arrive early); each
    state re-interprets the whole prefix — the cost of forking a symbolic
    state — and applies the transaction oracle at every persistency
    instruction of the state's final operation. Each explored state retains
    a snapshot image, the KLEE-state memory footprint. *)

let name = "Agamotto"

let analyze ?budget_s (kv : Kv_target.t) =
  let clock = Tool_intf.clock ?budget_s () in
  let target = kv.Kv_target.base in
  let report = Mumak.Report.create ~target:target.Mumak.Target.name in
  let timed_out = ref false in
  let explored = ref 0 in
  let tracking = ref 0 in
  let n_ops = List.length kv.Kv_target.ops in
  let state_table : (int, Pmem.Image.t) Hashtbl.t = Hashtbl.create 64 in
  let add kind ~stack ~seq detail =
    ignore
      (Mumak.Report.add report
         { Mumak.Report.kind; phase = Mumak.Report.Fault_injection; stack; seq; detail;
           fix = None })
  in
  let (), metrics =
    Mumak.Metrics.measure (fun () ->
        (* Oracle sweep over one full path: the universal (trace-analysis)
           oracles. *)
        let ta = Mumak.Trace_analysis.create Mumak.Config.default in
        let (_ : Pmem.Device.t) =
          Tool_intf.run_instrumented target ~listener:(fun event _ ->
              Mumak.Trace_analysis.feed ta event)
        in
        List.iter
          (fun (r : Mumak.Trace_analysis.raw) ->
            ignore
              (Mumak.Report.add report
                 {
                   Mumak.Report.kind = r.Mumak.Trace_analysis.kind;
                   phase = Mumak.Report.Trace_analysis;
                   stack = None;
                   seq = Some r.Mumak.Trace_analysis.seq;
                   detail = r.Mumak.Trace_analysis.detail;
                   fix = None;
                 }))
          (Mumak.Trace_analysis.finish ta);
        (* State exploration with the PMDK-transaction oracle. *)
        let tree = Mumak.Fp_tree.create () in
        let state = ref 0 in
        while (not !timed_out) && !state < n_ops do
          if Tool_intf.expired clock then timed_out := true
          else begin
            incr explored;
            let device = Pmem.Device.create ~size:target.Mumak.Target.pool_size () in
            let tracer = Pmtrace.Tracer.create ~collect:false device in
            (* KLEE applies the universal oracles along every explored
               path: each state pays for its own trace-analysis pass *)
            let state_ta = Mumak.Trace_analysis.create Mumak.Config.default in
            Pmtrace.Tracer.add_listener tracer (fun event _ ->
                Mumak.Trace_analysis.feed state_ta event);
            let current_op = ref (-1) in
            let detect =
              Mumak.Fault_injection.fp_listener
                ~granularity:Mumak.Config.Persistency_instruction ~on_fp:(fun capture ->
                  if !current_op = !state then
                    match Mumak.Fp_tree.insert tree capture with
                    | `Existing _ -> ()
                    | `Added point ->
                        point.Mumak.Fp_tree.visited <- true;
                        let image =
                          Pmem.Device.crash device ~policy:Pmem.Device.Program_prefix
                        in
                        (match
                           Mumak.Oracle.classify target.Mumak.Target.recover
                             (Pmem.Device.of_image image)
                         with
                        | Mumak.Oracle.Consistent -> ()
                        | Mumak.Oracle.Unrecoverable msg ->
                            add Mumak.Report.Unrecoverable_state
                              ~stack:(Some point.Mumak.Fp_tree.capture) ~seq:None msg
                        | Mumak.Oracle.Crashed msg ->
                            add Mumak.Report.Recovery_crash
                              ~stack:(Some point.Mumak.Fp_tree.capture) ~seq:None msg))
            in
            Pmtrace.Tracer.add_listener tracer detect;
            kv.Kv_target.run_prefix ~device
              ~framer:(Pmtrace.Framer.of_callstack (Pmtrace.Tracer.stack tracer))
              ~on_op:(fun i -> current_op := i)
              ~upto:(!state + 1) ();
            Pmtrace.Tracer.detach tracer;
            (* retain a KLEE state object for this prefix; KLEE states share
               memory copy-on-write, so the per-state footprint is a
               fraction of the address space (we keep one concrete image
               and account for the shared remainder analytically) *)
            Hashtbl.reset state_table;
            Hashtbl.replace state_table !state (Pmem.Device.persisted_image device);
            tracking := !tracking + (target.Mumak.Target.pool_size / 64 / 8);
            incr state
          end
        done)
  in
  {
    Tool_intf.tool = name;
    report;
    metrics;
    timed_out = !timed_out;
    work_done = !explored;
    work_total = n_ops;
    tracking_words = !tracking;
    pm_overhead = 0. (* Agamotto does not execute against PM *);
  }
