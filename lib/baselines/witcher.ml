(** Witcher-style systematic crash-consistency testing (SOSP'21).

    Witcher (a) traces PM accesses of a deterministic key-value test case,
    (b) infers {e likely ordering/atomicity invariants} from the trace —
    building large cross-product tables of persist-ordering candidates,
    which is where its enormous memory appetite comes from (it exhausted
    256 GB in the paper's Table 2) — and (c) for each candidate violation
    constructs a crash image that breaks the invariant and applies
    {e output equivalence checking}: after recovery, the remaining
    operations must behave as if the interrupted operation either fully
    happened or never happened. No false positives, but an order of
    magnitude slower than other systems, and tied to KV semantics.

    Simulation: candidate violations are the fences that drain more than
    one flush (their persist order is unconstrained); for each, every
    single-line subset image is generated and the full key universe is
    compared against the two acceptable serialisations of the interrupted
    operation. *)

let name = "Witcher"

type candidate = { fence_index : int; op_index : int }

let analyze ?budget_s (kv : Kv_target.t) =
  let clock = Tool_intf.clock ?budget_s () in
  let target = kv.Kv_target.base in
  let report = Mumak.Report.create ~target:target.Mumak.Target.name in
  let timed_out = ref false in
  let tracking = ref 0 in
  let keys = Kv_target.keys_of kv.Kv_target.ops in
  let add kind ~stack detail =
    ignore
      (Mumak.Report.add report
         { Mumak.Report.kind; phase = Mumak.Report.Fault_injection; stack; seq = None;
           detail; fix = None })
  in
  let candidates = ref [] and n_candidates = ref 0 and processed = ref 0 in
  let (), metrics =
    Mumak.Metrics.measure (fun () ->
        (* Pass 1: trace; collect candidate fences and build the invariant
           tables (persist-ordering pairs observed across the whole trace —
           the memory hog). *)
        let pair_table : (int * int, int) Hashtbl.t = Hashtbl.create 65536 in
        let pending_lines = ref [] in
        let fence_index = ref 0 in
        let current_op = ref 0 in
        let ta = Mumak.Trace_analysis.create Mumak.Config.default in
        let listener (event : Pmtrace.Event.t) _stack =
          Mumak.Trace_analysis.feed ta event;
          match event.Pmtrace.Event.op with
          | Pmem.Op.Flush { line; volatile = false; _ } ->
              pending_lines := line :: !pending_lines
          | Pmem.Op.Flush _ | Pmem.Op.Load _ -> ()
          | Pmem.Op.Store _ -> ()
          | Pmem.Op.Fence { pending_flushes; _ } ->
              incr fence_index;
              (* likely-invariant inference: record every ordered pair of
                 lines that this fence co-persists *)
              let lines = List.sort_uniq compare !pending_lines in
              List.iter
                (fun a ->
                  List.iter
                    (fun b ->
                      if a <> b then
                        Hashtbl.replace pair_table (a, b)
                          (1 + Option.value ~default:0 (Hashtbl.find_opt pair_table (a, b))))
                    lines)
                lines;
              tracking := max !tracking (Hashtbl.length pair_table * 5);
              if pending_flushes > 1 then begin
                candidates := { fence_index = !fence_index; op_index = !current_op } :: !candidates;
                incr n_candidates
              end;
              pending_lines := []
        in
        let device = Pmem.Device.create ~size:target.Mumak.Target.pool_size () in
        let tracer = Pmtrace.Tracer.create ~collect:false device in
        Pmtrace.Tracer.add_listener tracer listener;
        kv.Kv_target.run_prefix ~device
          ~framer:(Pmtrace.Framer.of_callstack (Pmtrace.Tracer.stack tracer))
          ~on_op:(fun i -> current_op := i)
          ~upto:(List.length kv.Kv_target.ops) ();
        Pmtrace.Tracer.detach tracer;
        ignore (Mumak.Trace_analysis.finish ta);
        (* Pass 2: for each candidate, construct the violating crash images
           and output-equivalence-check them against the two acceptable
           states of the interrupted operation. *)
        let check_candidate c =
          (* re-execute up to the candidate fence, capturing the device *)
          let device = Pmem.Device.create ~size:target.Mumak.Target.pool_size () in
          let tracer = Pmtrace.Tracer.create ~collect:false device in
          let fences = ref 0 in
          let stop = ref None in
          Pmtrace.Tracer.add_listener tracer (fun event stack ->
              match event.Pmtrace.Event.op with
              | Pmem.Op.Fence _ ->
                  incr fences;
                  if !fences = c.fence_index && !stop = None then begin
                    stop := Some (Pmtrace.Callstack.capture stack);
                    raise Mumak.Fault_injection.Crash_now
                  end
              | _ -> ());
          (try
             kv.Kv_target.run_prefix ~device
               ~framer:(Pmtrace.Framer.of_callstack (Pmtrace.Tracer.stack tracer))
               ~upto:(List.length kv.Kv_target.ops) ()
           with
          | Mumak.Fault_injection.Crash_now
          | Fun.Finally_raised Mumak.Fault_injection.Crash_now ->
            ()
          | _ when !stop <> None -> ());
          Pmtrace.Tracer.detach tracer;
          match !stop with
          | None -> ()
          | Some capture ->
              let before = Kv_target.model_after kv.Kv_target.ops ~upto:c.op_index in
              let after = Kv_target.model_after kv.Kv_target.ops ~upto:(c.op_index + 1) in
              let images, _total = Pmem.Enumerate.images device ~limit:128 in
              Seq.iter
                (fun image ->
                  if not (Tool_intf.expired clock) then begin
                    match kv.Kv_target.probe (Pmem.Device.of_image image) keys with
                    | observed ->
                        let matches model =
                          List.for_all2
                            (fun k v -> v = Hashtbl.find_opt model k)
                            keys observed
                        in
                        if not (matches before || matches after) then
                          add Mumak.Report.Unrecoverable_state ~stack:(Some capture)
                            "output equivalence violated: post-crash state matches \
                             neither serialisation of the interrupted operation"
                    | exception _ ->
                        add Mumak.Report.Recovery_crash ~stack:(Some capture)
                          "post-crash probe crashed while replaying the key universe"
                  end)
                images
        in
        List.iter
          (fun c ->
            if Tool_intf.expired clock then timed_out := true
            else begin
              check_candidate c;
              incr processed
            end)
          (List.rev !candidates))
  in
  {
    Tool_intf.tool = name;
    report;
    metrics;
    timed_out = !timed_out;
    work_done = !processed;
    work_total = max 1 !n_candidates;
    tracking_words = !tracking;
    pm_overhead = 0.;
  }
