(** PMDebugger-style trace analysis (ASPLOS'21).

    PMDebugger rides on pmemcheck's annotations, which exist inside the PM
    library (PMDK) — so it only works for pmalloc-backed targets, mirroring
    its library dependence. Its data structure design: store records go
    into a flat array for cheap insertion (most durability obligations die
    at the nearest fence); whatever survives a fence migrates into an AVL
    tree for cheap long-term search. The array is segmented per
    transaction, so workloads with one big transaction carry much larger
    arrays — exactly why the original is ~10x slower on the original
    (grouped-transaction) data stores and fast on the SPT variants.

    Detects durability and performance bugs; ordering/atomicity need
    manual ordering annotations which the black-box setup does not have. *)

let name = "PMDebugger"

type store_record = { addr : int; size : int; seq : int; mutable flushed : bool }

let analyze ?budget_s (target : Mumak.Target.t) =
  let clock = Tool_intf.clock ?budget_s () in
  let report = Mumak.Report.create ~target:target.Mumak.Target.name in
  let timed_out = ref false in
  (* the per-interval array (cheap insertion)... *)
  let array : store_record list ref = ref [] in
  let array_len = ref 0 in
  (* ...and the long-term AVL tree (stdlib Map is an AVL) *)
  let module M = Map.Make (Int) in
  let avl = ref M.empty in
  let peak = ref 0 in
  let line_flushed = Hashtbl.create 1024 in
  let in_tx = ref false in
  (* end of a bookkeeping interval (fence outside tx, or tx end): flushed
     records die, unflushed ones migrate to the AVL tree *)
  let flush_interval () =
    List.iter
      (fun r ->
        if not r.flushed then
          List.iter
            (fun slot -> avl := M.add slot r.seq !avl)
            (Pmem.Addr.slots_spanned ~addr:r.addr ~size:r.size))
      !array;
    array := [];
    array_len := 0
  in
  let add kind seq detail =
    ignore
      (Mumak.Report.add report
         { Mumak.Report.kind; phase = Mumak.Report.Trace_analysis; stack = None;
           seq = Some seq; detail; fix = None })
  in
  let (), metrics =
    Mumak.Metrics.measure (fun () ->
        let listener (event : Pmtrace.Event.t) _stack =
          if (not !timed_out) && Tool_intf.expired clock then timed_out := true;
          if not !timed_out then begin
            (* Valgrind translation + shadow-memory cost per access; the
               shadow maintenance walks state proportional to the live
               bookkeeping, so long transactions hurt quadratically *)
            Dbi.charge ~cost:(8 * (!array_len + 4)) ();
            let seq = event.Pmtrace.Event.seq in
            match event.Pmtrace.Event.op with
            | Pmem.Op.Load { addr; size } ->
                (* pmemcheck instruments every memory access through
                   Valgrind: each load is checked against the pending-store
                   bookkeeping. With a large per-transaction array this scan
                   dominates — the reason the original is an order of
                   magnitude slower on grouped-transaction workloads. *)
                ignore
                  (List.exists
                     (fun r -> addr < r.addr + r.size && r.addr < addr + size)
                     !array)
            | Pmem.Op.Store { addr; size; nt } ->
                if not nt then begin
                  array := { addr; size; seq; flushed = false } :: !array;
                  incr array_len;
                  peak := max !peak ((!array_len * 6) + (M.cardinal !avl * 8))
                end
            | Pmem.Op.Flush { line; volatile; dirty; _ } ->
                if volatile then
                  add Mumak.Report.Redundant_flush seq "flush of a volatile address"
                else begin
                  if not dirty then
                    add Mumak.Report.Redundant_flush seq
                      (Printf.sprintf "line %d flushed while clean" line);
                  Hashtbl.replace line_flushed line ();
                  (* mark covered records, scanning the array (the design's
                     insertion-cheap / scan-at-flush trade-off) *)
                  List.iter
                    (fun r ->
                      if
                        (not r.flushed)
                        && List.mem line (Pmem.Addr.lines_spanned ~addr:r.addr ~size:r.size)
                      then r.flushed <- true)
                    !array;
                  (* and the AVL for long-lived records *)
                  let lo = Pmem.Addr.line_base line in
                  for a = lo / 8 to (lo + Pmem.Addr.line_size - 1) / 8 do
                    avl := M.remove a !avl
                  done
                end
            | Pmem.Op.Fence { pending_flushes; pending_nt; _ } ->
                if pending_flushes = 0 && pending_nt = 0 then
                  add Mumak.Report.Redundant_fence seq "fence with nothing pending";
                (* A fence only ends the bookkeeping interval outside a
                   transaction: pmemcheck's TX annotations delay the
                   durability obligations to the transaction end, so one
                   big transaction means one big array — the reason the
                   original is ~10x slower on grouped workloads. *)
                if not !in_tx then flush_interval ()
          end
        in
        let run () =
          let (_ : Pmem.Device.t) =
            Tool_intf.run_instrumented ~trace_loads:true target ~listener
          in
          ()
        in
        Pmalloc.Annotations.with_hooks
          ~on_tx_begin:(fun () -> in_tx := true)
          ~on_tx_end:(fun () ->
            in_tx := false;
            flush_interval ())
          run;
        (* end of execution: surviving records were never made durable *)
        List.iter
          (fun r ->
            if not r.flushed then
              add Mumak.Report.Durability_bug r.seq
                (Printf.sprintf "store at %d never flushed before the end of the run" r.addr))
          !array;
        M.iter
          (fun slot seq ->
            let line = slot * 8 / Pmem.Addr.line_size in
            if Hashtbl.mem line_flushed line then
              add Mumak.Report.Durability_bug seq
                (Printf.sprintf "store to slot %d never persisted" slot)
            else
              add Mumak.Report.Durability_bug seq
                (Printf.sprintf
                   "slot %d written but never flushed (transient data, reported as \
                    durability)"
                   slot))
          !avl)
  in
  {
    Tool_intf.tool = name;
    report;
    metrics;
    timed_out = !timed_out;
    work_done = 1;
    work_total = 1;
    tracking_words = !peak;
    pm_overhead = 1.0;
  }
