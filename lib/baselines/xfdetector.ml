(** XFDetector-style cross-failure bug detection (ASPLOS'20).

    Approach (section 3 of the paper): inject a failure at {e every} store
    to PM, maintain a shadow memory of persistence status, and run the
    {e instrumented} post-failure execution, flagging reads of data that was
    not persisted at the crash (cross-failure reads). Both the pre- and
    post-failure executions run fully instrumented, which is why the
    original needs ~40 s per operation and never finishes the 150k-op
    workloads.

    Here: the pre-failure run is re-executed per failure point (store-level
    granularity), the crash image is the ADR state (only fenced data
    survives — unlike Mumak's graceful prefix, this exposes missing
    persists directly), and the recovery runs with load tracing against a
    shadow map of unpersisted slots. *)

let name = "XFDetector"

(* Shadow memory: slots that were stored but not durable at the crash. *)
let shadow_of_device dev =
  let shadow = Hashtbl.create 1024 in
  List.iter
    (fun (line, _versions) ->
      let lo = Pmem.Addr.line_base line / Pmem.Addr.atomic_size in
      for slot = lo to lo + (Pmem.Addr.line_size / Pmem.Addr.atomic_size) - 1 do
        Hashtbl.replace shadow slot ()
      done)
    (Pmem.Device.line_versions dev);
  shadow

let subset_images_per_fp = 24

let analyze ?budget_s (target : Mumak.Target.t) =
  let clock = Tool_intf.clock ?budget_s () in
  let report = Mumak.Report.create ~target:target.Mumak.Target.name in
  let tracking = ref 0 in
  (* Pass 1: count the dynamic stores — XFDetector injects at every one of
     them, without any code-path deduplication (Table 3). *)
  let total = ref 0 in
  let count_stores (event : Pmtrace.Event.t) _ =
    match event.Pmtrace.Event.op with
    | Pmem.Op.Store _ -> incr total
    | _ -> ()
  in
  let (_ : Pmem.Device.t) = Tool_intf.run_instrumented target ~listener:count_stores in
  let total = !total in
  let injected = ref 0 in
  let timed_out = ref false in
  let (), measured =
   Mumak.Metrics.measure @@ fun () ->
  (* Pass 2: one fully instrumented re-execution per dynamic store. *)
  let next_store = ref 1 in
  let continue_ = ref true in
  while !continue_ && !next_store <= total && not !timed_out do
    if Tool_intf.expired clock then timed_out := true
    else begin
      let injected_here = ref None in
      let device = Pmem.Device.create ~size:target.Mumak.Target.pool_size () in
      let tracer = Pmtrace.Tracer.create ~collect:false device in
      let stores_seen = ref 0 in
      let detect (event : Pmtrace.Event.t) stack =
        match event.Pmtrace.Event.op with
        | Pmem.Op.Store _ when !injected_here = None ->
            incr stores_seen;
            if !stores_seen = !next_store then begin
              let extra, _total =
                Pmem.Enumerate.images device ~limit:subset_images_per_fp
              in
              injected_here :=
                Some
                  ( Pmtrace.Callstack.capture stack,
                    Pmem.Device.crash device ~policy:Pmem.Device.Adr,
                    shadow_of_device device,
                    List.of_seq extra );
              raise Mumak.Fault_injection.Crash_now
            end
        | _ -> ()
      in
      Pmtrace.Tracer.add_listener tracer detect;
      (try
         target.Mumak.Target.run ~device
           ~framer:(Pmtrace.Framer.of_callstack (Pmtrace.Tracer.stack tracer))
       with
      | Mumak.Fault_injection.Crash_now | Fun.Finally_raised Mumak.Fault_injection.Crash_now
        ->
          ()
      | _ when !injected_here <> None -> ());
      Pmtrace.Tracer.detach tracer;
      incr next_store;
      match !injected_here with
      | None -> continue_ := false
      | Some (capture, image, shadow, extra_images) ->
          incr injected;
          tracking := max !tracking (Hashtbl.length shadow * 3);
          (* instrumented post-failure execution with cross-failure checks,
             on the ADR image and on the controlled shadow-PM variants
             (XFDetector steers the values the post-failure code reads) *)
          List.iter
            (fun variant ->
              (* the post-failure execution runs fully instrumented under
                 Pin: charge the DBI platform cost per recovery *)
              Dbi.charge ~cost:60_000 ();
              match
                Mumak.Oracle.classify target.Mumak.Target.recover
                  (Pmem.Device.of_image variant)
              with
              | Mumak.Oracle.Consistent -> ()
              | Mumak.Oracle.Unrecoverable msg ->
                  ignore
                    (Mumak.Report.add report
                       { Mumak.Report.kind = Mumak.Report.Unrecoverable_state;
                         phase = Mumak.Report.Fault_injection;
                         stack = Some capture; seq = None;
                         detail = msg; fix = None })
              | Mumak.Oracle.Crashed msg ->
                  ignore
                    (Mumak.Report.add report
                       { Mumak.Report.kind = Mumak.Report.Recovery_crash;
                         phase = Mumak.Report.Fault_injection;
                         stack = Some capture; seq = None;
                         detail = msg; fix = None }))
            extra_images;
          Dbi.charge ~cost:60_000 ();
          let rdev = Pmem.Device.of_image image in
          Pmem.Device.trace_loads rdev true;
          let cross_failure = ref false in
          Pmem.Device.set_hook rdev
            (Some
               (function
               | Pmem.Op.Load { addr; size } ->
                   if
                     List.exists
                       (fun slot -> Hashtbl.mem shadow slot)
                       (Pmem.Addr.slots_spanned ~addr ~size)
                   then cross_failure := true
               | Pmem.Op.Store { addr; size; _ } ->
                   (* post-failure writes update the shadow *)
                   List.iter
                     (fun slot -> Hashtbl.remove shadow slot)
                     (Pmem.Addr.slots_spanned ~addr ~size)
               | Pmem.Op.Flush _ | Pmem.Op.Fence _ -> ()));
          let oracle = Mumak.Oracle.classify target.Mumak.Target.recover rdev in
          let add kind detail =
            ignore
              (Mumak.Report.add report
                 {
                   Mumak.Report.kind;
                   phase = Mumak.Report.Fault_injection;
                   stack = Some capture;
                   seq = None;
                   detail;
                   fix = None;
                 })
          in
          (match oracle with
          | Mumak.Oracle.Consistent -> ()
          | Mumak.Oracle.Unrecoverable msg -> add Mumak.Report.Unrecoverable_state msg
          | Mumak.Oracle.Crashed msg -> add Mumak.Report.Recovery_crash msg);
          if !cross_failure then
            add Mumak.Report.Durability_bug
              "post-failure execution read data that was not persisted at the crash"
    end
  done
  in
  let metrics = measured in
  {
    Tool_intf.tool = name;
    report;
    metrics;
    timed_out = !timed_out;
    work_done = !injected;
    work_total = total;
    tracking_words = !tracking;
    pm_overhead = 1.9 (* analysis metadata kept in PM, per the original *);
  }
