(** Target builders: wrap the PM applications into the black-box
    {!Mumak.Target.t} interface the tools analyse. *)

(** [tx_mode] reproduces the evaluation's two workload shapes (paper
    section 6.1): the original libpmemobj examples group puts in an
    enclosing transaction, while the "SPT" variant runs a single put per
    transaction. Grouping is expressed with an outer {!Pmalloc.Tx.run}
    which the applications' inner transactions flatten into. *)
type tx_mode =
  | Spt  (** single put per transaction: each op commits on its own *)
  | Grouped of int  (** the original shape: ops batched inside an outer tx *)

val of_app :
  (module Pmapps.Kv_intf.S) ->
  ?version:Pmalloc.Version.t ->
  ?tx_mode:tx_mode ->
  ?pool_size:int ->
  ?loc:int ->
  workload:Workload.op list ->
  unit ->
  Mumak.Target.t
(** [of_app (module A) ~version ~workload ()] builds a target that formats
    a pool, creates the structure and drives the whole workload.
    [pool_size] defaults to the application's minimum. *)

val loc_of_app : string -> int
(** Approximate codebase sizes (application + its PM dependencies), the
    x-axis metadata of Figure 5; [0] for unknown names. *)

val standard_workload : ?ops:int -> ?key_range:int -> ?seed:int64 -> unit -> Workload.op list
(** The evaluation mix with the defaults used throughout the test suite
    and benchmarks (600 ops over 200 keys, seed 42). *)

val key_string : int64 -> string
(** Fixed-width key encoding for the string-keyed stores: variable record
    sizes would make every string length a distinct code path and distort
    the path counts. *)

val value_string : int64 -> string

val of_montage :
  ?variant:[ `Buffered | `Lockfree ] -> workload:Workload.op list -> unit -> Mumak.Target.t
(** Montage targets (library-agnostic analysis, paper section 6.4). *)

val of_pmemkv :
  engine:Kvstores.Pmemkv.engine -> workload:Workload.op list -> unit -> Mumak.Target.t
(** pmemkv / Redis / RocksDB targets (scalability study, Figure 5). *)

val of_redis : workload:Workload.op list -> unit -> Mumak.Target.t
val of_rocksdb : workload:Workload.op list -> unit -> Mumak.Target.t
