(* Tests for the results store (run ledger + finding provenance):
   - codec round-trips: generated provenance and finding records survive
     to_json |> to_string |> of_string |> of_json byte-for-byte, and a
     real engine run's full record survives the same trip;
   - ledger: append/load by id and by unique prefix through a temp dir;
   - diff algebra: diff a a is empty, and new/fixed swap under argument
     exchange;
   - explain: every finding of a seeded run resolves, by 1-based index
     and by finding-id prefix, to a provenance record whose identity
     matches the finding;
   - schema validator: accepts emitted run and diff records, rejects
     wrong schema/version/type and torn structures;
   - trend gate: no baseline passes, improvement passes, a blown-up
     newest run fails, and smoke runs trend separately. *)

module Json = Telemetry.Json

let wl ?(ops = 200) ?(key_range = 60) () = Targets.standard_workload ~ops ~key_range ()

let target_for ?(workload = wl ()) name =
  match Pmapps.Registry.find name with
  | None -> Alcotest.failf "unknown app %s" name
  | Some (module A : Pmapps.Kv_intf.S) ->
      let version =
        (* hashmap_atomic's layout predates the 1.12 allocator *)
        if String.equal name "hashmap_atomic" then Pmalloc.Version.V1_6
        else Pmalloc.Version.V1_12
      in
      Targets.of_app (module A) ~version ~workload ()

let run_recorded ?(bugs = []) ?(config = Mumak.Config.default) name =
  Bugreg.with_enabled bugs (fun () ->
      let result = Mumak.Engine.analyze ~config (target_for name) in
      let workload =
        Printf.sprintf "test:%s%s" name
          (match bugs with [] -> "" | l -> ",bugs=" ^ String.concat "+" l)
      in
      Store.Record.of_result ~target:name ~workload ~config result)

(* --- generators ----------------------------------------------------- *)

let gen_name =
  QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 12))

let gen_text =
  (* printable ASCII including the characters the JSON escaper must
     handle *)
  QCheck.Gen.(string_size ~gen:(char_range ' ' '~') (int_range 0 30))

let gen_hex = QCheck.Gen.(string_size ~gen:(oneofl [ '0'; '9'; 'a'; 'f' ]) (return 16))

let gen_failure_point =
  let open QCheck.Gen in
  let* path = list_size (int_range 1 4) gen_name in
  let* op_index = int_range 0 500 in
  let* ordinal = int_range 0 500 in
  let* pseq = opt (int_range 1 5000) in
  return
    {
      Mumak.Provenance.fp_path = path;
      fp_op_index = op_index;
      fp_ordinal = ordinal;
      fp_pseq = pseq;
    }

let gen_image_diff =
  let open QCheck.Gen in
  let* lines =
    list_size (int_range 0 4)
      (let* line = int_range 0 1000 in
       let* crash = gen_hex in
       let* recovered = gen_hex in
       return { Mumak.Provenance.dl_line = line; dl_crash = crash; dl_recovered = recovered })
  in
  let* extra = int_range 0 20 in
  let differing = List.length lines + extra in
  return
    {
      Mumak.Provenance.id_lines = lines;
      id_differing = differing;
      id_capped = differing > List.length lines;
    }

let gen_provenance =
  let open QCheck.Gen in
  let* signature = gen_text in
  let* kind = gen_name in
  let* phase = gen_name in
  let* detail = gen_text in
  let* stack = opt (pair (list_size (int_range 1 4) gen_name) (int_range 0 200)) in
  let* seq = opt (int_range 1 10_000) in
  let* failure_point = opt gen_failure_point in
  let* window = list_size (int_range 0 7) gen_text in
  let* witness = gen_text in
  let* verdict = opt gen_text in
  let* fix = opt gen_text in
  let* image_diff = opt gen_image_diff in
  return
    {
      Mumak.Provenance.p_finding = Mumak.Provenance.id_of_signature signature;
      p_signature = signature;
      p_kind = kind;
      p_phase = phase;
      p_detail = detail;
      p_stack = stack;
      p_seq = seq;
      p_failure_point = failure_point;
      p_window = window;
      p_witness = witness;
      p_verdict = verdict;
      p_fix = fix;
      p_image_diff = image_diff;
    }

let prov_print p = Json.to_string (Mumak.Provenance.to_json p)

let prop_provenance_roundtrip =
  QCheck.Test.make ~name:"provenance round-trips through JSON text" ~count:300
    (QCheck.make ~print:prov_print gen_provenance) (fun p ->
      match Json.of_string (Json.to_string (Mumak.Provenance.to_json p)) with
      | Error msg -> QCheck.Test.fail_reportf "parse error: %s" msg
      | Ok j -> (
          match Mumak.Provenance.of_json j with
          | Error msg -> QCheck.Test.fail_reportf "decode error: %s" msg
          | Ok p' -> Mumak.Provenance.equal p p'))

let gen_finding =
  let open QCheck.Gen in
  let* signature = gen_text in
  let* kind = gen_name in
  let* phase = gen_name in
  let* path = list_size (int_range 0 4) gen_name in
  let* op_index = opt (int_range 0 200) in
  let* seq = opt (int_range 1 10_000) in
  let* detail = gen_text in
  let* fix = opt gen_text in
  let* verdict = opt gen_text in
  return
    {
      Store.Record.f_id = Mumak.Provenance.id_of_signature signature;
      f_signature = signature;
      f_kind = kind;
      f_phase = phase;
      f_path = path;
      f_op_index = op_index;
      f_seq = seq;
      f_detail = detail;
      f_fix = fix;
      f_verdict = verdict;
    }

let prop_finding_roundtrip =
  QCheck.Test.make ~name:"store findings round-trip through JSON text" ~count:300
    (QCheck.make
       ~print:(fun f -> Json.to_string (Store.Record.finding_to_json f))
       gen_finding)
    (fun f ->
      match Json.of_string (Json.to_string (Store.Record.finding_to_json f)) with
      | Error msg -> QCheck.Test.fail_reportf "parse error: %s" msg
      | Ok j -> (
          match Store.Record.finding_of_json j with
          | Error msg -> QCheck.Test.fail_reportf "decode error: %s" msg
          | Ok f' -> f = f'))

(* --- real-run record round-trip and ledger -------------------------- *)

let temp_store () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mumak-store-test-%d" (Unix.getpid ()))
  in
  Store.Ledger.open_ ~dir ()

let test_record_roundtrip () =
  let record = run_recorded ~bugs:[ "btree_insert_no_tx" ] "btree" in
  match Json.of_string (Json.to_string (Store.Record.to_json record)) with
  | Error msg -> Alcotest.failf "record reparse failed: %s" msg
  | Ok j -> (
      match Store.Record.of_json j with
      | Error msg -> Alcotest.failf "record decode failed: %s" msg
      | Ok record' ->
          Alcotest.(check bool)
            "run record survives serialization byte-for-byte" true
            (Store.Record.equal record record'))

let test_ledger_append_load () =
  let ledger = temp_store () in
  let record = run_recorded "hashmap_atomic" in
  let id = Store.Ledger.append_run ledger record in
  Alcotest.(check string) "append returns the content address" record.Store.Record.run_id id;
  (match Store.Ledger.load_run ledger id with
  | Error msg -> Alcotest.failf "load by full id failed: %s" msg
  | Ok r ->
      Alcotest.(check bool) "load by id returns the record" true
        (Store.Record.equal record r));
  (match Store.Ledger.load_run ledger (String.sub id 0 8) with
  | Error msg -> Alcotest.failf "load by prefix failed: %s" msg
  | Ok r ->
      Alcotest.(check bool) "load by unique prefix returns the record" true
        (Store.Record.equal record r));
  match Store.Ledger.load_run ledger "ffffffffffff" with
  | Ok _ -> Alcotest.fail "made-up id should not resolve"
  | Error _ -> ()

(* --- diff algebra ---------------------------------------------------- *)

let signatures fs = List.map (fun f -> f.Store.Record.f_signature) fs

let test_diff_self_empty () =
  let record = run_recorded ~bugs:[ "btree_insert_no_tx" ] "btree" in
  let d = Store.Diff.compute record record in
  Alcotest.(check bool) "diff a a is empty" true (Store.Diff.is_empty d);
  Alcotest.(check int) "no new findings" 0 (List.length d.Store.Diff.new_findings);
  Alcotest.(check int) "no fixed findings" 0 (List.length d.Store.Diff.fixed_findings);
  Alcotest.(check int) "every finding persists"
    (List.length record.Store.Record.findings)
    (List.length d.Store.Diff.persisting)

let test_diff_symmetry () =
  let clean = run_recorded "btree" in
  let seeded = run_recorded ~bugs:[ "btree_insert_no_tx" ] "btree" in
  let forward = Store.Diff.compute clean seeded in
  let backward = Store.Diff.compute seeded clean in
  Alcotest.(check (list string))
    "forward new = backward fixed"
    (signatures forward.Store.Diff.new_findings)
    (signatures backward.Store.Diff.fixed_findings);
  Alcotest.(check (list string))
    "forward fixed = backward new"
    (signatures forward.Store.Diff.fixed_findings)
    (signatures backward.Store.Diff.new_findings);
  Alcotest.(check (list string))
    "persisting agrees up to signature"
    (signatures forward.Store.Diff.persisting)
    (signatures backward.Store.Diff.persisting);
  Alcotest.(check bool)
    "the seeded bug produced at least one new finding" true
    (forward.Store.Diff.new_findings <> [])

(* --- explain --------------------------------------------------------- *)

let test_explain_resolves_every_finding () =
  let record = run_recorded ~bugs:[ "btree_insert_no_tx" ] "btree" in
  Alcotest.(check bool) "the seeded run has findings" true
    (record.Store.Record.findings <> []);
  List.iteri
    (fun i (f : Store.Record.finding) ->
      (* by 1-based index *)
      (match Store.Explain.find record (string_of_int (i + 1)) with
      | Error msg -> Alcotest.failf "finding %d unresolvable by index: %s" (i + 1) msg
      | Ok (f', p) ->
          Alcotest.(check string)
            (Printf.sprintf "index %d resolves to the right finding" (i + 1))
            f.Store.Record.f_id f'.Store.Record.f_id;
          Alcotest.(check string)
            (Printf.sprintf "provenance %d carries the finding's identity" (i + 1))
            f.Store.Record.f_signature p.Mumak.Provenance.p_signature;
          Alcotest.(check bool)
            (Printf.sprintf "chain %d is non-empty" (i + 1))
            true
            (Store.Explain.chain record (f', p) <> []));
      (* by finding-id (full ids are unique; prefixes may collide) *)
      match Store.Explain.find record f.Store.Record.f_id with
      | Error msg ->
          Alcotest.failf "finding %s unresolvable by id: %s" f.Store.Record.f_id msg
      | Ok (f', _) ->
          Alcotest.(check string) "id resolves to itself" f.Store.Record.f_id
            f'.Store.Record.f_id)
    record.Store.Record.findings

let test_explain_fi_findings_have_evidence () =
  let record = run_recorded ~bugs:[ "btree_insert_no_tx" ] "btree" in
  let fi =
    List.filter
      (fun (p : Mumak.Provenance.t) ->
        String.equal p.Mumak.Provenance.p_phase "fault_injection")
      record.Store.Record.provenance
  in
  Alcotest.(check bool) "the seeded run has fault-injection findings" true (fi <> []);
  List.iter
    (fun (p : Mumak.Provenance.t) ->
      Alcotest.(check bool) "FI finding carries a failure point" true
        (p.Mumak.Provenance.p_failure_point <> None);
      Alcotest.(check bool) "FI finding carries a trace window" true
        (p.Mumak.Provenance.p_window <> []);
      Alcotest.(check bool) "FI finding carries an image diff" true
        (p.Mumak.Provenance.p_image_diff <> None);
      Alcotest.(check bool) "FI finding carries a verdict" true
        (p.Mumak.Provenance.p_verdict <> None))
    fi

(* --- schema validator ------------------------------------------------ *)

let test_schema_accepts_emitted () =
  let record = run_recorded ~bugs:[ "btree_insert_no_tx" ] "btree" in
  (match Store.Schema.validate (Store.Record.to_json record) with
  | Error msg -> Alcotest.failf "emitted run record rejected: %s" msg
  | Ok _ -> ());
  let clean = run_recorded "btree" in
  match Store.Schema.validate (Store.Diff.to_json (Store.Diff.compute clean record)) with
  | Error msg -> Alcotest.failf "emitted diff record rejected: %s" msg
  | Ok _ -> ()

let test_schema_rejections () =
  let record = run_recorded "hashmap_atomic" in
  let json = Store.Record.to_json record in
  let patch key value = function
    | Json.Assoc fields ->
        Json.Assoc (List.map (fun (k, v) -> if k = key then (k, value) else (k, v)) fields)
    | other -> other
  in
  let expect_reject label doc =
    match Store.Schema.validate doc with
    | Ok desc -> Alcotest.failf "%s should be rejected (got OK: %s)" label desc
    | Error _ -> ()
  in
  expect_reject "wrong schema name" (patch "schema" (Json.String "mumak.wrong") json);
  expect_reject "wrong schema version" (patch "version" (Json.Int 999) json);
  expect_reject "unknown record type" (patch "type" (Json.String "blob") json);
  expect_reject "non-string run id" (patch "run_id" (Json.Int 7) json);
  expect_reject "missing counters" (patch "counters" Json.Null json);
  expect_reject "torn findings list" (patch "findings" (Json.List [ Json.Int 1 ]) json);
  expect_reject "findings/provenance length mismatch"
    (patch "provenance" (Json.List []) json);
  expect_reject "not a store document" (Json.Assoc [ ("hello", Json.Int 1) ])

(* --- trend gate ------------------------------------------------------ *)

let envelope ?(smoke = false) ~experiment ~wall ~alloc () =
  Json.Assoc
    [
      ("schema", Json.String "mumak.bench");
      ("version", Json.Int 2);
      ("experiment", Json.String experiment);
      ("smoke", Json.Bool smoke);
      ( "meta",
        Json.Assoc
          [
            ("git_commit", Json.String "deadbeef");
            ("ocaml_version", Json.String Sys.ocaml_version);
            ("host_cores", Json.Int 4);
            ("smoke", Json.Bool smoke);
            ("wall_seconds", Json.Float wall);
            ("allocated_bytes", Json.Float alloc);
          ] );
    ]

let test_trend_gate () =
  (* single sample: no baseline, passes *)
  let only = Store.Trend.check [ envelope ~experiment:"scaling" ~wall:1.0 ~alloc:1e8 () ] in
  Alcotest.(check int) "one experiment judged" 1 (List.length only);
  Alcotest.(check bool) "no baseline passes" false (Store.Trend.any_regressed only);
  (* improvement: passes *)
  let improved =
    Store.Trend.check
      [
        envelope ~experiment:"scaling" ~wall:2.0 ~alloc:2e8 ();
        envelope ~experiment:"scaling" ~wall:1.0 ~alloc:1e8 ();
      ]
  in
  Alcotest.(check bool) "improvement passes" false (Store.Trend.any_regressed improved);
  (* blow-up beyond factor + slack: fails *)
  let blown =
    Store.Trend.check
      [
        envelope ~experiment:"scaling" ~wall:1.0 ~alloc:1e8 ();
        envelope ~experiment:"scaling" ~wall:10.0 ~alloc:1e8 ();
      ]
  in
  Alcotest.(check bool) "10x wall blow-up fails" true (Store.Trend.any_regressed blown);
  (* a fast earlier run, not the latest prior one, is the baseline *)
  let min_baseline =
    Store.Trend.check
      [
        envelope ~experiment:"scaling" ~wall:1.0 ~alloc:1e8 ();
        envelope ~experiment:"scaling" ~wall:50.0 ~alloc:1e8 ();
        envelope ~experiment:"scaling" ~wall:10.0 ~alloc:1e8 ();
      ]
  in
  Alcotest.(check bool) "baseline is the min over history, not the previous run" true
    (Store.Trend.any_regressed min_baseline);
  (* smoke and full runs trend as separate series *)
  let stratified =
    Store.Trend.check
      [
        envelope ~experiment:"scaling" ~wall:0.1 ~alloc:1e6 ~smoke:true ();
        envelope ~experiment:"scaling" ~wall:10.0 ~alloc:1e9 ();
      ]
  in
  Alcotest.(check int) "smoke trends separately" 2 (List.length stratified);
  Alcotest.(check bool) "full run is not judged against the smoke baseline" false
    (Store.Trend.any_regressed stratified)

(* --- bench history on disk ------------------------------------------ *)

let test_bench_history_roundtrip () =
  let ledger = temp_store () in
  let e1 = envelope ~experiment:"micro" ~wall:1.0 ~alloc:1e7 () in
  let e2 = envelope ~experiment:"micro" ~wall:1.1 ~alloc:1.1e7 () in
  Store.Ledger.append_bench ledger e1;
  Store.Ledger.append_bench ledger e2;
  let history = Store.Ledger.bench_history ledger in
  Alcotest.(check bool) "history preserves both envelopes in order" true
    (List.length history >= 2
    &&
    let last2 =
      List.filteri (fun i _ -> i >= List.length history - 2) history
    in
    List.map Json.to_string last2 = List.map Json.to_string [ e1; e2 ])

let () =
  Alcotest.run "store"
    [
      ( "codecs",
        [
          QCheck_alcotest.to_alcotest prop_provenance_roundtrip;
          QCheck_alcotest.to_alcotest prop_finding_roundtrip;
          Alcotest.test_case "engine run record round-trips" `Quick test_record_roundtrip;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "append/load by id and prefix" `Quick test_ledger_append_load;
          Alcotest.test_case "bench history round-trips" `Quick
            test_bench_history_roundtrip;
        ] );
      ( "diff",
        [
          Alcotest.test_case "self-diff is empty" `Quick test_diff_self_empty;
          Alcotest.test_case "new/fixed swap under exchange" `Quick test_diff_symmetry;
        ] );
      ( "explain",
        [
          Alcotest.test_case "every finding resolves" `Quick
            test_explain_resolves_every_finding;
          Alcotest.test_case "FI findings carry full evidence" `Quick
            test_explain_fi_findings_have_evidence;
        ] );
      ( "schema",
        [
          Alcotest.test_case "accepts emitted records" `Quick test_schema_accepts_emitted;
          Alcotest.test_case "rejects malformed records" `Quick test_schema_rejections;
        ] );
      ("trend", [ Alcotest.test_case "trend gate verdicts" `Quick test_trend_gate ]);
    ]
