(* The differential harness for the parallel fault-injection engine.

   The paper's [Snapshot] optimisation promises to detect exactly the same
   bugs as the cost-faithful [Reexecute] loop, and the domain-parallel
   scheduler ([Config.jobs > 1]) promises to be indistinguishable from the
   sequential one. This harness enforces both mechanically: for every
   registered target — the full application suite, the Montage variants,
   the larger KV stores, and the seeded-bug variants from the application
   registry, pmalloc, and Montage — [Snapshot], [Reexecute jobs=1] and
   [Reexecute jobs=4] must produce byte-for-byte identical deduplicated
   reports, identical failure-point counts, and identical injection counts.

   Also covers [Engine.resolve_stacks] (the instruction-counter stack
   re-attachment of paper section 5), previously untested. *)

let app name =
  match Pmapps.Registry.find name with
  | Some m -> m
  | None -> Alcotest.failf "unknown app %s" name

let version_for name =
  if String.equal name "hashmap_atomic" then Pmalloc.Version.V1_6
  else Pmalloc.Version.V1_12

(* --- the differential check itself --- *)

let strategies =
  [
    ("snapshot", Mumak.Config.Snapshot, 1);
    ("reexecute j=1", Mumak.Config.Reexecute, 1);
    ("reexecute j=4", Mumak.Config.Reexecute, 4);
  ]

let differential ?(expect_bugs = false) ~bugs name make_target =
  Bugreg.with_enabled bugs (fun () ->
      let results =
        List.map
          (fun (label, strategy, jobs) ->
            let config = { Mumak.Config.default with strategy; jobs } in
            (label, Mumak.Engine.analyze ~config (make_target ())))
          strategies
      in
      let (_, base), rest = (List.hd results, List.tl results) in
      List.iter
        (fun (label, r) ->
          Alcotest.(check int)
            (Printf.sprintf "%s: %s failure points" name label)
            base.Mumak.Engine.failure_points r.Mumak.Engine.failure_points;
          Alcotest.(check int)
            (Printf.sprintf "%s: %s injections" name label)
            base.Mumak.Engine.injections r.Mumak.Engine.injections;
          Alcotest.(check (list string))
            (Printf.sprintf "%s: %s report signature" name label)
            (Mumak.Report.signature base.Mumak.Engine.report)
            (Mumak.Report.signature r.Mumak.Engine.report))
        rest;
      (* the two re-execution schedules must also pay the same cost *)
      (match rest with
      | [ (_, seq); (_, par) ] ->
          Alcotest.(check int)
            (name ^ ": sequential and parallel executions")
            seq.Mumak.Engine.executions par.Mumak.Engine.executions;
          Alcotest.(check bool)
            (name ^ ": parallel run used worker domains")
            true
            (List.length par.Mumak.Engine.worker_metrics
             = min 4 (max 1 par.Mumak.Engine.failure_points))
      | _ -> Alcotest.fail "expected two re-execution results");
      if expect_bugs then
        Alcotest.(check bool)
          (name ^ ": seeded bug detected")
          true
          (Mumak.Report.correctness_bugs base.Mumak.Engine.report <> []))

let wl ?(ops = 80) ?(key_range = 30) ?(seed = 42L) () =
  Workload.standard ~ops ~key_range ~seed

(* --- clean targets: the whole registry + Montage + the KV stores --- *)

let test_clean_apps () =
  List.iter
    (fun name ->
      differential ~bugs:[] name (fun () ->
          Targets.of_app (app name) ~version:(version_for name) ~workload:(wl ()) ()))
    [ "btree"; "rbtree"; "hashmap_atomic"; "hashmap_tx"; "wort"; "level_hash"; "cceh";
      "fast_fair"; "art" ]

let test_clean_grouped () =
  differential ~bugs:[] "btree (grouped)" (fun () ->
      Targets.of_app (app "btree") ~version:Pmalloc.Version.V1_12
        ~tx_mode:(Targets.Grouped 16) ~workload:(wl ()) ())

let test_clean_montage () =
  differential ~bugs:[] "montage.Hashtable" (fun () ->
      Targets.of_montage ~variant:`Buffered ~workload:(wl ~ops:60 ()) ());
  differential ~bugs:[] "montage.LfHashtable" (fun () ->
      Targets.of_montage ~variant:`Lockfree ~workload:(wl ~ops:60 ()) ())

let test_clean_kvstores () =
  differential ~bugs:[] "pmemkv.cmap" (fun () ->
      Targets.of_pmemkv ~engine:Kvstores.Pmemkv.Cmap ~workload:(wl ~ops:60 ()) ());
  differential ~bugs:[] "pmemkv.stree" (fun () ->
      Targets.of_pmemkv ~engine:Kvstores.Pmemkv.Stree ~workload:(wl ~ops:60 ()) ());
  differential ~bugs:[] "redis" (fun () ->
      Targets.of_redis ~workload:(wl ~ops:60 ()) ());
  differential ~bugs:[] "rocksdb" (fun () ->
      Targets.of_rocksdb ~workload:(wl ~ops:60 ()) ())

(* --- seeded-bug variants: application, pmalloc-library, Montage bugs --- *)

let test_seeded_app_bugs () =
  differential ~expect_bugs:true ~bugs:[ "btree_insert_no_tx" ] "btree+insert_no_tx"
    (fun () ->
      Targets.of_app (app "btree") ~version:Pmalloc.Version.V1_12 ~workload:(wl ()) ());
  differential ~bugs:[ "hm_atomic_count_never_flushed" ] "hashmap_atomic+never_flushed"
    (fun () ->
      Targets.of_app (app "hashmap_atomic") ~version:Pmalloc.Version.V1_6
        ~workload:(wl ()) ())

let test_seeded_pmalloc_bugs () =
  (* the library bugs need large grouped transactions to fire *)
  let grouped () =
    Targets.of_app (app "btree") ~version:Pmalloc.Version.V1_12
      ~tx_mode:(Targets.Grouped 64) ~workload:(wl ~ops:120 ()) ()
  in
  differential ~expect_bugs:true ~bugs:[ "pmdk112_tx_overflow_commit" ]
    "btree+pmdk112_tx_overflow_commit" grouped;
  differential ~bugs:[ "pmalloc_redo_missing_drain" ] "btree+redo_missing_drain" grouped;
  differential ~bugs:[ "pmalloc_persist_double_flush" ] "btree+persist_double_flush"
    grouped

let test_seeded_montage_bugs () =
  differential ~expect_bugs:true ~bugs:[ "montage_alloc_head_unpersisted" ]
    "montage+alloc_head_unpersisted" (fun () ->
      Targets.of_montage ~variant:`Buffered ~workload:(wl ~ops:60 ()) ());
  differential ~expect_bugs:true ~bugs:[ "montage_dtor_window" ] "montage+dtor_window"
    (fun () -> Targets.of_montage ~variant:`Buffered ~workload:(wl ~ops:60 ()) ())

(* --- parallel scheduler mechanics --- *)

let test_parallel_visits_every_leaf () =
  let target =
    Targets.of_app (app "btree") ~version:Pmalloc.Version.V1_12 ~workload:(wl ()) ()
  in
  let config = { Mumak.Config.faithful with Mumak.Config.jobs = 4 } in
  let tree, _stats = Mumak.Fault_injection.build_tree config target in
  let result = Mumak.Fault_injection.inject_reexecute config target tree in
  Alcotest.(check int) "every leaf visited" 0 (Mumak.Fp_tree.unvisited_count tree);
  Alcotest.(check int) "one injection per leaf" (Mumak.Fp_tree.size tree)
    (List.length result.Mumak.Fault_injection.records);
  Alcotest.(check int) "one execution per leaf" (Mumak.Fp_tree.size tree)
    result.Mumak.Fault_injection.executions;
  Alcotest.(check int) "four workers reported metrics" 4
    (List.length result.Mumak.Fault_injection.worker_metrics);
  (* the deterministic-merge rule: records come back sorted by ordinal *)
  let ordinals =
    List.map
      (fun r -> r.Mumak.Fault_injection.point.Mumak.Fp_tree.ordinal)
      result.Mumak.Fault_injection.records
  in
  Alcotest.(check (list int)) "records sorted by discovery ordinal"
    (List.sort compare ordinals) ordinals

let test_more_jobs_than_leaves () =
  (* jobs far beyond the leaf count must degrade gracefully *)
  let target =
    Targets.of_app (app "wort") ~version:Pmalloc.Version.V1_12
      ~workload:(wl ~ops:12 ~key_range:6 ()) ()
  in
  let run jobs =
    Mumak.Engine.analyze
      ~config:{ Mumak.Config.faithful with Mumak.Config.jobs } target
  in
  let seq = run 1 and par = run 64 in
  Alcotest.(check (list string)) "identical reports at jobs=64"
    (Mumak.Report.signature seq.Mumak.Engine.report)
    (Mumak.Report.signature par.Mumak.Engine.report);
  Alcotest.(check bool) "worker pool clamped to leaf count" true
    (List.length par.Mumak.Engine.worker_metrics <= par.Mumak.Engine.failure_points)

(* --- Engine.resolve_stacks --- *)

(* Observe the ground truth: one instrumented execution capturing the stack
   at every instruction counter. *)
let observe_stacks (target : Mumak.Target.t) =
  let observed = Hashtbl.create 256 in
  let device = Pmem.Device.create ~size:target.Mumak.Target.pool_size () in
  let tracer = Pmtrace.Tracer.create ~collect:false device in
  Pmtrace.Tracer.add_listener tracer (fun event stack ->
      Hashtbl.replace observed event.Pmtrace.Event.seq (Pmtrace.Callstack.capture stack));
  target.Mumak.Target.run ~device
    ~framer:(Pmtrace.Framer.of_callstack (Pmtrace.Tracer.stack tracer));
  Pmtrace.Tracer.detach tracer;
  observed

let test_resolve_stacks_matches_first_execution () =
  let target =
    Targets.of_app (app "btree") ~version:Pmalloc.Version.V1_12 ~workload:(wl ()) ()
  in
  let observed = observe_stacks target in
  let total = Hashtbl.length observed in
  Alcotest.(check bool) "execution produced events" true (total > 50);
  (* ask for a spread of instruction counters, including both ends *)
  let wanted =
    [ 1; 2; total / 3; total / 2; total - 1; total ]
    |> List.filter (fun s -> s >= 1 && s <= total)
    |> List.sort_uniq compare
  in
  let resolved = Mumak.Engine.resolve_stacks target ~wanted in
  List.iter
    (fun seq ->
      match Hashtbl.find_opt resolved seq with
      | None -> Alcotest.failf "seq %d not resolved" seq
      | Some capture ->
          Alcotest.(check bool)
            (Printf.sprintf "stack at seq %d matches the first execution" seq)
            true
            (Pmtrace.Callstack.capture_equal capture (Hashtbl.find observed seq)))
    wanted;
  Alcotest.(check int) "nothing beyond the wanted set" (List.length wanted)
    (Hashtbl.length resolved)

let test_resolve_stacks_findings () =
  (* a trace-analysis finding's attached stack must be the stack observed
     at the same instruction counter in the first execution... *)
  let make_target () =
    Targets.of_app (app "hashmap_atomic") ~version:Pmalloc.Version.V1_6
      ~workload:(wl ()) ()
  in
  Bugreg.with_enabled [ "hm_atomic_count_never_flushed" ] (fun () ->
      let observed = observe_stacks (make_target ()) in
      let result = Mumak.Engine.analyze (make_target ()) in
      let ta_findings =
        List.filter
          (fun f -> f.Mumak.Report.phase = Mumak.Report.Trace_analysis)
          (Mumak.Report.findings result.Mumak.Engine.report)
      in
      Alcotest.(check bool) "trace-analysis findings present" true (ta_findings <> []);
      List.iter
        (fun f ->
          match (f.Mumak.Report.stack, f.Mumak.Report.seq) with
          | Some capture, Some seq ->
              Alcotest.(check bool)
                (Printf.sprintf "finding stack at seq %d matches observation" seq)
                true
                (Pmtrace.Callstack.capture_equal capture (Hashtbl.find observed seq))
          | None, _ -> Alcotest.fail "finding lost its stack with resolve_stacks:true"
          | Some _, None -> Alcotest.fail "trace finding without an instruction counter")
        ta_findings;
      (* ...and resolve_stacks:false must yield stackless findings *)
      let bare =
        Mumak.Engine.analyze
          ~config:{ Mumak.Config.default with Mumak.Config.resolve_stacks = false }
          (make_target ())
      in
      let bare_ta =
        List.filter
          (fun f -> f.Mumak.Report.phase = Mumak.Report.Trace_analysis)
          (Mumak.Report.findings bare.Mumak.Engine.report)
      in
      Alcotest.(check bool) "findings survive without stacks" true (bare_ta <> []);
      Alcotest.(check bool) "resolve_stacks:false yields stack = None" true
        (List.for_all (fun f -> f.Mumak.Report.stack = None) bare_ta);
      (* under the replay-first default, stacks ride on the shared recording
         and resolution is free: the execution count must not change *)
      Alcotest.(check int) "resolution costs no execution under replay"
        result.Mumak.Engine.executions bare.Mumak.Engine.executions;
      (* under live re-execution, skipping the resolution execution must be
         visible in the count *)
      let faithful = Mumak.Engine.analyze ~config:Mumak.Config.faithful (make_target ()) in
      let faithful_bare =
        Mumak.Engine.analyze
          ~config:{ Mumak.Config.faithful with Mumak.Config.resolve_stacks = false }
          (make_target ())
      in
      Alcotest.(check int) "one fewer execution without resolution"
        (faithful.Mumak.Engine.executions - 1) faithful_bare.Mumak.Engine.executions)

let () =
  Alcotest.run "parallel"
    [
      ( "differential",
        [
          Alcotest.test_case "clean application suite" `Slow test_clean_apps;
          Alcotest.test_case "clean grouped transactions" `Slow test_clean_grouped;
          Alcotest.test_case "clean Montage variants" `Slow test_clean_montage;
          Alcotest.test_case "clean KV stores" `Slow test_clean_kvstores;
          Alcotest.test_case "seeded application bugs" `Slow test_seeded_app_bugs;
          Alcotest.test_case "seeded pmalloc bugs" `Slow test_seeded_pmalloc_bugs;
          Alcotest.test_case "seeded Montage bugs" `Slow test_seeded_montage_bugs;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "parallel visits every leaf" `Slow
            test_parallel_visits_every_leaf;
          Alcotest.test_case "more jobs than leaves" `Quick test_more_jobs_than_leaves;
        ] );
      ( "resolve-stacks",
        [
          Alcotest.test_case "matches first execution" `Quick
            test_resolve_stacks_matches_first_execution;
          Alcotest.test_case "findings carry resolved stacks" `Slow
            test_resolve_stacks_findings;
        ] );
    ]
