(* Tests for the optimizer pipeline (cost model + plan synthesis + replay
   verification):
   - cost model: static weights, fit anchoring on the clwb mean, unsampled
     classes keeping their static weight, JSON round-trip;
   - synthesis on synthetic traces with one planted opportunity per rule
     (batch_fences, coalesce_flushes, move_flush, convert_to_nt,
     convert_to_clwb — the last never fires on the kvstore matrix, so only
     a synthetic trace covers it);
   - end-to-end optimize() on synthetic recordings: proven verdicts for
     safe rewrites, deterministic plan order;
   - qcheck: Replay.rewrite edit composition — renumbering stays
     consecutive under overlapping move+delete sets, edit-list order is
     irrelevant, and rewritten traces survive arena serialization
     byte-for-byte;
   - the engine differential on a kvstore: >=1 proven bundle, zero harmful
     shipped, executions stay 1, and the report signature is byte-identical
     to the same run with the optimizer off. *)

module Replay = Pmtrace.Replay
module Opt = Analysis.Opt
module Cost = Analysis.Cost

let pool_size = 1 lsl 16

(* --- synthetic trace construction ---------------------------------- *)

let cap path op_index = { Pmtrace.Callstack.path; op_index }

let mk_events ops =
  List.mapi
    (fun i (op, stack) -> { Pmtrace.Event.seq = i + 1; op; stack })
    ops

let store ?(nt = false) ?stack addr size = (Pmem.Op.Store { addr; size; nt }, stack)

let flush ?(kind = Pmem.Op.Clwb) ?stack line =
  (Pmem.Op.Flush { kind; line; dirty = true; volatile = false }, stack)

let fence ?stack () =
  (Pmem.Op.Fence { kind = Pmem.Op.Sfence; pending_flushes = 0; pending_nt = 0 }, stack)

(* Flush [dirty]/[volatile] bits and fence pending counts above are
   placeholders; the device recomputes them. *)
let normalized ops =
  Replay.normalize_events ~pool_size (mk_events ops)

let plans_of ops = Opt.synthesize ~weights:Cost.static_weights (normalized ops)

let rules plans = List.map (fun p -> p.Opt.p_rule) plans

(* --- cost model ----------------------------------------------------- *)

let test_static_weights () =
  let w = Cost.static_weights in
  let cycles op = Cost.op_cycles w op in
  Alcotest.(check int) "store" w.Cost.w_store
    (cycles (Pmem.Op.Store { addr = 0; size = 8; nt = false }));
  Alcotest.(check int) "nt store" w.Cost.w_nt_store
    (cycles (Pmem.Op.Store { addr = 0; size = 8; nt = true }));
  Alcotest.(check int) "clwb" w.Cost.w_clwb
    (cycles (Pmem.Op.Flush { kind = Pmem.Op.Clwb; line = 0; dirty = true; volatile = false }));
  Alcotest.(check int) "clflush" w.Cost.w_clflush
    (cycles (Pmem.Op.Flush { kind = Pmem.Op.Clflush; line = 0; dirty = true; volatile = false }));
  Alcotest.(check int) "sfence" w.Cost.w_sfence
    (cycles (Pmem.Op.Fence { kind = Pmem.Op.Sfence; pending_flushes = 0; pending_nt = 0 }));
  Alcotest.(check int) "loads are free" 0
    (cycles (Pmem.Op.Load { addr = 0; size = 8 }));
  Alcotest.(check string) "source" "static" w.Cost.w_source;
  (* the lint anchors: optimizer projections and lint estimates share a scale *)
  Alcotest.(check int) "clwb matches lint's flush estimate" 250 w.Cost.w_clwb;
  Alcotest.(check int) "sfence matches lint's fence estimate" 30 w.Cost.w_sfence

let test_fit () =
  Alcotest.(check bool) "empty fit is the static table" true
    (Cost.fit [] = Cost.static_weights);
  let hist samples =
    let h = Telemetry.Histogram.create () in
    List.iter (Telemetry.Histogram.observe h) samples;
    h
  in
  (* clwb sampled at mean 500ns anchors the scale at 250/500; a clflush
     mean of 1000ns then lands on 500 cycles *)
  let w =
    Cost.fit [ ("cost.clwb_ns", hist [ 400; 600 ]); ("cost.clflush_ns", hist [ 1000 ]) ]
  in
  Alcotest.(check string) "source" "fitted" w.Cost.w_source;
  Alcotest.(check int) "anchor class keeps its static weight" 250 w.Cost.w_clwb;
  Alcotest.(check int) "sampled class rescales off the anchor" 500 w.Cost.w_clflush;
  Alcotest.(check int) "unsampled class keeps its static weight"
    Cost.static_weights.Cost.w_sfence w.Cost.w_sfence

let test_measure_and_trace_cycles () =
  let evs =
    normalized
      [ store 0 8; flush 0; fence (); store 64 8; flush ~kind:Pmem.Op.Clflush 1; fence () ]
  in
  let w = Cost.static_weights in
  Alcotest.(check int) "trace_cycles sums the per-op weights"
    ((2 * w.Cost.w_store) + w.Cost.w_clwb + w.Cost.w_clflush + (2 * w.Cost.w_sfence))
    (Cost.trace_cycles w evs);
  let hists = Cost.measure ~pool_size evs in
  List.iter
    (fun cls ->
      match List.assoc_opt cls hists with
      | Some h -> Alcotest.(check bool) (cls ^ " sampled") true (h.Telemetry.Histogram.count > 0)
      | None -> Alcotest.failf "measure recorded no %s histogram" cls)
    [ "cost.store_ns"; "cost.clwb_ns"; "cost.clflush_ns"; "cost.sfence_ns" ];
  (* fitted weights from a measured pass still price every op positively *)
  let fitted = Cost.fit hists in
  Alcotest.(check bool) "fitted weights stay positive" true
    (Cost.trace_cycles fitted evs > 0)

(* --- synthesis rules ------------------------------------------------ *)

let test_rule_batch_fences () =
  let f1 = cap [ "main"; "commit" ] 4 and f2 = cap [ "main"; "commit" ] 9 in
  let plans =
    plans_of
      [
        store 0 8; flush ~stack:(cap [ "main" ] 2) 0; fence ~stack:f1 (); fence ~stack:f2 ();
      ]
  in
  Alcotest.(check (list string)) "one batching plan" [ "batch_fences" ] (rules plans);
  let p = List.hd plans in
  Alcotest.(check int) "one instance" 1 p.Opt.p_instances;
  Alcotest.(check bool) "deletes the first fence of the pair" true
    (p.Opt.p_edits = [ Replay.Delete_fence_at { pseq = 3 } ])

let test_rule_batch_fences_negative () =
  (* distinct frame paths: no batching opportunity *)
  let f1 = cap [ "main"; "commit" ] 4 and f2 = cap [ "main"; "flush_log" ] 9 in
  let plans =
    plans_of
      [
        store 0 8; flush ~stack:(cap [ "main" ] 2) 0; fence ~stack:f1 (); fence ~stack:f2 ();
      ]
  in
  Alcotest.(check (list string)) "no plan across frames" [] (rules plans)

let test_rule_coalesce () =
  (* two sites flush the same line in one epoch; the later site survives *)
  let a = cap [ "main"; "update_a" ] 2 and b = cap [ "main"; "update_b" ] 5 in
  let plans =
    plans_of
      [ store 0 8; flush ~stack:a 0; store 0 8; flush ~stack:b 0; fence ~stack:(cap [ "main" ] 7) () ]
  in
  Alcotest.(check (list string)) "one coalesce plan" [ "coalesce_flushes" ] (rules plans);
  let p = List.hd plans in
  Alcotest.(check bool) "deletes the earlier site's capture" true
    (p.Opt.p_edits = [ Replay.Delete_flush_at { pseq = 2 } ])

let test_rule_move () =
  (* one site flushes the same line per iteration; a store follows the
     surviving capture, so the plan both deletes and moves *)
  let site = cap [ "main"; "append" ] 3 in
  let plans =
    plans_of
      [
        store 0 8; flush ~stack:site 0; store 0 8; flush ~stack:site 0; store 0 8;
        fence ~stack:(cap [ "main" ] 9) ();
      ]
  in
  Alcotest.(check (list string)) "one move plan" [ "move_flush" ] (rules plans);
  let p = List.hd plans in
  Alcotest.(check bool) "deletes the first capture and moves the survivor" true
    (p.Opt.p_edits
    = [ Replay.Delete_flush_at { pseq = 2 }; Replay.Move_flush_to { pseq = 4; to_pseq = 5 } ])

let test_rule_convert_nt () =
  (* sole writer of two lines, both captured afterwards, epoch fenced *)
  let s = cap [ "main"; "write_buf" ] 1 in
  let plans =
    plans_of
      [
        store ~stack:s 0 128;
        flush ~stack:(cap [ "main"; "persist" ] 4) 0;
        flush ~stack:(cap [ "main"; "persist" ] 4) 1;
        fence ~stack:(cap [ "main" ] 6) ();
      ]
  in
  Alcotest.(check (list string)) "one conversion plan" [ "convert_to_nt" ] (rules plans);
  let p = List.hd plans in
  Alcotest.(check bool) "converts the store and drops both captures" true
    (p.Opt.p_edits
    = [
        Replay.Set_store_nt { pseq = 1 }; Replay.Delete_flush_at { pseq = 2 };
        Replay.Delete_flush_at { pseq = 3 };
      ]);
  Alcotest.(check int) "removes two events" 2 p.Opt.p_projected_events;
  (* a second writer of the same line kills the rule *)
  let plans =
    plans_of
      [
        store ~stack:s 0 128; store ~stack:(cap [ "main"; "other" ] 9) 0 8;
        flush ~stack:(cap [ "main"; "persist" ] 4) 0;
        flush ~stack:(cap [ "main"; "persist" ] 4) 1;
        fence ~stack:(cap [ "main" ] 6) ();
      ]
  in
  Alcotest.(check bool) "not the sole writer: no conversion" true
    (not (List.mem "convert_to_nt" (rules plans)))

let test_rule_convert_clwb () =
  let f = cap [ "main"; "persist" ] 3 in
  let plans =
    plans_of
      [ store 0 8; flush ~kind:Pmem.Op.Clflush ~stack:f 0; fence ~stack:(cap [ "main" ] 5) () ]
  in
  Alcotest.(check (list string)) "one downgrade plan" [ "convert_to_clwb" ] (rules plans);
  let p = List.hd plans in
  Alcotest.(check bool) "swaps the instruction" true
    (p.Opt.p_edits = [ Replay.Set_flush_kind { pseq = 2; kind = Pmem.Op.Clwb } ]);
  Alcotest.(check int) "removes no event" 0 p.Opt.p_projected_events;
  Alcotest.(check int) "saves the clflush-clwb delta"
    (Cost.static_weights.Cost.w_clflush - Cost.static_weights.Cost.w_clwb)
    p.Opt.p_projected_cycles;
  (* an unfenced epoch blocks the downgrade *)
  let plans = plans_of [ store 0 8; flush ~kind:Pmem.Op.Clflush ~stack:f 0 ] in
  Alcotest.(check (list string)) "no plan without a closing fence" [] (rules plans)

let test_synthesis_deterministic () =
  let site = cap [ "main"; "append" ] 3 in
  let ops =
    [
      store 0 8; flush ~stack:site 0; store 0 8; flush ~stack:site 0;
      store ~stack:(cap [ "main"; "write_buf" ] 1) 128 64;
      flush ~stack:(cap [ "main"; "persist" ] 4) 2;
      fence ~stack:(cap [ "main"; "commit" ] 7) (); fence ~stack:(cap [ "main"; "commit" ] 9) ();
    ]
  in
  let a = plans_of ops and b = plans_of ops in
  Alcotest.(check bool) "synthesis is deterministic" true (a = b);
  Alcotest.(check bool) "plans are ranked best projection first" true
    (let rec sorted = function
       | x :: (y :: _ as rest) ->
           x.Opt.p_projected_cycles >= y.Opt.p_projected_cycles && sorted rest
       | _ -> true
     in
     sorted a)

(* --- end-to-end optimize() on synthetic recordings ------------------ *)

let optimize_events ops =
  let evs = mk_events ops in
  let noload = Replay.of_events ~pool_size evs in
  Opt.optimize ~weights:Cost.static_weights ~support:3 ~confidence:0.9 ~eadr:false
    ~oracle:(fun _ -> None)
    ~points:(Mumak.Fault_injection.offline_points Mumak.Config.default)
    noload

let test_optimize_proves_safe_plans () =
  let site = cap [ "main"; "persist" ] 3 in
  let o =
    optimize_events
      [ store 0 8; flush ~kind:Pmem.Op.Clflush ~stack:site 0; fence ~stack:(cap [ "main" ] 5) () ]
  in
  Alcotest.(check int) "one plan synthesized" 1 o.Opt.synthesized;
  Alcotest.(check int) "proven" 1 o.Opt.proven;
  Alcotest.(check int) "no harmful" 0 o.Opt.harmful;
  let b = List.hd (Opt.shipped o) in
  Alcotest.(check int) "cycles saved are replay-measured"
    (Cost.static_weights.Cost.w_clflush - Cost.static_weights.Cost.w_clwb)
    b.Opt.b_measured_cycles;
  Alcotest.(check int) "no events removed" 0 b.Opt.b_measured_events

let test_optimize_batch_and_tally () =
  let f1 = cap [ "main"; "commit" ] 4 and f2 = cap [ "main"; "commit" ] 9 in
  let o =
    optimize_events
      [
        store 0 8; flush ~stack:(cap [ "main" ] 2) 0; fence ~stack:f1 (); fence ~stack:f2 ();
      ]
  in
  Alcotest.(check int) "proven" 1 o.Opt.proven;
  Alcotest.(check int) "verified = synthesized below the cap" o.Opt.synthesized o.Opt.verified;
  (* two baseline injection passes plus three replays per verified plan *)
  Alcotest.(check int) "replay accounting" (2 + (3 * o.Opt.verified)) o.Opt.replays;
  let b = List.hd (Opt.shipped o) in
  Alcotest.(check int) "one fence removed" 1 b.Opt.b_measured_events;
  Alcotest.(check bool) "pure deletion: measured equals projected" true
    (b.Opt.b_measured_cycles = b.Opt.b_plan.Opt.p_projected_cycles)

(* --- qcheck: rewrite edit composition ------------------------------- *)

(* A random well-formed epoch sequence: each epoch stores to a few lines,
   flushes each dirtied line (possibly repeatedly), and closes with a
   fence. Stacks are synthesized per position so every event is a
   failure-point candidate. *)
let gen_trace =
  QCheck.Gen.(
    let epoch epoch_idx =
      list_size (int_range 1 4) (int_range 0 7) >>= fun lines ->
      int_range 1 2 >>= fun repeats ->
      let ops =
        List.concat_map
          (fun line ->
            let s = store ~stack:(cap [ "main"; "op" ] (epoch_idx * 100)) (line * 64) 8 in
            let fl =
              List.init repeats (fun r ->
                  flush ~stack:(cap [ "main"; "op" ] ((epoch_idx * 100) + 10 + r)) line)
            in
            s :: fl)
          lines
      in
      return (ops @ [ fence ~stack:(cap [ "main"; "op" ] ((epoch_idx * 100) + 50)) () ])
    in
    int_range 1 5 >>= fun n ->
    let rec go i acc =
      if i >= n then return (List.concat (List.rev acc))
      else epoch i >>= fun e -> go (i + 1) (e :: acc)
    in
    go 0 [])

(* Random edits against the trace: delete a subset of flushes, move some
   of the surviving flushes to the epoch's fence, delete non-final
   fences — overlapping and adjacent anchors included by construction. *)
let gen_edits_for evs =
  let insts =
    List.filteri (fun _ _ -> true) evs
    |> List.filter_map (fun (e : Pmtrace.Event.t) ->
           match e.Pmtrace.Event.op with Pmem.Op.Load _ -> None | op -> Some op)
  in
  let n = List.length insts in
  QCheck.Gen.(
    list_size (int_range 0 (max 1 (n / 2))) (int_range 1 n) >>= fun picks ->
    let picks = List.sort_uniq compare picks in
    let op_at p = List.nth insts (p - 1) in
    let next_fence_after p =
      let rec go i = function
        | [] -> None
        | Pmem.Op.Fence _ :: _ when i > p -> Some i
        | _ :: rest -> go (i + 1) rest
      in
      go 1 insts
    in
    let edits =
      List.filter_map
        (fun p ->
          match op_at p with
          | Pmem.Op.Flush _ ->
              if p mod 2 = 0 then Some (Replay.Delete_flush_at { pseq = p })
              else
                Option.map
                  (fun d -> Replay.Move_flush_to { pseq = p; to_pseq = d - 1 })
                  (next_fence_after p)
          | Pmem.Op.Fence _ when p < n -> Some (Replay.Delete_fence_at { pseq = p })
          | _ -> None)
        picks
    in
    (* moving to the slot just before a fence can collide with deleting
       that slot's flush — keep such overlaps, they are the point — but a
       move whose source was also picked for delete is contradictory;
       drop the move *)
    let deleted =
      List.filter_map (function Replay.Delete_flush_at { pseq } -> Some pseq | _ -> None) edits
    in
    return
      (List.filter
         (function
           | Replay.Move_flush_to { pseq; to_pseq } ->
               (not (List.mem pseq deleted)) && to_pseq > pseq
           | _ -> true)
         edits))

let arb_trace_and_edits =
  QCheck.make
    ~print:(fun (evs, edits) ->
      Printf.sprintf "%d events; edits: %s" (List.length evs)
        (String.concat "; " (List.map Replay.edit_to_string edits)))
    QCheck.Gen.(gen_trace >>= fun ops ->
                let evs = mk_events ops in
                gen_edits_for evs >>= fun edits -> return (evs, edits))

let deletions =
  List.filter (function
    | Replay.Delete_flush_at _ | Replay.Delete_fence_at _ -> true
    | _ -> false)

let qcheck_rewrite_renumbers =
  QCheck.Test.make ~name:"rewrite renumbers seqs consecutively from 1" ~count:200
    arb_trace_and_edits (fun (evs, edits) ->
      let out = Replay.rewrite_events evs edits in
      List.length out = List.length evs - List.length (deletions edits)
      && List.for_all2
           (fun i (e : Pmtrace.Event.t) -> e.Pmtrace.Event.seq = i)
           (List.init (List.length out) (fun i -> i + 1))
           out)

let qcheck_rewrite_order_free =
  QCheck.Test.make ~name:"edit-list order never changes the rewrite" ~count:200
    arb_trace_and_edits (fun (evs, edits) ->
      Replay.rewrite_events evs edits = Replay.rewrite_events evs (List.rev edits))

let qcheck_rewrite_arena_roundtrip =
  QCheck.Test.make ~name:"rewritten recordings survive arena serialization" ~count:100
    arb_trace_and_edits (fun (evs, edits) ->
      let noload = Replay.of_events ~pool_size evs in
      let out = Replay.events (Replay.rewrite noload edits) in
      out = Replay.rewrite_events evs edits
      &&
      let tr = Pmtrace.Trace.create () in
      List.iter (Pmtrace.Trace.add tr) out;
      Pmtrace.Trace.to_list (Pmtrace.Trace.deserialize (Pmtrace.Trace.serialize tr)) = out)

let qcheck_rewrite_normalizes =
  QCheck.Test.make ~name:"rewritten traces normalize without error" ~count:100
    arb_trace_and_edits (fun (evs, edits) ->
      let out = Replay.rewrite_events evs edits in
      List.length (Replay.normalize_events ~pool_size out) = List.length out)

(* --- the engine differential on a kvstore --------------------------- *)

let test_engine_kvstore () =
  let workload = Targets.standard_workload ~ops:120 ~key_range:60 () in
  let target () = Targets.of_redis ~workload () in
  let r = Mumak.Engine.analyze ~config:Mumak.Config.optimizing (target ()) in
  let o = Option.get r.Mumak.Engine.opt in
  Alcotest.(check bool) "at least one proven bundle" true (o.Opt.proven >= 1);
  let shipped = Opt.shipped o in
  Alcotest.(check bool) "shipped bundles reduce persist events" true
    (List.exists (fun b -> b.Opt.b_measured_events > 0) shipped);
  Alcotest.(check bool) "nothing shipped is unproven" true
    (List.for_all (fun b -> b.Opt.b_verdict = Analysis.Verify_fix.Proven) shipped);
  Alcotest.(check int) "optimize adds zero executions" 1 r.Mumak.Engine.executions;
  let base =
    Mumak.Engine.analyze
      ~config:{ Mumak.Config.optimizing with Mumak.Config.optimize = false }
      (target ())
  in
  Alcotest.(check bool) "report signature untouched by the phase" true
    (Mumak.Report.signature base.Mumak.Engine.report
    = Mumak.Report.signature r.Mumak.Engine.report)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "opt"
    [
      ( "cost",
        [
          Alcotest.test_case "static weights" `Quick test_static_weights;
          Alcotest.test_case "fit anchoring" `Quick test_fit;
          Alcotest.test_case "measure + trace cycles" `Quick test_measure_and_trace_cycles;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "batch fences" `Quick test_rule_batch_fences;
          Alcotest.test_case "batch fences: distinct frames" `Quick
            test_rule_batch_fences_negative;
          Alcotest.test_case "coalesce flushes" `Quick test_rule_coalesce;
          Alcotest.test_case "move flush" `Quick test_rule_move;
          Alcotest.test_case "convert to nt" `Quick test_rule_convert_nt;
          Alcotest.test_case "convert to clwb" `Quick test_rule_convert_clwb;
          Alcotest.test_case "deterministic ranking" `Quick test_synthesis_deterministic;
        ] );
      ( "verify",
        [
          Alcotest.test_case "proves safe plans" `Quick test_optimize_proves_safe_plans;
          Alcotest.test_case "batch verdict + replay tally" `Quick
            test_optimize_batch_and_tally;
        ] );
      ( "rewrite-qcheck",
        [
          qt qcheck_rewrite_renumbers;
          qt qcheck_rewrite_order_free;
          qt qcheck_rewrite_arena_roundtrip;
          qt qcheck_rewrite_normalizes;
        ] );
      ("engine", [ Alcotest.test_case "kvstore differential" `Slow test_engine_kvstore ]);
    ]
