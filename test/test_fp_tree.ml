(* Property tests for the failure-point tree: deduplication, leaf counting,
   and deterministic traversal order — the invariants the parallel injection
   scheduler's serialize/partition/merge cycle depends on. *)

let cap path op_index = { Pmtrace.Callstack.path; op_index }

(* Generator of capture descriptions: short paths over a small label
   alphabet so collisions (duplicate paths) actually happen. *)
let capture_list =
  QCheck.(
    list_of_size (Gen.int_range 0 60)
      (pair
         (list_of_size (Gen.int_range 0 4)
            (oneofl [ "main"; "put"; "get"; "split"; "rebalance"; "log" ]))
         (int_range 0 6)))

let build caps =
  let t = Mumak.Fp_tree.create () in
  List.iter (fun (path, i) -> ignore (Mumak.Fp_tree.insert t (cap path i))) caps;
  t

let prop_double_insert_never_grows =
  QCheck.Test.make ~name:"inserting the same capture twice never grows size" ~count:300
    capture_list
    (fun caps ->
      let t = Mumak.Fp_tree.create () in
      List.for_all
        (fun (path, i) ->
          ignore (Mumak.Fp_tree.insert t (cap path i));
          let size_after_first = Mumak.Fp_tree.size t in
          (match Mumak.Fp_tree.insert t (cap path i) with
          | `Existing _ -> ()
          | `Added _ -> QCheck.Test.fail_report "second insert reported `Added");
          Mumak.Fp_tree.size t = size_after_first)
        caps)

let prop_leaf_count_is_unique_paths =
  QCheck.Test.make ~name:"leaf count equals number of unique (path, op) pairs" ~count:300
    capture_list
    (fun caps ->
      let t = build caps in
      Mumak.Fp_tree.size t = List.length (List.sort_uniq compare caps)
      && List.length (Mumak.Fp_tree.points t) = Mumak.Fp_tree.size t)

let prop_traversal_order_deterministic =
  QCheck.Test.make ~name:"traversal order is deterministic (discovery order)" ~count:300
    capture_list
    (fun caps ->
      let t = build caps in
      (* [points] is sorted by discovery ordinal: rebuilding from the same
         insertion sequence — or from the serialized form — must reproduce
         the identical traversal and serialization *)
      let ordinals = List.map (fun p -> p.Mumak.Fp_tree.ordinal) (Mumak.Fp_tree.points t) in
      let t2 = build caps in
      let roundtrip = Mumak.Fp_tree.deserialize (Mumak.Fp_tree.serialize t) in
      ordinals = List.init (Mumak.Fp_tree.size t) Fun.id
      && Mumak.Fp_tree.serialize t = Mumak.Fp_tree.serialize t2
      && Mumak.Fp_tree.serialize t = Mumak.Fp_tree.serialize roundtrip)

let prop_serialize_preserves_ordinals =
  QCheck.Test.make
    ~name:"deserialize preserves capture/ordinal pairs (the parallel-partition invariant)"
    ~count:300 capture_list
    (fun caps ->
      let t = build caps in
      let t' = Mumak.Fp_tree.deserialize (Mumak.Fp_tree.serialize t) in
      let key p =
        ( p.Mumak.Fp_tree.ordinal,
          p.Mumak.Fp_tree.capture.Pmtrace.Callstack.path,
          p.Mumak.Fp_tree.capture.Pmtrace.Callstack.op_index )
      in
      List.map key (Mumak.Fp_tree.points t) = List.map key (Mumak.Fp_tree.points t'))

let prop_find_after_insert =
  QCheck.Test.make ~name:"every inserted capture is found; unvisited count tracks visits"
    ~count:200 capture_list
    (fun caps ->
      let t = build caps in
      List.for_all (fun (path, i) -> Mumak.Fp_tree.find t (cap path i) <> None) caps
      && begin
           Mumak.Fp_tree.iter t (fun p -> p.Mumak.Fp_tree.visited <- true);
           Mumak.Fp_tree.unvisited_count t = 0
         end)

let () =
  Alcotest.run "fp_tree"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_double_insert_never_grows;
            prop_leaf_count_is_unique_paths;
            prop_traversal_order_deterministic;
            prop_serialize_preserves_ordinals;
            prop_find_after_insert;
          ] );
    ]
