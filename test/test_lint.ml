(* Tests for the replay/lint/verify-fix subsystem (PR 4):
   - replay losslessness: replaying an unmodified recording reproduces the
     device counters, the normalized metadata, and the failure-point set
     byte-for-byte (also across trace serialization);
   - the replay differential: on seeded-bug targets, a report built by
     replaying the recorded trace offline equals the live j=1 engine
     report (Report.signature identity);
   - lint soundness on synthetic traces with known planted redundancies
     (100% detection, zero false positives on clean blocks);
   - verdicts: seeded missing-flush bugs earn at least one proven fix,
     clean targets earn no harmful ones. *)

let wl ?(ops = 250) ?(key_range = 60) () = Targets.standard_workload ~ops ~key_range ()

let target_for ?(workload = wl ()) ?version ?tx_mode name =
  match Pmapps.Registry.find name with
  | None -> Alcotest.failf "unknown app %s" name
  | Some (module A : Pmapps.Kv_intf.S) ->
      let version =
        match version with
        | Some v -> v
        | None ->
            if String.equal name "hashmap_atomic" then Pmalloc.Version.V1_6
            else Pmalloc.Version.V1_12
      in
      Targets.of_app (module A) ~version ?tx_mode ~workload ()

let record_of (target : Mumak.Target.t) =
  Pmtrace.Replay.record ~pool_size:target.Mumak.Target.pool_size
    (fun ~device ~framer -> target.Mumak.Target.run ~device ~framer)

(* The seeded-bug matrix the differential and verdict tests sweep. *)
let seeded_matrix =
  [
    ("hashmap_atomic", "hm_atomic_count_never_flushed");
    ("hashmap_atomic", "hm_atomic_link_before_persist");
    ("btree", "btree_count_outside_tx");
    ("cceh", "cceh_dir_unflushed");
    ("fast_fair", "ff_shift_unflushed");
    ("level_hash", "level_hash_value_unflushed");
    ("wort", "wort_link_uninitialized_node");
    ("hashmap_tx", "hm_tx_head_no_snapshot");
  ]

(* --- replay losslessness ------------------------------------------- *)

let test_replay_lossless () =
  List.iter
    (fun name ->
      let target = target_for name in
      let recording = record_of target in
      let evs = Pmtrace.Replay.events recording in
      let device = Pmtrace.Replay.replay recording in
      Alcotest.(check bool)
        (name ^ ": replayed device counters equal the recorded run's")
        true
        (Pmtrace.Replay.stats_match recording (Pmem.Device.stats device));
      Alcotest.(check bool)
        (name ^ ": normalize of an unmodified recording is the identity")
        true
        (Pmtrace.Replay.normalize recording = evs);
      (* failure-point set, byte-for-byte, across serialization *)
      let round_tripped =
        let tr = Pmtrace.Trace.create () in
        List.iter (Pmtrace.Trace.add tr) evs;
        Pmtrace.Trace.to_list (Pmtrace.Trace.deserialize (Pmtrace.Trace.serialize tr))
      in
      Alcotest.(check bool)
        (name ^ ": events survive serialization byte-for-byte")
        true (round_tripped = evs);
      Alcotest.(check bool)
        (name ^ ": offline failure points identical across serialization")
        true
        (Mumak.Fault_injection.offline_points Mumak.Config.default evs
        = Mumak.Fault_injection.offline_points Mumak.Config.default round_tripped))
    [ "btree"; "hashmap_atomic" ]

(* --- the replay differential --------------------------------------- *)

(* A report built without re-running the target: trace analysis streamed
   from the recorded events, fault injection replayed offline (crash image
   at each failure point's first occurrence, classified by the same
   oracle). Signatures are sorted sets, so emission order is free. *)
let replayed_report config (target : Mumak.Target.t) =
  let report = Mumak.Report.create ~target:target.Mumak.Target.name in
  let recording = record_of target in
  let evs = Pmtrace.Replay.events recording in
  let ta = Mumak.Trace_analysis.create config in
  List.iter (fun e -> Mumak.Trace_analysis.feed ta e) evs;
  let raws = Mumak.Trace_analysis.finish ta in
  let stacks = Hashtbl.create 1024 in
  List.iter
    (fun (e : Pmtrace.Event.t) ->
      match e.Pmtrace.Event.stack with
      | Some c -> Hashtbl.replace stacks e.Pmtrace.Event.seq c
      | None -> ())
    evs;
  let want = Hashtbl.create 64 in
  List.iter
    (fun (_, pseq, capture) -> Hashtbl.replace want pseq capture)
    (Mumak.Fault_injection.offline_points config evs);
  ignore
    (Pmtrace.Replay.replay recording ~on_event:(fun device ~pseq _ ->
         match Hashtbl.find_opt want pseq with
         | None -> ()
         | Some capture -> (
             let img = Pmem.Device.crash device ~policy:Pmem.Device.Program_prefix in
             let add kind detail =
               ignore
                 (Mumak.Report.add report
                    {
                      Mumak.Report.kind;
                      phase = Mumak.Report.Fault_injection;
                      stack = Some capture;
                      seq = None;
                      detail;
                      fix = None;
                    })
             in
             match
               Mumak.Oracle.classify target.Mumak.Target.recover
                 (Pmem.Device.of_image ~eadr:config.Mumak.Config.eadr img)
             with
             | Mumak.Oracle.Consistent -> ()
             | Mumak.Oracle.Unrecoverable msg -> add Mumak.Report.Unrecoverable_state msg
             | Mumak.Oracle.Crashed msg -> add Mumak.Report.Recovery_crash msg)));
  List.iter
    (fun (r : Mumak.Trace_analysis.raw) ->
      if (not (Mumak.Report.kind_is_warning r.Mumak.Trace_analysis.kind))
         || config.Mumak.Config.report_warnings
      then
        ignore
          (Mumak.Report.add report
             {
               Mumak.Report.kind = r.Mumak.Trace_analysis.kind;
               phase = Mumak.Report.Trace_analysis;
               stack = Hashtbl.find_opt stacks r.Mumak.Trace_analysis.seq;
               seq = Some r.Mumak.Trace_analysis.seq;
               detail = r.Mumak.Trace_analysis.detail;
               fix = None;
             }))
    raws;
  report

let test_replay_differential () =
  List.iter
    (fun (app, bug) ->
      Bugreg.with_enabled [ bug ] (fun () ->
          let config = Mumak.Config.default in
          let live = (Mumak.Engine.analyze ~config (target_for app)).Mumak.Engine.report in
          let replayed = replayed_report config (target_for app) in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: replayed report signature equals live j=1" app bug)
            true
            (Mumak.Report.equal live replayed)))
    seeded_matrix

(* --- lint soundness on planted synthetic traces -------------------- *)

(* Disjoint slot ranges per pattern so plants cannot interact; every block
   ends with a fence so epochs never straddle blocks. Metadata (dirty
   bits, pending counts) is device-recomputed by normalize_events, not
   hand-crafted. *)
type plant = Clean | Dup_flush | Unnecessary_flush | Nt_misuse | Empty_fence

let block_of (plant, i) =
  let store slot = Pmem.Op.Store { addr = slot * 64; size = 8; nt = false } in
  let store_nt slot = Pmem.Op.Store { addr = slot * 64; size = 8; nt = true } in
  let clwb slot =
    Pmem.Op.Flush { kind = Pmem.Op.Clwb; line = slot; dirty = true; volatile = false }
  in
  let fence = Pmem.Op.Fence { kind = Pmem.Op.Sfence; pending_flushes = 0; pending_nt = 0 } in
  let slot base = base + (i mod 10) in
  match plant with
  | Clean ->
      let s = slot 0 in
      [ store s; clwb s; fence ]
  | Dup_flush ->
      (* the first capture is re-captured before any fence drains it *)
      let s = slot 10 in
      [ store s; clwb s; store s; clwb s; fence ]
  | Unnecessary_flush ->
      (* flush of a never-stored line, next to one real persist *)
      let s = slot 20 and real = slot 30 in
      [ store real; clwb real; clwb s; fence ]
  | Nt_misuse ->
      let s = slot 40 in
      [ store_nt s; clwb s; fence ]
  | Empty_fence -> [ fence ]

let lint_of_blocks blocks =
  let ops = List.concat_map block_of blocks in
  let events =
    List.mapi (fun i op -> { Pmtrace.Event.seq = i + 1; op; stack = None }) ops
  in
  Analysis.Lint.analyze
    (Pmtrace.Replay.normalize_events ~pool_size:(1 lsl 16) events)

let count_kind (l : Analysis.Lint.t) kind =
  List.length
    (List.filter (fun (f : Analysis.Lint.finding) -> f.Analysis.Lint.l_kind = kind) l.Analysis.Lint.findings)

let plant_gen =
  QCheck.make
    ~print:(fun l -> string_of_int (List.length l))
    QCheck.Gen.(
      list_size (int_range 1 40)
        (pair (oneofl [ Clean; Dup_flush; Unnecessary_flush; Nt_misuse; Empty_fence ]) (int_bound 9)))

let prop_lint_plants =
  QCheck.Test.make ~name:"lint finds every planted redundancy and nothing else" ~count:200
    plant_gen
    (fun blocks ->
      let planted p = List.length (List.filter (fun (q, _) -> q = p) blocks) in
      let l = lint_of_blocks blocks in
      count_kind l Analysis.Lint.Duplicate_flush = planted Dup_flush
      && count_kind l Analysis.Lint.Unnecessary_flush = planted Unnecessary_flush
      && count_kind l Analysis.Lint.Nt_flush_misuse = planted Nt_misuse
      && count_kind l Analysis.Lint.Redundant_fence = planted Empty_fence
      && count_kind l Analysis.Lint.Missing_flush = 0
      && l.Analysis.Lint.redundant_flushes
         = planted Dup_flush + planted Unnecessary_flush + planted Nt_misuse)

let prop_lint_clean_silent =
  QCheck.Test.make ~name:"lint is silent on clean persist blocks" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 40) (int_range 0 9))
    (fun slots ->
      let l = lint_of_blocks (List.map (fun s -> (Clean, s)) slots) in
      l.Analysis.Lint.findings = [])

(* --- rewrite structural properties --------------------------------- *)

let prop_rewrite_renumber =
  QCheck.Test.make ~name:"rewrite renumbers seqs consecutively from 1" ~count:100
    plant_gen
    (fun blocks ->
      let ops = List.concat_map block_of blocks in
      let events =
        List.mapi (fun i op -> { Pmtrace.Event.seq = i + 1; op; stack = None }) ops
      in
      (* insert a flush+fence after the first event *)
      let edits =
        [
          Pmtrace.Replay.Insert_flush_after { pseq = 1; line = 0 };
          Pmtrace.Replay.Insert_fence_after { pseq = 1 };
        ]
      in
      let rewritten = Pmtrace.Replay.rewrite_events events edits in
      List.length rewritten = List.length events + 2
      && List.for_all2
           (fun (e : Pmtrace.Event.t) i -> e.Pmtrace.Event.seq = i)
           rewritten
           (List.init (List.length rewritten) (fun i -> i + 1)))

(* --- fix verdicts --------------------------------------------------- *)

let missing_flush_proven (v : Analysis.Verify_fix.t) =
  List.exists
    (fun (o : Analysis.Verify_fix.outcome) ->
      o.Analysis.Verify_fix.o_verdict = Analysis.Verify_fix.Proven
      && String.equal o.Analysis.Verify_fix.o_candidate.Analysis.Verify_fix.c_kind
           "missing flush")
    v.Analysis.Verify_fix.outcomes

(* Verdict tests run the default-size workload: at toy sizes the hashmap
   is small enough that the seeded count field shares a cache line with a
   bucket pointer, and the inserted flush legitimately persists that
   pointer ahead of its pointee (a true harmful verdict, not the proven
   one this asserts). *)
let verdict_wl () = wl ~ops:600 ~key_range:200 ()

let test_seeded_missing_flush_proven () =
  List.iter
    (fun (app, bug) ->
      Bugreg.with_enabled [ bug ] (fun () ->
          let r =
            Mumak.Engine.analyze ~config:Mumak.Config.linting
              (target_for ~workload:(verdict_wl ()) app)
          in
          match r.Mumak.Engine.fix_verdicts with
          | None -> Alcotest.failf "%s/%s: no fix verdicts" app bug
          | Some v ->
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s: the seeded missing flush earns a proven fix" app bug)
                true (missing_flush_proven v)))
    [
      ("hashmap_atomic", "hm_atomic_count_never_flushed");
      ("level_hash", "level_hash_value_unflushed");
    ]

let test_clean_targets_no_harm () =
  List.iter
    (fun app ->
      let r =
        Mumak.Engine.analyze ~config:Mumak.Config.linting
          (target_for ~workload:(verdict_wl ()) app)
      in
      match r.Mumak.Engine.fix_verdicts with
      | None -> Alcotest.failf "%s: no fix verdicts" app
      | Some v ->
          Alcotest.(check int)
            (Printf.sprintf "%s clean: no fix is harmful" app)
            0 v.Analysis.Verify_fix.harmful)
    [ "hashmap_atomic"; "btree"; "wort" ]

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "lint"
    [
      ("replay", [ Alcotest.test_case "lossless" `Quick test_replay_lossless ]);
      ( "differential",
        [ Alcotest.test_case "replay equals live j=1" `Slow test_replay_differential ] );
      ( "lint",
        [ qt prop_lint_plants; qt prop_lint_clean_silent; qt prop_rewrite_renumber ] );
      ( "verdicts",
        [
          Alcotest.test_case "seeded missing flush proven" `Slow test_seeded_missing_flush_proven;
          Alcotest.test_case "clean targets unharmed" `Slow test_clean_targets_no_harm;
        ] );
    ]
