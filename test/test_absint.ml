(* Property and differential tests for the merged-CFG abstract interpreter
   and its failure-point pruning.

   Three layers: (1) qcheck laws for the per-cache-line lattice (join is
   associative, commutative, idempotent, monotone — on both the public
   chain and the powerset masks the fixpoint actually runs on) and for the
   transfer functions (mask-monotone); (2) qcheck structural laws for the
   multi-trace automaton merge (idempotent under duplicated recordings,
   insensitive to recording order); (3) the soundness differential the
   prune design rests on — for every seeded bug in the application,
   pmalloc and Montage registries, [--prune] at jobs=1 and jobs=4 must
   produce the byte-identical report signature of the unpruned engine,
   while skipping exactly the confirmed nominations. *)

module L = Analysis.Absint.Lattice

let elem_arb = QCheck.make ~print:L.elem_to_string (QCheck.Gen.oneofl L.all_elems)
let mask_arb = QCheck.make ~print:string_of_int (QCheck.Gen.oneofl L.all_masks)

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

(* --- (1) lattice laws --- *)

let lattice_tests =
  [
    QCheck.Test.make ~name:"elem join associative"
      (QCheck.triple elem_arb elem_arb elem_arb) (fun (a, b, c) ->
        L.join a (L.join b c) = L.join (L.join a b) c);
    QCheck.Test.make ~name:"elem join commutative" (QCheck.pair elem_arb elem_arb)
      (fun (a, b) -> L.join a b = L.join b a);
    QCheck.Test.make ~name:"elem join idempotent, bot identity" elem_arb (fun a ->
        L.join a a = a && L.join L.Bot a = a);
    QCheck.Test.make ~name:"elem join monotone (upper bound, least)"
      (QCheck.pair elem_arb elem_arb) (fun (a, b) ->
        L.leq a (L.join a b) && L.leq b (L.join a b)
        && ((not (L.leq a b)) || L.join a b = b));
    QCheck.Test.make ~name:"mask join associative"
      (QCheck.triple mask_arb mask_arb mask_arb) (fun (a, b, c) ->
        L.mask_join a (L.mask_join b c) = L.mask_join (L.mask_join a b) c);
    QCheck.Test.make ~name:"mask join commutative" (QCheck.pair mask_arb mask_arb)
      (fun (a, b) -> L.mask_join a b = L.mask_join b a);
    QCheck.Test.make ~name:"mask join idempotent, bot identity" mask_arb (fun a ->
        L.mask_join a a = a && L.mask_join L.bot a = a);
    QCheck.Test.make ~name:"mask join monotone (upper bound, least)"
      (QCheck.pair mask_arb mask_arb) (fun (a, b) ->
        L.mask_leq a (L.mask_join a b)
        && ((not (L.mask_leq a b)) || L.mask_join a b = b));
    QCheck.Test.make ~name:"elem_of_mask maps bot to Bot and is total" mask_arb
      (fun m ->
        L.elem_of_mask L.bot = L.Bot
        && List.mem (L.elem_of_mask m) L.all_elems);
  ]

(* --- transfer monotonicity --- *)

(* A synthetic automaton node with a chosen instruction multiset; the
   capture is arbitrary since transfer only reads [instrs] and [key]. *)
let node_of_instrs instrs : Analysis.Cfg.node =
  {
    Analysis.Cfg.capture = { Pmtrace.Callstack.path = [ "t" ]; op_index = 0 };
    key = "t@0";
    instrs;
    succs = [];
    first_pseq = 0;
    runs = 1;
  }

let instr_choices =
  [
    Analysis.Cfg.Store { lines = [ 0 ]; nt = false };
    Analysis.Cfg.Store { lines = [ 0 ]; nt = true };
    Analysis.Cfg.Store { lines = [ 1 ]; nt = false };
    Analysis.Cfg.Flush { kind = Pmem.Op.Clflush; line = 0 };
    Analysis.Cfg.Flush { kind = Pmem.Op.Clflushopt; line = 0 };
    Analysis.Cfg.Flush { kind = Pmem.Op.Clwb; line = 1 };
    Analysis.Cfg.Fence { kind = Pmem.Op.Sfence };
    Analysis.Cfg.Fence { kind = Pmem.Op.Rmw };
  ]

let instrs_arb =
  QCheck.make
    ~print:(fun is -> String.concat ";" (List.map Analysis.Cfg.instr_to_string is))
    QCheck.Gen.(
      let* n = 1 -- 3 in
      list_size (return n) (oneofl instr_choices))

let state_of_mask line m : Analysis.Absint.state =
  if m = L.bot then Analysis.Absint.Lines.empty
  else
    Analysis.Absint.Lines.singleton line
      { Analysis.Absint.mask = m; wit_dirty = None; wit_pending = None }

let mask_at line (st : Analysis.Absint.state) =
  match Analysis.Absint.Lines.find_opt line st with
  | Some v -> v.Analysis.Absint.mask
  | None -> L.bot

let transfer_tests =
  [
    QCheck.Test.make ~name:"transfer mask-monotone in the input state"
      (QCheck.triple instrs_arb mask_arb mask_arb) (fun (instrs, m1, m2) ->
        let node = node_of_instrs instrs in
        let s1 = state_of_mask 0 m1 in
        let s2 = Analysis.Absint.state_join s1 (state_of_mask 0 m2) in
        let t1 = Analysis.Absint.transfer node s1 in
        let t2 = Analysis.Absint.transfer node s2 in
        L.mask_leq (mask_at 0 t1) (mask_at 0 t2)
        && L.mask_leq (mask_at 1 t1) (mask_at 1 t2));
    QCheck.Test.make ~name:"transfer output independent of join order"
      (QCheck.pair instrs_arb mask_arb) (fun (instrs, m) ->
        let node = node_of_instrs instrs in
        let s = state_of_mask 0 m in
        Analysis.Absint.state_equal
          (Analysis.Absint.transfer node s)
          (Analysis.Absint.transfer (node_of_instrs (List.rev instrs)) s));
  ]

(* --- (2) automaton merge laws --- *)

let record (target : Mumak.Target.t) =
  let device = Pmem.Device.create ~size:target.Mumak.Target.pool_size () in
  let tracer = Pmtrace.Tracer.create ~collect:true ~with_stacks:true device in
  target.Mumak.Target.run ~device
    ~framer:(Pmtrace.Framer.of_callstack (Pmtrace.Tracer.stack tracer));
  Pmtrace.Tracer.detach tracer;
  Pmtrace.Trace.to_list (Pmtrace.Tracer.trace tracer)

let app name =
  match Pmapps.Registry.find name with
  | Some m -> m
  | None -> Alcotest.failf "unknown app %s" name

(* Three genuinely different recordings of the same application: distinct
   seeds exercise distinct paths, so the merge is non-trivial. *)
let sample_runs =
  lazy
    (List.map
       (fun seed ->
         record
           (Targets.of_app (app "wort")
              ~workload:(Workload.standard ~ops:40 ~key_range:12 ~seed)
              ()))
       [ 1L; 7L; 42L ])

let cfg_sig runs = Analysis.Cfg.signature (Analysis.Cfg.build runs)

let cfg_tests =
  [
    QCheck.Test.make ~name:"merge idempotent under duplicated recordings"
      (QCheck.make ~print:string_of_int QCheck.Gen.(1 -- 7)) (fun sel ->
        let runs = Lazy.force sample_runs in
        let dup = List.filteri (fun i _ -> sel land (1 lsl i) <> 0) runs in
        String.equal (cfg_sig runs) (cfg_sig (runs @ dup)));
    QCheck.Test.make ~name:"merge insensitive to recording order"
      (QCheck.make
         ~print:(fun p -> String.concat "," (List.map string_of_int p))
         (QCheck.Gen.shuffle_l [ 0; 1; 2 ]))
      (fun perm ->
        let runs = Lazy.force sample_runs in
        let shuffled = List.map (List.nth runs) perm in
        Analysis.Cfg.equal
          (Analysis.Cfg.build runs)
          (Analysis.Cfg.build shuffled));
  ]

let test_cfg_merges_paths () =
  let runs = Lazy.force sample_runs in
  let merged = Analysis.Cfg.build runs in
  let single = Analysis.Cfg.build [ List.hd runs ] in
  Alcotest.(check bool) "merged automaton saw every run" true (merged.Analysis.Cfg.runs = 3);
  Alcotest.(check bool) "merge adds structure over a single run" true
    (Analysis.Cfg.edge_count merged > Analysis.Cfg.edge_count single);
  (* every node of the merged automaton has a concrete path witness *)
  Analysis.Cfg.sorted_nodes merged
  |> List.iter (fun n ->
         match Analysis.Cfg.witness merged n.Analysis.Cfg.key with
         | [] -> Alcotest.failf "no witness for %s" n.Analysis.Cfg.key
         | path ->
             Alcotest.(check string)
               (Printf.sprintf "witness for %s ends at the node" n.Analysis.Cfg.key)
               n.Analysis.Cfg.key
               (List.nth path (List.length path - 1)))

(* --- (3) the prune soundness differential --- *)

let version_for name =
  if String.equal name "hashmap_atomic" then Pmalloc.Version.V1_6
  else Pmalloc.Version.V1_12

let wl ?(ops = 60) ?(key_range = 25) ?(seed = 42L) () =
  Workload.standard ~ops ~key_range ~seed

(* One target per seeded-bug component, mirroring test_parallel: the
   pmalloc library bugs need large grouped transactions to fire. *)
let target_for component () =
  match component with
  | "pmalloc" ->
      Targets.of_app (app "btree") ~tx_mode:(Targets.Grouped 64)
        ~workload:(wl ~ops:120 ()) ()
  | "montage" -> Targets.of_montage ~variant:`Buffered ~workload:(wl ()) ()
  | name ->
      Targets.of_app (app name) ~version:(version_for name) ~workload:(wl ()) ()

let reexec jobs =
  { Mumak.Config.default with Mumak.Config.strategy = Mumak.Config.Reexecute; jobs }

(* the unpruned baseline keeps the abstract interpreter on — its findings
   are part of the report — and only turns the skipping off *)
let unpruned jobs = { (reexec jobs) with Mumak.Config.absint = true }
let pruned jobs = { (unpruned jobs) with Mumak.Config.prune = true }

let plan_of (r : Mumak.Engine.result) =
  match r.Mumak.Engine.absint with
  | Some { Mumak.Engine.prune = Some plan; _ } -> plan
  | _ -> Alcotest.fail "pruned run carries no prune plan"

let prune_differential name make_target =
  let base = Mumak.Engine.analyze ~config:(unpruned 1) (make_target ()) in
  List.iter
    (fun jobs ->
      let r = Mumak.Engine.analyze ~config:(pruned jobs) (make_target ()) in
      let plan = plan_of r in
      Alcotest.(check (list string))
        (Printf.sprintf "%s: pruned j=%d report signature" name jobs)
        (Mumak.Report.signature base.Mumak.Engine.report)
        (Mumak.Report.signature r.Mumak.Engine.report);
      Alcotest.(check int)
        (Printf.sprintf "%s: pruned j=%d failure points" name jobs)
        base.Mumak.Engine.failure_points r.Mumak.Engine.failure_points;
      Alcotest.(check int)
        (Printf.sprintf "%s: pruned j=%d skips exactly the plan" name jobs)
        (base.Mumak.Engine.injections - List.length plan.Analysis.Prune.skip)
        r.Mumak.Engine.injections;
      Alcotest.(check bool)
        (Printf.sprintf "%s: pruned j=%d plan is consistent" name jobs)
        true
        (plan.Analysis.Prune.confirmed + plan.Analysis.Prune.rejected
         = plan.Analysis.Prune.proven
        && List.length plan.Analysis.Prune.skip = plan.Analysis.Prune.confirmed
        && plan.Analysis.Prune.total = base.Mumak.Engine.failure_points))
    [ 1; 4 ]

let all_seeded_bugs () =
  Pmapps.Registry.all_bugs @ Pmalloc.Bugs.all @ Montage.Mt_alloc.bugs

let test_prune_differential_seeded () =
  List.iter
    (fun b ->
      Bugreg.with_enabled [ b.Bugreg.id ] (fun () ->
          prune_differential b.Bugreg.id (target_for b.Bugreg.component)))
    (all_seeded_bugs ())

let test_prune_differential_clean () =
  List.iter
    (fun name -> prune_differential name (target_for name))
    [ "wort"; "btree"; "level_hash" ]

let test_pruned_never_slower () =
  (* the regression this PR fixes: per-nominee confirmation replays used to
     make pruned runs slower than unpruned ones (btree: 14.0 s pruned vs
     4.8 s unpruned in BENCH_absint). Confirmation is now one batched
     materialization pass over the shared recording, so a pruned run does
     strictly less injection work than an unpruned one. Wall clock is
     noisy in CI, so allow 25% slack — the old regression was ~3x. *)
  let make_target = target_for "btree" in
  let wall config =
    let r = Mumak.Engine.analyze ~config (make_target ()) in
    r.Mumak.Engine.metrics.Mumak.Metrics.wall_seconds
  in
  ignore (wall (unpruned 1)) (* warmup: touch every code path once *);
  let base = wall (unpruned 1) in
  let fast = wall (pruned 1) in
  Alcotest.(check bool)
    (Printf.sprintf "pruned (%.3fs) <= unpruned (%.3fs) x 1.25" fast base)
    true
    (fast <= (base *. 1.25) +. 0.05)

let test_prune_skips_on_clean_targets () =
  (* the acceptance bar: a clean target must get a substantial fraction of
     its failure points proven safe and skipped *)
  let r = Mumak.Engine.analyze ~config:(pruned 1) (target_for "wort" ()) in
  let plan = plan_of r in
  Alcotest.(check bool) "clean wort: proven-safe sites found" true
    (plan.Analysis.Prune.proven > 0);
  Alcotest.(check bool) "clean wort: >= 20% of failure points skipped" true
    (Analysis.Prune.skip_fraction plan >= 0.2)

let () =
  Alcotest.run "absint"
    [
      qsuite "lattice" lattice_tests;
      qsuite "transfer" transfer_tests;
      qsuite "cfg-merge" cfg_tests;
      ( "cfg-structure",
        [ Alcotest.test_case "merged paths and witnesses" `Quick test_cfg_merges_paths ] );
      ( "prune-differential",
        [
          Alcotest.test_case "all seeded bugs, j=1 and j=4" `Slow
            test_prune_differential_seeded;
          Alcotest.test_case "clean targets, j=1 and j=4" `Slow
            test_prune_differential_clean;
          Alcotest.test_case "clean target skip fraction" `Slow
            test_prune_skips_on_clean_targets;
          Alcotest.test_case "pruned never slower than unpruned" `Slow
            test_pruned_never_slower;
        ] );
    ]
