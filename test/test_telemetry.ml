(* Tests for the telemetry subsystem: the collector's structural guarantees
   (qcheck properties over span nesting, histogram and counter merging),
   the exporters' schemas (JSONL + Chrome trace, including the validators'
   rejection paths), the engine integration (phase spans, worker tracks,
   pipeline counters), and the inertness contract — telemetry on vs off is
   byte-identical on the seeded-bug differential. *)

module J = Telemetry.Json
module C = Telemetry.Collector
module H = Telemetry.Histogram

(* The collector is global state; every test that turns it on clears any
   leftovers first and guarantees it is off afterwards. *)
let with_collector f =
  C.enable ();
  ignore (C.drain ());
  Fun.protect ~finally:C.disable f

let app name =
  match Pmapps.Registry.find name with
  | Some m -> m
  | None -> Alcotest.failf "unknown app %s" name

let wl ?(ops = 60) () = Workload.standard ~ops ~key_range:25 ~seed:42L

let btree_target () =
  Targets.of_app (app "btree") ~version:Pmalloc.Version.V1_12 ~workload:(wl ()) ()

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock () =
  let t0 = Telemetry.Clock.now_ns () in
  let last = ref t0 in
  for _ = 1 to 1000 do
    let t = Telemetry.Clock.now_ns () in
    Alcotest.(check bool) "clock never goes backwards" true (t >= !last);
    last := t
  done;
  Alcotest.(check bool) "elapsed_s is non-negative" true
    (Telemetry.Clock.elapsed_s t0 !last >= 0.);
  (* reversed arguments clamp instead of going negative *)
  Alcotest.(check (float 0.)) "elapsed_s clamps at zero" 0.
    (Telemetry.Clock.elapsed_s !last (!last - 5));
  Alcotest.(check string) "clock source matches is_monotonic"
    (if Telemetry.Clock.is_monotonic then "monotonic" else "wall")
    Telemetry.Clock.source

let test_metrics_nonnegative () =
  let (), m =
    Mumak.Metrics.measure (fun () ->
        ignore (Sys.opaque_identity (List.init 1000 string_of_int)))
  in
  Alcotest.(check bool) "wall >= 0" true (m.Mumak.Metrics.wall_seconds >= 0.);
  Alcotest.(check bool) "cpu >= 0" true (m.Mumak.Metrics.cpu_seconds >= 0.);
  Alcotest.(check bool) "alloc >= 0" true (m.Mumak.Metrics.allocated_bytes >= 0.);
  Alcotest.(check bool) "heap growth >= 0" true (m.Mumak.Metrics.heap_growth_words >= 0);
  match Mumak.Metrics.to_json m with
  | J.Assoc fields ->
      Alcotest.(check (list string)) "to_json fields"
        [ "wall_seconds"; "cpu_seconds"; "cpu_load"; "allocated_bytes";
          "heap_growth_words" ]
        (List.map fst fields)
  | _ -> Alcotest.fail "Metrics.to_json is not an object"

(* ------------------------------------------------------------------ *)
(* JSON encoder/parser round trip                                      *)
(* ------------------------------------------------------------------ *)

(* Floats restricted to odd multiples of 1/8: exactly representable with a
   short decimal form, so the %.12g rendering parses back to the same
   value and never collapses to an integer. *)
let gen_json =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        return J.Null;
        map (fun b -> J.Bool b) bool;
        map (fun i -> J.Int i) (int_range (-1_000_000) 1_000_000);
        map
          (fun n -> J.Float (float_of_int ((2 * n) + 1) /. 8.))
          (int_range (-1000) 1000);
        map (fun s -> J.String s) (string_size ~gen:printable (int_range 0 12));
      ]
  in
  let rec node depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (3, leaf);
          (1, map (fun l -> J.List l) (list_size (int_range 0 4) (node (depth - 1))));
          ( 1,
            map
              (fun kvs -> J.Assoc kvs)
              (list_size (int_range 0 4)
                 (pair (string_size ~gen:printable (int_range 0 8)) (node (depth - 1))))
          );
        ]
  in
  node 3

let json_roundtrip =
  QCheck.Test.make ~name:"Json.to_string/of_string round-trips" ~count:500
    (QCheck.make ~print:J.to_string gen_json) (fun j ->
      match J.of_string (J.to_string j) with
      | Ok j' -> j' = j
      | Error msg -> QCheck.Test.fail_reportf "parse error: %s" msg)

(* ------------------------------------------------------------------ *)
(* Histogram merge algebra                                             *)
(* ------------------------------------------------------------------ *)

let hist_of samples =
  let h = H.create () in
  List.iter (H.observe h) samples;
  h

let samples_gen = QCheck.(list_of_size (QCheck.Gen.int_range 0 40) (int_range 0 1_000_000))

let hist_merge_is_concat =
  QCheck.Test.make ~name:"histogram merge = observing the concatenation" ~count:300
    (QCheck.pair samples_gen samples_gen) (fun (a, b) ->
      H.equal (H.merge (hist_of a) (hist_of b)) (hist_of (a @ b)))

let hist_merge_commutative =
  QCheck.Test.make ~name:"histogram merge is commutative" ~count:300
    (QCheck.pair samples_gen samples_gen) (fun (a, b) ->
      H.equal (H.merge (hist_of a) (hist_of b)) (H.merge (hist_of b) (hist_of a)))

let hist_merge_associative =
  QCheck.Test.make ~name:"histogram merge is associative" ~count:300
    (QCheck.triple samples_gen samples_gen samples_gen) (fun (a, b, c) ->
      H.equal
        (H.merge (H.merge (hist_of a) (hist_of b)) (hist_of c))
        (H.merge (hist_of a) (H.merge (hist_of b) (hist_of c))))

let hist_quantile_bounded =
  QCheck.Test.make ~name:"histogram quantiles stay within [min, max]" ~count:300
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 1 40) (int_range 0 1_000_000))
        (float_range 0. 1.))
    (fun (samples, q) ->
      let h = hist_of samples in
      let v = H.quantile h q in
      let lo = List.fold_left min max_int samples
      and hi = List.fold_left max 0 samples in
      lo <= v && v <= hi)

(* ------------------------------------------------------------------ *)
(* Collector: span nesting, counter merging across domains             *)
(* ------------------------------------------------------------------ *)

(* Interpret an int list as a LIFO begin/end program (the discipline
   [Collector.span] guarantees): even = open a nested span, odd = close
   the innermost one; everything still open closes at the end. *)
let run_span_program program =
  let opens = ref 0 in
  let stack = ref [] in
  List.iter
    (fun n ->
      if n mod 2 = 0 then begin
        incr opens;
        stack := C.begin_span ~cat:"test" (Printf.sprintf "s%d" !opens) :: !stack
      end
      else
        match !stack with
        | [] -> ()
        | h :: rest ->
            C.end_span h;
            stack := rest)
    program;
  List.iter C.end_span !stack;
  !opens

let spans_well_formed =
  QCheck.Test.make ~name:"collector span dumps are well-formed (3 domains)" ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_range 0 30) (int_range 0 9))
    (fun program ->
      with_collector (fun () ->
          let main_opens = run_span_program program in
          let workers =
            List.init 2 (fun _ -> Domain.spawn (fun () -> run_span_program program))
          in
          let worker_opens = List.map Domain.join workers in
          let dump = C.drain () in
          let expected = List.fold_left ( + ) main_opens worker_opens in
          match Telemetry.Span.well_formed dump.C.spans with
          | Error msg -> QCheck.Test.fail_reportf "ill-formed dump: %s" msg
          | Ok () ->
              List.length dump.C.spans = expected
              || QCheck.Test.fail_reportf "expected %d spans, dumped %d" expected
                   (List.length dump.C.spans)))

let counters_sum_across_domains =
  QCheck.Test.make ~name:"counter merge across domains = sum" ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_range 1 5) (int_range 0 1000))
    (fun increments ->
      with_collector (fun () ->
          let workers =
            List.map
              (fun n -> Domain.spawn (fun () -> C.count "test.counter" n))
              increments
          in
          List.iter Domain.join workers;
          C.count "test.counter" 7;
          let dump = C.drain () in
          List.assoc_opt "test.counter" dump.C.counters
          = Some (List.fold_left ( + ) 7 increments)))

let test_disabled_collector_records_nothing () =
  C.disable ();
  ignore (C.span "ghost" (fun () -> ()));
  C.count "ghost" 1;
  C.observe "ghost" 5;
  with_collector (fun () ->
      let dump = C.drain () in
      Alcotest.(check int) "no spans leak from the disabled period" 0
        (List.length dump.C.spans);
      Alcotest.(check bool) "no counters leak" true (dump.C.counters = []);
      Alcotest.(check bool) "no histograms leak" true (dump.C.histograms = []))

let test_open_spans_closed_at_drain () =
  with_collector (fun () ->
      let h = C.begin_span "left-open" in
      let dump = C.drain () in
      Alcotest.(check int) "drain closed the open span" 1 (List.length dump.C.spans);
      (match Telemetry.Span.well_formed dump.C.spans with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      (* ending after the drain swept it up is a harmless no-op *)
      C.end_span h;
      Alcotest.(check int) "stale end_span records nothing" 0
        (List.length (C.drain ()).C.spans))

(* ------------------------------------------------------------------ *)
(* Exporters: schema round-trips and validator rejections              *)
(* ------------------------------------------------------------------ *)

let synthetic_dump () =
  with_collector (fun () ->
      C.span ~cat:"phase" "outer" (fun () ->
          C.span ~cat:"inject" ~hist:"lat_ns" "inner" (fun () -> ()));
      C.count "events" 42;
      C.observe "lat_ns" 1500;
      C.drain ())

let test_jsonl_schema () =
  let dump = synthetic_dump () in
  let doc = Telemetry.Jsonl.to_string dump in
  (match Telemetry.Jsonl.validate_string doc with
  | Ok n ->
      (* 2 spans + 1 counter + 1 histogram *)
      Alcotest.(check int) "record count" 4 n
  | Error msg -> Alcotest.failf "fresh JSONL rejected: %s" msg);
  let first = List.hd (String.split_on_char '\n' doc) in
  match J.of_string first with
  | Error msg -> Alcotest.failf "header does not parse: %s" msg
  | Ok h ->
      Alcotest.(check (option string)) "header schema" (Some "mumak.telemetry")
        (Option.bind (J.member "schema" h) J.to_string_opt);
      Alcotest.(check (option int)) "header version" (Some 1)
        (Option.bind (J.member "version" h) J.to_int_opt)

let expect_invalid name doc =
  match Telemetry.Jsonl.validate_string doc with
  | Ok _ -> Alcotest.failf "%s: validator accepted malformed input" name
  | Error _ -> ()

let test_jsonl_validator_rejections () =
  expect_invalid "empty" "";
  expect_invalid "no header" {|{"type":"counter","name":"x","value":1}|};
  expect_invalid "wrong schema"
    {|{"type":"header","schema":"other.schema","version":1}|};
  expect_invalid "wrong version" {|{"type":"header","schema":"mumak.telemetry","version":99}|};
  expect_invalid "garbage line"
    ({|{"type":"header","schema":"mumak.telemetry","version":1}|} ^ "\nnot json\n");
  expect_invalid "span missing dur_ns"
    ({|{"type":"header","schema":"mumak.telemetry","version":1}|}
    ^ "\n"
    ^ {|{"type":"span","id":1,"parent":null,"track":0,"name":"x","cat":"","ts_ns":0}|});
  expect_invalid "unknown record type"
    ({|{"type":"header","schema":"mumak.telemetry","version":1}|} ^ "\n"
    ^ {|{"type":"mystery"}|})

let test_chrome_trace_schema () =
  let dump = synthetic_dump () in
  let json = Telemetry.Chrome_trace.to_json dump in
  (match Telemetry.Chrome_trace.validate json with
  | Ok n ->
      (* 2 spans + process_name + one thread_name *)
      Alcotest.(check int) "event count" 4 n
  | Error msg -> Alcotest.failf "fresh trace rejected: %s" msg);
  (* the rendered string parses back and still validates *)
  (match J.of_string (Telemetry.Chrome_trace.to_string dump) with
  | Ok reparsed -> (
      match Telemetry.Chrome_trace.validate reparsed with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "reparsed trace rejected: %s" msg)
  | Error msg -> Alcotest.failf "trace string does not parse: %s" msg);
  (* rejection paths *)
  (match Telemetry.Chrome_trace.validate (J.Assoc []) with
  | Ok _ -> Alcotest.fail "accepted object without traceEvents"
  | Error _ -> ());
  match
    Telemetry.Chrome_trace.validate
      (J.Assoc [ ("traceEvents", J.List [ J.Assoc [ ("name", J.String "x") ] ]) ])
  with
  | Ok _ -> Alcotest.fail "accepted event without ph/ts/pid/tid"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Engine integration: phase spans, worker tracks, counters            *)
(* ------------------------------------------------------------------ *)

let test_engine_dump () =
  with_collector (fun () ->
      let config = { Mumak.Config.faithful with Mumak.Config.jobs = 4 } in
      let r = Mumak.Engine.analyze ~config (btree_target ()) in
      let dump = C.drain () in
      (match Telemetry.Span.well_formed dump.C.spans with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "engine dump ill-formed: %s" msg);
      let main_names =
        List.filter_map
          (fun (s : Telemetry.Span.t) ->
            if s.Telemetry.Span.track = dump.C.dump_main_track then
              Some s.Telemetry.Span.name
            else None)
          dump.C.spans
      in
      List.iter
        (fun phase ->
          Alcotest.(check bool)
            (Printf.sprintf "main track has the %s phase" phase)
            true (List.mem phase main_names))
        [ "build_tree"; "injection"; "trace_analysis"; "resolve_stacks" ];
      let tracks =
        List.sort_uniq compare
          (List.map (fun (s : Telemetry.Span.t) -> s.Telemetry.Span.track) dump.C.spans)
      in
      Alcotest.(check bool) "worker domains contributed their own tracks" true
        (List.length tracks >= 2);
      (* pipeline counters agree with the engine's own result record *)
      let counter name = List.assoc_opt name dump.C.counters in
      Alcotest.(check (option int)) "fp.discovered counter"
        (Some r.Mumak.Engine.failure_points) (counter "fp.discovered");
      Alcotest.(check (option int)) "injections counter"
        (Some r.Mumak.Engine.injections) (counter "injections");
      Alcotest.(check (option int)) "executions counter"
        (Some r.Mumak.Engine.executions) (counter "executions");
      Alcotest.(check (option int)) "ta.events counter"
        (Some r.Mumak.Engine.trace_events) (counter "ta.events");
      (* each injection execution contributed one latency sample *)
      (match List.assoc_opt "injection_exec_ns" dump.C.histograms with
      | None -> Alcotest.fail "no injection_exec_ns histogram"
      | Some h ->
          Alcotest.(check int) "one exec sample per injection execution"
            (r.Mumak.Engine.executions - 1) (* minus the resolve_stacks run *)
            h.H.count);
      Alcotest.(check bool) "oracle latency histogram present" true
        (List.mem_assoc "oracle_ns" dump.C.histograms);
      Alcotest.(check bool) "crash-image latency histogram present" true
        (List.mem_assoc "crash_image_ns" dump.C.histograms);
      (* both exporters accept the real dump *)
      (match Telemetry.Chrome_trace.validate (Telemetry.Chrome_trace.to_json dump) with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "chrome trace invalid: %s" msg);
      match Telemetry.Jsonl.validate_string (Telemetry.Jsonl.to_string dump) with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "jsonl invalid: %s" msg)

(* ------------------------------------------------------------------ *)
(* Inertness: telemetry on vs off is invisible in the results          *)
(* ------------------------------------------------------------------ *)

let differential_on_off name ~bugs ~strategy ~jobs make_target =
  Bugreg.with_enabled bugs (fun () ->
      let config = { Mumak.Config.default with Mumak.Config.strategy; jobs } in
      C.disable ();
      let off = Mumak.Engine.analyze ~config (make_target ()) in
      let on =
        with_collector (fun () ->
            Telemetry.Progress.activate ();
            let r = Mumak.Engine.analyze ~config (make_target ()) in
            Alcotest.(check bool)
              (name ^ ": instrumented run actually recorded")
              true
              ((C.drain ()).C.counters <> []);
            r)
      in
      Alcotest.(check (list string))
        (name ^ ": report signature unchanged by telemetry")
        (Mumak.Report.signature off.Mumak.Engine.report)
        (Mumak.Report.signature on.Mumak.Engine.report);
      Alcotest.(check int)
        (name ^ ": failure points unchanged")
        off.Mumak.Engine.failure_points on.Mumak.Engine.failure_points;
      Alcotest.(check int)
        (name ^ ": injections unchanged")
        off.Mumak.Engine.injections on.Mumak.Engine.injections;
      Alcotest.(check int)
        (name ^ ": executions unchanged")
        off.Mumak.Engine.executions on.Mumak.Engine.executions)

let test_telemetry_inert () =
  List.iter
    (fun (label, strategy, jobs) ->
      differential_on_off
        ("clean btree " ^ label)
        ~bugs:[] ~strategy ~jobs btree_target;
      differential_on_off
        ("btree+insert_no_tx " ^ label)
        ~bugs:[ "btree_insert_no_tx" ] ~strategy ~jobs btree_target;
      differential_on_off
        ("hashmap_atomic+never_flushed " ^ label)
        ~bugs:[ "hm_atomic_count_never_flushed" ] ~strategy ~jobs
        (fun () ->
          Targets.of_app (app "hashmap_atomic") ~version:Pmalloc.Version.V1_6
            ~workload:(wl ()) ()))
    [
      ("snapshot", Mumak.Config.Snapshot, 1);
      ("reexecute j=1", Mumak.Config.Reexecute, 1);
      ("reexecute j=4", Mumak.Config.Reexecute, 4);
    ]

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "telemetry"
    [
      ( "clock",
        [
          Alcotest.test_case "monotonic and clamped" `Quick test_clock;
          Alcotest.test_case "metrics never negative" `Quick test_metrics_nonnegative;
        ] );
      qsuite "json" [ json_roundtrip ];
      qsuite "histogram"
        [
          hist_merge_is_concat; hist_merge_commutative; hist_merge_associative;
          hist_quantile_bounded;
        ];
      qsuite "collector" [ spans_well_formed; counters_sum_across_domains ];
      ( "collector-edges",
        [
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_collector_records_nothing;
          Alcotest.test_case "open spans close at drain" `Quick
            test_open_spans_closed_at_drain;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "jsonl schema round-trip" `Quick test_jsonl_schema;
          Alcotest.test_case "jsonl validator rejections" `Quick
            test_jsonl_validator_rejections;
          Alcotest.test_case "chrome trace schema" `Quick test_chrome_trace_schema;
        ] );
      ( "engine",
        [
          Alcotest.test_case "phase spans, worker tracks, counters" `Slow
            test_engine_dump;
          Alcotest.test_case "telemetry on/off differential" `Slow test_telemetry_inert;
        ] );
    ]
