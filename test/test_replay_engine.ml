(* The proof harness for the replay-first injection engine and the arena
   trace storage behind it.

   Layer 1 — the strategy differential: [Replay] (the default) promises to
   detect exactly what the cost-faithful [Reexecute] loop and the
   [Snapshot] optimisation detect, from a single recorded execution. For
   every seeded bug in the application, pmalloc and Montage registries
   (the full 33-bug matrix) and for the clean suite, [Replay jobs=1],
   [Replay jobs=4], [Reexecute] and [Snapshot] must produce byte-identical
   report signatures, identical failure-point and injection counts — and
   the replay runs must cost exactly one target execution (any live
   fallback would show up in the count).

   Layer 2 — the prune interaction: with [--absint --prune], the pruned
   replay engine at jobs=1 and jobs=4 must reproduce the unpruned replay
   signature, the re-execution signature, and skip exactly the confirmed
   nominations.

   Layer 3 — qcheck properties for the arena representation: pack/unpack
   round-trip, interning stability (decoded equal paths are physically
   shared), serialization of arena-backed traces equal to the list-backed
   round-trip, rewrite on arena-backed recordings agreeing with the
   list-based rewriter, and the store-only prefix materializer producing
   byte-identical images to a full device replay. *)

let app name =
  match Pmapps.Registry.find name with
  | Some m -> m
  | None -> Alcotest.failf "unknown app %s" name

let version_for name =
  if String.equal name "hashmap_atomic" then Pmalloc.Version.V1_6
  else Pmalloc.Version.V1_12

let wl ?(ops = 60) ?(key_range = 25) ?(seed = 42L) () =
  Workload.standard ~ops ~key_range ~seed

(* One target per seeded-bug component (the pmalloc library bugs need large
   grouped transactions to fire), mirroring test_parallel/test_absint. *)
let target_for component () =
  match component with
  | "pmalloc" ->
      Targets.of_app (app "btree") ~tx_mode:(Targets.Grouped 64)
        ~workload:(wl ~ops:120 ()) ()
  | "montage" -> Targets.of_montage ~variant:`Buffered ~workload:(wl ()) ()
  | name ->
      Targets.of_app (app name) ~version:(version_for name) ~workload:(wl ()) ()

let all_seeded_bugs () =
  Pmapps.Registry.all_bugs @ Pmalloc.Bugs.all @ Montage.Mt_alloc.bugs

(* --- layer 1: the strategy differential --- *)

let strategies =
  [
    ("replay j=1", Mumak.Config.Replay, 1);
    ("replay j=4", Mumak.Config.Replay, 4);
    ("reexecute", Mumak.Config.Reexecute, 1);
    ("snapshot", Mumak.Config.Snapshot, 1);
  ]

let differential ~bugs name make_target =
  Bugreg.with_enabled bugs (fun () ->
      let results =
        List.map
          (fun (label, strategy, jobs) ->
            let config = { Mumak.Config.default with Mumak.Config.strategy; jobs } in
            (label, Mumak.Engine.analyze ~config (make_target ())))
          strategies
      in
      let (_, base), rest = (List.hd results, List.tl results) in
      List.iter
        (fun (label, r) ->
          Alcotest.(check int)
            (Printf.sprintf "%s: %s failure points" name label)
            base.Mumak.Engine.failure_points r.Mumak.Engine.failure_points;
          Alcotest.(check int)
            (Printf.sprintf "%s: %s injections" name label)
            base.Mumak.Engine.injections r.Mumak.Engine.injections;
          Alcotest.(check (list string))
            (Printf.sprintf "%s: %s report signature" name label)
            (Mumak.Report.signature base.Mumak.Engine.report)
            (Mumak.Report.signature r.Mumak.Engine.report))
        rest;
      (* replay never re-executes: one recording, no fallback, and the free
         stack resolution rides on it *)
      Alcotest.(check int)
        (name ^ ": replay j=1 costs exactly one execution")
        1 base.Mumak.Engine.executions;
      (match results with
      | _ :: (_, par) :: _ ->
          Alcotest.(check int)
            (name ^ ": replay j=4 costs exactly one execution")
            1 par.Mumak.Engine.executions;
          if par.Mumak.Engine.failure_points >= 4 then
            Alcotest.(check int)
              (name ^ ": replay j=4 used four worker domains")
              4
              (List.length par.Mumak.Engine.worker_metrics)
      | _ -> Alcotest.fail "expected a replay j=4 result");
      base)

let test_full_seeded_matrix () =
  let bugs = all_seeded_bugs () in
  Alcotest.(check int) "the seeded matrix has 33 bugs" 33 (List.length bugs);
  List.iter
    (fun (b : Bugreg.t) ->
      ignore
        (differential ~bugs:[ b.Bugreg.id ] b.Bugreg.id (target_for b.Bugreg.component)))
    bugs

let test_seeded_bugs_detected () =
  (* spot-check that the matrix actually exercises the oracle: a known
     correctness bug must be reported under the replay default *)
  let r =
    Bugreg.with_enabled [ "btree_insert_no_tx" ] (fun () ->
        Mumak.Engine.analyze (target_for "btree" ()))
  in
  Alcotest.(check bool) "seeded bug detected by replay" true
    (Mumak.Report.correctness_bugs r.Mumak.Engine.report <> [])

let test_clean_targets () =
  List.iter
    (fun name -> ignore (differential ~bugs:[] name (target_for name)))
    [ "btree"; "wort"; "hashmap_atomic"; "level_hash" ];
  ignore
    (differential ~bugs:[] "montage.Hashtable" (fun () ->
         Targets.of_montage ~variant:`Buffered ~workload:(wl ~ops:40 ()) ()));
  ignore
    (differential ~bugs:[] "pmemkv.cmap" (fun () ->
         Targets.of_pmemkv ~engine:Kvstores.Pmemkv.Cmap ~workload:(wl ~ops:40 ()) ()))

(* --- layer 2: absint + prune on the replay substrate --- *)

let replay_cfg jobs = { Mumak.Config.default with Mumak.Config.jobs }
let unpruned jobs = { (replay_cfg jobs) with Mumak.Config.absint = true }
let pruned jobs = { (unpruned jobs) with Mumak.Config.prune = true }

let reexec_unpruned =
  {
    Mumak.Config.default with
    Mumak.Config.strategy = Mumak.Config.Reexecute;
    absint = true;
  }

let plan_of (r : Mumak.Engine.result) =
  match r.Mumak.Engine.absint with
  | Some { Mumak.Engine.prune = Some plan; _ } -> plan
  | _ -> Alcotest.fail "pruned run carries no prune plan"

let prune_differential name make_target =
  let base = Mumak.Engine.analyze ~config:(unpruned 1) (make_target ()) in
  (* the same analysis on the live substrate: replay changes nothing *)
  let live = Mumak.Engine.analyze ~config:reexec_unpruned (make_target ()) in
  Alcotest.(check (list string))
    (name ^ ": replay and re-execution absint signatures")
    (Mumak.Report.signature live.Mumak.Engine.report)
    (Mumak.Report.signature base.Mumak.Engine.report);
  List.iter
    (fun jobs ->
      let r = Mumak.Engine.analyze ~config:(pruned jobs) (make_target ()) in
      let plan = plan_of r in
      Alcotest.(check (list string))
        (Printf.sprintf "%s: pruned replay j=%d report signature" name jobs)
        (Mumak.Report.signature base.Mumak.Engine.report)
        (Mumak.Report.signature r.Mumak.Engine.report);
      Alcotest.(check int)
        (Printf.sprintf "%s: pruned replay j=%d failure points" name jobs)
        base.Mumak.Engine.failure_points r.Mumak.Engine.failure_points;
      (* under replay the confirmation is folded into injection: confirmed
         nominees' records are elided, so the injection count drops by
         exactly the skip set *)
      Alcotest.(check int)
        (Printf.sprintf "%s: pruned replay j=%d skips exactly the plan" name jobs)
        (base.Mumak.Engine.injections - List.length plan.Analysis.Prune.skip)
        r.Mumak.Engine.injections;
      Alcotest.(check bool)
        (Printf.sprintf "%s: pruned replay j=%d plan is consistent" name jobs)
        true
        (plan.Analysis.Prune.confirmed + plan.Analysis.Prune.rejected
         = plan.Analysis.Prune.proven
        && List.length plan.Analysis.Prune.skip = plan.Analysis.Prune.confirmed))
    [ 1; 4 ]

let test_prune_clean () =
  List.iter (fun name -> prune_differential name (target_for name)) [ "wort"; "btree" ]

let test_prune_seeded () =
  List.iter
    (fun id ->
      Bugreg.with_enabled [ id ] (fun () ->
          let component =
            match Bugreg.find id with
            | Some b -> b.Bugreg.component
            | None -> Alcotest.failf "unknown bug %s" id
          in
          prune_differential id (target_for component)))
    [ "btree_insert_no_tx"; "level_hash_token_before_kv"; "hm_atomic_count_never_flushed" ]

(* --- layer 3: arena properties --- *)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

(* A small pool of well-formed call paths: repetition exercises interning,
   and the labels avoid the serialization metacharacters. *)
let path_pool =
  [ [ "_start" ]; [ "_start"; "put" ]; [ "_start"; "put"; "split" ]; [ "_start"; "del" ] ]

let pool_size = 4096

let op_gen =
  QCheck.Gen.(
    frequency
      [
        ( 4,
          let* addr = 0 -- (pool_size - 9) in
          let* size = 1 -- 8 in
          let* nt = bool in
          return (Pmem.Op.Store { addr; size; nt }) );
        ( 3,
          let* kind = oneofl [ Pmem.Op.Clflush; Pmem.Op.Clflushopt; Pmem.Op.Clwb ] in
          let* line = 0 -- 63 in
          let* dirty = bool in
          return (Pmem.Op.Flush { kind; line; dirty; volatile = false }) );
        ( 2,
          let* kind = oneofl [ Pmem.Op.Sfence; Pmem.Op.Mfence; Pmem.Op.Rmw ] in
          let* pending_flushes = 0 -- 4 in
          let* pending_nt = 0 -- 2 in
          return (Pmem.Op.Fence { kind; pending_flushes; pending_nt }) );
        ( 1,
          let* addr = 0 -- (pool_size - 9) in
          let* size = 1 -- 8 in
          return (Pmem.Op.Load { addr; size }) );
      ])

let event_gen =
  QCheck.Gen.(
    let* n = 1 -- 40 in
    let* ops = list_size (return n) op_gen in
    let* stacks =
      list_size (return n)
        (frequency
           [
             ( 3,
               let* path = oneofl path_pool in
               let* op_index = 1 -- 5 in
               return (Some { Pmtrace.Callstack.path; op_index }) );
             (1, return None);
           ])
    in
    return
      (List.mapi
         (fun i (op, stack) -> { Pmtrace.Event.seq = i + 1; op; stack })
         (List.combine ops stacks)))

let print_events evs =
  String.concat "\n" (List.map Pmtrace.Trace.event_to_line evs)

let events_arb = QCheck.make ~print:print_events event_gen

let pseq_count evs =
  List.length
    (List.filter
       (fun e -> match e.Pmtrace.Event.op with Pmem.Op.Load _ -> false | _ -> true)
       evs)

let arena_of evs =
  let a = Pmtrace.Arena.create () in
  List.iter (Pmtrace.Arena.add a) evs;
  a

let arena_tests =
  [
    QCheck.Test.make ~name:"pack/unpack round-trip" ~count:300 events_arb (fun evs ->
        let a = arena_of evs in
        Pmtrace.Arena.length a = List.length evs && Pmtrace.Arena.to_list a = evs);
    QCheck.Test.make ~name:"get agrees with iteration order" ~count:100 events_arb
      (fun evs ->
        let a = arena_of evs in
        List.for_all2
          (fun e i -> Pmtrace.Arena.get a i = e)
          evs
          (List.init (List.length evs) Fun.id));
    QCheck.Test.make ~name:"interning stability: equal paths share one copy" ~count:100
      events_arb (fun evs ->
        let a = arena_of evs in
        let decoded = Pmtrace.Arena.to_list a in
        (* the arena never interns more paths than the pool offers, and two
           decoded events with structurally equal paths return the same
           physical list *)
        Pmtrace.Arena.path_count a <= List.length path_pool
        && List.for_all
             (fun e1 ->
               List.for_all
                 (fun e2 ->
                   match (e1.Pmtrace.Event.stack, e2.Pmtrace.Event.stack) with
                   | Some c1, Some c2
                     when c1.Pmtrace.Callstack.path = c2.Pmtrace.Callstack.path ->
                       c1.Pmtrace.Callstack.path == c2.Pmtrace.Callstack.path
                   | _ -> true)
                 decoded)
             decoded);
    QCheck.Test.make ~name:"path ids stable across clear" ~count:100 events_arb
      (fun evs ->
        let a = arena_of evs in
        let ids =
          List.filter_map
            (fun (e : Pmtrace.Event.t) ->
              Option.map
                (fun c -> (c.Pmtrace.Callstack.path, Pmtrace.Arena.path_id a c.Pmtrace.Callstack.path))
                e.Pmtrace.Event.stack)
            evs
        in
        Pmtrace.Arena.clear a;
        List.iter (Pmtrace.Arena.add a) evs;
        List.for_all (fun (path, id) -> Pmtrace.Arena.path_id a path = id) ids);
    QCheck.Test.make ~name:"serialize/deserialize equals list-backed round-trip"
      ~count:200 events_arb (fun evs ->
        (* arena-backed: through Trace.t (an arena underneath) *)
        let t = Pmtrace.Trace.create () in
        List.iter (Pmtrace.Trace.add t) evs;
        let arena_rt =
          Pmtrace.Trace.to_list (Pmtrace.Trace.deserialize (Pmtrace.Trace.serialize t))
        in
        (* list-backed: line-by-line through the event codec *)
        let list_rt =
          List.map
            (fun e -> Pmtrace.Trace.event_of_line (Pmtrace.Trace.event_to_line e))
            evs
        in
        arena_rt = list_rt && arena_rt = evs);
    QCheck.Test.make ~name:"rewrite on arena recordings = rewrite on lists" ~count:200
      (QCheck.pair events_arb (QCheck.make QCheck.Gen.(0 -- 1000)))
      (fun (evs, salt) ->
        let np = pseq_count evs in
        QCheck.assume (np > 0);
        (* insertions anchored on live pseqs always apply; deletions would
           need a matching instruction at the anchor, which the list and
           arena paths must agree on anyway via the shared rewriter *)
        let edits =
          [
            Pmtrace.Replay.Insert_flush_after { pseq = 1 + (salt mod np); line = salt mod 64 };
            Pmtrace.Replay.Insert_fence_after { pseq = 1 + (salt / 7 mod np) };
          ]
        in
        let t = Pmtrace.Replay.of_events ~pool_size evs in
        Pmtrace.Replay.events (Pmtrace.Replay.rewrite t edits)
        = Pmtrace.Replay.rewrite_events evs edits);
    QCheck.Test.make ~name:"materialized images = device-replay crash images" ~count:100
      events_arb (fun evs ->
        let np = pseq_count evs in
        np = 0
        ||
        let t = Pmtrace.Replay.of_events ~pool_size evs in
        (* batch-materialize every persistency index; snapshot each view
           inside the callback (it reads through the shared prefix and is
           only valid there) *)
        let materialized = Hashtbl.create np in
        let unreached =
          Pmtrace.Replay.materialize t
            ~points:(List.init np (fun i -> (i + 1, i + 1)))
            ~f:(fun ~key image ->
              Hashtbl.replace materialized key (Pmem.Image.snapshot image))
        in
        (* reference: a full device replay capturing the program-prefix
           crash image at each event's arrival *)
        let reference = Hashtbl.create np in
        ignore
          (Pmtrace.Replay.replay t ~on_event:(fun device ~pseq e ->
               match e.Pmtrace.Event.op with
               | Pmem.Op.Load _ -> ()
               | _ ->
                   Hashtbl.replace reference pseq
                     (Pmem.Device.crash device ~policy:Pmem.Device.Program_prefix)));
        unreached = []
        && Hashtbl.length materialized = np
        && List.for_all
             (fun p ->
               Pmem.Image.equal (Hashtbl.find materialized p) (Hashtbl.find reference p))
             (List.init np (fun i -> i + 1)));
  ]

let () =
  Alcotest.run "replay-engine"
    [
      ( "strategy-differential",
        [
          Alcotest.test_case "all 33 seeded bugs, four engines" `Slow
            test_full_seeded_matrix;
          Alcotest.test_case "seeded bug detected under replay" `Slow
            test_seeded_bugs_detected;
          Alcotest.test_case "clean targets, four engines" `Slow test_clean_targets;
        ] );
      ( "absint-prune",
        [
          Alcotest.test_case "clean targets" `Slow test_prune_clean;
          Alcotest.test_case "seeded bugs" `Slow test_prune_seeded;
        ] );
      qsuite "arena" arena_tests;
    ]
