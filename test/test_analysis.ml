(* Tests for the offline static analyzer (lib/analysis): dependency-graph
   structural properties over generated and recorded traces, trace
   serialization round-trips, the prioritizer's ordering guarantees, the
   static-findings-vs-ground-truth differential, and the never-worse
   prioritization differential against the unprioritized injection loop. *)

let wl ?(ops = 250) ?(key_range = 60) () = Targets.standard_workload ~ops ~key_range ()

let target_for ?version ?tx_mode name =
  match Pmapps.Registry.find name with
  | None -> Alcotest.failf "unknown app %s" name
  | Some (module A : Pmapps.Kv_intf.S) ->
      let version =
        match version with
        | Some v -> v
        | None ->
            if String.equal name "hashmap_atomic" then Pmalloc.Version.V1_6
            else Pmalloc.Version.V1_12
      in
      Targets.of_app (module A) ~version ?tx_mode ~workload:(wl ()) ()

(* One fully instrumented recording, mirroring the engine's internal
   [record_trace]: stacks on every event, optional load tracing. *)
let record ?(loads = false) (target : Mumak.Target.t) =
  let device = Pmem.Device.create ~size:target.Mumak.Target.pool_size () in
  if loads then Pmem.Device.trace_loads device true;
  let tracer = Pmtrace.Tracer.create ~collect:true ~with_stacks:true device in
  target.Mumak.Target.run ~device
    ~framer:(Pmtrace.Framer.of_callstack (Pmtrace.Tracer.stack tracer));
  Pmtrace.Tracer.detach tracer;
  Pmtrace.Tracer.trace tracer

(* --- dependency-graph structural properties --- *)

let events_of_ops ops =
  List.mapi (fun i op -> { Pmtrace.Event.seq = i + 1; op; stack = None }) ops

(* a well-formed persist of slot [s]: store, flush its line, fence *)
let persist_ops slot =
  [
    Pmem.Op.Store { addr = slot * 8; size = 8; nt = false };
    Pmem.Op.Flush { kind = Pmem.Op.Clwb; line = slot * 8 / 64; dirty = true; volatile = false };
    Pmem.Op.Fence { kind = Pmem.Op.Sfence; pending_flushes = 1; pending_nt = 0 };
  ]

(* a messier block: lone stores, loads, clean flushes, empty fences *)
let block_ops (choice, slot) =
  match choice mod 5 with
  | 0 -> persist_ops slot
  | 1 -> [ Pmem.Op.Store { addr = slot * 8; size = 8; nt = false } ]
  | 2 -> [ Pmem.Op.Load { addr = slot * 8; size = 8 } ]
  | 3 ->
      [ Pmem.Op.Flush { kind = Pmem.Op.Clwb; line = slot * 8 / 64; dirty = false; volatile = false } ]
  | _ -> [ Pmem.Op.Fence { kind = Pmem.Op.Sfence; pending_flushes = 0; pending_nt = 0 } ]

let prop_graph_check_synthetic =
  QCheck.Test.make ~name:"generated traces build structurally valid graphs" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 60) (pair (int_range 0 20) (int_range 0 50)))
    (fun blocks ->
      let g = Analysis.Dep_graph.build (events_of_ops (List.concat_map block_ops blocks)) in
      Analysis.Dep_graph.check g = [])

let test_graph_check_recorded () =
  List.iter
    (fun name ->
      let trace = record ~loads:true (target_for name) in
      let g = Analysis.Dep_graph.build (Pmtrace.Trace.to_list trace) in
      Alcotest.(check (list string))
        (name ^ " recorded-trace graph passes structural checks")
        []
        (Analysis.Dep_graph.check g))
    [ "btree"; "hashmap_atomic" ]

let test_graph_epochs_monotone () =
  let trace = record ~loads:true (target_for "btree") in
  let g = Analysis.Dep_graph.build (Pmtrace.Trace.to_list trace) in
  let groups = Analysis.Dep_graph.epoch_groups g in
  let epochs = List.map fst groups in
  Alcotest.(check (list int)) "epoch groups ascend" (List.sort compare epochs) epochs;
  Alcotest.(check bool) "a real workload persists something" true (Array.length g.Analysis.Dep_graph.nodes > 0)

(* --- trace serialization --- *)

let test_trace_roundtrip_recorded () =
  List.iter
    (fun loads ->
      let trace = record ~loads (target_for "btree") in
      let trace' = Pmtrace.Trace.deserialize (Pmtrace.Trace.serialize trace) in
      Alcotest.(check int)
        (Printf.sprintf "length preserved (loads=%b)" loads)
        (Pmtrace.Trace.length trace) (Pmtrace.Trace.length trace');
      Alcotest.(check bool)
        (Printf.sprintf "events round-trip (loads=%b)" loads)
        true
        (List.for_all2
           (fun (a : Pmtrace.Event.t) b -> a = b)
           (Pmtrace.Trace.to_list trace) (Pmtrace.Trace.to_list trace')))
    [ false; true ]

let prop_trace_roundtrip_synthetic =
  QCheck.Test.make ~name:"synthetic event streams round-trip through serialization" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 40) (pair (int_range 0 20) (int_range 0 50)))
    (fun blocks ->
      let t = Pmtrace.Trace.create () in
      List.iter (Pmtrace.Trace.add t) (events_of_ops (List.concat_map block_ops blocks));
      Pmtrace.Trace.to_list (Pmtrace.Trace.deserialize (Pmtrace.Trace.serialize t))
      = Pmtrace.Trace.to_list t)

(* --- trace-analysis raw findings are unique per (kind, seq) --- *)

let prop_ta_findings_unique =
  QCheck.Test.make ~name:"trace-analysis raw findings are deduplicated by (kind, seq)" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 60) (pair (int_range 0 20) (int_range 0 50)))
    (fun blocks ->
      let ta = Mumak.Trace_analysis.create Mumak.Config.default in
      List.iter
        (fun e -> Mumak.Trace_analysis.feed ta e)
        (events_of_ops (List.concat_map block_ops blocks));
      let raw = Mumak.Trace_analysis.finish ta in
      let keys =
        List.map (fun (r : Mumak.Trace_analysis.raw) -> (r.Mumak.Trace_analysis.kind, r.Mumak.Trace_analysis.seq)) raw
      in
      List.length keys = List.length (List.sort_uniq compare keys))

(* --- prioritizer ordering guarantees --- *)

let cap path op_index = { Pmtrace.Callstack.path; op_index }

let points_gen =
  (* ordinals 0..n-1 with strictly increasing first_seqs and tiny stacks *)
  QCheck.Gen.(
    list_size (int_range 1 40) (pair (int_range 1 5) (list_size (int_range 0 3) (string_size ~gen:(char_range 'a' 'e') (return 2))))
    >|= fun raw ->
    List.mapi
      (fun i (gap, path) -> (i, (i * 7) + gap, cap path (i mod 5)))
      raw)

let windows_gen =
  QCheck.Gen.(
    list_size (int_range 0 10)
      (triple (int_range 0 300) (int_range 0 50) (oneofl [ 0; 10; 50; 100 ]))
    >|= List.map (fun (lo, len, w) -> (lo, lo + len, w)))

let arb_priority_input =
  QCheck.make
    QCheck.Gen.(
      triple points_gen windows_gen
        (list_size (int_range 0 3) (string_size ~gen:(char_range 'a' 'e') (return 2))))

let prop_order_is_permutation =
  QCheck.Test.make ~name:"priority order is a permutation of the ordinals" ~count:300
    arb_priority_input
    (fun (points, windows, hot_frames) ->
      let order = Analysis.Prioritize.order ~hot_frames windows points in
      List.sort compare order = List.sort compare (List.map (fun (o, _, _) -> o) points))

let prop_order_identity_without_evidence =
  QCheck.Test.make ~name:"no static evidence degrades to discovery order" ~count:300
    (QCheck.make points_gen)
    (fun points ->
      Analysis.Prioritize.order [] points
      = List.sort compare (List.map (fun (o, _, _) -> o) points))

let prop_order_never_demotes_prioritized =
  QCheck.Test.make
    ~name:"a prioritized point is never later than in discovery order" ~count:300
    arb_priority_input
    (fun (points, windows, hot_frames) ->
      let order = Analysis.Prioritize.order ~hot_frames windows points in
      let scored = Analysis.Prioritize.score ~hot_frames windows points in
      let position o l =
        let rec go i = function
          | [] -> assert false
          | x :: tl -> if x = o then i else go (i + 1) tl
        in
        go 0 l
      in
      let baseline = List.sort compare (List.map (fun (o, _, _) -> o) points) in
      List.for_all
        (fun (s : Analysis.Prioritize.scored) ->
          s.Analysis.Prioritize.score = 0
          || position s.Analysis.Prioritize.ordinal order
             <= position s.Analysis.Prioritize.ordinal baseline)
        scored)

(* --- static findings vs ground truth --- *)

let static_config =
  (* smaller mining effort than the default profile: the tests re-analyze
     several targets and only need the subject run + one witness *)
  { Mumak.Config.static_analysis with Mumak.Config.invariant_runs = 2 }

let static_findings target =
  let r = Mumak.Engine.analyze ~config:static_config target in
  match r.Mumak.Engine.static with
  | None -> Alcotest.fail "static config produced no static result"
  | Some s -> (r, s.Analysis.Static.findings)

let test_static_clean_no_durability () =
  List.iter
    (fun name ->
      let _, findings = static_findings (target_for name) in
      let durability =
        List.filter (fun (f : Analysis.Static.finding) -> f.Analysis.Static.kind = Analysis.Static.Durability) findings
      in
      Alcotest.(check int)
        (name ^ ": clean build has no static durability findings")
        0 (List.length durability))
    [ "btree"; "hashmap_atomic" ]

let check_seeded_finding ~app ~bug ~kind () =
  Bugreg.with_enabled [ bug ] (fun () ->
      let _, findings = static_findings (target_for app) in
      match
        List.find_opt (fun (f : Analysis.Static.finding) -> f.Analysis.Static.kind = kind) findings
      with
      | None -> Alcotest.failf "%s: no static %s finding" bug (Analysis.Static.kind_to_string kind)
      | Some f -> (
          match f.Analysis.Static.fix with
          | None -> Alcotest.failf "%s: finding carries no fix suggestion" bug
          | Some fx ->
              Alcotest.(check bool)
                (bug ^ ": fix is anchored at a frame + ordinal")
                true
                (fx.Analysis.Fix.stack <> None)))

let test_static_seeded_durability () =
  check_seeded_finding ~app:"hashmap_atomic" ~bug:"hm_atomic_count_never_flushed"
    ~kind:Analysis.Static.Durability ()

let test_static_seeded_ordering () =
  check_seeded_finding ~app:"hashmap_atomic" ~bug:"hm_atomic_link_before_persist"
    ~kind:Analysis.Static.Ordering ()

let test_static_same_correctness_bugs () =
  (* the static phase must not change what fault injection + trace analysis
     prove: correctness bugs of the combined report are identical with and
     without it (static-only additions are warnings or fix-annotated
     duplicates of the same findings) *)
  List.iter
    (fun bug ->
      Bugreg.with_enabled [ bug ] (fun () ->
          let base = Mumak.Engine.analyze ~config:Mumak.Config.faithful (target_for "btree") in
          let stat = Mumak.Engine.analyze ~config:static_config (target_for "btree") in
          let kinds r =
            List.sort compare
              (List.map (fun (f : Mumak.Report.finding) -> Mumak.Report.kind_to_string f.Mumak.Report.kind)
                 (Mumak.Report.bugs r.Mumak.Engine.report))
          in
          Alcotest.(check (list string))
            (bug ^ ": correctness bugs unchanged by the static phase")
            (kinds base) (kinds stat)))
    [ "btree_insert_no_tx"; "btree_count_outside_tx" ]

(* --- invariant-guided prioritization differential --- *)

let test_prioritized_never_worse () =
  (* the bench-scale version of this differential runs the full seeded-bug
     matrix; here a representative subset keeps the suite fast *)
  List.iter
    (fun (app, bug) ->
      Bugreg.with_enabled [ bug ] (fun () ->
          let target = target_for app in
          let base = Mumak.Engine.analyze ~config:Mumak.Config.faithful target in
          let pri = Mumak.Engine.analyze ~config:static_config target in
          match (base.Mumak.Engine.first_bug_injection, pri.Mumak.Engine.first_bug_injection) with
          | Some b, Some p ->
              if p > b then
                Alcotest.failf "%s: prioritized order reached the bug later (%d > %d)" bug p b
          | None, Some p -> Alcotest.failf "%s: only the prioritized run found a bug (%d)" bug p
          | Some b, None -> Alcotest.failf "%s: prioritized run lost the bug (baseline %d)" bug b
          | None, None -> ()))
    [
      ("btree", "btree_insert_no_tx");
      ("wort", "wort_link_uninitialized_node");
      ("hashmap_tx", "hm_tx_head_no_snapshot");
    ]

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "analysis"
    [
      ( "dep_graph",
        [
          qt prop_graph_check_synthetic;
          Alcotest.test_case "recorded traces pass structural checks" `Quick
            test_graph_check_recorded;
          Alcotest.test_case "epoch groups are monotone" `Quick test_graph_epochs_monotone;
        ] );
      ( "trace_serialization",
        [
          Alcotest.test_case "recorded traces round-trip" `Quick test_trace_roundtrip_recorded;
          qt prop_trace_roundtrip_synthetic;
        ] );
      ("trace_analysis", [ qt prop_ta_findings_unique ]);
      ( "prioritize",
        [
          qt prop_order_is_permutation;
          qt prop_order_identity_without_evidence;
          qt prop_order_never_demotes_prioritized;
        ] );
      ( "static_differential",
        [
          Alcotest.test_case "clean builds: no static durability findings" `Quick
            test_static_clean_no_durability;
          Alcotest.test_case "seeded durability bug found with anchored fix" `Quick
            test_static_seeded_durability;
          Alcotest.test_case "seeded ordering bug found with anchored fix" `Quick
            test_static_seeded_ordering;
          Alcotest.test_case "correctness bugs unchanged by the static phase" `Quick
            test_static_same_correctness_bugs;
        ] );
      ( "prioritized_injection",
        [
          Alcotest.test_case "never worse than discovery order" `Quick
            test_prioritized_never_worse;
        ] );
    ]
