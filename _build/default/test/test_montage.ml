(* Tests for the Montage analogue: functional behaviour of both hashtables,
   clean crash-recovery (buffered semantics: committed epochs survive, the
   open epoch may be discarded), and exposure of the two real Montage bugs
   through the Mumak pipeline. *)

let size = Montage.Hashtable.min_pool_size

let test_hashtable_functional () =
  let dev = Pmem.Device.create ~size () in
  let t = Montage.Hashtable.create dev in
  let model = Hashtbl.create 64 in
  List.iter
    (fun op ->
      match op with
      | Workload.Put (k, v) ->
          Montage.Hashtable.put t ~key:k ~value:v;
          Hashtbl.replace model k v
      | Workload.Get k ->
          if Montage.Hashtable.get t ~key:k <> Hashtbl.find_opt model k then
            Alcotest.failf "montage get mismatch for %Ld" k
      | Workload.Delete k ->
          let expect = Hashtbl.mem model k in
          Hashtbl.remove model k;
          if Montage.Hashtable.delete t ~key:k <> expect then
            Alcotest.failf "montage delete mismatch for %Ld" k)
    (Workload.standard ~ops:500 ~key_range:120 ~seed:5L);
  Alcotest.(check int) "count" (Hashtbl.length model) (Montage.Hashtable.count t)

let test_lf_hashtable_functional () =
  let dev = Pmem.Device.create ~size () in
  let t = Montage.Lf_hashtable.create dev in
  let model = Hashtbl.create 64 in
  List.iter
    (fun op ->
      match op with
      | Workload.Put (k, v) ->
          Montage.Lf_hashtable.put t ~key:k ~value:v;
          Hashtbl.replace model k v
      | Workload.Get k ->
          if Montage.Lf_hashtable.get t ~key:k <> Hashtbl.find_opt model k then
            Alcotest.failf "montage_lf get mismatch for %Ld" k
      | Workload.Delete k ->
          let expect = Hashtbl.mem model k in
          Hashtbl.remove model k;
          if Montage.Lf_hashtable.delete t ~key:k <> expect then
            Alcotest.failf "montage_lf delete mismatch for %Ld" k)
    (Workload.standard ~ops:500 ~key_range:120 ~seed:5L);
  Alcotest.(check int) "count" (Hashtbl.length model) (Montage.Lf_hashtable.count t)

let test_buffered_crash_loses_at_most_open_epoch () =
  let dev = Pmem.Device.create ~size () in
  let t = Montage.Hashtable.create dev in
  (* 20 puts: epochs publish every 8 mutations, so 16 are committed *)
  for i = 1 to 20 do
    Montage.Hashtable.put t ~key:(Int64.of_int i) ~value:(Int64.of_int i)
  done;
  (* power cut without close: only fenced data survives *)
  let img = Pmem.Device.crash dev ~policy:Pmem.Device.Adr in
  Alcotest.(check (result unit string)) "recovery consistent" (Ok ())
    (Montage.Hashtable.recover (Pmem.Device.of_image img))

let test_close_makes_everything_durable () =
  let dev = Pmem.Device.create ~size () in
  let t = Montage.Hashtable.create dev in
  for i = 1 to 21 do
    Montage.Hashtable.put t ~key:(Int64.of_int i) ~value:(Int64.of_int i)
  done;
  Montage.Hashtable.close t;
  let img = Pmem.Device.crash dev ~policy:Pmem.Device.Adr in
  Alcotest.(check (result unit string)) "clean shutdown recovers" (Ok ())
    (Montage.Hashtable.recover (Pmem.Device.of_image img))

(* Clean sweep: crash at every PM instruction; recovery must always
   succeed. *)
let sweep variant () =
  let target =
    Targets.of_montage ~variant
      ~workload:(Workload.standard ~ops:60 ~key_range:30 ~seed:9L)
      ()
  in
  Bugreg.disable_all ();
  let result = Mumak.Engine.analyze target in
  let correctness = Mumak.Report.correctness_bugs result.Mumak.Engine.report in
  if correctness <> [] then
    Alcotest.failf "clean montage reported bugs:\n%s"
      (String.concat "\n" (List.map (Fmt.str "%a" Mumak.Report.pp_finding) correctness));
  Alcotest.(check bool) "failure points found" true (result.Mumak.Engine.failure_points > 5)

let expose bug variant () =
  Bugreg.with_enabled [ bug ] (fun () ->
      let target =
        Targets.of_montage ~variant
          ~workload:(Workload.standard ~ops:60 ~key_range:30 ~seed:9L)
          ()
      in
      let result = Mumak.Engine.analyze target in
      Alcotest.(check bool)
        (bug ^ " exposed")
        true
        (Mumak.Report.correctness_bugs result.Mumak.Engine.report <> []))

let () =
  Alcotest.run "montage"
    [
      ( "functional",
        [
          Alcotest.test_case "hashtable vs model" `Quick test_hashtable_functional;
          Alcotest.test_case "lf hashtable vs model" `Quick test_lf_hashtable_functional;
          Alcotest.test_case "buffered epoch semantics" `Quick
            test_buffered_crash_loses_at_most_open_epoch;
          Alcotest.test_case "close durability" `Quick test_close_makes_everything_durable;
        ] );
      ( "mumak-clean",
        [
          Alcotest.test_case "hashtable sweep" `Slow (sweep `Buffered);
          Alcotest.test_case "lf sweep" `Slow (sweep `Lockfree);
        ] );
      ( "new-bugs (paper 6.4)",
        [
          Alcotest.test_case "allocator recoverability bug" `Slow
            (expose "montage_alloc_head_unpersisted" `Buffered);
          Alcotest.test_case "destructor window bug" `Slow
            (expose "montage_dtor_window" `Buffered);
        ] );
    ]
