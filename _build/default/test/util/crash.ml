(** Test helpers for crash-injection sweeps: run a scenario, kill it at the
    n-th PM instruction, and hand the resulting crash image to a recovery
    check. [setup] runs before injection is armed (pool formatting is not a
    crash target, matching the paper where faults are injected while the
    workload runs).

    The crash image is captured {e inside} the hook, at the moment the kill
    fires, and the kill is sticky: every later PM instruction also raises,
    so unwinding code (transaction aborts, finalisers) cannot mutate the
    post-crash state. *)

exception Killed

(** [image_at ~size ~policy ~setup ~at scenario] creates a device, runs
    [setup] uninstrumented, then runs [scenario (setup result)] and crashes
    it at PM instruction number [at] (1-based). Returns [Some image] if the
    crash fired, [None] if the scenario finished in fewer instructions. *)
let image_at ~size ~policy ~setup ~at scenario =
  let dev = Pmem.Device.create ~size () in
  let ctx = setup dev in
  let count = ref 0 in
  let captured = ref None in
  Pmem.Device.set_hook dev
    (Some
       (fun _op ->
         incr count;
         if !count >= at then begin
           if !captured = None then captured := Some (Pmem.Device.crash dev ~policy);
           raise Killed
         end));
  let finish () = Pmem.Device.set_hook dev None in
  match scenario ctx with
  | () ->
      finish ();
      !captured
  | exception Killed ->
      finish ();
      !captured
  | exception Fun.Finally_raised Killed ->
      finish ();
      !captured

(** [ops_in ~size ~setup scenario] counts the PM instructions a full
    scenario run executes (setup excluded). *)
let ops_in ~size ~setup scenario =
  let dev = Pmem.Device.create ~size () in
  let ctx = setup dev in
  let count = ref 0 in
  Pmem.Device.set_hook dev (Some (fun _ -> incr count));
  scenario ctx;
  Pmem.Device.set_hook dev None;
  !count

(** [sweep ~size ~policy ~setup scenario ~check] crashes [scenario] at every
    PM instruction in turn and calls [check ~at image] on each crash image.
    Returns the number of crash points exercised. *)
let sweep ~size ~policy ~setup scenario ~check =
  let total = ops_in ~size ~setup scenario in
  for at = 1 to total do
    match image_at ~size ~policy ~setup ~at scenario with
    | Some image -> check ~at image
    | None -> Alcotest.failf "sweep: crash point %d not reached (total %d)" at total
  done;
  total

let i64 = Alcotest.testable (fun ppf v -> Fmt.pf ppf "%Ld" v) Int64.equal

(** Substring containment, used by report-content assertions. *)
let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0
