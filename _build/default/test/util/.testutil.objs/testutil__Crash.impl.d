test/util/crash.ml: Alcotest Fmt Fun Int64 Pmem String
