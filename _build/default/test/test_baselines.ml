(* Tests for the baseline tools: each runs its published approach on small
   workloads, catches the bug classes its Table 1 row promises — including
   the ordering bugs Mumak deliberately misses — and respects the analysis
   budget (the 12-hour-timeout analogue). *)

let wl ?(ops = 60) ?(key_range = 25) () = Workload.standard ~ops ~key_range ~seed:17L

let btree_target ?(ops = 60) () =
  Targets.of_app (module Pmapps.Btree) ~version:Pmalloc.Version.V1_12
    ~workload:(wl ~ops ()) ()

let hm_atomic_kv () =
  Baselines.Kv_target.make
    (module Pmapps.Hashmap_atomic)
    ~version:Pmalloc.Version.V1_6 ~workload:(wl ()) ()

let correctness result =
  Mumak.Report.correctness_bugs result.Baselines.Tool_intf.report

let test_xfdetector_catches_atomicity () =
  Bugreg.with_enabled [ "btree_insert_no_tx" ] (fun () ->
      let r = Baselines.Xfdetector.analyze ~budget_s:30. (btree_target ~ops:40 ()) in
      Alcotest.(check bool) "found" true (correctness r <> []))

let test_xfdetector_work_counts_stores () =
  let r = Baselines.Xfdetector.analyze ~budget_s:30. (btree_target ~ops:30 ()) in
  (* store-level failure points vastly outnumber Mumak's persistency-level *)
  let mumak = Mumak.Engine.analyze (btree_target ~ops:30 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "store FPs (%d) >> persistency FPs (%d)" r.Baselines.Tool_intf.work_total
       mumak.Mumak.Engine.failure_points)
    true
    (r.Baselines.Tool_intf.work_total > mumak.Mumak.Engine.failure_points)

let test_yat_explodes_and_times_out () =
  let r = Baselines.Yat.analyze ~budget_s:0.5 (btree_target ~ops:200 ()) in
  Alcotest.(check bool) "timed out" true r.Baselines.Tool_intf.timed_out;
  Alcotest.(check bool) "state space far exceeds what was checked" true
    (r.Baselines.Tool_intf.work_total > r.Baselines.Tool_intf.work_done)

let test_yat_catches_reorder_bug () =
  (* the WORT leaf-unflushed ordering bug is invisible to Mumak's
     program-order prefixes; Yat's exhaustive reordering finds it *)
  Bugreg.with_enabled [ "wort_leaf_unflushed" ] (fun () ->
      let target =
        Targets.of_app (module Pmapps.Wort) ~version:Pmalloc.Version.V1_12
          ~workload:(Workload.standard ~ops:25 ~key_range:12 ~seed:29L)
          ()
      in
      let r = Baselines.Yat.analyze ~budget_s:30. target in
      Alcotest.(check bool) "reorder bug found" true (correctness r <> []))

let test_pmdebugger_catches_durability_and_perf () =
  Bugreg.with_enabled [ "level_hash_count_unpersisted"; "level_hash_redundant_flush" ]
    (fun () ->
      let target =
        Targets.of_app (module Pmapps.Level_hash) ~version:Pmalloc.Version.V1_12
          ~workload:(wl ()) ()
      in
      let r = Baselines.Pmdebugger.analyze ~budget_s:30. target in
      let kinds =
        List.map (fun f -> f.Mumak.Report.kind) (Mumak.Report.findings r.Baselines.Tool_intf.report)
      in
      Alcotest.(check bool) "durability" true (List.mem Mumak.Report.Durability_bug kinds);
      Alcotest.(check bool) "redundant flush" true
        (List.mem Mumak.Report.Redundant_flush kinds))

let test_agamotto_catches_atomicity_and_perf () =
  Bugreg.with_enabled [ "btree_insert_no_tx"; "btree_redundant_persist" ] (fun () ->
      let kv =
        Baselines.Kv_target.make
          (module Pmapps.Btree)
          ~version:Pmalloc.Version.V1_12 ~workload:(wl ~ops:40 ()) ()
      in
      let r = Baselines.Agamotto.analyze ~budget_s:60. kv in
      Alcotest.(check bool) "atomicity found" true (correctness r <> []);
      let kinds =
        List.map (fun f -> f.Mumak.Report.kind) (Mumak.Report.findings r.Baselines.Tool_intf.report)
      in
      Alcotest.(check bool) "redundant flush found" true
        (List.mem Mumak.Report.Redundant_flush kinds))

let test_witcher_catches_mumak_missed_ordering_bug () =
  (* hm_atomic_link_before_persist: the bucket head may persist before the
     entry. Mumak only warns; Witcher's violating images + output
     equivalence convict it. *)
  Bugreg.with_enabled [ "hm_atomic_link_before_persist" ] (fun () ->
      let r = Baselines.Witcher.analyze ~budget_s:60. (hm_atomic_kv ()) in
      Alcotest.(check bool) "ordering bug found" true (correctness r <> []))

let test_witcher_clean_no_false_positives () =
  Bugreg.disable_all ();
  let r = Baselines.Witcher.analyze ~budget_s:60. (hm_atomic_kv ()) in
  Alcotest.(check (list string)) "no correctness findings" []
    (List.map (fun f -> f.Mumak.Report.detail) (correctness r))

let test_jaaru_catches_reorder_lazily () =
  (* Jaaru's lazy exploration finds the same reorder bug as Yat while
     checking far fewer states per fence interval *)
  Bugreg.with_enabled [ "wort_leaf_unflushed" ] (fun () ->
      let target =
        Targets.of_app (module Pmapps.Wort) ~version:Pmalloc.Version.V1_12
          ~workload:(Workload.standard ~ops:25 ~key_range:12 ~seed:29L)
          ()
      in
      let j = Baselines.Jaaru.analyze ~budget_s:30. target in
      Alcotest.(check bool) "reorder bug found" true (correctness j <> []);
      let y = Baselines.Yat.analyze ~budget_s:30. target in
      Alcotest.(check bool)
        (Printf.sprintf "lazy (%d states) explores less than eager (%d)"
           j.Baselines.Tool_intf.work_done y.Baselines.Tool_intf.work_done)
        true
        (j.Baselines.Tool_intf.work_done < y.Baselines.Tool_intf.work_done))

let test_budget_respected () =
  (* even an absurdly large workload must come back quickly when the budget
     is tiny *)
  let target = btree_target ~ops:2000 () in
  let t0 = Unix.gettimeofday () in
  let r = Baselines.Xfdetector.analyze ~budget_s:0.5 target in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "timed out flag" true r.Baselines.Tool_intf.timed_out;
  Alcotest.(check bool) (Printf.sprintf "returned promptly (%.1fs)" elapsed) true
    (elapsed < 20.)

let () =
  Alcotest.run "baselines"
    [
      ( "xfdetector",
        [
          Alcotest.test_case "catches atomicity" `Slow test_xfdetector_catches_atomicity;
          Alcotest.test_case "store-level blowup" `Slow test_xfdetector_work_counts_stores;
        ] );
      ( "yat",
        [
          Alcotest.test_case "explodes" `Slow test_yat_explodes_and_times_out;
          Alcotest.test_case "catches reorder bug" `Slow test_yat_catches_reorder_bug;
        ] );
      ( "pmdebugger",
        [ Alcotest.test_case "durability + perf" `Slow test_pmdebugger_catches_durability_and_perf ]
      );
      ( "agamotto",
        [ Alcotest.test_case "atomicity + perf" `Slow test_agamotto_catches_atomicity_and_perf ]
      );
      ( "jaaru",
        [ Alcotest.test_case "lazy reorder detection" `Slow test_jaaru_catches_reorder_lazily ]
      );
      ( "witcher",
        [
          Alcotest.test_case "catches Mumak-missed ordering bug" `Slow
            test_witcher_catches_mumak_missed_ordering_bug;
          Alcotest.test_case "no false positives" `Slow test_witcher_clean_no_false_positives;
        ] );
      ("budget", [ Alcotest.test_case "respected" `Slow test_budget_respected ]);
    ]
