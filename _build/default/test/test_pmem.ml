(* Unit and property tests for the persistent-memory simulator: these pin
   down the x86 persistency semantics everything else builds on. *)

open Pmem

let i64 = Testutil.Crash.i64

let dev () = Device.create ~size:4096 ()

let check_persisted d ~addr expected =
  let img = Device.crash d ~policy:Device.Adr in
  Alcotest.check i64 "persisted value" expected (Image.read_i64 img ~addr)

(* --- basic store/load --- *)

let test_load_sees_store () =
  let d = dev () in
  Device.store_i64 d ~addr:128 42L;
  Alcotest.check i64 "volatile view" 42L (Device.load_i64 d ~addr:128)

let test_store_alone_not_durable () =
  let d = dev () in
  Device.store_i64 d ~addr:128 42L;
  check_persisted d ~addr:128 0L

let test_clwb_without_fence_not_durable () =
  let d = dev () in
  Device.store_i64 d ~addr:128 42L;
  Device.clwb d ~addr:128;
  check_persisted d ~addr:128 0L;
  let img = Device.crash d ~policy:Device.Adr_with_pending in
  Alcotest.check i64 "accepted flush may drain" 42L (Image.read_i64 img ~addr:128)

let test_clwb_fence_durable () =
  let d = dev () in
  Device.store_i64 d ~addr:128 42L;
  Device.clwb d ~addr:128;
  Device.sfence d;
  check_persisted d ~addr:128 42L

let test_clflushopt_fence_durable () =
  let d = dev () in
  Device.store_i64 d ~addr:128 42L;
  Device.clflushopt d ~addr:128;
  Device.sfence d;
  check_persisted d ~addr:128 42L;
  Alcotest.check i64 "still loadable after invalidation" 42L (Device.load_i64 d ~addr:128)

let test_clflush_immediate () =
  let d = dev () in
  Device.store_i64 d ~addr:128 42L;
  Device.clflush d ~addr:128;
  check_persisted d ~addr:128 42L

let test_mfence_drains () =
  let d = dev () in
  Device.store_i64 d ~addr:128 1L;
  Device.clwb d ~addr:128;
  Device.mfence d;
  check_persisted d ~addr:128 1L

let test_program_prefix_includes_everything () =
  let d = dev () in
  Device.store_i64 d ~addr:128 1L;
  Device.store_i64 d ~addr:256 2L;
  Device.clwb d ~addr:256;
  let img = Device.crash d ~policy:Device.Program_prefix in
  Alcotest.check i64 "unflushed store persists gracefully" 1L (Image.read_i64 img ~addr:128);
  Alcotest.check i64 "unfenced flush persists gracefully" 2L (Image.read_i64 img ~addr:256)

(* --- flush capture semantics --- *)

let test_overwrite_after_flush_keeps_captured_content () =
  let d = dev () in
  Device.store_i64 d ~addr:128 1L;
  Device.clwb d ~addr:128;
  (* dirty overwrite before the fence: the fence persists the captured
     snapshot, not the newer value *)
  Device.store_i64 d ~addr:128 2L;
  Device.sfence d;
  check_persisted d ~addr:128 1L;
  Alcotest.check i64 "volatile view has newest" 2L (Device.load_i64 d ~addr:128)

let test_flush_covers_whole_line () =
  let d = dev () in
  Device.store_i64 d ~addr:192 7L;
  Device.store_i64 d ~addr:200 8L;
  (* both stores are in line 3; one flush suffices *)
  Device.clwb d ~addr:192;
  Device.sfence d;
  check_persisted d ~addr:192 7L;
  check_persisted d ~addr:200 8L

let test_line_versions_two_candidates () =
  let d = dev () in
  Device.store_i64 d ~addr:128 1L;
  Device.clwb d ~addr:128;
  Device.store_i64 d ~addr:128 2L;
  match Device.line_versions d with
  | [ (line, [ v0; v1 ]) ] ->
      Alcotest.(check int) "line index" 2 line;
      Alcotest.check i64 "older candidate" 1L (Bytes.get_int64_le v0 0);
      Alcotest.check i64 "newer candidate" 2L (Bytes.get_int64_le v1 0)
  | other ->
      Alcotest.failf "expected one line with two versions, got %d lines" (List.length other)

(* --- non-temporal stores --- *)

let test_nt_store_buffered_until_fence () =
  let d = dev () in
  Device.store_nt_i64 d ~addr:128 42L;
  Alcotest.check i64 "program sees NT store" 42L (Device.load_i64 d ~addr:128);
  check_persisted d ~addr:128 0L;
  Device.sfence d;
  check_persisted d ~addr:128 42L

(* --- RMW --- *)

let test_cas_success_and_fence_semantics () =
  let d = dev () in
  Device.store_i64 d ~addr:256 9L;
  Device.clwb d ~addr:256;
  (* the CAS drains the pending flush *)
  let ok = Device.cas d ~addr:128 ~expected:0L ~desired:5L in
  Alcotest.(check bool) "cas succeeds" true ok;
  check_persisted d ~addr:256 9L;
  Alcotest.check i64 "cas visible" 5L (Device.load_i64 d ~addr:128)

let test_cas_failure () =
  let d = dev () in
  Device.store_i64 d ~addr:128 3L;
  let ok = Device.cas d ~addr:128 ~expected:0L ~desired:5L in
  Alcotest.(check bool) "cas fails" false ok;
  Alcotest.check i64 "value unchanged" 3L (Device.load_i64 d ~addr:128)

let test_fetch_add () =
  let d = dev () in
  Device.store_i64 d ~addr:128 10L;
  let old = Device.fetch_add d ~addr:128 5L in
  Alcotest.check i64 "returns old" 10L old;
  Alcotest.check i64 "adds" 15L (Device.load_i64 d ~addr:128)

(* --- bounds and hooks --- *)

let test_out_of_bounds () =
  let d = dev () in
  Alcotest.check_raises "store oob"
    (Device.Out_of_bounds { addr = 4095; size = 8; device_size = 4096 })
    (fun () -> Device.store_i64 d ~addr:4095 1L)

let test_flush_outside_pool_is_volatile () =
  let d = dev () in
  let seen = ref None in
  Device.set_hook d
    (Some (function Op.Flush { volatile; _ } -> seen := Some volatile | _ -> ()));
  Device.clwb d ~addr:100_000;
  Alcotest.(check (option bool)) "volatile flag" (Some true) !seen

let test_hook_sees_ops_in_order () =
  let d = dev () in
  let ops = ref [] in
  Device.set_hook d (Some (fun op -> ops := op :: !ops));
  Device.store_i64 d ~addr:128 1L;
  Device.clwb d ~addr:128;
  Device.sfence d;
  match List.rev !ops with
  | [ Op.Store { addr = 128; size = 8; nt = false };
      Op.Flush { kind = Op.Clwb; line = 2; dirty = true; volatile = false };
      Op.Fence { kind = Op.Sfence; pending_flushes = 1; pending_nt = 0 } ] ->
      ()
  | l -> Alcotest.failf "unexpected op sequence (%d ops)" (List.length l)

let test_hook_raise_aborts_store () =
  let d = dev () in
  Device.set_hook d (Some (fun _ -> failwith "crash"));
  (try Device.store_i64 d ~addr:128 1L with Failure _ -> ());
  Device.set_hook d None;
  Alcotest.check i64 "store aborted" 0L (Device.load_i64 d ~addr:128)

let test_of_image_restart () =
  let d = dev () in
  Device.store_i64 d ~addr:128 42L;
  Device.clflush d ~addr:128;
  let img = Device.crash d ~policy:Device.Adr in
  let d2 = Device.of_image img in
  Alcotest.check i64 "restart sees durable data" 42L (Device.load_i64 d2 ~addr:128)

(* --- enumeration --- *)

let test_enumerate_subsets () =
  let d = dev () in
  Device.store_i64 d ~addr:0 1L;
  Device.store_i64 d ~addr:64 2L;
  let seq, total = Enumerate.images d ~limit:100 in
  Alcotest.(check int) "2 dirty lines -> 4 states" 4 total;
  let images = List.of_seq seq in
  Alcotest.(check int) "all enumerated" 4 (List.length images);
  let keys =
    List.map (fun img -> (Image.read_i64 img ~addr:0, Image.read_i64 img ~addr:64)) images
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "distinct states" 4 (List.length keys)

let test_enumerate_three_versions () =
  let d = dev () in
  Device.store_i64 d ~addr:0 1L;
  Device.clwb d ~addr:0;
  Device.store_i64 d ~addr:0 2L;
  let seq, total = Enumerate.images d ~limit:100 in
  Alcotest.(check int) "persisted|snapshot|newest" 3 total;
  let values =
    List.of_seq seq |> List.map (fun img -> Image.read_i64 img ~addr:0) |> List.sort_uniq compare
  in
  Alcotest.(check (list i64)) "values" [ 0L; 1L; 2L ] values

let test_enumerate_slot_granular () =
  let d = dev () in
  (* two 8-byte stores in the same line may tear independently *)
  Device.store_i64 d ~addr:0 1L;
  Device.store_i64 d ~addr:8 2L;
  let _seq, total = Enumerate.images d ~limit:100 in
  Alcotest.(check int) "line granularity: one line" 2 total;
  let _seq, total_slots = Enumerate.images_slot_granular d ~limit:100 in
  Alcotest.(check int) "slot granularity: two slots" 4 total_slots

let test_enumerate_limit () =
  let d = dev () in
  for i = 0 to 9 do
    Device.store_i64 d ~addr:(i * 64) (Int64.of_int i)
  done;
  let seq, total = Enumerate.images d ~limit:16 in
  Alcotest.(check int) "total exponential" 1024 total;
  Alcotest.(check int) "capped" 16 (Seq.length seq)

(* --- eADR --- *)

let test_eadr_stores_survive_power_cut () =
  let d = Device.create ~eadr:true ~size:4096 () in
  Device.store_i64 d ~addr:128 42L;
  (* no flush, no fence: the battery-backed caches still make it durable *)
  let img = Device.crash d ~policy:Device.Adr in
  Alcotest.check i64 "unflushed store survives under eADR" 42L (Image.read_i64 img ~addr:128)

let test_eadr_policy_is_ignored () =
  let d = Device.create ~eadr:true ~size:4096 () in
  Device.store_i64 d ~addr:128 1L;
  Device.store_i64 d ~addr:256 2L;
  List.iter
    (fun policy ->
      let img = Device.crash d ~policy in
      Alcotest.check i64 "all stores present" 1L (Image.read_i64 img ~addr:128);
      Alcotest.check i64 "all stores present" 2L (Image.read_i64 img ~addr:256))
    [ Device.Adr; Device.Adr_with_pending; Device.Program_prefix ]

let test_adr_device_reports_eadr_flag () =
  Alcotest.(check bool) "default is ADR" false (Device.eadr (dev ()));
  Alcotest.(check bool) "flag round-trips" true
    (Device.eadr (Device.create ~eadr:true ~size:4096 ()))

(* --- image --- *)

let test_image_snapshot_independent () =
  let img = Image.create ~size:256 in
  Image.write_i64 img ~addr:0 1L;
  let snap = Image.snapshot img in
  Image.write_i64 img ~addr:0 2L;
  Alcotest.check i64 "snapshot unchanged" 1L (Image.read_i64 snap ~addr:0);
  Alcotest.(check bool) "images differ" false (Image.equal img snap)

(* --- stats --- *)

let test_stats_counts () =
  let d = dev () in
  Device.store_i64 d ~addr:0 1L;
  Device.store_nt_i64 d ~addr:64 1L;
  Device.clwb d ~addr:0;
  Device.clflush d ~addr:0;
  Device.clflushopt d ~addr:0;
  Device.sfence d;
  Device.mfence d;
  ignore (Device.fetch_add d ~addr:0 1L);
  let s = Device.stats d in
  Alcotest.(check int) "stores" 2 s.Stats.stores (* regular + rmw *);
  Alcotest.(check int) "nt" 1 s.Stats.nt_stores;
  Alcotest.(check int) "clwb" 1 s.Stats.clwb;
  Alcotest.(check int) "clflush" 1 s.Stats.clflush;
  Alcotest.(check int) "clflushopt" 1 s.Stats.clflushopt;
  Alcotest.(check int) "fences" 3 (Stats.fences s)

(* --- properties --- *)

let prop_lines_spanned_cover =
  QCheck.Test.make ~name:"lines_spanned covers the access range" ~count:500
    QCheck.(pair (int_range 0 10_000) (int_range 1 512))
    (fun (addr, size) ->
      let lines = Addr.lines_spanned ~addr ~size in
      List.for_all
        (fun b -> List.mem (Addr.line_of b) lines)
        [ addr; addr + size - 1; addr + (size / 2) ]
      && List.length lines = ((addr + size - 1) / 64) - (addr / 64) + 1)

let prop_align_up =
  QCheck.Test.make ~name:"align_up is minimal and aligned" ~count:500
    QCheck.(pair (int_range 0 100_000) (int_range 1 12))
    (fun (n, k) ->
      let a = 1 lsl k in
      let r = Addr.align_up n a in
      r >= n && r mod a = 0 && r - n < a)

let prop_store_load_roundtrip =
  QCheck.Test.make ~name:"load returns the last store (volatile view)" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (pair (int_range 0 500) (int_range 1 32)))
    (fun writes ->
      let d = Device.create ~size:4096 () in
      let model = Bytes.make 4096 '\000' in
      List.iteri
        (fun i (addr, size) ->
          let payload = Bytes.make size (Char.chr (i mod 256)) in
          Device.store d ~addr payload;
          Bytes.blit payload 0 model addr size)
        writes;
      let view = Device.volatile_view d in
      Bytes.equal (Image.unsafe_bytes view) model)

let prop_flush_fence_durability =
  QCheck.Test.make ~name:"flushed+fenced stores always survive an ADR crash" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 30) (int_range 0 63))
    (fun slots ->
      let d = Device.create ~size:4096 () in
      List.iter
        (fun slot ->
          Device.store_i64 d ~addr:(slot * 64) (Int64.of_int (slot + 1));
          Device.clwb d ~addr:(slot * 64))
        slots;
      Device.sfence d;
      let img = Device.crash d ~policy:Device.Adr in
      List.for_all
        (fun slot -> Image.read_i64 img ~addr:(slot * 64) = Int64.of_int (slot + 1))
        slots)

let prop_prefix_crash_equals_volatile_view =
  QCheck.Test.make ~name:"graceful crash image equals the volatile view" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 40) (int_range 0 4000))
    (fun addrs ->
      let d = Device.create ~size:4096 () in
      List.iteri
        (fun i addr ->
          let addr = min addr 4088 in
          Device.store_i64 d ~addr:(addr / 8 * 8) (Int64.of_int i);
          if i mod 3 = 0 then Device.clwb d ~addr;
          if i mod 7 = 0 then Device.sfence d)
        addrs;
      Image.equal (Device.crash d ~policy:Device.Program_prefix) (Device.volatile_view d))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "pmem"
    [
      ( "store-load",
        [
          Alcotest.test_case "load sees store" `Quick test_load_sees_store;
          Alcotest.test_case "store alone not durable" `Quick test_store_alone_not_durable;
          Alcotest.test_case "clwb without fence" `Quick test_clwb_without_fence_not_durable;
          Alcotest.test_case "clwb+fence durable" `Quick test_clwb_fence_durable;
          Alcotest.test_case "clflushopt+fence durable" `Quick test_clflushopt_fence_durable;
          Alcotest.test_case "clflush immediate" `Quick test_clflush_immediate;
          Alcotest.test_case "mfence drains" `Quick test_mfence_drains;
          Alcotest.test_case "program prefix" `Quick test_program_prefix_includes_everything;
        ] );
      ( "flush-capture",
        [
          Alcotest.test_case "overwrite after flush" `Quick
            test_overwrite_after_flush_keeps_captured_content;
          Alcotest.test_case "flush covers line" `Quick test_flush_covers_whole_line;
          Alcotest.test_case "line versions" `Quick test_line_versions_two_candidates;
        ] );
      ( "nt-and-rmw",
        [
          Alcotest.test_case "nt buffered until fence" `Quick test_nt_store_buffered_until_fence;
          Alcotest.test_case "cas success+fence" `Quick test_cas_success_and_fence_semantics;
          Alcotest.test_case "cas failure" `Quick test_cas_failure;
          Alcotest.test_case "fetch_add" `Quick test_fetch_add;
        ] );
      ( "bounds-hooks",
        [
          Alcotest.test_case "out of bounds" `Quick test_out_of_bounds;
          Alcotest.test_case "volatile flush" `Quick test_flush_outside_pool_is_volatile;
          Alcotest.test_case "hook order" `Quick test_hook_sees_ops_in_order;
          Alcotest.test_case "hook raise aborts" `Quick test_hook_raise_aborts_store;
          Alcotest.test_case "of_image restart" `Quick test_of_image_restart;
        ] );
      ( "enumerate",
        [
          Alcotest.test_case "subsets" `Quick test_enumerate_subsets;
          Alcotest.test_case "three versions" `Quick test_enumerate_three_versions;
          Alcotest.test_case "slot granular" `Quick test_enumerate_slot_granular;
          Alcotest.test_case "limit" `Quick test_enumerate_limit;
        ] );
      ( "eadr",
        [
          Alcotest.test_case "stores survive power cut" `Quick
            test_eadr_stores_survive_power_cut;
          Alcotest.test_case "policy ignored" `Quick test_eadr_policy_is_ignored;
          Alcotest.test_case "flag" `Quick test_adr_device_reports_eadr_flag;
        ] );
      ( "image-stats",
        [
          Alcotest.test_case "snapshot independence" `Quick test_image_snapshot_independent;
          Alcotest.test_case "stats counts" `Quick test_stats_counts;
        ] );
      qsuite "properties"
        [
          prop_lines_spanned_cover;
          prop_align_up;
          prop_store_load_roundtrip;
          prop_flush_fence_durability;
          prop_prefix_crash_equals_volatile_view;
        ];
    ]
