(* Tests for the larger codebases (pmemkv engines, Redis, RocksDB):
   model-based functional correctness and clean crash-sweeps through the
   Mumak engine (the Figure 5 targets must be analysable without false
   correctness positives). *)

let fresh size =
  let dev = Pmem.Device.create ~size () in
  let pool = Pmalloc.Pool.create ~version:Pmalloc.Version.V1_12 dev in
  let heap = Pmalloc.Alloc.attach pool in
  (dev, pool, heap)

let ops = Workload.standard ~ops:450 ~key_range:150 ~seed:3L
let k i = Printf.sprintf "key:%Ld" i
let v i = Printf.sprintf "val:%Ld" i

let model_driver ~put ~get ~del =
  let model = Hashtbl.create 64 in
  List.iter
    (fun op ->
      match op with
      | Workload.Put (key, value) ->
          put (k key) (v value);
          Hashtbl.replace model (k key) (v value)
      | Workload.Get key ->
          if get (k key) <> Hashtbl.find_opt model (k key) then
            Alcotest.failf "get mismatch for %s" (k key)
      | Workload.Delete key ->
          let expect = Hashtbl.mem model (k key) in
          Hashtbl.remove model (k key);
          if del (k key) <> expect then Alcotest.failf "delete mismatch for %s" (k key))
    ops;
  model

let test_pmemkv engine () =
  let _dev, pool, heap = fresh Kvstores.Pmemkv.min_pool_size in
  let t = Kvstores.Pmemkv.create ~engine pool heap in
  let model =
    model_driver ~put:(Kvstores.Pmemkv.put t) ~get:(Kvstores.Pmemkv.get t)
      ~del:(Kvstores.Pmemkv.remove t)
  in
  Alcotest.(check int) "count" (Hashtbl.length model) (Kvstores.Pmemkv.count t);
  Alcotest.(check (result unit string)) "check" (Ok ()) (Kvstores.Pmemkv.check t)

let test_redis () =
  let _dev, pool, heap = fresh Kvstores.Redis_pm.min_pool_size in
  let t = Kvstores.Redis_pm.create pool heap in
  let model =
    model_driver ~put:(Kvstores.Redis_pm.set t) ~get:(Kvstores.Redis_pm.get t)
      ~del:(Kvstores.Redis_pm.del t)
  in
  Alcotest.(check int) "count" (Hashtbl.length model) (Kvstores.Redis_pm.count t);
  Alcotest.(check (result unit string)) "check" (Ok ()) (Kvstores.Redis_pm.check t);
  (* the 100-key workload forces at least one table growth + rehash *)
  Alcotest.(check bool) "rehash happened" true (Kvstores.Redis_pm.ht0_size t > 32 || Kvstores.Redis_pm.rehash_idx t >= 0)

let test_redis_incr () =
  let _dev, pool, heap = fresh Kvstores.Redis_pm.min_pool_size in
  let t = Kvstores.Redis_pm.create pool heap in
  Alcotest.(check (result int string)) "incr fresh" (Ok 1) (Kvstores.Redis_pm.incr t "n");
  Alcotest.(check (result int string)) "incr again" (Ok 2) (Kvstores.Redis_pm.incr t "n");
  Kvstores.Redis_pm.set t "s" "abc";
  Alcotest.(check bool) "incr non-int errors" true
    (Result.is_error (Kvstores.Redis_pm.incr t "s"))

let test_rocksdb () =
  let _dev, pool, heap = fresh Kvstores.Rocksdb_pm.min_pool_size in
  let t = Kvstores.Rocksdb_pm.create pool heap in
  let model =
    model_driver ~put:(Kvstores.Rocksdb_pm.put t) ~get:(Kvstores.Rocksdb_pm.get t)
      ~del:(fun key ->
        let existed = Kvstores.Rocksdb_pm.get t key <> None in
        Kvstores.Rocksdb_pm.delete t key;
        existed)
  in
  (* final read-back, exercising memtable + runs *)
  Hashtbl.iter
    (fun key value ->
      if Kvstores.Rocksdb_pm.get t key <> Some value then
        Alcotest.failf "rocksdb lost %s" key)
    model;
  (* the 400-op workload forces several memtable flushes *)
  Alcotest.(check bool) "runs created" true (Kvstores.Rocksdb_pm.run_count t > 0)

let test_rocksdb_wal_replay () =
  let dev, pool, heap = fresh Kvstores.Rocksdb_pm.min_pool_size in
  let t = Kvstores.Rocksdb_pm.create pool heap in
  Kvstores.Rocksdb_pm.put t "a" "1";
  Kvstores.Rocksdb_pm.put t "b" "2";
  (* power cut: the memtable is gone; the WAL has the records *)
  let img = Pmem.Device.crash dev ~policy:Pmem.Device.Adr in
  Alcotest.(check (result unit string)) "wal replay recovers" (Ok ())
    (Kvstores.Rocksdb_pm.recover (Pmem.Device.of_image img))

let mumak_clean target_name target () =
  Bugreg.disable_all ();
  let result = Mumak.Engine.analyze target in
  let correctness = Mumak.Report.correctness_bugs result.Mumak.Engine.report in
  if correctness <> [] then
    Alcotest.failf "%s (clean) reported correctness bugs:\n%s" target_name
      (String.concat "\n" (List.map (Fmt.str "%a" Mumak.Report.pp_finding) correctness));
  Alcotest.(check bool) "failure points" true (result.Mumak.Engine.failure_points > 5)

let wl = Workload.standard ~ops:120 ~key_range:40 ~seed:21L

let () =
  Alcotest.run "kvstores"
    [
      ( "functional",
        [
          Alcotest.test_case "cmap vs model" `Quick (test_pmemkv Kvstores.Pmemkv.Cmap);
          Alcotest.test_case "stree vs model" `Quick (test_pmemkv Kvstores.Pmemkv.Stree);
          Alcotest.test_case "redis vs model" `Quick test_redis;
          Alcotest.test_case "redis incr" `Quick test_redis_incr;
          Alcotest.test_case "rocksdb vs model" `Quick test_rocksdb;
          Alcotest.test_case "rocksdb wal replay" `Quick test_rocksdb_wal_replay;
        ] );
      ( "mumak-clean",
        [
          Alcotest.test_case "cmap" `Slow
            (mumak_clean "cmap" (Targets.of_pmemkv ~engine:Kvstores.Pmemkv.Cmap ~workload:wl ()));
          Alcotest.test_case "stree" `Slow
            (mumak_clean "stree"
               (Targets.of_pmemkv ~engine:Kvstores.Pmemkv.Stree ~workload:wl ()));
          Alcotest.test_case "redis" `Slow
            (mumak_clean "redis" (Targets.of_redis ~workload:wl ()));
          Alcotest.test_case "rocksdb" `Slow
            (mumak_clean "rocksdb" (Targets.of_rocksdb ~workload:wl ()));
        ] );
    ]
