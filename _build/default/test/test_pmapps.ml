(* Tests for the persistent data structures: model-based functional
   correctness against a Hashtbl, crash-sweep recovery on the clean builds
   (no false positives), and exposure checks for the seeded bugs that fault
   injection is supposed to catch. *)

open Pmapps

let apps = Registry.apps

(* Run one app instance against a fresh pool. *)
let with_app (type a) (module A : Kv_intf.S with type t = a) ?(version = Pmalloc.Version.V1_6)
    (f : Pmem.Device.t -> a -> unit) =
  let dev = Pmem.Device.create ~size:A.min_pool_size () in
  let pool = Pmalloc.Pool.create ~version dev in
  let heap = Pmalloc.Alloc.attach pool in
  let app = A.create pool heap in
  f dev app

let apply_op (type a) (module A : Kv_intf.S with type t = a) (app : a) op =
  match op with
  | Workload.Put (k, v) -> A.put app ~key:k ~value:v
  | Workload.Get k -> ignore (A.get app ~key:k)
  | Workload.Delete k -> ignore (A.delete app ~key:k)

(* --- model-based functional test, one per app --- *)

let functional_test (module A : Kv_intf.S) () =
  with_app
    (module A)
    (fun _dev app ->
      let model = Hashtbl.create 256 in
      let ops = Workload.standard ~ops:600 ~key_range:150 ~seed:7L in
      List.iter
        (fun op ->
          (match op with
          | Workload.Put (k, v) ->
              A.put app ~key:k ~value:v;
              Hashtbl.replace model k v
          | Workload.Get k ->
              let expected = Hashtbl.find_opt model k in
              let got = A.get app ~key:k in
              if got <> expected then
                Alcotest.failf "%s: get %Ld = %s, expected %s" A.name k
                  (match got with None -> "None" | Some v -> Int64.to_string v)
                  (match expected with None -> "None" | Some v -> Int64.to_string v)
          | Workload.Delete k ->
              let expected = Hashtbl.mem model k in
              Hashtbl.remove model k;
              let got = A.delete app ~key:k in
              if got <> expected then
                Alcotest.failf "%s: delete %Ld = %b, expected %b" A.name k got expected))
        ops;
      (* final read-back of every model key *)
      Hashtbl.iter
        (fun k v ->
          match A.get app ~key:k with
          | Some v' when Int64.equal v v' -> ()
          | other ->
              Alcotest.failf "%s: final get %Ld = %s, expected %Ld" A.name k
                (match other with None -> "None" | Some x -> Int64.to_string x)
                v)
        model;
      Alcotest.(check int) (A.name ^ ": count") (Hashtbl.length model) (A.count app);
      match A.check app with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: check failed: %s" A.name e)

(* --- clean crash sweeps: no false positives --- *)

(* Crash the workload at every k-th PM instruction (stride keeps runtime
   sane) and require the app's own recovery to succeed. *)
let sweep_test ?version ?(prefill = 40) ?(extra = 25) ?(stride = 7) (module A : Kv_intf.S) ()
    =
  let version =
    match version with
    | Some v -> v
    | None -> if String.equal A.name "hashmap_atomic" then Pmalloc.Version.V1_6 else Pmalloc.Version.V1_12
  in
  let prefill_ops = Workload.standard ~ops:prefill ~key_range:40 ~seed:11L in
  let extra_ops = Workload.standard ~ops:extra ~key_range:40 ~seed:13L in
  let setup dev =
    let pool = Pmalloc.Pool.create ~version dev in
    let heap = Pmalloc.Alloc.attach pool in
    let app = A.create pool heap in
    List.iter (apply_op (module A) app) prefill_ops;
    app
  in
  let scenario app = List.iter (apply_op (module A) app) extra_ops in
  let total = Testutil.Crash.ops_in ~size:A.min_pool_size ~setup scenario in
  Alcotest.(check bool) (A.name ^ ": scenario produces PM ops") true (total > 50);
  let at = ref 1 in
  while !at <= total do
    (match
       Testutil.Crash.image_at ~size:A.min_pool_size ~policy:Pmem.Device.Program_prefix
         ~setup ~at:!at scenario
     with
    | None -> ()
    | Some image -> (
        match A.recover (Pmem.Device.of_image image) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s: false positive at op %d: %s" A.name !at e
        | exception e ->
            Alcotest.failf "%s: recovery crashed at op %d: %s" A.name !at
              (Printexc.to_string e)));
    at := !at + stride
  done

(* --- seeded-bug exposure: fault injection must be able to catch these --- *)

let exposure_test (module A : Kv_intf.S) ~bug ?version ?(prefill = 30) ?(extra = 30)
    ?(key_range = 30) () =
  let version =
    match version with
    | Some v -> v
    | None -> if String.equal A.name "hashmap_atomic" then Pmalloc.Version.V1_6 else Pmalloc.Version.V1_12
  in
  Bugreg.with_enabled [ bug ] (fun () ->
      let prefill_ops = Workload.standard ~ops:prefill ~key_range ~seed:19L in
      let extra_ops = Workload.standard ~ops:extra ~key_range ~seed:23L in
      let setup dev =
        let pool = Pmalloc.Pool.create ~version dev in
        let heap = Pmalloc.Alloc.attach pool in
        let app = A.create pool heap in
        List.iter (apply_op (module A) app) prefill_ops;
        app
      in
      let scenario app = List.iter (apply_op (module A) app) extra_ops in
      let total = Testutil.Crash.ops_in ~size:A.min_pool_size ~setup scenario in
      let exposed = ref false in
      let at = ref 1 in
      while (not !exposed) && !at <= total do
        (match
           Testutil.Crash.image_at ~size:A.min_pool_size ~policy:Pmem.Device.Program_prefix
             ~setup ~at:!at scenario
         with
        | None -> ()
        | Some image -> (
            match A.recover (Pmem.Device.of_image image) with
            | Ok () -> ()
            | Error _ | (exception _) -> exposed := true));
        incr at
      done;
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s exposed by some crash point" A.name bug)
        true !exposed)

(* --- level-hash recovery story (paper 6.2) --- *)

let test_level_hash_recovery_story () =
  (* with the stock (no-op) recovery the token bug goes unnoticed; the
     enhanced recovery catches it *)
  let run_with enhanced =
    Level_hash.use_enhanced_recovery := enhanced;
    Fun.protect
      ~finally:(fun () -> Level_hash.use_enhanced_recovery := false)
      (fun () ->
        Bugreg.with_enabled [ "level_hash_token_before_kv" ] (fun () ->
            let setup dev =
              let pool = Pmalloc.Pool.create ~version:Pmalloc.Version.V1_12 dev in
              let heap = Pmalloc.Alloc.attach pool in
              Level_hash.create pool heap
            in
            let ops = Workload.standard ~ops:40 ~key_range:30 ~seed:3L in
            let scenario app = List.iter (apply_op (module Level_hash) app) ops in
            let total = Testutil.Crash.ops_in ~size:Level_hash.min_pool_size ~setup scenario in
            let exposed = ref false in
            for at = 1 to total do
              match
                Testutil.Crash.image_at ~size:Level_hash.min_pool_size
                  ~policy:Pmem.Device.Program_prefix ~setup ~at scenario
              with
              | None -> ()
              | Some image -> (
                  match Level_hash.recover (Pmem.Device.of_image image) with
                  | Ok () -> ()
                  | Error _ | (exception _) -> exposed := true)
            done;
            !exposed))
  in
  Alcotest.(check bool) "stock recovery is blind" false (run_with false);
  Alcotest.(check bool) "enhanced recovery detects" true (run_with true)

(* --- btree-specific structure tests --- *)

let test_btree_splits_deep () =
  with_app
    (module Btree)
    (fun _dev app ->
      for i = 1 to 500 do
        Btree.put app ~key:(Int64.of_int i) ~value:(Int64.of_int (i * 2))
      done;
      Alcotest.(check int) "count" 500 (Btree.count app);
      Alcotest.(check (result unit string)) "check" (Ok ()) (Btree.check app);
      for i = 1 to 500 do
        match Btree.get app ~key:(Int64.of_int i) with
        | Some v when Int64.equal v (Int64.of_int (i * 2)) -> ()
        | _ -> Alcotest.failf "missing key %d after splits" i
      done)

let test_rbtree_balance () =
  with_app
    (module Rbtree)
    (fun _dev app ->
      (* ascending insertion is the classic worst case for unbalanced trees *)
      for i = 1 to 300 do
        Rbtree.put app ~key:(Int64.of_int i) ~value:(Int64.of_int i)
      done;
      Alcotest.(check (result unit string)) "red-black invariants" (Ok ())
        (Rbtree.check app))

let test_hashmap_atomic_needs_v16 () =
  (* under 1.12 the bucket array is not zeroed: the structure misbehaves —
     reproducing the "Hashmap Atomic does not operate correctly" note *)
  let dev = Pmem.Device.create ~size:Hashmap_atomic.min_pool_size () in
  let pool = Pmalloc.Pool.create ~version:Pmalloc.Version.V1_12 dev in
  let heap = Pmalloc.Alloc.attach pool in
  let app = Hashmap_atomic.create pool heap in
  let broken =
    match Hashmap_atomic.get app ~key:1L with
    | exception _ -> true
    | _ -> ( match Hashmap_atomic.check app with Error _ -> true | Ok () -> false)
  in
  Alcotest.(check bool) "poisoned buckets break the structure" true broken

let app_cases make =
  List.map
    (fun (module A : Kv_intf.S) -> Alcotest.test_case A.name `Slow (make (module A : Kv_intf.S)))
    apps

let () =
  Alcotest.run "pmapps"
    [
      ("functional", app_cases (fun a -> functional_test a));
      ("crash-sweeps", app_cases (fun a -> sweep_test a));
      ( "seeded-bug-exposure",
        [
          Alcotest.test_case "btree_insert_no_tx" `Slow
            (exposure_test (module Btree) ~bug:"btree_insert_no_tx");
          Alcotest.test_case "btree_count_outside_tx" `Slow
            (exposure_test (module Btree) ~bug:"btree_count_outside_tx");
          Alcotest.test_case "rbtree_fixup_no_snapshot" `Slow
            (exposure_test (module Rbtree) ~bug:"rbtree_fixup_no_snapshot");
          Alcotest.test_case "hm_tx_head_no_snapshot" `Slow
            (exposure_test (module Hashmap_tx) ~bug:"hm_tx_head_no_snapshot");
          Alcotest.test_case "wort_link_uninitialized_node" `Slow
            (exposure_test (module Wort) ~bug:"wort_link_uninitialized_node"
               ~version:Pmalloc.Version.V1_12 ~prefill:0 ~extra:40);
          Alcotest.test_case "cceh_split_dir_no_log" `Slow
            (exposure_test (module Cceh) ~bug:"cceh_split_dir_no_log" ~prefill:0 ~extra:90);
          Alcotest.test_case "art_count_before_child" `Slow
            (exposure_test (module Art) ~bug:"art_count_before_child"
               ~version:Pmalloc.Version.V1_12 ~prefill:0 ~extra:120 ~key_range:600);
          Alcotest.test_case "ff_link_before_copy" `Slow
            (exposure_test (module Fast_fair) ~bug:"ff_link_before_copy"
               ~version:Pmalloc.Version.V1_12 ~prefill:0 ~extra:200 ~key_range:150);
        ] );
      ( "structure",
        [
          Alcotest.test_case "btree deep splits" `Quick test_btree_splits_deep;
          Alcotest.test_case "rbtree balance" `Quick test_rbtree_balance;
          Alcotest.test_case "hashmap_atomic needs 1.6" `Quick test_hashmap_atomic_needs_v16;
          Alcotest.test_case "level_hash recovery story" `Slow test_level_hash_recovery_story;
        ] );
    ]
