(* Tests for the workload generator: determinism, key-domain guarantees,
   operation-mix proportions and distribution shape. *)

let test_deterministic () =
  let a = Workload.standard ~ops:500 ~key_range:100 ~seed:5L in
  let b = Workload.standard ~ops:500 ~key_range:100 ~seed:5L in
  Alcotest.(check bool) "same seed, same workload" true (a = b);
  let c = Workload.standard ~ops:500 ~key_range:100 ~seed:6L in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let key_of = function Workload.Put (k, _) | Workload.Get k | Workload.Delete k -> k

let test_keys_positive_and_bounded () =
  let ops = Workload.standard ~ops:2000 ~key_range:50 ~seed:1L in
  Alcotest.(check bool) "keys in [1, range]" true
    (List.for_all
       (fun op ->
         let k = key_of op in
         Int64.compare k 1L >= 0 && Int64.compare k 50L <= 0)
       ops)

let test_mix_roughly_equal () =
  let ops = Workload.standard ~ops:3000 ~key_range:100 ~seed:2L in
  let count p = List.length (List.filter p ops) in
  let puts = count (function Workload.Put _ -> true | _ -> false) in
  let gets = count (function Workload.Get _ -> true | _ -> false) in
  let dels = count (function Workload.Delete _ -> true | _ -> false) in
  Alcotest.(check int) "total" 3000 (puts + gets + dels);
  List.iter
    (fun (label, n) ->
      if n < 800 || n > 1200 then Alcotest.failf "%s fraction off: %d/3000" label n)
    [ ("puts", puts); ("gets", gets); ("deletes", dels) ]

let test_zipfian_skew () =
  let spec =
    { Workload.default_spec with Workload.ops = 5000; key_range = 100;
      dist = Workload.Zipfian 4.0; seed = 9L }
  in
  let ops = Workload.generate spec in
  (* under a zipfian draw, the single hottest key takes a large share *)
  let freq = Hashtbl.create 128 in
  List.iter
    (fun op ->
      let k = key_of op in
      Hashtbl.replace freq k (1 + Option.value ~default:0 (Hashtbl.find_opt freq k)))
    ops;
  let hottest = Hashtbl.fold (fun _ n acc -> max n acc) freq 0 in
  Alcotest.(check bool)
    (Printf.sprintf "hottest key dominates (%d/5000)" hottest)
    true (hottest > 1000)

let test_custom_fractions () =
  let spec =
    { Workload.default_spec with Workload.ops = 1000; put_fraction = 1.0;
      get_fraction = 0. }
  in
  let ops = Workload.generate spec in
  Alcotest.(check bool) "all puts" true
    (List.for_all (function Workload.Put _ -> true | _ -> false) ops)

let prop_count_puts =
  QCheck.Test.make ~name:"count_puts agrees with a manual count" ~count:100
    QCheck.(pair small_nat (int_range 1 50))
    (fun (ops, key_range) ->
      let w = Workload.standard ~ops ~key_range ~seed:3L in
      Workload.count_puts w
      = List.length (List.filter (function Workload.Put _ -> true | _ -> false) w))

let () =
  Alcotest.run "workload"
    [
      ( "generation",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "key domain" `Quick test_keys_positive_and_bounded;
          Alcotest.test_case "equal mix" `Quick test_mix_roughly_equal;
          Alcotest.test_case "zipfian skew" `Quick test_zipfian_skew;
          Alcotest.test_case "custom fractions" `Quick test_custom_fractions;
          QCheck_alcotest.to_alcotest prop_count_puts;
        ] );
    ]
