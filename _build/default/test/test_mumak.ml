(* Integration tests for the Mumak engine: failure-point tree mechanics,
   no-false-correctness-positives on clean builds, seeded-bug detection
   through both phases, and the snapshot/re-execute strategy equivalence. *)

let wl ?(ops = 250) ?(key_range = 60) () = Targets.standard_workload ~ops ~key_range ()

let target_for ?version ?tx_mode name =
  match Pmapps.Registry.find name with
  | None -> Alcotest.failf "unknown app %s" name
  | Some (module A : Pmapps.Kv_intf.S) ->
      let version =
        match version with
        | Some v -> v
        | None ->
            if String.equal name "hashmap_atomic" then Pmalloc.Version.V1_6
            else Pmalloc.Version.V1_12
      in
      Targets.of_app (module A) ~version ?tx_mode ~workload:(wl ()) ()

(* --- failure point tree --- *)

let cap path op_index = { Pmtrace.Callstack.path; op_index }

let test_fp_tree_insert_find () =
  let t = Mumak.Fp_tree.create () in
  let a = cap [ "main"; "put" ] 3 and b = cap [ "main"; "put" ] 5 in
  let c = cap [ "main"; "put"; "split" ] 3 in
  (match Mumak.Fp_tree.insert t a with `Added _ -> () | `Existing _ -> Alcotest.fail "a new");
  (match Mumak.Fp_tree.insert t a with `Existing _ -> () | `Added _ -> Alcotest.fail "a dup");
  ignore (Mumak.Fp_tree.insert t b);
  ignore (Mumak.Fp_tree.insert t c);
  Alcotest.(check int) "three unique points" 3 (Mumak.Fp_tree.size t);
  Alcotest.(check bool) "find a" true (Mumak.Fp_tree.find t a <> None);
  Alcotest.(check bool) "find miss" true
    (Mumak.Fp_tree.find t (cap [ "main" ] 1) = None);
  Alcotest.(check int) "all unvisited" 3 (Mumak.Fp_tree.unvisited_count t)

let test_fp_tree_serialize_roundtrip () =
  let t = Mumak.Fp_tree.create () in
  ignore (Mumak.Fp_tree.insert t (cap [ "main"; "put" ] 3));
  ignore (Mumak.Fp_tree.insert t (cap [ "main"; "put"; "split" ] 7));
  ignore (Mumak.Fp_tree.insert t (cap [] 1));
  let t' = Mumak.Fp_tree.deserialize (Mumak.Fp_tree.serialize t) in
  Alcotest.(check int) "size preserved" (Mumak.Fp_tree.size t) (Mumak.Fp_tree.size t');
  Alcotest.(check string) "stable serialisation" (Mumak.Fp_tree.serialize t)
    (Mumak.Fp_tree.serialize t')

let prop_fp_tree_uniqueness =
  QCheck.Test.make ~name:"tree deduplicates captures" ~count:100
    QCheck.(
      list_of_size (Gen.int_range 1 50)
        (pair (list_of_size (Gen.int_range 0 4) (string_of_size (Gen.return 2))) (int_range 0 5)))
    (fun caps ->
      let t = Mumak.Fp_tree.create () in
      List.iter (fun (path, i) -> ignore (Mumak.Fp_tree.insert t (cap path i))) caps;
      let unique = List.sort_uniq compare caps in
      Mumak.Fp_tree.size t = List.length unique)

(* --- trace-analysis properties on synthetic event streams --- *)

let ta_run ?(config = Mumak.Config.default) ops =
  let ta = Mumak.Trace_analysis.create config in
  List.iteri
    (fun i op -> Mumak.Trace_analysis.feed ta { Pmtrace.Event.seq = i + 1; op; stack = None })
    ops;
  Mumak.Trace_analysis.finish ta

(* a well-formed persist of slot [s]: store, flush its line, fence *)
let persist_ops slot =
  [
    Pmem.Op.Store { addr = slot * 8; size = 8; nt = false };
    Pmem.Op.Flush { kind = Pmem.Op.Clwb; line = slot * 8 / 64; dirty = true; volatile = false };
    Pmem.Op.Fence { kind = Pmem.Op.Sfence; pending_flushes = 1; pending_nt = 0 };
  ]

let prop_ta_clean_persists =
  QCheck.Test.make ~name:"well-formed persist sequences yield no findings" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 30) (int_range 0 500))
    (fun slots ->
      let findings = ta_run (List.concat_map persist_ops slots) in
      findings = [])

let prop_ta_missing_fence_is_flagged =
  QCheck.Test.make ~name:"dropping the final fence yields a durability finding" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 0 15) (int_range 0 50)) (int_range 100 200))
    (fun (slots, last) ->
      let ops =
        List.concat_map persist_ops slots
        @ [
            Pmem.Op.Store { addr = last * 8; size = 8; nt = false };
            Pmem.Op.Flush
              { kind = Pmem.Op.Clwb; line = last * 8 / 64; dirty = true; volatile = false };
          ]
      in
      List.exists
        (fun (r : Mumak.Trace_analysis.raw) ->
          r.Mumak.Trace_analysis.kind = Mumak.Report.Durability_bug)
        (ta_run ops))

let prop_ta_unflushed_store_is_transient_or_durability =
  QCheck.Test.make ~name:"an unpersisted store is always classified" ~count:200
    QCheck.(pair (int_range 0 50) bool)
    (fun (slot, also_flush_elsewhere) ->
      (* the lone store's line may or may not be flushed at another time:
         the classification flips between durability bug and transient-data
         warning, but it is never silent (pattern 1, both arms) *)
      let extra =
        if also_flush_elsewhere then persist_ops slot (* flushes the same line *)
        else persist_ops (slot + 1000)
      in
      let ops = extra @ [ Pmem.Op.Store { addr = slot * 8; size = 8; nt = false } ] in
      let findings = ta_run ops in
      let expected_kind =
        if also_flush_elsewhere then Mumak.Report.Durability_bug
        else Mumak.Report.Transient_data_warning
      in
      List.exists
        (fun (r : Mumak.Trace_analysis.raw) -> r.Mumak.Trace_analysis.kind = expected_kind)
        findings)

let prop_ta_eadr_silences_pattern1 =
  QCheck.Test.make ~name:"under eADR pattern 1 never fires" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 30) (int_range 0 200))
    (fun slots ->
      let ops =
        List.map (fun s -> Pmem.Op.Store { addr = s * 8; size = 8; nt = false }) slots
      in
      ta_run ~config:{ Mumak.Config.default with Mumak.Config.eadr = true } ops = [])

(* --- clean builds: no correctness findings --- *)

let clean_apps =
  [ "btree"; "rbtree"; "hashmap_atomic"; "hashmap_tx"; "wort"; "level_hash"; "cceh";
    "fast_fair" ]

let test_clean_no_correctness_bugs () =
  Bugreg.disable_all ();
  List.iter
    (fun name ->
      let result = Mumak.Engine.analyze (target_for name) in
      let correctness = Mumak.Report.correctness_bugs result.Mumak.Engine.report in
      if correctness <> [] then
        Alcotest.failf "%s (clean) reported correctness bugs:\n%s" name
          (String.concat "\n"
             (List.map (Fmt.str "%a" Mumak.Report.pp_finding) correctness));
      Alcotest.(check bool)
        (name ^ ": found failure points") true
        (result.Mumak.Engine.failure_points > 5))
    clean_apps

(* --- seeded bugs through the full pipeline --- *)

let analyze_with_bug ?version ?(app = "btree") bug =
  Bugreg.with_enabled [ bug ] (fun () ->
      Mumak.Engine.analyze (target_for ?version app))

let has_kind result kind =
  List.exists
    (fun f -> f.Mumak.Report.kind = kind)
    (Mumak.Report.findings result.Mumak.Engine.report)

let test_fi_catches_atomicity_bug () =
  let result = analyze_with_bug ~app:"btree" "btree_insert_no_tx" in
  Alcotest.(check bool) "unrecoverable or crash reported" true
    (has_kind result Mumak.Report.Unrecoverable_state
    || has_kind result Mumak.Report.Recovery_crash)

let test_fi_catches_pmdk112_bug () =
  (* the tx-overflow bug needs large (grouped) transactions *)
  let result =
    Bugreg.with_enabled [ "pmdk112_tx_overflow_commit" ] (fun () ->
        Mumak.Engine.analyze
          (target_for ~version:Pmalloc.Version.V1_12 ~tx_mode:(Targets.Grouped 64) "btree"))
  in
  Alcotest.(check bool) "stale extension pointer caught" true
    (has_kind result Mumak.Report.Unrecoverable_state
    || has_kind result Mumak.Report.Recovery_crash)

let test_ta_catches_durability_bug () =
  let result = analyze_with_bug ~app:"hashmap_atomic" "hm_atomic_count_never_flushed" in
  Alcotest.(check bool) "durability bug reported" true
    (has_kind result Mumak.Report.Durability_bug)

let test_ta_catches_redundant_fence () =
  let result = analyze_with_bug ~app:"hashmap_atomic" "hm_atomic_redundant_fence" in
  Alcotest.(check bool) "redundant fence reported" true
    (has_kind result Mumak.Report.Redundant_fence)

let test_ta_catches_redundant_flush () =
  let result = analyze_with_bug ~app:"level_hash" "level_hash_redundant_flush" in
  Alcotest.(check bool) "redundant flush reported" true
    (has_kind result Mumak.Report.Redundant_flush)

let test_ta_catches_volatile_flush () =
  let result = analyze_with_bug ~app:"rbtree" "rbtree_flush_volatile" in
  let volatile_flush =
    List.exists
      (fun f ->
        f.Mumak.Report.kind = Mumak.Report.Redundant_flush
        && Testutil.Crash.contains f.Mumak.Report.detail "volatile")
      (Mumak.Report.findings result.Mumak.Engine.report)
  in
  Alcotest.(check bool) "volatile-address flush reported" true volatile_flush

let test_ta_warns_transient_data () =
  let result = analyze_with_bug ~app:"hashmap_tx" "hm_tx_transient_scratch" in
  Alcotest.(check bool) "transient-data warning" true
    (has_kind result Mumak.Report.Transient_data_warning)

let test_ta_warns_unordered_flushes () =
  (* the hashmap_atomic ordering bug is invisible to program-order fault
     injection but produces the fence-over-multiple-flushes warning *)
  let result =
    analyze_with_bug ~version:Pmalloc.Version.V1_6 ~app:"hashmap_atomic"
      "hm_atomic_link_before_persist"
  in
  Alcotest.(check bool) "no correctness bug (the known miss)" true
    (Mumak.Report.correctness_bugs result.Mumak.Engine.report = []);
  Alcotest.(check bool) "unordered-flushes warning" true
    (has_kind result Mumak.Report.Unordered_flushes_warning)

(* --- strategy equivalence and ablation --- *)

let test_snapshot_reexecute_equivalence () =
  let bug = "btree_insert_no_tx" in
  let run strategy =
    Bugreg.with_enabled [ bug ] (fun () ->
        Mumak.Engine.analyze
          ~config:{ Mumak.Config.default with strategy }
          (target_for "btree"))
  in
  let s = run Mumak.Config.Snapshot and r = run Mumak.Config.Reexecute in
  Alcotest.(check int) "same failure points" s.Mumak.Engine.failure_points
    r.Mumak.Engine.failure_points;
  Alcotest.(check int) "same injections" s.Mumak.Engine.injections
    r.Mumak.Engine.injections;
  let sigs x =
    List.map
      (fun f -> (f.Mumak.Report.kind, Option.map Pmtrace.Callstack.capture_to_string f.Mumak.Report.stack))
      (Mumak.Report.correctness_bugs x.Mumak.Engine.report)
    |> List.sort compare
  in
  Alcotest.(check bool) "same correctness findings" true (sigs s = sigs r);
  Alcotest.(check bool) "reexecute runs many executions" true
    (r.Mumak.Engine.executions > s.Mumak.Engine.executions)

let test_store_granularity_blowup () =
  let run granularity =
    Mumak.Engine.analyze
      ~config:{ Mumak.Config.default with granularity; report_warnings = false }
      (target_for "btree")
  in
  let pi = run Mumak.Config.Persistency_instruction in
  let st = run Mumak.Config.Store_level in
  Alcotest.(check bool)
    (Printf.sprintf "store-level has more failure points (%d vs %d)"
       st.Mumak.Engine.failure_points pi.Mumak.Engine.failure_points)
    true
    (st.Mumak.Engine.failure_points > pi.Mumak.Engine.failure_points)

let test_report_dedup_and_stacks () =
  let result = analyze_with_bug ~app:"hashmap_atomic" "hm_atomic_count_never_flushed" in
  let durability =
    List.filter
      (fun f -> f.Mumak.Report.kind = Mumak.Report.Durability_bug)
      (Mumak.Report.findings result.Mumak.Engine.report)
  in
  (* the same buggy code point fires on every insert: the report must
     collapse them to a handful of unique code paths, each with a stack *)
  Alcotest.(check bool) "few unique findings" true (List.length durability < 10);
  Alcotest.(check bool) "stacks attached" true
    (List.for_all (fun f -> f.Mumak.Report.stack <> None) durability)

let test_eadr_semantics () =
  (* Under eADR (section 4.3): unflushed stores are not durability bugs —
     the count_never_flushed "bug" vanishes — but atomicity bugs survive. *)
  let eadr_config = { Mumak.Config.default with Mumak.Config.eadr = true } in
  let r1 =
    Bugreg.with_enabled [ "hm_atomic_count_never_flushed" ] (fun () ->
        Mumak.Engine.analyze ~config:eadr_config
          (target_for ~version:Pmalloc.Version.V1_6 "hashmap_atomic"))
  in
  Alcotest.(check bool) "no durability bug under eADR" false
    (has_kind r1 Mumak.Report.Durability_bug);
  let r2 =
    Bugreg.with_enabled [ "btree_insert_no_tx" ] (fun () ->
        Mumak.Engine.analyze ~config:eadr_config (target_for "btree"))
  in
  Alcotest.(check bool) "atomicity bug still found under eADR" true
    (Mumak.Report.correctness_bugs r2.Mumak.Engine.report <> []);
  (* the eADR device keeps even unflushed stores across a power cut *)
  let d = Pmem.Device.create ~eadr:true ~size:4096 () in
  Pmem.Device.store_i64 d ~addr:128 42L;
  let img = Pmem.Device.crash d ~policy:Pmem.Device.Adr in
  Alcotest.(check bool) "caches survive" true
    (Int64.equal (Pmem.Image.read_i64 img ~addr:128) 42L)

let test_taxonomy_table_renders () =
  let s = Fmt.str "%a" Mumak.Taxonomy.pp_table1 () in
  Alcotest.(check bool) "mentions Mumak" true (Testutil.Crash.contains s "Mumak");
  Alcotest.(check bool) "9 tool rows" true
    (List.length (String.split_on_char '\n' s) >= 10)

let () =
  Alcotest.run "mumak"
    [
      ( "fp-tree",
        [
          Alcotest.test_case "insert/find" `Quick test_fp_tree_insert_find;
          Alcotest.test_case "serialize roundtrip" `Quick test_fp_tree_serialize_roundtrip;
          QCheck_alcotest.to_alcotest prop_fp_tree_uniqueness;
        ] );
      ( "trace-analysis-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_ta_clean_persists;
            prop_ta_missing_fence_is_flagged;
            prop_ta_unflushed_store_is_transient_or_durability;
            prop_ta_eadr_silences_pattern1;
          ] );
      ( "clean",
        [ Alcotest.test_case "no correctness false positives" `Slow
            test_clean_no_correctness_bugs ] );
      ( "seeded-bugs",
        [
          Alcotest.test_case "FI: atomicity" `Slow test_fi_catches_atomicity_bug;
          Alcotest.test_case "FI: pmdk 1.12 tx overflow" `Slow test_fi_catches_pmdk112_bug;
          Alcotest.test_case "TA: durability" `Slow test_ta_catches_durability_bug;
          Alcotest.test_case "TA: redundant fence" `Slow test_ta_catches_redundant_fence;
          Alcotest.test_case "TA: redundant flush" `Slow test_ta_catches_redundant_flush;
          Alcotest.test_case "TA: volatile flush" `Slow test_ta_catches_volatile_flush;
          Alcotest.test_case "TA: transient data warning" `Slow test_ta_warns_transient_data;
          Alcotest.test_case "TA: unordered flushes warning" `Slow
            test_ta_warns_unordered_flushes;
        ] );
      ( "strategies",
        [
          Alcotest.test_case "snapshot = reexecute" `Slow test_snapshot_reexecute_equivalence;
          Alcotest.test_case "store-level blowup" `Slow test_store_granularity_blowup;
          Alcotest.test_case "dedup + stacks" `Slow test_report_dedup_and_stacks;
          Alcotest.test_case "eADR semantics" `Slow test_eadr_semantics;
          Alcotest.test_case "taxonomy table" `Quick test_taxonomy_table_renders;
        ] );
    ]
