(* Tests for the PMDK-analogue: pool lifecycle, redo-logged allocation,
   undo-log transactions, and — crucially — crash-atomicity sweeps: we crash
   every operation at every PM instruction and require recovery to restore a
   consistent state. *)

open Pmalloc

let i64 = Testutil.Crash.i64
let pool_size = 256 * 1024

let fresh ?(version = Version.V1_12) () =
  let dev = Pmem.Device.create ~size:pool_size () in
  let pool = Pool.create ~version dev in
  (dev, pool)

(* --- pool lifecycle --- *)

let test_create_attach () =
  let dev, pool = fresh () in
  let img = Pmem.Device.crash dev ~policy:Pmem.Device.Program_prefix in
  let pool2 = Pool.attach (Pmem.Device.of_image img) in
  Alcotest.(check string) "version survives" "1.12"
    (Version.to_string (Pool.version pool2));
  Alcotest.(check int) "size" (Pool.size pool) (Pool.size pool2)

let test_header_corruption_detected () =
  let dev, _pool = fresh () in
  let img = Pmem.Device.crash dev ~policy:Pmem.Device.Program_prefix in
  Bytes.set (Pmem.Image.unsafe_bytes img) 20 '\xff';
  Alcotest.check_raises "corrupt header"
    (Pool.Corrupted "header checksum mismatch")
    (fun () -> ignore (Pool.attach (Pmem.Device.of_image img)))

let test_root_roundtrip () =
  let dev, pool = fresh () in
  Pool.set_root pool ~off:8192 ~size:128;
  let img = Pmem.Device.crash dev ~policy:Pmem.Device.Program_prefix in
  let pool2 = Pool.attach (Pmem.Device.of_image img) in
  Alcotest.(check (option (pair int int))) "root" (Some (8192, 128)) (Pool.root pool2)

(* --- allocator --- *)

let test_alloc_free_reuse () =
  let _dev, pool = fresh () in
  let heap = Alloc.attach pool in
  let a = Alloc.alloc heap ~bytes:100 in
  let b = Alloc.alloc heap ~bytes:200 in
  Alcotest.(check bool) "disjoint" true (b >= a + 128 || a >= b + 256);
  Alcotest.(check int) "size a (2 chunks)" 128 (Alloc.alloc_size heap a);
  Alcotest.(check int) "size b (4 chunks)" 256 (Alloc.alloc_size heap b);
  Alloc.free heap a;
  let c = Alloc.alloc heap ~bytes:64 in
  Alcotest.(check bool) "freed space reusable" true (c >= 0);
  Alcotest.(check (result unit string)) "bitmap consistent" (Ok ()) (Alloc.check pool)

let test_alloc_zeroing_by_version () =
  let _dev, pool16 = fresh ~version:Version.V1_6 () in
  let heap = Alloc.attach pool16 in
  let a = Alloc.alloc heap ~bytes:64 in
  Alcotest.check i64 "V1_6 zeroes" 0L (Pool.read_i64 pool16 ~off:a);
  let _dev, pool112 = fresh ~version:Version.V1_12 () in
  let heap = Alloc.attach pool112 in
  let a = Alloc.alloc heap ~bytes:64 in
  Alcotest.(check bool) "V1_12 poisons" true (Pool.read_i64 pool112 ~off:a <> 0L);
  let b = Alloc.alloc ~zero:true heap ~bytes:64 in
  Alcotest.check i64 "explicit zero honoured" 0L (Pool.read_i64 pool112 ~off:b)

let test_alloc_out_of_space () =
  let _dev, pool = fresh () in
  let heap = Alloc.attach pool in
  let total = Alloc.chunk_count heap * 64 in
  Alcotest.(check bool) "big alloc rejected" true
    (match Alloc.alloc heap ~bytes:(total * 2) with
    | exception Alloc.Out_of_space _ -> true
    | _ -> false)

let test_alloc_mirror_rebuilt_after_crash () =
  let dev, pool = fresh () in
  let heap = Alloc.attach pool in
  let a = Alloc.alloc heap ~bytes:64 in
  let img = Pmem.Device.crash dev ~policy:Pmem.Device.Program_prefix in
  let pool2, heap2, _report = Recovery.open_pool (Pmem.Device.of_image img) in
  ignore pool2;
  Alcotest.(check int) "used chunks survive" (Alloc.used_chunks heap) (Alloc.used_chunks heap2);
  Alloc.free heap2 a;
  Alcotest.(check int) "free works after reattach" (Alloc.used_chunks heap - 1)
    (Alloc.used_chunks heap2)

(* --- redo log --- *)

let test_redo_commit_applies () =
  let _dev, pool = fresh () in
  let b = Redo.begin_ () in
  Redo.add b ~addr:8192 ~value:7L;
  Redo.add b ~addr:8200 ~value:8L;
  Redo.commit pool b;
  Alcotest.check i64 "first applied" 7L (Pool.read_i64 pool ~off:8192);
  Alcotest.check i64 "second applied" 8L (Pool.read_i64 pool ~off:8200)

let test_redo_recover_is_idempotent () =
  let dev, pool = fresh () in
  let b = Redo.begin_ () in
  Redo.add b ~addr:8192 ~value:7L;
  Redo.commit pool b;
  let img = Pmem.Device.crash dev ~policy:Pmem.Device.Program_prefix in
  let pool2 = Pool.attach (Pmem.Device.of_image img) in
  Alcotest.(check bool) "clean after commit" true (Redo.recover pool2 = `Clean);
  Alcotest.check i64 "value still there" 7L (Pool.read_i64 pool2 ~off:8192)

(* --- transactions --- *)

let test_tx_commit_persists () =
  let dev, pool = fresh () in
  let heap = Alloc.attach pool in
  let a = Alloc.alloc ~zero:true heap ~bytes:64 in
  Tx.run ~heap pool (fun tx -> Tx.add_and_store_i64 tx ~off:a 42L);
  let img = Pmem.Device.crash dev ~policy:Pmem.Device.Adr in
  (* even a power-cut (nothing volatile survives) sees the committed data *)
  let pool2, _heap2, _ = Recovery.open_pool (Pmem.Device.of_image img) in
  Alcotest.check i64 "committed durable" 42L (Pool.read_i64 pool2 ~off:a)

let test_tx_abort_rolls_back () =
  let _dev, pool = fresh () in
  let heap = Alloc.attach pool in
  let a = Alloc.alloc ~zero:true heap ~bytes:64 in
  Pool.persist_i64 pool ~off:a 1L;
  (try
     Tx.run ~heap pool (fun tx ->
         Tx.add_and_store_i64 tx ~off:a 99L;
         failwith "user abort")
   with Failure _ -> ());
  Alcotest.check i64 "rolled back" 1L (Pool.read_i64 pool ~off:a)

let test_tx_large_overflow () =
  let _dev, pool = fresh () in
  let heap = Alloc.attach pool in
  let a = Alloc.alloc ~zero:true heap ~bytes:8192 in
  (* 8192/8 = 1024 single-slot snapshots > 128 fixed slots: forces the
     extension chain to grow *)
  Tx.run ~heap pool (fun tx ->
      for i = 0 to 1023 do
        Tx.add_and_store_i64 tx ~off:(a + (i * 8)) (Int64.of_int i)
      done);
  Alcotest.check i64 "first" 0L (Pool.read_i64 pool ~off:a);
  Alcotest.check i64 "last" 1023L (Pool.read_i64 pool ~off:(a + 8184));
  Alcotest.(check (result unit string)) "no leaked extensions: bitmap sane" (Ok ())
    (Alloc.check pool);
  (* all extension chunks must have been freed again *)
  Alcotest.(check int) "only the data allocation remains" (8192 / 64)
    (Alloc.used_chunks heap)

let test_tx_nested_rejected () =
  let _dev, pool = fresh () in
  let _tx = Tx.begin_ pool in
  Alcotest.(check bool) "second begin rejected" true
    (match Tx.begin_ pool with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- crash sweeps: the core guarantee --- *)

(* Run [scenario] against a freshly formatted pool, crash at every PM
   instruction, and require that recovery succeeds and [validate] holds on
   the recovered pool. [prepare] runs before injection is armed. *)
let sweep_scenario ?(version = Version.V1_12) ?(prepare = fun _ _ -> ()) ~name scenario
    validate =
  let setup dev =
    let pool = Pool.create ~version dev in
    let heap = Alloc.attach pool in
    prepare pool heap;
    (pool, heap)
  in
  let run (pool, heap) = scenario pool heap in
  let checked =
    Testutil.Crash.sweep ~size:pool_size ~policy:Pmem.Device.Program_prefix ~setup run
      ~check:(fun ~at image ->
        match Recovery.open_pool (Pmem.Device.of_image image) with
        | pool, heap, _report -> validate ~at pool heap
        | exception Pool.Corrupted msg ->
            Alcotest.failf "%s: crash at op %d left unrecoverable pool: %s" name at msg)
  in
  Alcotest.(check bool) (name ^ ": sweep ran") true (checked > 0)

let test_sweep_alloc_free () =
  sweep_scenario ~name:"alloc/free"
    (fun pool heap ->
      ignore pool;
      let a = Alloc.alloc heap ~bytes:128 in
      let b = Alloc.alloc heap ~bytes:64 in
      Alloc.free heap a;
      ignore b)
    (fun ~at pool _heap ->
      match Alloc.check pool with
      | Ok () -> ()
      | Error e -> Alcotest.failf "bitmap inconsistent at op %d: %s" at e)

let test_sweep_tx_atomicity () =
  (* A transaction writes two cells; after any crash + recovery the cells
     must be both-old or both-new. *)
  sweep_scenario ~name:"tx atomicity"
    ~prepare:(fun pool heap ->
      let a = Alloc.alloc ~zero:true heap ~bytes:64 in
      assert (a = (Pool.layout pool).Layout.heap_off);
      Pool.persist_i64 pool ~off:a 1L;
      Pool.persist_i64 pool ~off:(a + 8) 1L)
    (fun pool heap ->
      let a = (Pool.layout pool).Layout.heap_off in
      Tx.run ~heap pool (fun tx ->
          Tx.add_and_store_i64 tx ~off:a 2L;
          Tx.add_and_store_i64 tx ~off:(a + 8) 2L))
    (fun ~at pool _heap ->
      let a = (Pool.layout pool).Layout.heap_off in
      let x = Pool.read_i64 pool ~off:a and y = Pool.read_i64 pool ~off:(a + 8) in
      let consistent =
        (Int64.equal x 1L && Int64.equal y 1L) || (Int64.equal x 2L && Int64.equal y 2L)
      in
      if not consistent then
        Alcotest.failf "atomicity violated at op %d: x=%Ld y=%Ld" at x y)

let test_sweep_tx_overflow_clean_version () =
  (* Large (overflow-using) transactions must also be crash-atomic when the
     seeded 1.12 bug is disabled. The probe transaction at validation time
     would trip over a stale extension pointer if commit were torn. *)
  sweep_scenario ~name:"tx overflow"
    ~prepare:(fun _pool heap -> ignore (Alloc.alloc ~zero:true heap ~bytes:2048))
    (fun pool heap ->
      let a = (Pool.layout pool).Layout.heap_off in
      Tx.run ~heap pool (fun tx ->
          for i = 0 to 255 do
            Tx.add_and_store_i64 tx ~off:(a + (i * 8)) 7L
          done))
    (fun ~at pool heap ->
      match
        Tx.run ~heap pool (fun tx -> Tx.add_and_store_i64 tx ~off:(Pool.size pool - 64) 1L)
      with
      | () -> ()
      | exception Pool.Corrupted msg -> Alcotest.failf "probe tx failed at op %d: %s" at msg)

let test_seeded_bug_tx_overflow_commit () =
  (* With the seeded PMDK-1.12 bug enabled, some crash point during a large
     commit must leave a stale extension pointer that makes the next large
     transaction raise — the bug Mumak found (section 6.4). *)
  Bugreg.with_enabled [ "pmdk112_tx_overflow_commit" ] (fun () ->
      let setup dev =
        let pool = Pool.create ~version:Version.V1_12 dev in
        let heap = Alloc.attach pool in
        ignore (Alloc.alloc ~zero:true heap ~bytes:2048);
        (pool, heap)
      in
      let run (pool, heap) =
        let a = (Pool.layout pool).Layout.heap_off in
        Tx.run ~heap pool (fun tx ->
            for i = 0 to 255 do
              Tx.add_and_store_i64 tx ~off:(a + (i * 8)) 7L
            done)
      in
      let total = Testutil.Crash.ops_in ~size:pool_size ~setup run in
      let exposed = ref false in
      for at = 1 to total do
        match
          Testutil.Crash.image_at ~size:pool_size ~policy:Pmem.Device.Program_prefix ~setup
            ~at run
        with
        | None -> ()
        | Some image -> (
            match
              let pool, heap, _ = Recovery.open_pool (Pmem.Device.of_image image) in
              Tx.run ~heap pool (fun tx ->
                  Tx.add_and_store_i64 tx ~off:(Pool.size pool - 64) 1L)
            with
            | () -> ()
            | exception Pool.Corrupted _ -> exposed := true)
      done;
      Alcotest.(check bool) "bug exposed by some crash point" true !exposed)

(* The pool header protocol itself must be failure-atomic at every single
   PM instruction: a crash during create reads as Not_initialised (the app
   re-creates), a crash during a root publish is completed by the redo log,
   and Corrupted is never raised. This sweep covers the two holes found by
   dogfooding Mumak at store granularity (DESIGN.md note 3). *)
let test_sweep_header_protocol () =
  let scenario dev =
    let pool = Pool.create ~version:Version.V1_12 dev in
    let heap = Alloc.attach pool in
    let a = Alloc.alloc ~zero:true heap ~bytes:64 in
    Pool.set_root pool ~off:a ~size:64;
    let b = Alloc.alloc ~zero:true heap ~bytes:64 in
    Pool.set_root pool ~off:b ~size:64
  in
  let total = Testutil.Crash.ops_in ~size:pool_size ~setup:(fun d -> d) scenario in
  for at = 1 to total do
    match
      Testutil.Crash.image_at ~size:pool_size ~policy:Pmem.Device.Program_prefix
        ~setup:(fun d -> d) ~at scenario
    with
    | None -> Alcotest.failf "crash point %d not reached" at
    | Some image -> (
        match Recovery.open_pool (Pmem.Device.of_image image) with
        | _pool, _heap, _report -> ()
        | exception Pool.Not_initialised -> () (* crash before the commit marker *)
        | exception Pool.Corrupted msg ->
            Alcotest.failf "header protocol torn at op %d: %s" at msg)
  done

let prop_alloc_free_random =
  QCheck.Test.make ~name:"random alloc/free keeps bitmap consistent" ~count:40
    QCheck.(list_of_size (Gen.int_range 1 60) (int_range 1 600))
    (fun sizes ->
      let _dev, pool = fresh () in
      let heap = Alloc.attach pool in
      let live = ref [] in
      List.iteri
        (fun i bytes ->
          (match Alloc.alloc heap ~bytes with
          | addr -> live := addr :: !live
          | exception Alloc.Out_of_space _ -> ());
          if i mod 3 = 2 then
            match !live with
            | [] -> ()
            | a :: rest ->
                Alloc.free heap a;
                live := rest)
        sizes;
      Alloc.check pool = Ok ())

let prop_tx_random_rollback =
  QCheck.Test.make ~name:"aborted tx restores every snapshotted word" ~count:40
    QCheck.(list_of_size (Gen.int_range 1 40) (int_range 0 127))
    (fun slots ->
      let _dev, pool = fresh () in
      let heap = Alloc.attach pool in
      let a = Alloc.alloc ~zero:true heap ~bytes:1024 in
      List.iteri (fun i s -> Pool.persist_i64 pool ~off:(a + (s * 8)) (Int64.of_int i)) slots;
      let before = List.map (fun s -> Pool.read_i64 pool ~off:(a + (s * 8))) slots in
      (try
         Tx.run ~heap pool (fun tx ->
             List.iter (fun s -> Tx.add_and_store_i64 tx ~off:(a + (s * 8)) 9999L) slots;
             failwith "abort")
       with Failure _ -> ());
      let after = List.map (fun s -> Pool.read_i64 pool ~off:(a + (s * 8))) slots in
      before = after)

let () =
  Alcotest.run "pmalloc"
    [
      ( "pool",
        [
          Alcotest.test_case "create/attach" `Quick test_create_attach;
          Alcotest.test_case "header corruption" `Quick test_header_corruption_detected;
          Alcotest.test_case "root roundtrip" `Quick test_root_roundtrip;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "alloc/free/reuse" `Quick test_alloc_free_reuse;
          Alcotest.test_case "zeroing by version" `Quick test_alloc_zeroing_by_version;
          Alcotest.test_case "out of space" `Quick test_alloc_out_of_space;
          Alcotest.test_case "mirror rebuilt" `Quick test_alloc_mirror_rebuilt_after_crash;
        ] );
      ( "redo",
        [
          Alcotest.test_case "commit applies" `Quick test_redo_commit_applies;
          Alcotest.test_case "recover idempotent" `Quick test_redo_recover_is_idempotent;
        ] );
      ( "tx",
        [
          Alcotest.test_case "commit persists" `Quick test_tx_commit_persists;
          Alcotest.test_case "abort rolls back" `Quick test_tx_abort_rolls_back;
          Alcotest.test_case "large overflow" `Quick test_tx_large_overflow;
          Alcotest.test_case "nested rejected" `Quick test_tx_nested_rejected;
        ] );
      ( "crash-sweeps",
        [
          Alcotest.test_case "alloc/free sweep" `Slow test_sweep_alloc_free;
          Alcotest.test_case "tx atomicity sweep" `Slow test_sweep_tx_atomicity;
          Alcotest.test_case "tx overflow sweep" `Slow test_sweep_tx_overflow_clean_version;
          Alcotest.test_case "seeded 1.12 bug exposed" `Slow test_seeded_bug_tx_overflow_commit;
          Alcotest.test_case "header protocol sweep" `Slow test_sweep_header_protocol;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_alloc_free_random; prop_tx_random_rollback ] );
    ]
