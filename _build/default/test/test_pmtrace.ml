(* Tests for the instrumentation layer: call stacks, tracing, stack
   resolution. *)

open Pmtrace

let run_scenario tracer =
  let d = Tracer.device tracer in
  Tracer.with_frame tracer "main" (fun () ->
      Tracer.with_frame tracer "insert" (fun () ->
          Pmem.Device.store_i64 d ~addr:0 1L;
          Pmem.Device.clwb d ~addr:0;
          Pmem.Device.sfence d);
      Tracer.with_frame tracer "insert" (fun () ->
          Pmem.Device.store_i64 d ~addr:64 2L;
          Pmem.Device.clwb d ~addr:64;
          Pmem.Device.sfence d))

let test_trace_collection () =
  let d = Pmem.Device.create ~size:4096 () in
  let tracer = Tracer.create d in
  run_scenario tracer;
  Alcotest.(check int) "6 events" 6 (Trace.length (Tracer.trace tracer));
  let seqs = List.map (fun e -> e.Event.seq) (Trace.to_list (Tracer.trace tracer)) in
  Alcotest.(check (list int)) "monotonic seq" [ 1; 2; 3; 4; 5; 6 ] seqs

let test_stack_capture () =
  let d = Pmem.Device.create ~size:4096 () in
  let tracer = Tracer.create ~with_stacks:true d in
  run_scenario tracer;
  let events = Trace.to_list (Tracer.trace tracer) in
  let stack_of n =
    match (List.nth events n).Event.stack with
    | Some c -> c
    | None -> Alcotest.fail "missing stack"
  in
  Alcotest.(check (list string)) "path" [ "_start"; "main"; "insert" ] (stack_of 0).Callstack.path;
  (* within one frame activation the op index advances per PM instruction *)
  Alcotest.(check int) "eventwise index 1" 1 (stack_of 0).Callstack.op_index;
  Alcotest.(check int) "eventwise index 3" 3 (stack_of 2).Callstack.op_index;
  (* the second activation of "insert" restarts its counter, so the same
     code point gets the same identity *)
  Alcotest.(check bool) "same identity across activations" true
    (Callstack.capture_equal (stack_of 0) (stack_of 3))

let test_frames_pop_on_exception () =
  let cs = Callstack.create () in
  (try Callstack.with_frame cs "f" (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "stack empty after raise" 0 (Callstack.depth cs)

let test_listener_and_collect_flag () =
  let d = Pmem.Device.create ~size:4096 () in
  let tracer = Tracer.create ~collect:false d in
  let n = ref 0 in
  Tracer.add_listener tracer (fun _ _ -> incr n);
  run_scenario tracer;
  Alcotest.(check int) "listener saw all" 6 !n;
  Alcotest.(check int) "no collection" 0 (Trace.length (Tracer.trace tracer))

let test_resolve_stacks () =
  let d = Pmem.Device.create ~size:4096 () in
  let tracer = Tracer.create d in
  run_scenario tracer;
  (* events were collected without stacks; resolve #2 and #5 by re-running *)
  let resolved =
    Tracer.resolve_stacks tracer ~wanted:[ 2; 5 ] ~run:(fun () -> run_scenario tracer)
  in
  Alcotest.(check int) "two resolved" 2 (Hashtbl.length resolved);
  let c2 = Hashtbl.find resolved 2 in
  Alcotest.(check (list string)) "resolved path" [ "_start"; "main"; "insert" ] c2.Callstack.path;
  Alcotest.(check int) "resolved index" 2 c2.Callstack.op_index

let test_trace_fold_order () =
  let t = Trace.create () in
  List.iter
    (fun seq -> Trace.add t { Event.seq; op = Pmem.Op.Store { addr = 0; size = 8; nt = false }; stack = None })
    [ 1; 2; 3 ];
  let seqs = Trace.fold t [] (fun acc e -> e.Event.seq :: acc) in
  Alcotest.(check (list int)) "fold in execution order" [ 3; 2; 1 ] seqs

let prop_capture_identity =
  QCheck.Test.make ~name:"capture equality is structural" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 0 6) (string_of_size (Gen.return 3))) small_nat)
    (fun (labels, k) ->
      let cs = Callstack.create () in
      List.iter (fun l -> Callstack.push cs l) labels;
      for _ = 1 to k do
        Callstack.tick cs
      done;
      let a = Callstack.capture cs and b = Callstack.capture cs in
      Callstack.capture_equal a b
      && Callstack.capture_compare a b = 0
      && Callstack.capture_hash a = Callstack.capture_hash b)

let () =
  Alcotest.run "pmtrace"
    [
      ( "tracer",
        [
          Alcotest.test_case "collection" `Quick test_trace_collection;
          Alcotest.test_case "stack capture" `Quick test_stack_capture;
          Alcotest.test_case "frames pop on exception" `Quick test_frames_pop_on_exception;
          Alcotest.test_case "listener / collect flag" `Quick test_listener_and_collect_flag;
          Alcotest.test_case "resolve stacks" `Quick test_resolve_stacks;
          Alcotest.test_case "fold order" `Quick test_trace_fold_order;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_capture_identity ]);
    ]
