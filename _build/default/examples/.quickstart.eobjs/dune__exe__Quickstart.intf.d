examples/quickstart.mli:
