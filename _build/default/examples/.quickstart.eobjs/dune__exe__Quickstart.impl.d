examples/quickstart.ml: Bugreg Fmt List Mumak Pmalloc Pmapps Targets Workload
