examples/performance_bugs.mli:
