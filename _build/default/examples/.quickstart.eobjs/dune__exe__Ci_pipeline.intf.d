examples/ci_pipeline.mli:
