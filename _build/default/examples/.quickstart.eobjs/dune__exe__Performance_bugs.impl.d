examples/performance_bugs.ml: Bugreg Fmt Fun List Mumak Pmalloc Pmapps Targets Workload
