examples/ci_pipeline.ml: Bugreg Fmt List Mumak Pmalloc Pmapps String Sys Targets Workload
