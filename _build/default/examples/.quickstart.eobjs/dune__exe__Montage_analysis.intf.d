examples/montage_analysis.mli:
