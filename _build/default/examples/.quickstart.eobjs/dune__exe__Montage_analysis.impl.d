examples/montage_analysis.ml: Bugreg Fmt Fun List Mumak Pmalloc Pmapps Targets Workload
