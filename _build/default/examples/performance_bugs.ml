(* Trace-analysis walkthrough: the performance-bug and warning patterns of
   paper section 4.2, demonstrated one seeded bug at a time on the
   hash-table applications.

   Run with: dune exec examples/performance_bugs.exe *)

let show ~bug ~app ~version ~expect_kind =
  Bugreg.with_enabled [ bug ] (fun () ->
      match Pmapps.Registry.find app with
      | None -> assert false
      | Some m ->
          let target =
            Targets.of_app m ~version
              ~workload:(Workload.standard ~ops:200 ~key_range:60 ~seed:3L)
              ()
          in
          let result = Mumak.Engine.analyze target in
          let hits =
            List.filter
              (fun f -> f.Mumak.Report.kind = expect_kind)
              (Mumak.Report.findings result.Mumak.Engine.report)
          in
          Fmt.pr "--- %s on %s ---@." bug app;
          (match hits with
          | [] -> Fmt.pr "pattern NOT reported (unexpected)@."
          | f :: _ ->
              Fmt.pr "%d unique %s finding(s); first:@.%a@." (List.length hits)
                (Mumak.Report.kind_to_string expect_kind)
                Mumak.Report.pp_finding f);
          Fmt.pr "@.";
          hits <> [])

let () =
  let v16 = Pmalloc.Version.V1_6 and v112 = Pmalloc.Version.V1_12 in
  let ok =
    List.for_all Fun.id
      [
        (* pattern 1: store never persisted -> durability bug *)
        show ~bug:"hm_atomic_count_never_flushed" ~app:"hashmap_atomic" ~version:v16
          ~expect_kind:Mumak.Report.Durability_bug;
        (* pattern 2: flush with nothing written -> redundant flush *)
        show ~bug:"level_hash_redundant_flush" ~app:"level_hash" ~version:v112
          ~expect_kind:Mumak.Report.Redundant_flush;
        (* pattern 4: fence with nothing pending -> redundant fence *)
        show ~bug:"level_hash_redundant_fence" ~app:"level_hash" ~version:v112
          ~expect_kind:Mumak.Report.Redundant_fence;
        (* pattern 1 (other arm): PM used for transient data -> warning *)
        show ~bug:"hm_tx_transient_scratch" ~app:"hashmap_tx" ~version:v112
          ~expect_kind:Mumak.Report.Transient_data_warning;
        (* pattern 5: fence over multiple flushes -> ordering warning; this
           is the hashmap_atomic bug Mumak cannot convict (one of the ~10%) *)
        show ~bug:"hm_atomic_link_before_persist" ~app:"hashmap_atomic" ~version:v16
          ~expect_kind:Mumak.Report.Unordered_flushes_warning;
      ]
  in
  Fmt.pr "=> all five trace-analysis patterns demonstrated: %b@." ok;
  assert ok
