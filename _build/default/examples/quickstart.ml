(* Quickstart: analyse a PM application in three steps.

   1. pick a target (here: the btree data store with a seeded atomicity bug
      enabled, so there is something to find);
   2. generate a workload;
   3. run the Mumak pipeline and read the report.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* the default build is clean; enable a seeded bug to have a defect *)
  Bugreg.enable "btree_insert_no_tx";

  (* a deterministic workload: equal thirds of puts, gets and deletes *)
  let workload = Workload.standard ~ops:400 ~key_range:120 ~seed:1L in

  (* wrap the application as a black-box target: Mumak only needs a way to
     run it and its own recovery procedure *)
  let target =
    Targets.of_app (module Pmapps.Btree) ~version:Pmalloc.Version.V1_12 ~workload ()
  in

  (* analyse: failure-point tree, fault injection with the recovery oracle,
     single-pass trace analysis, combined report *)
  let result = Mumak.Engine.analyze target in

  Fmt.pr "%a@." Mumak.Report.pp result.Mumak.Engine.report;
  Fmt.pr "analysis: %d failure points, %d injections, %d trace events, %a@."
    result.Mumak.Engine.failure_points result.Mumak.Engine.injections
    result.Mumak.Engine.trace_events Mumak.Metrics.pp result.Mumak.Engine.metrics;

  (* the seeded bug is an atomicity violation: fault injection must have
     produced at least one unrecoverable state *)
  let correctness = Mumak.Report.correctness_bugs result.Mumak.Engine.report in
  Fmt.pr "@.=> %d unique correctness bug(s) found (expected: at least 1)@."
    (List.length correctness);
  assert (correctness <> [])
