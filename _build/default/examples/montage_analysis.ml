(* Reproduction of paper section 6.4: the new bugs Mumak found in the wild.

   Because Mumak is black-box and library-agnostic, it can analyse Montage —
   a buffered-persistence system with its own allocator, no PMDK anywhere —
   and the latest pmalloc (PMDK 1.12 analogue). This example enables the
   four seeded reproductions of the published bugs and shows Mumak finding
   each one.

   Run with: dune exec examples/montage_analysis.exe *)

let hunt ~label ~bug target =
  Bugreg.with_enabled [ bug ] (fun () ->
      let result = Mumak.Engine.analyze target in
      let found = Mumak.Report.correctness_bugs result.Mumak.Engine.report in
      Fmt.pr "--- %s ---@." label;
      Fmt.pr "seeded bug: %s@." bug;
      (match found with
      | [] -> Fmt.pr "NOT FOUND (unexpected)@."
      | f :: _ ->
          Fmt.pr "FOUND %d unique finding(s); first:@.%a@." (List.length found)
            Mumak.Report.pp_finding f);
      Fmt.pr "@.";
      found <> [])

let () =
  let wl = Workload.standard ~ops:200 ~key_range:60 ~seed:7L in
  let montage = Targets.of_montage ~variant:`Buffered ~workload:wl () in
  let btree_grouped =
    Targets.of_app (module Pmapps.Btree) ~version:Pmalloc.Version.V1_12
      ~tx_mode:(Targets.Grouped 64) ~workload:wl ()
  in
  let wort =
    Targets.of_app (module Pmapps.Wort) ~version:Pmalloc.Version.V1_12 ~workload:wl ()
  in
  let all_found =
    List.for_all Fun.id
      [
        (* Montage: incorrect allocator use breaks recoverability
           (urcs-sync/Montage pull 36) *)
        hunt ~label:"Montage: allocator recoverability"
          ~bug:"montage_alloc_head_unpersisted" montage;
        (* Montage: crash window during allocator destruction
           (urcs-sync/Montage commit 3384e50) *)
        hunt ~label:"Montage: destructor crash window" ~bug:"montage_dtor_window" montage;
        (* PMDK 1.12: committing a large transaction strands the dynamic
           undo-log extension (pmem/pmdk issue 5461, fixed as high priority) *)
        hunt ~label:"PMDK 1.12: large-transaction commit" ~bug:"pmdk112_tx_overflow_commit"
          btree_grouped;
        (* PMDK 1.12 libart analogue: uninitialised node reachable after a
           crash mid-insert (pmem/pmdk issue 5512) *)
        hunt ~label:"libart analogue: uninitialised node" ~bug:"wort_link_uninitialized_node"
          wort;
      ]
  in
  Fmt.pr "=> all four published bugs reproduced: %b@." all_found;
  assert all_found
