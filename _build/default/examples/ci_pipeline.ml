(* Mumak as a continuous-integration gate (the deployment story of the
   paper's conclusion): analyse every application of the suite with a small
   workload and fail the build if any correctness bug appears.

   The suite is clean by default, so this exits 0; run with MUMAK_CI_SEED_BUG
   set to a seeded bug id to watch the gate trip.

   Run with: dune exec examples/ci_pipeline.exe *)

let () =
  (match Sys.getenv_opt "MUMAK_CI_SEED_BUG" with
  | Some bug when bug <> "" ->
      Fmt.pr "[ci] seeding bug %s@." bug;
      Bugreg.enable bug
  | _ -> ());
  let failures = ref 0 in
  let total_wall = ref 0. in
  List.iter
    (fun (module A : Pmapps.Kv_intf.S) ->
      let version =
        if String.equal A.name "hashmap_atomic" then Pmalloc.Version.V1_6
        else Pmalloc.Version.V1_12
      in
      let target =
        Targets.of_app (module A) ~version
          ~workload:(Workload.standard ~ops:250 ~key_range:80 ~seed:11L)
          ()
      in
      let result = Mumak.Engine.analyze target in
      let bugs = Mumak.Report.correctness_bugs result.Mumak.Engine.report in
      let perf = Mumak.Report.performance_bugs result.Mumak.Engine.report in
      total_wall := !total_wall +. result.Mumak.Engine.metrics.Mumak.Metrics.wall_seconds;
      Fmt.pr "[ci] %-22s %4d failure points  %2d correctness  %2d performance  (%.2fs)@."
        A.name result.Mumak.Engine.failure_points (List.length bugs) (List.length perf)
        result.Mumak.Engine.metrics.Mumak.Metrics.wall_seconds;
      if bugs <> [] then begin
        incr failures;
        List.iter (fun f -> Fmt.pr "      %a@." Mumak.Report.pp_finding f) bugs
      end)
    Pmapps.Registry.apps;
  Fmt.pr "[ci] total analysis time: %.2fs@." !total_wall;
  if !failures > 0 then begin
    Fmt.pr "[ci] FAILED: %d application(s) with correctness bugs@." !failures;
    exit 1
  end
  else Fmt.pr "[ci] PASSED: no correctness bugs across %d applications@."
    (List.length Pmapps.Registry.apps)
