(** Deterministic workload generation.

    The evaluation drives every target with sequences of puts, gets and
    deletes in equal proportion (paper section 6.1). Generation is seeded
    and fully deterministic — a requirement of Mumak's reproducible fault
    injection — and keys are strictly positive (several structures reserve
    key 0 as the empty-slot sentinel). *)

type op = Put of int64 * int64 | Get of int64 | Delete of int64

type dist = Uniform | Zipfian of float  (** skew exponent *)

type spec = {
  ops : int;
  key_range : int;  (** keys are drawn from [1, key_range] *)
  dist : dist;
  seed : int64;
  put_fraction : float;
  get_fraction : float;  (** deletes get the remainder *)
}

val default_spec : spec
(** 1000 ops, 1000 keys, uniform, equal thirds. *)

val generate : spec -> op list

val standard : ops:int -> key_range:int -> seed:int64 -> op list
(** The evaluation mix: equal thirds of puts, gets and deletes. *)

val op_to_string : op -> string

val count_puts : op list -> int
