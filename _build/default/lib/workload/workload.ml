(** Deterministic workload generation.

    The evaluation drives every target with sequences of puts, gets and
    deletes in equal proportion (paper section 6.1). Generation is seeded
    and fully deterministic — a requirement of Mumak's reproducible fault
    injection — and keys are strictly positive (several structures reserve
    key 0 as the empty-slot sentinel). *)

type op = Put of int64 * int64 | Get of int64 | Delete of int64

type dist = Uniform | Zipfian of float

type spec = {
  ops : int;
  key_range : int;  (** keys are drawn from [1, key_range] *)
  dist : dist;
  seed : int64;
  put_fraction : float;
  get_fraction : float; (* delete gets the remainder *)
}

let default_spec =
  {
    ops = 1000;
    key_range = 1000;
    dist = Uniform;
    seed = 42L;
    put_fraction = 1. /. 3.;
    get_fraction = 1. /. 3.;
  }

(* SplitMix64 stream. *)
let next state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let to_unit_float v =
  Int64.to_float (Int64.shift_right_logical v 11) /. 9007199254740992.0 (* 2^53 *)

(* Zipfian rank via the inverse-power method (approximate but cheap and
   deterministic). *)
let zipf_rank ~theta ~n u =
  let r = int_of_float (float_of_int n *. (u ** theta)) in
  min (n - 1) (max 0 r)

let key_of spec state =
  let v = next state in
  let idx =
    match spec.dist with
    | Uniform -> Int64.to_int (Int64.rem (Int64.logand v Int64.max_int) (Int64.of_int spec.key_range))
    | Zipfian theta -> zipf_rank ~theta ~n:spec.key_range (to_unit_float v)
  in
  Int64.of_int (idx + 1)

let generate spec =
  let state = ref spec.seed in
  List.init spec.ops (fun _ ->
      let k = key_of spec state in
      let roll = to_unit_float (next state) in
      if roll < spec.put_fraction then Put (k, next state)
      else if roll < spec.put_fraction +. spec.get_fraction then Get k
      else Delete k)

(** Standard evaluation mix: equal puts/gets/deletes. *)
let standard ~ops ~key_range ~seed =
  generate { default_spec with ops; key_range; seed }

let op_to_string = function
  | Put (k, v) -> Printf.sprintf "put %Ld=%Ld" k v
  | Get k -> Printf.sprintf "get %Ld" k
  | Delete k -> Printf.sprintf "del %Ld" k

let count_puts ops =
  List.length (List.filter (function Put _ -> true | Get _ | Delete _ -> false) ops)
