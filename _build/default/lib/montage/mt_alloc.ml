(** Montage's own persistent payload allocator — deliberately {e not} built
    on pmalloc, mirroring the fact that Montage does not use PMDK (which is
    what let Mumak, being library-agnostic, analyse it at all; paper
    section 6.4).

    A bump allocator over a payload arena. The persisted head pointer is
    only advanced at epoch boundaries, together with the epoch counter:
    everything past the persisted head is, by definition, not yet durable.

    Layout of the device:
    {v
      0:   magic            8: persisted epoch   16: persisted head
      24:  committed count  32: clean-shutdown flag
      64.. payload arena
    v} *)

let magic = 0x4d4f4e5441474531L (* "MONTAGE1" *)
let header_size = 64
let magic_off = 0
let epoch_off = 8
let head_off = 16
let count_off = 24
let shutdown_off = 32

type t = {
  dev : Pmem.Device.t;
  mutable head : int; (* volatile bump pointer *)
}

exception Arena_full
exception Corrupted of string

let bug_head_unpersisted =
  Bugreg.register ~id:"montage_alloc_head_unpersisted" ~component:"montage"
    ~taxonomy:Bugreg.Durability
    ~description:
      "allocator head is never persisted at epoch boundaries; recovery scans a stale \
       arena extent and loses committed payloads (the Montage recoverability bug)"
    ~detectors:[ "mumak"; "witcher"; "xfdetector" ]

let bug_dtor_window =
  Bugreg.register ~id:"montage_dtor_window" ~component:"montage"
    ~taxonomy:Bugreg.Atomicity
    ~description:
      "allocator destruction resets the persisted head before the final epoch flush; \
       a crash in the window truncates the arena (the Montage destructor bug)"
    ~detectors:[ "mumak"; "witcher"; "agamotto"; "xfdetector" ]

let bugs = [ bug_head_unpersisted; bug_dtor_window ]

let persist dev ~addr ~size =
  Pmem.Device.flush_range dev ~kind:Pmem.Op.Clwb ~addr ~size;
  Pmem.Device.sfence dev

let format dev =
  Pmem.Device.store_i64 dev ~addr:magic_off magic;
  Pmem.Device.store_i64 dev ~addr:epoch_off 0L;
  Pmem.Device.store_i64 dev ~addr:head_off (Int64.of_int header_size);
  Pmem.Device.store_i64 dev ~addr:count_off 0L;
  Pmem.Device.store_i64 dev ~addr:shutdown_off 0L;
  persist dev ~addr:0 ~size:header_size;
  { dev; head = header_size }

let attach dev =
  if not (Int64.equal (Pmem.Device.load_i64 dev ~addr:magic_off) magic) then
    raise (Corrupted "montage arena: bad magic");
  let head = Int64.to_int (Pmem.Device.load_i64 dev ~addr:head_off) in
  if head < header_size || head > Pmem.Device.size dev then
    raise (Corrupted "montage arena: persisted head out of range");
  { dev; head }

let persisted_epoch t = Pmem.Device.load_i64 t.dev ~addr:epoch_off
let persisted_head t = Int64.to_int (Pmem.Device.load_i64 t.dev ~addr:head_off)
let committed_count t = Int64.to_int (Pmem.Device.load_i64 t.dev ~addr:count_off)
let volatile_head t = t.head

(** Allocate [bytes] from the arena; buffered (nothing is flushed). *)
let alloc t ~bytes =
  let bytes = Pmem.Addr.align_up bytes 8 in
  if t.head + bytes > Pmem.Device.size t.dev then raise Arena_full;
  let addr = t.head in
  t.head <- t.head + bytes;
  addr

(** Close the epoch: flush every payload written since the persisted head,
    fence, then atomically publish the new epoch, head and committed count.
    This is the durability point of the buffered design. *)
let publish_epoch t ~count =
  let from = persisted_head t in
  if t.head > from then
    Pmem.Device.flush_range t.dev ~kind:Pmem.Op.Clwb ~addr:from ~size:(t.head - from);
  Pmem.Device.sfence t.dev;
  Pmem.Device.store_i64 t.dev ~addr:epoch_off (Int64.add (persisted_epoch t) 1L);
  if not (Bugreg.enabled bug_head_unpersisted.Bugreg.id) then
    Pmem.Device.store_i64 t.dev ~addr:head_off (Int64.of_int t.head);
  Pmem.Device.store_i64 t.dev ~addr:count_off (Int64.of_int count);
  persist t.dev ~addr:0 ~size:header_size

(** Destructor. The clean order: close the final epoch, then mark the clean
    shutdown. The seeded bug resets the head first — the narrow destruction
    window in which Mumak caught the original (urcs-sync/Montage commit
    3384e50). *)
let destroy t ~count =
  if Bugreg.enabled bug_dtor_window.Bugreg.id then begin
    (* BUG: the head is reset (the allocator considers itself empty) before
       the final epoch is published *)
    Pmem.Device.store_i64 t.dev ~addr:head_off (Int64.of_int header_size);
    persist t.dev ~addr:head_off ~size:8;
    publish_epoch t ~count;
    Pmem.Device.store_i64 t.dev ~addr:head_off (Int64.of_int t.head);
    persist t.dev ~addr:head_off ~size:8
  end
  else publish_epoch t ~count;
  Pmem.Device.store_i64 t.dev ~addr:shutdown_off 1L;
  persist t.dev ~addr:shutdown_off ~size:8
