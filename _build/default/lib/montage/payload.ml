(** Montage payload blocks: the only data Montage keeps in PM.

    The index structures live in DRAM and are rebuilt on recovery by
    scanning the payload arena — the heart of the buffered-persistence
    design. A payload either asserts a mapping (put) or retracts one
    (anti-payload, written by delete).

    Layout (32 bytes): tag, key, value, epoch. *)

let size = 32
let tag_put = 1L
let tag_anti = 2L

let write alloc_dev ~addr ~tag ~key ~value ~epoch =
  Pmem.Device.store_i64 alloc_dev ~addr tag;
  Pmem.Device.store_i64 alloc_dev ~addr:(addr + 8) key;
  Pmem.Device.store_i64 alloc_dev ~addr:(addr + 16) value;
  Pmem.Device.store_i64 alloc_dev ~addr:(addr + 24) epoch

type t = { addr : int; tag : int64; key : int64; value : int64; epoch : int64 }

let read dev ~addr =
  {
    addr;
    tag = Pmem.Device.load_i64 dev ~addr;
    key = Pmem.Device.load_i64 dev ~addr:(addr + 8);
    value = Pmem.Device.load_i64 dev ~addr:(addr + 16);
    epoch = Pmem.Device.load_i64 dev ~addr:(addr + 24);
  }

let valid p = Int64.equal p.tag tag_put || Int64.equal p.tag tag_anti

(** Scan the arena [header_size, head) and fold the payloads in write
    order. Stops with an error on a malformed payload. *)
let scan dev ~head ~f ~init =
  let rec go addr acc =
    if addr + size > head then Ok acc
    else
      let p = read dev ~addr in
      if not (valid p) then
        Error (Printf.sprintf "malformed payload at %d (tag %Ld)" addr p.tag)
      else go (addr + size) (f acc p)
  in
  go Mt_alloc.header_size init
