lib/montage/mt_alloc.ml: Bugreg Int64 Pmem
