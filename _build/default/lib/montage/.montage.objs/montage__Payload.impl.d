lib/montage/payload.ml: Int64 Mt_alloc Pmem Printf
