lib/montage/hashtable.ml: Hashtbl Int64 Mt_alloc Payload Pmtrace Printf
