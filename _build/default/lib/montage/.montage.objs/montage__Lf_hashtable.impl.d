lib/montage/lf_hashtable.ml: Bytes Hashtbl Int64 Mt_alloc Option Payload Pmem Pmtrace Printf
