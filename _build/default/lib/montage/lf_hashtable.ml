(** Montage LfHashtable: the lock-free variant. Unlike {!Hashtable} it keeps
    its bucket heads in PM and publishes every operation eagerly with
    CAS-plus-flush — the classic lock-free persistent pattern (CAS carries
    fence semantics, paper section 2). Payloads are chained per bucket.

    Layout: the {!Mt_alloc} header, then [nbuckets] 8-byte bucket heads,
    then the payload arena. Payloads are 40 bytes: tag, key, value, epoch
    (unused: always 0), next. *)

let name = "montage_lf_hashtable"
let min_pool_size = 1 lsl 21
let nbuckets = 512
let payload_size = 40

type t = {
  alloc : Mt_alloc.t;
  buckets : int; (* address of the bucket array *)
  framer : Pmtrace.Framer.t;
  mutable live : int;
}

let dev t = t.alloc.Mt_alloc.dev

let hash key =
  Int64.to_int
    (Int64.rem
       (Int64.logand
          (Int64.mul (Int64.logxor key (Int64.shift_right_logical key 33)) 0xff51afd7ed558ccdL)
          Int64.max_int)
       (Int64.of_int nbuckets))

let bucket_addr t i = t.buckets + (8 * i)

let persist t ~addr ~size =
  Pmem.Device.flush_range (dev t) ~kind:Pmem.Op.Clwb ~addr ~size;
  Pmem.Device.sfence (dev t)

let create ?(framer = Pmtrace.Framer.null) device =
  let alloc = Mt_alloc.format device in
  let buckets = Mt_alloc.alloc alloc ~bytes:(8 * nbuckets) in
  let t = { alloc; buckets; framer; live = 0 } in
  Pmem.Device.store (dev t) ~addr:buckets (Bytes.make (8 * nbuckets) '\000');
  persist t ~addr:buckets ~size:(8 * nbuckets);
  (* publish the arena extent covering the bucket array *)
  Mt_alloc.publish_epoch alloc ~count:0;
  t

let count t = t.live

let head t i = Int64.to_int (Pmem.Device.load_i64 (dev t) ~addr:(bucket_addr t i))

let payload_key t p = Pmem.Device.load_i64 (dev t) ~addr:(p + 8)
let payload_value t p = Pmem.Device.load_i64 (dev t) ~addr:(p + 16)
let payload_next t p = Int64.to_int (Pmem.Device.load_i64 (dev t) ~addr:(p + 32))
let payload_tag t p = Pmem.Device.load_i64 (dev t) ~addr:p

(* First live payload for [key] in its chain (newest first). *)
let find t key =
  let rec go p =
    if p = 0 then None
    else if Int64.equal (payload_key t p) key then
      if Int64.equal (payload_tag t p) Payload.tag_put then Some p else None
    else go (payload_next t p)
  in
  go (head t (hash key))

let get t ~key =
  t.framer.Pmtrace.Framer.frame "montage_lf.get" (fun () ->
      Option.map (payload_value t) (find t key))

let bump_count t delta =
  t.live <- t.live + delta;
  Pmem.Device.store_i64 (dev t) ~addr:Mt_alloc.count_off (Int64.of_int t.live);
  persist t ~addr:Mt_alloc.count_off ~size:8

(* Append a payload and publish it at the head of its bucket with a CAS. *)
let append t ~tag ~key ~value =
  let b = hash key in
  let addr = Mt_alloc.alloc t.alloc ~bytes:payload_size in
  let old_head = head t b in
  Pmem.Device.store_i64 (dev t) ~addr tag;
  Pmem.Device.store_i64 (dev t) ~addr:(addr + 8) key;
  Pmem.Device.store_i64 (dev t) ~addr:(addr + 16) value;
  Pmem.Device.store_i64 (dev t) ~addr:(addr + 24) 0L;
  Pmem.Device.store_i64 (dev t) ~addr:(addr + 32) (Int64.of_int old_head);
  persist t ~addr ~size:payload_size;
  (* extend the published arena extent before the payload becomes
     reachable, so recovery's chain walk always stays in bounds *)
  Pmem.Device.store_i64 (dev t) ~addr:Mt_alloc.head_off
    (Int64.of_int (Mt_alloc.volatile_head t.alloc));
  persist t ~addr:Mt_alloc.head_off ~size:8;
  (* lock-free publication: the CAS is the linearisation and carries fence
     semantics; its cache line still needs an explicit write-back *)
  let ok =
    Pmem.Device.cas (dev t) ~addr:(bucket_addr t b) ~expected:(Int64.of_int old_head)
      ~desired:(Int64.of_int addr)
  in
  assert ok;
  persist t ~addr:(bucket_addr t b) ~size:8

let put t ~key ~value =
  t.framer.Pmtrace.Framer.frame "montage_lf.put" (fun () ->
      match find t key with
      | Some p ->
          (* in-place atomic value update *)
          Pmem.Device.store_i64 (dev t) ~addr:(p + 16) value;
          persist t ~addr:(p + 16) ~size:8
      | None ->
          append t ~tag:Payload.tag_put ~key ~value;
          bump_count t 1)

let delete t ~key =
  t.framer.Pmtrace.Framer.frame "montage_lf.delete" (fun () ->
      if find t key = None then false
      else begin
        append t ~tag:Payload.tag_anti ~key ~value:0L;
        bump_count t (-1);
        true
      end)

let close t =
  t.framer.Pmtrace.Framer.frame "montage_lf.close" (fun () ->
      Mt_alloc.destroy t.alloc ~count:t.live)

(** Recovery: walk every bucket chain, validating pointers against the
    published arena extent, and cross-check the live count. *)
let recover device =
  match Mt_alloc.attach device with
  | exception Mt_alloc.Corrupted msg -> Error ("montage_lf: " ^ msg)
  | alloc ->
      let limit = Mt_alloc.persisted_head alloc in
      let buckets = Mt_alloc.header_size in
      let live = Hashtbl.create 256 in
      let rec walk b p guard =
        if p = 0 then Ok ()
        else if guard = 0 then Error (Printf.sprintf "bucket %d: chain cycle" b)
        else if p < Mt_alloc.header_size || p + payload_size > limit then
          Error (Printf.sprintf "bucket %d: payload %d outside the published arena" b p)
        else begin
          let tag = Pmem.Device.load_i64 device ~addr:p in
          if not (Int64.equal tag Payload.tag_put || Int64.equal tag Payload.tag_anti) then
            Error (Printf.sprintf "bucket %d: malformed payload at %d" b p)
          else begin
            let key = Pmem.Device.load_i64 device ~addr:(p + 8) in
            if not (Hashtbl.mem live key) then
              Hashtbl.replace live key (Int64.equal tag Payload.tag_put);
            walk b (Int64.to_int (Pmem.Device.load_i64 device ~addr:(p + 32))) (guard - 1)
          end
        end
      in
      let rec buckets_walk b =
        if b = nbuckets then Ok ()
        else
          match
            walk b
              (Int64.to_int (Pmem.Device.load_i64 device ~addr:(buckets + (8 * b))))
              100_000
          with
          | Error e -> Error ("montage_lf: " ^ e)
          | Ok () -> buckets_walk (b + 1)
      in
      (match buckets_walk 0 with
      | Error e -> Error e
      | Ok () ->
          let recovered = Hashtbl.fold (fun _ alive n -> if alive then n + 1 else n) live 0 in
          let committed = Mt_alloc.committed_count alloc in
          if abs (recovered - committed) > 1 then
            Error
              (Printf.sprintf "montage_lf: recovered %d items, committed count %d"
                 recovered committed)
          else Ok ())
