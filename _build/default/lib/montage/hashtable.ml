(** Montage Hashtable: DRAM index, PM payloads, epoch-buffered persistence.

    Puts and deletes append payloads to the arena without flushing; every
    [ops_per_epoch] mutations the epoch is published, which flushes the
    closed epoch's payloads and atomically advances the persisted epoch,
    arena head and committed item count. A crash loses at most the open
    epoch — never committed data.

    Recovery scans the arena up to the persisted head, replays payloads
    with epoch <= persisted epoch in write order, rebuilds the DRAM index,
    and cross-checks the item count against the committed count. *)

let name = "montage_hashtable"
let min_pool_size = 1 lsl 21
let ops_per_epoch = 8

type t = {
  alloc : Mt_alloc.t;
  index : (int64, int) Hashtbl.t; (* key -> payload addr, DRAM *)
  mutable live : int; (* current item count *)
  mutable dirty_ops : int; (* mutations in the open epoch *)
  framer : Pmtrace.Framer.t;
}

let dev t = t.alloc.Mt_alloc.dev

let create ?(framer = Pmtrace.Framer.null) device =
  let alloc = Mt_alloc.format device in
  { alloc; index = Hashtbl.create 256; live = 0; dirty_ops = 0; framer }

let count t = t.live

let maybe_publish t =
  t.dirty_ops <- t.dirty_ops + 1;
  if t.dirty_ops >= ops_per_epoch then begin
    t.framer.Pmtrace.Framer.frame "montage.publish_epoch" (fun () ->
        Mt_alloc.publish_epoch t.alloc ~count:t.live);
    t.dirty_ops <- 0
  end

let put t ~key ~value =
  t.framer.Pmtrace.Framer.frame "montage.put" (fun () ->
      let addr = Mt_alloc.alloc t.alloc ~bytes:Payload.size in
      let epoch = Int64.add (Mt_alloc.persisted_epoch t.alloc) 1L in
      Payload.write (dev t) ~addr ~tag:Payload.tag_put ~key ~value ~epoch;
      if not (Hashtbl.mem t.index key) then t.live <- t.live + 1;
      Hashtbl.replace t.index key addr;
      maybe_publish t)

let get t ~key =
  t.framer.Pmtrace.Framer.frame "montage.get" (fun () ->
      match Hashtbl.find_opt t.index key with
      | None -> None
      | Some addr -> Some (Payload.read (dev t) ~addr).Payload.value)

let delete t ~key =
  t.framer.Pmtrace.Framer.frame "montage.delete" (fun () ->
      if not (Hashtbl.mem t.index key) then false
      else begin
        let addr = Mt_alloc.alloc t.alloc ~bytes:Payload.size in
        let epoch = Int64.add (Mt_alloc.persisted_epoch t.alloc) 1L in
        Payload.write (dev t) ~addr ~tag:Payload.tag_anti ~key ~value:0L ~epoch;
        Hashtbl.remove t.index key;
        t.live <- t.live - 1;
        maybe_publish t;
        true
      end)

(** Clean shutdown: publish the open epoch and mark the arena closed. *)
let close t =
  t.framer.Pmtrace.Framer.frame "montage.close" (fun () ->
      Mt_alloc.destroy t.alloc ~count:t.live)

(** The recovery procedure (and consistency oracle): rebuild the index from
    the durable payload prefix and cross-check the committed count. *)
let recover device =
  match Mt_alloc.attach device with
  | exception Mt_alloc.Corrupted msg -> Error ("montage: " ^ msg)
  | alloc ->
      let cutoff = Mt_alloc.persisted_epoch alloc in
      let index = Hashtbl.create 256 in
      let replay () p =
        if Int64.compare p.Payload.epoch cutoff <= 0 then
          if Int64.equal p.Payload.tag Payload.tag_put then
            Hashtbl.replace index p.Payload.key p.Payload.addr
          else Hashtbl.remove index p.Payload.key
      in
      (match
         Payload.scan device ~head:(Mt_alloc.persisted_head alloc) ~f:replay ~init:()
       with
      | Error e -> Error ("montage payload scan: " ^ e)
      | Ok () ->
          let recovered = Hashtbl.length index in
          let committed = Mt_alloc.committed_count alloc in
          if recovered <> committed then
            Error
              (Printf.sprintf
                 "montage: recovered %d items but the committed count is %d — data loss"
                 recovered committed)
          else Ok ())
