(** Glue between a {!Pmem.Device} and trace collection: the Pin-tool
    analogue. A tracer owns the call stack the application pushes frames
    onto, assigns instruction counters, and appends events to a trace.
    Extra listeners can be attached (the fault injector attaches one to
    watch for failure points without paying for trace storage). *)

type t

val create : ?collect:bool -> ?with_stacks:bool -> Pmem.Device.t -> t
(** Install the instrumentation hook on the device. [collect] (default
    true) appends events to the trace buffer; [with_stacks] (default
    false) captures a backtrace on every event — expensive, which is why
    the engine resolves stacks lazily instead (paper section 5). *)

val device : t -> Pmem.Device.t
val trace : t -> Trace.t
val stack : t -> Callstack.t
val seq : t -> int

val detach : t -> unit
(** Remove the hook from the device. *)

val add_listener : t -> (Event.t -> Callstack.t -> unit) -> unit

val set_collect : t -> bool -> unit
val set_with_stacks : t -> bool -> unit

val with_frame : t -> string -> (unit -> 'a) -> 'a
(** Run the callback with a frame pushed on the traced call stack. *)

val resolve_stacks :
  t ->
  wanted:int list ->
  run:(unit -> unit) ->
  (int, Callstack.capture) Hashtbl.t
(** Re-attach call stacks to a stack-less trace by re-running the same
    deterministic execution with minimal instrumentation: events whose
    [seq] appears in [wanted] get their stacks captured. *)
