(** A traced PM access: the device operation plus the execution context the
    instrumentation captured (monotonic instruction counter and, optionally,
    the call stack).

    Mirroring the optimisation in paper section 5, full backtraces are
    expensive, so traces normally carry only the instruction counter; the
    stack is re-attached on demand by a second, minimally instrumented
    execution (see {!Tracer.resolve_stacks}). *)

type t = {
  seq : int;  (** monotonically increasing instruction counter *)
  op : Pmem.Op.t;
  stack : Callstack.capture option;
}

let pp ppf e =
  Fmt.pf ppf "#%d %s%s" e.seq (Pmem.Op.to_string e.op)
    (match e.stack with
    | None -> ""
    | Some c -> " [" ^ Callstack.capture_to_string c ^ "]")
