(** An in-memory trace of PM accesses, collected during one execution of the
    workload and consumed in a single pass by the analyses. *)

type t = { mutable events : Event.t list (* newest first *); mutable length : int }

let create () = { events = []; length = 0 }

let add t e =
  t.events <- e :: t.events;
  t.length <- t.length + 1

let length t = t.length
let clear t =
  t.events <- [];
  t.length <- 0

(** [iter t f] applies [f] to every event in execution order. *)
let iter t f = List.iter f (List.rev t.events)

(** [fold t init f] folds over events in execution order. *)
let fold t init f = List.fold_left f init (List.rev t.events)

let to_list t = List.rev t.events

(** Approximate resident size of the trace in words, for the Table 2
    resource accounting. *)
let approx_size_words t =
  (* one list cell (3 words) + one record (4 words) + op payload (~6 words) *)
  t.length * 13
