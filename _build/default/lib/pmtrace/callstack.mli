(** Explicit call stacks, the analogue of Pin's filtered backtraces.

    Applications under test wrap each function body in {!with_frame}; within
    one frame activation the PM instructions are numbered, and the pair
    (frame path, instruction index inside the innermost frame) is this
    reproduction's notion of an "instruction address": stable across
    repeated deterministic executions, like a code address with ASLR
    disabled (paper section 5). Every stack bottoms out in a permanent
    [_start] frame (Figure 2), so instructions outside application frames
    still get distinct identities. *)

type t

val root_label : string
(** ["_start"]. *)

val create : unit -> t

val depth : t -> int
(** Application frames currently on the stack (the root frame excluded). *)

val push : t -> string -> unit
val pop : t -> unit

val with_frame : t -> string -> (unit -> 'a) -> 'a
(** Push a frame for the duration of the callback (popped on exceptions
    too). *)

val tick : t -> unit
(** Advance the innermost frame's instruction counter; called by the tracer
    on every PM instruction. *)

(** A captured stack: outermost label first, with the innermost frame's
    instruction index as the "address" of the leaf instruction. *)
type capture = { path : string list; op_index : int }

val capture : t -> capture
val capture_to_string : capture -> string
val capture_equal : capture -> capture -> bool
val capture_compare : capture -> capture -> int
val capture_hash : capture -> int
