(** Explicit call stacks, the analogue of Pin's filtered backtraces.

    Applications under test wrap each function body in {!with_frame}. Within
    one frame activation we also count the PM instructions executed so far;
    the pair (frame path, instruction index inside the innermost frame) is
    the reproduction's notion of an "instruction address": it is stable
    across repeated deterministic executions, exactly like a code address
    with ASLR disabled (paper section 5). *)

type frame = { label : string; mutable op_index : int }

type t = { mutable frames : frame list (* innermost first *) }

(* Every stack bottoms out in a permanent root frame — the analogue of
   [_start] in Figure 2 — so that PM instructions executed outside any
   application frame (library internals, the workload driver) still get
   distinct instruction identities. *)
let root_label = "_start"

let create () = { frames = [ { label = root_label; op_index = 0 } ] }
let depth t = List.length t.frames - 1

let push t label = t.frames <- { label; op_index = 0 } :: t.frames

let pop t =
  match t.frames with
  | [] | [ _ ] -> invalid_arg "Callstack.pop: empty stack"
  | _ :: rest -> t.frames <- rest

let with_frame t label f =
  push t label;
  match f () with
  | v ->
      pop t;
      v
  | exception e ->
      pop t;
      raise e

(* Called by the tracer on every PM instruction: bumps the per-activation
   instruction counter of the innermost frame. *)
let tick t =
  match t.frames with [] -> () | f :: _ -> f.op_index <- f.op_index + 1

(** A captured stack: outermost label first, with the innermost frame's
    current instruction index as the "address" of the leaf instruction. *)
type capture = { path : string list; op_index : int }

let capture t =
  let path = List.rev_map (fun f -> f.label) t.frames in
  let op_index = match t.frames with [] -> 0 | f :: _ -> f.op_index in
  { path; op_index }

let capture_to_string { path; op_index } =
  String.concat " > " path ^ Printf.sprintf " @%d" op_index

let capture_equal a b = a.op_index = b.op_index && List.equal String.equal a.path b.path

let capture_compare a b =
  match compare a.op_index b.op_index with
  | 0 -> compare a.path b.path
  | c -> c

let capture_hash c = Hashtbl.hash (c.path, c.op_index)
