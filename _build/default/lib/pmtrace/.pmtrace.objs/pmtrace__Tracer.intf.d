lib/pmtrace/tracer.mli: Callstack Event Hashtbl Pmem Trace
