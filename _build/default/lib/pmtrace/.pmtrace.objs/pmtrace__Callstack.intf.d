lib/pmtrace/callstack.mli:
