lib/pmtrace/callstack.ml: Hashtbl List Printf String
