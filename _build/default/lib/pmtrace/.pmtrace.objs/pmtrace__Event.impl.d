lib/pmtrace/event.ml: Callstack Fmt Pmem
