lib/pmtrace/trace.ml: Event List
