lib/pmtrace/framer.ml: Callstack
