lib/pmtrace/tracer.ml: Callstack Event Fun Hashtbl List Pmem Trace
