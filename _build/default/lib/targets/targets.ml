(** Target builders: wrap the PM applications into the black-box
    {!Mumak.Target.t} interface the tools analyse.

    [tx_mode] reproduces the evaluation's two workload shapes (paper
    section 6.1): the original libpmemobj examples group puts in an
    enclosing transaction, while the "SPT" variant runs a single put per
    transaction. Grouping is expressed with an outer {!Pmalloc.Tx.run}
    which the applications' inner transactions flatten into. *)

type tx_mode =
  | Spt  (** single put per transaction: each op commits on its own *)
  | Grouped of int  (** the original shape: ops batched inside an outer tx *)

let apply_op (type a) (module A : Pmapps.Kv_intf.S with type t = a) (app : a) op =
  match op with
  | Workload.Put (k, v) -> A.put app ~key:k ~value:v
  | Workload.Get k -> ignore (A.get app ~key:k)
  | Workload.Delete k -> ignore (A.delete app ~key:k)

let rec chunks n = function
  | [] -> []
  | ops ->
      let rec take i acc rest =
        match rest with
        | x :: tl when i < n -> take (i + 1) (x :: acc) tl
        | _ -> (List.rev acc, rest)
      in
      let chunk, rest = take 0 [] ops in
      chunk :: chunks n rest

(** [of_app (module A) ~version ~workload ()] builds a target that formats
    a pool, creates the structure and drives the whole workload. *)
let of_app (module A : Pmapps.Kv_intf.S) ?(version = Pmalloc.Version.V1_12)
    ?(tx_mode = Spt) ?(pool_size = 0) ?(loc = 0) ~workload () =
  let pool_size = if pool_size > 0 then pool_size else A.min_pool_size in
  let run ~device ~framer =
    let pool = Pmalloc.Pool.create ~version device in
    let heap = Pmalloc.Alloc.attach pool in
    let app = A.create ~framer pool heap in
    match tx_mode with
    | Spt -> List.iter (apply_op (module A) app) workload
    | Grouped n ->
        List.iter
          (fun chunk ->
            (* the batch loop is one code location: frame it so every batch
               shares the same failure-point identities *)
            framer.Pmtrace.Framer.frame "workload.batch" (fun () ->
                Pmalloc.Tx.run ~heap pool (fun _tx ->
                    List.iter (apply_op (module A) app) chunk)))
          (chunks n workload)
  in
  Mumak.Target.make
    ~name:
      (A.name
      ^ (match tx_mode with Spt -> " (SPT)" | Grouped _ -> "")
      ^ " v" ^ Pmalloc.Version.to_string version)
    ~pool_size ~loc ~run ~recover:A.recover ()

(** Approximate codebase sizes (application + its PM dependencies), the
    x-axis metadata of Figure 5. *)
let loc_of_app = function
  | "btree" -> 18_000
  | "rbtree" -> 18_500
  | "hashmap_atomic" -> 17_500
  | "hashmap_tx" -> 17_600
  | "wort" -> 2_500
  | "level_hash" -> 3_000
  | "cceh" -> 2_800
  | "fast_fair" -> 3_200
  | _ -> 0

let standard_workload ?(ops = 600) ?(key_range = 200) ?(seed = 42L) () =
  Workload.standard ~ops ~key_range ~seed

(* --- Montage targets (library-agnostic analysis, paper section 6.4) --- *)

(* fixed-width encodings: variable record sizes would make every string
   length a distinct code path and distort the path counts *)
let key_string k = Printf.sprintf "key:%012Ld" k
let value_string v = Printf.sprintf "val:%016Ld" (Int64.logand v 0xFFFF_FFFFL)

let of_montage ?(variant = `Buffered) ~workload () =
  match variant with
  | `Buffered ->
      let run ~device ~framer =
        let t = Montage.Hashtable.create ~framer device in
        List.iter
          (fun op ->
            match op with
            | Workload.Put (k, v) -> Montage.Hashtable.put t ~key:k ~value:v
            | Workload.Get k -> ignore (Montage.Hashtable.get t ~key:k)
            | Workload.Delete k -> ignore (Montage.Hashtable.delete t ~key:k))
          workload;
        Montage.Hashtable.close t
      in
      Mumak.Target.make ~name:"montage.Hashtable"
        ~pool_size:Montage.Hashtable.min_pool_size ~loc:6_000 ~run
        ~recover:Montage.Hashtable.recover ()
  | `Lockfree ->
      let run ~device ~framer =
        let t = Montage.Lf_hashtable.create ~framer device in
        List.iter
          (fun op ->
            match op with
            | Workload.Put (k, v) -> Montage.Lf_hashtable.put t ~key:k ~value:v
            | Workload.Get k -> ignore (Montage.Lf_hashtable.get t ~key:k)
            | Workload.Delete k -> ignore (Montage.Lf_hashtable.delete t ~key:k))
          workload;
        Montage.Lf_hashtable.close t
      in
      Mumak.Target.make ~name:"montage.LfHashtable"
        ~pool_size:Montage.Lf_hashtable.min_pool_size ~loc:6_500 ~run
        ~recover:Montage.Lf_hashtable.recover ()

(* --- pmemkv / Redis / RocksDB targets (scalability study, Figure 5) --- *)

let of_pmemkv ~engine ~workload () =
  let run ~device ~framer =
    let pool = Pmalloc.Pool.create ~version:Pmalloc.Version.V1_12 device in
    let heap = Pmalloc.Alloc.attach pool in
    let t = Kvstores.Pmemkv.create ~framer ~engine pool heap in
    List.iter
      (fun op ->
        match op with
        | Workload.Put (k, v) -> Kvstores.Pmemkv.put t (key_string k) (value_string v)
        | Workload.Get k -> ignore (Kvstores.Pmemkv.get t (key_string k))
        | Workload.Delete k -> ignore (Kvstores.Pmemkv.remove t (key_string k)))
      workload
  in
  Mumak.Target.make
    ~name:("pmemkv." ^ Kvstores.Pmemkv.engine_name engine)
    ~pool_size:Kvstores.Pmemkv.min_pool_size
    ~loc:(match engine with Kvstores.Pmemkv.Cmap -> 45_000 | Kvstores.Pmemkv.Stree -> 40_000)
    ~run ~recover:Kvstores.Pmemkv.recover ()

let of_redis ~workload () =
  let run ~device ~framer =
    let pool = Pmalloc.Pool.create ~version:Pmalloc.Version.V1_12 device in
    let heap = Pmalloc.Alloc.attach pool in
    let t = Kvstores.Redis_pm.create ~framer pool heap in
    List.iter
      (fun op ->
        match op with
        | Workload.Put (k, v) -> Kvstores.Redis_pm.set t (key_string k) (value_string v)
        | Workload.Get k -> ignore (Kvstores.Redis_pm.get t (key_string k))
        | Workload.Delete k -> ignore (Kvstores.Redis_pm.del t (key_string k)))
      workload
  in
  Mumak.Target.make ~name:"redis" ~pool_size:Kvstores.Redis_pm.min_pool_size ~loc:115_000
    ~run ~recover:Kvstores.Redis_pm.recover ()

let of_rocksdb ~workload () =
  let run ~device ~framer =
    let pool = Pmalloc.Pool.create ~version:Pmalloc.Version.V1_12 device in
    let heap = Pmalloc.Alloc.attach pool in
    let t = Kvstores.Rocksdb_pm.create ~framer pool heap in
    List.iter
      (fun op ->
        match op with
        | Workload.Put (k, v) -> Kvstores.Rocksdb_pm.put t (key_string k) (value_string v)
        | Workload.Get k -> ignore (Kvstores.Rocksdb_pm.get t (key_string k))
        | Workload.Delete k -> ignore (Kvstores.Rocksdb_pm.delete t (key_string k)))
      workload
  in
  Mumak.Target.make ~name:"rocksdb" ~pool_size:Kvstores.Rocksdb_pm.min_pool_size
    ~loc:280_000 ~run ~recover:Kvstores.Rocksdb_pm.recover ()
