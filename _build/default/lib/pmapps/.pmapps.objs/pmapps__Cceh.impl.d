lib/pmapps/cceh.ml: Bugreg Hashtbl Int64 Kv_intf Option Pmalloc Printf Util
