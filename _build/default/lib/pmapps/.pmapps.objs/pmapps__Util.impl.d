lib/pmapps/util.ml: Int64 Pmalloc Result
