lib/pmapps/art.ml: Bugreg Fun Int64 Kv_intf List Pmalloc Printf Util
