lib/pmapps/hashmap_tx.ml: Bugreg Hashtbl Int64 Kv_intf List Option Pmalloc Printf Result Util
