lib/pmapps/registry.ml: Art Btree Bugreg Cceh Fast_fair Hashmap_atomic Hashmap_tx Kv_intf Level_hash List Rbtree String Wort
