lib/pmapps/btree.ml: Bugreg Fun Int64 Kv_intf List Option Pmalloc Printf Util
