lib/pmapps/wort.ml: Bugreg Bytes Int64 Kv_intf Pmalloc Printf Util
