lib/pmapps/fast_fair.ml: Bugreg Fun Hashtbl Int64 Kv_intf List Option Pmalloc Printf Util
