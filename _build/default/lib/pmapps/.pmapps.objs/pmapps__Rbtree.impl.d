lib/pmapps/rbtree.ml: Bugreg Int64 Kv_intf Pmalloc Pmem Printf Util
