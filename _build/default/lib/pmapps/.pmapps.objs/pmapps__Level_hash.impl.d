lib/pmapps/level_hash.ml: Bugreg Int64 Kv_intf List Option Pmalloc Printf Util
