lib/pmapps/kv_intf.ml: Pmalloc Pmem Pmtrace
