(** FAST&FAIR-style persistent B+tree (FAST'18): failure-atomic shift
    (FAST) and failure-atomic in-place rebalance (FAIR) — no logging at all.

    Inserting into a sorted node shifts entries rightwards with individual
    8-byte stores ordered so that a crash can only leave {e transient
    duplicates}, which readers tolerate by taking the leftmost match.
    Splits first persist the fully built sibling, then publish it with a
    single 8-byte sibling-pointer store; the parent separator is inserted
    afterwards, and lookups chase sibling pointers to cover the window
    where the parent is stale.

    Node layout (256 bytes): is_leaf, next-sibling pointer, then 15 slots of
    16 bytes (key, payload); key 0 terminates the array (client keys are
    non-zero).

    Seeded bugs: [ff_shift_unflushed] (the shifted region is never flushed),
    [ff_link_before_copy] (sibling published before its contents are
    persisted — torn chain after a crash). *)

open Kv_intf

let name = "fast_fair"
let min_pool_size = 1 lsl 22
let max_slots = 15
let node_bytes = 320 (* 32-byte header + 15 slots of 16 bytes, chunk-rounded *)
let meta_bytes = 64

let bug_shift_unflushed =
  Bugreg.register ~id:"ff_shift_unflushed" ~component:"fast_fair"
    ~taxonomy:Bugreg.Durability
    ~description:"entries moved by the FAST shift are never flushed"
    ~detectors:[ "mumak"; "pmdebugger"; "xfdetector"; "agamotto"; "witcher" ]

let bug_link_before_copy =
  Bugreg.register ~id:"ff_link_before_copy" ~component:"fast_fair"
    ~taxonomy:Bugreg.Atomicity
    ~description:"split publishes the sibling pointer before the sibling is persisted"
    ~detectors:[ "mumak"; "witcher"; "agamotto"; "xfdetector" ]

let bug_redundant_fence =
  Bugreg.register ~id:"ff_redundant_fence" ~component:"fast_fair"
    ~taxonomy:Bugreg.Redundant_fence
    ~description:"an extra drain with nothing pending after every FAST insert"
    ~detectors:[ "mumak"; "pmdebugger"; "agamotto"; "witcher" ]

let bugs = [ bug_shift_unflushed; bug_link_before_copy; bug_redundant_fence ]

type t = {
  pool : Pmalloc.Pool.t;
  heap : Pmalloc.Alloc.t;
  meta : int; (* root node, count *)
  framer : framer;
}

let read t off = Pmalloc.Pool.read_i64 t.pool ~off
let write t off v = Pmalloc.Pool.write_i64 t.pool ~off v
let persist t ~off ~size = Pmalloc.Pool.persist t.pool ~off ~size

let root t = Int64.to_int (read t t.meta)
let count t = Int64.to_int (read t (t.meta + 8))
let is_leaf t n = read t (n + 8) = 1L
let set_is_leaf t n b = write t (n + 8) (if b then 1L else 0L)
let next t n = Int64.to_int (read t (n + 16))
let set_next t n v = write t (n + 16) (Int64.of_int v)
let slot_addr n i = n + 32 + (16 * i)
let slot_key t n i = read t (slot_addr n i)
let slot_payload t n i = read t (slot_addr n i + 8)
let set_slot t n i ~key ~payload =
  (* payload first, key second: the key store publishes the pair *)
  write t (slot_addr n i + 8) payload;
  write t (slot_addr n i) key

let nslots t n =
  let rec go i = if i = max_slots then i else if Int64.equal (slot_key t n i) 0L then i else go (i + 1) in
  go 0

(* leftmost child of an interior node is stored in the next-pointer-like
   field at +24; slot payloads are the children right of each key *)
let leftmost t n = Int64.to_int (read t (n + 24))
let set_leftmost t n v = write t (n + 24) (Int64.of_int v)

let alloc_node t ~leaf =
  let n = Pmalloc.Alloc.alloc ~zero:true t.heap ~bytes:node_bytes in
  set_is_leaf t n leaf;
  persist t ~off:n ~size:node_bytes;
  n

let create ?(framer = null_framer) pool heap =
  let meta = Pmalloc.Alloc.alloc ~zero:true heap ~bytes:meta_bytes in
  let t = { pool; heap; meta; framer } in
  let leaf = alloc_node t ~leaf:true in
  write t meta (Int64.of_int leaf);
  write t (meta + 8) 0L;
  persist t ~off:meta ~size:meta_bytes;
  Pmalloc.Pool.set_root pool ~off:meta ~size:meta_bytes;
  t

let open_existing ?(framer = null_framer) pool heap =
  match Pmalloc.Pool.root pool with
  | Some (meta, _) -> { pool; heap; meta; framer }
  | None -> invalid_arg "Fast_fair.open_existing: pool has no root"

(* descend to the leaf that should hold [k]; tolerates a stale parent by
   chasing sibling links (the FAIR lookup rule) *)
let rec find_leaf t n k =
  if is_leaf t n then begin
    let nx = next t n in
    if nx <> 0 && nslots t nx > 0 && Int64.compare k (slot_key t nx 0) >= 0 then
      t.framer.frame "fast_fair.chase" (fun () -> find_leaf t nx k)
    else n
  end
  else begin
    let m = nslots t n in
    let rec pick i =
      if i = m then Int64.to_int (slot_payload t n (m - 1))
      else if Int64.compare k (slot_key t n i) < 0 then
        if i = 0 then leftmost t n else Int64.to_int (slot_payload t n (i - 1))
      else pick (i + 1)
    in
    t.framer.frame "fast_fair.descend" (fun () -> find_leaf t (pick 0) k)
  end

(* leftmost match wins: tolerant of transient duplicates *)
let leaf_find t n k =
  let m = nslots t n in
  let rec go i = if i = m then None else if Int64.equal (slot_key t n i) k then Some i else go (i + 1) in
  go 0

let get t ~key:k =
  t.framer.frame "fast_fair.get" (fun () ->
      let leaf = find_leaf t (root t) k in
      Option.map (fun i -> slot_payload t leaf i) (leaf_find t leaf k))

let set_count t c =
  write t (t.meta + 8) (Int64.of_int c);
  persist t ~off:(t.meta + 8) ~size:8

(* FAST insertion into a non-full sorted node: shift pairs rightwards one
   8-byte store at a time (payload then key, so a torn pair is a duplicate,
   never garbage), flush the touched region, then publish the new pair. *)
let fast_insert t n ~key:k ~payload =
  let m = nslots t n in
  let rec shift i =
    if i >= 0 && Int64.compare (slot_key t n i) k > 0 then begin
      write t (slot_addr n (i + 1) + 8) (slot_payload t n i);
      write t (slot_addr n (i + 1)) (slot_key t n i);
      shift (i - 1)
    end
    else i
  in
  let pos = shift (m - 1) + 1 in
  if not (Bugreg.enabled bug_shift_unflushed.Bugreg.id) then
    Pmalloc.Pool.flush t.pool ~off:(slot_addr n pos) ~size:((m - pos + 1) * 16);
  Pmalloc.Pool.drain t.pool;
  set_slot t n pos ~key:k ~payload;
  persist t ~off:(slot_addr n pos) ~size:16;
  if Bugreg.enabled bug_redundant_fence.Bugreg.id then Pmalloc.Pool.drain t.pool

(* FAIR split: build the sibling, persist it, publish it through the
   8-byte sibling pointer, then shrink this node. Returns the separator
   and the sibling address for the parent insertion. *)
let split_node t n =
  t.framer.frame "fast_fair.split" (fun () ->
      let half = max_slots / 2 in
      let sep = slot_key t n half in
      let sibling = Pmalloc.Alloc.alloc ~zero:true t.heap ~bytes:node_bytes in
      set_is_leaf t sibling (is_leaf t n);
      let old_next = next t n in
      if Bugreg.enabled bug_link_before_copy.Bugreg.id then begin
        (* BUG: publish first, fill in the sibling afterwards — the crash
           window truncates the sibling chain *)
        set_next t n sibling;
        persist t ~off:(n + 16) ~size:8
      end;
      let from = if is_leaf t n then half else half + 1 in
      for i = from to max_slots - 1 do
        set_slot t sibling (i - from) ~key:(slot_key t n i) ~payload:(slot_payload t n i)
      done;
      if not (is_leaf t n) then set_leftmost t sibling (Int64.to_int (slot_payload t n half));
      set_next t sibling old_next;
      persist t ~off:sibling ~size:node_bytes;
      if not (Bugreg.enabled bug_link_before_copy.Bugreg.id) then begin
        set_next t n sibling;
        persist t ~off:(n + 16) ~size:8
      end;
      (* shrink: clear the moved keys from the right end leftwards *)
      for i = max_slots - 1 downto half do
        write t (slot_addr n i) 0L
      done;
      persist t ~off:(slot_addr n half) ~size:((max_slots - half) * 16);
      (sep, sibling))

let rec insert_rec t n ~key:k ~payload =
  if is_leaf t n then begin
    let nx = next t n in
    if nx <> 0 && nslots t nx > 0 && Int64.compare k (slot_key t nx 0) >= 0 then
      insert_rec t nx ~key:k ~payload
    else
      match leaf_find t n k with
      | Some i ->
          write t (slot_addr n i + 8) payload;
          persist t ~off:(slot_addr n i + 8) ~size:8;
          None
      | None ->
          if nslots t n < max_slots then begin
            fast_insert t n ~key:k ~payload;
            set_count t (count t + 1);
            None
          end
          else begin
            let sep, sibling = split_node t n in
            (if Int64.compare k sep >= 0 then insert_rec t sibling ~key:k ~payload
             else insert_rec t n ~key:k ~payload)
            |> ignore;
            Some (sep, sibling)
          end
  end
  else
    t.framer.frame "fast_fair.insert_rec" (fun () ->
        let m = nslots t n in
        let rec pick i =
          if i = m then Int64.to_int (slot_payload t n (m - 1))
          else if Int64.compare k (slot_key t n i) < 0 then
            if i = 0 then leftmost t n else Int64.to_int (slot_payload t n (i - 1))
          else pick (i + 1)
        in
        match insert_rec t (pick 0) ~key:k ~payload with
        | None -> None
        | Some (sep, child) ->
            if nslots t n < max_slots then begin
              fast_insert t n ~key:sep ~payload:(Int64.of_int child);
              None
            end
            else begin
              let sep', sibling = split_node t n in
              let target = if Int64.compare sep sep' >= 0 then sibling else n in
              fast_insert t target ~key:sep ~payload:(Int64.of_int child);
              Some (sep', sibling)
            end)

let put t ~key:k ~value:v =
  if Int64.equal k 0L then invalid_arg "Fast_fair.put: key 0 is reserved";
  t.framer.frame "fast_fair.put" (fun () ->
      match insert_rec t (root t) ~key:k ~payload:v with
      | None -> ()
      | Some (sep, sibling) ->
          (* root split: build the new root, persist, then swing the root
             pointer with one atomic store *)
          t.framer.frame "fast_fair.root_split" (fun () ->
              let old_root = root t in
              let new_root = alloc_node t ~leaf:false in
              set_leftmost t new_root old_root;
              set_slot t new_root 0 ~key:sep ~payload:(Int64.of_int sibling);
              persist t ~off:new_root ~size:node_bytes;
              write t t.meta (Int64.of_int new_root);
              persist t ~off:t.meta ~size:8))

(* FAIR deletion: shift left over the removed slot *)
let delete t ~key:k =
  t.framer.frame "fast_fair.delete" (fun () ->
      let leaf = find_leaf t (root t) k in
      match leaf_find t leaf k with
      | None -> false
      | Some pos ->
          let m = nslots t leaf in
          for i = pos to m - 2 do
            write t (slot_addr leaf i + 8) (slot_payload t leaf (i + 1));
            write t (slot_addr leaf i) (slot_key t leaf (i + 1))
          done;
          write t (slot_addr leaf (m - 1)) 0L;
          persist t ~off:(slot_addr leaf pos) ~size:((m - pos) * 16);
          set_count t (count t - 1);
          true)

(* --- consistency checking --- *)

(* Walk the leaf chain from the leftmost leaf; keys must be non-decreasing
   (duplicates are the endurable transient state) and every node valid. *)
let leftmost_leaf t =
  let rec go n = if is_leaf t n then n else go (leftmost t n) in
  go (root t)

let chain_entries t =
  let open Util in
  let rec walk n acc prev_key guard =
    if n = 0 then Ok (List.rev acc)
    else if guard = 0 then Error "leaf chain too long (cycle?)"
    else
      let* () = check_that (in_heap t.pool n) (Printf.sprintf "leaf %d outside heap" n) in
      let m = nslots t n in
      let rec slots i acc prev_key =
        if i = m then Ok (acc, prev_key)
        else
          let k = slot_key t n i in
          let* () =
            check_that
              (match prev_key with None -> true | Some p -> Int64.compare p k <= 0)
              (Printf.sprintf "leaf chain unsorted at node %d slot %d" n i)
          in
          slots (i + 1) ((k, slot_payload t n i) :: acc) (Some k)
      in
      let* acc, prev_key = slots 0 acc prev_key in
      walk (next t n) acc prev_key (guard - 1)
  in
  walk (leftmost_leaf t) [] None 100_000

let distinct_keys entries =
  List.sort_uniq compare (List.map fst entries) |> List.length

(* Every leaf reachable by tree descent must be on the sibling chain: a
   clean split publishes the (fully linked) sibling before the parent ever
   learns about it, so tree coverage by the chain is invariant across all
   reachable crash states; a truncated chain violates it. *)
let tree_leaves_on_chain t =
  let chain = Hashtbl.create 64 in
  let rec follow n guard =
    if n <> 0 && guard > 0 then begin
      Hashtbl.replace chain n ();
      follow (next t n) (guard - 1)
    end
  in
  follow (leftmost_leaf t) 100_000;
  let open Util in
  let rec walk n =
    let* () = check_that (in_heap t.pool n) (Printf.sprintf "node %d outside heap" n) in
    if is_leaf t n then
      check_that (Hashtbl.mem chain n)
        (Printf.sprintf "leaf %d reachable in tree but missing from chain" n)
    else
      let* () = walk (leftmost t n) in
      check_list (fun i -> walk (Int64.to_int (slot_payload t n i))) (List.init (nslots t n) Fun.id)
  in
  walk (root t)

(* Split completion: a crash between publishing the sibling and shrinking
   the old node leaves the moved keys in both — visible as a node whose
   last key is >= its successor's first key. Recovery finishes the shrink.
   This is the FAIR "tolerate, then repair" rule. *)
let complete_interrupted_splits t =
  let rec walk n guard =
    if n <> 0 && guard > 0 then begin
      let s = next t n in
      if s <> 0 && Util.in_heap t.pool s then begin
        let m = nslots t n and ms = nslots t s in
        if m > 0 && ms > 0 then begin
          let sep = slot_key t s 0 in
          if Int64.compare (slot_key t n (m - 1)) sep >= 0 then begin
            (* clear every key >= sep, right to left, and persist *)
            let rec clear i =
              if i >= 0 && Int64.compare (slot_key t n i) sep >= 0 then begin
                write t (slot_addr n i) 0L;
                clear (i - 1)
              end
            in
            clear (m - 1);
            persist t ~off:(n + 32) ~size:(m * 16)
          end
        end
      end;
      walk s (guard - 1)
    end
  in
  walk (leftmost_leaf t) 100_000

let check t =
  let open Util in
  let* entries = chain_entries t in
  let* () = tree_leaves_on_chain t in
  check_that
    (abs (distinct_keys entries - count t) <= 1)
    (Printf.sprintf "element count mismatch: %d distinct keys, counter %d"
       (distinct_keys entries) (count t))

let recover dev =
  recover_with dev ~validate:(fun pool heap ->
      let t = open_existing pool heap in
      complete_interrupted_splits t;
      match
        let open Util in
        let* entries = chain_entries t in
        let* () = tree_leaves_on_chain t in
        Ok entries
      with
      | Error e -> Error ("fast_fair check: " ^ e)
      | Ok entries ->
          let d = distinct_keys entries in
          if d <> count t then set_count t d;
          let probe_key = 0x7FFF_FFFF_FFFF_FFFEL in
          put t ~key:probe_key ~value:9L;
          let seen = get t ~key:probe_key in
          let _ = delete t ~key:probe_key in
          if seen = Some 9L then Ok () else Error "fast_fair probe: inserted key not visible")
