(** Persistent red-black tree on pmalloc transactions — the analogue of
    PMDK's libpmemobj [rbtree] example data store.

    Classic insert with recolouring and rotations, all inside undo-log
    transactions. Deletion tombstones the node (sets a [deleted] flag)
    instead of structurally removing it, which keeps rotations out of the
    delete path; lookups skip tombstones and re-insertion revives them.

    Node layout (64 bytes = 1 chunk):
    {v 0: key  8: value  16: colour(0=black,1=red)  24: left  32: right
       40: parent  48: deleted v}

    Seeded bugs: [rbtree_fixup_no_snapshot] (rotations mutate pointers
    without undo snapshots), [rbtree_flush_volatile] (flushes a volatile
    address on every operation). *)

open Kv_intf

let name = "rbtree"
let min_pool_size = 1 lsl 21
let node_bytes = 64
let meta_bytes = 64
let nil = 0

let bug_fixup_no_snapshot =
  Bugreg.register ~id:"rbtree_fixup_no_snapshot" ~component:"rbtree"
    ~taxonomy:Bugreg.Atomicity
    ~description:"insert fixup rotations mutate child/parent pointers without snapshots"
    ~detectors:[ "mumak"; "witcher"; "agamotto"; "xfdetector" ]

let bug_flush_volatile =
  Bugreg.register ~id:"rbtree_flush_volatile" ~component:"rbtree"
    ~taxonomy:Bugreg.Redundant_flush
    ~description:"every operation flushes an address outside the pool"
    ~detectors:[ "mumak"; "agamotto"; "xfdetector" ]

let bug_redundant_fence =
  Bugreg.register ~id:"rbtree_redundant_fence" ~component:"rbtree"
    ~taxonomy:Bugreg.Redundant_fence
    ~description:"an extra sfence with nothing pending after every put"
    ~detectors:[ "mumak"; "pmdebugger"; "agamotto"; "witcher" ]

let bugs = [ bug_fixup_no_snapshot; bug_flush_volatile; bug_redundant_fence ]

type t = {
  pool : Pmalloc.Pool.t;
  heap : Pmalloc.Alloc.t;
  meta : int;
  framer : framer;
}

let read t off = Pmalloc.Pool.read_i64 t.pool ~off
let write t off v = Pmalloc.Pool.write_i64 t.pool ~off v

let key t n = read t n
let value t n = read t (n + 8)
let is_red t n = n <> nil && read t (n + 16) = 1L
let left t n = Int64.to_int (read t (n + 24))
let right t n = Int64.to_int (read t (n + 32))
let parent t n = Int64.to_int (read t (n + 40))
let is_deleted t n = read t (n + 48) = 1L

let set_key t n v = write t n v
let set_value t n v = write t (n + 8) v
let set_red t n b = write t (n + 16) (if b then 1L else 0L)
let set_left t n c = write t (n + 24) (Int64.of_int c)
let set_right t n c = write t (n + 32) (Int64.of_int c)
let set_parent t n c = write t (n + 40) (Int64.of_int c)
let set_deleted t n b = write t (n + 48) (if b then 1L else 0L)

let root t = Int64.to_int (read t t.meta)
let set_root t n = write t t.meta (Int64.of_int n)
let count t = Int64.to_int (read t (t.meta + 8))
let set_count t c = write t (t.meta + 8) (Int64.of_int c)

let snap tx n = if n <> nil then Pmalloc.Tx.add tx ~off:n ~size:node_bytes
let snap_meta tx t = Pmalloc.Tx.add tx ~off:t.meta ~size:16

let create ?(framer = null_framer) pool heap =
  let meta = Pmalloc.Alloc.alloc ~zero:true heap ~bytes:meta_bytes in
  Pmalloc.Pool.persist pool ~off:meta ~size:meta_bytes;
  Pmalloc.Pool.set_root pool ~off:meta ~size:meta_bytes;
  { pool; heap; meta; framer }

let open_existing ?(framer = null_framer) pool heap =
  match Pmalloc.Pool.root pool with
  | Some (meta, _) -> { pool; heap; meta; framer }
  | None -> invalid_arg "Rbtree.open_existing: pool has no root"

let find t k =
  let rec go n =
    if n = nil then nil
    else
      let c = Int64.compare k (key t n) in
      if c = 0 then n else if c < 0 then go (left t n) else go (right t n)
  in
  go (root t)

let get t ~key:k =
  t.framer.frame "rbtree.get" (fun () ->
      let n = find t k in
      if n = nil || is_deleted t n then None else Some (value t n))

(* --- rotations and fixup --- *)

let maybe_snap t tx n =
  if not (Bugreg.enabled bug_fixup_no_snapshot.Bugreg.id) then snap tx n
  else ignore t

let rotate_left t tx x =
  let y = right t x in
  maybe_snap t tx x;
  maybe_snap t tx y;
  let p = parent t x in
  maybe_snap t tx p;
  set_right t x (left t y);
  if left t y <> nil then begin
    maybe_snap t tx (left t y);
    set_parent t (left t y) x
  end;
  set_parent t y p;
  if p = nil then begin
    if not (Bugreg.enabled bug_fixup_no_snapshot.Bugreg.id) then snap_meta tx t;
    set_root t y
  end
  else if left t p = x then set_left t p y
  else set_right t p y;
  set_left t y x;
  set_parent t x y

let rotate_right t tx x =
  let y = left t x in
  maybe_snap t tx x;
  maybe_snap t tx y;
  let p = parent t x in
  maybe_snap t tx p;
  set_left t x (right t y);
  if right t y <> nil then begin
    maybe_snap t tx (right t y);
    set_parent t (right t y) x
  end;
  set_parent t y p;
  if p = nil then begin
    if not (Bugreg.enabled bug_fixup_no_snapshot.Bugreg.id) then snap_meta tx t;
    set_root t y
  end
  else if right t p = x then set_right t p y
  else set_left t p y;
  set_right t y x;
  set_parent t x y

let rec fixup t tx z =
  let p = parent t z in
  if p <> nil && is_red t p then begin
    let g = parent t p in
    let uncle = if left t g = p then right t g else left t g in
    if is_red t uncle then begin
      maybe_snap t tx p;
      maybe_snap t tx uncle;
      maybe_snap t tx g;
      set_red t p false;
      set_red t uncle false;
      set_red t g true;
      fixup t tx g
    end
    else if left t g = p then begin
      let z = if right t p = z then (rotate_left t tx p; p) else z in
      let p = parent t z and g = parent t (parent t z) in
      maybe_snap t tx p;
      maybe_snap t tx g;
      set_red t p false;
      set_red t g true;
      rotate_right t tx g
    end
    else begin
      let z = if left t p = z then (rotate_right t tx p; p) else z in
      let p = parent t z and g = parent t (parent t z) in
      maybe_snap t tx p;
      maybe_snap t tx g;
      set_red t p false;
      set_red t g true;
      rotate_left t tx g
    end
  end

let put t ~key:k ~value:v =
  t.framer.frame "rbtree.put" (fun () ->
      if Bugreg.enabled bug_flush_volatile.Bugreg.id then begin
        Pmem.Device.clwb (Pmalloc.Pool.device t.pool)
          ~addr:(Pmalloc.Pool.volatile_scratch_addr t.pool);
        Pmalloc.Pool.drain t.pool
      end;
      Pmalloc.Tx.run ~heap:t.heap t.pool (fun tx ->
          let existing = find t k in
          if existing <> nil then begin
            snap tx existing;
            set_value t existing v;
            if is_deleted t existing then begin
              set_deleted t existing false;
              snap_meta tx t;
              set_count t (count t + 1)
            end
          end
          else
            t.framer.frame "rbtree.insert" (fun () ->
                let z = Pmalloc.Alloc.alloc ~zero:true t.heap ~bytes:node_bytes in
                set_key t z k;
                set_value t z v;
                set_red t z true;
                Pmalloc.Pool.persist t.pool ~off:z ~size:node_bytes;
                (* descend to the attach point *)
                let rec attach n =
                  let c = Int64.compare k (key t n) in
                  if c < 0 then
                    if left t n = nil then begin
                      snap tx n;
                      set_left t n z
                    end
                    else attach (left t n)
                  else if right t n = nil then begin
                    snap tx n;
                    set_right t n z
                  end
                  else attach (right t n)
                in
                if root t = nil then begin
                  snap_meta tx t;
                  snap tx z;
                  set_red t z false;
                  set_root t z
                end
                else begin
                  let rec find_parent n =
                    let c = Int64.compare k (key t n) in
                    if c < 0 then if left t n = nil then n else find_parent (left t n)
                    else if right t n = nil then n
                    else find_parent (right t n)
                  in
                  let p = find_parent (root t) in
                  attach (root t);
                  snap tx z;
                  set_parent t z p;
                  t.framer.frame "rbtree.fixup" (fun () -> fixup t tx z);
                  (* root must stay black *)
                  let r = root t in
                  if is_red t r then begin
                    snap tx r;
                    set_red t r false
                  end
                end;
                snap_meta tx t;
                set_count t (count t + 1)));
      if Bugreg.enabled bug_redundant_fence.Bugreg.id then Pmalloc.Pool.drain t.pool)

let delete t ~key:k =
  t.framer.frame "rbtree.delete" (fun () ->
      let n = find t k in
      if n = nil || is_deleted t n then false
      else begin
        Pmalloc.Tx.run ~heap:t.heap t.pool (fun tx ->
            snap tx n;
            set_deleted t n true;
            snap_meta tx t;
            set_count t (count t - 1));
        true
      end)

(* --- consistency check --- *)

let check t =
  let open Util in
  let pool = t.pool in
  (* returns (black-height, live-count) *)
  let rec walk n ~lo ~hi =
    if n = nil then Ok (1, 0)
    else
      let* () = check_that (in_heap pool n) (Printf.sprintf "node %d outside heap" n) in
      let k = key t n in
      let* () =
        check_that
          (match lo with None -> true | Some l -> Int64.compare k l > 0)
          "BST order violated (low)"
      in
      let* () =
        check_that
          (match hi with None -> true | Some h -> Int64.compare k h < 0)
          "BST order violated (high)"
      in
      let* () =
        check_that
          (not (is_red t n && (is_red t (left t n) || is_red t (right t n))))
          (Printf.sprintf "red-red violation at node %d" n)
      in
      let* () =
        check_that
          (left t n = nil || parent t (left t n) = n)
          (Printf.sprintf "parent pointer broken at left child of %d" n)
      in
      let* () =
        check_that
          (right t n = nil || parent t (right t n) = n)
          (Printf.sprintf "parent pointer broken at right child of %d" n)
      in
      let* bh_l, c_l = walk (left t n) ~lo ~hi:(Some k) in
      let* bh_r, c_r = walk (right t n) ~lo:(Some k) ~hi in
      let* () = check_that (bh_l = bh_r) (Printf.sprintf "black height differs at node %d" n) in
      let self = if is_deleted t n then 0 else 1 in
      Ok ((bh_l + if is_red t n then 0 else 1), c_l + c_r + self)
  in
  let r = root t in
  let* () = check_that (r = nil || not (is_red t r)) "root is red" in
  let* () = check_that (r = nil || parent t r = nil) "root has a parent" in
  let* _bh, live = walk r ~lo:None ~hi:None in
  check_that (live = count t)
    (Printf.sprintf "element count mismatch: counted %d, stored %d" live (count t))

let recover dev =
  recover_with dev ~validate:(fun pool heap ->
      let t = open_existing pool heap in
      match check t with
      | Error e -> Error ("rbtree check: " ^ e)
      | Ok () ->
          let probe_key = Int64.min_int in
          put t ~key:probe_key ~value:0L;
          let seen = get t ~key:probe_key in
          let _ = delete t ~key:probe_key in
          if seen = Some 0L then Ok () else Error "rbtree probe: inserted key not visible")
