(** Persistent chained hashmap using 8-byte atomic updates, no transactions —
    the analogue of PMDK's [hashmap_atomic] example.

    Crash consistency comes from ordering: an entry is fully persisted
    before the single 8-byte bucket-head store links it, so a crash can only
    lose the in-flight operation, never corrupt the chain. The element
    counter is deliberately only eventually consistent: recovery recounts
    reachable entries and repairs it, like the original's check function.

    The bucket array is allocated {e without} an explicit zeroing request —
    correct under {!Pmalloc.Version.V1_6} (allocations are zero-filled) and
    broken from 1.8 on, which is why the evaluation excludes this structure
    on newer library versions (paper section 6.1).

    Seeded bugs: [hm_atomic_link_before_persist] (entry linked by the head
    store before its fields are flushed — invisible to program-order fault
    injection, one of the ~10% Mumak misses), [hm_atomic_count_never_flushed]
    (durability), [hm_atomic_redundant_fence] (performance). *)

open Kv_intf

let name = "hashmap_atomic"
let min_pool_size = 1 lsl 21
let nbuckets = 64
let entry_bytes = 64
let meta_bytes = 64

let bug_link_before_persist =
  Bugreg.register ~id:"hm_atomic_link_before_persist" ~component:"hashmap_atomic"
    ~taxonomy:Bugreg.Ordering
    ~description:
      "bucket head is stored before the new entry's fields are flushed; both are \
       made durable by one trailing fence, so persist order is unconstrained"
    ~detectors:[ "witcher"; "xfdetector" ]

let bug_count_never_flushed =
  Bugreg.register ~id:"hm_atomic_count_never_flushed" ~component:"hashmap_atomic"
    ~taxonomy:Bugreg.Durability
    ~description:"element counter stores are never flushed"
    ~detectors:[ "mumak"; "pmdebugger"; "xfdetector"; "agamotto"; "witcher" ]

let bug_redundant_fence =
  Bugreg.register ~id:"hm_atomic_redundant_fence" ~component:"hashmap_atomic"
    ~taxonomy:Bugreg.Redundant_fence
    ~description:"a second sfence is issued with no pending flushes"
    ~detectors:[ "mumak"; "pmdebugger"; "agamotto"; "witcher" ]

let bugs = [ bug_link_before_persist; bug_count_never_flushed; bug_redundant_fence ]

type t = {
  pool : Pmalloc.Pool.t;
  heap : Pmalloc.Alloc.t;
  meta : int;
  framer : framer;
}

let read t off = Pmalloc.Pool.read_i64 t.pool ~off
let write t off v = Pmalloc.Pool.write_i64 t.pool ~off v

let buckets_off t = Int64.to_int (read t t.meta)
let count t = Int64.to_int (read t (t.meta + 16))

let bucket_addr t i = buckets_off t + (8 * i)
let bucket_head t i = Int64.to_int (read t (bucket_addr t i))

let entry_key t e = read t e
let entry_value t e = read t (e + 8)
let entry_next t e = Int64.to_int (read t (e + 16))

let persist t ~off ~size =
  Pmalloc.Pool.persist t.pool ~off ~size;
  if Bugreg.enabled bug_redundant_fence.Bugreg.id then Pmalloc.Pool.drain t.pool

let set_count t c =
  write t (t.meta + 16) (Int64.of_int c);
  if not (Bugreg.enabled bug_count_never_flushed.Bugreg.id) then
    persist t ~off:(t.meta + 16) ~size:8

let create ?(framer = null_framer) pool heap =
  let meta = Pmalloc.Alloc.alloc ~zero:true heap ~bytes:meta_bytes in
  (* NOTE: no ~zero — relies on the 1.6 allocator zero-filling behaviour. *)
  let buckets = Pmalloc.Alloc.alloc heap ~bytes:(8 * nbuckets) in
  let t = { pool; heap; meta; framer } in
  write t meta (Int64.of_int buckets);
  write t (meta + 8) (Int64.of_int nbuckets);
  write t (meta + 16) 0L;
  persist t ~off:meta ~size:meta_bytes;
  Pmalloc.Pool.persist pool ~off:buckets ~size:(8 * nbuckets);
  Pmalloc.Pool.set_root pool ~off:meta ~size:meta_bytes;
  t

let open_existing ?(framer = null_framer) pool heap =
  match Pmalloc.Pool.root pool with
  | Some (meta, _) -> { pool; heap; meta; framer }
  | None -> invalid_arg "Hashmap_atomic.open_existing: pool has no root"

let bucket_of _t k = Util.hash_to_bucket k nbuckets

let find_entry t k =
  let rec go e = if e = 0 then None else if Int64.equal (entry_key t e) k then Some e else go (entry_next t e) in
  go (bucket_head t (bucket_of t k))

let get t ~key:k =
  t.framer.frame "hm_atomic.get" (fun () -> Option.map (entry_value t) (find_entry t k))

let put t ~key:k ~value:v =
  t.framer.frame "hm_atomic.put" (fun () ->
      match find_entry t k with
      | Some e ->
          (* in-place 8-byte atomic value update *)
          write t (e + 8) v;
          persist t ~off:(e + 8) ~size:8
      | None ->
          t.framer.frame "hm_atomic.insert" (fun () ->
              let b = bucket_of t k in
              let e = Pmalloc.Alloc.alloc t.heap ~bytes:entry_bytes in
              write t e k;
              write t (e + 8) v;
              write t (e + 16) (Int64.of_int (bucket_head t b));
              if Bugreg.enabled bug_link_before_persist.Bugreg.id then begin
                (* BUG: the head store is issued before the entry is
                   flushed; a single fence covers both flushes, leaving the
                   persist order to the hardware. *)
                write t (bucket_addr t b) (Int64.of_int e);
                Pmalloc.Pool.flush t.pool ~off:e ~size:entry_bytes;
                Pmalloc.Pool.flush t.pool ~off:(bucket_addr t b) ~size:8;
                Pmalloc.Pool.drain t.pool
              end
              else begin
                persist t ~off:e ~size:entry_bytes;
                write t (bucket_addr t b) (Int64.of_int e);
                persist t ~off:(bucket_addr t b) ~size:8
              end;
              set_count t (count t + 1)))

let delete t ~key:k =
  t.framer.frame "hm_atomic.delete" (fun () ->
      let b = bucket_of t k in
      (* the unlink recurses down the chain, so removals at different
         depths are genuinely different code paths *)
      let rec unlink prev e =
        if e = 0 then false
        else if Int64.equal (entry_key t e) k then begin
          let next = entry_next t e in
          let link_addr = match prev with None -> bucket_addr t b | Some p -> p + 16 in
          write t link_addr (Int64.of_int next);
          persist t ~off:link_addr ~size:8;
          Pmalloc.Alloc.free t.heap e;
          set_count t (count t - 1);
          true
        end
        else t.framer.frame "hm_atomic.unlink" (fun () -> unlink (Some e) (entry_next t e))
      in
      unlink None (bucket_head t b))

(* --- consistency check --- *)

let reachable_entries t =
  let seen = Hashtbl.create 256 in
  let acc = ref [] in
  let ok = ref (Ok ()) in
  for b = 0 to nbuckets - 1 do
    if !ok = Ok () then begin
      let rec go e =
        if e <> 0 then
          if not (Util.in_heap t.pool e) then
            ok := Error (Printf.sprintf "bucket %d: entry pointer %d outside heap" b e)
          else if Hashtbl.mem seen e then
            ok := Error (Printf.sprintf "bucket %d: cycle at entry %d" b e)
          else begin
            Hashtbl.replace seen e ();
            acc := e :: !acc;
            go (entry_next t e)
          end
      in
      go (bucket_head t b)
    end
  done;
  Result.map (fun () -> !acc) !ok

let check t =
  let open Util in
  let* entries = reachable_entries t in
  (* every reachable entry must hash into the bucket it hangs off *)
  check_list
    (fun e ->
      let b = bucket_of t (entry_key t e) in
      let rec on_chain x = x <> 0 && (x = e || on_chain (entry_next t x)) in
      check_that (on_chain (bucket_head t b))
        (Printf.sprintf "entry %d not reachable from its hash bucket" e))
    entries

(* Recovery: validate chains, then recount and repair the counter (the
   counter is only eventually consistent by design). *)
let recover dev =
  recover_with dev ~validate:(fun pool heap ->
      let t = open_existing pool heap in
      match check t with
      | Error e -> Error ("hashmap_atomic check: " ^ e)
      | Ok () ->
          let reachable = match reachable_entries t with Ok l -> List.length l | Error _ -> -1 in
          if reachable <> count t then begin
            write t (t.meta + 16) (Int64.of_int reachable);
            Pmalloc.Pool.persist pool ~off:(t.meta + 16) ~size:8
          end;
          let probe_key = Int64.min_int in
          put t ~key:probe_key ~value:7L;
          let seen = get t ~key:probe_key in
          let _ = delete t ~key:probe_key in
          if seen = Some 7L then Ok ()
          else Error "hashmap_atomic probe: inserted key not visible")
