(** Persistent chained hashmap with transactional updates — the analogue of
    PMDK's [hashmap_tx] example. Same structure as {!Hashmap_atomic} but
    every mutation (including the element counter) runs inside an undo-log
    transaction, so after recovery the counter must match exactly.

    Seeded bugs: [hm_tx_head_no_snapshot] (bucket head mutated without an
    undo snapshot), [hm_tx_transient_scratch] (a per-operation scratch
    record is written to PM and never flushed — PM used for transient
    data). *)

open Kv_intf

let name = "hashmap_tx"
let min_pool_size = 1 lsl 21
let nbuckets = 64
let entry_bytes = 64
let meta_bytes = 64

let bug_head_no_snapshot =
  Bugreg.register ~id:"hm_tx_head_no_snapshot" ~component:"hashmap_tx"
    ~taxonomy:Bugreg.Atomicity
    ~description:"bucket head updated inside a tx without snapshotting it first"
    ~detectors:[ "mumak"; "witcher"; "agamotto"; "xfdetector" ]

let bug_transient_scratch =
  Bugreg.register ~id:"hm_tx_transient_scratch" ~component:"hashmap_tx"
    ~taxonomy:Bugreg.Transient_data
    ~description:"per-operation scratch statistics are kept in PM but never flushed"
    ~detectors:[ "mumak"; "agamotto" ]

let bug_redundant_fence =
  Bugreg.register ~id:"hm_tx_redundant_fence" ~component:"hashmap_tx"
    ~taxonomy:Bugreg.Redundant_fence
    ~description:"an extra sfence with nothing pending after every put"
    ~detectors:[ "mumak"; "pmdebugger"; "agamotto"; "witcher" ]

let bugs = [ bug_head_no_snapshot; bug_transient_scratch; bug_redundant_fence ]

type t = {
  pool : Pmalloc.Pool.t;
  heap : Pmalloc.Alloc.t;
  meta : int;
  framer : framer;
}

let read t off = Pmalloc.Pool.read_i64 t.pool ~off
let write t off v = Pmalloc.Pool.write_i64 t.pool ~off v

let buckets_off t = Int64.to_int (read t t.meta)
let scratch_off t = Int64.to_int (read t (t.meta + 24))
let count t = Int64.to_int (read t (t.meta + 16))
let bucket_addr t i = buckets_off t + (8 * i)
let bucket_head t i = Int64.to_int (read t (bucket_addr t i))
let entry_key t e = read t e
let entry_value t e = read t (e + 8)
let entry_next t e = Int64.to_int (read t (e + 16))

let create ?(framer = null_framer) pool heap =
  let meta = Pmalloc.Alloc.alloc ~zero:true heap ~bytes:meta_bytes in
  let buckets = Pmalloc.Alloc.alloc ~zero:true heap ~bytes:(8 * nbuckets) in
  (* scratch is transient book-keeping: handed out raw, never flushed *)
  let scratch = Pmalloc.Alloc.alloc heap ~bytes:64 in
  let t = { pool; heap; meta; framer } in
  write t meta (Int64.of_int buckets);
  write t (meta + 8) (Int64.of_int nbuckets);
  write t (meta + 16) 0L;
  write t (meta + 24) (Int64.of_int scratch);
  Pmalloc.Pool.persist pool ~off:meta ~size:meta_bytes;
  Pmalloc.Pool.persist pool ~off:buckets ~size:(8 * nbuckets);
  Pmalloc.Pool.set_root pool ~off:meta ~size:meta_bytes;
  t

let open_existing ?(framer = null_framer) pool heap =
  match Pmalloc.Pool.root pool with
  | Some (meta, _) -> { pool; heap; meta; framer }
  | None -> invalid_arg "Hashmap_tx.open_existing: pool has no root"

let bucket_of _t k = Util.hash_to_bucket k nbuckets

let find_entry t k =
  let rec go e = if e = 0 then None else if Int64.equal (entry_key t e) k then Some e else go (entry_next t e) in
  go (bucket_head t (bucket_of t k))

let get t ~key:k =
  t.framer.frame "hm_tx.get" (fun () -> Option.map (entry_value t) (find_entry t k))

(* BUG (hm_tx_transient_scratch): book-keeping that belongs in DRAM is
   written to the pool and never flushed. *)
let touch_scratch t =
  if Bugreg.enabled bug_transient_scratch.Bugreg.id then
    write t (scratch_off t) (Int64.add (read t (scratch_off t)) 1L)

let put t ~key:k ~value:v =
  t.framer.frame "hm_tx.put" (fun () ->
      touch_scratch t;
      Pmalloc.Tx.run ~heap:t.heap t.pool (fun tx ->
          match find_entry t k with
          | Some e ->
              Pmalloc.Tx.add tx ~off:(e + 8) ~size:8;
              write t (e + 8) v
          | None ->
              t.framer.frame "hm_tx.insert" (fun () ->
                  let b = bucket_of t k in
                  let e = Pmalloc.Alloc.alloc ~zero:true t.heap ~bytes:entry_bytes in
                  write t e k;
                  write t (e + 8) v;
                  write t (e + 16) (Int64.of_int (bucket_head t b));
                  Pmalloc.Pool.persist t.pool ~off:e ~size:entry_bytes;
                  if not (Bugreg.enabled bug_head_no_snapshot.Bugreg.id) then
                    Pmalloc.Tx.add tx ~off:(bucket_addr t b) ~size:8;
                  write t (bucket_addr t b) (Int64.of_int e);
                  Pmalloc.Tx.add tx ~off:(t.meta + 16) ~size:8;
                  write t (t.meta + 16) (Int64.of_int (count t + 1))));
      if Bugreg.enabled bug_redundant_fence.Bugreg.id then Pmalloc.Pool.drain t.pool)

let delete t ~key:k =
  t.framer.frame "hm_tx.delete" (fun () ->
      touch_scratch t;
      let b = bucket_of t k in
      let removed = ref false in
      Pmalloc.Tx.run ~heap:t.heap t.pool (fun tx ->
          let rec unlink prev e =
            if e <> 0 then
              if Int64.equal (entry_key t e) k then begin
                let next = entry_next t e in
                let link_addr = match prev with None -> bucket_addr t b | Some p -> p + 16 in
                Pmalloc.Tx.add tx ~off:link_addr ~size:8;
                write t link_addr (Int64.of_int next);
                Pmalloc.Tx.add tx ~off:(t.meta + 16) ~size:8;
                write t (t.meta + 16) (Int64.of_int (count t - 1));
                removed := true
                (* the entry chunk is leaked on purpose: freeing inside the
                   tx would race the rollback (chunk frees are redo-logged,
                   not undo-logged) *)
              end
              else
                t.framer.frame "hm_tx.unlink" (fun () -> unlink (Some e) (entry_next t e))
          in
          unlink None (bucket_head t b));
      !removed)

let reachable_entries t =
  let seen = Hashtbl.create 256 in
  let acc = ref [] in
  let ok = ref (Ok ()) in
  for b = 0 to nbuckets - 1 do
    if !ok = Ok () then begin
      let rec go e =
        if e <> 0 then
          if not (Util.in_heap t.pool e) then
            ok := Error (Printf.sprintf "bucket %d: entry pointer %d outside heap" b e)
          else if Hashtbl.mem seen e then
            ok := Error (Printf.sprintf "bucket %d: cycle at entry %d" b e)
          else begin
            Hashtbl.replace seen e ();
            acc := e :: !acc;
            go (entry_next t e)
          end
      in
      go (bucket_head t b)
    end
  done;
  Result.map (fun () -> !acc) !ok

(* Transactional variant: the persisted counter must match exactly. *)
let check t =
  let open Util in
  let* entries = reachable_entries t in
  check_that
    (List.length entries = count t)
    (Printf.sprintf "element count mismatch: counted %d, stored %d" (List.length entries)
       (count t))

let recover dev =
  recover_with dev ~validate:(fun pool heap ->
      let t = open_existing pool heap in
      match check t with
      | Error e -> Error ("hashmap_tx check: " ^ e)
      | Ok () ->
          let probe_key = Int64.min_int in
          put t ~key:probe_key ~value:7L;
          let seen = get t ~key:probe_key in
          let _ = delete t ~key:probe_key in
          if seen = Some 7L then Ok () else Error "hashmap_tx probe: inserted key not visible")
