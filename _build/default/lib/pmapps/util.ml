(** Shared helpers for the persistent data structures. *)

(* SplitMix64: a fast, well-distributed 64-bit mixer used as the hash
   function of the hash-based structures. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash_to_bucket key nbuckets =
  Int64.to_int (Int64.rem (Int64.logand (mix64 key) Int64.max_int) (Int64.of_int nbuckets))

(* Bounds helpers used by structural checks: a pointer stored in PM must
   land inside the heap to be followed. *)
let heap_range pool =
  let layout = Pmalloc.Pool.layout pool in
  ( layout.Pmalloc.Layout.heap_off,
    layout.Pmalloc.Layout.heap_off
    + (layout.Pmalloc.Layout.chunk_count * Pmalloc.Layout.chunk_size) )

let in_heap pool addr =
  let lo, hi = heap_range pool in
  addr >= lo && addr < hi

(* A tiny result-monad helper for writing structural checks. *)
let ( let* ) r f = Result.bind r f

let check_that cond msg = if cond then Ok () else Error msg

let rec check_list f = function
  | [] -> Ok ()
  | x :: rest ->
      let* () = f x in
      check_list f rest
