(** WORT-style persistent radix tree (Write-Optimal Radix Tree, FAST'17).

    Fixed-depth radix over the low 32 bits of the key, 4 bits per level
    (8 levels). The write-optimality property WORT is built around: every
    structural update boils down to a single 8-byte atomic child-pointer
    store, so no logging is needed. The global element counter is only
    eventually consistent; recovery recounts and repairs it.

    Node layout (192 bytes): 16 child pointers (128B). Leaf layout
    (64 bytes): key, value.

    Seeded bugs: [wort_link_uninitialized_node] (a freshly allocated interior
    node is linked into the tree before its pointer array is initialised —
    the crash window exposes poison pointers, the class of bug Mumak found
    in PMDK's libart, section 6.4), [wort_leaf_unflushed] (leaf linked
    before being flushed; persist order left to the hardware — invisible to
    program-order fault injection). *)

open Kv_intf

let name = "wort"
let min_pool_size = 1 lsl 22
let levels = 8
let node_bytes = 192
let leaf_bytes = 64
let meta_bytes = 64

let bug_link_uninitialized_node =
  Bugreg.register ~id:"wort_link_uninitialized_node" ~component:"wort"
    ~taxonomy:Bugreg.Atomicity
    ~description:
      "fresh interior node linked into the tree before its child array is \
       initialised; a crash in the window leaves poison pointers reachable"
    ~detectors:[ "mumak"; "witcher"; "agamotto"; "xfdetector" ]

let bug_leaf_unflushed =
  Bugreg.register ~id:"wort_leaf_unflushed" ~component:"wort" ~taxonomy:Bugreg.Ordering
    ~description:"leaf key/value are linked before being flushed; one fence covers both"
    ~detectors:[ "witcher"; "xfdetector" ]

let bug_redundant_flush =
  Bugreg.register ~id:"wort_redundant_flush" ~component:"wort"
    ~taxonomy:Bugreg.Redundant_flush
    ~description:"the freshly persisted leaf is flushed a second time"
    ~detectors:[ "mumak"; "pmdebugger"; "agamotto"; "witcher" ]

let bugs = [ bug_link_uninitialized_node; bug_leaf_unflushed; bug_redundant_flush ]

type t = {
  pool : Pmalloc.Pool.t;
  heap : Pmalloc.Alloc.t;
  meta : int; (* root node pointer + global count *)
  framer : framer;
}

let read t off = Pmalloc.Pool.read_i64 t.pool ~off
let write t off v = Pmalloc.Pool.write_i64 t.pool ~off v
let persist t ~off ~size = Pmalloc.Pool.persist t.pool ~off ~size

let root t = Int64.to_int (read t t.meta)
let count t = Int64.to_int (read t (t.meta + 8))

let child_addr node i = node + (8 * i)
let child t node i = Int64.to_int (read t (child_addr node i))
let leaf_key t l = read t l
let leaf_value t l = read t (l + 8)

let nibble key level =
  Int64.to_int (Int64.logand (Int64.shift_right_logical key (4 * (levels - 1 - level))) 0xFL)

let alloc_node t =
  let n = Pmalloc.Alloc.alloc ~zero:true t.heap ~bytes:node_bytes in
  persist t ~off:n ~size:node_bytes;
  n

let create ?(framer = null_framer) pool heap =
  let meta = Pmalloc.Alloc.alloc ~zero:true heap ~bytes:meta_bytes in
  let t = { pool; heap; meta; framer } in
  let r = alloc_node t in
  write t meta (Int64.of_int r);
  write t (meta + 8) 0L;
  persist t ~off:meta ~size:meta_bytes;
  Pmalloc.Pool.set_root pool ~off:meta ~size:meta_bytes;
  t

let open_existing ?(framer = null_framer) pool heap =
  match Pmalloc.Pool.root pool with
  | Some (meta, _) -> { pool; heap; meta; framer }
  | None -> invalid_arg "Wort.open_existing: pool has no root"

(* Truncate keys to the radix domain: the structure indexes low 32 bits. *)
let radix_key k = Int64.logand k 0xFFFF_FFFFL

let get t ~key:k =
  t.framer.frame "wort.get" (fun () ->
      let k = radix_key k in
      let rec go node level =
        if node = 0 then None
        else if level = levels then
          if Int64.equal (leaf_key t node) k then Some (leaf_value t node) else None
        else go (child t node (nibble k level)) (level + 1)
      in
      go (root t) 0)

let set_global_count t c =
  write t (t.meta + 8) (Int64.of_int c);
  persist t ~off:(t.meta + 8) ~size:8

(* Grow an interior node under [node] slot [i]. The single 8-byte pointer
   store is the atomic commit; the fresh node must be fully persisted
   before it. *)
let grow t node i =
  t.framer.frame "wort.grow" (fun () ->
      if Bugreg.enabled bug_link_uninitialized_node.Bugreg.id then begin
        (* BUG: raw allocation linked first, initialised afterwards *)
        let fresh = Pmalloc.Alloc.alloc t.heap ~bytes:node_bytes in
        write t (child_addr node i) (Int64.of_int fresh);
        persist t ~off:(child_addr node i) ~size:8;
        Pmalloc.Pool.write_bytes t.pool ~off:fresh (Bytes.make node_bytes '\000');
        persist t ~off:fresh ~size:node_bytes;
        fresh
      end
      else begin
        let fresh = alloc_node t in
        write t (child_addr node i) (Int64.of_int fresh);
        persist t ~off:(child_addr node i) ~size:8;
        fresh
      end)

let put t ~key:k ~value:v =
  t.framer.frame "wort.put" (fun () ->
      let k = radix_key k in
      let rec go node level =
        let i = nibble k level in
        if level = levels - 1 then begin
          let existing = child t node i in
          if existing <> 0 && Int64.equal (leaf_key t existing) k then begin
            (* in-place atomic value update *)
            write t (existing + 8) v;
            persist t ~off:(existing + 8) ~size:8
          end
          else
            t.framer.frame "wort.insert_leaf" (fun () ->
                let leaf = Pmalloc.Alloc.alloc ~zero:true t.heap ~bytes:leaf_bytes in
                write t leaf k;
                write t (leaf + 8) v;
                if Bugreg.enabled bug_leaf_unflushed.Bugreg.id then begin
                  (* BUG: linked before flushed; one fence covers both *)
                  write t (child_addr node i) (Int64.of_int leaf);
                  Pmalloc.Pool.flush t.pool ~off:leaf ~size:16;
                  Pmalloc.Pool.flush t.pool ~off:(child_addr node i) ~size:8;
                  Pmalloc.Pool.drain t.pool
                end
                else begin
                  persist t ~off:leaf ~size:16;
                  if Bugreg.enabled bug_redundant_flush.Bugreg.id then
                    persist t ~off:leaf ~size:16;
                  write t (child_addr node i) (Int64.of_int leaf);
                  persist t ~off:(child_addr node i) ~size:8
                end;
                set_global_count t (count t + 1))
        end
        else begin
          let next = child t node i in
          let next = if next <> 0 then next else grow t node i in
          go next (level + 1)
        end
      in
      go (root t) 0)

let delete t ~key:k =
  t.framer.frame "wort.delete" (fun () ->
      let k = radix_key k in
      let rec go node level =
        if node = 0 then false
        else
          let i = nibble k level in
          if level = levels - 1 then begin
            let leaf = child t node i in
            if leaf <> 0 && Int64.equal (leaf_key t leaf) k then begin
              write t (child_addr node i) 0L;
              persist t ~off:(child_addr node i) ~size:8;
              set_global_count t (count t - 1);
              Pmalloc.Alloc.free t.heap leaf;
              true
            end
            else false
          end
          else go (child t node i) (level + 1)
      in
      go (root t) 0)

(* --- consistency check --- *)

(* Walks the whole tree; returns the number of leaves. Fails on pointers
   outside the heap or leaves whose key disagrees with their position. *)
let count_leaves t =
  let open Util in
  let rec walk node level =
    let* () = check_that (in_heap t.pool node) (Printf.sprintf "node %d outside heap" node) in
    let rec each i total =
      if i = 16 then Ok total
      else
        let c = child t node i in
        if c = 0 then each (i + 1) total
        else if level = levels - 1 then
          let* () = check_that (in_heap t.pool c) (Printf.sprintf "leaf %d outside heap" c) in
          let* () =
            check_that
              (nibble (leaf_key t c) level = i)
              (Printf.sprintf "leaf %d misplaced under node %d slot %d" c node i)
          in
          each (i + 1) (total + 1)
        else
          let* sub = walk c (level + 1) in
          each (i + 1) (total + sub)
    in
    each 0 0
  in
  (* also validate the leaf path prefix: a leaf's key must route to it *)
  walk (root t) 0

let check t =
  let open Util in
  let* total = count_leaves t in
  (* the global counter may be one off due to an in-flight operation *)
  check_that
    (abs (total - count t) <= 1)
    (Printf.sprintf "element count mismatch: counted %d, stored %d" total (count t))

let recover dev =
  recover_with dev ~validate:(fun pool heap ->
      let t = open_existing pool heap in
      match count_leaves t with
      | Error e -> Error ("wort check: " ^ e)
      | Ok total ->
          (* repair the eventually-consistent counter *)
          if total <> count t then set_global_count t total;
          let probe_key = 0xFFFF_FFFFL in
          put t ~key:probe_key ~value:1L;
          let seen = get t ~key:probe_key in
          let _ = delete t ~key:probe_key in
          if seen = Some 1L then Ok () else Error "wort probe: inserted key not visible")
