(** Central registry of applications under test and their seeded bugs.

    The coverage experiment (paper section 6.2) uses {!all_bugs} as the
    ground-truth bug list — the analogue of the Witcher bug list — and
    {!apps} as the application suite. *)

let apps : Kv_intf.app list =
  [
    (module Btree);
    (module Rbtree);
    (module Hashmap_atomic);
    (module Hashmap_tx);
    (module Wort);
    (module Level_hash);
    (module Cceh);
    (module Fast_fair);
    (module Art);
  ]

let find name =
  List.find_opt (fun (module A : Kv_intf.S) -> String.equal A.name name) apps

let all_bugs =
  Btree.bugs @ Rbtree.bugs @ Hashmap_atomic.bugs @ Hashmap_tx.bugs @ Wort.bugs
  @ Level_hash.bugs @ Cceh.bugs @ Fast_fair.bugs @ Art.bugs

let bugs_for component =
  List.filter (fun b -> String.equal b.Bugreg.component component) all_bugs

let correctness_bugs = List.filter (fun b -> Bugreg.is_correctness b.Bugreg.taxonomy) all_bugs
let performance_bugs =
  List.filter (fun b -> not (Bugreg.is_correctness b.Bugreg.taxonomy)) all_bugs
