(** Level-Hashing-style persistent hash table (OSDI'18).

    Two bucket levels (top 2^L, bottom 2^(L-1)), two hash positions per
    level, 4 slots per bucket. Slot commit is token-based: the key/value
    pair is persisted first, then a one-byte token marks the slot live.

    Bucket layout (128 bytes = 2 cache lines):
    {v line 0:  0..3 tokens[4]   8+8i keys[4]
       line 1:  64+8i values[4] v}
    Values live in their own cache line so the token/key line and the value
    line must each be flushed — the seeded durability bug forgets the
    second.

    Faithful to the paper's section 6.2 story, the {e stock} recovery
    procedure does nothing (the original Level Hashing has none), which
    blinds a recovery-as-oracle tool. Setting {!use_enhanced_recovery} adds
    the ~20-line recovery the Mumak authors wrote: count live tokens and
    compare against the persisted element counter.

    Seeded bugs: [level_hash_token_before_kv] (atomicity),
    [level_hash_value_unflushed] (durability), [level_hash_count_unpersisted]
    (durability), [level_hash_redundant_flush] and
    [level_hash_redundant_fence] (performance). *)

open Kv_intf

let name = "level_hash"
let min_pool_size = 1 lsl 21
let top_buckets = 512
let bottom_buckets = 256
let slots_per_bucket = 4
let bucket_bytes = 128
let meta_bytes = 64

(** The original structure ships without a recovery procedure; flip this to
    enable the counter-checking recovery of paper section 6.2. *)
let use_enhanced_recovery = ref false

let bug_token_before_kv =
  Bugreg.register ~id:"level_hash_token_before_kv" ~component:"level_hash"
    ~taxonomy:Bugreg.Atomicity
    ~description:"slot token persisted before the key/value pair is written"
    ~detectors:[ "mumak"; "witcher" ]

let bug_value_unflushed =
  Bugreg.register ~id:"level_hash_value_unflushed" ~component:"level_hash"
    ~taxonomy:Bugreg.Durability
    ~description:"the value cache line is never flushed on insert"
    ~detectors:[ "mumak"; "pmdebugger"; "xfdetector"; "agamotto"; "witcher" ]

let bug_count_unpersisted =
  Bugreg.register ~id:"level_hash_count_unpersisted" ~component:"level_hash"
    ~taxonomy:Bugreg.Durability
    ~description:"element counter stores are never flushed"
    ~detectors:[ "mumak"; "pmdebugger"; "xfdetector"; "agamotto"; "witcher" ]

let bug_redundant_flush =
  Bugreg.register ~id:"level_hash_redundant_flush" ~component:"level_hash"
    ~taxonomy:Bugreg.Redundant_flush
    ~description:"the token line is flushed twice on insert"
    ~detectors:[ "mumak"; "pmdebugger"; "agamotto"; "witcher" ]

let bug_redundant_fence =
  Bugreg.register ~id:"level_hash_redundant_fence" ~component:"level_hash"
    ~taxonomy:Bugreg.Redundant_fence
    ~description:"an extra sfence with nothing pending after every insert"
    ~detectors:[ "mumak"; "pmdebugger"; "agamotto"; "witcher" ]

let bugs =
  [ bug_token_before_kv; bug_value_unflushed; bug_count_unpersisted;
    bug_redundant_flush; bug_redundant_fence ]

type t = {
  pool : Pmalloc.Pool.t;
  heap : Pmalloc.Alloc.t;
  meta : int; (* top array addr, bottom array addr, count *)
  framer : framer;
}

exception Table_full

let read t off = Pmalloc.Pool.read_i64 t.pool ~off
let write t off v = Pmalloc.Pool.write_i64 t.pool ~off v

let top_off t = Int64.to_int (read t t.meta)
let bottom_off t = Int64.to_int (read t (t.meta + 8))
let count t = Int64.to_int (read t (t.meta + 16))

let bucket_addr t ~level ~idx =
  (if level = 0 then top_off t else bottom_off t) + (idx * bucket_bytes)

let token t b s = Pmalloc.Pool.read_u8 t.pool ~off:(b + s)
let set_token t b s v = Pmalloc.Pool.write_u8 t.pool ~off:(b + s) v
let slot_key t b s = read t (b + 8 + (8 * s))
let set_slot_key t b s v = write t (b + 8 + (8 * s)) v
let slot_value t b s = read t (b + 64 + (8 * s))
let set_slot_value t b s v = write t (b + 64 + (8 * s)) v

let create ?(framer = null_framer) pool heap =
  let meta = Pmalloc.Alloc.alloc ~zero:true heap ~bytes:meta_bytes in
  let top = Pmalloc.Alloc.alloc ~zero:true heap ~bytes:(top_buckets * bucket_bytes) in
  let bottom = Pmalloc.Alloc.alloc ~zero:true heap ~bytes:(bottom_buckets * bucket_bytes) in
  let t = { pool; heap; meta; framer } in
  write t meta (Int64.of_int top);
  write t (meta + 8) (Int64.of_int bottom);
  write t (meta + 16) 0L;
  Pmalloc.Pool.persist pool ~off:meta ~size:meta_bytes;
  Pmalloc.Pool.set_root pool ~off:meta ~size:meta_bytes;
  t

let open_existing ?(framer = null_framer) pool heap =
  match Pmalloc.Pool.root pool with
  | Some (meta, _) -> { pool; heap; meta; framer }
  | None -> invalid_arg "Level_hash.open_existing: pool has no root"

(* The four candidate buckets of a key: two hash positions on each level. *)
let candidates t k =
  let h1 = Util.mix64 k and h2 = Util.mix64 (Int64.logxor k 0x5bd1e995L) in
  let idx h m = Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int m)) in
  [
    bucket_addr t ~level:0 ~idx:(idx h1 top_buckets);
    bucket_addr t ~level:0 ~idx:(idx h2 top_buckets);
    bucket_addr t ~level:1 ~idx:(idx h1 bottom_buckets);
    bucket_addr t ~level:1 ~idx:(idx h2 bottom_buckets);
  ]

let find_slot t k =
  let rec scan = function
    | [] -> None
    | b :: rest ->
        let rec slots s =
          if s = slots_per_bucket then scan rest
          else if token t b s = 1 && Int64.equal (slot_key t b s) k then Some (b, s)
          else slots (s + 1)
        in
        slots 0
  in
  scan (candidates t k)

let get t ~key:k =
  t.framer.frame "level_hash.get" (fun () ->
      Option.map (fun (b, s) -> slot_value t b s) (find_slot t k))

let set_count t c =
  write t (t.meta + 16) (Int64.of_int c);
  if not (Bugreg.enabled bug_count_unpersisted.Bugreg.id) then
    Pmalloc.Pool.persist t.pool ~off:(t.meta + 16) ~size:8

let insert_into t b s k v =
  if Bugreg.enabled bug_token_before_kv.Bugreg.id then begin
    (* BUG: the token goes live before the pair is written *)
    set_token t b s 1;
    Pmalloc.Pool.persist t.pool ~off:(b + s) ~size:1;
    set_slot_key t b s k;
    set_slot_value t b s v;
    Pmalloc.Pool.persist t.pool ~off:(b + 8 + (8 * s)) ~size:8;
    Pmalloc.Pool.persist t.pool ~off:(b + 64 + (8 * s)) ~size:8
  end
  else begin
    set_slot_key t b s k;
    set_slot_value t b s v;
    (* key line and value line are distinct cache lines *)
    Pmalloc.Pool.flush t.pool ~off:(b + 8 + (8 * s)) ~size:8;
    if not (Bugreg.enabled bug_value_unflushed.Bugreg.id) then
      Pmalloc.Pool.flush t.pool ~off:(b + 64 + (8 * s)) ~size:8;
    Pmalloc.Pool.drain t.pool;
    set_token t b s 1;
    Pmalloc.Pool.flush t.pool ~off:(b + s) ~size:1;
    if Bugreg.enabled bug_redundant_flush.Bugreg.id then
      Pmalloc.Pool.flush t.pool ~off:(b + s) ~size:1;
    Pmalloc.Pool.drain t.pool
  end;
  if Bugreg.enabled bug_redundant_fence.Bugreg.id then Pmalloc.Pool.drain t.pool;
  set_count t (count t + 1)

let put t ~key:k ~value:v =
  t.framer.frame "level_hash.put" (fun () ->
      match find_slot t k with
      | Some (b, s) ->
          (* in-place atomic value update *)
          set_slot_value t b s v;
          Pmalloc.Pool.persist t.pool ~off:(b + 64 + (8 * s)) ~size:8
      | None ->
          t.framer.frame "level_hash.insert" (fun () ->
              let rec try_buckets = function
                | [] -> raise Table_full
                | b :: rest ->
                    let rec slots s =
                      if s = slots_per_bucket then try_buckets rest
                      else if token t b s = 0 then insert_into t b s k v
                      else slots (s + 1)
                    in
                    slots 0
              in
              try_buckets (candidates t k)))

let delete t ~key:k =
  t.framer.frame "level_hash.delete" (fun () ->
      match find_slot t k with
      | None -> false
      | Some (b, s) ->
          set_token t b s 0;
          Pmalloc.Pool.persist t.pool ~off:(b + s) ~size:1;
          set_count t (count t - 1);
          true)

(* --- consistency checking --- *)

let live_slots t =
  let total = ref 0 in
  let each_bucket base n =
    for i = 0 to n - 1 do
      let b = base + (i * bucket_bytes) in
      for s = 0 to slots_per_bucket - 1 do
        if token t b s = 1 then incr total
      done
    done
  in
  each_bucket (top_off t) top_buckets;
  each_bucket (bottom_off t) bottom_buckets;
  !total

(* Every live slot's key must hash to the bucket holding it. A clean
   insert only raises the token after the pair is durable, so this holds in
   every reachable crash state; a token that went live early violates it. *)
let placement_ok t =
  let ok = ref (Ok ()) in
  let each_bucket base n =
    for i = 0 to n - 1 do
      let b = base + (i * bucket_bytes) in
      for s = 0 to slots_per_bucket - 1 do
        if token t b s = 1 && !ok = Ok () then
          if not (List.mem b (candidates t (slot_key t b s))) then
            ok :=
              Error
                (Printf.sprintf "live slot %d/%d holds key %Ld that does not hash here" b
                   s (slot_key t b s))
      done
    done
  in
  each_bucket (top_off t) top_buckets;
  each_bucket (bottom_off t) bottom_buckets;
  !ok

let check t =
  let open Util in
  let* () = placement_ok t in
  let live = live_slots t in
  check_that
    (abs (live - count t) <= 1)
    (Printf.sprintf "element count mismatch: %d live slots, counter %d" live (count t))

(* Stock recovery: does nothing at the structure level, like the original
   Level Hashing (paper section 6.2). The enhanced variant is the ~20-line
   counter check the authors added. *)
let recover dev =
  recover_with dev ~validate:(fun pool heap ->
      let t = open_existing pool heap in
      if not !use_enhanced_recovery then Ok ()
      else
        match check t with
        | Error e -> Error ("level_hash enhanced recovery: " ^ e)
        | Ok () ->
            let probe_key = Int64.min_int in
            put t ~key:probe_key ~value:3L;
            let seen = get t ~key:probe_key in
            let _ = delete t ~key:probe_key in
            if seen = Some 3L then Ok ()
            else Error "level_hash probe: inserted key not visible")
