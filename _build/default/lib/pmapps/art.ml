(** Persistent Adaptive Radix Tree — the analogue of PMDK's libart example,
    the structure in which Mumak found the count/children inconsistency
    (pmem/pmdk issue 5512, paper section 6.4).

    Byte-wise radix over the little-endian bytes of the key, with ART's
    adaptive node sizes: a node starts as a Node4, grows to Node16 and then
    Node256 by copy-then-atomic-pointer-swap. Leaves are tagged pointers
    (low bit set) holding the full key, so lazy expansion applies: a leaf
    sits as high as its key is unambiguous, and a conflict pushes both
    leaves one byte deeper.

    Every mutation is a single 8-byte atomic pointer store over fully
    persisted data; each node maintains a child counter whose invariant
    ([count <= populated <= count + 1]) the recovery procedure checks —
    inserts persist the child pointer {e before} bumping the counter, so a
    crash can only leave the counter one behind.

    Seeded bugs: [art_count_before_child] (the libart bug: the counter is
    persisted before the child pointer; a crash in the window leaves
    [count > populated] and later insertions account children that do not
    exist), [art_grow_unpersisted] (the grown replacement node is linked
    before it is flushed). *)

open Kv_intf

let name = "art"
let min_pool_size = 1 lsl 22
let meta_bytes = 64

let tag_node4 = 4L
let tag_node16 = 16L
let tag_node256 = 256L

let bug_count_before_child =
  Bugreg.register ~id:"art_count_before_child" ~component:"art" ~taxonomy:Bugreg.Atomicity
    ~description:
      "node child counter persisted before the child pointer (the libart bug): a crash \
       in the window strands count > populated children"
    ~detectors:[ "mumak"; "witcher"; "agamotto"; "xfdetector" ]

let bug_grow_swap_before_copy =
  Bugreg.register ~id:"art_grow_swap_before_copy" ~component:"art"
    ~taxonomy:Bugreg.Atomicity
    ~description:
      "node growth publishes the replacement before copying the children into it; a \
       crash in the window orphans the whole subtree"
    ~detectors:[ "mumak"; "witcher"; "agamotto"; "xfdetector" ]

let bugs = [ bug_count_before_child; bug_grow_swap_before_copy ]

type t = {
  pool : Pmalloc.Pool.t;
  heap : Pmalloc.Alloc.t;
  meta : int; (* root pointer + global count *)
  framer : framer;
}

let read t off = Pmalloc.Pool.read_i64 t.pool ~off
let write t off v = Pmalloc.Pool.write_i64 t.pool ~off v
let persist t ~off ~size = Pmalloc.Pool.persist t.pool ~off ~size

(* --- tagged pointers: low bit set = leaf --- *)

let is_leaf p = p land 1 = 1
let leaf_addr p = p land lnot 1
let tag_leaf addr = addr lor 1

(* --- leaves: key, value, deleted flag (32 bytes, chunk-rounded) --- *)

let leaf_key t l = read t (leaf_addr l)
let leaf_value t l = read t (leaf_addr l + 8)
let leaf_deleted t l = read t (leaf_addr l + 16) = 1L

let alloc_leaf t ~key ~value =
  let l = Pmalloc.Alloc.alloc ~zero:true t.heap ~bytes:32 in
  write t l key;
  write t (l + 8) value;
  persist t ~off:l ~size:32;
  tag_leaf l

(* --- nodes ---
   header: type tag @0, child count @8
   Node4:   keys 4x1B @16, children 4x8B @24  (64 bytes)
   Node16:  keys 16x1B @16, children 16x8B @32 (192 bytes)
   Node256: children 256x8B @16 (2112 bytes) *)

let node_tag t n = read t n
let node_count t n = Int64.to_int (read t (n + 8))

let node_bytes tag =
  if Int64.equal tag tag_node4 then 64
  else if Int64.equal tag tag_node16 then 192
  else 2112

let key_slot_off tag = if Int64.equal tag tag_node4 then 16 else 16
let child_slot_off tag i =
  if Int64.equal tag tag_node4 then 24 + (8 * i)
  else if Int64.equal tag tag_node16 then 32 + (8 * i)
  else 16 + (8 * i)

let capacity tag =
  if Int64.equal tag tag_node4 then 4 else if Int64.equal tag tag_node16 then 16 else 256

let alloc_node t tag =
  let n = Pmalloc.Alloc.alloc ~zero:true t.heap ~bytes:(node_bytes tag) in
  write t n tag;
  persist t ~off:n ~size:(node_bytes tag);
  n

(* populated children of a node, as (byte, slot address, pointer) *)
let children t n =
  let tag = node_tag t n in
  if Int64.equal tag tag_node256 then
    List.filter_map
      (fun b ->
        let slot = n + child_slot_off tag b in
        let p = Int64.to_int (read t slot) in
        if p = 0 then None else Some (b, slot, p))
      (List.init 256 Fun.id)
  else
    (* the first [count] sorted slots; a crash may have populated one more *)
    List.filter_map
      (fun i ->
        let slot = n + child_slot_off tag i in
        let p = Int64.to_int (read t slot) in
        if p = 0 then None
        else Some (Pmalloc.Pool.read_u8 t.pool ~off:(n + key_slot_off tag + i), slot, p))
      (List.init (capacity tag) Fun.id)

let find_child t n byte =
  let tag = node_tag t n in
  if Int64.equal tag tag_node256 then
    let slot = n + child_slot_off tag byte in
    let p = Int64.to_int (read t slot) in
    if p = 0 then None else Some (slot, p)
  else
    List.find_map
      (fun (b, slot, p) -> if b = byte then Some (slot, p) else None)
      (children t n)

let key_byte key depth = Int64.to_int (Int64.shift_right_logical key (8 * depth)) land 0xff

(* --- lifecycle --- *)

let create ?(framer = null_framer) pool heap =
  let meta = Pmalloc.Alloc.alloc ~zero:true heap ~bytes:meta_bytes in
  let t = { pool; heap; meta; framer } in
  let root = alloc_node t tag_node4 in
  write t meta (Int64.of_int root);
  write t (meta + 8) 0L;
  persist t ~off:meta ~size:meta_bytes;
  Pmalloc.Pool.set_root pool ~off:meta ~size:meta_bytes;
  t

let open_existing ?(framer = null_framer) pool heap =
  match Pmalloc.Pool.root pool with
  | Some (meta, _) -> { pool; heap; meta; framer }
  | None -> invalid_arg "Art.open_existing: pool has no root"

let root t = Int64.to_int (read t t.meta)
let count t = Int64.to_int (read t (t.meta + 8))

let set_global_count t c =
  write t (t.meta + 8) (Int64.of_int c);
  persist t ~off:(t.meta + 8) ~size:8

(* --- search --- *)

let rec find t p ~key ~depth =
  if p = 0 then None
  else if is_leaf p then if Int64.equal (leaf_key t p) key then Some p else None
  else
    match find_child t p (key_byte key depth) with
    | None -> None
    | Some (_, child) -> find t child ~key ~depth:(depth + 1)

let get t ~key =
  t.framer.frame "art.get" (fun () ->
      match find t (root t) ~key ~depth:0 with
      | Some l when not (leaf_deleted t l) -> Some (leaf_value t l)
      | Some _ | None -> None)

(* --- insertion --- *)

exception Node_full

(* Publish [child] under [byte] in [n]: the pointer store is the atomic
   commit; the counter follows. The seeded libart bug reverses the order. *)
let add_child t n ~byte ~child =
  let tag = node_tag t n in
  let cnt = node_count t n in
  if cnt >= capacity tag then raise Node_full;
  let bump () =
    write t (n + 8) (Int64.of_int (cnt + 1));
    persist t ~off:(n + 8) ~size:8
  in
  let publish () =
    if Int64.equal tag tag_node256 then begin
      write t (n + child_slot_off tag byte) (Int64.of_int child);
      persist t ~off:(n + child_slot_off tag byte) ~size:8
    end
    else begin
      Pmalloc.Pool.write_u8 t.pool ~off:(n + key_slot_off tag + cnt) byte;
      persist t ~off:(n + key_slot_off tag + cnt) ~size:1;
      write t (n + child_slot_off tag cnt) (Int64.of_int child);
      persist t ~off:(n + child_slot_off tag cnt) ~size:8
    end
  in
  if Bugreg.enabled bug_count_before_child.Bugreg.id then begin
    (* BUG (libart): the counter races ahead of the child pointer *)
    bump ();
    publish ()
  end
  else begin
    publish ();
    bump ()
  end

(* Swap the pointer at [link] (the parent's slot, or the meta root) from the
   old node to [fresh]: one atomic 8-byte store. *)
let swap_link t ~link ~fresh =
  write t link (Int64.of_int fresh);
  persist t ~off:link ~size:8

(* Grow [n] to the next node size; returns the replacement, fully persisted
   and ready to swap in. The seeded bug publishes the replacement first and
   fills it in afterwards — the crash window orphans the subtree. *)
let grow t ~link n =
  t.framer.frame "art.grow" (fun () ->
      let tag = node_tag t n in
      let bigger = if Int64.equal tag tag_node4 then tag_node16 else tag_node256 in
      let fresh = alloc_node t bigger in
      if Bugreg.enabled bug_grow_swap_before_copy.Bugreg.id then
        (* BUG: the empty replacement goes live before the copy *)
        swap_link t ~link ~fresh;
      List.iter
        (fun (b, _, p) ->
          if Int64.equal bigger tag_node256 then
            write t (fresh + child_slot_off bigger b) (Int64.of_int p)
          else begin
            let i = node_count t fresh in
            Pmalloc.Pool.write_u8 t.pool ~off:(fresh + key_slot_off bigger + i) b;
            write t (fresh + child_slot_off bigger i) (Int64.of_int p);
            write t (fresh + 8) (Int64.of_int (i + 1))
          end)
        (children t n);
      if Int64.equal bigger tag_node256 then
        write t (fresh + 8) (Int64.of_int (node_count t n));
      persist t ~off:fresh ~size:(node_bytes bigger);
      if not (Bugreg.enabled bug_grow_swap_before_copy.Bugreg.id) then
        swap_link t ~link ~fresh;
      fresh)

let rec insert t ~link ~node ~key ~value ~depth =
  match find_child t node (key_byte key depth) with
  | Some (slot, p) when is_leaf p ->
      if Int64.equal (leaf_key t p) key then begin
        (* in-place atomic update / revive *)
        let l = leaf_addr p in
        write t (l + 8) value;
        persist t ~off:(l + 8) ~size:8;
        if leaf_deleted t p then begin
          write t (l + 16) 0L;
          persist t ~off:(l + 16) ~size:8;
          set_global_count t (count t + 1)
        end
      end
      else
        (* conflict: push both leaves one byte deeper *)
        t.framer.frame "art.split_leaf" (fun () ->
            let fresh = alloc_node t tag_node4 in
            add_child t fresh ~byte:(key_byte (leaf_key t p) (depth + 1)) ~child:p;
            persist t ~off:fresh ~size:64;
            swap_link t ~link:slot ~fresh;
            insert t ~link:slot ~node:fresh ~key ~value ~depth:(depth + 1))
  | Some (slot, child) -> insert t ~link:slot ~node:child ~key ~value ~depth:(depth + 1)
  | None -> (
      let leaf = alloc_leaf t ~key ~value in
      match add_child t node ~byte:(key_byte key depth) ~child:leaf with
      | () -> set_global_count t (count t + 1)
      | exception Node_full ->
          t.framer.frame "art.grow_and_retry" (fun () ->
              let fresh = grow t ~link node in
              add_child t fresh ~byte:(key_byte key depth) ~child:leaf;
              set_global_count t (count t + 1)))

let put t ~key ~value =
  t.framer.frame "art.put" (fun () ->
      insert t ~link:t.meta ~node:(root t) ~key ~value ~depth:0)

let delete t ~key =
  t.framer.frame "art.delete" (fun () ->
      match find t (root t) ~key ~depth:0 with
      | Some l when not (leaf_deleted t l) ->
          write t (leaf_addr l + 16) 1L;
          persist t ~off:(leaf_addr l + 16) ~size:8;
          set_global_count t (count t - 1);
          true
      | Some _ | None -> false)

(* --- consistency checking --- *)

(* Walk the tree: node invariants (valid tag, count <= populated <= count+1
   — the pointer-then-counter protocol can be one behind, never ahead),
   pointers in the heap, leaf keys routing to their position. Returns the
   number of live leaves. *)
let validate t =
  let open Util in
  let rec walk p ~depth ~path_ok =
    if is_leaf p then
      let* () =
        check_that (in_heap t.pool (leaf_addr p))
          (Printf.sprintf "leaf %d outside heap" p)
      in
      let* () = check_that (path_ok (leaf_key t p)) "leaf key does not route here" in
      Ok (if leaf_deleted t p then 0 else 1)
    else
      let* () = check_that (in_heap t.pool p) (Printf.sprintf "node %d outside heap" p) in
      let tag = node_tag t p in
      let* () =
        check_that
          (List.exists (Int64.equal tag) [ tag_node4; tag_node16; tag_node256 ])
          (Printf.sprintf "node %d: invalid tag %Ld" p tag)
      in
      let kids = children t p in
      let populated = List.length kids in
      let cnt = node_count t p in
      let* () =
        check_that
          (cnt <= populated && populated - cnt <= 1)
          (Printf.sprintf
             "node %d: counter %d inconsistent with %d populated children (the libart \
              signature)"
             p cnt populated)
      in
      let rec each acc = function
        | [] -> Ok acc
        | (b, _, child) :: rest ->
            let* live =
              walk child ~depth:(depth + 1) ~path_ok:(fun k ->
                  path_ok k && key_byte k depth = b)
            in
            each (acc + live) rest
      in
      each 0 kids
  in
  walk (root t) ~depth:0 ~path_ok:(fun _ -> true)

let check t =
  let open Util in
  let* live = validate t in
  check_that
    (abs (live - count t) <= 1)
    (Printf.sprintf "element count mismatch: %d live leaves, counter %d" live (count t))

(* Complete an interrupted insert: a node whose populated children exceed
   its counter by one holds a fully linked child the crash left uncounted;
   recovery adopts it. *)
let repair_counters t =
  let rec walk p =
    if not (is_leaf p) then begin
      let kids = children t p in
      let populated = List.length kids in
      if node_count t p = populated - 1 then begin
        write t (p + 8) (Int64.of_int populated);
        persist t ~off:(p + 8) ~size:8
      end;
      List.iter (fun (_, _, child) -> walk child) kids
    end
  in
  walk (root t)

let recover dev =
  recover_with dev ~validate:(fun pool heap ->
      let t = open_existing pool heap in
      repair_counters t;
      match validate t with
      | Error e -> Error ("art check: " ^ e)
      | Ok live when abs (live - count t) > 1 ->
          (* a single in-flight operation can leave the counter one off; a
             larger gap means reachable data was lost *)
          Error
            (Printf.sprintf
               "art check: %d live leaves but the counter says %d -- data loss" live
               (count t))
      | Ok live ->
          if live <> count t then set_global_count t live;
          let probe_key = Int64.max_int in
          put t ~key:probe_key ~value:1L;
          let seen = get t ~key:probe_key in
          let _ = delete t ~key:probe_key in
          if seen = Some 1L then Ok () else Error "art probe: inserted key not visible")
