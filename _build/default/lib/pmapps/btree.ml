(** Persistent B+tree on pmalloc transactions — the analogue of PMDK's
    libpmemobj [btree] example data store.

    All keys live in the leaves; internal nodes hold separators. Updates run
    inside undo-log transactions: every node is snapshotted before being
    modified, so after a crash the library rollback restores a consistent
    tree. Deletion removes from the leaf only (no rebalancing), which keeps
    the structure valid for lookups.

    Node layout (192 bytes = 3 chunks):
    {v
      0: nkeys   8: is_leaf   16+8i: keys[7]
      leaf:      72+8i: values[7]   128: next-leaf pointer
      internal:  72+8i: children[8]
    v}

    Seeded bugs: [btree_insert_no_tx] (leaf modified without snapshot),
    [btree_count_outside_tx] (counter updated after the commit point,
    unfenced), [btree_redundant_persist] (meta persisted twice per put). *)

open Kv_intf

let name = "btree"
let min_pool_size = 1 lsl 21
let max_keys = 7
let node_bytes = 192
let meta_bytes = 64

let bug_insert_no_tx =
  Bugreg.register ~id:"btree_insert_no_tx" ~component:"btree" ~taxonomy:Bugreg.Atomicity
    ~description:"leaf insertion shifts entries without undo-log snapshot"
    ~detectors:[ "mumak"; "witcher"; "agamotto"; "xfdetector" ]

let bug_count_outside_tx =
  Bugreg.register ~id:"btree_count_outside_tx" ~component:"btree" ~taxonomy:Bugreg.Durability
    ~description:"element counter updated after tx commit, without flush or fence"
    ~detectors:[ "mumak"; "witcher"; "pmdebugger"; "xfdetector"; "agamotto" ]

let bug_redundant_persist =
  Bugreg.register ~id:"btree_redundant_persist" ~component:"btree"
    ~taxonomy:Bugreg.Redundant_flush
    ~description:"meta block persisted twice on every put"
    ~detectors:[ "mumak"; "pmdebugger"; "agamotto"; "witcher" ]

let bugs = [ bug_insert_no_tx; bug_count_outside_tx; bug_redundant_persist ]

type t = {
  pool : Pmalloc.Pool.t;
  heap : Pmalloc.Alloc.t;
  meta : int; (* meta block address: root pointer + element count *)
  framer : framer;
}

(* --- node accessors --- *)

let nkeys t node = Int64.to_int (Pmalloc.Pool.read_i64 t.pool ~off:node)
let set_nkeys t node n = Pmalloc.Pool.write_i64 t.pool ~off:node (Int64.of_int n)
let is_leaf t node = Pmalloc.Pool.read_i64 t.pool ~off:(node + 8) <> 0L
let set_is_leaf t node b =
  Pmalloc.Pool.write_i64 t.pool ~off:(node + 8) (if b then 1L else 0L)

let key t node i = Pmalloc.Pool.read_i64 t.pool ~off:(node + 16 + (8 * i))
let set_key t node i v = Pmalloc.Pool.write_i64 t.pool ~off:(node + 16 + (8 * i)) v
let value t node i = Pmalloc.Pool.read_i64 t.pool ~off:(node + 72 + (8 * i))
let set_value t node i v = Pmalloc.Pool.write_i64 t.pool ~off:(node + 72 + (8 * i)) v
let child t node i = Int64.to_int (Pmalloc.Pool.read_i64 t.pool ~off:(node + 72 + (8 * i)))
let set_child t node i c =
  Pmalloc.Pool.write_i64 t.pool ~off:(node + 72 + (8 * i)) (Int64.of_int c)

let next_leaf t node = Int64.to_int (Pmalloc.Pool.read_i64 t.pool ~off:(node + 128))
let set_next_leaf t node c =
  Pmalloc.Pool.write_i64 t.pool ~off:(node + 128) (Int64.of_int c)

let root t = Int64.to_int (Pmalloc.Pool.read_i64 t.pool ~off:t.meta)
let count t = Int64.to_int (Pmalloc.Pool.read_i64 t.pool ~off:(t.meta + 8))

(* Snapshot a whole node before its first modification in this tx. *)
let snap tx node = Pmalloc.Tx.add tx ~off:node ~size:node_bytes

let alloc_node t ~leaf =
  let node = Pmalloc.Alloc.alloc ~zero:true t.heap ~bytes:node_bytes in
  set_is_leaf t node leaf;
  Pmalloc.Pool.persist t.pool ~off:node ~size:node_bytes;
  node

(* --- lifecycle --- *)

let create ?(framer = null_framer) pool heap =
  let meta = Pmalloc.Alloc.alloc ~zero:true heap ~bytes:meta_bytes in
  let t = { pool; heap; meta; framer } in
  let leaf = alloc_node t ~leaf:true in
  Pmalloc.Pool.write_i64 pool ~off:meta (Int64.of_int leaf);
  Pmalloc.Pool.write_i64 pool ~off:(meta + 8) 0L;
  Pmalloc.Pool.persist pool ~off:meta ~size:meta_bytes;
  Pmalloc.Pool.set_root pool ~off:meta ~size:meta_bytes;
  t

let open_existing ?(framer = null_framer) pool heap =
  match Pmalloc.Pool.root pool with
  | Some (meta, _) -> { pool; heap; meta; framer }
  | None -> invalid_arg "Btree.open_existing: pool has no root"

(* --- search --- *)

(* First child index whose subtree may contain [k]: smallest i with
   k < keys[i], or nkeys if none. *)
let find_child t node k =
  let n = nkeys t node in
  let rec go i = if i >= n then n else if Int64.compare k (key t node i) < 0 then i else go (i + 1) in
  go 0

let rec descend t node k =
  if is_leaf t node then node
  else t.framer.frame "btree.descend" (fun () -> descend t (child t node (find_child t node k)) k)

let leaf_pos t leaf k =
  let n = nkeys t leaf in
  let rec go i =
    if i >= n then None else if Int64.equal (key t leaf i) k then Some i else go (i + 1)
  in
  go 0

let get t ~key:k =
  t.framer.frame "btree.get" (fun () ->
      let leaf = descend t (root t) k in
      Option.map (fun i -> value t leaf i) (leaf_pos t leaf k))

(* --- insertion --- *)

(* Split full child [ci] of [parent]; parent must not be full. *)
let split_child t tx parent ci =
  t.framer.frame "btree.split_child" (fun () ->
      let c = child t parent ci in
      let right = alloc_node t ~leaf:(is_leaf t c) in
      snap tx c;
      snap tx parent;
      let sep =
        if is_leaf t c then begin
          (* leaf split: upper half moves right, separator is copied up *)
          let keep = (max_keys + 1) / 2 in
          for i = keep to max_keys - 1 do
            set_key t right (i - keep) (key t c i);
            set_value t right (i - keep) (value t c i)
          done;
          set_nkeys t right (max_keys - keep);
          set_next_leaf t right (next_leaf t c);
          set_next_leaf t c right;
          set_nkeys t c keep;
          key t right 0
        end
        else begin
          (* internal split: middle separator moves up *)
          let mid = max_keys / 2 in
          for i = mid + 1 to max_keys - 1 do
            set_key t right (i - mid - 1) (key t c i)
          done;
          for i = mid + 1 to max_keys do
            set_child t right (i - mid - 1) (child t c i)
          done;
          set_nkeys t right (max_keys - mid - 1);
          set_nkeys t c mid;
          key t c mid
        end
      in
      Pmalloc.Pool.persist t.pool ~off:right ~size:node_bytes;
      (* shift parent separators/children right of ci *)
      let n = nkeys t parent in
      for i = n - 1 downto ci do
        set_key t parent (i + 1) (key t parent i)
      done;
      for i = n downto ci + 1 do
        set_child t parent (i + 1) (child t parent i)
      done;
      set_key t parent ci sep;
      set_child t parent (ci + 1) right;
      set_nkeys t parent (n + 1))

(* Insert into a non-full subtree. Returns true when a new key was added
   (false = in-place update). *)
let rec insert_nonfull t tx node k v =
  if is_leaf t node then begin
    match leaf_pos t node k with
    | Some i ->
        snap tx node;
        set_value t node i v;
        false
    | None ->
        (* BUG (btree_insert_no_tx): the shift below runs without an undo
           snapshot, so a crash mid-shift cannot be rolled back. *)
        if not (Bugreg.enabled bug_insert_no_tx.Bugreg.id) then snap tx node;
        let n = nkeys t node in
        let rec shift i =
          if i >= 0 && Int64.compare (key t node i) k > 0 then begin
            set_key t node (i + 1) (key t node i);
            set_value t node (i + 1) (value t node i);
            shift (i - 1)
          end
          else i
        in
        let pos = shift (n - 1) + 1 in
        set_key t node pos k;
        set_value t node pos v;
        set_nkeys t node (n + 1);
        true
  end
  else
    t.framer.frame "btree.insert_nonfull" (fun () ->
        let ci = find_child t node k in
        let ci =
          if nkeys t (child t node ci) = max_keys then begin
            split_child t tx node ci;
            if Int64.compare k (key t node ci) >= 0 then ci + 1 else ci
          end
          else ci
        in
        insert_nonfull t tx (child t node ci) k v)

let put t ~key:k ~value:v =
  t.framer.frame "btree.put" (fun () ->
      let added = ref false in
      Pmalloc.Tx.run ~heap:t.heap t.pool (fun tx ->
          let r = root t in
          let r =
            if nkeys t r = max_keys then begin
              t.framer.frame "btree.split_root" (fun () ->
                  let new_root = alloc_node t ~leaf:false in
                  set_child t new_root 0 r;
                  Pmalloc.Pool.persist t.pool ~off:new_root ~size:node_bytes;
                  split_child t tx new_root 0;
                  Pmalloc.Tx.add tx ~off:t.meta ~size:8;
                  Pmalloc.Pool.write_i64 t.pool ~off:t.meta (Int64.of_int new_root);
                  new_root)
            end
            else r
          in
          added := insert_nonfull t tx r k v;
          if !added && not (Bugreg.enabled bug_count_outside_tx.Bugreg.id) then begin
            Pmalloc.Tx.add tx ~off:(t.meta + 8) ~size:8;
            Pmalloc.Pool.write_i64 t.pool ~off:(t.meta + 8)
              (Int64.of_int (count t + 1))
          end);
      (* BUG (btree_count_outside_tx): the counter is bumped after the
         commit point, with no flush and no fence. *)
      if !added && Bugreg.enabled bug_count_outside_tx.Bugreg.id then
        Pmalloc.Pool.write_i64 t.pool ~off:(t.meta + 8) (Int64.of_int (count t + 1));
      (* BUG (btree_redundant_persist): a second, useless persist. *)
      if Bugreg.enabled bug_redundant_persist.Bugreg.id then begin
        Pmalloc.Pool.persist t.pool ~off:t.meta ~size:meta_bytes;
        Pmalloc.Pool.persist t.pool ~off:t.meta ~size:meta_bytes
      end)

(* --- deletion (leaf-local, no rebalancing) --- *)

let delete t ~key:k =
  t.framer.frame "btree.delete" (fun () ->
      let removed = ref false in
      Pmalloc.Tx.run ~heap:t.heap t.pool (fun tx ->
          let leaf = descend t (root t) k in
          match leaf_pos t leaf k with
          | None -> ()
          | Some pos ->
              snap tx leaf;
              let n = nkeys t leaf in
              for i = pos to n - 2 do
                set_key t leaf i (key t leaf (i + 1));
                set_value t leaf i (value t leaf (i + 1))
              done;
              set_nkeys t leaf (n - 1);
              Pmalloc.Tx.add tx ~off:(t.meta + 8) ~size:8;
              Pmalloc.Pool.write_i64 t.pool ~off:(t.meta + 8) (Int64.of_int (count t - 1));
              removed := true);
      !removed)

(* --- consistency check --- *)

let check t =
  let open Util in
  let pool = t.pool in
  let rec walk node ~lo ~hi ~depth =
    let* () = check_that (in_heap pool node) (Printf.sprintf "node %d outside heap" node) in
    let n = nkeys t node in
    let* () =
      check_that (n >= 0 && n <= max_keys) (Printf.sprintf "node %d: nkeys %d" node n)
    in
    let* () =
      check_list
        (fun i ->
          let k = key t node i in
          let* () =
            check_that
              (i = 0 || Int64.compare (key t node (i - 1)) k < 0)
              (Printf.sprintf "node %d: keys not strictly sorted at %d" node i)
          in
          let* () =
            check_that
              (match lo with None -> true | Some l -> Int64.compare k l >= 0)
              (Printf.sprintf "node %d: key below subtree bound" node)
          in
          check_that
            (match hi with None -> true | Some h -> Int64.compare k h < 0)
            (Printf.sprintf "node %d: key above subtree bound" node))
        (List.init n Fun.id)
    in
    if is_leaf t node then Ok (n, depth)
    else
      let* () = check_that (n >= 1) (Printf.sprintf "internal node %d empty" node) in
      let rec children_walk i total leaf_depth =
        if i > n then Ok (total, leaf_depth)
        else
          let lo_i = if i = 0 then lo else Some (key t node (i - 1)) in
          let hi_i = if i = n then hi else Some (key t node i) in
          let* total_i, depth_i = walk (child t node i) ~lo:lo_i ~hi:hi_i ~depth:(depth + 1) in
          let* () =
            check_that
              (match leaf_depth with None -> true | Some d -> d = depth_i)
              (Printf.sprintf "node %d: uneven leaf depth" node)
          in
          children_walk (i + 1) (total + total_i) (Some depth_i)
      in
      let* total, leaf_depth = children_walk 0 0 None in
      Ok (total, Option.value ~default:depth leaf_depth)
  in
  let* total, _depth = walk (root t) ~lo:None ~hi:None ~depth:0 in
  check_that (total = count t)
    (Printf.sprintf "element count mismatch: counted %d, stored %d" total (count t))

(* --- recovery procedure --- *)

let recover dev =
  recover_with dev ~validate:(fun pool heap ->
      let t = open_existing pool heap in
      match check t with
      | Error e -> Error ("btree check: " ^ e)
      | Ok () ->
          (* probe: the structure must be operable after recovery *)
          let probe_key = Int64.min_int in
          put t ~key:probe_key ~value:0L;
          let seen = get t ~key:probe_key in
          let _ = delete t ~key:probe_key in
          if seen = Some 0L then Ok () else Error "btree probe: inserted key not visible")
