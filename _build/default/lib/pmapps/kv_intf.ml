(** Common interface of the persistent key-value structures under test.

    Every application exposes the same black-box surface Mumak needs:
    create/open, the three workload operations, and a {e recovery procedure}
    that doubles as the consistency oracle (paper section 4.1). Recovery
    returns [Error _] when it deems the state unrecoverable and may raise if
    it crashes outright; both outcomes are bug signals.

    Applications announce function entry through a {!framer} so the
    instrumentation layer can reconstruct call stacks; the default framer is
    a no-op, keeping the applications usable without any tool attached. *)

type framer = Pmtrace.Framer.t = { frame : 'a. string -> (unit -> 'a) -> 'a }

let null_framer = Pmtrace.Framer.null

module type S = sig
  type t

  val name : string

  val min_pool_size : int
  (** A pool size adequate for workloads of a few thousand operations. *)

  val create : ?framer:framer -> Pmalloc.Pool.t -> Pmalloc.Alloc.t -> t
  (** Format the structure in a fresh pool and set the pool root. *)

  val open_existing : ?framer:framer -> Pmalloc.Pool.t -> Pmalloc.Alloc.t -> t
  (** Attach to an already-recovered pool. *)

  val put : t -> key:int64 -> value:int64 -> unit
  val get : t -> key:int64 -> int64 option
  val delete : t -> key:int64 -> bool

  val count : t -> int
  (** The structure's persisted element counter. *)

  val check : t -> (unit, string) result
  (** Structural consistency check (invariants of the concrete structure). *)

  val recover : Pmem.Device.t -> (unit, string) result
  (** The application's own recovery procedure, run on a crash image:
      library recovery, structural repair/validation, and a probe operation
      verifying the structure is operable. *)
end

type app = (module S)

(** Recovery helper shared by the applications: open the pool (library
    recovery), rebuild the heap, then run the app-specific validation.
    Translates {!Pmalloc.Pool.Corrupted} into [Error]. *)
let recover_with ~validate dev =
  match Pmalloc.Recovery.open_pool dev with
  | exception Pmalloc.Pool.Corrupted msg -> Error ("pool recovery: " ^ msg)
  | exception Pmalloc.Pool.Not_initialised ->
      (* crash during pool creation, before the commit marker: the
         application would re-create the pool *)
      Ok ()
  | pool, heap, _report ->
      (* A pool whose root was never published is a fresh pool that crashed
         during initialisation: the application would simply re-create it,
         so this is a consistent state, not a bug. *)
      if Pmalloc.Pool.root pool = None then Ok () else validate pool heap
