(** CCEH-style persistent extendible hash table (FAST'19).

    A directory of 2^G segment pointers (G fixed at 8 here) routes the top
    bits of the hash to segments of 64 slots. Segment overflow triggers a
    split: a sibling segment takes the keys whose next hash bit is 1 and the
    directory run is rewritten. Directory rewrites go through the pool's
    redo log, making the split failure-atomic; stale slot residue left in
    the old segment is swept by recovery, and lookups never see it because
    routing has already moved.

    Segment layout: 64-byte header (local depth) + 64 slots of 16 bytes
    (key, value); key 0 marks an empty slot, so client keys must be
    non-zero (the workload generator guarantees this).

    Seeded bugs: [cceh_split_dir_no_log] (directory rewritten with plain
    stores instead of the redo log — a crash mid-rewrite tears the run),
    [cceh_value_after_key] (the key — the commit store — is written before
    the value; output-equivalence tools catch the stale value, recovery
    cannot), [cceh_dir_unflushed] (directory updates never flushed). *)

open Kv_intf

let name = "cceh"
let min_pool_size = 1 lsl 22
let global_depth = 8
let dir_entries = 1 lsl global_depth
let slots_per_segment = 16
let probe_limit = 8
let segment_bytes = 64 + (slots_per_segment * 16)
let meta_bytes = 64

let bug_split_dir_no_log =
  Bugreg.register ~id:"cceh_split_dir_no_log" ~component:"cceh" ~taxonomy:Bugreg.Atomicity
    ~description:"segment split rewrites the directory with plain stores, not the redo log"
    ~detectors:[ "mumak"; "witcher"; "agamotto"; "xfdetector" ]

let bug_value_after_key =
  Bugreg.register ~id:"cceh_value_after_key" ~component:"cceh" ~taxonomy:Bugreg.Ordering
    ~description:
      "the key (commit store) is written before the value; a crash in between \
       publishes a slot with a stale value"
    ~detectors:[ "witcher" ]

let bug_dir_unflushed =
  Bugreg.register ~id:"cceh_dir_unflushed" ~component:"cceh" ~taxonomy:Bugreg.Durability
    ~description:"directory entry stores during split are never flushed"
    ~detectors:[ "mumak"; "pmdebugger"; "xfdetector"; "agamotto"; "witcher" ]

let bugs = [ bug_split_dir_no_log; bug_value_after_key; bug_dir_unflushed ]

type t = {
  pool : Pmalloc.Pool.t;
  heap : Pmalloc.Alloc.t;
  meta : int; (* dir addr, count *)
  framer : framer;
}

exception Table_full

let read t off = Pmalloc.Pool.read_i64 t.pool ~off
let write t off v = Pmalloc.Pool.write_i64 t.pool ~off v
let persist t ~off ~size = Pmalloc.Pool.persist t.pool ~off ~size

let dir_off t = Int64.to_int (read t t.meta)
let count t = Int64.to_int (read t (t.meta + 8))
let dir_entry t i = Int64.to_int (read t (dir_off t + (8 * i)))
let local_depth t seg = Int64.to_int (read t seg)
let slot_addr seg s = seg + 64 + (16 * s)
let slot_key t seg s = read t (slot_addr seg s)
let slot_value t seg s = read t (slot_addr seg s + 8)

let hash k = Util.mix64 k
let dir_index h = Int64.to_int (Int64.shift_right_logical h (64 - global_depth))
let slot_start h = Int64.to_int (Int64.logand h 0x3FL)

let alloc_segment t ~depth =
  let seg = Pmalloc.Alloc.alloc ~zero:true t.heap ~bytes:segment_bytes in
  write t seg (Int64.of_int depth);
  persist t ~off:seg ~size:segment_bytes;
  seg

let create ?(framer = null_framer) pool heap =
  let meta = Pmalloc.Alloc.alloc ~zero:true heap ~bytes:meta_bytes in
  let dir = Pmalloc.Alloc.alloc ~zero:true heap ~bytes:(8 * dir_entries) in
  let t = { pool; heap; meta; framer } in
  write t meta (Int64.of_int dir);
  write t (meta + 8) 0L;
  persist t ~off:meta ~size:meta_bytes;
  let seg0 = alloc_segment t ~depth:0 in
  for i = 0 to dir_entries - 1 do
    write t (dir + (8 * i)) (Int64.of_int seg0)
  done;
  persist t ~off:dir ~size:(8 * dir_entries);
  Pmalloc.Pool.set_root pool ~off:meta ~size:meta_bytes;
  t

let open_existing ?(framer = null_framer) pool heap =
  match Pmalloc.Pool.root pool with
  | Some (meta, _) -> { pool; heap; meta; framer }
  | None -> invalid_arg "Cceh.open_existing: pool has no root"

let find_slot t k =
  let h = hash k in
  let seg = dir_entry t (dir_index h) in
  let start = slot_start h in
  let rec probe i =
    if i = probe_limit then None
    else
      let s = (start + i) mod slots_per_segment in
      if Int64.equal (slot_key t seg s) k then Some (seg, s) else probe (i + 1)
  in
  probe 0

let get t ~key:k =
  t.framer.frame "cceh.get" (fun () ->
      Option.map (fun (seg, s) -> slot_value t seg s) (find_slot t k))

let set_count t c =
  write t (t.meta + 8) (Int64.of_int c);
  persist t ~off:(t.meta + 8) ~size:8

(* Rewrite the directory run [lo, hi) to point at [seg] and refresh the old
   segment's local depth, failure-atomically via the redo log (unless the
   seeded split bug asks for plain stores). *)
let rewrite_directory t ~lo ~hi ~seg ~old_seg ~new_depth =
  if
    Bugreg.enabled bug_split_dir_no_log.Bugreg.id
    || Bugreg.enabled bug_dir_unflushed.Bugreg.id
  then begin
    (* BUG: plain stores; a crash mid-loop tears the run *)
    for i = lo to hi - 1 do
      write t (dir_off t + (8 * i)) (Int64.of_int seg);
      if not (Bugreg.enabled bug_dir_unflushed.Bugreg.id) then
        Pmalloc.Pool.flush t.pool ~off:(dir_off t + (8 * i)) ~size:8
    done;
    write t old_seg (Int64.of_int new_depth);
    Pmalloc.Pool.flush t.pool ~off:old_seg ~size:8;
    Pmalloc.Pool.drain t.pool
  end
  else begin
    let b = Pmalloc.Redo.begin_ () in
    for i = lo to hi - 1 do
      Pmalloc.Redo.add b ~addr:(dir_off t + (8 * i)) ~value:(Int64.of_int seg)
    done;
    Pmalloc.Redo.add b ~addr:old_seg ~value:(Int64.of_int new_depth);
    Pmalloc.Redo.commit t.pool b
  end

(* Split the segment serving [h]: keys whose (depth+1)-th routing bit is 1
   move to a fresh sibling. *)
let split t h =
  t.framer.frame "cceh.split" (fun () ->
      let idx = dir_index h in
      let seg = dir_entry t idx in
      let depth = local_depth t seg in
      if depth >= global_depth then raise Table_full;
      let run = dir_entries lsr depth in
      let lo = idx / run * run in
      let mid = lo + (run / 2) in
      let hi = lo + run in
      let sibling = alloc_segment t ~depth:(depth + 1) in
      (* copy the moving keys into the sibling *)
      for s = 0 to slots_per_segment - 1 do
        let k = slot_key t seg s in
        if not (Int64.equal k 0L) then begin
          let i = dir_index (hash k) in
          if i >= mid then begin
            let start = slot_start (hash k) in
            let rec place j =
              (* the sibling is still unreachable, so bailing out here is
                 safe: nothing visible has been modified yet *)
              if j = probe_limit then raise Table_full;
              let s' = (start + j) mod slots_per_segment in
              if Int64.equal (slot_key t sibling s') 0L then begin
                write t (slot_addr sibling s' + 8) (slot_value t seg s);
                write t (slot_addr sibling s') k
              end
              else place (j + 1)
            in
            place 0
          end
        end
      done;
      persist t ~off:sibling ~size:segment_bytes;
      (* atomically route the upper half of the run to the sibling *)
      rewrite_directory t ~lo:mid ~hi ~seg:sibling ~old_seg:seg ~new_depth:(depth + 1);
      (* sweep moved keys out of the old segment (recovery redoes this if
         we crash mid-sweep) *)
      for s = 0 to slots_per_segment - 1 do
        let k = slot_key t seg s in
        if (not (Int64.equal k 0L)) && dir_index (hash k) >= mid then
          write t (slot_addr seg s) 0L
      done;
      persist t ~off:(seg + 64) ~size:(slots_per_segment * 16))

let rec put t ~key:k ~value:v =
  if Int64.equal k 0L then invalid_arg "Cceh.put: key 0 is reserved";
  t.framer.frame "cceh.put" (fun () ->
      match find_slot t k with
      | Some (seg, s) ->
          write t (slot_addr seg s + 8) v;
          persist t ~off:(slot_addr seg s + 8) ~size:8
      | None ->
          let h = hash k in
          let seg = dir_entry t (dir_index h) in
          let start = slot_start h in
          let rec probe i =
            if i = probe_limit then begin
              split t h;
              put t ~key:k ~value:v
            end
            else
              let s = (start + i) mod slots_per_segment in
              if Int64.equal (slot_key t seg s) 0L then
                t.framer.frame "cceh.insert" (fun () ->
                    if Bugreg.enabled bug_value_after_key.Bugreg.id then begin
                      (* BUG: commit store first, payload second *)
                      write t (slot_addr seg s) k;
                      write t (slot_addr seg s + 8) v
                    end
                    else begin
                      write t (slot_addr seg s + 8) v;
                      write t (slot_addr seg s) k
                    end;
                    persist t ~off:(slot_addr seg s) ~size:16;
                    set_count t (count t + 1))
              else probe (i + 1)
          in
          probe 0)

let delete t ~key:k =
  t.framer.frame "cceh.delete" (fun () ->
      match find_slot t k with
      | None -> false
      | Some (seg, s) ->
          write t (slot_addr seg s) 0L;
          persist t ~off:(slot_addr seg s) ~size:8;
          set_count t (count t - 1);
          true)

(* --- consistency checking --- *)

(* Directory structure invariant: every entry points into the heap, and the
   entries pointing at one segment form exactly the aligned run its local
   depth prescribes. *)
let check_directory t =
  let open Util in
  let rec entries i =
    if i = dir_entries then Ok ()
    else
      let seg = dir_entry t i in
      let* () =
        check_that (in_heap t.pool seg) (Printf.sprintf "dir[%d] outside heap (%d)" i seg)
      in
      let d = local_depth t seg in
      let* () =
        check_that (d >= 0 && d <= global_depth) (Printf.sprintf "dir[%d]: bad depth %d" i d)
      in
      let run = dir_entries lsr d in
      let lo = i / run * run in
      let rec run_ok j =
        if j = lo + run then Ok ()
        else
          let* () =
            check_that (dir_entry t j = seg)
              (Printf.sprintf "directory run torn: dir[%d] != dir[%d]" j i)
          in
          run_ok (j + 1)
      in
      let* () = run_ok lo in
      entries (i + run - (i - lo))
  in
  entries 0

let live_count t =
  let segs = Hashtbl.create 16 in
  for i = 0 to dir_entries - 1 do
    Hashtbl.replace segs (dir_entry t i) ()
  done;
  Hashtbl.fold
    (fun seg () acc ->
      let n = ref 0 in
      for s = 0 to slots_per_segment - 1 do
        if not (Int64.equal (slot_key t seg s) 0L) then incr n
      done;
      acc + !n)
    segs 0

let check t =
  let open Util in
  let* () = check_directory t in
  check_that
    (abs (live_count t - count t) <= 1)
    (Printf.sprintf "element count mismatch: %d live, counter %d" (live_count t) (count t))

(* Recovery: validate the directory, sweep stale residue (keys left behind
   by an interrupted split whose routing has already moved), repair the
   counter, probe. *)
let recover dev =
  recover_with dev ~validate:(fun pool heap ->
      let t = open_existing pool heap in
      match check_directory t with
      | Error e -> Error ("cceh directory: " ^ e)
      | Ok () ->
          for i = 0 to dir_entries - 1 do
            let seg = dir_entry t i in
            for s = 0 to slots_per_segment - 1 do
              let k = slot_key t seg s in
              if (not (Int64.equal k 0L)) && dir_entry t (dir_index (hash k)) <> seg then begin
                write t (slot_addr seg s) 0L;
                persist t ~off:(slot_addr seg s) ~size:8
              end
            done
          done;
          let live = live_count t in
          if live <> count t then set_count t live;
          let probe_key = 0x7FFF_FFFF_FFFF_FFFFL in
          put t ~key:probe_key ~value:5L;
          let seen = get t ~key:probe_key in
          let _ = delete t ~key:probe_key in
          if seen = Some 5L then Ok () else Error "cceh probe: inserted key not visible")
