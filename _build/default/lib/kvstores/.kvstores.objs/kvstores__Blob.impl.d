lib/kvstores/blob.ml: Bytes Char Int64 Pmalloc Printf String
