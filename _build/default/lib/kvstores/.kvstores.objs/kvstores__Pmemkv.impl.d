lib/kvstores/pmemkv.ml: Blob Int64 Option Pmalloc Pmtrace Printf String
