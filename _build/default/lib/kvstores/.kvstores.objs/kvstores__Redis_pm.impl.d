lib/kvstores/redis_pm.ml: Blob Int64 Option Pmalloc Pmtrace Printf String
