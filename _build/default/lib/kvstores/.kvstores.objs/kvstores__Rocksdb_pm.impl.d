lib/kvstores/rocksdb_pm.ml: Blob Buffer Bytes Hashtbl Int64 List Option Pmalloc Pmtrace Printf String
