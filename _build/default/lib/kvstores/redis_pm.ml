(** PM-aware Redis port (pmem/redis analogue): the dict with two hash tables
    and incremental rehashing, persisted on pmalloc.

    The dict keeps two bucket arrays; when the load factor passes 1, a
    double-sized second table is allocated and every subsequent command
    migrates one bucket (incremental rehash), exactly like Redis. All
    mutations are transactional. A small command layer (SET/GET/DEL/INCR)
    sits on top, because the original target is the whole server, not a
    bare dict.

    meta: ht0 addr, ht0 size, ht1 addr, ht1 size, rehash index, count. *)

let min_pool_size = 1 lsl 22
let initial_buckets = 32
let meta_bytes = 64
let entry_bytes = 64

type t = {
  pool : Pmalloc.Pool.t;
  heap : Pmalloc.Alloc.t;
  meta : int;
  framer : Pmtrace.Framer.t;
}

let read t off = Pmalloc.Pool.read_i64 t.pool ~off
let write t off v = Pmalloc.Pool.write_i64 t.pool ~off v

let ht0 t = Int64.to_int (read t t.meta)
let ht0_size t = Int64.to_int (read t (t.meta + 8))
let ht1 t = Int64.to_int (read t (t.meta + 16))
let ht1_size t = Int64.to_int (read t (t.meta + 24))
let rehash_idx t = Int64.to_int (read t (t.meta + 32))
let count t = Int64.to_int (read t (t.meta + 40))

let entry_key t e = Int64.to_int (read t e)
let entry_value t e = Int64.to_int (read t (e + 8))
let entry_next t e = Int64.to_int (read t (e + 16))

let frame t label f = t.framer.Pmtrace.Framer.frame label f

let alloc_table heap pool n =
  let table = Pmalloc.Alloc.alloc ~zero:true heap ~bytes:(8 * n) in
  Pmalloc.Pool.persist pool ~off:table ~size:(8 * n);
  table

let create ?(framer = Pmtrace.Framer.null) pool heap =
  let meta = Pmalloc.Alloc.alloc ~zero:true heap ~bytes:meta_bytes in
  let t = { pool; heap; meta; framer } in
  let table = alloc_table heap pool initial_buckets in
  write t meta (Int64.of_int table);
  write t (meta + 8) (Int64.of_int initial_buckets);
  write t (meta + 16) 0L;
  write t (meta + 24) 0L;
  write t (meta + 32) (-1L);
  write t (meta + 40) 0L;
  Pmalloc.Pool.persist pool ~off:meta ~size:meta_bytes;
  Pmalloc.Pool.set_root pool ~off:meta ~size:meta_bytes;
  t

let open_existing ?(framer = Pmtrace.Framer.null) pool heap =
  match Pmalloc.Pool.root pool with
  | Some (meta, _) -> { pool; heap; meta; framer }
  | None -> invalid_arg "Redis_pm.open_existing: pool has no root"

let bucket table_size key = Blob.bucket_of key table_size

let find_in t ~table ~table_size key =
  if table = 0 then None
  else
    let rec go prev e =
      if e = 0 then None
      else if String.equal (Blob.read t.pool (entry_key t e)) key then Some (prev, e)
      else go (Some e) (entry_next t e)
    in
    go None (Int64.to_int (read t (table + (8 * bucket table_size key))))

let find t key =
  match find_in t ~table:(ht0 t) ~table_size:(ht0_size t) key with
  | Some r -> Some (`Ht0, r)
  | None ->
      Option.map
        (fun r -> (`Ht1, r))
        (find_in t ~table:(ht1 t) ~table_size:(ht1_size t) key)

(* Migrate one bucket of ht0 into ht1 (incremental rehash step), inside the
   caller's transaction. Finishing the migration promotes ht1. *)
let rehash_step t tx =
  let idx = rehash_idx t in
  if idx >= 0 then
    frame t "redis.rehash_step" (fun () ->
        let h0 = ht0 t and h1 = ht1 t and s1 = ht1_size t in
        let rec migrate e =
          if e <> 0 then begin
            let next = entry_next t e in
            let key = Blob.read t.pool (entry_key t e) in
            let dst = h1 + (8 * bucket s1 key) in
            Pmalloc.Tx.add tx ~off:(e + 16) ~size:8;
            write t (e + 16) (read t dst);
            Pmalloc.Tx.add tx ~off:dst ~size:8;
            write t dst (Int64.of_int e);
            migrate next
          end
        in
        Pmalloc.Tx.add tx ~off:(h0 + (8 * idx)) ~size:8;
        let head = Int64.to_int (read t (h0 + (8 * idx))) in
        write t (h0 + (8 * idx)) 0L;
        migrate head;
        Pmalloc.Tx.add tx ~off:(t.meta + 32) ~size:8;
        if idx + 1 >= ht0_size t then begin
          (* rehash complete: promote ht1 *)
          Pmalloc.Tx.add tx ~off:t.meta ~size:32;
          write t t.meta (Int64.of_int h1);
          write t (t.meta + 8) (Int64.of_int s1);
          write t (t.meta + 16) 0L;
          write t (t.meta + 24) 0L;
          write t (t.meta + 32) (-1L)
        end
        else write t (t.meta + 32) (Int64.of_int (idx + 1)))

let maybe_start_rehash t tx =
  if rehash_idx t < 0 && count t > ht0_size t then begin
    let bigger = alloc_table t.heap t.pool (2 * ht0_size t) in
    Pmalloc.Tx.add tx ~off:(t.meta + 16) ~size:24;
    write t (t.meta + 16) (Int64.of_int bigger);
    write t (t.meta + 24) (Int64.of_int (2 * ht0_size t));
    write t (t.meta + 32) 0L
  end

(* --- commands --- *)

let set t key value =
  frame t "redis.set" (fun () ->
      Pmalloc.Tx.run ~heap:t.heap t.pool (fun tx ->
          rehash_step t tx;
          match find t key with
          | Some (_, (_, e)) ->
              let blob = Blob.alloc_write t.pool t.heap value in
              Pmalloc.Tx.add tx ~off:(e + 8) ~size:8;
              write t (e + 8) (Int64.of_int blob)
          | None ->
              frame t "redis.insert" (fun () ->
                  maybe_start_rehash t tx;
                  (* new keys go to ht1 while rehashing, like Redis *)
                  let table, table_size =
                    if rehash_idx t >= 0 then (ht1 t, ht1_size t)
                    else (ht0 t, ht0_size t)
                  in
                  let kblob = Blob.alloc_write t.pool t.heap key in
                  let vblob = Blob.alloc_write t.pool t.heap value in
                  let e = Pmalloc.Alloc.alloc ~zero:true t.heap ~bytes:entry_bytes in
                  let link = table + (8 * bucket table_size key) in
                  write t e (Int64.of_int kblob);
                  write t (e + 8) (Int64.of_int vblob);
                  write t (e + 16) (read t link);
                  Pmalloc.Pool.persist t.pool ~off:e ~size:entry_bytes;
                  Pmalloc.Tx.add tx ~off:link ~size:8;
                  write t link (Int64.of_int e);
                  Pmalloc.Tx.add tx ~off:(t.meta + 40) ~size:8;
                  write t (t.meta + 40) (Int64.of_int (count t + 1)))))

let get t key =
  frame t "redis.get" (fun () ->
      Option.map (fun (_, (_, e)) -> Blob.read t.pool (entry_value t e)) (find t key))

let del t key =
  frame t "redis.del" (fun () ->
      let removed = ref false in
      Pmalloc.Tx.run ~heap:t.heap t.pool (fun tx ->
          rehash_step t tx;
          match find t key with
          | None -> ()
          | Some (which, (prev, e)) ->
              let table, table_size =
                match which with
                | `Ht0 -> (ht0 t, ht0_size t)
                | `Ht1 -> (ht1 t, ht1_size t)
              in
              let link =
                match prev with
                | Some p -> p + 16
                | None -> table + (8 * bucket table_size key)
              in
              Pmalloc.Tx.add tx ~off:link ~size:8;
              write t link (Int64.of_int (entry_next t e));
              Pmalloc.Tx.add tx ~off:(t.meta + 40) ~size:8;
              write t (t.meta + 40) (Int64.of_int (count t - 1));
              removed := true);
      !removed)

let incr t key =
  frame t "redis.incr" (fun () ->
      let current = match get t key with Some s -> int_of_string_opt s | None -> Some 0 in
      match current with
      | None -> Error "value is not an integer"
      | Some v ->
          set t key (string_of_int (v + 1));
          Ok (v + 1))

(* --- recovery --- *)

let check t =
  let total = ref 0 in
  let walk table table_size =
    if table = 0 then Ok ()
    else begin
      let err = ref None in
      for b = 0 to table_size - 1 do
        if !err = None then begin
          let seen = ref 0 in
          let rec go e =
            if e <> 0 then begin
              seen := !seen + 1;
              if !seen > 1_000_000 then err := Some "chain cycle"
              else begin
                (match Blob.read t.pool (entry_key t e) with
                | (_ : string) -> total := !total + 1
                | exception Pmalloc.Pool.Corrupted m -> err := Some m);
                if !err = None then go (entry_next t e)
              end
            end
          in
          go (Int64.to_int (read t (table + (8 * b))))
        end
      done;
      match !err with Some m -> Error m | None -> Ok ()
    end
  in
  match walk (ht0 t) (ht0_size t) with
  | Error m -> Error m
  | Ok () -> (
      match walk (ht1 t) (ht1_size t) with
      | Error m -> Error m
      | Ok () ->
          let ri = rehash_idx t in
          if ri >= ht0_size t then Error "rehash index out of range"
          else if ri >= 0 && ht1 t = 0 then Error "rehashing without a second table"
          else if !total <> count t then
            Error (Printf.sprintf "count mismatch: %d entries, counter %d" !total (count t))
          else Ok ())

let recover dev =
  match Pmalloc.Recovery.open_pool dev with
  | exception Pmalloc.Pool.Corrupted msg -> Error ("pool recovery: " ^ msg)
  | exception Pmalloc.Pool.Not_initialised -> Ok ()
  | pool, heap, _ ->
      if Pmalloc.Pool.root pool = None then Ok ()
      else
        let t = open_existing pool heap in
        (match check t with
        | Error e -> Error ("redis check: " ^ e)
        | Ok () ->
            set t "\x00probe" "1";
            let seen = get t "\x00probe" in
            let _ = del t "\x00probe" in
            if seen = Some "1" then Ok () else Error "redis probe failed")
