(** pmemkv-style key/value engines with string keys and values.

    Two persistent engines behind one interface, like the original's
    [cmap] and [stree]:
    - {b cmap}: a chained hash map whose entries hold blob pointers;
      mutations run inside undo-log transactions;
    - {b stree}: a sorted singly-linked structure (the sorted engine),
      insertion keeps key order, also transactional.

    Both recover through the pool machinery plus an engine-specific
    structural pass. *)

type engine = Cmap | Stree

let engine_name = function Cmap -> "cmap" | Stree -> "stree"

let nbuckets = 512
let meta_bytes = 64
let entry_bytes = 64 (* key blob, value blob, next *)

type t = {
  pool : Pmalloc.Pool.t;
  heap : Pmalloc.Alloc.t;
  meta : int;
  engine : engine;
  framer : Pmtrace.Framer.t;
}

let min_pool_size = 1 lsl 22

let read t off = Pmalloc.Pool.read_i64 t.pool ~off
let write t off v = Pmalloc.Pool.write_i64 t.pool ~off v

(* meta: engine tag, table/list head address, count *)
let table_off t = Int64.to_int (read t (t.meta + 8))
let list_head t = Int64.to_int (read t (t.meta + 8))
let count t = Int64.to_int (read t (t.meta + 16))

let entry_key t e = Int64.to_int (read t e)
let entry_value t e = Int64.to_int (read t (e + 8))
let entry_next t e = Int64.to_int (read t (e + 16))

let frame t label f = t.framer.Pmtrace.Framer.frame label f

let create ?(framer = Pmtrace.Framer.null) ~engine pool heap =
  let meta = Pmalloc.Alloc.alloc ~zero:true heap ~bytes:meta_bytes in
  let t = { pool; heap; meta; engine; framer } in
  write t meta (match engine with Cmap -> 1L | Stree -> 2L);
  (match engine with
  | Cmap ->
      let table = Pmalloc.Alloc.alloc ~zero:true heap ~bytes:(8 * nbuckets) in
      write t (meta + 8) (Int64.of_int table);
      Pmalloc.Pool.persist pool ~off:table ~size:(8 * nbuckets)
  | Stree -> write t (meta + 8) 0L);
  write t (meta + 16) 0L;
  Pmalloc.Pool.persist pool ~off:meta ~size:meta_bytes;
  Pmalloc.Pool.set_root pool ~off:meta ~size:meta_bytes;
  t

let open_existing ?(framer = Pmtrace.Framer.null) pool heap =
  match Pmalloc.Pool.root pool with
  | None -> invalid_arg "Pmemkv.open_existing: pool has no root"
  | Some (meta, _) ->
      let engine =
        match Pmalloc.Pool.read_i64 pool ~off:meta with
        | 1L -> Cmap
        | 2L -> Stree
        | _ -> raise (Pmalloc.Pool.Corrupted "pmemkv: unknown engine tag")
      in
      { pool; heap; meta; engine; framer }

(* --- cmap --- *)

let cmap_bucket_addr t key = table_off t + (8 * Blob.bucket_of key nbuckets)

let cmap_find t key =
  let rec go prev e =
    if e = 0 then None
    else if String.equal (Blob.read t.pool (entry_key t e)) key then Some (prev, e)
    else go (Some e) (entry_next t e)
  in
  go None (Int64.to_int (read t (cmap_bucket_addr t key)))

(* --- stree (sorted list engine) --- *)

let stree_locate t key =
  (* the last entry with key < [key], and the first with key >= [key] *)
  let rec go prev e =
    if e = 0 then (prev, 0)
    else
      let k = Blob.read t.pool (entry_key t e) in
      if String.compare k key < 0 then go (Some e) (entry_next t e) else (prev, e)
  in
  go None (list_head t)

(* --- common operations --- *)

let get t key =
  frame t "pmemkv.get" (fun () ->
      match t.engine with
      | Cmap ->
          Option.map (fun (_, e) -> Blob.read t.pool (entry_value t e)) (cmap_find t key)
      | Stree -> (
          match stree_locate t key with
          | _, 0 -> None
          | _, e ->
              if String.equal (Blob.read t.pool (entry_key t e)) key then
                Some (Blob.read t.pool (entry_value t e))
              else None))

let set_value_in t tx e value =
  let old_blob = entry_value t e in
  let blob = Blob.alloc_write t.pool t.heap value in
  Pmalloc.Tx.add tx ~off:(e + 8) ~size:8;
  write t (e + 8) (Int64.of_int blob);
  (* the old blob is freed after the pointer swap is durable *)
  ignore old_blob

let insert_entry t tx ~link_addr ~next key value =
  let kblob = Blob.alloc_write t.pool t.heap key in
  let vblob = Blob.alloc_write t.pool t.heap value in
  let e = Pmalloc.Alloc.alloc ~zero:true t.heap ~bytes:entry_bytes in
  write t e (Int64.of_int kblob);
  write t (e + 8) (Int64.of_int vblob);
  write t (e + 16) (Int64.of_int next);
  Pmalloc.Pool.persist t.pool ~off:e ~size:entry_bytes;
  Pmalloc.Tx.add tx ~off:link_addr ~size:8;
  write t link_addr (Int64.of_int e);
  Pmalloc.Tx.add tx ~off:(t.meta + 16) ~size:8;
  write t (t.meta + 16) (Int64.of_int (count t + 1))

let put t key value =
  frame t "pmemkv.put" (fun () ->
      Pmalloc.Tx.run ~heap:t.heap t.pool (fun tx ->
          match t.engine with
          | Cmap -> (
              match cmap_find t key with
              | Some (_, e) -> set_value_in t tx e value
              | None ->
                  frame t "pmemkv.cmap_insert" (fun () ->
                      insert_entry t tx ~link_addr:(cmap_bucket_addr t key)
                        ~next:(Int64.to_int (read t (cmap_bucket_addr t key)))
                        key value))
          | Stree -> (
              match stree_locate t key with
              | _, e when e <> 0 && String.equal (Blob.read t.pool (entry_key t e)) key ->
                  set_value_in t tx e value
              | prev, next ->
                  frame t "pmemkv.stree_insert" (fun () ->
                      let link_addr =
                        match prev with None -> t.meta + 8 | Some p -> p + 16
                      in
                      insert_entry t tx ~link_addr ~next key value))))

let remove t key =
  frame t "pmemkv.remove" (fun () ->
      let removed = ref false in
      Pmalloc.Tx.run ~heap:t.heap t.pool (fun tx ->
          let unlink prev e =
            let link_addr =
              match (prev, t.engine) with
              | None, Cmap -> cmap_bucket_addr t key
              | None, Stree -> t.meta + 8
              | Some p, _ -> p + 16
            in
            Pmalloc.Tx.add tx ~off:link_addr ~size:8;
            write t link_addr (Int64.of_int (entry_next t e));
            Pmalloc.Tx.add tx ~off:(t.meta + 16) ~size:8;
            write t (t.meta + 16) (Int64.of_int (count t - 1));
            removed := true
          in
          match t.engine with
          | Cmap -> (
              match cmap_find t key with Some (prev, e) -> unlink prev e | None -> ())
          | Stree -> (
              match stree_locate t key with
              | prev, e when e <> 0 && String.equal (Blob.read t.pool (entry_key t e)) key ->
                  unlink prev e
              | _ -> ()));
      !removed)

(* --- structural checks and recovery --- *)

let check t =
  let in_heap addr =
    let layout = Pmalloc.Pool.layout t.pool in
    addr >= layout.Pmalloc.Layout.heap_off && addr < Pmalloc.Pool.size t.pool
  in
  let validate_entry e =
    if not (in_heap e) then Error (Printf.sprintf "entry %d outside heap" e)
    else begin
      ignore (Blob.read t.pool (entry_key t e));
      ignore (Blob.read t.pool (entry_value t e));
      Ok ()
    end
  in
  let total = ref 0 in
  let rec walk_chain e guard last_key =
    if e = 0 then Ok ()
    else if guard = 0 then Error "chain too long (cycle?)"
    else
      match validate_entry e with
      | Error m -> Error m
      | Ok () ->
          let k = Blob.read t.pool (entry_key t e) in
          if t.engine = Stree && (match last_key with Some lk -> String.compare lk k >= 0 | None -> false)
          then Error "stree: keys out of order"
          else begin
            incr total;
            walk_chain (entry_next t e) (guard - 1) (Some k)
          end
  in
  let result =
    match t.engine with
    | Stree -> walk_chain (list_head t) 1_000_000 None
    | Cmap ->
        let rec buckets b =
          if b = nbuckets then Ok ()
          else
            match walk_chain (Int64.to_int (read t (table_off t + (8 * b)))) 1_000_000 None with
            | Error m -> Error m
            | Ok () -> buckets (b + 1)
        in
        buckets 0
  in
  match result with
  | Error m -> Error m
  | Ok () ->
      if !total = count t then Ok ()
      else Error (Printf.sprintf "count mismatch: %d entries, counter %d" !total (count t))

let recover dev =
  match Pmalloc.Recovery.open_pool dev with
  | exception Pmalloc.Pool.Corrupted msg -> Error ("pool recovery: " ^ msg)
  | exception Pmalloc.Pool.Not_initialised -> Ok ()
  | pool, heap, _ ->
      if Pmalloc.Pool.root pool = None then Ok ()
      else begin
        match open_existing pool heap with
        | exception Pmalloc.Pool.Corrupted msg -> Error msg
        | t -> (
            match check t with
            | Error e -> Error ("pmemkv check: " ^ e)
            | Ok () ->
                put t "\x00probe" "1";
                let seen = get t "\x00probe" in
                let _ = remove t "\x00probe" in
                if seen = Some "1" then Ok () else Error "pmemkv probe failed")
      end
