(** PM-aware RocksDB port (pmem/rocksdb analogue): write-ahead log on PM,
    volatile memtable, and immutable sorted runs flushed to PM.

    Writes append a checksummed record to the WAL (persisted per record) and
    update the DRAM memtable; when the memtable reaches [memtable_limit]
    entries it is flushed as a sorted run (key/value blob pairs), the
    manifest gains the run, and the WAL is truncated. Reads consult the
    memtable and then the runs, newest first. Recovery loads the manifest,
    replays the WAL tail into a fresh memtable, and validates run ordering
    and record checksums.

    meta: manifest address, run count, wal address, wal used, sequence. *)

let min_pool_size = 1 lsl 22
let memtable_limit = 48
let max_runs = 64
let wal_bytes = 1 lsl 17
let meta_bytes = 64

type t = {
  pool : Pmalloc.Pool.t;
  heap : Pmalloc.Alloc.t;
  meta : int;
  memtable : (string, string option) Hashtbl.t; (* None = tombstone *)
  framer : Pmtrace.Framer.t;
}

let read t off = Pmalloc.Pool.read_i64 t.pool ~off
let write t off v = Pmalloc.Pool.write_i64 t.pool ~off v

let manifest t = Int64.to_int (read t t.meta)
let run_count t = Int64.to_int (read t (t.meta + 8))
let wal_addr t = Int64.to_int (read t (t.meta + 16))
let wal_used t = Int64.to_int (read t (t.meta + 24))

let frame t label f = t.framer.Pmtrace.Framer.frame label f

let create ?(framer = Pmtrace.Framer.null) pool heap =
  let meta = Pmalloc.Alloc.alloc ~zero:true heap ~bytes:meta_bytes in
  let manifest = Pmalloc.Alloc.alloc ~zero:true heap ~bytes:(16 * max_runs) in
  let wal = Pmalloc.Alloc.alloc ~zero:true heap ~bytes:wal_bytes in
  let t = { pool; heap; meta; memtable = Hashtbl.create 64; framer } in
  write t meta (Int64.of_int manifest);
  write t (meta + 8) 0L;
  write t (meta + 16) (Int64.of_int wal);
  write t (meta + 24) 0L;
  Pmalloc.Pool.persist pool ~off:meta ~size:meta_bytes;
  Pmalloc.Pool.persist pool ~off:manifest ~size:(16 * max_runs);
  Pmalloc.Pool.set_root pool ~off:meta ~size:meta_bytes;
  t

(* --- WAL records: length-prefixed, checksummed ---
   record: total_len i64 | kind i64 (1 put, 2 del) | klen i64 | k | vlen i64 | v | fnv i64 *)

let wal_record_bytes key value =
  8 + 8 + 8 + String.length key + 8 + String.length (Option.value ~default:"" value) + 8

exception Wal_full

let append_wal t ~key ~value =
  let vstr = Option.value ~default:"" value in
  let total = wal_record_bytes key value in
  let used = wal_used t in
  if used + total > wal_bytes then raise Wal_full;
  let base = wal_addr t + used in
  let b = Buffer.create total in
  let add_i64 v =
    let bb = Bytes.create 8 in
    Bytes.set_int64_le bb 0 v;
    Buffer.add_bytes b bb
  in
  add_i64 (Int64.of_int total);
  add_i64 (match value with Some _ -> 1L | None -> 2L);
  add_i64 (Int64.of_int (String.length key));
  Buffer.add_string b key;
  add_i64 (Int64.of_int (String.length vstr));
  Buffer.add_string b vstr;
  let payload = Buffer.contents b in
  add_i64 (Blob.hash payload);
  Pmalloc.Pool.write_bytes t.pool ~off:base (Bytes.of_string (Buffer.contents b));
  Pmalloc.Pool.persist t.pool ~off:base ~size:total;
  (* publishing the new length is the commit point of the append *)
  write t (t.meta + 24) (Int64.of_int (used + total));
  Pmalloc.Pool.persist t.pool ~off:(t.meta + 24) ~size:8

let read_wal_records pool ~wal ~used =
  let rec go off acc =
    if off >= used then Ok (List.rev acc)
    else
      let total = Int64.to_int (Pmalloc.Pool.read_i64 pool ~off:(wal + off)) in
      if total < 40 || off + total > used then Error "wal: bad record length"
      else
        let body =
          Pmalloc.Pool.read_bytes pool ~off:(wal + off) ~len:(total - 8) |> Bytes.to_string
        in
        let stored = Pmalloc.Pool.read_i64 pool ~off:(wal + off + total - 8) in
        if not (Int64.equal stored (Blob.hash body)) then Error "wal: checksum mismatch"
        else
          let kind = Pmalloc.Pool.read_i64 pool ~off:(wal + off + 8) in
          let klen = Int64.to_int (Pmalloc.Pool.read_i64 pool ~off:(wal + off + 16)) in
          let key = String.sub body 24 klen in
          let vlen =
            Int64.to_int (Pmalloc.Pool.read_i64 pool ~off:(wal + off + 24 + klen))
          in
          let v = String.sub body (32 + klen) vlen in
          let entry = (key, if Int64.equal kind 1L then Some v else None) in
          go (off + total) (entry :: acc)
  in
  go 0 []

(* --- sorted runs --- *)

(* run: count i64 | count x { key_blob i64, value_blob i64 (0 = tombstone) } *)
let flush_memtable t =
  frame t "rocksdb.flush_memtable" (fun () ->
      if run_count t >= max_runs then failwith "rocksdb: manifest full";
      let entries =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.memtable []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      let n = List.length entries in
      let run = Pmalloc.Alloc.alloc ~zero:true t.heap ~bytes:(8 + (16 * n)) in
      write t run (Int64.of_int n);
      List.iteri
        (fun i (k, v) ->
          (* per-entry frame: the flush loop body is one code location *)
          frame t "rocksdb.flush_entry" (fun () ->
              let kblob = Blob.alloc_write t.pool t.heap k in
              let vblob =
                match v with Some s -> Blob.alloc_write t.pool t.heap s | None -> 0
              in
              write t (run + 8 + (16 * i)) (Int64.of_int kblob);
              write t (run + 16 + (16 * i)) (Int64.of_int vblob)))
        entries;
      Pmalloc.Pool.persist t.pool ~off:run ~size:(8 + (16 * n));
      (* manifest gains the run, then the WAL is truncated: ordered so a
         crash in between only duplicates (runs win over a replayed WAL) *)
      let slot = manifest t + (16 * run_count t) in
      write t slot (Int64.of_int run);
      Pmalloc.Pool.persist t.pool ~off:slot ~size:16;
      write t (t.meta + 8) (Int64.of_int (run_count t + 1));
      Pmalloc.Pool.persist t.pool ~off:(t.meta + 8) ~size:8;
      write t (t.meta + 24) 0L;
      Pmalloc.Pool.persist t.pool ~off:(t.meta + 24) ~size:8;
      Hashtbl.reset t.memtable)

let put t key value =
  frame t "rocksdb.put" (fun () ->
      append_wal t ~key ~value:(Some value);
      Hashtbl.replace t.memtable key (Some value);
      if Hashtbl.length t.memtable >= memtable_limit then flush_memtable t)

let delete t key =
  frame t "rocksdb.delete" (fun () ->
      append_wal t ~key ~value:None;
      Hashtbl.replace t.memtable key None;
      if Hashtbl.length t.memtable >= memtable_limit then flush_memtable t)

let run_find t run key =
  let n = Int64.to_int (read t run) in
  let rec bsearch lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let kblob = Int64.to_int (read t (run + 8 + (16 * mid))) in
      let k = Blob.read t.pool kblob in
      let c = String.compare key k in
      if c = 0 then
        let vblob = Int64.to_int (read t (run + 16 + (16 * mid))) in
        Some (if vblob = 0 then None else Some (Blob.read t.pool vblob))
      else if c < 0 then bsearch lo mid
      else bsearch (mid + 1) hi
  in
  bsearch 0 n

let get t key =
  frame t "rocksdb.get" (fun () ->
      match Hashtbl.find_opt t.memtable key with
      | Some v -> v
      | None ->
          let rec runs i =
            if i < 0 then None
            else
              let run = Int64.to_int (read t (manifest t + (16 * i))) in
              match run_find t run key with Some v -> v | None -> runs (i - 1)
          in
          runs (run_count t - 1))

(* --- recovery --- *)

let open_existing ?(framer = Pmtrace.Framer.null) pool heap =
  match Pmalloc.Pool.root pool with
  | Some (meta, _) -> { pool; heap; meta; memtable = Hashtbl.create 64; framer }
  | None -> invalid_arg "Rocksdb_pm.open_existing: pool has no root"

let check_runs t =
  let rec runs i =
    if i = run_count t then Ok ()
    else
      let run = Int64.to_int (read t (manifest t + (16 * i))) in
      let n = Int64.to_int (read t run) in
      if n < 0 then Error (Printf.sprintf "run %d: negative size" i)
      else begin
        let err = ref None in
        let last = ref None in
        for j = 0 to n - 1 do
          if !err = None then
            match Blob.read t.pool (Int64.to_int (read t (run + 8 + (16 * j)))) with
            | k ->
                (match !last with
                | Some lk when String.compare lk k >= 0 ->
                    err := Some (Printf.sprintf "run %d unsorted at %d" i j)
                | _ -> ());
                last := Some k
            | exception Pmalloc.Pool.Corrupted m -> err := Some m
        done;
        match !err with Some m -> Error m | None -> runs (i + 1)
      end
  in
  runs 0

let recover dev =
  match Pmalloc.Recovery.open_pool dev with
  | exception Pmalloc.Pool.Corrupted msg -> Error ("pool recovery: " ^ msg)
  | exception Pmalloc.Pool.Not_initialised -> Ok ()
  | pool, heap, _ ->
      if Pmalloc.Pool.root pool = None then Ok ()
      else
        let t = open_existing pool heap in
        (match check_runs t with
        | Error e -> Error ("rocksdb runs: " ^ e)
        | Ok () -> (
            match read_wal_records pool ~wal:(wal_addr t) ~used:(wal_used t) with
            | Error e -> Error ("rocksdb wal: " ^ e)
            | Ok records ->
                List.iter (fun (k, v) -> Hashtbl.replace t.memtable k v) records;
                put t "\x00probe" "1";
                let seen = get t "\x00probe" in
                let _ = delete t "\x00probe" in
                if seen = Some "1" then Ok () else Error "rocksdb probe failed"))
