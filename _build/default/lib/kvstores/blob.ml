(** Length-prefixed byte blobs in a pool: the string storage primitive the
    pmemkv/Redis/RocksDB ports share. Layout: length (8 bytes) then the
    payload, chunk-allocated. *)

let alloc_write pool heap s =
  let len = String.length s in
  let addr = Pmalloc.Alloc.alloc ~zero:true heap ~bytes:(8 + len) in
  Pmalloc.Pool.write_i64 pool ~off:addr (Int64.of_int len);
  if len > 0 then Pmalloc.Pool.write_bytes pool ~off:(addr + 8) (Bytes.of_string s);
  Pmalloc.Pool.persist pool ~off:addr ~size:(8 + len);
  addr

let read pool addr =
  let len = Int64.to_int (Pmalloc.Pool.read_i64 pool ~off:addr) in
  if len < 0 || len > Pmalloc.Pool.size pool then
    raise (Pmalloc.Pool.Corrupted (Printf.sprintf "blob at %d: bad length %d" addr len));
  if len = 0 then "" else Bytes.to_string (Pmalloc.Pool.read_bytes pool ~off:(addr + 8) ~len)

let free pool heap addr =
  ignore pool;
  Pmalloc.Alloc.free heap addr

(* FNV-1a over a string, for bucket selection. *)
let hash s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let bucket_of s nbuckets =
  Int64.to_int (Int64.rem (Int64.logand (hash s) Int64.max_int) (Int64.of_int nbuckets))
