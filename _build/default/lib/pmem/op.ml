(** Descriptors for the PM-relevant instructions the device executes.

    These are what the instrumentation layer (the Pin analogue) observes.
    The taxonomy follows paper section 2: stores (regular and non-temporal),
    the three flush variants, the two fences, and read-modify-write
    instructions which carry fence semantics. *)

type flush_kind = Clflush | Clflushopt | Clwb

type fence_kind = Sfence | Mfence | Rmw

type t =
  | Store of { addr : int; size : int; nt : bool }
      (** A store to PM. [nt] marks non-temporal (cache-bypassing) stores. *)
  | Flush of { kind : flush_kind; line : int; dirty : bool; volatile : bool }
      (** A flush of cache line [line]. [dirty] records whether the line had
          unpersisted stores at flush time; [volatile] records whether the
          flushed address lies outside the PM pool. *)
  | Fence of { kind : fence_kind; pending_flushes : int; pending_nt : int }
      (** A fence draining [pending_flushes] buffered flushes and
          [pending_nt] buffered non-temporal stores. *)
  | Load of { addr : int; size : int }
      (** A load from PM. Only emitted when load tracing is enabled. *)

let flush_kind_to_string = function
  | Clflush -> "clflush"
  | Clflushopt -> "clflushopt"
  | Clwb -> "clwb"

let fence_kind_to_string = function
  | Sfence -> "sfence"
  | Mfence -> "mfence"
  | Rmw -> "rmw"

let to_string = function
  | Store { addr; size; nt } ->
      Printf.sprintf "%s addr=%d size=%d" (if nt then "store.nt" else "store") addr size
  | Flush { kind; line; dirty; volatile } ->
      Printf.sprintf "%s line=%d dirty=%b volatile=%b" (flush_kind_to_string kind) line
        dirty volatile
  | Fence { kind; pending_flushes; pending_nt } ->
      Printf.sprintf "%s pending_flushes=%d pending_nt=%d" (fence_kind_to_string kind)
        pending_flushes pending_nt
  | Load { addr; size } -> Printf.sprintf "load addr=%d size=%d" addr size

let is_persistency_instruction = function
  | Flush _ | Fence _ -> true
  | Store _ | Load _ -> false
