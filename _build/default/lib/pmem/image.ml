type t = { buf : bytes }

let create ~size =
  assert (size > 0);
  { buf = Bytes.make size '\000' }

let size t = Bytes.length t.buf
let snapshot t = { buf = Bytes.copy t.buf }

let check t addr size =
  if addr < 0 || size < 0 || addr + size > Bytes.length t.buf then
    invalid_arg
      (Printf.sprintf "Pmem.Image: access [%d, %d) out of bounds (size %d)" addr
         (addr + size) (Bytes.length t.buf))

let read t ~addr ~size =
  check t addr size;
  Bytes.sub t.buf addr size

let write t ~addr b =
  check t addr (Bytes.length b);
  Bytes.blit b 0 t.buf addr (Bytes.length b)

let read_i64 t ~addr =
  check t addr 8;
  Bytes.get_int64_le t.buf addr

let write_i64 t ~addr v =
  check t addr 8;
  Bytes.set_int64_le t.buf addr v

let blit_from t ~src_addr ~dst ~dst_off ~len =
  check t src_addr len;
  Bytes.blit t.buf src_addr dst dst_off len

let blit_to t ~dst_addr ~src ~src_off ~len =
  check t dst_addr len;
  Bytes.blit src src_off t.buf dst_addr len

let equal a b = Bytes.equal a.buf b.buf
let unsafe_bytes t = t.buf
