let line_size = 64
let atomic_size = 8
let line_of addr = addr / line_size
let line_base line = line * line_size
let slot_of addr = addr / atomic_size
let slot_base slot = slot * atomic_size

let spanned ~unit_size ~addr ~size =
  assert (size > 0);
  let first = addr / unit_size and last = (addr + size - 1) / unit_size in
  let rec collect i acc = if i < first then acc else collect (i - 1) (i :: acc) in
  collect last []

let lines_spanned ~addr ~size = spanned ~unit_size:line_size ~addr ~size
let slots_spanned ~addr ~size = spanned ~unit_size:atomic_size ~addr ~size
let align_up n a = (n + a - 1) / a * a
let is_aligned n a = n mod a = 0
