(** Address arithmetic for the simulated persistent-memory device.

    Addresses are plain byte offsets into a pool. The simulator uses 64-byte
    cache lines (the x86 line size) and 8-byte failure-atomic slots (the
    granularity at which PM guarantees atomic persistence, see paper section
    2). *)

val line_size : int
(** Cache-line size in bytes (64). *)

val atomic_size : int
(** Failure-atomicity granularity in bytes (8). *)

val line_of : int -> int
(** [line_of addr] is the index of the cache line containing [addr]. *)

val line_base : int -> int
(** [line_base line] is the first byte address of cache line [line]. *)

val slot_of : int -> int
(** [slot_of addr] is the index of the 8-byte atomic slot containing [addr]. *)

val slot_base : int -> int
(** [slot_base slot] is the first byte address of atomic slot [slot]. *)

val lines_spanned : addr:int -> size:int -> int list
(** [lines_spanned ~addr ~size] lists the cache-line indices touched by a
    [size]-byte access at [addr], in increasing order. [size] must be
    positive. *)

val slots_spanned : addr:int -> size:int -> int list
(** [slots_spanned ~addr ~size] lists the 8-byte slot indices touched by a
    [size]-byte access at [addr], in increasing order. *)

val align_up : int -> int -> int
(** [align_up n a] rounds [n] up to the next multiple of [a]. *)

val is_aligned : int -> int -> bool
(** [is_aligned n a] is true when [n] is a multiple of [a]. *)
