lib/pmem/image.mli:
