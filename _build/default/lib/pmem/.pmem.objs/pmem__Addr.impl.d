lib/pmem/addr.ml:
