lib/pmem/image.ml: Bytes Printf
