lib/pmem/enumerate.ml: Addr Bytes Device Fun Image List Seq
