lib/pmem/op.ml: Printf
