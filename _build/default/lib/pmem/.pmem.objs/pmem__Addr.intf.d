lib/pmem/addr.mli:
