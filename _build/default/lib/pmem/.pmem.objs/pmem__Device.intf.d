lib/pmem/device.mli: Image Op Stats
