lib/pmem/device.ml: Addr Bytes Hashtbl Image Int64 List Op Option Stats
