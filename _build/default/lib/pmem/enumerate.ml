(** Exhaustive enumeration of permissible post-failure images.

    Under the x86 relaxed-buffered model, any subset of the unpersisted line
    contents may have reached PM when the machine dies: dirty lines can be
    evicted at any time and unfenced flushes may or may not have drained.
    A line with both an unfenced flush snapshot and newer dirty content can be
    observed in three states (persisted, snapshot, newest). This module
    enumerates these combinations — the search space Yat replays and Mumak
    deliberately avoids (paper sections 3 and 4.1). *)

(** A choice assigns, per unpersisted line, which version (if any) persisted.
    [None] = the already-persistent content; [Some i] = the i-th candidate
    from {!Device.line_versions}. *)
type choice = (int * int option) list

let apply_choice base versions (choice : choice) =
  let img = Image.snapshot base in
  List.iter
    (fun (line, pick) ->
      match pick with
      | None -> ()
      | Some i ->
          let content = List.nth (List.assoc line versions) i in
          let addr = Addr.line_base line in
          let avail = min Addr.line_size (Image.size img - addr) in
          if avail > 0 then Image.blit_to img ~dst_addr:addr ~src:content ~src_off:0 ~len:avail)
    choice;
  img

(* Number of post-failure states: product over lines of (1 + versions),
   saturating at max_int (the space easily overflows 62 bits — the point of
   the whole paper). *)
let state_count versions =
  List.fold_left
    (fun acc (_, vs) ->
      let k = 1 + List.length vs in
      if acc > max_int / k then max_int else acc * k)
    1 versions

(** [images dev ~limit] is the sequence of distinct post-failure images of
    [dev], at cache-line granularity, capped at [limit] images. The first
    image is always the pure-ADR state (nothing extra persisted) and the
    enumeration ends with the full program-order prefix. Returns the images
    paired with the total (uncapped) state count. *)
let images dev ~limit =
  let base = Device.persisted_image dev in
  let versions = Device.line_versions dev in
  let total = state_count versions in
  let rec expand lines : choice Seq.t =
    match lines with
    | [] -> Seq.return []
    | (line, vs) :: rest ->
        let picks =
          Seq.cons None (Seq.init (List.length vs) (fun i -> Some i))
        in
        Seq.concat_map
          (fun pick -> Seq.map (fun tail -> (line, pick) :: tail) (expand rest))
          picks
  in
  let seq =
    expand versions |> Seq.take limit |> Seq.map (apply_choice base versions)
  in
  (seq, total)

(** Like {!images} but at 8-byte-slot granularity within each line, modelling
    the finer failure-atomicity unit. The space grows as 2^(slots), so this is
    only usable on tiny windows; the cap applies. *)
let images_slot_granular dev ~limit =
  let base = Device.persisted_image dev in
  let versions = Device.line_versions dev in
  (* For each line take the newest unpersisted content and split it into the
     8 slots that differ from the persisted content; each slot independently
     persists or not. *)
  let slots =
    List.concat_map
      (fun (line, vs) ->
        let newest = List.nth vs (List.length vs - 1) in
        let addr0 = Addr.line_base line in
        List.filter_map
          (fun k ->
            let addr = addr0 + (k * Addr.atomic_size) in
            if addr + Addr.atomic_size > Image.size base then None
            else
              let persisted = Image.read base ~addr ~size:Addr.atomic_size in
              let candidate = Bytes.sub newest (k * Addr.atomic_size) Addr.atomic_size in
              if Bytes.equal persisted candidate then None else Some (addr, candidate))
          (List.init (Addr.line_size / Addr.atomic_size) Fun.id))
      versions
  in
  let n = List.length slots in
  let total = if n >= 62 then max_int else 1 lsl n in
  let nth_image mask =
    let img = Image.snapshot base in
    List.iteri
      (fun i (addr, content) ->
        if mask land (1 lsl i) <> 0 then
          Image.blit_to img ~dst_addr:addr ~src:content ~src_off:0 ~len:Addr.atomic_size)
      slots;
    img
  in
  let seq = Seq.init (min limit total) nth_image in
  (seq, total)
