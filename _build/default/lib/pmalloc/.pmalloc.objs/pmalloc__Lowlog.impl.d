lib/pmalloc/lowlog.ml: Bugs Checksum Int64 Layout List Pmem Pmtrace
