lib/pmalloc/pool.ml: Bugs Bytes Char Checksum Int64 Layout Lowlog Pmem Version
