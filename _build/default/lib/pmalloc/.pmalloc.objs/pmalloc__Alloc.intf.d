lib/pmalloc/alloc.mli: Pool
