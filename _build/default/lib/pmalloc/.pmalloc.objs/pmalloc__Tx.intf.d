lib/pmalloc/tx.mli: Alloc Pool
