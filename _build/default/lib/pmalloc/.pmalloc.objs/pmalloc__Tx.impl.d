lib/pmalloc/tx.ml: Alloc Annotations Bugs Int64 Layout List Obj Pmem Pool Printf Version
