lib/pmalloc/redo.ml: Lowlog Pool
