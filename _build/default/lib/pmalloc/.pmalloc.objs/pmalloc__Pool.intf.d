lib/pmalloc/pool.mli: Layout Pmem Version
