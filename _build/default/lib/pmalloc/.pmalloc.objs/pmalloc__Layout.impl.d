lib/pmalloc/layout.ml: Pmem Printf
