lib/pmalloc/version.ml:
