lib/pmalloc/checksum.ml: Bytes Char Int64 List
