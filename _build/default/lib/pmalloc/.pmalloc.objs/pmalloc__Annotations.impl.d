lib/pmalloc/annotations.ml: Fun
