lib/pmalloc/bugs.ml: Bugreg List
