lib/pmalloc/alloc.ml: Bytes Char Int64 Layout Pmem Pool Printf Redo Version
