lib/pmalloc/recovery.ml: Alloc Fmt Pool Printf Redo Tx
