(** Persistent chunk allocator.

    The heap is an array of 64-byte chunks described by a persisted bitmap;
    every bitmap mutation goes through the redo log as whole-word writes,
    so allocation and free are failure-atomic. A volatile mirror of the
    bitmap accelerates the free-run search; it is rebuilt from PM on
    {!attach}.

    Version note: under {!Version.V1_6} fresh allocations are zero-filled
    and persisted; from 1.8 on they are handed out uninitialised (garbage),
    matching the allocator change that breaks Hashmap Atomic (paper
    section 6.1). *)

type t

exception Out_of_space of { requested_chunks : int }

val attach : Pool.t -> t
(** Build the volatile mirror from the persisted bitmap. *)

val pool : t -> Pool.t
val chunk_count : t -> int
val used_chunks : t -> int
val free_chunks : t -> int

val alloc : ?zero:bool -> t -> bytes:int -> int
(** Allocate at least [bytes] (chunk-rounded); returns the address.
    [zero] forces zero-filling regardless of library version. *)

val alloc_size : t -> int -> int
(** Size in bytes of the allocation starting at the given address. *)

val free : t -> int -> unit
(** Release an allocation. Raises [Invalid_argument] if the address is not
    the start of one. *)

val is_allocation_start : t -> int -> bool

val check : Pool.t -> (unit, string) result
(** Structural validation of the persisted bitmap (no orphan continuation
    chunks, no invalid marks). Used by recovery procedures. *)
