(** Failure-atomic transactions backed by a persistent undo log
    (libpmemobj-style).

    Protocol: {!begin_} marks the lane ACTIVE; {!add} snapshots a range
    {e before} the caller overwrites it (each entry is fully persisted
    before the entry count is bumped); {!commit} flushes every snapshotted
    range, marks the lane COMMITTED — the atomic commit point — then
    releases the log. Recovery ({!recover}) rolls an ACTIVE lane back and
    finishes a COMMITTED one.

    Large transactions overflow the fixed log area into extension blocks
    allocated from the heap and chained behind the lane header; the seeded
    [pmdk112_tx_overflow_commit] bug (see {!Bugs}) mis-orders the release
    of this chain during commit — the PMDK 1.12 issue Mumak found. *)

type t

exception Log_full
(** The fixed log area is exhausted and no heap was provided to grow it. *)

exception Not_active
(** The transaction handle was already committed or aborted. *)

val begin_ : ?heap:Alloc.t -> Pool.t -> t
(** Open a transaction on the pool's lane. Raises [Invalid_argument] if one
    is already open and {!Pool.Corrupted} if the clean lane references a
    stale undo-log extension (the seeded-bug signature). *)

val add : t -> off:int -> size:int -> unit
(** Snapshot [size] bytes at [off] so they can be rolled back. Must be
    called before the range is modified. *)

val add_and_store_i64 : t -> off:int -> int64 -> unit
(** The common snapshot-then-store pattern for one word. *)

val commit : t -> unit
(** Make every snapshotted range durable and release the log. *)

val abort : t -> unit
(** Roll every snapshotted range back to its pre-transaction contents. *)

val run : ?heap:Alloc.t -> Pool.t -> (t -> 'a) -> 'a
(** [run pool f] runs [f] inside a transaction, committing on normal return
    and aborting if [f] raises. A [run] nested inside another [run] on the
    same pool joins the outer transaction (libpmemobj's flattened nesting). *)

val recover :
  ?heap:Alloc.t -> Pool.t -> [ `Clean | `Completed | `Rolled_back of int ]
(** Recovery step for the transaction lane, called on a crash image before
    the application touches any data: rolls back an interrupted transaction
    or finishes an interrupted commit. Raises {!Pool.Corrupted} on
    unrepairable log state. *)
