(** A persistent object pool: the libpmemobj analogue.

    A pool owns a whole {!Pmem.Device}; all offsets are device addresses.
    The pool exposes raw typed accessors plus the persist primitives
    applications use. Crash consistency of pool metadata is delegated to
    {!Lowlog}/{!Redo} (allocator and header updates) and {!Tx} (user
    transactions); {!Recovery.open_pool} composes their recovery steps. *)

type t

exception Corrupted of string
(** The persistent state cannot be brought to a consistent state: the
    signal the recovery oracle turns into a bug report. *)

exception Not_initialised
(** The device holds no committed pool: either it is blank or a crash hit
    pool creation before the commit marker (the header checksum) was
    written. The caller re-creates the pool. *)

val create : ?version:Version.t -> Pmem.Device.t -> t
(** Format a fresh pool (default version 1.12). Creation is failure-atomic:
    everything is written first and committed by a single atomic store of
    the header checksum. *)

val attach : Pmem.Device.t -> t
(** Attach to an existing pool without running recovery; validates the
    header. Raises {!Not_initialised} or {!Corrupted}. *)

val attach_unchecked : Pmem.Device.t -> t
(** Attach without validation — recovery repairs the redo log first, then
    calls {!validate_header}. *)

val validate_header : t -> unit
(** Raises {!Not_initialised} when the pool was never committed and
    {!Corrupted} when the header fails its checksum. *)

val device : t -> Pmem.Device.t
val layout : t -> Layout.t
val version : t -> Version.t
val size : t -> int

(** {1 Raw access} — offsets are device addresses *)

val read_i64 : t -> off:int -> int64
val write_i64 : t -> off:int -> int64 -> unit
val read_bytes : t -> off:int -> len:int -> bytes
val write_bytes : t -> off:int -> bytes -> unit
val write_bytes_nt : t -> off:int -> bytes -> unit
val read_u8 : t -> off:int -> int
val write_u8 : t -> off:int -> int -> unit

(** {1 Persistency primitives} *)

val flush : t -> off:int -> size:int -> unit
(** Write back ([clwb]) every line of the range, without draining. *)

val flush_invalidating : t -> off:int -> size:int -> unit
(** [clflushopt] variant of {!flush}. *)

val drain : t -> unit
(** [sfence]: make every pending flush durable. *)

val persist : t -> off:int -> size:int -> unit
(** [flush] + [drain]: the everyday "make this range durable" helper, like
    libpmemobj's [pmemobj_persist]. *)

val persist_i64 : t -> off:int -> int64 -> unit
(** Store then persist one word. *)

val cas : t -> off:int -> expected:int64 -> desired:int64 -> bool
val fetch_add : t -> off:int -> int64 -> int64

val volatile_scratch_addr : t -> int
(** An address guaranteed to lie outside the pool: flushing it reproduces
    the "flush acts on a volatile address" performance bug. *)

(** {1 Header and root object} *)

val header_checksum : t -> int64
(** The checksum the current header fields should carry. *)

val set_root : t -> off:int -> size:int -> unit
(** Publish the application root object, failure-atomically (the update
    and its checksum refresh go through the redo log). *)

val root : t -> (int * int) option
(** [root t] is [Some (off, size)] once a root was published. *)
