(** Redo log for pool-metadata updates (the allocator's bitmap writes, the
    header's root updates): the pool-level face of {!Lowlog}.

    Build the entry set in volatile memory, then {!commit}: entries are
    persisted, the committed flag is the atomic commit point, the entries
    are applied to their home locations, the log is cleared. Recovery
    re-applies a committed log and discards an uncommitted one, making
    every metadata operation failure-atomic. *)

type builder = Lowlog.builder

let begin_ () = Lowlog.builder ()
let add b ~addr ~value = Lowlog.stage b ~addr ~value

let commit pool b = Lowlog.commit (Pool.device pool) (Pool.layout pool) b

(** Recovery step; translates the low-level corruption signal into
    {!Pool.Corrupted}. *)
let recover pool =
  match Lowlog.recover (Pool.device pool) (Pool.layout pool) with
  | result -> result
  | exception Lowlog.Corrupted msg -> raise (Pool.Corrupted msg)
