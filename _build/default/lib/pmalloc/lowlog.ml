(** Device-level redo log: the failure-atomic multi-word update primitive.

    This is the same machinery {!Redo} exposes at the pool level, factored
    to operate on a raw device + layout so the pool header itself (root
    pointer updates) can use it without a dependency cycle.

    Protocol: persist the staged entries, persist count+checksum, set the
    committed flag (single atomic store — the commit point), apply the
    entries to their home locations, clear the flag. Recovery re-applies a
    committed log and discards an uncommitted one. *)

exception Corrupted of string

type entry = { addr : int; value : int64 }

type builder = { mutable entries : entry list (* newest first *) }

let builder () = { entries = [] }

let stage b ~addr ~value =
  if List.length b.entries >= Layout.redo_cap then
    invalid_arg "Pmalloc.Lowlog: log capacity exceeded";
  b.entries <- { addr; value } :: b.entries

let entries_checksum entries =
  Checksum.of_i64s
    (List.concat_map (fun e -> [ Int64.of_int e.addr; e.value ]) entries)

let persist dev ~addr ~size =
  Pmem.Device.flush_range dev ~kind:Pmem.Op.Clwb ~addr ~size;
  Pmem.Device.sfence dev

let apply_entries dev entries =
  (* Seeded durability bug: the applied entries are never flushed at all —
     the log is cleared while the home locations still sit in the cache. *)
  let skip_persist = Bugs.redo_apply_missing_drain_enabled () in
  List.iter
    (fun e ->
      Pmtrace.Framer.in_ambient "pmalloc.redo_apply" (fun () ->
          Pmem.Device.store_i64 dev ~addr:e.addr e.value;
          if not skip_persist then
            Pmem.Device.flush_range dev ~kind:Pmem.Op.Clwb ~addr:e.addr ~size:8))
    entries;
  if not skip_persist then Pmem.Device.sfence dev

let clear dev (layout : Layout.t) =
  let base = layout.Layout.redo_off in
  Pmem.Device.store_i64 dev ~addr:(base + Layout.redo_committed_off) 0L;
  Pmem.Device.store_i64 dev ~addr:(base + Layout.redo_count_off) 0L;
  persist dev ~addr:base ~size:Layout.redo_header_size

(** Commit and apply the staged entries: after [commit] returns, all target
    words hold their new values durably. *)
let commit dev (layout : Layout.t) b =
  let entries = List.rev b.entries in
  let base = layout.Layout.redo_off in
  List.iteri
    (fun i e ->
      Pmtrace.Framer.in_ambient "pmalloc.redo_write" (fun () ->
          let off = Layout.redo_entry_off layout i in
          Pmem.Device.store_i64 dev ~addr:off (Int64.of_int e.addr);
          Pmem.Device.store_i64 dev ~addr:(off + 8) e.value;
          Pmem.Device.flush_range dev ~kind:Pmem.Op.Clwb ~addr:off
            ~size:Layout.redo_entry_size))
    entries;
  Pmem.Device.store_i64 dev
    ~addr:(base + Layout.redo_count_off)
    (Int64.of_int (List.length entries));
  Pmem.Device.store_i64 dev ~addr:(base + Layout.redo_checksum_off) (entries_checksum entries);
  persist dev ~addr:base ~size:Layout.redo_header_size;
  (* Commit point: a single atomic flag store. *)
  Pmem.Device.store_i64 dev ~addr:(base + Layout.redo_committed_off) 1L;
  persist dev ~addr:(base + Layout.redo_committed_off) ~size:8;
  apply_entries dev entries;
  clear dev layout

let read_entries dev layout count =
  List.init count (fun i ->
      let off = Layout.redo_entry_off layout i in
      {
        addr = Int64.to_int (Pmem.Device.load_i64 dev ~addr:off);
        value = Pmem.Device.load_i64 dev ~addr:(off + 8);
      })

(** Recovery step: re-apply a committed log (the crash hit between commit
    and clear) or discard an uncommitted one. *)
let recover dev (layout : Layout.t) =
  let base = layout.Layout.redo_off in
  let committed = Pmem.Device.load_i64 dev ~addr:(base + Layout.redo_committed_off) in
  if Int64.equal committed 1L then begin
    let count =
      Int64.to_int (Pmem.Device.load_i64 dev ~addr:(base + Layout.redo_count_off))
    in
    if count < 0 || count > Layout.redo_cap then
      raise (Corrupted "redo log: invalid entry count");
    let entries = read_entries dev layout count in
    let stored = Pmem.Device.load_i64 dev ~addr:(base + Layout.redo_checksum_off) in
    if not (Int64.equal stored (entries_checksum entries)) then
      raise (Corrupted "redo log: checksum mismatch on committed log");
    apply_entries dev entries;
    clear dev layout;
    `Reapplied count
  end
  else begin
    if
      not
        (Int64.equal (Pmem.Device.load_i64 dev ~addr:(base + Layout.redo_count_off)) 0L)
    then clear dev layout;
    `Clean
  end
