(** Library versions, mirroring the PMDK versions used in the evaluation.

    Each version ships with a different set of intrinsic (seeded) bugs —
    the way PMDK 1.6, 1.8 and 1.12 each had their own published issues —
    and minor behavioural differences that the benchmarks rely on. *)

type t = V1_6 | V1_8 | V1_12

let to_string = function V1_6 -> "1.6" | V1_8 -> "1.8" | V1_12 -> "1.12"
let to_int64 = function V1_6 -> 16L | V1_8 -> 18L | V1_12 -> 112L

let of_int64 = function
  | 16L -> Some V1_6
  | 18L -> Some V1_8
  | 112L -> Some V1_12
  | _ -> None

(** Hashmap Atomic relies on allocation semantics that changed in 1.8
    ("Hashmap Atomic does not work correctly with PMDK 1.8", section 6.1). *)
let supports_hashmap_atomic = function V1_6 -> true | V1_8 | V1_12 -> false
