(** Persistent chunk allocator.

    The heap is an array of 64-byte chunks described by a persisted bitmap
    (one byte per chunk: 0 = free, 1 = allocation start, 2 = continuation).
    Every bitmap mutation goes through the {!Redo} log as whole-word writes,
    so allocation and free are failure-atomic: after any crash the bitmap is
    either fully pre- or fully post-operation.

    A volatile mirror of the bitmap accelerates the free-run search; it is
    rebuilt from PM on {!attach}.

    Version note: in {!Version.V1_6} fresh allocations are zero-filled and
    persisted; from 1.8 on they are handed out uninitialised (filled with a
    0xDD poison pattern in the simulator), matching the allocator behaviour
    change that breaks Hashmap Atomic (paper section 6.1). *)

type t = {
  pool : Pool.t;
  mirror : Bytes.t; (* volatile copy of the bitmap *)
  mutable next_fit : int; (* chunk index where the next search starts *)
  mutable used_chunks : int;
}

exception Out_of_space of { requested_chunks : int }

let free_byte = '\000'
let start_byte = '\001'
let cont_byte = '\002'

let attach pool =
  let layout = Pool.layout pool in
  let mirror =
    Pool.read_bytes pool ~off:layout.Layout.bitmap_off ~len:layout.Layout.chunk_count
  in
  let used = ref 0 in
  Bytes.iter (fun c -> if c <> free_byte then incr used) mirror;
  { pool; mirror; next_fit = 0; used_chunks = !used }

let pool t = t.pool
let chunk_count t = (Pool.layout t.pool).Layout.chunk_count
let used_chunks t = t.used_chunks
let free_chunks t = chunk_count t - t.used_chunks

(* Find [n] consecutive free chunks, next-fit with wrap-around. *)
let find_run t n =
  let total = chunk_count t in
  let run_at start =
    let rec ok i = i >= n || (start + i < total && Bytes.get t.mirror (start + i) = free_byte && ok (i + 1)) in
    ok 0
  in
  let rec search pos remaining =
    if remaining <= 0 then None
    else
      let pos = if pos >= total then 0 else pos in
      if run_at pos then Some pos
      else search (pos + 1) (remaining - 1)
  in
  search t.next_fit total

(* Stage whole-word bitmap updates covering chunk range [c0, c0+n) where
   each byte takes its new mark, and commit them through the redo log. *)
let write_marks t ~c0 ~n ~mark_start ~mark_rest =
  let layout = Pool.layout t.pool in
  let bitmap_off = layout.Layout.bitmap_off in
  (* Update the mirror first, then derive the new word values from it. *)
  for i = 0 to n - 1 do
    Bytes.set t.mirror (c0 + i) (if i = 0 then mark_start else mark_rest)
  done;
  let w_first = (bitmap_off + c0) / 8 and w_last = (bitmap_off + c0 + n - 1) / 8 in
  let b = Redo.begin_ () in
  for w = w_first to w_last do
    let word_addr = w * 8 in
    let value = ref 0L in
    for k = 7 downto 0 do
      let byte_addr = word_addr + k in
      let c = byte_addr - bitmap_off in
      let byte =
        if c >= 0 && c < chunk_count t then Char.code (Bytes.get t.mirror c) else 0
      in
      value := Int64.logor (Int64.shift_left !value 8) (Int64.of_int byte)
    done;
    Redo.add b ~addr:word_addr ~value:!value
  done;
  Redo.commit t.pool b

let alloc ?(zero = false) t ~bytes =
  if bytes <= 0 then invalid_arg "Pmalloc.Alloc.alloc: size must be positive";
  let n = (bytes + Layout.chunk_size - 1) / Layout.chunk_size in
  match find_run t n with
  | None -> raise (Out_of_space { requested_chunks = n })
  | Some c0 ->
      write_marks t ~c0 ~n ~mark_start:start_byte ~mark_rest:cont_byte;
      t.next_fit <- c0 + n;
      t.used_chunks <- t.used_chunks + n;
      let addr = Layout.chunk_addr (Pool.layout t.pool) c0 in
      let zero_fill = zero || Pool.version t.pool = Version.V1_6 in
      if zero_fill then begin
        for i = 0 to n - 1 do
          Pool.write_bytes t.pool
            ~off:(addr + (i * Layout.chunk_size))
            (Bytes.make Layout.chunk_size '\000')
        done;
        Pool.persist t.pool ~off:addr ~size:(n * Layout.chunk_size)
      end
      else
        (* Uninitialised memory: hand out garbage contents, the way reused
           heap memory holds stale data. Not a program store, so it is
           invisible to the instrumentation. *)
        Pmem.Device.poison (Pool.device t.pool) ~addr ~size:(n * Layout.chunk_size);
      addr

(* Number of chunks in the allocation starting at chunk [c0]. *)
let run_length t c0 =
  let total = chunk_count t in
  let rec count i =
    if c0 + i < total && Bytes.get t.mirror (c0 + i) = cont_byte then count (i + 1) else i
  in
  count 1

let alloc_size t addr =
  let c0 = Layout.chunk_of_addr (Pool.layout t.pool) addr in
  run_length t c0 * Layout.chunk_size

let is_allocation_start t addr =
  let c0 = Layout.chunk_of_addr (Pool.layout t.pool) addr in
  c0 >= 0 && c0 < chunk_count t && Bytes.get t.mirror c0 = start_byte

let free t addr =
  let layout = Pool.layout t.pool in
  let c0 = Layout.chunk_of_addr layout addr in
  if c0 < 0 || c0 >= chunk_count t then invalid_arg "Pmalloc.Alloc.free: address outside heap";
  if Bytes.get t.mirror c0 <> start_byte then
    invalid_arg "Pmalloc.Alloc.free: not the start of an allocation";
  let n = run_length t c0 in
  write_marks t ~c0 ~n ~mark_start:free_byte ~mark_rest:free_byte;
  t.used_chunks <- t.used_chunks - n;
  if c0 < t.next_fit then t.next_fit <- c0

(** Structural validation of the persisted bitmap: every continuation byte
    must follow a start or another continuation, and byte values must be in
    range. Used by recovery procedures as part of their consistency
    oracle. *)
let check pool =
  let layout = Pool.layout pool in
  let bitmap =
    Pool.read_bytes pool ~off:layout.Layout.bitmap_off ~len:layout.Layout.chunk_count
  in
  let error = ref None in
  for i = 0 to Bytes.length bitmap - 1 do
    if !error = None then
      match Bytes.get bitmap i with
      | c when c = free_byte || c = start_byte -> ()
      | c when c = cont_byte ->
          if i = 0 || Bytes.get bitmap (i - 1) = free_byte then
            error := Some (Printf.sprintf "orphan continuation chunk at index %d" i)
      | c -> error := Some (Printf.sprintf "invalid bitmap byte %d at index %d" (Char.code c) i)
  done;
  match !error with None -> Ok () | Some e -> Error e
