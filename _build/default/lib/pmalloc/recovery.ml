(** Pool recovery: the library-level half of the "recovery procedure as
    consistency oracle" (paper section 4.1).

    Opening a pool after a crash composes, in order: header validation,
    redo-log recovery (allocator metadata), undo-log recovery (user
    transactions) and an allocator-bitmap structural check. Applications
    layer their own structure-specific recovery on top. *)

type report = {
  redo : [ `Clean | `Reapplied of int ];
  tx : [ `Clean | `Completed | `Rolled_back of int ];
}

let pp_report ppf r =
  let redo =
    match r.redo with
    | `Clean -> "clean"
    | `Reapplied n -> Printf.sprintf "reapplied %d entries" n
  in
  let tx =
    match r.tx with
    | `Clean -> "clean"
    | `Completed -> "completed interrupted commit"
    | `Rolled_back n -> Printf.sprintf "rolled back %d entries" n
  in
  Fmt.pf ppf "redo: %s; tx: %s" redo tx

(** [open_pool dev] attaches to the pool on [dev] and repairs library
    metadata. Raises {!Pool.Corrupted} when the image cannot be brought to
    a consistent state — the signal the oracle turns into a bug report —
    and {!Pool.Not_initialised} when the pool was never committed (a crash
    during creation; the caller simply re-creates it).

    Order matters: the redo log is replayed {e before} the header is
    validated, because an interrupted header update (e.g. a root-pointer
    publish) is exactly what a committed redo log completes. *)
let open_pool dev =
  let pool = Pool.attach_unchecked dev in
  let redo = Redo.recover pool in
  Pool.validate_header pool;
  (* The allocator mirror must be rebuilt after redo recovery so that the
     extension blocks released by tx recovery see consistent state. *)
  let heap = Alloc.attach pool in
  let tx = Tx.recover ~heap pool in
  (match Alloc.check pool with
  | Ok () -> ()
  | Error e -> raise (Pool.Corrupted ("allocator bitmap: " ^ e)));
  (pool, heap, { redo; tx })
